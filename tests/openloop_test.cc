// Open-loop generator tests (src/workload/openloop.h).
//
// Determinism first: the generated stream must be a pure function of the
// config — the bench's "controller-detached runs are bit-identical"
// claim rests on it. Then statistical sanity: the base process really is
// Poisson (chi-square on the inter-arrival distribution), thinning
// really tracks the modulation envelope (burst windows, diurnal crest
// vs. trough), and the structural fields (region bounds, alignment,
// write fraction, block-size mix) honor the config.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/openloop.h"

namespace nvmetro::workload {
namespace {

bool SameArrival(const Arrival& a, const Arrival& b) {
  return a.at == b.at && a.tenant_id == b.tenant_id &&
         a.is_write == b.is_write && a.slba == b.slba && a.nlb == b.nlb;
}

OpenLoopConfig BaseConfig(u64 seed) {
  OpenLoopConfig cfg;
  cfg.seed = seed;
  cfg.horizon_ns = 200 * kMs;
  for (u32 i = 1; i <= 3; i++) {
    TenantLoad t;
    t.tenant_id = i;
    t.base_iops = 4'000.0 * i;
    t.write_fraction = 0.3;
    t.first_lba = (i - 1) * (1ull << 20);
    t.region_nlb = 1ull << 20;
    t.mix = {{1, 1}, {8, 2}, {32, 1}};
    cfg.tenants.push_back(t);
  }
  // Tenant 2 gets random burst episodes, tenant 3 a diurnal envelope, so
  // the determinism claim covers every modulation path.
  cfg.tenants[1].burst_multiplier = 5.0;
  cfg.tenants[1].burst_mean_interval_ns = 20 * kMs;
  cfg.tenants[1].burst_mean_duration_ns = 2 * kMs;
  cfg.tenants[2].diurnal_amplitude = 0.4;
  cfg.tenants[2].diurnal_period_ns = 50 * kMs;
  return cfg;
}

// --- Determinism -------------------------------------------------------------

TEST(OpenLoopTest, SameSeedBitIdenticalStream) {
  OpenLoopGenerator g1(BaseConfig(42));
  OpenLoopGenerator g2(BaseConfig(42));
  std::vector<Arrival> s1 = g1.GenerateAll();
  std::vector<Arrival> s2 = g2.GenerateAll();
  ASSERT_GT(s1.size(), 1000u);
  ASSERT_EQ(s1.size(), s2.size());
  for (usize i = 0; i < s1.size(); i++) {
    ASSERT_TRUE(SameArrival(s1[i], s2[i])) << "diverged at arrival " << i;
  }
}

TEST(OpenLoopTest, DifferentSeedDifferentStream) {
  std::vector<Arrival> s1 = OpenLoopGenerator(BaseConfig(42)).GenerateAll();
  std::vector<Arrival> s2 = OpenLoopGenerator(BaseConfig(43)).GenerateAll();
  bool differs = s1.size() != s2.size();
  for (usize i = 0; !differs && i < s1.size(); i++) {
    differs = !SameArrival(s1[i], s2[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(OpenLoopTest, TenantStreamsAreIndependent) {
  // Removing one tenant must not perturb another tenant's arrivals: each
  // stream owns its Rng, derived from (seed, tenant_id).
  OpenLoopConfig both = BaseConfig(7);
  OpenLoopConfig solo = both;
  solo.tenants = {both.tenants[2]};
  std::vector<Arrival> merged = OpenLoopGenerator(both).GenerateAll();
  std::vector<Arrival> alone = OpenLoopGenerator(solo).GenerateAll();
  std::vector<Arrival> filtered;
  for (const Arrival& a : merged) {
    if (a.tenant_id == 3) filtered.push_back(a);
  }
  ASSERT_EQ(filtered.size(), alone.size());
  for (usize i = 0; i < alone.size(); i++) {
    ASSERT_TRUE(SameArrival(filtered[i], alone[i])) << "at arrival " << i;
  }
}

TEST(OpenLoopTest, MergedStreamIsTimeOrdered) {
  OpenLoopGenerator gen(BaseConfig(9));
  Arrival a;
  SimTime prev = 0;
  u64 n = 0;
  while (gen.Next(&a)) {
    ASSERT_GE(a.at, prev) << "out of order at arrival " << n;
    ASSERT_LT(a.at, gen.config().horizon_ns);
    prev = a.at;
    n++;
  }
  EXPECT_GT(n, 1000u);
}

// --- Statistical sanity ------------------------------------------------------

TEST(OpenLoopTest, ConstantRatePoissonChiSquare) {
  // Unmodulated single tenant: inter-arrival gaps must be exponential
  // with mean 1/rate. Chi-square over 10 equiprobable exponential bins;
  // threshold 27.88 is the 0.999 quantile at 9 degrees of freedom, so a
  // correct generator fails ~1/1000 seeds — and the seed is pinned.
  OpenLoopConfig cfg;
  cfg.seed = 1234;
  cfg.horizon_ns = 2'000 * kMs;
  TenantLoad t;
  t.tenant_id = 1;
  t.base_iops = 10'000.0;
  cfg.tenants = {t};
  std::vector<Arrival> s = OpenLoopGenerator(cfg).GenerateAll();
  ASSERT_GT(s.size(), 10'000u);

  const double mean_ns = 1e9 / t.base_iops;
  constexpr int kBins = 10;
  // Equiprobable bin edges of Exp(mean): -mean * ln(1 - i/k).
  double edges[kBins + 1];
  for (int i = 0; i <= kBins; i++) {
    edges[i] = i == kBins ? 1e18
                          : -mean_ns * std::log(1.0 - static_cast<double>(i) /
                                                          kBins);
  }
  u64 observed[kBins] = {};
  double sum_ns = 0;
  for (usize i = 1; i < s.size(); i++) {
    double gap = static_cast<double>(s[i].at - s[i - 1].at);
    sum_ns += gap;
    for (int b = 0; b < kBins; b++) {
      if (gap >= edges[b] && gap < edges[b + 1]) {
        observed[b]++;
        break;
      }
    }
  }
  const double n = static_cast<double>(s.size() - 1);
  // Sample mean within 3% of 1/rate.
  EXPECT_NEAR(sum_ns / n, mean_ns, 0.03 * mean_ns);
  const double expected = n / kBins;
  double chi2 = 0;
  for (u64 o : observed) {
    double d = static_cast<double>(o) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.88) << "inter-arrival distribution is not exponential";
}

TEST(OpenLoopTest, ForcedBurstMultipliesArrivalRate) {
  OpenLoopConfig cfg;
  cfg.seed = 5;
  cfg.horizon_ns = 300 * kMs;
  TenantLoad t;
  t.tenant_id = 1;
  t.base_iops = 5'000.0;
  t.burst_multiplier = 10.0;
  t.forced_burst_at_ns = 100 * kMs;
  t.forced_burst_duration_ns = 100 * kMs;
  cfg.tenants = {t};
  OpenLoopGenerator gen(cfg);
  EXPECT_DOUBLE_EQ(gen.RateFactorAt(0, 50 * kMs), 1.0);
  EXPECT_DOUBLE_EQ(gen.RateFactorAt(0, 150 * kMs), 10.0);
  EXPECT_DOUBLE_EQ(gen.RateFactorAt(0, 250 * kMs), 1.0);

  u64 before = 0, during = 0;
  for (const Arrival& a : gen.GenerateAll()) {
    if (a.at < 100 * kMs) before++;
    else if (a.at < 200 * kMs) during++;
  }
  // 100 ms at 5k -> ~500 arrivals; 100 ms at 50k -> ~5000. Allow wide
  // Poisson slack: the ratio must still be clearly ~10x.
  ASSERT_GT(before, 350u);
  double ratio = static_cast<double>(during) / static_cast<double>(before);
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(OpenLoopTest, DiurnalCrestOutweighsTrough) {
  OpenLoopConfig cfg;
  cfg.seed = 11;
  cfg.horizon_ns = 100 * kMs;
  TenantLoad t;
  t.tenant_id = 1;
  t.base_iops = 20'000.0;
  t.diurnal_amplitude = 0.5;
  t.diurnal_period_ns = 100 * kMs;  // crest in the first half, trough second
  cfg.tenants = {t};
  OpenLoopGenerator gen(cfg);
  EXPECT_NEAR(gen.RateFactorAt(0, 25 * kMs), 1.5, 1e-9);
  EXPECT_NEAR(gen.RateFactorAt(0, 75 * kMs), 0.5, 1e-9);
  u64 crest = 0, trough = 0;
  for (const Arrival& a : gen.GenerateAll()) {
    (a.at < 50 * kMs ? crest : trough)++;
  }
  // Mean factor over the crest half is 1 + 2*A/pi ~ 1.318, over the
  // trough half ~ 0.682: the count ratio must reflect it.
  double ratio = static_cast<double>(crest) / static_cast<double>(trough);
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.3);
}

// --- Structural fields -------------------------------------------------------

TEST(OpenLoopTest, FieldsHonorConfig) {
  OpenLoopConfig cfg;
  cfg.seed = 3;
  cfg.horizon_ns = 400 * kMs;
  TenantLoad t;
  t.tenant_id = 17;
  t.base_iops = 10'000.0;
  t.write_fraction = 0.25;
  t.first_lba = 1 << 16;
  t.region_nlb = 1 << 12;
  t.mix = {{1, 1}, {8, 3}};
  cfg.tenants = {t};
  u64 writes = 0, total = 0, nlb1 = 0, nlb8 = 0;
  for (const Arrival& a : OpenLoopGenerator(cfg).GenerateAll()) {
    total++;
    if (a.is_write) writes++;
    ASSERT_EQ(a.tenant_id, 17u);
    ASSERT_TRUE(a.nlb == 1 || a.nlb == 8) << a.nlb;
    (a.nlb == 1 ? nlb1 : nlb8)++;
    ASSERT_GE(a.slba, t.first_lba);
    ASSERT_LT(a.slba + a.nlb, t.first_lba + t.region_nlb + a.nlb);
    ASSERT_EQ((a.slba - t.first_lba) % a.nlb, 0u) << "unaligned slba";
  }
  ASSERT_GT(total, 1000u);
  EXPECT_NEAR(static_cast<double>(writes) / total, 0.25, 0.03);
  EXPECT_NEAR(static_cast<double>(nlb8) / total, 0.75, 0.03);
}

TEST(OpenLoopTest, BuildSkewedTenantsZipfShares) {
  std::vector<TenantLoad> ts = BuildSkewedTenants(4, 10, 100'000.0, 1.0,
                                                  1 << 20);
  ASSERT_EQ(ts.size(), 4u);
  double sum = 0;
  for (usize i = 0; i < ts.size(); i++) {
    EXPECT_EQ(ts[i].tenant_id, 10u + i);
    sum += ts[i].base_iops;
    if (i) {
      EXPECT_LT(ts[i].base_iops, ts[i - 1].base_iops);
    }
    // Equal disjoint LBA slices.
    EXPECT_EQ(ts[i].first_lba, i * ((1ull << 20) / 4));
    EXPECT_EQ(ts[i].region_nlb, (1ull << 20) / 4);
  }
  EXPECT_NEAR(sum, 100'000.0, 1.0);
  // theta=1: head share = (1/1)/(1+1/2+1/3+1/4) = 48% of the aggregate.
  EXPECT_NEAR(ts[0].base_iops, 48'000.0, 500.0);
}

TEST(OpenLoopTest, ZeroRateTenantYieldsNothing) {
  OpenLoopConfig cfg;
  cfg.seed = 2;
  cfg.horizon_ns = 10 * kMs;
  TenantLoad quiet;
  quiet.tenant_id = 1;
  quiet.base_iops = 0.0;
  TenantLoad busy;
  busy.tenant_id = 2;
  busy.base_iops = 1'000.0;
  cfg.tenants = {quiet, busy};
  for (const Arrival& a : OpenLoopGenerator(cfg).GenerateAll()) {
    EXPECT_EQ(a.tenant_id, 2u);
  }
}

}  // namespace
}  // namespace nvmetro::workload

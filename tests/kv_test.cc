// Tests for MiniKv: SSTable format, bloom filters, CRUD, flush,
// compaction, WAL recovery, scans, and a randomized property test against
// a std::map reference model.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fsx/flatfs.h"
#include "kv/bloom.h"
#include "kv/minikv.h"
#include "kv/pushdown.h"
#include "kv/sstable.h"
#include "sim/simulator.h"

namespace nvmetro::kv {
namespace {

// --- BloomFilter ------------------------------------------------------------

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(1000, 10);
  for (int i = 0; i < 1000; i++) bloom.Add("key" + std::to_string(i));
  for (int i = 0; i < 1000; i++) {
    EXPECT_TRUE(bloom.MayContain("key" + std::to_string(i)));
  }
}

TEST(BloomTest, FalsePositiveRateReasonable) {
  BloomFilter bloom(1000, 10);
  for (int i = 0; i < 1000; i++) bloom.Add("key" + std::to_string(i));
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; i++) {
    if (bloom.MayContain("absent" + std::to_string(i))) fp++;
  }
  // 10 bits/key gives ~1%; allow generous margin.
  EXPECT_LT(fp, probes / 20);
}

TEST(BloomTest, SerializationRoundTrip) {
  BloomFilter bloom(100, 10);
  bloom.Add("hello");
  BloomFilter restored;
  restored.Restore(bloom.bits(), bloom.hashes());
  EXPECT_TRUE(restored.MayContain("hello"));
  EXPECT_FALSE(restored.MayContain("definitely-not-here-1234"));
}

// --- SSTable format ----------------------------------------------------------

TEST(SsTableTest, BuildAndParseTailRoundTrip) {
  std::map<std::string, Record> records;
  for (int i = 0; i < 500; i++) {
    std::string k = "k" + std::to_string(1000 + i);
    records[k] = Record{k, std::string(100, static_cast<char>('a' + i % 26)),
                        false};
  }
  SsTableMeta meta;
  std::vector<u8> file = BuildSsTable(records, 4096, 10, &meta);
  EXPECT_EQ(meta.num_keys, 500u);
  EXPECT_GT(meta.num_blocks(), 5u);

  SsTableMeta parsed;
  ASSERT_TRUE(ParseSsTableTail(file, file.size(), &parsed).ok());
  EXPECT_EQ(parsed.num_keys, meta.num_keys);
  EXPECT_EQ(parsed.data_len, meta.data_len);
  EXPECT_EQ(parsed.first_keys, meta.first_keys);
  EXPECT_EQ(parsed.block_offsets, meta.block_offsets);
  EXPECT_TRUE(parsed.bloom.MayContain("k1000"));
}

TEST(SsTableTest, FindBlockLocatesKeys) {
  std::map<std::string, Record> records;
  for (int i = 100; i < 700; i++) {
    std::string k = "key" + std::to_string(i);
    records[k] = Record{k, "v", false};
  }
  SsTableMeta meta;
  std::vector<u8> file = BuildSsTable(records, 512, 10, &meta);
  for (int i = 100; i < 700; i += 37) {
    std::string k = "key" + std::to_string(i);
    i64 blk = meta.FindBlock(k);
    ASSERT_GE(blk, 0) << k;
    std::string value;
    EXPECT_EQ(FindInBlock(file.data() + meta.block_offsets[blk],
                          meta.BlockLen(static_cast<u32>(blk)), k, &value),
              BlockFind::kFound)
        << k;
  }
  // A key before all blocks.
  EXPECT_EQ(meta.FindBlock("aaa"), -1);
}

TEST(SsTableTest, TombstonesPreserved) {
  std::map<std::string, Record> records;
  records["dead"] = Record{"dead", "", true};
  records["live"] = Record{"live", "v", false};
  SsTableMeta meta;
  std::vector<u8> file = BuildSsTable(records, 4096, 10, &meta);
  std::string value;
  EXPECT_EQ(FindInBlock(file.data(), meta.data_len, "dead", &value),
            BlockFind::kTombstone);
  EXPECT_EQ(FindInBlock(file.data(), meta.data_len, "live", &value),
            BlockFind::kFound);
  EXPECT_EQ(value, "v");
}

TEST(SsTableTest, CorruptFooterRejected) {
  std::vector<u8> junk(100, 0xAB);
  SsTableMeta meta;
  EXPECT_FALSE(ParseSsTableTail(junk, junk.size(), &meta).ok());
}

// --- MiniKv -------------------------------------------------------------------

// RAM FsBackend (duplicated minimally from fsx tests to stay standalone).
class RamFsBackend : public fsx::FsBackend {
 public:
  RamFsBackend(sim::Simulator* sim, u64 capacity)
      : sim_(sim), data_(capacity, 0) {}
  void Read(u64 off, void* buf, u64 len, Callback done) override {
    sim_->ScheduleAfter(800, [this, off, buf, len, done] {
      if (off + len > data_.size()) {
        done(OutOfRange("OOB"));
        return;
      }
      memcpy(buf, data_.data() + off, len);
      done(OkStatus());
    });
  }
  void Write(u64 off, const void* buf, u64 len, Callback done) override {
    sim_->ScheduleAfter(800, [this, off, buf, len, done] {
      if (off + len > data_.size()) {
        done(OutOfRange("OOB"));
        return;
      }
      memcpy(data_.data() + off, buf, len);
      done(OkStatus());
    });
  }
  void Flush(Callback done) override {
    sim_->ScheduleAfter(800, [done] { done(OkStatus()); });
  }
  u64 capacity() const override { return data_.size(); }

 private:
  sim::Simulator* sim_;
  std::vector<u8> data_;
};

struct KvFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<RamFsBackend> backend =
      std::make_unique<RamFsBackend>(&sim, 256 * MiB);
  std::unique_ptr<fsx::FlatFs> fs;
  std::unique_ptr<MiniKv> db;

  void SetUp() override {
    bool ok = false;
    fsx::FlatFs::Format(backend.get(), [&](Status st) {
      ASSERT_TRUE(st.ok());
      ok = true;
    });
    sim.Run();
    ASSERT_TRUE(ok);
    MountFs();
    OpenDb(DefaultOptions());
  }

  static MiniKvOptions DefaultOptions() {
    MiniKvOptions opt;
    opt.memtable_bytes = 64 * KiB;  // small, to exercise flushes
    opt.compact_threshold = 4;
    return opt;
  }

  void MountFs() {
    fs.reset();
    bool ok = false;
    fsx::FlatFs::Mount(backend.get(),
                       [&](Result<std::unique_ptr<fsx::FlatFs>> r) {
                         ASSERT_TRUE(r.ok()) << r.status().ToString();
                         fs = std::move(*r);
                         ok = true;
                       });
    sim.Run();
    ASSERT_TRUE(ok);
  }

  void OpenDb(MiniKvOptions opt) {
    db.reset();
    bool ok = false;
    MiniKv::Open(&sim, fs.get(), opt,
                 [&](Result<std::unique_ptr<MiniKv>> r) {
                   ASSERT_TRUE(r.ok()) << r.status().ToString();
                   db = std::move(*r);
                   ok = true;
                 });
    sim.Run();
    ASSERT_TRUE(ok);
  }

  Status PutSync(const std::string& k, const std::string& v) {
    Status result = Internal("pending");
    db->Put(k, v, [&](Status st) { result = st; });
    sim.Run();
    return result;
  }
  Status DeleteSync(const std::string& k) {
    Status result = Internal("pending");
    db->Delete(k, [&](Status st) { result = st; });
    sim.Run();
    return result;
  }
  Result<std::string> GetSync(const std::string& k) {
    Result<std::string> result = Internal("pending");
    db->Get(k, [&](Result<std::string> r) { result = std::move(r); });
    sim.Run();
    return result;
  }
  Result<MiniKv::ScanResult> ScanSync(const std::string& start, u32 n) {
    Result<MiniKv::ScanResult> result = Internal("pending");
    db->Scan(start, n,
             [&](Result<MiniKv::ScanResult> r) { result = std::move(r); });
    sim.Run();
    return result;
  }
  Status FlushSync() {
    Status result = Internal("pending");
    db->FlushMemtable([&](Status st) { result = st; });
    sim.Run();
    return result;
  }
};

TEST_F(KvFixture, PutGetFromMemtable) {
  ASSERT_TRUE(PutSync("alpha", "one").ok());
  auto r = GetSync("alpha");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "one");
  EXPECT_GT(db->stats().memtable_hits, 0u);
}

TEST_F(KvFixture, GetMissingKey) {
  auto r = GetSync("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(KvFixture, OverwriteReturnsLatest) {
  ASSERT_TRUE(PutSync("k", "v1").ok());
  ASSERT_TRUE(PutSync("k", "v2").ok());
  EXPECT_EQ(*GetSync("k"), "v2");
}

TEST_F(KvFixture, DeleteHidesKey) {
  ASSERT_TRUE(PutSync("k", "v").ok());
  ASSERT_TRUE(DeleteSync("k").ok());
  EXPECT_FALSE(GetSync("k").ok());
}

TEST_F(KvFixture, GetFromSstAfterFlush) {
  ASSERT_TRUE(PutSync("durable", "value-on-disk").ok());
  ASSERT_TRUE(FlushSync().ok());
  EXPECT_EQ(db->sstable_count(), 1u);
  EXPECT_EQ(db->memtable_bytes(), 0u);
  auto r = GetSync("durable");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "value-on-disk");
  EXPECT_GT(db->stats().block_reads + db->stats().block_cache_hits, 0u);
}

TEST_F(KvFixture, DeleteShadowsSstValue) {
  ASSERT_TRUE(PutSync("k", "old").ok());
  ASSERT_TRUE(FlushSync().ok());
  ASSERT_TRUE(DeleteSync("k").ok());
  EXPECT_FALSE(GetSync("k").ok());
  // Even after the tombstone itself is flushed.
  ASSERT_TRUE(FlushSync().ok());
  EXPECT_FALSE(GetSync("k").ok());
}

TEST_F(KvFixture, AutomaticFlushOnMemtableFull) {
  std::string big(4000, 'x');
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(PutSync("key" + std::to_string(i), big).ok());
  }
  sim.Run();
  EXPECT_GT(db->stats().flushes, 0u);
  EXPECT_GE(db->sstable_count(), 1u);
  // All keys still readable.
  for (int i = 0; i < 40; i++) {
    ASSERT_TRUE(GetSync("key" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(KvFixture, CompactionMergesRuns) {
  std::string pad(2000, 'p');
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 20; i++) {
      ASSERT_TRUE(
          PutSync("k" + std::to_string(i), pad + std::to_string(round))
              .ok());
    }
    ASSERT_TRUE(FlushSync().ok());
  }
  sim.Run();  // let compaction finish
  EXPECT_GT(db->stats().compactions, 0u);
  EXPECT_LT(db->sstable_count(), 6u);
  // Latest values survive the merge.
  for (int i = 0; i < 20; i++) {
    auto r = GetSync("k" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << i;
    EXPECT_EQ(*r, pad + "5");
  }
}

TEST_F(KvFixture, CompactionDropsTombstones) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(PutSync("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(FlushSync().ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(DeleteSync("k" + std::to_string(i)).ok());
  }
  for (int round = 0; round < 5; round++) {
    ASSERT_TRUE(PutSync("pad" + std::to_string(round), "v").ok());
    ASSERT_TRUE(FlushSync().ok());
  }
  sim.Run();
  ASSERT_GT(db->stats().compactions, 0u);
  for (int i = 0; i < 10; i++) {
    EXPECT_FALSE(GetSync("k" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(KvFixture, WalRecoveryAfterCrash) {
  ASSERT_TRUE(PutSync("persisted", "by-wal").ok());
  ASSERT_TRUE(PutSync("another", "value").ok());
  // Force the WAL buffer out by writing enough bytes.
  std::string big(40'000, 'w');
  ASSERT_TRUE(PutSync("big", big).ok());
  sim.Run();
  // "Crash": drop the DB (not flushed), remount from disk. The FlatFs
  // metadata was synced when the WAL was created at Open.
  db.reset();
  MountFs();
  OpenDb(DefaultOptions());
  auto r = GetSync("persisted");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "by-wal");
  EXPECT_EQ(*GetSync("big"), big);
}

TEST_F(KvFixture, ReopenLoadsSstables) {
  ASSERT_TRUE(PutSync("a", "1").ok());
  ASSERT_TRUE(PutSync("b", "2").ok());
  ASSERT_TRUE(FlushSync().ok());
  db.reset();
  MountFs();
  OpenDb(DefaultOptions());
  EXPECT_EQ(db->sstable_count(), 1u);
  EXPECT_EQ(*GetSync("a"), "1");
  EXPECT_EQ(*GetSync("b"), "2");
}

TEST_F(KvFixture, ScanReturnsSortedRange) {
  for (int i = 0; i < 50; i++) {
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(PutSync(key, "v" + std::to_string(i)).ok());
    if (i % 17 == 0) {
      ASSERT_TRUE(FlushSync().ok());
    }
  }
  auto r = ScanSync("k010", 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 10u);
  EXPECT_EQ((*r)[0].first, "k010");
  EXPECT_EQ((*r)[9].first, "k019");
  for (usize i = 1; i < r->size(); i++) {
    EXPECT_LT((*r)[i - 1].first, (*r)[i].first);
  }
}

TEST_F(KvFixture, ScanSkipsTombstonesAndUsesNewest) {
  ASSERT_TRUE(PutSync("s1", "old").ok());
  ASSERT_TRUE(PutSync("s2", "dead").ok());
  ASSERT_TRUE(FlushSync().ok());
  ASSERT_TRUE(PutSync("s1", "new").ok());
  ASSERT_TRUE(DeleteSync("s2").ok());
  auto r = ScanSync("s", 10);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].first, "s1");
  EXPECT_EQ((*r)[0].second, "new");
}

TEST_F(KvFixture, BloomFiltersSkipAbsentTables) {
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(PutSync("table" + std::to_string(i), "v").ok());
    ASSERT_TRUE(FlushSync().ok());
  }
  u64 skips_before = db->stats().bloom_skips;
  // Key in the OLDEST table: newer tables must be bloom-skipped.
  EXPECT_TRUE(GetSync("table0").ok());
  EXPECT_GT(db->stats().bloom_skips, skips_before);
}

TEST_F(KvFixture, BlockCacheServesRepeatedReads) {
  ASSERT_TRUE(PutSync("hot", "data").ok());
  ASSERT_TRUE(FlushSync().ok());
  ASSERT_TRUE(GetSync("hot").ok());
  u64 reads_before = db->stats().block_reads;
  for (int i = 0; i < 10; i++) ASSERT_TRUE(GetSync("hot").ok());
  EXPECT_EQ(db->stats().block_reads, reads_before);  // all cache hits
  EXPECT_GE(db->stats().block_cache_hits, 10u);
}

TEST_F(KvFixture, RandomOpsMatchReferenceModel) {
  Rng rng(12345);
  std::map<std::string, std::string> model;
  for (int op = 0; op < 800; op++) {
    u64 key_id = rng.NextBounded(120);
    std::string key = "key" + std::to_string(key_id);
    switch (rng.NextBounded(10)) {
      case 0:
      case 1: {  // delete
        model.erase(key);
        ASSERT_TRUE(DeleteSync(key).ok());
        break;
      }
      case 2: {  // flush occasionally
        ASSERT_TRUE(FlushSync().ok());
        break;
      }
      default: {  // put
        std::string value(50 + rng.NextBounded(400), 0);
        rng.Fill(value.data(), value.size());
        model[key] = value;
        ASSERT_TRUE(PutSync(key, value).ok());
      }
    }
    if (op % 50 == 49) {
      // Verify a random sample against the model.
      for (int probe = 0; probe < 10; probe++) {
        std::string k = "key" + std::to_string(rng.NextBounded(120));
        auto r = GetSync(k);
        auto it = model.find(k);
        if (it == model.end()) {
          EXPECT_FALSE(r.ok()) << k << " at op " << op;
        } else {
          ASSERT_TRUE(r.ok()) << k << " at op " << op;
          EXPECT_EQ(*r, it->second) << k;
        }
      }
    }
  }
  sim.Run();
  // Full verification at the end, after background work settles.
  for (const auto& [k, v] : model) {
    auto r = GetSync(k);
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, v) << k;
  }
}

// Synchronous-WAL options: every acknowledged write is on "disk" once
// the event queue drains, so a crash (even with a filesystem remount)
// must lose nothing. The default group-commit buffer trades exactly this
// away for throughput, like RocksDB with WriteOptions.sync=false.
static MiniKvOptions SyncWalOptions() {
  MiniKvOptions opt = KvFixture::DefaultOptions();
  opt.wal_buffer_bytes = 0;
  return opt;
}

TEST_F(KvFixture, ScanSeesWalRecoveredRecords) {
  OpenDb(SyncWalOptions());
  ASSERT_TRUE(PutSync("key139", "recovered-value").ok());
  // Machine crash: drop the DB and remount the filesystem from disk.
  db.reset();
  MountFs();
  OpenDb(SyncWalOptions());
  auto g = GetSync("key139");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, "recovered-value");
  auto r = ScanSync("key053", 20);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u) << "scan missed a WAL-recovered record";
  EXPECT_EQ((*r)[0].first, "key139");
}

TEST_F(KvFixture, BufferedWalMayLoseOnlyUnflushedTail) {
  // The durability contract of the *default* options: a crash can lose
  // recent acknowledged writes still in the WAL buffer, but never
  // corrupts — recovery yields a clean prefix of the history.
  ASSERT_TRUE(PutSync("a", "1").ok());
  std::string big(40'000, 'w');  // pushes the buffer past 32 KiB
  ASSERT_TRUE(PutSync("b", big).ok());
  ASSERT_TRUE(PutSync("c", "tail-maybe-lost").ok());
  db.reset();
  MountFs();
  OpenDb(DefaultOptions());
  EXPECT_EQ(*GetSync("a"), "1");
  EXPECT_EQ(*GetSync("b"), big);
  auto r = GetSync("c");  // either recovered intact or cleanly absent
  if (r.ok()) {
    EXPECT_EQ(*r, "tail-maybe-lost");
  }
}

TEST_F(KvFixture, RandomOpsWithReopensAndScansMatchModel) {
  // Differential test with the two hardest behaviours interleaved:
  // crash+recovery (drop the instance, remount the filesystem — with a
  // synchronous WAL every acknowledged write must come back) and range
  // scans (which merge memtable + all SSTable runs and must agree with
  // the model exactly).
  OpenDb(SyncWalOptions());
  Rng rng(777);
  std::map<std::string, std::string> model;
  const u64 kKeySpace = 150;
  auto key_of = [](u64 id) {
    char b[16];
    snprintf(b, sizeof(b), "key%03llu", static_cast<unsigned long long>(id));
    return std::string(b);
  };
  for (int op = 0; op < 600; op++) {
    std::string key = key_of(rng.NextBounded(kKeySpace));
    u64 roll = rng.NextBounded(20);
    if (roll < 3) {
      model.erase(key);
      ASSERT_TRUE(DeleteSync(key).ok());
    } else if (roll == 3) {
      // Crash: drop the instance on the floor, remount, recover.
      db.reset();
      MountFs();
      OpenDb(SyncWalOptions());
    } else if (roll < 6) {
      std::string start = key_of(rng.NextBounded(kKeySpace));
      u32 n = 1 + static_cast<u32>(rng.NextBounded(20));
      auto r = ScanSync(start, n);
      ASSERT_TRUE(r.ok()) << "scan at op " << op;
      auto it = model.lower_bound(start);
      for (usize i = 0; i < r->size(); ++i, ++it) {
        ASSERT_NE(it, model.end()) << "scan over-produced at op " << op;
        EXPECT_EQ((*r)[i].first, it->first) << "op " << op;
        EXPECT_EQ((*r)[i].second, it->second) << "op " << op;
      }
      if (r->size() < n) {
        EXPECT_EQ(it, model.end()) << "scan under-produced at op " << op;
      }
    } else {
      std::string value(20 + rng.NextBounded(200), 0);
      rng.Fill(value.data(), value.size());
      model[key] = value;
      ASSERT_TRUE(PutSync(key, value).ok());
    }
  }
  // One last crash, then verify the whole key space (absences too).
  db.reset();
  MountFs();
  OpenDb(SyncWalOptions());
  for (u64 id = 0; id < kKeySpace; id++) {
    std::string k = key_of(id);
    auto r = GetSync(k);
    auto it = model.find(k);
    if (it == model.end()) {
      EXPECT_FALSE(r.ok()) << k;
    } else {
      ASSERT_TRUE(r.ok()) << k;
      EXPECT_EQ(*r, it->second) << k;
    }
  }
}

// --- Pushdown index (DESIGN.md §15) ------------------------------------------

TEST(PushdownTest, SingleLeafFormat) {
  std::vector<std::pair<u64, u64>> kvs = {{10, 100}, {20, 200}, {30, 300}};
  PushdownIndex idx = BuildPushdownIndex(kvs, /*base_lba=*/64);
  EXPECT_EQ(idx.levels, 1u);
  EXPECT_EQ(idx.num_blocks(), 1u);
  EXPECT_EQ(idx.root_lba(), 64u);
  const u8* root = idx.image.data();
  EXPECT_EQ(PushdownMagicOf(root), kPushdownMagic);
  EXPECT_EQ(PushdownLevel(root), 0u);
  EXPECT_EQ(PushdownNumKeys(root), 3u);
  EXPECT_EQ(PushdownEntryKey(root, 1), 20u);
  EXPECT_EQ(PushdownEntryVal(root, 1), 200u);
  // Missing slots carry the pad key so the floor search self-excludes.
  EXPECT_EQ(PushdownEntryKey(root, 3), kPushdownPadKey);
  EXPECT_EQ(PushdownEntryKey(root, kPushdownFanout - 1), kPushdownPadKey);
}

TEST(PushdownTest, SearchBlockIsFloorSearch) {
  std::vector<std::pair<u64, u64>> kvs;
  for (u64 i = 0; i < kPushdownFanout; i++) kvs.push_back({i * 10, i});
  PushdownIndex idx = BuildPushdownIndex(kvs, 0);
  const u8* blk = idx.image.data();
  EXPECT_EQ(PushdownSearchBlock(blk, 0), 0u);
  EXPECT_EQ(PushdownSearchBlock(blk, 9), 0u);    // below entry 1
  EXPECT_EQ(PushdownSearchBlock(blk, 10), 1u);   // exact
  EXPECT_EQ(PushdownSearchBlock(blk, 1275), 127u);
  EXPECT_EQ(PushdownSearchBlock(blk, ~1ull), 127u);
}

TEST(PushdownTest, MultiLevelWalkFindsEveryKey) {
  std::vector<std::pair<u64, u64>> kvs;
  for (u64 i = 0; i < 40'000; i++) kvs.push_back({i * 13 + 5, i ^ 0xABCD});
  PushdownIndex idx = BuildPushdownIndex(kvs, /*base_lba=*/128);
  // 40000 keys -> 313 leaves -> 3 level-1 blocks -> 1 root.
  EXPECT_EQ(idx.levels, 3u);
  for (u64 i = 0; i < kvs.size(); i += 197) {
    u64 value = 0;
    u32 hops = 0;
    ASSERT_TRUE(PushdownLookupImage(idx, kvs[i].first, &value, &hops))
        << kvs[i].first;
    EXPECT_EQ(value, kvs[i].second);
    EXPECT_EQ(hops, idx.levels - 1);
  }
  // Absent keys resolve to a leaf but fail the exact match.
  u64 value = 0;
  u32 hops = 0;
  EXPECT_FALSE(PushdownLookupImage(idx, 6, &value, &hops));
}

TEST(PushdownTest, LeafLookupRejectsNonLeafAndBadMagic) {
  std::vector<std::pair<u64, u64>> kvs = {{1, 2}};
  PushdownIndex idx = BuildPushdownIndex(kvs, 0);
  std::vector<u8> blk(idx.image.begin(),
                      idx.image.begin() + kPushdownBlockBytes);
  u64 value = 0;
  EXPECT_TRUE(PushdownLeafLookup(blk.data(), 1, &value));
  EXPECT_EQ(value, 2u);
  // Internal level: not a leaf.
  u64 word0 = (static_cast<u64>(kPushdownMagic) << 32) | 1;
  memcpy(blk.data(), &word0, 8);
  EXPECT_FALSE(PushdownLeafLookup(blk.data(), 1, &value));
  // Bad magic: not an index block at all.
  word0 = 0;
  memcpy(blk.data(), &word0, 8);
  EXPECT_FALSE(PushdownLeafLookup(blk.data(), 1, &value));
}

TEST(PushdownTest, EmptyInputYieldsOneEmptyLeaf) {
  PushdownIndex idx = BuildPushdownIndex({}, 0);
  EXPECT_EQ(idx.levels, 1u);
  EXPECT_EQ(idx.num_blocks(), 1u);
  u64 value = 0;
  EXPECT_FALSE(PushdownLeafLookup(idx.image.data(), 0, &value));
}

TEST(PushdownTest, KeyPrefixOrdersLikeStrings) {
  EXPECT_LT(PushdownKeyPrefix("apple"), PushdownKeyPrefix("banana"));
  EXPECT_LT(PushdownKeyPrefix("app"), PushdownKeyPrefix("apple"));
  EXPECT_EQ(PushdownKeyPrefix("12345678"), PushdownKeyPrefix("12345678x"));
}

TEST(PushdownTest, SsTableIndexMatchesFindBlock) {
  std::map<std::string, Record> records;
  for (int i = 1000; i < 1600; i++) {
    std::string k = "row" + std::to_string(i);
    records[k] = Record{k, std::string(40, 'v'), false};
  }
  SsTableMeta meta;
  (void)BuildSsTable(records, 256, 10, &meta);
  ASSERT_GT(meta.num_blocks(), 2u);
  PushdownIndex idx = BuildSsTablePushdownIndex(meta, 0);
  // Every block's first key resolves (exact match on its prefix) to
  // that block number, agreeing with the SSTable's own directory.
  for (u32 b = 0; b < meta.num_blocks(); b++) {
    const std::string& k = meta.first_keys[b];
    u64 value = 0;
    u32 hops = 0;
    ASSERT_TRUE(PushdownLookupImage(idx, PushdownKeyPrefix(k), &value, &hops))
        << k;
    EXPECT_EQ(value, b) << k;
    EXPECT_EQ(static_cast<i64>(b), meta.FindBlock(k)) << k;
  }
}

}  // namespace
}  // namespace nvmetro::kv

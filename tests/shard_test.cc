// Per-queue shard suite (DESIGN.md §14): every guest queue owns its
// routing slab, cid table and scratch; cross-shard traffic exists only
// for replication fan-out. These tests pin three properties:
//  - shard-count=1 with the flat cid table is bit-identical (simulated
//    time, counters, traces) to the legacy per-shard std::map baseline;
//  - a replication fan-out with one replica leg faulted drains, resyncs
//    and leaves BOTH shards' slabs and cid tables empty;
//  - ten thousand QoS sheds plus deadline aborts leak nothing: slab and
//    cid occupancy return to zero and pool capacity stays bounded.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"
#include "core/router.h"
#include "fault/fault.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "mem/arena.h"
#include "obs/obs.h"
#include "qos/qos.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

constexpr NvmeStatus kShedStatus =
    nvme::MakeStatus(nvme::kSctGeneric, nvme::kScNamespaceNotReady);

// --- Flat cid table vs legacy map equivalence ---------------------------------

struct EquivRun {
  SimTime end_time = 0;
  u64 requests = 0, completed = 0, failed = 0;
  u64 total_spans = 0;
  std::vector<std::string> paths;
};

/// One closed-loop passthrough stack; `legacy` picks the cid-table
/// implementation under ablation (RouterCosts::legacy_cid_map).
EquivRun RunCidStack(bool legacy, u32 queues, int total) {
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.obs = &obs;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  virt::Vm vm(&sim, virt::VmConfig{.memory_bytes = 32 * MiB});
  NvmetroHost::Config hcfg;
  hcfg.costs.legacy_cid_map = legacy;
  hcfg.obs = &obs;
  NvmetroHost host(&sim, &phys, hcfg);
  VirtualController* vc = host.CreateController(&vm, {.vm_id = 1});
  auto prog = functions::PassthroughClassifier();
  EXPECT_TRUE(prog.ok());
  EXPECT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
  host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  EXPECT_TRUE(driver.Init(static_cast<u16>(queues)).ok());

  u64 buf = *vm.memory().AllocPages(1);
  int issued = 0;
  std::function<void(u16)> issue = [&](u16 q) {
    if (issued >= total) return;
    issued++;
    nvme::Sqe sqe = (issued % 2) ? nvme::MakeWrite(1, issued % 64, 1, buf, 0)
                                 : nvme::MakeRead(1, issued % 64, 1, buf, 0);
    driver.Submit(q, sqe, [&, q](NvmeStatus st, u32) {
      EXPECT_EQ(st, nvme::kStatusSuccess);
      issue(q);
    });
  };
  for (u16 q = 0; q < queues; q++) {
    for (int d = 0; d < 8; d++) issue(q);
  }
  sim.Run();

  EquivRun r;
  r.end_time = sim.now();
  r.requests = vc->requests_completed() + vc->requests_failed();
  r.completed = vc->requests_completed();
  r.failed = vc->requests_failed();
  r.total_spans = obs.trace().total_recorded();
  for (u64 id = 1; id <= obs.trace().requests_opened(); id++) {
    r.paths.push_back(obs.trace().PathString(id));
  }
  EXPECT_EQ(obs.trace().open_requests(), 0u);
  return r;
}

TEST(ShardEquivalenceTest, ShardCount1FlatCidTableBitIdenticalToLegacyMap) {
  // The data-structure swap must be invisible in simulated time: at one
  // shard the flat GenTable run and the std::map baseline must agree on
  // every nanosecond, every counter and every trace span.
  EquivRun legacy = RunCidStack(/*legacy=*/true, /*queues=*/1, 400);
  EquivRun flat = RunCidStack(/*legacy=*/false, /*queues=*/1, 400);
  EXPECT_EQ(flat.end_time, legacy.end_time) << "simulated time drifted";
  EXPECT_EQ(flat.requests, legacy.requests);
  EXPECT_EQ(flat.completed, legacy.completed);
  EXPECT_EQ(flat.failed, legacy.failed);
  EXPECT_EQ(flat.total_spans, legacy.total_spans);
  ASSERT_EQ(flat.paths.size(), legacy.paths.size());
  for (usize i = 0; i < flat.paths.size(); i++) {
    EXPECT_EQ(flat.paths[i], legacy.paths[i]) << "request " << i + 1;
  }
}

TEST(ShardEquivalenceTest, MultiShardFlatCidTableBitIdenticalToLegacyMap) {
  // Same bit-identity with four shards live: cid handles are echoes in
  // the device protocol, so sharding the table cannot move time either.
  EquivRun legacy = RunCidStack(/*legacy=*/true, /*queues=*/4, 600);
  EquivRun flat = RunCidStack(/*legacy=*/false, /*queues=*/4, 600);
  EXPECT_EQ(flat.end_time, legacy.end_time) << "simulated time drifted";
  EXPECT_EQ(flat.completed, legacy.completed);
  EXPECT_EQ(flat.total_spans, legacy.total_spans);
  ASSERT_EQ(flat.paths.size(), legacy.paths.size());
  for (usize i = 0; i < flat.paths.size(); i++) {
    EXPECT_EQ(flat.paths[i], legacy.paths[i]) << "request " << i + 1;
  }
}

// --- Replication fan-out with a faulted leg -----------------------------------

TEST(ShardFaultTest, FaultedReplicaLegDrainsAndEmptiesBothShards) {
  // Writes fan out from two guest queues (two shards) to the fast path
  // plus the replicator UIF. The replica link dies mid-run: every write
  // must still reach a guest outcome, resync must clean the mirror, and
  // — the shard contract — both shards' slabs and cid tables must end
  // empty, with no entry stranded by the faulted leg.
  using namespace nvmetro::baselines;
  obs::Observability obs;
  ssd::ControllerConfig drive = Testbed::DefaultDrive();
  drive.obs = &obs;
  auto tb = std::make_unique<Testbed>(drive);
  auto injector = std::make_unique<fault::FaultInjector>(&tb->sim, &obs);
  SolutionParams params;
  params.obs = &obs;
  params.fault = injector.get();
  auto bundle =
      SolutionBundle::Create(tb.get(), SolutionKind::kNvmetroReplication,
                             params);
  ASSERT_NE(bundle, nullptr);

  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kLinkDown,
                         .at_ns = 200 * kUs,
                         .duration_ns = 2 * kMs});
  injector->Arm(plan);

  StorageSolution* sol = bundle->vm_solution(0);
  functions::ReplicatorUif* repl = bundle->replicator(0);
  ASSERT_NE(repl, nullptr);

  const int kWrites = 24;
  const u64 bs = 4096;
  std::vector<std::vector<u8>> pats(kWrites);
  Rng rng(99);
  int ok = 0;
  for (int i = 0; i < kWrites; i++) {
    pats[i].resize(bs);
    rng.Fill(pats[i].data(), bs);
    // Alternate the two shards; spread across the outage window.
    tb->sim.ScheduleAfter(static_cast<SimTime>(i) * 100 * kUs, [&, i] {
      sol->Submit(i % 2, StorageSolution::Op::kWrite, i * bs, bs,
                  pats[i].data(), [&](Status st) {
                    EXPECT_TRUE(st.ok()) << "write " << i;
                    ok++;
                  });
    });
  }
  tb->sim.Run();

  EXPECT_EQ(ok, kWrites);
  EXPECT_GE(repl->degraded_writes(), 1u);
  EXPECT_FALSE(repl->degraded());
  EXPECT_EQ(repl->dirty_sectors(), 0u);
  for (int i = 0; i < kWrites; i++) {
    EXPECT_TRUE(bundle->secondary_drive(0)->store().Matches(
        i * bs, pats[i].data(), bs))
        << "secondary lost write " << i;
  }

  VirtualController* vc = bundle->controller(0);
  ASSERT_GE(vc->num_shards(), 2u);
  for (u32 s = 0; s < 2; s++) {
    // Both shards actually carried traffic...
    EXPECT_GT(vc->shard_stats(s).completed, 0u) << "shard " << s << " idle";
    EXPECT_GT(vc->shard_stats(s).fast_sends, 0u) << "shard " << s;
    EXPECT_GT(vc->shard_stats(s).notify_sends, 0u) << "shard " << s;
    // ...and drained completely despite the dead leg.
    EXPECT_EQ(vc->shard_slots_in_use(s), 0u)
        << "shard " << s << " leaked routing slots";
    EXPECT_EQ(vc->shard_cid_in_use(s), 0u)
        << "shard " << s << " leaked host cids";
  }
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.requests"),
            m.CounterValue("router.completed") +
                m.CounterValue("router.failed"));
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

// --- Shed/abort storm leaves no residue ---------------------------------------

TEST(ShardStressTest, TenThousandShedsLeaveTablesEmptyAndBounded) {
  // Regression for the cid leak on shed/abort paths: a starved QoS
  // tenant sheds the bulk of a 10k-request closed loop with the busy
  // status. Shed requests must put their slot back without ever holding
  // a cid, admitted ones must free theirs on completion — afterwards
  // every table is empty and no pool grew past its warmup size.
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.obs = &obs;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  virt::Vm vm(&sim, virt::VmConfig{.memory_bytes = 32 * MiB});
  NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  NvmetroHost host(&sim, &phys, hcfg);
  VirtualController* vc = host.CreateController(&vm, {.vm_id = 1});
  auto prog = functions::PassthroughClassifier();
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
  // A trickle-rate tenant with a tiny deferral ring: almost everything
  // sheds on arrival.
  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = 2'000;
  qcfg.bucket_depth_ns = 1 * kMs;
  qos::QosScheduler sched(qcfg, &obs);
  ASSERT_TRUE(sched.RegisterTenant({.tenant_id = 1, .max_deferred = 2}).ok());
  vc->AttachQos(&sched, 1);
  host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  ASSERT_TRUE(driver.Init(2).ok());

  u64 buf = *vm.memory().AllocPages(1);
  const int kTotal = 10'000;
  int issued = 0, ok = 0, shed = 0, other = 0;
  std::function<void(u16)> issue = [&](u16 q) {
    if (issued >= kTotal) return;
    issued++;
    driver.Submit(q, nvme::MakeRead(1, issued % 64, 1, buf, 0),
                  [&, q](NvmeStatus st, u32) {
                    if (nvme::StatusOk(st)) {
                      ok++;
                    } else if (st == kShedStatus) {
                      shed++;
                    } else {
                      other++;
                    }
                    issue(q);
                  });
  };
  for (u16 q = 0; q < 2; q++) {
    for (int d = 0; d < 8; d++) issue(q);
  }
  sim.Run();

  EXPECT_EQ(ok + shed + other, kTotal);
  EXPECT_EQ(other, 0);
  EXPECT_GT(shed, 9'000) << "the tenant was not actually starved";
  EXPECT_GT(ok, 0);
  EXPECT_EQ(vc->qos_sheds(), static_cast<u64>(shed));
  EXPECT_EQ(vc->qos_waiting(), 0u);

  for (u32 s = 0; s < vc->num_shards(); s++) {
    EXPECT_EQ(vc->shard_slots_in_use(s), 0u)
        << "shard " << s << " leaked routing slots under shed load";
    EXPECT_EQ(vc->shard_cid_in_use(s), 0u)
        << "shard " << s << " leaked host cids under shed load";
    // Bounded pools: closed-loop depth 8 per shard can never need more
    // than one 64-entry chunk of slab or cid table, 10k sheds or not.
    EXPECT_LE(vc->shard_slab_capacity(s), 64u) << "shard " << s;
    EXPECT_LE(vc->shard_cid_capacity(s), 64u) << "shard " << s;
  }
  std::string err;
  EXPECT_TRUE(sched.CheckConservation(&err)) << err;
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.requests"),
            m.CounterValue("router.completed") +
                m.CounterValue("router.failed"));
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

}  // namespace
}  // namespace nvmetro::core

// Tests for the host block layer: NVMe-backed device (PRP building,
// bounce path), RAM device, NVMe-oF remote wrapper, device-mapper targets
// (linear/crypt/mirror) and the vhost-scsi backend with SCSI translation.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "crypto/xts.h"
#include "kblock/devices.h"
#include "kblock/dm.h"
#include "kblock/scsi.h"
#include "kblock/vhost_scsi.h"
#include "mem/address_space.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"
#include "ssd/controller.h"

namespace nvmetro::kblock {
namespace {

struct KblockFixture : ::testing::Test {
  sim::Simulator sim;
  mem::IommuSpace iommu{nullptr, 1 * GiB};
  std::unique_ptr<ssd::SimulatedController> ctrl;
  std::unique_ptr<NvmeBlockDevice> dev;

  void SetUp() override {
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    ctrl = std::make_unique<ssd::SimulatedController>(&sim, &iommu, cfg);
    dev = std::make_unique<NvmeBlockDevice>(&sim, ctrl.get(), &iommu, 1);
  }

  /// Runs a bio synchronously (in sim time), returning its status.
  Status RunBio(BlockDevice* d, Bio bio) {
    Status result = Internal("never completed");
    bool done = false;
    bio.on_complete = [&](Status st) {
      result = st;
      done = true;
    };
    d->Submit(std::move(bio));
    sim.Run();
    EXPECT_TRUE(done);
    return result;
  }

  Status WriteSync(BlockDevice* d, u64 sector, const std::vector<u8>& data) {
    return RunBio(d, Bio::Write(sector, data.data(), data.size(), nullptr));
  }
  Status ReadSync(BlockDevice* d, u64 sector, std::vector<u8>* out) {
    return RunBio(d,
                  Bio::Read(sector, out->data(), out->size(), nullptr));
  }
};

TEST_F(KblockFixture, NvmeDeviceRoundTrip) {
  Rng rng(1);
  std::vector<u8> in(8192), out(8192);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(WriteSync(dev.get(), 100, in).ok());
  ASSERT_TRUE(ReadSync(dev.get(), 100, &out).ok());
  EXPECT_EQ(in, out);
  // Data physically on the simulated media.
  EXPECT_TRUE(ctrl->store().Matches(100 * 512, in.data(), in.size()));
}

TEST_F(KblockFixture, CapacityMatchesNamespace) {
  EXPECT_EQ(dev->capacity_sectors(), 64 * MiB / 512);
}

TEST_F(KblockFixture, LargeTransferUsesPrpList) {
  Rng rng(2);
  std::vector<u8> in(256 * KiB), out(256 * KiB);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(WriteSync(dev.get(), 0, in).ok());
  ASSERT_TRUE(ReadSync(dev.get(), 0, &out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(KblockFixture, MultiSegmentPageAlignedAvoidsBounce) {
  Rng rng(3);
  std::vector<u8> a(4096), b(4096), out(8192);
  rng.Fill(a.data(), a.size());
  rng.Fill(b.data(), b.size());
  Bio bio;
  bio.op = Bio::Op::kWrite;
  bio.sector = 8;
  bio.segments = {{a.data(), a.size()}, {b.data(), b.size()}};
  ASSERT_TRUE(RunBio(dev.get(), std::move(bio)).ok());
  EXPECT_EQ(dev->bounced_bios(), 0u);
  ASSERT_TRUE(ReadSync(dev.get(), 8, &out).ok());
  EXPECT_EQ(0, memcmp(out.data(), a.data(), 4096));
  EXPECT_EQ(0, memcmp(out.data() + 4096, b.data(), 4096));
}

TEST_F(KblockFixture, UnalignedMiddleSegmentBounces) {
  Rng rng(4);
  std::vector<u8> a(512), b(1024), out(1536);
  rng.Fill(a.data(), a.size());
  rng.Fill(b.data(), b.size());
  Bio bio;
  bio.op = Bio::Op::kWrite;
  bio.sector = 0;
  bio.segments = {{a.data(), a.size()}, {b.data(), b.size()}};
  ASSERT_TRUE(RunBio(dev.get(), std::move(bio)).ok());
  EXPECT_EQ(dev->bounced_bios(), 1u);
  ASSERT_TRUE(ReadSync(dev.get(), 0, &out).ok());
  EXPECT_EQ(0, memcmp(out.data(), a.data(), 512));
  EXPECT_EQ(0, memcmp(out.data() + 512, b.data(), 1024));
}

TEST_F(KblockFixture, BouncedReadScattersBack) {
  Rng rng(5);
  std::vector<u8> in(1536);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(WriteSync(dev.get(), 0, in).ok());
  std::vector<u8> a(512, 0), b(1024, 0);
  Bio bio;
  bio.op = Bio::Op::kRead;
  bio.sector = 0;
  bio.segments = {{a.data(), a.size()}, {b.data(), b.size()}};
  ASSERT_TRUE(RunBio(dev.get(), std::move(bio)).ok());
  EXPECT_EQ(0, memcmp(a.data(), in.data(), 512));
  EXPECT_EQ(0, memcmp(b.data(), in.data() + 512, 1024));
}

TEST_F(KblockFixture, FlushAndDiscard) {
  std::vector<u8> in(4096, 0xDD);
  ASSERT_TRUE(WriteSync(dev.get(), 0, in).ok());
  ASSERT_TRUE(RunBio(dev.get(), Bio::Flush(nullptr)).ok());
  ASSERT_TRUE(RunBio(dev.get(), Bio::Discard(0, 4096, nullptr)).ok());
  std::vector<u8> out(4096, 0xFF);
  ASSERT_TRUE(ReadSync(dev.get(), 0, &out).ok());
  for (u8 b : out) ASSERT_EQ(b, 0);
}

TEST_F(KblockFixture, OutOfRangeIoFails) {
  std::vector<u8> in(512, 1);
  EXPECT_FALSE(WriteSync(dev.get(), dev->capacity_sectors(), in).ok());
}

// --- RamBlockDevice --------------------------------------------------------------

TEST_F(KblockFixture, RamDeviceBasics) {
  RamBlockDevice ram(&sim, 1 * MiB, 2 * kUs);
  std::vector<u8> in(2048, 0x77), out(2048);
  ASSERT_TRUE(WriteSync(&ram, 4, in).ok());
  ASSERT_TRUE(ReadSync(&ram, 4, &out).ok());
  EXPECT_EQ(in, out);
  EXPECT_EQ(ram.capacity_sectors(), 1 * MiB / 512);
}

// --- RemoteBlockDevice -----------------------------------------------------------

TEST_F(KblockFixture, RemoteAddsLinkLatency) {
  RamBlockDevice ram(&sim, 1 * MiB, 1 * kUs);
  NvmeOfLinkParams link;
  link.one_way_ns = 50 * kUs;
  RemoteBlockDevice remote(&sim, &ram, link);
  std::vector<u8> in(512, 1);
  SimTime start = sim.now();
  ASSERT_TRUE(WriteSync(&remote, 0, in).ok());
  SimTime elapsed = sim.now() - start;
  EXPECT_GE(elapsed, 2 * link.one_way_ns + 1 * kUs);
  // Data is on the remote media.
  EXPECT_TRUE(ram.store().Matches(0, in.data(), in.size()));
}

TEST_F(KblockFixture, RemoteBandwidthSerializes) {
  RamBlockDevice ram(&sim, 16 * MiB, 0);
  NvmeOfLinkParams link;
  link.one_way_ns = 1 * kUs;
  link.bytes_per_ns = 1.0;  // 1 GB/s for a visible effect
  RemoteBlockDevice remote(&sim, &ram, link);
  // Two 1 MiB writes back to back: the second waits for link capacity.
  std::vector<u8> buf(1 * MiB, 7);
  int done = 0;
  SimTime t_last = 0;
  for (int i = 0; i < 2; i++) {
    remote.Submit(Bio::Write(i * 2048, buf.data(), buf.size(),
                             [&](Status st) {
                               ASSERT_TRUE(st.ok());
                               done++;
                               t_last = sim.now();
                             }));
  }
  sim.Run();
  EXPECT_EQ(done, 2);
  // 2 MiB over 1 B/ns ~= 2.1 ms minimum.
  EXPECT_GE(t_last, static_cast<SimTime>(2.0 * MiB / 1.0));
}

// --- DmLinear ---------------------------------------------------------------------

TEST_F(KblockFixture, DmLinearRemaps) {
  RamBlockDevice ram(&sim, 1 * MiB, 0);
  DmLinear lin(&ram, /*offset=*/100, /*len=*/500);
  std::vector<u8> in(512, 0x42);
  ASSERT_TRUE(WriteSync(&lin, 7, in).ok());
  EXPECT_TRUE(ram.store().Matches((100 + 7) * 512, in.data(), in.size()));
  EXPECT_EQ(lin.capacity_sectors(), 500u);
}

TEST_F(KblockFixture, DmLinearEnforcesBounds) {
  RamBlockDevice ram(&sim, 1 * MiB, 0);
  DmLinear lin(&ram, 0, 10);
  std::vector<u8> in(512, 1);
  EXPECT_FALSE(WriteSync(&lin, 10, in).ok());
  EXPECT_TRUE(WriteSync(&lin, 9, in).ok());
}

// --- DmCrypt ----------------------------------------------------------------------

struct DmCryptFixture : KblockFixture {
  std::unique_ptr<sim::VCpu> w1, w2;
  std::unique_ptr<RamBlockDevice> lower;
  std::unique_ptr<DmCrypt> crypt;
  std::vector<u8> key = std::vector<u8>(64, 0);

  void SetUp() override {
    KblockFixture::SetUp();
    Rng rng(77);
    rng.Fill(key.data(), key.size());
    w1 = std::make_unique<sim::VCpu>(&sim, "kcryptd0");
    w2 = std::make_unique<sim::VCpu>(&sim, "kcryptd1");
    lower = std::make_unique<RamBlockDevice>(&sim, 8 * MiB, 1 * kUs);
    auto c = DmCrypt::Create(&sim, lower.get(), key.data(), key.size(),
                             {w1.get(), w2.get()});
    ASSERT_TRUE(c.ok());
    crypt = std::move(*c);
  }
};

TEST_F(DmCryptFixture, RoundTrip) {
  Rng rng(5);
  std::vector<u8> in(4096), out(4096);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(WriteSync(crypt.get(), 16, in).ok());
  ASSERT_TRUE(ReadSync(crypt.get(), 16, &out).ok());
  EXPECT_EQ(in, out);
}

TEST_F(DmCryptFixture, MediaHoldsXtsCiphertext) {
  Rng rng(6);
  std::vector<u8> in(1024);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(WriteSync(crypt.get(), 3, in).ok());
  // Media must NOT hold plaintext...
  EXPECT_FALSE(lower->store().Matches(3 * 512, in.data(), in.size()));
  // ...and must hold exactly aes-xts-plain64 ciphertext.
  auto xts = crypto::XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> expect(in.size());
  xts->EncryptRange(3, 512, in.data(), expect.data(), in.size());
  EXPECT_TRUE(lower->store().Matches(3 * 512, expect.data(), expect.size()));
}

TEST_F(DmCryptFixture, ReadDecryptsAcrossSegmentStraddle) {
  Rng rng(7);
  std::vector<u8> in(2048);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(WriteSync(crypt.get(), 0, in).ok());
  // Read into segments that split mid-sector (256B + 1792B).
  std::vector<u8> a(256), b(1792);
  Bio bio;
  bio.op = Bio::Op::kRead;
  bio.sector = 0;
  bio.segments = {{a.data(), a.size()}, {b.data(), b.size()}};
  ASSERT_TRUE(RunBio(crypt.get(), std::move(bio)).ok());
  EXPECT_EQ(0, memcmp(a.data(), in.data(), 256));
  EXPECT_EQ(0, memcmp(b.data(), in.data() + 256, 1792));
}

TEST_F(DmCryptFixture, CryptoCostChargedToWorkers) {
  std::vector<u8> in(128 * KiB, 0x3C);
  ASSERT_TRUE(WriteSync(crypt.get(), 0, in).ok());
  EXPECT_GT(w1->busy_ns() + w2->busy_ns(), 30'000u);
}

TEST_F(DmCryptFixture, UnalignedLengthRejected) {
  std::vector<u8> in(100, 1);
  EXPECT_FALSE(WriteSync(crypt.get(), 0, in).ok());
}

// --- DmMirror ---------------------------------------------------------------------

TEST_F(KblockFixture, MirrorKeepsLegsIdentical) {
  RamBlockDevice p(&sim, 4 * MiB, 1 * kUs), s(&sim, 4 * MiB, 3 * kUs);
  DmMirror mirror(&p, &s);
  Rng rng(8);
  for (int i = 0; i < 20; i++) {
    std::vector<u8> data(512 * (1 + rng.NextBounded(8)));
    rng.Fill(data.data(), data.size());
    u64 sector = rng.NextBounded(1000);
    ASSERT_TRUE(WriteSync(&mirror, sector, data).ok());
    EXPECT_TRUE(p.store().Matches(sector * 512, data.data(), data.size()));
    EXPECT_TRUE(s.store().Matches(sector * 512, data.data(), data.size()));
  }
}

TEST_F(KblockFixture, MirrorWriteWaitsForSlowerLeg) {
  RamBlockDevice p(&sim, 1 * MiB, 1 * kUs), s(&sim, 1 * MiB, 500 * kUs);
  DmMirror mirror(&p, &s);
  std::vector<u8> in(512, 1);
  SimTime start = sim.now();
  ASSERT_TRUE(WriteSync(&mirror, 0, in).ok());
  EXPECT_GE(sim.now() - start, 500 * kUs);
}

TEST_F(KblockFixture, MirrorBalancesReadsRoundRobin) {
  RamBlockDevice p(&sim, 1 * MiB, 1 * kUs), s(&sim, 1 * MiB, 500 * kUs);
  DmMirror mirror(&p, &s);
  std::vector<u8> in(512, 9), out(512);
  ASSERT_TRUE(WriteSync(&mirror, 0, in).ok());
  // Read twice: one fast (local leg), one slow (remote leg).
  SimTime start = sim.now();
  ASSERT_TRUE(ReadSync(&mirror, 0, &out).ok());
  SimTime first = sim.now() - start;
  EXPECT_EQ(out, in);
  start = sim.now();
  ASSERT_TRUE(ReadSync(&mirror, 0, &out).ok());
  SimTime second = sim.now() - start;
  EXPECT_EQ(out, in);
  // One of the two must have hit the 500us leg.
  EXPECT_GT(std::max(first, second), 400 * kUs);
  EXPECT_LT(std::min(first, second), 100 * kUs);
}

TEST_F(KblockFixture, MirrorWithoutBalancingPrefersPrimary) {
  RamBlockDevice p(&sim, 1 * MiB, 1 * kUs), s(&sim, 1 * MiB, 500 * kUs);
  DmMirror mirror(&p, &s, /*read_balance=*/false);
  std::vector<u8> in(512, 9), out(512);
  ASSERT_TRUE(WriteSync(&mirror, 0, in).ok());
  SimTime start = sim.now();
  ASSERT_TRUE(ReadSync(&mirror, 0, &out).ok());
  EXPECT_LT(sim.now() - start, 100 * kUs);  // did not touch the slow leg
  EXPECT_EQ(out, in);
}

TEST_F(KblockFixture, MirrorDegradedReadFallsBack) {
  // Primary with a tiny capacity forces read errors beyond its range;
  // use an NVMe-backed primary with injected errors instead.
  RamBlockDevice s(&sim, 64 * MiB, 1 * kUs);
  DmMirror mirror(dev.get(), &s);
  std::vector<u8> in(512, 0x66), out(512, 0);
  ASSERT_TRUE(WriteSync(&mirror, 5, in).ok());
  ctrl->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead),
      1);
  ASSERT_TRUE(ReadSync(&mirror, 5, &out).ok());
  EXPECT_EQ(out, in);
  EXPECT_EQ(mirror.degraded_reads(), 1u);
}

// --- SCSI translation ----------------------------------------------------------------

TEST(ScsiTest, CdbRoundTrips) {
  scsi::Cdb cdb = scsi::BuildRead16(0x123456789ALL, 77);
  scsi::ParsedCdb p = scsi::ParseCdb(cdb);
  EXPECT_EQ(p.type, scsi::ParsedCdb::Type::kRead);
  EXPECT_EQ(p.lba, 0x123456789Aull);
  EXPECT_EQ(p.nblocks, 77u);

  cdb = scsi::BuildWrite16(42, 8);
  p = scsi::ParseCdb(cdb);
  EXPECT_EQ(p.type, scsi::ParsedCdb::Type::kWrite);
  EXPECT_EQ(p.lba, 42u);
  EXPECT_EQ(p.nblocks, 8u);

  EXPECT_EQ(scsi::ParseCdb(scsi::BuildSynchronizeCache16()).type,
            scsi::ParsedCdb::Type::kSyncCache);
  EXPECT_EQ(scsi::ParseCdb(scsi::BuildReadCapacity16()).type,
            scsi::ParsedCdb::Type::kReadCapacity);
  EXPECT_EQ(scsi::ParseCdb(scsi::BuildTestUnitReady()).type,
            scsi::ParsedCdb::Type::kTestUnitReady);
}

TEST(ScsiTest, BigEndianHelpers) {
  u8 buf[8];
  scsi::PutBe64(buf, 0x0102030405060708ull);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[7], 8);
  EXPECT_EQ(scsi::GetBe64(buf), 0x0102030405060708ull);
  scsi::PutBe32(buf, 0xAABBCCDD);
  EXPECT_EQ(scsi::GetBe32(buf), 0xAABBCCDDu);
}

TEST(ScsiTest, UnknownOpcode) {
  scsi::Cdb cdb;
  cdb.bytes[0] = 0x5E;
  EXPECT_EQ(scsi::ParseCdb(cdb).type, scsi::ParsedCdb::Type::kUnknown);
}

// --- VhostScsiBackend -------------------------------------------------------------------

struct VhostFixture : ::testing::Test {
  sim::Simulator sim;
  sim::VCpu worker{&sim, "vhost-worker"};
  RamBlockDevice disk{&sim, 4 * MiB, 5 * kUs};
  VhostScsiBackend backend{&sim, &worker, &disk, VhostScsiParams{}};

  u8 RunRequest(scsi::Cdb cdb, std::vector<BioSegment> segs) {
    u8 result = 0xFF;
    VhostScsiBackend::Request req;
    req.cdb = cdb;
    req.segments = std::move(segs);
    req.done = [&](u8 status, u8 /*sense*/) { result = status; };
    backend.Enqueue(std::move(req));
    backend.Kick();
    sim.Run();
    return result;
  }
};

TEST_F(VhostFixture, WriteThenReadThroughScsi) {
  Rng rng(21);
  std::vector<u8> in(2048), out(2048, 0);
  rng.Fill(in.data(), in.size());
  EXPECT_EQ(RunRequest(scsi::BuildWrite16(10, 4), {{in.data(), in.size()}}),
            scsi::kGood);
  EXPECT_EQ(RunRequest(scsi::BuildRead16(10, 4), {{out.data(), out.size()}}),
            scsi::kGood);
  EXPECT_EQ(in, out);
}

TEST_F(VhostFixture, ReadCapacityReportsGeometry) {
  std::vector<u8> buf(32, 0);
  EXPECT_EQ(RunRequest(scsi::BuildReadCapacity16(),
                       {{buf.data(), buf.size()}}),
            scsi::kGood);
  EXPECT_EQ(scsi::GetBe64(buf.data()), disk.capacity_sectors() - 1);
  EXPECT_EQ(scsi::GetBe32(buf.data() + 8), 512u);
}

TEST_F(VhostFixture, LengthMismatchIsIllegalRequest) {
  std::vector<u8> buf(512, 0);
  EXPECT_EQ(RunRequest(scsi::BuildWrite16(0, 4), {{buf.data(), buf.size()}}),
            scsi::kCheckCondition);
}

TEST_F(VhostFixture, OutOfRangeIsIllegalRequest) {
  std::vector<u8> buf(512, 0);
  EXPECT_EQ(RunRequest(scsi::BuildWrite16(disk.capacity_sectors(), 1),
                       {{buf.data(), buf.size()}}),
            scsi::kCheckCondition);
}

TEST_F(VhostFixture, WorkerPaysPerRequestCpu) {
  std::vector<u8> buf(512, 0);
  RunRequest(scsi::BuildWrite16(0, 1), {{buf.data(), buf.size()}});
  VhostScsiParams p;
  EXPECT_GE(worker.busy_ns(), p.per_req_cpu_ns + p.per_cpl_cpu_ns);
}

TEST_F(VhostFixture, KickLatencyDelaysService) {
  std::vector<u8> buf(512, 0);
  SimTime start = sim.now();
  RunRequest(scsi::BuildTestUnitReady(), {});
  (void)buf;
  VhostScsiParams p;
  EXPECT_GE(sim.now() - start, p.kick_wakeup_warm_ns);
}

}  // namespace
}  // namespace nvmetro::kblock

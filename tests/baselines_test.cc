// Tests for the storage-virtualization solutions: every kind round-trips
// real data end-to-end; function variants (encryption, replication,
// dm-crypt, dm-mirror) keep their media invariants; CPU accounting and
// relative performance orderings are sane.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"
#include "crypto/xts.h"

namespace nvmetro::baselines {
namespace {

struct SolutionTest : ::testing::TestWithParam<SolutionKind> {
  std::unique_ptr<Testbed> tb = std::make_unique<Testbed>();
  std::unique_ptr<SolutionBundle> bundle;

  void Build(SolutionParams params = {}) {
    bundle = SolutionBundle::Create(tb.get(), GetParam(), params);
    ASSERT_NE(bundle, nullptr);
  }

  Status WriteSync(StorageSolution* sol, u64 off, std::vector<u8>& data) {
    Status result = Internal("pending");
    sol->Submit(0, StorageSolution::Op::kWrite, off, data.size(),
                data.data(), [&](Status st) { result = st; });
    tb->sim.Run();
    return result;
  }
  Status ReadSync(StorageSolution* sol, u64 off, std::vector<u8>* out) {
    Status result = Internal("pending");
    sol->Submit(0, StorageSolution::Op::kRead, off, out->size(),
                out->data(), [&](Status st) { result = st; });
    tb->sim.Run();
    return result;
  }
};

TEST_P(SolutionTest, DataRoundTrip) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  Rng rng(static_cast<u64>(GetParam()) + 5);
  for (u64 len : {u64{512}, u64{4096}, 16 * KiB, 128 * KiB}) {
    std::vector<u8> in(len), out(len, 0);
    rng.Fill(in.data(), in.size());
    u64 off = rng.NextBounded(1000) * 512;
    ASSERT_TRUE(WriteSync(sol, off, in).ok()) << sol->name() << " " << len;
    ASSERT_TRUE(ReadSync(sol, off, &out).ok()) << sol->name() << " " << len;
    ASSERT_EQ(in, out) << sol->name() << " len " << len;
  }
}

TEST_P(SolutionTest, FlushCompletes) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  Status result = Internal("pending");
  sol->Submit(0, StorageSolution::Op::kFlush, 0, 0, nullptr,
              [&](Status st) { result = st; });
  tb->sim.Run();
  EXPECT_TRUE(result.ok()) << sol->name();
}

TEST_P(SolutionTest, ConcurrentRequestsAllComplete) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  int done = 0;
  const int kOps = 64;
  for (int i = 0; i < kOps; i++) {
    sol->Submit(i % 4,
                i % 2 ? StorageSolution::Op::kRead
                      : StorageSolution::Op::kWrite,
                static_cast<u64>(i) * 4096, 4096, nullptr, [&](Status st) {
                  EXPECT_TRUE(st.ok());
                  done++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kOps);
}

TEST_P(SolutionTest, CpuIsAccounted) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  std::vector<u8> data(4096, 1);
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(WriteSync(sol, i * 4096, data).ok());
  }
  EXPECT_GT(sol->vm()->TotalCpuBusyNs(), 0u) << sol->name();
  if (GetParam() != SolutionKind::kPassthrough) {
    // All mediated solutions burn host CPU; passthrough only pays
    // interrupt forwarding (also nonzero, but checked separately).
    EXPECT_GT(bundle->HostAgentCpuNs(), 0u) << sol->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SolutionTest,
    ::testing::Values(SolutionKind::kNvmetro, SolutionKind::kMdev,
                      SolutionKind::kPassthrough, SolutionKind::kVhostScsi,
                      SolutionKind::kQemu, SolutionKind::kSpdk,
                      SolutionKind::kNvmetroEncryption,
                      SolutionKind::kNvmetroSgx, SolutionKind::kDmCrypt,
                      SolutionKind::kNvmetroReplication,
                      SolutionKind::kDmMirror),
    [](const ::testing::TestParamInfo<SolutionKind>& pinfo) {
      std::string name = SolutionKindName(pinfo.param);
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Function-specific invariants -------------------------------------------------

TEST(EncryptionSolutionTest, MediaIsCiphertextBothVariants) {
  for (SolutionKind kind :
       {SolutionKind::kNvmetroEncryption, SolutionKind::kNvmetroSgx,
        SolutionKind::kDmCrypt}) {
    Testbed tb;
    auto bundle = SolutionBundle::Create(&tb, kind);
    ASSERT_NE(bundle, nullptr);
    StorageSolution* sol = bundle->vm_solution(0);
    Rng rng(7);
    std::vector<u8> in(4096);
    rng.Fill(in.data(), in.size());
    Status result = Internal("pending");
    sol->Submit(0, StorageSolution::Op::kWrite, 16 * 512, in.size(),
                in.data(), [&](Status st) { result = st; });
    tb.sim.Run();
    ASSERT_TRUE(result.ok()) << SolutionKindName(kind);
    // Plaintext must not be on the media...
    EXPECT_FALSE(tb.phys->store().Matches(16 * 512, in.data(), in.size()))
        << SolutionKindName(kind);
    // ...the exact aes-xts-plain64 ciphertext must be.
    auto xts = crypto::XtsCipher::Create(bundle->xts_key().data(),
                                         bundle->xts_key().size());
    ASSERT_TRUE(xts.ok());
    std::vector<u8> expect(in.size());
    xts->EncryptRange(16, 512, in.data(), expect.data(), in.size());
    EXPECT_TRUE(
        tb.phys->store().Matches(16 * 512, expect.data(), expect.size()))
        << SolutionKindName(kind);
  }
}

TEST(EncryptionSolutionTest, AllEncryptionVariantsShareOnDiskFormat) {
  // Write through NVMetro encryption; read the SAME media through the
  // dm-crypt baseline (and vice versa) — the paper's compatibility claim.
  Testbed tb;
  SolutionParams params;
  auto nvmetro =
      SolutionBundle::Create(&tb, SolutionKind::kNvmetroEncryption, params);
  ASSERT_NE(nvmetro, nullptr);
  auto dmcrypt = SolutionBundle::Create(&tb, SolutionKind::kDmCrypt, params);
  ASSERT_NE(dmcrypt, nullptr);
  // Same key: SolutionParams has the same seed -> same generated key.
  ASSERT_EQ(nvmetro->xts_key(), dmcrypt->xts_key());

  Rng rng(9);
  std::vector<u8> in(2048), out(2048, 0);
  rng.Fill(in.data(), in.size());
  Status st1 = Internal("pending");
  nvmetro->vm_solution(0)->Submit(0, StorageSolution::Op::kWrite, 0,
                                  in.size(), in.data(),
                                  [&](Status st) { st1 = st; });
  tb.sim.Run();
  ASSERT_TRUE(st1.ok());
  Status st2 = Internal("pending");
  dmcrypt->vm_solution(0)->Submit(0, StorageSolution::Op::kRead, 0,
                                  out.size(), out.data(),
                                  [&](Status st) { st2 = st; });
  tb.sim.Run();
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(in, out);
}

TEST(ReplicationSolutionTest, SecondaryMirrorsData) {
  for (SolutionKind kind :
       {SolutionKind::kNvmetroReplication, SolutionKind::kDmMirror}) {
    Testbed tb;
    auto bundle = SolutionBundle::Create(&tb, kind);
    ASSERT_NE(bundle, nullptr);
    StorageSolution* sol = bundle->vm_solution(0);
    Rng rng(11);
    std::vector<u8> in(8192);
    rng.Fill(in.data(), in.size());
    Status result = Internal("pending");
    sol->Submit(0, StorageSolution::Op::kWrite, 64 * 512, in.size(),
                in.data(), [&](Status st) { result = st; });
    tb.sim.Run();
    ASSERT_TRUE(result.ok()) << SolutionKindName(kind);
    EXPECT_TRUE(tb.phys->store().Matches(64 * 512, in.data(), in.size()))
        << SolutionKindName(kind);
    ASSERT_NE(bundle->secondary_drive(0), nullptr);
    EXPECT_TRUE(bundle->secondary_drive(0)->store().Matches(
        64 * 512, in.data(), in.size()))
        << SolutionKindName(kind);
  }
}

TEST(MultiVmSolutionTest, NvmetroPartitionsStayIsolated) {
  Testbed tb;
  SolutionParams params;
  params.num_vms = 4;
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
  ASSERT_NE(bundle, nullptr);
  ASSERT_EQ(bundle->num_vms(), 4u);
  Rng rng(13);
  std::vector<std::vector<u8>> data(4);
  int done = 0;
  for (u32 i = 0; i < 4; i++) {
    data[i] = std::vector<u8>(4096);
    rng.Fill(data[i].data(), data[i].size());
    bundle->vm_solution(i)->Submit(
        0, StorageSolution::Op::kWrite, 0, data[i].size(), data[i].data(),
        [&](Status st) {
          EXPECT_TRUE(st.ok());
          done++;
        });
  }
  tb.sim.Run();
  EXPECT_EQ(done, 4);
  // Read back from each VM: no cross-talk despite all using offset 0.
  for (u32 i = 0; i < 4; i++) {
    std::vector<u8> out(4096, 0);
    Status st = Internal("pending");
    bundle->vm_solution(i)->Submit(0, StorageSolution::Op::kRead, 0,
                                   out.size(), out.data(),
                                   [&](Status s) { st = s; });
    tb.sim.Run();
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(out, data[i]) << "vm " << i;
  }
}

TEST(QemuCacheTest, SequentialRereadsHitPageCache) {
  Testbed tb;
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kQemu);
  ASSERT_NE(bundle, nullptr);
  StorageSolution* sol = bundle->vm_solution(0);
  const u64 region = 8 * MiB;
  const u64 bs = 64 * KiB;
  // Two sequential passes; second should mostly hit.
  for (int pass = 0; pass < 2; pass++) {
    for (u64 off = 0; off < region; off += bs) {
      Status st = Internal("pending");
      sol->Submit(0, StorageSolution::Op::kRead, off, bs, nullptr,
                  [&](Status s) { st = s; });
      tb.sim.Run();
      ASSERT_TRUE(st.ok());
    }
  }
  const auto* qemu = bundle->qemu_backend();
  ASSERT_NE(qemu, nullptr);
  EXPECT_GT(qemu->cache().hits(), qemu->cache().misses());
}

}  // namespace
}  // namespace nvmetro::baselines

// Unit tests for the storage-function classifiers: each shipped eBPF
// program is verified against the NVMetro context and its verdicts are
// checked hook by hook — plus end-to-end tests of the map-based QoS
// (token bucket) classifier through the router.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/classifier.h"
#include "core/router.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::functions {
namespace {

using core::ClassifierCtx;
using core::ClassifierRuntime;

std::unique_ptr<ClassifierRuntime> Load(Result<ebpf::Program> prog) {
  if (!prog.ok()) {
    ADD_FAILURE() << prog.status().ToString();
    return nullptr;
  }
  auto rt = ClassifierRuntime::Create(std::move(*prog));
  if (!rt.ok()) {
    ADD_FAILURE() << rt.status().ToString();
    return nullptr;
  }
  return std::move(*rt);
}

u64 RunVerdict(ClassifierRuntime* rt, ClassifierCtx* ctx) {
  auto r = rt->Run(ctx);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  return r.verdict;
}

TEST(ClassifierUnitTest, AllShippedClassifiersVerify) {
  EXPECT_TRUE(ClassifierRuntime::Create(*PassthroughClassifier()).ok());
  EXPECT_TRUE(ClassifierRuntime::Create(*EncryptorClassifier()).ok());
  EXPECT_TRUE(ClassifierRuntime::Create(*ReplicatorClassifier()).ok());
  EXPECT_TRUE(ClassifierRuntime::Create(*ReadOnlyClassifier()).ok());
  EXPECT_TRUE(ClassifierRuntime::Create(*VendorPassClassifier()).ok());
  EXPECT_TRUE(ClassifierRuntime::Create(*KvPassClassifier()).ok());
  EXPECT_TRUE(
      ClassifierRuntime::Create(*RateLimitClassifier(MakeQosMap(100, 10)))
          .ok());
}

TEST(ClassifierUnitTest, PassthroughTranslatesAndRoutesFast) {
  auto rt = Load(PassthroughClassifier());
  ClassifierCtx ctx;
  ctx.opcode = nvme::kCmdRead;
  ctx.slba = 100;
  ctx.part_offset = 5000;
  u64 v = RunVerdict(rt.get(), &ctx);
  EXPECT_EQ(v, core::kSendHq | core::kWillCompleteHq);
  EXPECT_EQ(ctx.slba, 5100u);  // direct mediation: LBA translated
}

TEST(ClassifierUnitTest, PassthroughSkipsTranslationForFlush) {
  auto rt = Load(PassthroughClassifier());
  ClassifierCtx ctx;
  ctx.opcode = nvme::kCmdFlush;
  ctx.slba = 0;
  ctx.part_offset = 5000;
  u64 v = RunVerdict(rt.get(), &ctx);
  EXPECT_EQ(v, core::kSendHq | core::kWillCompleteHq);
  EXPECT_EQ(ctx.slba, 0u);  // not a data command: no translation
}

TEST(ClassifierUnitTest, EncryptorListingOneSemantics) {
  auto rt = Load(EncryptorClassifier());
  // New read (HOOK_VSQ): device first, hook on completion, wait.
  ClassifierCtx rd;
  rd.current_hook = core::kHookVsq;
  rd.opcode = nvme::kCmdRead;
  rd.part_offset = 64;
  rd.slba = 2;
  EXPECT_EQ(RunVerdict(rt.get(), &rd),
            core::kSendHq | core::kHookOnHcq | core::kWaitForHook);
  EXPECT_EQ(rd.slba, 66u);
  // New write: straight to the UIF.
  ClassifierCtx wr;
  wr.current_hook = core::kHookVsq;
  wr.opcode = nvme::kCmdWrite;
  EXPECT_EQ(RunVerdict(rt.get(), &wr),
            core::kSendNq | core::kWillCompleteNq);
  // Device read completed OK: continue in the UIF.
  ClassifierCtx hcq_ok;
  hcq_ok.current_hook = core::kHookHcq;
  hcq_ok.error = 0;
  EXPECT_EQ(RunVerdict(rt.get(), &hcq_ok),
            core::kSendNq | core::kWillCompleteNq);
  // Device read failed: forward error | COMPLETE (Listing 1 line 8).
  ClassifierCtx hcq_err;
  hcq_err.current_hook = core::kHookHcq;
  hcq_err.error =
      nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead);
  u64 v = RunVerdict(rt.get(), &hcq_err);
  EXPECT_EQ(v & core::kComplete, core::kComplete);
  EXPECT_EQ(v & core::kStatusMask, hcq_err.error);
}

TEST(ClassifierUnitTest, ReplicatorFansOutWritesOnly) {
  auto rt = Load(ReplicatorClassifier());
  ClassifierCtx wr;
  wr.opcode = nvme::kCmdWrite;
  EXPECT_EQ(RunVerdict(rt.get(), &wr),
            core::kSendHq | core::kSendNq | core::kWillCompleteHq |
                core::kWillCompleteNq);
  ClassifierCtx rd;
  rd.opcode = nvme::kCmdRead;
  EXPECT_EQ(RunVerdict(rt.get(), &rd),
            core::kSendHq | core::kWillCompleteHq);
}

TEST(ClassifierUnitTest, ReadOnlyDeniesWriteClass) {
  auto rt = Load(ReadOnlyClassifier());
  for (u8 opcode :
       {nvme::kCmdWrite, nvme::kCmdWriteZeroes, nvme::kCmdDsm}) {
    ClassifierCtx ctx;
    ctx.opcode = opcode;
    u64 v = RunVerdict(rt.get(), &ctx);
    EXPECT_EQ(v & core::kComplete, core::kComplete) << int(opcode);
    EXPECT_EQ(v & core::kStatusMask,
              nvme::MakeStatus(nvme::kSctMediaError, nvme::kScAccessDenied));
  }
  ClassifierCtx rd;
  rd.opcode = nvme::kCmdRead;
  EXPECT_EQ(RunVerdict(rt.get(), &rd),
            core::kSendHq | core::kWillCompleteHq);
}

TEST(ClassifierUnitTest, KvPassRoutesKvUntranslated) {
  auto rt = Load(KvPassClassifier());
  ClassifierCtx kv;
  kv.opcode = nvme::kCmdKvRetrieve;
  kv.slba = 1234;  // KV commands carry no LBA; must stay untouched
  kv.part_offset = 999;
  EXPECT_EQ(RunVerdict(rt.get(), &kv),
            core::kSendHq | core::kWillCompleteHq);
  EXPECT_EQ(kv.slba, 1234u);
  ClassifierCtx rd;
  rd.opcode = nvme::kCmdRead;
  rd.slba = 10;
  rd.part_offset = 999;
  RunVerdict(rt.get(), &rd);
  EXPECT_EQ(rd.slba, 1009u);  // NVM commands are still translated
}

// --- RateLimitClassifier ------------------------------------------------------

TEST(RateLimitTest, BurstThenThrottleThenRefill) {
  auto map = MakeQosMap(/*rate=*/1'000, /*burst=*/5);
  auto rt = Load(RateLimitClassifier(map));
  ASSERT_NE(rt, nullptr);
  u64 now = 1'000'000;  // ns
  rt->env().ktime_ns = [&now] { return now; };

  auto verdict = [&]() {
    ClassifierCtx ctx;
    ctx.opcode = nvme::kCmdRead;
    return RunVerdict(rt.get(), &ctx);
  };
  const u64 kAdmit = core::kSendHq | core::kWillCompleteHq;

  // Burst of 5 admitted, 6th throttled.
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(verdict(), kAdmit) << i;
  }
  u64 denied = verdict();
  EXPECT_EQ(denied & core::kComplete, core::kComplete);
  EXPECT_EQ(denied & core::kStatusMask,
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScAbortRequested));

  // 1000 req/s = 1 token per ms: refill and try again.
  now += 1 * kMs;
  EXPECT_EQ(verdict(), kAdmit);
  EXPECT_EQ(verdict() & core::kComplete, core::kComplete);

  // A long gap refills only up to the burst.
  now += 60ull * kSec;
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(verdict(), kAdmit) << "post-refill " << i;
  }
  EXPECT_EQ(verdict() & core::kComplete, core::kComplete);
}

TEST(RateLimitTest, EndToEndThroughRouter) {
  sim::Simulator sim;
  mem::IommuSpace dma(nullptr, 1ull << 40);
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  virt::Vm vm(&sim, {.name = "vm", .memory_bytes = 16 * MiB, .vcpus = 1});
  core::NvmetroHost host(&sim, &phys);
  auto* vc = host.CreateController(&vm, {.vm_id = 1});
  auto map = MakeQosMap(/*rate=*/1'000, /*burst=*/3);
  ASSERT_TRUE(vc->InstallClassifier(*RateLimitClassifier(map)).ok());
  host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  ASSERT_TRUE(driver.Init(1).ok());

  mem::GuestMemory& gm = vm.memory();
  u64 buf = *gm.AllocPages(1);
  int admitted = 0, throttled = 0;
  // Fire 10 instantly: 3 burst tokens -> ~3 admitted.
  for (int i = 0; i < 10; i++) {
    driver.Submit(0, nvme::MakeRead(1, i, 1, buf, 0),
                  [&](nvme::NvmeStatus st, u32) {
                    if (nvme::StatusOk(st)) {
                      admitted++;
                    } else {
                      throttled++;
                    }
                  });
  }
  sim.Run();
  EXPECT_EQ(admitted + throttled, 10);
  EXPECT_GE(admitted, 3);
  EXPECT_GE(throttled, 5);

  // After simulated time passes, tokens return.
  sim.RunFor(10 * kMs);
  nvme::NvmeStatus st = 0xFFF;
  driver.Submit(0, nvme::MakeRead(1, 0, 1, buf, 0),
                [&](nvme::NvmeStatus s, u32) { st = s; });
  sim.Run();
  EXPECT_EQ(st, nvme::kStatusSuccess);
}

}  // namespace
}  // namespace nvmetro::functions

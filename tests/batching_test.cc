// Batching equivalence suite (DESIGN.md §10).
//
// The batched submission/completion pipeline must be invisible when off:
// with max_batch == 1 every simulated nanosecond, counter and trace span
// is bit-identical to the pre-batch pipeline (the golden traces in
// obs_test.cc pin that side). These tests pin the other side:
//  - max_batch > 1 at QD1 degenerates to size-1 batches whose cost
//    splits sum back to the legacy figures — timing must stay identical;
//  - under queue depth, batches form, doorbells/interrupts coalesce, and
//    the per-path accounting invariant sends == completions + aborts +
//    timeouts holds, with and without injected faults.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/notify.h"
#include "ebpf/assembler.h"
#include "core/router.h"
#include "functions/classifiers.h"
#include "kblock/devices.h"
#include "mem/address_space.h"
#include "obs/obs.h"
#include "ssd/controller.h"
#include "uif/framework.h"
#include "uif/uring.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

struct RunResult {
  SimTime end_time = 0;
  u64 router_busy_ns = 0;
  u64 total_cpu_ns = 0;
  int completed = 0;
  int failed = 0;
  /// Per-shard IRQ / coalesce scratch capacities sampled right after
  /// queue setup and again after the run drains — the pre-reserve
  /// contract says they never move once the queues exist.
  std::vector<usize> irq_caps_setup, irq_caps_end;
  std::vector<usize> coalesce_caps_setup, coalesce_caps_end;
};

struct RunConfig {
  RouterCosts costs{};
  int depth = 1;
  int total = 300;
  /// Guest I/O queues, each with its own submitting vCPU running `depth`
  /// outstanding commands. One guest queue cannot out-submit the router
  /// (guest per-command CPU exceeds the router's), so forming real
  /// batches requires several queues sharing the one router worker —
  /// the same shared-worker regime as the bench's batch sweep.
  u32 queues = 1;
  /// Inject this many media errors partway through the run.
  u32 inject_errors = 0;
  /// Replace the default drive with one fast enough that the router
  /// worker is the bottleneck — the regime where batching moves
  /// throughput, not just CPU (the default drive's 3.3us serial command
  /// overhead caps IOPS below what one router worker can push).
  bool fast_drive = false;
  obs::Observability* obs = nullptr;
};

/// Closed-loop passthrough stack, the RunStack pattern from obs_test.cc
/// parameterized by RouterCosts — the timing-equivalence harness.
RunResult RunBatchStack(const RunConfig& rc) {
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.obs = rc.obs;
  if (rc.fast_drive) {
    // Both serial stages of the drive — the firmware pipeline and the
    // per-command bus setup — must clear the router's per-request cost,
    // or they pin the completion time no matter what the router saves.
    cfg.latency.cmd_overhead_ns = 200;
    cfg.latency.bus_setup_ns = 100;
    cfg.latency.read_media_ns = 4000;
    cfg.latency.write_media_ns = 3000;
    cfg.latency.slow_op_rate = 0;
    cfg.latency.jitter = 0;
  }
  ssd::SimulatedController phys(&sim, &dma, cfg);
  virt::Vm vm(&sim, virt::VmConfig{.memory_bytes = 32 * MiB});
  NvmetroHost::Config hcfg;
  hcfg.costs = rc.costs;
  hcfg.obs = rc.obs;
  NvmetroHost host(&sim, &phys, hcfg);
  VirtualController* vc = host.CreateController(&vm, {.vm_id = 1});
  auto prog = functions::PassthroughClassifier();
  EXPECT_TRUE(prog.ok());
  EXPECT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
  host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  EXPECT_TRUE(driver.Init(static_cast<u16>(rc.queues)).ok());

  if (rc.inject_errors) {
    phys.InjectError(
        1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead),
        rc.inject_errors);
  }

  RunResult r;
  auto snap_caps = [&](std::vector<usize>* irq, std::vector<usize>* coal) {
    for (u32 s = 0; s < vc->num_shards(); s++) {
      irq->push_back(vc->shard_irq_scratch_capacity(s));
      coal->push_back(vc->shard_coalesce_scratch_capacity(s));
    }
  };
  snap_caps(&r.irq_caps_setup, &r.coalesce_caps_setup);
  u64 buf = *vm.memory().AllocPages(1);
  int issued = 0;
  std::function<void(u16)> issue = [&](u16 q) {
    if (issued >= rc.total) return;
    issued++;
    nvme::Sqe sqe = (issued % 3)
                        ? nvme::MakeRead(1, issued % 32, 1, buf, 0)
                        : nvme::MakeWrite(1, issued % 32, 1, buf, 0);
    driver.Submit(q, sqe, [&, q](NvmeStatus st, u32) {
      r.completed++;
      if (!nvme::StatusOk(st)) r.failed++;
      issue(q);
    });
  };
  for (u16 q = 0; q < rc.queues; q++) {
    for (int d = 0; d < rc.depth; d++) issue(q);
  }
  sim.Run();

  snap_caps(&r.irq_caps_end, &r.coalesce_caps_end);
  r.end_time = sim.now();
  r.router_busy_ns = host.worker(0)->busy_ns();
  r.total_cpu_ns = sim.TotalCpuBusyNs();
  return r;
}

void CheckPathBalance(const obs::MetricsRegistry& m) {
  for (const char* path : {"fast", "notify", "kernel"}) {
    std::string base = std::string("router.") + path;
    EXPECT_EQ(m.CounterValue(base + ".sends"),
              m.CounterValue(base + ".completions") +
                  m.CounterValue(base + ".aborts") +
                  m.CounterValue(base + ".timeouts"))
        << base;
  }
}

// --- QD1 equivalence ----------------------------------------------------------

TEST(BatchingEquivalenceTest, Qd1TimingBitIdenticalAcrossBatchSizes) {
  // At queue depth 1 every batch has exactly one command: the split costs
  // (setup + per-command remainder, doorbell part deferred to flush) must
  // sum back to the legacy figures with not one nanosecond of drift.
  RunConfig base;
  RunResult unbatched = RunBatchStack(base);
  for (u32 mb : {4u, 32u}) {
    RunConfig rc;
    rc.costs.max_batch = mb;
    RunResult batched = RunBatchStack(rc);
    EXPECT_EQ(batched.end_time, unbatched.end_time) << "max_batch=" << mb;
    EXPECT_EQ(batched.router_busy_ns, unbatched.router_busy_ns)
        << "max_batch=" << mb;
    EXPECT_EQ(batched.total_cpu_ns, unbatched.total_cpu_ns)
        << "max_batch=" << mb;
    EXPECT_EQ(batched.completed, unbatched.completed);
  }
}

TEST(BatchingEquivalenceTest, Qd1GoldenTraceAndCountersUnchanged) {
  // Size-1 batches leave the span sequence untouched — no BATCH span, one
  // IRQ_INJECT per request — and every router counter matches the
  // unbatched run. (The full metrics export differs only by the
  // router.batch_size histogram, which exists only when batching is on.)
  obs::Observability obs_off, obs_on;
  RunConfig off;
  off.obs = &obs_off;
  RunBatchStack(off);
  RunConfig on;
  on.costs.max_batch = 32;
  on.obs = &obs_on;
  RunBatchStack(on);

  for (const char* name :
       {"router.requests", "router.completed", "router.failed",
        "router.classifier.runs", "router.fast.sends",
        "router.fast.completions", "router.irq.injects", "ssd.commands"}) {
    EXPECT_EQ(obs_on.metrics().CounterValue(name),
              obs_off.metrics().CounterValue(name))
        << name;
  }
  EXPECT_EQ(obs_on.trace().total_recorded(),
            obs_off.trace().total_recorded());
  EXPECT_EQ(obs_on.trace().open_requests(), 0u);
  EXPECT_EQ(obs_on.trace().PathString(1),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE > "
            "VCQ_POST > IRQ_INJECT");
  // Every batch recorded size 1.
  const LatencyHistogram* bs =
      obs_on.metrics().FindHistogram("router.batch_size");
  ASSERT_NE(bs, nullptr);
  EXPECT_EQ(bs->max(), 1u);
  // ...and the histogram is not even registered when batching is off.
  EXPECT_EQ(obs_off.metrics().FindHistogram("router.batch_size"), nullptr);
}

// --- Queue-depth behavior -----------------------------------------------------

TEST(BatchingEquivalenceTest, Qd8FormsBatchesAndKeepsBalance) {
  obs::Observability obs;
  RunConfig rc;
  rc.costs.max_batch = 32;
  rc.depth = 8;
  rc.total = 500;
  rc.obs = &obs;
  RunResult r = RunBatchStack(rc);
  EXPECT_EQ(r.completed, 500);
  EXPECT_EQ(r.failed, 0);
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.requests"), 500u);
  EXPECT_EQ(m.CounterValue("router.completed"), 500u);
  CheckPathBalance(m);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
  // The initial 8-deep burst alone guarantees a real batch formed.
  const LatencyHistogram* bs = m.FindHistogram("router.batch_size");
  ASSERT_NE(bs, nullptr);
  EXPECT_GT(bs->max(), 1u);
  // Batched requests carry the BATCH span (aux = batch size), so more
  // than the unbatched 6 spans per request were recorded in total.
  EXPECT_GT(obs.trace().total_recorded(), 500u * 6);
  // Larger batches mean fewer interrupts than guest-visible completions.
  EXPECT_LT(m.CounterValue("router.irq.injects"),
            m.CounterValue("router.completed"));
}

TEST(BatchingEquivalenceTest, Qd8BatchingNeverSlowerOnSlowDrive) {
  // On the default drive the SSD's serial command overhead is the
  // bottleneck: batching saves router work (fewer interrupts, amortized
  // setup) but must not move completion time at all. Note router busy_ns
  // is wall time here — a busy-polling worker burns 100% CPU regardless
  // of how much work each dispatch does.
  RunConfig off;
  off.depth = 8;
  off.total = 500;
  RunResult unbatched = RunBatchStack(off);
  RunConfig on = off;
  on.costs.max_batch = 32;
  RunResult batched = RunBatchStack(on);
  EXPECT_EQ(batched.completed, unbatched.completed);
  EXPECT_LE(batched.end_time, unbatched.end_time);
}

TEST(BatchingEquivalenceTest, Qd8BatchingFasterWhenRouterBound) {
  // With a fast drive and four guest queues sharing the one router
  // worker, the router is the bottleneck: the amortized per-batch costs
  // translate directly into throughput, and the batched run must finish
  // the same closed-loop workload in measurably less simulated time.
  RunConfig off;
  off.depth = 8;
  off.total = 500;
  off.queues = 4;
  off.fast_drive = true;
  RunResult unbatched = RunBatchStack(off);
  RunConfig on = off;
  on.costs.max_batch = 32;
  RunResult batched = RunBatchStack(on);
  EXPECT_EQ(batched.completed, unbatched.completed);
  EXPECT_LT(batched.end_time, unbatched.end_time);
  // At least 10% faster end-to-end (the bench's QD32 sweep shows more).
  EXPECT_LT(static_cast<double>(batched.end_time),
            0.9 * static_cast<double>(unbatched.end_time));
}

TEST(BatchingEquivalenceTest, CoalescingDelayMergesInterrupts) {
  obs::Observability plain_obs, coal_obs;
  RunConfig plain;
  plain.costs.max_batch = 32;
  plain.depth = 8;
  plain.total = 400;
  plain.obs = &plain_obs;
  RunResult base = RunBatchStack(plain);

  RunConfig coal = plain;
  coal.costs.completion_coalesce_ns = 20 * kUs;
  coal.obs = &coal_obs;
  RunResult merged = RunBatchStack(coal);

  EXPECT_EQ(merged.completed, 400);
  EXPECT_EQ(coal_obs.trace().open_requests(), 0u);
  CheckPathBalance(coal_obs.metrics());
  // Holding completions for up to 20us lets more of them share one
  // interrupt than flush-time batching alone.
  EXPECT_LT(coal_obs.metrics().CounterValue("router.irq.injects"),
            plain_obs.metrics().CounterValue("router.irq.injects"));
  // The delay is bounded: the run ends at most one coalesce window after
  // the undelayed run.
  EXPECT_LE(merged.end_time, base.end_time + 400 * 20 * kUs);
  EXPECT_GE(merged.end_time, base.end_time);
}

TEST(BatchingEquivalenceTest, ScratchCapacityStableUnderCoalescedBursts) {
  // The IRQ and coalesce scratch vectors are reserved once at queue
  // setup (to the virtual CQ depth, which bounds any batch) and must
  // never reallocate afterwards — the zero-alloc steady-state contract.
  // Drive the worst case for both: four queues, deep batches, and a
  // coalesce window that parks completions in the scratch between
  // flushes, on a drive fast enough that real batches form.
  RunConfig rc;
  rc.costs.max_batch = 32;
  rc.costs.completion_coalesce_ns = 20 * kUs;
  rc.depth = 8;
  rc.total = 500;
  rc.queues = 4;
  rc.fast_drive = true;
  RunResult r = RunBatchStack(rc);
  EXPECT_EQ(r.completed, 500);

  ASSERT_EQ(r.irq_caps_setup.size(), 4u);
  ASSERT_EQ(r.irq_caps_end.size(), 4u);
  for (u32 s = 0; s < 4; s++) {
    // Reserved at setup to at least a full batch...
    EXPECT_GE(r.irq_caps_setup[s], rc.costs.max_batch) << "shard " << s;
    EXPECT_GE(r.coalesce_caps_setup[s], rc.costs.max_batch) << "shard " << s;
    // ...and not one byte of growth after 500 coalesced completions.
    EXPECT_EQ(r.irq_caps_end[s], r.irq_caps_setup[s]) << "shard " << s;
    EXPECT_EQ(r.coalesce_caps_end[s], r.coalesce_caps_setup[s])
        << "shard " << s;
  }
}

TEST(BatchingEquivalenceTest, InjectedErrorsKeepBalanceUnderBatching) {
  obs::Observability obs;
  RunConfig rc;
  rc.costs.max_batch = 16;
  rc.depth = 8;
  rc.total = 300;
  rc.inject_errors = 25;
  rc.obs = &obs;
  RunResult r = RunBatchStack(rc);
  EXPECT_EQ(r.completed, 300);  // errors still complete to the guest
  EXPECT_EQ(r.failed, 25);
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.fast.errors"), 25u);
  CheckPathBalance(m);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

// --- Notify path under batching -----------------------------------------------

struct EchoUif : uif::UifBase {
  bool work(const nvme::Sqe&, u32, u16& status) override {
    status = nvme::kStatusSuccess;
    return false;
  }
};

TEST(BatchingEquivalenceTest, NotifyPathBatchedKickAndUifHarvest) {
  // Route everything through the UIF: the router's NSQ pushes are kicked
  // once per batch (NotifyChannel::EndBatch) and the UIF framework
  // harvests up to its own max_batch per dispatch; accounting must
  // balance end to end.
  const char* kAllToUif =
      "  mov r0, 0x240000\n"  // SEND_NQ | WILL_COMPLETE_NQ
      "  exit\n";
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.obs = &obs;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  virt::Vm vm(&sim, virt::VmConfig{.memory_bytes = 32 * MiB});
  NvmetroHost::Config hcfg;
  hcfg.costs.max_batch = 16;
  hcfg.obs = &obs;
  NvmetroHost host(&sim, &phys, hcfg);
  VirtualController* vc = host.CreateController(&vm, {.vm_id = 1});
  auto prog = ebpf::Assemble(kAllToUif);
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
  NotifyChannel channel;
  uif::UifHostParams params;
  params.max_batch = 16;
  params.obs = &obs;
  uif::UifHost uif_host(&sim, "echo", params);
  EchoUif echo;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, &vm, &echo);
  host.Start();
  uif_host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  ASSERT_TRUE(driver.Init(1).ok());

  u64 buf = *vm.memory().AllocPages(1);
  int completed = 0, issued = 0;
  const int kTotal = 300;
  std::function<void()> issue = [&] {
    if (issued >= kTotal) return;
    issued++;
    driver.Submit(0, nvme::MakeWrite(1, issued % 16, 1, buf, 0),
                  [&](NvmeStatus st, u32) {
                    EXPECT_EQ(st, nvme::kStatusSuccess);
                    completed++;
                    issue();
                  });
  };
  for (int d = 0; d < 8; d++) issue();
  sim.Run();
  EXPECT_EQ(completed, kTotal);
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.notify.sends"), 300u);
  EXPECT_EQ(m.CounterValue("router.notify.completions"), 300u);
  EXPECT_EQ(m.CounterValue("uif.requests"), 300u);
  EXPECT_EQ(m.CounterValue("uif.responses"), 300u);
  CheckPathBalance(m);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

// --- NotifyChannel batch-kick unit --------------------------------------------

TEST(NotifyChannelBatchTest, EndBatchFiresSingleDeferredKick) {
  NotifyChannel ch;
  int kicks = 0;
  ch.SetRequestNotify([&] { kicks++; });
  NotifyEntry e;
  e.sqe = nvme::MakeFlush(1);

  ch.PushRequest(e);
  EXPECT_EQ(kicks, 1);  // unbatched: one kick per push

  ch.BeginBatch();
  ch.PushRequest(e);
  ch.PushRequest(e);
  ch.PushRequest(e);
  EXPECT_EQ(kicks, 1);          // deferred while batching
  EXPECT_TRUE(ch.EndBatch());   // one kick for the three pushes
  EXPECT_EQ(kicks, 2);
  EXPECT_FALSE(ch.EndBatch());  // nothing pending: no spurious kick
  EXPECT_EQ(kicks, 2);

  ch.BeginBatch();
  EXPECT_FALSE(ch.EndBatch());  // empty batch: no kick
  EXPECT_EQ(kicks, 2);
  EXPECT_EQ(ch.PendingRequests(), 4u);
}

// --- Uring batched submission -------------------------------------------------

TEST(UringBatchTest, StagedOpsShareOneEnterAndAutoFlush) {
  sim::Simulator sim;
  sim::VCpu cpu(&sim, "uif0");
  kblock::RamBlockDevice dev(&sim, 4 * MiB);
  uif::UringParams params;
  params.submit_batch = 8;
  uif::Uring ring(&sim, &dev, &cpu, params);

  std::vector<u8> data(512, 0xAB);
  int done = 0;
  for (int i = 0; i < 3; i++) {
    auto t = std::make_unique<uif::IovecTicket>();
    t->iovecs = {{data.data(), data.size()}};
    t->done = [&](Status st) {
      EXPECT_TRUE(st.ok());
      done++;
    };
    ring.QueueWritev(std::move(t), i);
  }
  EXPECT_EQ(ring.staged(), 3u);  // held for the end-of-event flush
  EXPECT_EQ(ring.enters(), 0u);
  sim.Run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(ring.staged(), 0u);
  EXPECT_EQ(ring.enters(), 1u);  // one io_uring_enter for the batch
  EXPECT_EQ(ring.submitted(), 3u);
  EXPECT_EQ(ring.completed(), 3u);
}

TEST(UringBatchTest, BatchFillFlushesImmediately) {
  sim::Simulator sim;
  sim::VCpu cpu(&sim, "uif0");
  kblock::RamBlockDevice dev(&sim, 4 * MiB);
  uif::UringParams params;
  params.submit_batch = 2;
  uif::Uring ring(&sim, &dev, &cpu, params);

  std::vector<u8> data(512, 0x5C);
  for (int i = 0; i < 4; i++) {
    auto t = std::make_unique<uif::IovecTicket>();
    t->iovecs = {{data.data(), data.size()}};
    ring.QueueWritev(std::move(t), i);
  }
  EXPECT_EQ(ring.enters(), 2u);  // two full batches flushed on the spot
  EXPECT_EQ(ring.staged(), 0u);
  sim.Run();
  EXPECT_EQ(ring.completed(), 4u);
}

TEST(UringBatchTest, BatchOfOneCostsExactlyLegacySubmit) {
  // Calibration: enter_cpu_ns is carved out of submit_cpu_ns, so a lone
  // staged op burns the same CPU as the legacy per-op path.
  auto run = [](u32 submit_batch) {
    sim::Simulator sim;
    sim::VCpu cpu(&sim, "uif0");
    kblock::RamBlockDevice dev(&sim, 4 * MiB);
    uif::UringParams params;
    params.submit_batch = submit_batch;
    uif::Uring ring(&sim, &dev, &cpu, params);
    std::vector<u8> data(512, 0x11);
    auto t = std::make_unique<uif::IovecTicket>();
    t->iovecs = {{data.data(), data.size()}};
    ring.QueueWritev(std::move(t), 0);
    sim.Run();
    EXPECT_EQ(ring.completed(), 1u);
    return std::pair<SimTime, u64>(sim.now(), cpu.busy_ns());
  };
  auto [legacy_end, legacy_busy] = run(1);
  auto [batched_end, batched_busy] = run(8);
  EXPECT_EQ(batched_end, legacy_end);
  EXPECT_EQ(batched_busy, legacy_busy);
}

}  // namespace
}  // namespace nvmetro::core

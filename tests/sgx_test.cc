// Tests for the simulated SGX enclave: key isolation semantics, cost
// accounting for regular vs switchless calls, functional equivalence with
// direct XTS.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "crypto/xts.h"
#include "sgx/enclave.h"

namespace nvmetro::sgx {
namespace {

std::vector<u8> TestKey() {
  std::vector<u8> key(32);
  Rng rng(42);
  rng.Fill(key.data(), key.size());
  return key;
}

TEST(EnclaveTest, CreateRejectsBadKey) {
  u8 bad[8] = {};
  EXPECT_FALSE(Enclave::Create(bad, sizeof(bad)).ok());
}

TEST(EnclaveTest, EncryptionMatchesDirectXts) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  auto direct = crypto::XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(direct.ok());

  Rng rng(7);
  std::vector<u8> pt(1024), via_enclave(1024), via_direct(1024);
  rng.Fill(pt.data(), pt.size());
  (*enclave)->EcallEncrypt(5, pt.data(), via_enclave.data(), pt.size());
  direct->EncryptRange(5, crypto::kXtsSectorSize, pt.data(),
                       via_direct.data(), pt.size());
  EXPECT_EQ(via_enclave, via_direct);

  std::vector<u8> back(1024);
  (*enclave)->EcallDecrypt(5, via_enclave.data(), back.data(), back.size());
  EXPECT_EQ(back, pt);
}

TEST(EnclaveTest, SwitchlessSameData) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  Rng rng(9);
  std::vector<u8> pt(512), a(512), b(512);
  rng.Fill(pt.data(), pt.size());
  (*enclave)->EcallEncrypt(3, pt.data(), a.data(), pt.size());
  (*enclave)->SwitchlessEncrypt(3, pt.data(), b.data(), pt.size());
  EXPECT_EQ(a, b);
}

TEST(EnclaveTest, EcallPaysTransitions) {
  auto key = TestKey();
  EnclaveParams params;
  auto enclave = Enclave::Create(key.data(), key.size(), params);
  ASSERT_TRUE(enclave.ok());
  std::vector<u8> buf(512, 1);
  EcallCost c = (*enclave)->EcallEncrypt(0, buf.data(), buf.data(), 512);
  EXPECT_EQ(c.caller_ns, 2 * params.transition_ns);
  EXPECT_GT(c.enclave_ns, 0u);
}

TEST(EnclaveTest, SwitchlessAvoidsTransitions) {
  auto key = TestKey();
  EnclaveParams params;
  auto enclave = Enclave::Create(key.data(), key.size(), params);
  ASSERT_TRUE(enclave.ok());
  std::vector<u8> buf(512, 1);
  EcallCost c =
      (*enclave)->SwitchlessEncrypt(0, buf.data(), buf.data(), 512);
  EXPECT_EQ(c.caller_ns, params.switchless_overhead_ns);
  EXPECT_LT(c.caller_ns, 2 * params.transition_ns);
}

TEST(EnclaveTest, EnclaveCostScalesWithBytes) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  std::vector<u8> small(512, 0), large(128 * 1024, 0);
  EcallCost cs =
      (*enclave)->EcallEncrypt(0, small.data(), small.data(), small.size());
  EcallCost cl =
      (*enclave)->EcallEncrypt(0, large.data(), large.data(), large.size());
  EXPECT_GT(cl.enclave_ns, 100 * cs.enclave_ns / 2);
}

TEST(EnclaveTest, CallCountersTrack) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  std::vector<u8> buf(512, 0);
  (*enclave)->EcallEncrypt(0, buf.data(), buf.data(), 512);
  (*enclave)->EcallDecrypt(0, buf.data(), buf.data(), 512);
  (*enclave)->SwitchlessEncrypt(0, buf.data(), buf.data(), 512);
  EXPECT_EQ((*enclave)->ecall_count(), 2u);
  EXPECT_EQ((*enclave)->switchless_count(), 1u);
}

// Key isolation is structural: Enclave exposes no key accessor. This
// "test" documents the invariant by exercising the full public surface.
TEST(EnclaveTest, NoKeyExtractionApi) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  // The only observable behaviour is transformation of data; two
  // enclaves sealed with different keys must disagree.
  auto other_key = TestKey();
  other_key[0] ^= 0xFF;
  auto other = Enclave::Create(other_key.data(), other_key.size());
  ASSERT_TRUE(other.ok());
  std::vector<u8> pt(512, 0x11), a(512), b(512);
  (*enclave)->EcallEncrypt(0, pt.data(), a.data(), 512);
  (*other)->EcallEncrypt(0, pt.data(), b.data(), 512);
  EXPECT_NE(a, b);
}

TEST(EnclaveTest, EpcPenaltyKicksInBeyondWorkingSet) {
  auto key = TestKey();
  EnclaveParams params;  // epc_working_set = 64K, penalty beyond
  auto enclave = Enclave::Create(key.data(), key.size(), params);
  ASSERT_TRUE(enclave.ok());
  // Within the EPC working set, cost is linear: cost(64K) ~ 2*cost(32K)
  // minus the fixed per-call overhead.
  SimTime c32 = (*enclave)->CallCost(false, 32 * KiB).enclave_ns;
  SimTime c64 = (*enclave)->CallCost(false, 64 * KiB).enclave_ns;
  SimTime c128 = (*enclave)->CallCost(false, 128 * KiB).enclave_ns;
  double linear32 = 32 * KiB * params.aes_ns_per_byte;
  EXPECT_NEAR(static_cast<double>(c64 - c32), linear32, linear32 * 0.05);
  // Beyond it, each byte pays the EPC paging penalty on top.
  double expect_extra =
      64 * KiB * (params.aes_ns_per_byte + params.epc_penalty_ns_per_byte);
  EXPECT_NEAR(static_cast<double>(c128 - c64), expect_extra,
              expect_extra * 0.05);
}

TEST(EnclaveTest, CallCostPredictsActualCharge) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  for (u64 len : {u64{512}, 16 * KiB, 200 * KiB}) {
    std::vector<u8> buf(len, 3);
    EcallCost predicted = (*enclave)->CallCost(true, len);
    EcallCost actual =
        (*enclave)->SwitchlessEncrypt(9, buf.data(), buf.data(), len);
    EXPECT_EQ(predicted.caller_ns, actual.caller_ns) << len;
    EXPECT_EQ(predicted.enclave_ns, actual.enclave_ns) << len;
  }
}

TEST(EnclaveTest, SwitchlessCheaperForCallerAlways) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  for (u64 len : {u64{512}, 4 * KiB, 128 * KiB}) {
    SimTime ecall = (*enclave)->CallCost(false, len).caller_ns;
    SimTime sl = (*enclave)->CallCost(true, len).caller_ns;
    // The whole point of switchless calls: the *caller* never pays the
    // EENTER/EEXIT transitions (the enclave-side work moves to the
    // dedicated worker instead).
    EXPECT_LT(sl, ecall) << len;
  }
}

TEST(EnclaveTest, SectorTweakChangesCiphertext) {
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  std::vector<u8> pt(512, 0x5A), at0(512), at7(512);
  (*enclave)->EcallEncrypt(0, pt.data(), at0.data(), pt.size());
  (*enclave)->EcallEncrypt(7, pt.data(), at7.data(), pt.size());
  EXPECT_NE(at0, at7);  // XTS tweak: same plaintext, different sectors
  // And each decrypts only with its own sector number.
  std::vector<u8> back(512);
  (*enclave)->EcallDecrypt(7, at7.data(), back.data(), back.size());
  EXPECT_EQ(back, pt);
  (*enclave)->EcallDecrypt(0, at7.data(), back.data(), back.size());
  EXPECT_NE(back, pt);
}

TEST(EnclaveTest, MultiSectorBufferUsesPerSectorTweaks) {
  // A 4K buffer at first_sector=10 must equal four independent 512B
  // encryptions at sectors 10..17 — the enclave must advance the tweak
  // across the buffer exactly like dm-crypt would.
  auto key = TestKey();
  auto enclave = Enclave::Create(key.data(), key.size());
  ASSERT_TRUE(enclave.ok());
  Rng rng(11);
  std::vector<u8> pt(4096), whole(4096), pieces(4096);
  rng.Fill(pt.data(), pt.size());
  (*enclave)->EcallEncrypt(10, pt.data(), whole.data(), pt.size());
  for (u64 s = 0; s < 8; s++) {
    (*enclave)->EcallEncrypt(10 + s, pt.data() + s * 512,
                             pieces.data() + s * 512, 512);
  }
  EXPECT_EQ(whole, pieces);
}

}  // namespace
}  // namespace nvmetro::sgx

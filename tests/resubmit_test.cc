// End-to-end tests for classifier resubmission chains (DESIGN.md §15):
// pushdown point lookups walk the on-disk index entirely below the
// guest, so an H-level lookup is one guest-visible completion plus H-1
// router-internal resubmissions. Also pins the safety rails around the
// feature: the bounded chain depth (a malicious self-referential index
// cannot loop forever), resubmission eligibility (only completion-hook
// reads may chain), and the zero-allocation steady state of a chained
// hot path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"
#include "kv/pushdown.h"
#include "kv/sstable.h"
#include "mem/address_space.h"
#include "mem/arena.h"
#include "nvme/prp.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

struct ResubmitFixture : ::testing::Test {
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<NvmetroHost> host;
  VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;
  // One guest buffer + PRP chain reused by every I/O so the steady-state
  // allocation test measures the router, not this harness.
  u64 buf_pages = 0;
  nvme::PrpChain chain;

  void Build(const char* classifier_asm) {
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    virt::VmConfig vm_cfg;
    vm_cfg.memory_bytes = 16 * MiB;
    vm = std::make_unique<virt::Vm>(&sim, vm_cfg);
    host = std::make_unique<NvmetroHost>(&sim, phys.get());
    vc = host->CreateController(vm.get(), {.vm_id = 1});
    auto prog = ebpf::Assemble(classifier_asm);
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    ASSERT_TRUE(driver->Init(1).ok());
    mem::GuestMemory& gm = vm->memory();
    buf_pages = *gm.AllocPages(2);
    chain = *nvme::BuildPrps(gm, buf_pages, kv::kPushdownBlockBytes);
  }

  /// One 4096-byte guest I/O through the shared buffer; the lookup key
  /// rides in cdw2/cdw3.
  NvmeStatus BlockIo(u8 opcode, u64 lba, u64 key_arg, u8* data) {
    mem::GuestMemory& gm = vm->memory();
    if (opcode == nvme::kCmdWrite) {
      (void)nvme::PrpWrite(gm, chain.prp1, chain.prp2,
                           kv::kPushdownBlockBytes, data);
    }
    nvme::Sqe sqe;
    sqe.opcode = opcode;
    sqe.nsid = 1;
    sqe.prp1 = chain.prp1;
    sqe.prp2 = chain.prp2;
    sqe.cdw2 = static_cast<u32>(key_arg);
    sqe.cdw3 = static_cast<u32>(key_arg >> 32);
    sqe.set_slba(lba);
    sqe.set_nlb0(kv::kPushdownLbasPerBlock - 1);
    NvmeStatus status = 0xFFF;
    driver->Submit(0, sqe, [&](NvmeStatus st, u32) { status = st; });
    sim.Run();
    if (status == nvme::kStatusSuccess && opcode == nvme::kCmdRead && data) {
      (void)nvme::PrpRead(gm, chain.prp1, chain.prp2,
                          kv::kPushdownBlockBytes, data);
    }
    return status;
  }

  void LoadImage(const kv::PushdownIndex& idx) {
    std::vector<u8> block(kv::kPushdownBlockBytes);
    for (u64 b = 0; b < idx.num_blocks(); b++) {
      std::copy(idx.image.begin() + b * kv::kPushdownBlockBytes,
                idx.image.begin() + (b + 1) * kv::kPushdownBlockBytes,
                block.begin());
      ASSERT_EQ(BlockIo(nvme::kCmdWrite,
                        idx.base_lba + b * kv::kPushdownLbasPerBlock, 0,
                        block.data()),
                nvme::kStatusSuccess);
    }
  }
};

TEST_F(ResubmitFixture, TwoLevelLookupIsOneCompletionPlusOneResubmit) {
  Build(functions::PushdownLookupClassifierAsm());
  // 8000 keys -> 63 leaves + 1 root: every lookup crosses one internal
  // block.
  std::vector<std::pair<u64, u64>> kvs;
  for (u64 i = 0; i < 8000; i++) kvs.push_back({i * 7 + 3, i * 31 + 11});
  kv::PushdownIndex idx = kv::BuildPushdownIndex(kvs, 0);
  ASSERT_EQ(idx.levels, 2u);
  LoadImage(idx);

  u64 cpl0 = vc->requests_completed();
  u64 rs0 = vc->resubmissions();
  std::vector<u8> page(kv::kPushdownBlockBytes);
  const u32 kLookups = 16;
  for (u32 i = 0; i < kLookups; i++) {
    u64 key = kvs[(i * 997) % kvs.size()].first;
    ASSERT_EQ(BlockIo(nvme::kCmdRead, idx.root_lba(), key, page.data()),
              nvme::kStatusSuccess);
    // The page the guest received is the *leaf*, not the root it asked
    // for: the chain rewrote the LBA below the guest.
    EXPECT_EQ(kv::PushdownLevel(page.data()), 0u);
    u64 value = 0;
    ASSERT_TRUE(kv::PushdownLeafLookup(page.data(), key, &value)) << key;
    EXPECT_EQ(value, (key - 3) / 7 * 31 + 11);
  }
  // Exactly one guest-visible completion and one resubmission per
  // lookup (plus nothing for the image writes counted before cpl0).
  EXPECT_EQ(vc->requests_completed() - cpl0, kLookups);
  EXPECT_EQ(vc->resubmissions() - rs0, kLookups);
}

TEST_F(ResubmitFixture, ThreeLevelLookupChainsTwice) {
  Build(functions::PushdownLookupClassifierAsm());
  std::vector<std::pair<u64, u64>> kvs;
  for (u64 i = 0; i < 20000; i++) kvs.push_back({i * 3, i});
  kv::PushdownIndex idx = kv::BuildPushdownIndex(kvs, 0);
  ASSERT_EQ(idx.levels, 3u);
  LoadImage(idx);

  u64 rs0 = vc->resubmissions();
  std::vector<u8> page(kv::kPushdownBlockBytes);
  u64 key = kvs[12345].first;
  ASSERT_EQ(BlockIo(nvme::kCmdRead, idx.root_lba(), key, page.data()),
            nvme::kStatusSuccess);
  u64 value = 0;
  ASSERT_TRUE(kv::PushdownLeafLookup(page.data(), key, &value));
  EXPECT_EQ(value, 12345u);
  EXPECT_EQ(vc->resubmissions() - rs0, 2u);
}

TEST_F(ResubmitFixture, MissingKeyStillCompletesOnce) {
  Build(functions::PushdownLookupClassifierAsm());
  std::vector<std::pair<u64, u64>> kvs;
  for (u64 i = 0; i < 8000; i++) kvs.push_back({i * 7 + 3, i});
  kv::PushdownIndex idx = kv::BuildPushdownIndex(kvs, 0);
  LoadImage(idx);

  std::vector<u8> page(kv::kPushdownBlockBytes);
  // Key 4 is absent (keys are 3 mod 7); the chain still lands on the
  // floor leaf and the guest-side exact match reports a miss.
  ASSERT_EQ(BlockIo(nvme::kCmdRead, idx.root_lba(), 4, page.data()),
            nvme::kStatusSuccess);
  u64 value = 0;
  EXPECT_FALSE(kv::PushdownLeafLookup(page.data(), 4, &value));
}

TEST_F(ResubmitFixture, SelfReferentialIndexHitsTheChainDepthBound) {
  Build(functions::PushdownLookupClassifierAsm());
  // A rogue "internal" block whose every child pointer is its own LBA:
  // an unbounded router would resubmit forever. The chain-depth bound
  // (RouterCosts::max_resubmit_depth = 8) must fail the request back to
  // the guest instead.
  std::vector<u8> block(kv::kPushdownBlockBytes, 0);
  u64 word0 = (static_cast<u64>(kv::kPushdownMagic) << 32) | 1;  // level 1
  u64 nkeys = kv::kPushdownFanout;
  memcpy(block.data(), &word0, 8);
  memcpy(block.data() + 8, &nkeys, 8);
  for (u32 i = 0; i < kv::kPushdownFanout; i++) {
    u64 key = i;
    u64 child_lba = 0;  // itself
    memcpy(block.data() + kv::kPushdownHeaderBytes + i * 16, &key, 8);
    memcpy(block.data() + kv::kPushdownHeaderBytes + i * 16 + 8, &child_lba,
           8);
  }
  ASSERT_EQ(BlockIo(nvme::kCmdWrite, 0, 0, block.data()),
            nvme::kStatusSuccess);

  u64 rs0 = vc->resubmissions();
  std::vector<u8> page(kv::kPushdownBlockBytes);
  NvmeStatus st = BlockIo(nvme::kCmdRead, 0, 5, page.data());
  EXPECT_NE(st, nvme::kStatusSuccess);
  EXPECT_NE(st, 0xFFF) << "request hung instead of failing";
  EXPECT_EQ(vc->resubmissions() - rs0, 8u);  // exactly the bound
}

TEST_F(ResubmitFixture, WritesNeverChain) {
  Build(functions::PushdownLookupClassifierAsm());
  // Writes take the translated fast path: no resubmissions, no hooks.
  std::vector<u8> block(kv::kPushdownBlockBytes, 0xAB);
  u64 rs0 = vc->resubmissions();
  ASSERT_EQ(BlockIo(nvme::kCmdWrite, 64, /*key_arg=*/77, block.data()),
            nvme::kStatusSuccess);
  EXPECT_EQ(vc->resubmissions() - rs0, 0u);
}

TEST_F(ResubmitFixture, NonIndexPagesCompleteWithoutChaining) {
  Build(functions::PushdownLookupClassifierAsm());
  // Reading a block that is not a pushdown index block (bad magic) must
  // complete to the guest as a plain read, key argument or not.
  std::vector<u8> block(kv::kPushdownBlockBytes, 0x5C);
  ASSERT_EQ(BlockIo(nvme::kCmdWrite, 32, 0, block.data()),
            nvme::kStatusSuccess);
  u64 rs0 = vc->resubmissions();
  std::vector<u8> page(kv::kPushdownBlockBytes);
  ASSERT_EQ(BlockIo(nvme::kCmdRead, 32, /*key_arg=*/123, page.data()),
            nvme::kStatusSuccess);
  EXPECT_EQ(page[0], 0x5C);
  EXPECT_EQ(vc->resubmissions() - rs0, 0u);
}

TEST_F(ResubmitFixture, SteadyStateChainingDoesNotAllocate) {
  Build(functions::PushdownLookupClassifierAsm());
  std::vector<std::pair<u64, u64>> kvs;
  for (u64 i = 0; i < 8000; i++) kvs.push_back({i * 7 + 3, i});
  kv::PushdownIndex idx = kv::BuildPushdownIndex(kvs, 0);
  ASSERT_EQ(idx.levels, 2u);
  LoadImage(idx);

  std::vector<u8> page(kv::kPushdownBlockBytes);
  // Warm-up: pools and per-queue slots reach their working set.
  for (u32 i = 0; i < 32; i++) {
    ASSERT_EQ(BlockIo(nvme::kCmdRead, idx.root_lba(),
                      kvs[(i * 997) % kvs.size()].first, page.data()),
              nvme::kStatusSuccess);
  }
  // Steady state: every lookup still chains (resubmission verified by
  // the counter) yet the hot path must not allocate.
  u64 rs0 = vc->resubmissions();
  mem::HotPathAllocs::BeginSteadyState();
  for (u32 i = 0; i < 64; i++) {
    ASSERT_EQ(BlockIo(nvme::kCmdRead, idx.root_lba(),
                      kvs[(i * 131) % kvs.size()].first, page.data()),
              nvme::kStatusSuccess);
  }
  mem::HotPathAllocs::EndSteadyState();
  EXPECT_EQ(vc->resubmissions() - rs0, 64u);
  EXPECT_EQ(mem::HotPathAllocs::steady_state_allocs(), 0u)
      << "resubmission hot path allocated in steady state";
}

TEST_F(ResubmitFixture, SsTablePushdownIndexRoutesToTheRightBlock) {
  Build(functions::PushdownLookupClassifierAsm());
  // Index an SSTable's block directory by key prefix and chase it below
  // the guest: the leaf entry names the data block to read next.
  kv::SsTableMeta meta;
  std::map<std::string, kv::Record> records;
  for (int i = 100; i < 500; i++) {
    std::string k = "user" + std::to_string(i);
    records[k] = kv::Record{k, "v" + std::to_string(i), false};
  }
  (void)kv::BuildSsTable(records, 512, 10, &meta);
  ASSERT_GT(meta.num_blocks(), 1u);

  kv::PushdownIndex idx = kv::BuildSsTablePushdownIndex(meta, 0);
  LoadImage(idx);

  std::vector<u8> page(kv::kPushdownBlockBytes);
  for (const char* probe : {"user150", "user300", "user499"}) {
    u64 prefix = kv::PushdownKeyPrefix(probe);
    ASSERT_EQ(BlockIo(nvme::kCmdRead, idx.root_lba(), prefix, page.data()),
              nvme::kStatusSuccess);
    u32 slot = kv::PushdownSearchBlock(page.data(), prefix);
    u64 block_no = kv::PushdownEntryVal(page.data(), slot);
    i64 expect = meta.FindBlock(probe);
    ASSERT_GE(expect, 0);
    EXPECT_EQ(block_no, static_cast<u64>(expect)) << probe;
  }
}

}  // namespace
}  // namespace nvmetro::core

// Tests for the eBPF substrate: assembler, interpreter semantics,
// verifier safety properties, maps, helpers, and a fuzz pass asserting
// that verifier-accepted programs never trip the runtime guards.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ebpf/assembler.h"
#include "ebpf/disasm.h"
#include "ebpf/helpers.h"
#include "ebpf/insn.h"
#include "ebpf/interpreter.h"
#include "functions/classifiers.h"
#include "ebpf/map.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"

namespace nvmetro::ebpf {
namespace {

/// Test context: 32 bytes, first 24 readable, last 8 writable too.
struct TestCtx {
  u64 a;   // ro
  u64 b;   // ro
  u64 c;   // ro
  u64 out; // rw
};

CtxDescriptor TestCtxDesc() {
  CtxDescriptor d;
  d.size = sizeof(TestCtx);
  d.fields = {
      {0, 8, false, "a"},
      {8, 8, false, "b"},
      {16, 8, false, "c"},
      {24, 8, true, "out"},
      // Narrow views of `a` for size-specific access tests.
      {0, 4, false, "a_lo"},
      {0, 2, false, "a_w"},
      {0, 1, false, "a_b"},
  };
  return d;
}

struct EbpfFixture : ::testing::Test {
  CtxDescriptor desc = TestCtxDesc();
  Verifier verifier{desc, HelperRegistry::Default()};
  Interpreter interp;

  Result<Program> Asm(const std::string& text,
                      std::vector<std::shared_ptr<Map>> maps = {}) {
    return Assemble(text, std::move(maps));
  }

  /// Assemble + verify + run; EXPECTs success at each stage.
  u64 MustRun(const std::string& text, TestCtx ctx = {},
              std::vector<std::shared_ptr<Map>> maps = {}) {
    auto prog = Asm(text, std::move(maps));
    EXPECT_TRUE(prog.ok()) << prog.status().ToString() << "\n" << text;
    if (!prog.ok()) return ~0ull;
    Status v = verifier.Verify(*prog);
    EXPECT_TRUE(v.ok()) << v.ToString() << "\n" << text;
    auto res = interp.Run(*prog, &ctx, sizeof(ctx));
    EXPECT_TRUE(res.status.ok()) << res.status.ToString();
    return res.r0;
  }

  /// Assemble must succeed; verify must fail with a message containing
  /// `substr`.
  void MustReject(const std::string& text, const std::string& substr,
                  std::vector<std::shared_ptr<Map>> maps = {}) {
    auto prog = Asm(text, std::move(maps));
    ASSERT_TRUE(prog.ok()) << prog.status().ToString() << "\n" << text;
    Status v = verifier.Verify(*prog);
    EXPECT_FALSE(v.ok()) << "expected rejection:\n" << text;
    EXPECT_NE(v.ToString().find(substr), std::string::npos)
        << "got: " << v.ToString();
  }
};

// --- Assembler ----------------------------------------------------------------

TEST_F(EbpfFixture, AssemblesMinimalProgram) {
  auto prog = Asm("mov r0, 0\nexit\n");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->size(), 2u);
  EXPECT_EQ(prog->insns()[1].opcode, kOpExit);
}

TEST_F(EbpfFixture, CommentsAndBlankLinesIgnored) {
  auto prog = Asm("; header\n\n  mov r0, 1 ; trailing\n# hash\nexit\n");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(prog->size(), 2u);
}

TEST_F(EbpfFixture, RejectsUnknownMnemonic) {
  EXPECT_FALSE(Asm("frobnicate r0\nexit\n").ok());
}

TEST_F(EbpfFixture, RejectsUnknownLabel) {
  EXPECT_FALSE(Asm("ja nowhere\nexit\n").ok());
}

TEST_F(EbpfFixture, RejectsDuplicateLabel) {
  EXPECT_FALSE(Asm("x:\nmov r0, 0\nx:\nexit\n").ok());
}

TEST_F(EbpfFixture, ErrorsIncludeLineNumbers) {
  auto prog = Asm("mov r0, 0\nbogus r1\nexit\n");
  ASSERT_FALSE(prog.ok());
  EXPECT_NE(prog.status().message().find("line 2"), std::string::npos);
}

TEST_F(EbpfFixture, Lddw64BitImmediate) {
  EXPECT_EQ(MustRun("lddw r0, 0x1122334455667788\nexit\n"),
            0x1122334455667788ull);
}

// --- ALU semantics (parameterized) ----------------------------------------------

struct AluCase {
  const char* op;
  u64 a, b;
  u64 expect64;
  u64 expect32;
};

std::string AluProgText(const AluCase& c, bool is64) {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "lddw r0, %llu\nlddw r2, %llu\n%s%s r0, r2\nexit\n",
           (unsigned long long)c.a, (unsigned long long)c.b, c.op,
           is64 ? "" : "32");
  return buf;
}

class AluSemanticsTest : public EbpfFixture,
                         public ::testing::WithParamInterface<AluCase> {};

TEST_P(AluSemanticsTest, RegisterForm64) {
  const AluCase& c = GetParam();
  std::string text = AluProgText(c, true);
  auto prog = Asm(text);
  ASSERT_TRUE(prog.ok()) << text;
  auto res = interp.Run(*prog, nullptr, 0);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.r0, c.expect64) << c.op;
}

TEST_P(AluSemanticsTest, RegisterForm32) {
  const AluCase& c = GetParam();
  std::string text = AluProgText(c, false);
  auto prog = Asm(text);
  ASSERT_TRUE(prog.ok()) << text;
  auto res = interp.Run(*prog, nullptr, 0);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.r0, c.expect32) << c.op << "32";
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemanticsTest,
    ::testing::Values(
        AluCase{"add", 7, 3, 10, 10},
        AluCase{"add", ~0ull, 1, 0, 0},
        AluCase{"sub", 3, 7, static_cast<u64>(-4), 0xFFFFFFFCu},
        AluCase{"mul", 1ull << 33, 4, 1ull << 35, 0},
        AluCase{"div", 100, 7, 14, 14},
        AluCase{"div", 100, 0, 0, 0},  // div-by-zero yields 0
        AluCase{"mod", 100, 7, 2, 2},
        AluCase{"mod", 100, 0, 100, 100},  // mod-by-zero keeps dst
        AluCase{"or", 0xF0, 0x0F, 0xFF, 0xFF},
        AluCase{"and", 0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull,
                0xFF000000FF000000ull, 0xFF000000ull},
        AluCase{"xor", 0xAAAA, 0xFFFF, 0x5555, 0x5555},
        AluCase{"lsh", 1, 40, 1ull << 40, 1u << 8},  // 32-bit masks shift
        AluCase{"rsh", 1ull << 40, 8, 1ull << 32, 0},
        AluCase{"arsh", static_cast<u64>(-256), 4, static_cast<u64>(-16),
                0xFFFFFFF0u}));

TEST_F(EbpfFixture, NegInstruction) {
  EXPECT_EQ(MustRun("mov r0, 5\nneg r0\nexit\n"), static_cast<u64>(-5));
  auto prog = Asm("mov r0, 5\nneg32 r0\nexit\n");
  ASSERT_TRUE(prog.ok());
  auto res = interp.Run(*prog, nullptr, 0);
  EXPECT_EQ(res.r0, 0xFFFFFFFBull);
}

TEST_F(EbpfFixture, Mov32ZeroExtends) {
  EXPECT_EQ(MustRun("lddw r2, 0xFFFFFFFF11223344\nmov32 r0, r2\nexit\n"),
            0x11223344ull);
}

// --- Jumps ------------------------------------------------------------------

struct JmpCase {
  const char* op;
  u64 a;
  i64 b;
  bool taken;
};

class JmpSemanticsTest : public EbpfFixture,
                         public ::testing::WithParamInterface<JmpCase> {};

TEST_P(JmpSemanticsTest, ImmediateForm) {
  const JmpCase& c = GetParam();
  char buf[256];
  snprintf(buf, sizeof(buf),
           "lddw r2, %llu\n%s r2, %lld, yes\nmov r0, 0\nexit\n"
           "yes: mov r0, 1\nexit\n",
           (unsigned long long)c.a, c.op, (long long)c.b);
  auto prog = Asm(buf);
  ASSERT_TRUE(prog.ok()) << buf;
  auto res = interp.Run(*prog, nullptr, 0);
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(res.r0, c.taken ? 1u : 0u) << buf;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, JmpSemanticsTest,
    ::testing::Values(JmpCase{"jeq", 5, 5, true}, JmpCase{"jeq", 5, 6, false},
                      JmpCase{"jne", 5, 6, true}, JmpCase{"jne", 5, 5, false},
                      JmpCase{"jgt", 6, 5, true}, JmpCase{"jgt", 5, 5, false},
                      JmpCase{"jge", 5, 5, true}, JmpCase{"jge", 4, 5, false},
                      JmpCase{"jlt", 4, 5, true}, JmpCase{"jlt", 5, 5, false},
                      JmpCase{"jle", 5, 5, true}, JmpCase{"jle", 6, 5, false},
                      JmpCase{"jset", 6, 2, true},
                      JmpCase{"jset", 5, 2, false},
                      JmpCase{"jsgt", 0, -1, true},
                      JmpCase{"jslt", static_cast<u64>(-2), -1, true},
                      JmpCase{"jsge", static_cast<u64>(-1), -1, true},
                      JmpCase{"jsle", static_cast<u64>(-1), 0, true}));

// --- Context access ------------------------------------------------------------

TEST_F(EbpfFixture, ReadsContextFields) {
  TestCtx ctx{11, 22, 33, 0};
  EXPECT_EQ(MustRun("ldxdw r0, [r1+8]\nexit\n", ctx), 22u);
}

TEST_F(EbpfFixture, WritesWritableField) {
  TestCtx ctx{1, 2, 3, 0};
  auto prog = Asm("mov r2, 99\nstxdw [r1+24], r2\nmov r0, 0\nexit\n");
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(verifier.Verify(*prog).ok());
  auto res = interp.Run(*prog, &ctx, sizeof(ctx));
  ASSERT_TRUE(res.status.ok());
  EXPECT_EQ(ctx.out, 99u);
}

TEST_F(EbpfFixture, RejectsWriteToReadOnlyField) {
  MustReject("mov r2, 1\nstxdw [r1+0], r2\nmov r0, 0\nexit\n",
             "invalid ctx write");
}

TEST_F(EbpfFixture, RejectsOutOfBoundsCtxRead) {
  MustReject("ldxdw r0, [r1+32]\nexit\n", "invalid ctx read");
}

TEST_F(EbpfFixture, RejectsMisalignedCtxRead) {
  MustReject("ldxdw r0, [r1+4]\nexit\n", "invalid ctx read");
}

TEST_F(EbpfFixture, NarrowCtxReadsAllowedWhenDeclared) {
  TestCtx ctx{0x1122334455667788ull, 0, 0, 0};
  EXPECT_EQ(MustRun("ldxw r0, [r1+0]\nexit\n", ctx), 0x55667788u);
  EXPECT_EQ(MustRun("ldxb r0, [r1+0]\nexit\n", ctx), 0x88u);
}

TEST_F(EbpfFixture, CtxPointerArithmeticWithConstOffset) {
  TestCtx ctx{0, 0, 77, 0};
  EXPECT_EQ(MustRun("mov r2, r1\nadd r2, 16\nldxdw r0, [r2+0]\nexit\n", ctx),
            77u);
}

// --- Stack ----------------------------------------------------------------------

TEST_F(EbpfFixture, StackStoreLoadRoundTrip) {
  EXPECT_EQ(MustRun("mov r2, 123\nstxdw [r10-8], r2\n"
                    "ldxdw r0, [r10-8]\nexit\n"),
            123u);
}

TEST_F(EbpfFixture, RejectsUninitializedStackRead) {
  MustReject("ldxdw r0, [r10-8]\nexit\n", "uninitialized stack");
}

TEST_F(EbpfFixture, RejectsStackOverflow) {
  MustReject("mov r2, 1\nstxdw [r10-520], r2\nmov r0, 0\nexit\n",
             "out of bounds");
}

TEST_F(EbpfFixture, RejectsStackAccessAboveFrame) {
  MustReject("mov r2, 1\nstxdw [r10+8], r2\nmov r0, 0\nexit\n",
             "out of bounds");
}

TEST_F(EbpfFixture, PointerSpillAndReload) {
  // Spill ctx pointer, reload it, use it.
  TestCtx ctx{5, 0, 0, 0};
  EXPECT_EQ(MustRun("stxdw [r10-8], r1\nldxdw r2, [r10-8]\n"
                    "ldxdw r0, [r2+0]\nexit\n",
                    ctx),
            5u);
}

TEST_F(EbpfFixture, PartialOverwriteOfSpillKillsPointer) {
  MustReject(
      "stxdw [r10-8], r1\nmov r2, 0\nstxb [r10-8], r2\n"
      "ldxdw r3, [r10-8]\nldxdw r0, [r3+0]\nexit\n",
      "load from non-pointer");
}

// --- Verifier safety ------------------------------------------------------------

TEST_F(EbpfFixture, RejectsUninitializedRegister) {
  MustReject("mov r0, r5\nexit\n", "uninitialized");
}

TEST_F(EbpfFixture, RejectsMissingExit) {
  auto prog = Asm("mov r0, 0\n");
  ASSERT_TRUE(prog.ok());
  EXPECT_FALSE(verifier.Verify(*prog).ok());
}

TEST_F(EbpfFixture, RejectsExitWithoutR0) {
  MustReject("exit\n", "r0");
}

TEST_F(EbpfFixture, RejectsBackwardJump) {
  MustReject("loop: mov r0, 0\nja loop\nexit\n", "backward");
}

TEST_F(EbpfFixture, RejectsWriteToFramePointer) {
  MustReject("mov r10, 0\nmov r0, 0\nexit\n", "frame pointer");
}

TEST_F(EbpfFixture, RejectsLoadFromScalar) {
  MustReject("mov r2, 1000\nldxdw r0, [r2+0]\nexit\n", "non-pointer");
}

TEST_F(EbpfFixture, RejectsVariablePointerOffset) {
  // Offset from an (unknown) ctx field is not a constant.
  MustReject("ldxdw r2, [r1+0]\nmov r3, r10\nadd r3, r2\n"
             "mov r0, 0\nexit\n",
             "constant offset");
}

TEST_F(EbpfFixture, RejectsEmptyProgram) {
  Program p;
  EXPECT_FALSE(verifier.Verify(p).ok());
}

TEST_F(EbpfFixture, RejectsOversizeProgram) {
  std::vector<Insn> insns(kMaxInsns + 1, MovImm(0, 0));
  insns.back() = Exit();
  Program p(std::move(insns), {});
  EXPECT_FALSE(verifier.Verify(p).ok());
}

TEST_F(EbpfFixture, BranchBoundsRefinementAllowsProvenAccess) {
  // Read ctx->a; if < 3 use it to index the stack at a constant-derived
  // offset... we only allow constant offsets, so instead verify bounds
  // refinement collapses to a constant: if (a == 2) then a is known 2.
  TestCtx ctx{2, 0, 0, 0};
  EXPECT_EQ(MustRun("ldxdw r2, [r1+0]\n"
                    "jeq r2, 2, known\n"
                    "mov r0, 0\nexit\n"
                    "known:\n"
                    "mov r3, r10\nadd r3, -8\n"
                    "stxdw [r3+0], r2\n"
                    "ldxdw r0, [r10-8]\nexit\n",
                    ctx),
            2u);
}

// --- Maps ------------------------------------------------------------------------

TEST(MapTest, ArrayMapBasics) {
  ArrayMap m(8, 4);
  u32 k = 2;
  u64 v = 0xDEAD;
  ASSERT_TRUE(m.Update(&k, &v).ok());
  u8* p = m.Lookup(&k);
  ASSERT_NE(p, nullptr);
  u64 got;
  memcpy(&got, p, 8);
  EXPECT_EQ(got, 0xDEADull);
  k = 4;
  EXPECT_EQ(m.Lookup(&k), nullptr);
  EXPECT_FALSE(m.Update(&k, &v).ok());
}

TEST(MapTest, ArrayMapDeleteZeroes) {
  ArrayMap m(8, 2);
  m.Set<u64>(1, 55);
  u32 k = 1;
  ASSERT_TRUE(m.Delete(&k).ok());
  EXPECT_EQ(m.Get<u64>(1), 0u);
}

TEST(MapTest, HashMapBasics) {
  HashMap m(4, 8, 2);
  u32 k1 = 10, k2 = 20, k3 = 30;
  u64 v = 1;
  ASSERT_TRUE(m.Update(&k1, &v).ok());
  v = 2;
  ASSERT_TRUE(m.Update(&k2, &v).ok());
  v = 3;
  EXPECT_FALSE(m.Update(&k3, &v).ok());  // full
  v = 9;
  ASSERT_TRUE(m.Update(&k1, &v).ok());  // overwrite allowed when full
  u64 got;
  memcpy(&got, m.Lookup(&k1), 8);
  EXPECT_EQ(got, 9u);
  ASSERT_TRUE(m.Delete(&k1).ok());
  EXPECT_EQ(m.Lookup(&k1), nullptr);
  EXPECT_FALSE(m.Delete(&k1).ok());
}

TEST(MapTest, HashMapValuePointerStableAcrossInserts) {
  HashMap m(4, 8, 1000);
  u32 k0 = 0;
  u64 v = 42;
  ASSERT_TRUE(m.Update(&k0, &v).ok());
  u8* p = m.Lookup(&k0);
  for (u32 k = 1; k < 500; k++) {
    ASSERT_TRUE(m.Update(&k, &v).ok());
  }
  EXPECT_EQ(m.Lookup(&k0), p);
}

struct MapProgFixture : EbpfFixture {
  std::shared_ptr<ArrayMap> amap = std::make_shared<ArrayMap>(8, 16);

  // Program: value = lookup(map, key=ctx->a as u32); if null return 0;
  // else increment *value and return it.
  const char* kProg =
      "ldxw r2, [r1+0]\n"         // key from ctx->a low word
      "stxw [r10-4], r2\n"
      "lddw r1, map 0\n"
      "mov r2, r10\n"
      "add r2, -4\n"
      "call map_lookup_elem\n"
      "jne r0, 0, found\n"
      "mov r0, 0\n"
      "exit\n"
      "found:\n"
      "ldxdw r3, [r0+0]\n"
      "add r3, 1\n"
      "stxdw [r0+0], r3\n"
      "mov r0, r3\n"
      "exit\n";
};

TEST_F(MapProgFixture, LookupIncrementPersists) {
  TestCtx ctx{3, 0, 0, 0};
  EXPECT_EQ(MustRun(kProg, ctx, {amap}), 1u);
  EXPECT_EQ(MustRun(kProg, ctx, {amap}), 2u);
  EXPECT_EQ(amap->Get<u64>(3), 2u);
}

TEST_F(MapProgFixture, MissingNullCheckRejected) {
  const char* bad =
      "mov r2, 0\nstxw [r10-4], r2\n"
      "lddw r1, map 0\nmov r2, r10\nadd r2, -4\n"
      "call map_lookup_elem\n"
      "ldxdw r0, [r0+0]\n"  // no null check!
      "exit\n";
  MustReject(bad, "possibly-null", {amap});
}

TEST_F(MapProgFixture, MapValueBoundsEnforced) {
  const char* bad =
      "mov r2, 0\nstxw [r10-4], r2\n"
      "lddw r1, map 0\nmov r2, r10\nadd r2, -4\n"
      "call map_lookup_elem\n"
      "jne r0, 0, ok\nmov r0, 0\nexit\n"
      "ok: ldxdw r0, [r0+8]\n"  // value_size is 8; offset 8 is OOB
      "exit\n";
  MustReject(bad, "out of bounds", {amap});
}

TEST_F(MapProgFixture, UninitializedKeyRejected) {
  const char* bad =
      "lddw r1, map 0\nmov r2, r10\nadd r2, -4\n"
      "call map_lookup_elem\n"  // stack at -4 never written
      "mov r0, 0\nexit\n";
  MustReject(bad, "uninitialized stack", {amap});
}

TEST_F(MapProgFixture, HelperArgTypeEnforced) {
  const char* bad =
      "mov r1, 5\nmov r2, r10\nadd r2, -4\nmov r3, 0\n"
      "stxw [r10-4], r3\n"
      "call map_lookup_elem\n"
      "mov r0, 0\nexit\n";
  MustReject(bad, "map reference", {amap});
}

TEST_F(EbpfFixture, UnknownHelperRejected) {
  MustReject("call 999\nmov r0, 0\nexit\n", "unknown helper");
}

TEST_F(EbpfFixture, TraceHelperRecords) {
  std::vector<u64> trace;
  interp.env().trace = &trace;
  MustRun("mov r1, 42\ncall trace\nmov r0, 0\nexit\n");
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0], 42u);
}

TEST_F(EbpfFixture, KtimeHelperUsesEnv) {
  interp.env().ktime_ns = [] { return 777ull; };
  EXPECT_EQ(MustRun("call ktime_get_ns\nexit\n"), 777u);
}

// --- ProgramBuilder -------------------------------------------------------------

TEST_F(EbpfFixture, BuilderProducesRunnablePrograms) {
  ProgramBuilder b;
  b.Mov(0, 10)
      .Mov(2, 5)
      .JumpIf(kJmpJgt, 0, 7, "big")
      .Mov(0, 0)
      .Ret()
      .Label("big")
      .AluR(kAluAdd, 0, 2)
      .Ret();
  auto prog = b.Build();
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(verifier.Verify(*prog).ok());
  auto res = interp.Run(*prog, nullptr, 0);
  EXPECT_EQ(res.r0, 15u);
}

TEST_F(EbpfFixture, BuilderUnknownLabelFails) {
  ProgramBuilder b;
  b.Jump("missing").Ret();
  EXPECT_FALSE(b.Build().ok());
}

// --- Interpreter runtime guards ---------------------------------------------------

TEST_F(EbpfFixture, RuntimeGuardsCatchWildLoadInUnverifiedProgram) {
  // Skip the verifier on purpose: interpreter must refuse the access.
  auto prog = Asm("lddw r2, 0x10\nldxdw r0, [r2+0]\nexit\n");
  ASSERT_TRUE(prog.ok());
  auto res = interp.Run(*prog, nullptr, 0);
  EXPECT_FALSE(res.status.ok());
}

TEST_F(EbpfFixture, InstructionBudgetBoundsExecution) {
  Interpreter tiny(HelperRegistry::Default(), Interpreter::Options{10});
  auto prog = Asm(
      "mov r0, 0\nmov r0, 0\nmov r0, 0\nmov r0, 0\nmov r0, 0\n"
      "mov r0, 0\nmov r0, 0\nmov r0, 0\nmov r0, 0\nmov r0, 0\nexit\n");
  ASSERT_TRUE(prog.ok());
  auto res = tiny.Run(*prog, nullptr, 0);
  EXPECT_FALSE(res.status.ok());
}

TEST_F(EbpfFixture, ReportsInsnCount) {
  auto prog = Asm("mov r0, 1\nmov r2, 2\nadd r0, r2\nexit\n");
  ASSERT_TRUE(prog.ok());
  auto res = interp.Run(*prog, nullptr, 0);
  EXPECT_EQ(res.insns, 4u);
}

// --- Fuzz: verified programs never trip runtime guards ----------------------------

TEST_F(EbpfFixture, FuzzVerifiedProgramsRunSafely) {
  Rng rng(2024);
  auto amap = std::make_shared<ArrayMap>(8, 4);
  int accepted = 0;
  for (int iter = 0; iter < 4000; iter++) {
    // Generate a structurally plausible but semantically random program:
    // instructions are drawn from legal opcode templates with randomized
    // registers, offsets and immediates. The verifier still rejects many
    // (uninitialized registers, bad ctx offsets, pointer misuse); every
    // accepted one must execute without tripping a runtime guard.
    u32 len = 1 + static_cast<u32>(rng.NextBounded(20));
    std::vector<Insn> insns;
    // Prelude: sometimes initialize some registers with scalars.
    u32 init = static_cast<u32>(rng.NextBounded(6));
    for (u32 r = 2; r < 2 + init; r++) {
      insns.push_back(MovImm(static_cast<u8>(r),
                             static_cast<i32>(rng.NextBounded(128))));
    }
    for (u32 i = 0; i < len; i++) {
      u8 dst = static_cast<u8>(rng.NextBounded(11));
      u8 src = static_cast<u8>(rng.NextBounded(11));
      i16 off = static_cast<i16>(static_cast<i64>(rng.NextBounded(80)) - 40);
      i32 imm = static_cast<i32>(static_cast<i64>(rng.NextBounded(64)) - 8);
      u8 size = static_cast<u8>(rng.NextBounded(4) << 3);
      static const u8 kAlu[] = {kAluAdd, kAluSub, kAluMul, kAluDiv,
                                kAluOr,  kAluAnd, kAluLsh, kAluRsh,
                                kAluMod, kAluXor, kAluMov, kAluArsh};
      static const u8 kJmp[] = {kJmpJeq, kJmpJne, kJmpJgt, kJmpJge,
                                kJmpJlt, kJmpJle, kJmpJset};
      switch (rng.NextBounded(8)) {
        case 0:
          insns.push_back(AluImm(kAlu[rng.NextBounded(12)], dst, imm,
                                 rng.NextBool(0.5)));
          break;
        case 1:
          insns.push_back(AluReg(kAlu[rng.NextBounded(12)], dst, src,
                                 rng.NextBool(0.5)));
          break;
        case 2:
          insns.push_back(Ldx(size, dst, src, off));
          break;
        case 3:
          insns.push_back(Stx(size, dst, src, off));
          break;
        case 4:
          insns.push_back(StImm(size, dst, off, imm));
          break;
        case 5: {
          // Forward conditional jump with a small offset (may land
          // anywhere, including past the end — verifier must cope).
          i16 joff = static_cast<i16>(rng.NextBounded(6));
          insns.push_back(JmpImm(kJmp[rng.NextBounded(7)], dst, imm, joff));
          break;
        }
        case 6:
          insns.push_back(MovReg(dst, src));
          break;
        case 7:
          insns.push_back(Call(static_cast<i32>(rng.NextBounded(10))));
          break;
      }
    }
    insns.push_back(MovImm(0, 0));
    insns.push_back(Exit());
    Program prog(std::move(insns), {amap});
    if (!verifier.Verify(prog).ok()) continue;
    accepted++;
    TestCtx ctx{rng.Next(), rng.Next(), rng.Next(), 0};
    auto res = interp.Run(prog, &ctx, sizeof(ctx));
    // Property: whatever the verifier accepts must run cleanly.
    EXPECT_TRUE(res.status.ok())
        << "iteration " << iter << ": " << res.status.ToString();
  }
  // Sanity: the fuzzer actually exercises the property.
  EXPECT_GT(accepted, 20);
}

// --- Differential: interpreter vs an independent ALU evaluator --------------------
//
// Random straight-line ALU programs, executed by the interpreter and by a
// from-the-spec reference evaluator written here; results must agree on
// every register. Covers both widths, both operand modes, and the edge
// semantics (div/0 -> 0, mod/0 -> dst, shift masking, 32-bit
// zero-extension).

struct AluStep {
  u8 op;
  bool is64;
  bool reg_mode;
  u8 dst;
  u8 src;
  i32 imm;
};

u64 RefAlu(u8 op, bool is64, u64 a, u64 b) {
  if (!is64) {
    a = static_cast<u32>(a);
    b = static_cast<u32>(b);
  }
  u64 shift_mask = is64 ? 63 : 31;
  u64 r;
  switch (op) {
    case kAluAdd: r = a + b; break;
    case kAluSub: r = a - b; break;
    case kAluMul: r = a * b; break;
    case kAluDiv: r = b ? a / b : 0; break;
    case kAluMod: r = b ? a % b : a; break;
    case kAluOr: r = a | b; break;
    case kAluAnd: r = a & b; break;
    case kAluXor: r = a ^ b; break;
    case kAluLsh: r = a << (b & shift_mask); break;
    case kAluRsh: r = a >> (b & shift_mask); break;
    case kAluArsh:
      r = is64 ? static_cast<u64>(static_cast<i64>(a) >> (b & 63))
               : static_cast<u64>(static_cast<u32>(static_cast<i32>(
                     static_cast<u32>(a)) >> (b & 31)));
      break;
    case kAluMov: r = b; break;
    case kAluNeg: r = 0 - a; break;
    default: r = a; break;
  }
  return is64 ? r : static_cast<u32>(r);
}

struct AluDifferentialTest : EbpfFixture,
                             ::testing::WithParamInterface<u64> {};

TEST_P(AluDifferentialTest, RandomProgramsMatchReferenceEvaluator) {
  Rng rng(GetParam());
  const u8 kOps[] = {kAluAdd, kAluSub, kAluMul, kAluDiv, kAluOr,
                     kAluAnd, kAluLsh, kAluRsh, kAluNeg, kAluMod,
                     kAluXor, kAluMov, kAluArsh};
  const u8 kRegs = 6;  // r0..r5 participate

  for (int prog_i = 0; prog_i < 200; prog_i++) {
    // Random seeds + a random straight-line op sequence.
    u64 seed[kRegs];
    std::vector<AluStep> steps;
    u32 nsteps = 1 + static_cast<u32>(rng.NextBounded(32));
    for (u8 i = 0; i < kRegs; i++) seed[i] = rng.Next();
    for (u32 i = 0; i < nsteps; i++) {
      AluStep s;
      s.op = kOps[rng.NextBounded(sizeof(kOps))];
      s.is64 = rng.NextBounded(2) == 0;
      s.reg_mode = rng.NextBounded(2) == 0;
      s.dst = static_cast<u8>(rng.NextBounded(kRegs));
      s.src = static_cast<u8>(rng.NextBounded(kRegs));
      s.imm = static_cast<i32>(rng.Next());
      // Keep constant operands inside what a strict verifier allows:
      // no const div/mod by zero, no const over-width shifts.
      if (!s.reg_mode) {
        if ((s.op == kAluDiv || s.op == kAluMod) && s.imm == 0) s.imm = 3;
        if (s.op == kAluLsh || s.op == kAluRsh || s.op == kAluArsh) {
          s.imm &= s.is64 ? 63 : 31;
        }
      }
      steps.push_back(s);
    }

    // Emit the program...
    std::vector<Insn> insns;
    for (u8 i = 0; i < kRegs; i++) {
      insns.push_back(LdImm64Lo(i, 0, seed[i]));
      insns.push_back(LdImm64Hi(seed[i]));
    }
    for (const AluStep& s : steps) {
      if (s.op == kAluNeg) {
        insns.push_back(AluImm(kAluNeg, s.dst, 0, s.is64));
      } else if (s.reg_mode) {
        insns.push_back(AluReg(s.op, s.dst, s.src, s.is64));
      } else {
        insns.push_back(AluImm(s.op, s.dst, s.imm, s.is64));
      }
    }
    // Fold every register into r0 so one return value checks them all.
    for (u8 i = 1; i < kRegs; i++) {
      insns.push_back(AluReg(kAluXor, 0, i, /*is64=*/true));
    }
    insns.push_back(Exit());

    // ...evaluate the same steps independently...
    u64 regs[kRegs];
    for (u8 i = 0; i < kRegs; i++) regs[i] = seed[i];
    for (const AluStep& s : steps) {
      u64 b = s.op == kAluNeg ? 0
              : s.reg_mode    ? regs[s.src]
                              : static_cast<u64>(static_cast<i64>(s.imm));
      regs[s.dst] = RefAlu(s.op, s.is64, regs[s.dst], b);
    }
    u64 expect = regs[0];
    for (u8 i = 1; i < kRegs; i++) expect ^= regs[i];

    // ...and compare through the real verifier + interpreter.
    Program prog(std::move(insns), {});
    ASSERT_TRUE(verifier.Verify(prog).ok()) << "program " << prog_i;
    TestCtx ctx{};
    auto res = interp.Run(prog, &ctx, sizeof(ctx));
    ASSERT_TRUE(res.status.ok()) << res.status.ToString();
    EXPECT_EQ(res.r0, expect) << "program " << prog_i << " of seed "
                              << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluDifferentialTest,
                         ::testing::Values(1, 7, 42, 1234, 987654321));

// --- Unsupported encodings are rejected, not misexecuted ---------------------------

TEST_F(EbpfFixture, VerifierRejectsJmp32Class) {
  // JMP32 (class 0x06) is deliberately unsupported; hand-craft one since
  // the assembler never emits it.
  std::vector<Insn> insns = {
      MovImm(0, 0),
      Insn{static_cast<u8>(kClassJmp32 | kJmpJeq), 0, 0, 0},
      Exit(),
  };
  Program prog(std::move(insns), {});
  EXPECT_FALSE(verifier.Verify(prog).ok());
}

TEST_F(EbpfFixture, VerifierRejectsByteswap) {
  std::vector<Insn> insns = {
      MovImm(0, 0),
      Insn{static_cast<u8>(kClassAlu64 | kAluEnd), 0, 0, 16},
      Exit(),
  };
  Program prog(std::move(insns), {});
  EXPECT_FALSE(verifier.Verify(prog).ok());
}

// --- Disassembler ------------------------------------------------------------------

TEST_F(EbpfFixture, DisassembleReadableOutput) {
  auto prog = Asm(
      "  ldxdw r3, [r1+8]\n"
      "  jne r3, 1, allow\n"
      "  mov r0, 0x10286\n"
      "  exit\n"
      "allow:\n"
      "  mov r0, 0x120000\n"
      "  exit\n");
  ASSERT_TRUE(prog.ok());
  auto text = Disassemble(*prog);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("ldxdw r3, [r1+8]"), std::string::npos) << *text;
  EXPECT_NE(text->find("jne r3, 1, L4"), std::string::npos) << *text;
  EXPECT_NE(text->find("L4:"), std::string::npos) << *text;
  EXPECT_NE(text->find("exit"), std::string::npos) << *text;
}

TEST_F(EbpfFixture, DisassembleResolvesHelperNames) {
  auto map = std::make_shared<ArrayMap>(4, 8);
  auto prog = Asm(
      "  lddw r1, map 0\n"
      "  mov r2, r10\n"
      "  add r2, -8\n"
      "  stw [r2], 0\n"
      "  call map_lookup_elem\n"
      "  mov r0, 0\n"
      "  exit\n",
      {map});
  ASSERT_TRUE(prog.ok());
  auto text = Disassemble(*prog);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("call map_lookup_elem"), std::string::npos) << *text;
  EXPECT_NE(text->find("lddw r1, map 0"), std::string::npos) << *text;
}

// Property: every shipped classifier round-trips exactly through
// disassemble -> re-assemble (same instruction bytes).
TEST_F(EbpfFixture, ShippedClassifiersRoundTripThroughDisassembler) {
  auto roundtrip = [&](Result<Program> orig) {
    ASSERT_TRUE(orig.ok()) << orig.status().ToString();
    auto text = Disassemble(*orig);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto again = Assemble(*text, orig->maps());
    ASSERT_TRUE(again.ok()) << again.status().ToString() << "\n" << *text;
    ASSERT_EQ(again->insns().size(), orig->insns().size()) << *text;
    for (usize i = 0; i < orig->insns().size(); i++) {
      const Insn& a = orig->insns()[i];
      const Insn& b = again->insns()[i];
      EXPECT_EQ(a.opcode, b.opcode) << "insn " << i << "\n" << *text;
      EXPECT_EQ(a.regs, b.regs) << "insn " << i;
      EXPECT_EQ(a.off, b.off) << "insn " << i;
      EXPECT_EQ(a.imm, b.imm) << "insn " << i;
    }
  };
  roundtrip(functions::PassthroughClassifier());
  roundtrip(functions::EncryptorClassifier());
  roundtrip(functions::ReplicatorClassifier());
  roundtrip(functions::ReadOnlyClassifier());
  roundtrip(functions::VendorPassClassifier());
  roundtrip(functions::KvPassClassifier());
  roundtrip(functions::RateLimitClassifier(functions::MakeQosMap(100, 10)));
}

// Property: random ALU/jump/memory programs round-trip bit-exactly.
TEST_F(EbpfFixture, RandomProgramsRoundTripThroughDisassembler) {
  Rng rng(4242);
  const u8 kAluOpsArr[] = {kAluAdd, kAluSub, kAluMul, kAluOr,  kAluAnd,
                           kAluLsh, kAluRsh, kAluNeg, kAluMod, kAluXor,
                           kAluMov, kAluArsh};
  for (int iter = 0; iter < 300; iter++) {
    std::vector<Insn> insns;
    u32 body = 2 + static_cast<u32>(rng.NextBounded(12));
    for (u32 i = 0; i < body; i++) {
      switch (rng.NextBounded(5)) {
        case 0:  // lddw
          insns.push_back(LdImm64Lo(static_cast<u8>(rng.NextBounded(10)), 0,
                                    rng.Next()));
          insns.push_back(LdImm64Hi(insns.back().imm));
          insns.back().imm = static_cast<i32>(rng.Next());
          break;
        case 1:  // memory
          insns.push_back(Ldx(
              static_cast<u8>(rng.NextBounded(4) << 3),
              static_cast<u8>(rng.NextBounded(10)),
              static_cast<u8>(rng.NextBounded(10)),
              static_cast<i16>(static_cast<i64>(rng.NextBounded(512)) -
                               256)));
          break;
        case 2: {  // forward jump (target resolved below)
          insns.push_back(JmpImm(kJmpJne,
                                 static_cast<u8>(rng.NextBounded(10)),
                                 static_cast<i32>(rng.Next()), 0));
          break;
        }
        default: {  // ALU
          u8 op = kAluOpsArr[rng.NextBounded(sizeof(kAluOpsArr))];
          u8 dst = static_cast<u8>(rng.NextBounded(10));
          bool is64 = rng.NextBounded(2) == 0;
          if (op == kAluNeg) {
            insns.push_back(AluImm(kAluNeg, dst, 0, is64));
          } else if (rng.NextBounded(2)) {
            insns.push_back(AluReg(op, dst,
                                   static_cast<u8>(rng.NextBounded(10)),
                                   is64));
          } else {
            insns.push_back(
                AluImm(op, dst, static_cast<i32>(rng.Next()), is64));
          }
        }
      }
    }
    insns.push_back(Exit());
    // Point every jump at the final exit (always forward, in range).
    for (usize i = 0; i < insns.size(); i++) {
      if ((insns[i].opcode & 0x07) == kClassJmp &&
          insns[i].opcode != kOpExit && insns[i].opcode != kOpCall) {
        insns[i].off = static_cast<i16>(insns.size() - 1 - i - 1);
      }
    }
    Program orig(std::move(insns), {});
    auto text = Disassemble(orig);
    ASSERT_TRUE(text.ok()) << iter << ": " << text.status().ToString();
    auto again = Assemble(*text, {});
    ASSERT_TRUE(again.ok()) << iter << ": " << again.status().ToString()
                            << "\n" << *text;
    ASSERT_EQ(again->insns().size(), orig.insns().size()) << *text;
    for (usize i = 0; i < orig.insns().size(); i++) {
      const Insn& a = orig.insns()[i];
      const Insn& b = again->insns()[i];
      ASSERT_TRUE(a.opcode == b.opcode && a.regs == b.regs &&
                  a.off == b.off && a.imm == b.imm)
          << "iter " << iter << " insn " << i << "\n" << *text;
    }
  }
}

}  // namespace
}  // namespace nvmetro::ebpf

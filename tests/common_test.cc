// Tests for common utilities: Status/Result, RNG and distributions,
// latency histogram, flags, string helpers, table printer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strutil.h"
#include "common/table.h"

namespace nvmetro {
namespace {

// --- Status / Result --------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kDataLoss); c++) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; i++) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; i++) {
    u64 v = rng.NextRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    hit_lo |= v == 5;
    hit_hi |= v == 8;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) sum += rng.NextExponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.5);
}

TEST(RngTest, FillWritesAllBytes) {
  Rng rng(17);
  std::vector<u8> buf(37, 0);
  rng.Fill(buf.data(), buf.size());
  // Expect at least half the bytes nonzero (p(fail) astronomically small).
  int nonzero = static_cast<int>(
      std::count_if(buf.begin(), buf.end(), [](u8 b) { return b != 0; }));
  EXPECT_GT(nonzero, 18);
}

// --- Zipfian ------------------------------------------------------------------

class ZipfianParamTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianParamTest, StaysInRangeAndIsSkewed) {
  const double theta = GetParam();
  const u64 n = 1000;
  ZipfianGenerator gen(n, theta, 5);
  std::vector<u64> counts(n, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; i++) {
    u64 v = gen.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // Item 0 must be the most popular, and the top-10 items must hold a
  // disproportionate share for high theta.
  u64 max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(max_count, counts[0]);
  u64 top10 = 0;
  for (int i = 0; i < 10; i++) top10 += counts[i];
  // Uniform share of top-10 would be 1%. Zipf(0.99) gives ~40%+.
  EXPECT_GT(static_cast<double>(top10) / draws, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianParamTest,
                         ::testing::Values(0.8, 0.9, 0.99));

TEST(ZipfianTest, ItemCountGrowthKeepsRange) {
  ZipfianGenerator gen(100, 0.99, 3);
  gen.SetItemCount(200);
  for (int i = 0; i < 5000; i++) ASSERT_LT(gen.Next(), 200u);
}

TEST(ScrambledZipfianTest, SpreadsHotItems) {
  const u64 n = 1000;
  ScrambledZipfianGenerator gen(n, 0.99, 7);
  std::vector<u64> counts(n, 0);
  for (int i = 0; i < 100000; i++) {
    u64 v = gen.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // The most popular item should NOT be item 0 with high probability —
  // scrambling moves it somewhere pseudo-random.
  u64 argmax =
      std::max_element(counts.begin(), counts.end()) - counts.begin();
  // Hot items exist (zipf preserved)...
  EXPECT_GT(counts[argmax], 100000u / n * 10);
}

TEST(LatestTest, FavorsNewestItems) {
  const u64 n = 1000;
  LatestGenerator gen(n, 21);
  u64 high_half = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; i++) {
    u64 v = gen.Next();
    ASSERT_LT(v, n);
    if (v >= n / 2) high_half++;
  }
  EXPECT_GT(static_cast<double>(high_half) / draws, 0.8);
}

TEST(FnvHashTest, KnownValueAndSpread) {
  EXPECT_NE(FnvHash64(0), FnvHash64(1));
  EXPECT_EQ(FnvHash64(42), FnvHash64(42));
  const char* s = "hello";
  EXPECT_EQ(FnvHash64Bytes(s, 5), FnvHash64Bytes("hello", 5));
  EXPECT_NE(FnvHash64Bytes(s, 5), FnvHash64Bytes("hellp", 5));
}

// --- LatencyHistogram ---------------------------------------------------------

TEST(HistogramTest, EmptyQuantilesZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Relative error bounded by bucket width (~0.8%).
  EXPECT_NEAR(static_cast<double>(h.Median()), 1000.0, 10.0);
}

TEST(HistogramTest, ExactForSmallValues) {
  LatencyHistogram h;
  for (u64 v = 0; v < 128; v++) h.Record(v);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 127u);
  EXPECT_EQ(h.Median(), 63u);
}

class HistogramQuantileTest : public ::testing::TestWithParam<double> {};

TEST_P(HistogramQuantileTest, MatchesSortedReferenceWithin1Percent) {
  const double q = GetParam();
  Rng rng(31);
  LatencyHistogram h;
  std::vector<u64> vals;
  for (int i = 0; i < 20000; i++) {
    u64 v = 100 + static_cast<u64>(rng.NextExponential(50000.0));
    vals.push_back(v);
    h.Record(v);
  }
  std::sort(vals.begin(), vals.end());
  u64 ref = vals[static_cast<usize>(q * (vals.size() - 1))];
  u64 got = h.Quantile(q);
  EXPECT_NEAR(static_cast<double>(got), static_cast<double>(ref),
              static_cast<double>(ref) * 0.02 + 2);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, HistogramQuantileTest,
                         ::testing::Values(0.1, 0.5, 0.9, 0.99, 0.999));

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Rng rng(37);
  LatencyHistogram a, b, all;
  for (int i = 0; i < 5000; i++) {
    u64 v = rng.NextBounded(1000000);
    if (i % 2) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.Median(), all.Median());
  EXPECT_EQ(a.P99(), all.P99());
  EXPECT_EQ(a.max(), all.max());
}

TEST(HistogramTest, MeanIsExact) {
  LatencyHistogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(12345);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, HandlesHugeValues) {
  LatencyHistogram h;
  h.Record(~0ull - 5);
  h.Record(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull - 5);
  EXPECT_GE(h.Quantile(0.99), h.Quantile(0.01));
}

// Quantile edge cases: q=0.0 must report the smallest sample and q=1.0 the
// largest — never a bucket edge beyond any recorded value — and the
// extremes must hold for empty, single-sample and huge-value histograms.

TEST(HistogramTest, QuantileExtremesAreMinAndMax) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(5000);
  h.Record(9000);
  EXPECT_EQ(h.Quantile(0.0), h.min());
  EXPECT_EQ(h.Quantile(1.0), h.max());
  // Out-of-range q clamps, never over-runs a bucket.
  EXPECT_EQ(h.Quantile(-0.5), h.min());
  EXPECT_EQ(h.Quantile(2.0), h.max());
}

TEST(HistogramTest, QuantileEmptyIsZeroForAllQ) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
  EXPECT_EQ(h.Quantile(0.999), 0u);
}

TEST(HistogramTest, QuantileSingleSampleIsThatSampleForAllQ) {
  LatencyHistogram h;
  h.Record(123456789);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 123456789u) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileNeverExceedsMaxUnderBucketRounding) {
  // 10001 falls mid-bucket at this magnitude: the bucket's upper edge is
  // above the sample, so an unclamped q=1.0 would over-report.
  LatencyHistogram h;
  h.RecordMany(10001, 1000);
  EXPECT_EQ(h.Quantile(1.0), 10001u);
  EXPECT_EQ(h.Quantile(0.0), 10001u);
  EXPECT_LE(h.Quantile(0.5), h.max());
}

TEST(HistogramTest, QuantileHugeValuesStayInBounds) {
  // Values at and above 2^63 land in the last bucket group; quantiles must
  // stay within [min, max] with no bucket-array over-run (ASan-checked).
  LatencyHistogram h;
  h.Record(1ull << 63);
  h.Record(~0ull);
  h.Record((1ull << 63) + (1ull << 62));
  EXPECT_EQ(h.Quantile(0.0), h.min());
  EXPECT_EQ(h.Quantile(1.0), ~0ull);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_GE(h.Quantile(q), h.min()) << "q=" << q;
    EXPECT_LE(h.Quantile(q), h.max()) << "q=" << q;
  }
}

// --- Flags --------------------------------------------------------------------

TEST(FlagsTest, ParsesAllTypes) {
  Flags f;
  f.DefineInt("count", 5, "");
  f.DefineDouble("rate", 1.5, "");
  f.DefineBool("verbose", false, "");
  f.DefineString("name", "x", "");
  const char* argv[] = {"prog",        "--count=7", "--rate", "2.5",
                        "--verbose",   "--name=hi", "pos1"};
  ASSERT_TRUE(f.Parse(7, argv).ok());
  EXPECT_EQ(f.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(f.GetDouble("rate"), 2.5);
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_EQ(f.GetString("name"), "hi");
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
}

TEST(FlagsTest, DefaultsSurviveNoArgs) {
  Flags f;
  f.DefineInt("n", 9, "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.Parse(1, argv).ok());
  EXPECT_EQ(f.GetInt("n"), 9);
}

TEST(FlagsTest, NoPrefixDisablesBool) {
  Flags f;
  f.DefineBool("poll", true, "");
  const char* argv[] = {"prog", "--no-poll"};
  ASSERT_TRUE(f.Parse(2, argv).ok());
  EXPECT_FALSE(f.GetBool("poll"));
}

TEST(FlagsTest, UnknownFlagFails) {
  Flags f;
  const char* argv[] = {"prog", "--wat=1"};
  EXPECT_FALSE(f.Parse(2, argv).ok());
}

TEST(FlagsTest, MalformedIntFails) {
  Flags f;
  f.DefineInt("n", 0, "");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(f.Parse(2, argv).ok());
}

// --- strutil ------------------------------------------------------------------

TEST(StrUtilTest, FormatBlockSize) {
  EXPECT_EQ(FormatBlockSize(512), "512B");
  EXPECT_EQ(FormatBlockSize(16 * KiB), "16K");
  EXPECT_EQ(FormatBlockSize(128 * KiB), "128K");
  EXPECT_EQ(FormatBlockSize(2 * MiB), "2M");
}

TEST(StrUtilTest, ParseBlockSizeRoundTrips) {
  for (u64 v : {u64{512}, u64{4096}, 16 * KiB, 128 * KiB, 1 * MiB}) {
    EXPECT_EQ(ParseBlockSize(FormatBlockSize(v)), v);
  }
  EXPECT_EQ(ParseBlockSize("4k"), 4 * KiB);
  EXPECT_EQ(ParseBlockSize("bogus"), 0u);
  EXPECT_EQ(ParseBlockSize(""), 0u);
}

TEST(StrUtilTest, SplitAndTrim) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  auto ne = StrSplit("a,b,,c", ',', /*skip_empty=*/true);
  ASSERT_EQ(ne.size(), 3u);
  EXPECT_EQ(StrTrim("  x y\t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
}

TEST(StrUtilTest, FormatDuration) {
  EXPECT_EQ(FormatDuration(500), "500 ns");
  EXPECT_EQ(FormatDuration(12'300), "12.3 us");
  EXPECT_EQ(FormatDuration(1'200'000), "1.20 ms");
}

// --- TablePrinter --------------------------------------------------------------

TEST(TableTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header separator exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.RenderCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace nvmetro

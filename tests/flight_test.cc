// Flight-recorder tests (DESIGN.md §16): record/ring mechanics, the
// trigger framework's freeze-dump-unfreeze discipline, dump round-trip
// fidelity, every anomaly source end to end through the real router, and
// the cross-instrument contract — a FlightTimeline rebuilt from a dump
// must agree nanosecond-exactly with SpanAnalyzer on every request both
// instruments retained.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/notify.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "fault/fault.h"
#include "functions/classifiers.h"
#include "kv/pushdown.h"
#include "mem/address_space.h"
#include "mem/arena.h"
#include "nvme/prp.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "overload/overload.h"
#include "qos/qos.h"
#include "ssd/controller.h"
#include "uif/framework.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::obs {
namespace {

// --- Record + ring mechanics -------------------------------------------------

TEST(FlightRecordTest, PackedLayoutAndEdgeNames) {
  EXPECT_EQ(sizeof(FlightRecord), 32u);
  EXPECT_STREQ(FlightEdgeName(static_cast<u8>(SpanKind::kVsqPop)), "VSQ_POP");
  EXPECT_STREQ(FlightEdgeName(static_cast<u8>(SpanKind::kResubmit)),
               "RESUBMIT");
  EXPECT_STREQ(FlightEdgeName(kFlightEdgeFaultWindow), "FAULT_WINDOW");
  EXPECT_STREQ(FlightEdgeName(kFlightEdgeTriggerFired), "TRIGGER_FIRED");
  EXPECT_STREQ(FlightEdgeName(kFlightEdgeStaleCid), "STALE_CID_DROP");
}

FlightRecord Rec(u64 t, u64 req_id, u8 edge, u32 delta = 0) {
  FlightRecord r;
  r.t = t;
  r.req_id = req_id;
  r.edge = edge;
  r.delta_ns = delta;
  return r;
}

TEST(FlightRingTest, CapacityRoundsUpToPowerOfTwo) {
  FlightRing ring(1, 0, 5);
  EXPECT_EQ(ring.capacity(), 8u);
  FlightRing exact(1, 0, 16);
  EXPECT_EQ(exact.capacity(), 16u);
}

TEST(FlightRingTest, WrapKeepsNewestOldestFirst) {
  FlightRing ring(1, 0, 8);
  for (u64 i = 0; i < 20; i++) {
    ring.Record(Rec(100 + i, i + 1, static_cast<u8>(SpanKind::kVsqPop)));
  }
  EXPECT_EQ(ring.total(), 20u);
  EXPECT_EQ(ring.held(), 8u);
  std::vector<FlightRecord> out = ring.Records();
  ASSERT_EQ(out.size(), 8u);
  // Oldest retained record first: writes 12..19 survive the wrap.
  for (usize i = 0; i < out.size(); i++) {
    EXPECT_EQ(out[i].req_id, 13 + i);
    EXPECT_EQ(out[i].t, 112 + i);
  }
}

TEST(FlightRingTest, FreezeDropsAndCounts) {
  FlightRing ring(1, 0, 8);
  ring.Record(Rec(1, 1, 0));
  ring.set_frozen(true);
  ring.Record(Rec(2, 2, 0));
  ring.Record(Rec(3, 3, 0));
  EXPECT_EQ(ring.total(), 1u);
  EXPECT_EQ(ring.dropped_frozen(), 2u);
  ring.set_frozen(false);
  ring.Record(Rec(4, 4, 0));
  EXPECT_EQ(ring.total(), 2u);
  EXPECT_EQ(ring.dropped_frozen(), 2u);
}

TEST(FlightRecorderTest, RegisterRingIdempotentAndFind) {
  FlightRecorder rec(FlightConfig{16, 8});
  FlightRing* a = rec.RegisterRing(1, 0);
  FlightRing* b = rec.RegisterRing(1, 0);
  EXPECT_EQ(a, b);
  FlightRing* c = rec.RegisterRing(2, 0);
  EXPECT_NE(a, c);
  EXPECT_EQ(rec.Find(1, 0), a);
  EXPECT_EQ(rec.Find(2, 0), c);
  EXPECT_EQ(rec.Find(3, 0), nullptr);
  EXPECT_EQ(rec.rings().size(), 2u);
}

TEST(FlightRecorderTest, MarksRingAndGlobalFreeze) {
  FlightRecorder rec(FlightConfig{16, 8});
  FlightRing* r = rec.RegisterRing(1, 0);
  rec.Mark(50, kFlightEdgeFaultWindow, 3);
  EXPECT_EQ(rec.marks().total(), 1u);
  std::vector<FlightRecord> marks = rec.marks().Records();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0].req_id, 0u);
  EXPECT_EQ(marks[0].t, 50u);
  EXPECT_EQ(marks[0].aux, 3u);
  // Freeze covers every ring, including marks, and late registrations.
  rec.Freeze();
  r->Record(Rec(60, 1, 0));
  rec.Mark(61, kFlightEdgeFaultWindow, 2);
  FlightRing* late = rec.RegisterRing(1, 1);
  late->Record(Rec(62, 2, 0));
  EXPECT_EQ(rec.total_records(), 1u);  // only the mark before the freeze
  EXPECT_EQ(rec.dropped_while_frozen(), 3u);
  rec.Unfreeze();
  r->Record(Rec(70, 3, 0));
  EXPECT_EQ(r->total(), 1u);
}

// --- Trigger names + dump round-trip ----------------------------------------

TEST(FlightTriggerTest, NamesRoundTrip) {
  for (usize i = 0; i < kFlightTriggerCount; i++) {
    FlightTrigger t = static_cast<FlightTrigger>(i);
    FlightTrigger back = FlightTrigger::kCount;
    ASSERT_TRUE(FlightTriggerFromName(FlightTriggerName(t), &back))
        << FlightTriggerName(t);
    EXPECT_EQ(back, t);
  }
  FlightTrigger out;
  EXPECT_FALSE(FlightTriggerFromName("definitely_not_a_trigger", &out));
}

FlightDump MakeDump() {
  FlightDump d;
  d.trigger = FlightTrigger::kDeadlineAbort;
  d.t = 123456789;
  d.seq = 3;
  d.detail = "vm=1 req=42 outstanding=2";
  d.metrics_text = "# counters\nrouter_requests_total 17\n";
  d.timeseries_csv = "t_ns,iops\n1000000,250\n";
  FlightDump::RingDump ring;
  ring.vm_id = 1;
  ring.queue = 0;
  ring.capacity = 8;
  ring.total = 12;
  ring.dropped_frozen = 1;
  for (u64 i = 0; i < 4; i++) {
    FlightRecord r = Rec(1000 + i * 10, 42, static_cast<u8>(SpanKind::kVsqPop),
                         i == 0 ? 0 : 10);
    r.aux = 7;
    r.status = 0x4004;
    r.tag_lo = 0x0102;
    r.opcode = 2;
    r.tenant = 1;
    r.hook = 1;
    ring.records.push_back(r);
  }
  d.rings.push_back(ring);
  FlightDump::RingDump marks;
  marks.vm_id = 0;
  marks.queue = kFlightMarksQueue;
  marks.capacity = 4;
  marks.total = 1;
  FlightRecord m = Rec(999, 0, kFlightEdgeTriggerFired, kFlightDeltaUnknown);
  m.aux = static_cast<u32>(FlightTrigger::kDeadlineAbort);
  marks.records.push_back(m);
  d.rings.push_back(marks);
  return d;
}

TEST(FlightDumpTest, SerializeParseRoundTripBitExact) {
  FlightDump d = MakeDump();
  std::string text = d.Serialize();
  FlightDump back;
  std::string error;
  ASSERT_TRUE(FlightDump::Parse(text, &back, &error)) << error;
  EXPECT_EQ(back.version, d.version);
  EXPECT_EQ(back.trigger, d.trigger);
  EXPECT_EQ(back.t, d.t);
  EXPECT_EQ(back.seq, d.seq);
  EXPECT_EQ(back.detail, d.detail);
  EXPECT_EQ(back.metrics_text, d.metrics_text);
  EXPECT_EQ(back.timeseries_csv, d.timeseries_csv);
  ASSERT_EQ(back.rings.size(), d.rings.size());
  for (usize i = 0; i < d.rings.size(); i++) {
    EXPECT_EQ(back.rings[i].vm_id, d.rings[i].vm_id);
    EXPECT_EQ(back.rings[i].queue, d.rings[i].queue);
    EXPECT_EQ(back.rings[i].capacity, d.rings[i].capacity);
    EXPECT_EQ(back.rings[i].total, d.rings[i].total);
    EXPECT_EQ(back.rings[i].dropped_frozen, d.rings[i].dropped_frozen);
    ASSERT_EQ(back.rings[i].records.size(), d.rings[i].records.size());
    for (usize j = 0; j < d.rings[i].records.size(); j++) {
      EXPECT_EQ(std::memcmp(&back.rings[i].records[j], &d.rings[i].records[j],
                            sizeof(FlightRecord)),
                0);
    }
  }
  // Second generation serializes to the identical text: the dump format
  // has one canonical rendering.
  EXPECT_EQ(back.Serialize(), text);
}

TEST(FlightDumpTest, ParseRejectsGarbage) {
  FlightDump out;
  std::string error;
  EXPECT_FALSE(FlightDump::Parse("", &out, &error));
  EXPECT_FALSE(FlightDump::Parse("NOTFLIGHT 1\n", &out, &error));
  EXPECT_FALSE(FlightDump::Parse("NVMFLIGHT 99\n", &out, &error));
  // Truncation anywhere (even mid-record) is an error, not a short read.
  std::string text = MakeDump().Serialize();
  for (usize cut : {text.size() / 4, text.size() / 2, text.size() - 2}) {
    EXPECT_FALSE(FlightDump::Parse(text.substr(0, cut), &out, &error))
        << "cut at " << cut;
  }
}

// --- FlightTriggers ----------------------------------------------------------

struct TriggerHarness {
  FlightRecorder rec{FlightConfig{64, 16}};
  MetricsRegistry metrics;
  std::unique_ptr<FlightTriggers> triggers;

  explicit TriggerHarness(FlightTriggersConfig cfg = {}) {
    rec.RegisterRing(1, 0)->Record(Rec(10, 1, 0));
    metrics.GetCounter("router.requests")->Inc(17);
    triggers = std::make_unique<FlightTriggers>(&rec, &metrics, nullptr, cfg);
  }
};

TEST(FlightTriggersTest, ManualDumpSnapshotsEverything) {
  TriggerHarness h;
  ASSERT_TRUE(h.triggers->RequestDump(1000, "operator request"));
  EXPECT_EQ(h.triggers->dumps_produced(), 1u);

  FlightDump d;
  std::string error;
  ASSERT_TRUE(FlightDump::Parse(h.triggers->last_dump_text(), &d, &error))
      << error;
  EXPECT_EQ(d.trigger, FlightTrigger::kManual);
  EXPECT_EQ(d.t, 1000u);
  EXPECT_EQ(d.detail, "operator request");
  EXPECT_NE(d.metrics_text.find("router_requests_total 17"),
            std::string::npos);
  ASSERT_EQ(d.rings.size(), 2u);  // data ring + marks ring
  EXPECT_EQ(d.rings[1].queue, kFlightMarksQueue);

  // The recorder is live again and carries the TRIGGER_FIRED mark (it
  // lands after the snapshot so the *next* dump shows this one).
  EXPECT_FALSE(h.rec.frozen());
  std::vector<FlightRecord> marks = h.rec.marks().Records();
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0].edge, kFlightEdgeTriggerFired);
  EXPECT_EQ(marks[0].aux, static_cast<u32>(FlightTrigger::kManual));
}

TEST(FlightTriggersTest, CooldownSuppressesAnomaliesButNotManual) {
  TriggerHarness h(FlightTriggersConfig{.cooldown_ns = 1'000'000});
  EXPECT_TRUE(h.triggers->Fire(FlightTrigger::kSloBreach, 1000, "a"));
  EXPECT_FALSE(h.triggers->Fire(FlightTrigger::kDeadlineAbort, 2000, "b"));
  EXPECT_EQ(h.triggers->fires_suppressed(), 1u);
  EXPECT_TRUE(h.triggers->RequestDump(3000, "manual bypasses cooldown"));
  // Past the cooldown the anomaly path dumps again.
  EXPECT_TRUE(
      h.triggers->Fire(FlightTrigger::kDeadlineAbort, 3000 + 1'000'000, "c"));
  EXPECT_EQ(h.triggers->dumps_produced(), 3u);
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kSloBreach), 1u);
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kDeadlineAbort), 2u);
}

TEST(FlightTriggersTest, MaxDumpsCapsTheRun) {
  TriggerHarness h(FlightTriggersConfig{.cooldown_ns = 0, .max_dumps = 2});
  EXPECT_TRUE(h.triggers->RequestDump(1, "a"));
  EXPECT_TRUE(h.triggers->RequestDump(2, "b"));
  EXPECT_FALSE(h.triggers->RequestDump(3, "c"));
  EXPECT_EQ(h.triggers->dumps_produced(), 2u);
  EXPECT_EQ(h.triggers->fires_suppressed(), 1u);
}

TEST(FlightTriggersTest, DisarmedSourceIsCountedButNeverDumps) {
  TriggerHarness h;
  h.triggers->Arm(FlightTrigger::kSloBreach, false);
  EXPECT_FALSE(h.triggers->armed(FlightTrigger::kSloBreach));
  EXPECT_FALSE(h.triggers->Fire(FlightTrigger::kSloBreach, 1000, "x"));
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kSloBreach), 1u);
  EXPECT_EQ(h.triggers->dumps_produced(), 0u);
}

TEST(FlightTriggersTest, LazyMetricsKeepTriggerFreeExportsIdentical) {
  // A wired-but-silent trigger framework must not perturb the metrics
  // export: flight.* counters appear only once a fire is accepted.
  MetricsRegistry plain;
  plain.GetCounter("router.requests")->Inc(17);
  TriggerHarness h;
  EXPECT_EQ(ExportPrometheusText(h.metrics), ExportPrometheusText(plain));
  ASSERT_TRUE(h.triggers->RequestDump(1, "now they may register"));
  EXPECT_NE(ExportPrometheusText(h.metrics).find("flight_dumps_total"),
            std::string::npos);
}

TEST(FlightTriggersTest, WritesDumpFileToDir) {
  FlightTriggersConfig cfg;
  cfg.dump_dir = ::testing::TempDir();
  cfg.dump_prefix = "flighttest";
  TriggerHarness h(cfg);
  ASSERT_TRUE(h.triggers->Fire(FlightTrigger::kQosShedStorm, 77, "d"));
  const FlightTriggers::DumpInfo& info = h.triggers->dumps()[0];
  ASSERT_FALSE(info.path.empty());
  EXPECT_NE(info.path.find("flighttest-0-qos_shed_storm.flight"),
            std::string::npos);
  std::FILE* f = std::fopen(info.path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string data;
  char buf[4096];
  usize n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  std::remove(info.path.c_str());
  EXPECT_EQ(data, info.serialized);
}

TEST(FlightTriggersTest, SloBreachHookFires) {
  TriggerHarness h;
  TraceRecorder trace(64);
  SloWatchdog slo(&h.metrics, &trace, {.interval_ns = 1'000'000});
  slo.AddErrorRateTarget("writes", "router.failed", "router.requests", 0.0);
  h.triggers->ArmSlo(&slo);
  h.metrics.GetCounter("router.failed")->Inc();
  h.metrics.GetCounter("router.requests")->Inc();
  slo.EvaluateWindow(1'000'000);
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kSloBreach), 1u);
  EXPECT_EQ(h.triggers->dumps_produced(), 1u);
  FlightDump d;
  std::string error;
  ASSERT_TRUE(FlightDump::Parse(h.triggers->last_dump_text(), &d, &error));
  EXPECT_EQ(d.trigger, FlightTrigger::kSloBreach);
  EXPECT_NE(d.detail.find("writes"), std::string::npos);
}

TEST(FlightTriggersTest, OverloadEscalationFires) {
  TriggerHarness h;
  overload::OverloadConfig cfg;
  overload::OverloadController ctl(cfg, nullptr);
  ctl.ArmFlightTriggers(h.triggers.get());
  // A huge standing backlog: the delay signal jumps straight past the
  // shed threshold, one Normal -> Shed upgrade.
  ctl.NoteBacklog(static_cast<i64>(cfg.device_tokens_per_sec) * 10);
  ctl.Evaluate(1'000'000);
  EXPECT_EQ(ctl.state(), overload::State::kShed);
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kOverloadEscalation), 1u);
  EXPECT_EQ(h.triggers->dumps_produced(), 1u);
}

TEST(FlightTriggersTest, QosShedStormFiresAfterBurstOnly) {
  TriggerHarness h(FlightTriggersConfig{.cooldown_ns = 0});
  qos::QosScheduler sched(qos::QosConfig{}, nullptr);
  ASSERT_TRUE(sched
                  .RegisterTenant({.tenant_id = 7,
                                   .cls = qos::TenantClass::kBestEffort})
                  .ok());
  sched.ArmFlightTriggers(h.triggers.get(), /*shed_burst=*/3);
  sched.NoteShed(7);
  sched.NoteShed(7);
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kQosShedStorm), 0u);
  // An admission breaks the run; the storm counter restarts.
  ASSERT_EQ(sched.Admit(7, 1, 1'000'000).action,
            qos::AdmitResult::Action::kAdmit);
  EXPECT_EQ(sched.consecutive_sheds(), 0u);
  sched.NoteShed(7);
  sched.NoteShed(7);
  sched.NoteShed(7);
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kQosShedStorm), 1u);
  // The burst fires once, not once per further shed.
  sched.NoteShed(7);
  EXPECT_EQ(h.triggers->fires(FlightTrigger::kQosShedStorm), 1u);
  EXPECT_EQ(h.triggers->dumps_produced(), 1u);
}

}  // namespace
}  // namespace nvmetro::obs

// --- Through the real router -------------------------------------------------

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

/// Echoes success synchronously (notify-path UIF stand-in).
struct EchoUif : uif::UifBase {
  bool work(const nvme::Sqe&, u32, u16& status) override {
    status = nvme::kStatusSuccess;
    return false;
  }
};

struct FlightRouterFixture : ::testing::Test {
  std::unique_ptr<obs::Observability> obs;
  std::unique_ptr<obs::FlightTriggers> triggers;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<NvmetroHost> host;
  VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;

  struct BuildOpts {
    const char* classifier_asm = nullptr;  // null: passthrough
    bool flight = true;
    bool with_triggers = true;
    bool with_fault_injector = false;
    SimTime request_timeout_ns = 0;
    u16 queues = 1;
  };

  void Build() { Build(BuildOpts{}); }
  void Build(BuildOpts o) {
    obs::ObservabilityConfig ocfg;
    ocfg.flight = o.flight;
    obs = std::make_unique<obs::Observability>(ocfg);
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.obs = obs.get();
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    if (o.with_fault_injector) {
      injector = std::make_unique<fault::FaultInjector>(&sim, obs.get());
      phys->SetFaultInjector(injector.get());
    }
    vm = std::make_unique<virt::Vm>(&sim,
                                    virt::VmConfig{.memory_bytes = 32 * MiB});
    NvmetroHost::Config hcfg;
    hcfg.obs = obs.get();
    hcfg.costs.request_timeout_ns = o.request_timeout_ns;
    if (o.with_triggers && obs->flight()) {
      triggers = std::make_unique<obs::FlightTriggers>(
          obs->flight(), &obs->metrics(), nullptr,
          obs::FlightTriggersConfig{.cooldown_ns = 0, .max_dumps = 16});
      hcfg.flight_triggers = triggers.get();
    }
    host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);
    vc = host->CreateController(vm.get(), {.vm_id = 1});
    auto prog = o.classifier_asm ? ebpf::Assemble(o.classifier_asm)
                                 : functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok());
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    ASSERT_TRUE(driver->Init(o.queues).ok());
  }

  NvmeStatus RunOne(bool write, u64 lba, u16 queue = 0) {
    u64 buf = *vm->memory().AllocPages(1);
    nvme::Sqe s = write ? nvme::MakeWrite(1, lba, 1, buf, 0)
                        : nvme::MakeRead(1, lba, 1, buf, 0);
    NvmeStatus status = 0xFFF;
    driver->Submit(queue, s, [&](NvmeStatus st, u32) { status = st; });
    sim.Run();
    return status;
  }

  /// Records of the (vm 1, queue 0) flight ring.
  std::vector<obs::FlightRecord> Ring0() {
    obs::FlightRing* r = obs->flight()->Find(1, 0);
    return r ? r->Records() : std::vector<obs::FlightRecord>{};
  }

  bool HasEdge(const std::vector<obs::FlightRecord>& recs, obs::SpanKind k) {
    for (const obs::FlightRecord& r : recs) {
      if (r.edge == static_cast<u8>(k)) return true;
    }
    return false;
  }
};

TEST_F(FlightRouterFixture, FastPathLifecycleEdgesRecorded) {
  Build();
  ASSERT_EQ(RunOne(false, 0), nvme::kStatusSuccess);
  std::vector<obs::FlightRecord> recs = Ring0();
  ASSERT_FALSE(recs.empty());
  for (obs::SpanKind k :
       {obs::SpanKind::kVsqPop, obs::SpanKind::kClassifier,
        obs::SpanKind::kDispatchFast, obs::SpanKind::kHcqComplete,
        obs::SpanKind::kVcqPost, obs::SpanKind::kIrqInject}) {
    EXPECT_TRUE(HasEdge(recs, k)) << obs::SpanKindName(k);
  }
  for (const obs::FlightRecord& r : recs) {
    EXPECT_EQ(r.tenant, 1u);
    EXPECT_EQ(r.req_id, 1u);
    if (r.edge == static_cast<u8>(obs::SpanKind::kIrqInject)) {
      // Off-router edge: delta is the sentinel, recomputed by inspectors.
      EXPECT_EQ(r.delta_ns, obs::kFlightDeltaUnknown);
    } else {
      EXPECT_NE(r.delta_ns, obs::kFlightDeltaUnknown);
    }
  }
  // First edge of a fresh request carries delta 0 (no previous edge).
  EXPECT_EQ(recs[0].edge, static_cast<u8>(obs::SpanKind::kVsqPop));
  EXPECT_EQ(recs[0].delta_ns, 0u);
}

TEST_F(FlightRouterFixture, NotifyPathRecordsUifEdges) {
  static constexpr char kAllToUif[] =
      "  mov r0, 0x240000\n"  // SEND_NQ | WILL_COMPLETE_NQ
      "  exit\n";
  Build({.classifier_asm = kAllToUif});
  NotifyChannel channel;
  uif::UifHostParams params;
  params.obs = obs.get();
  uif::UifHost uif_host(&sim, "echo", params);
  EchoUif echo;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &echo);
  uif_host.Start();

  ASSERT_EQ(RunOne(true, 0), nvme::kStatusSuccess);
  std::vector<obs::FlightRecord> recs = Ring0();
  EXPECT_TRUE(HasEdge(recs, obs::SpanKind::kUifWork));
  EXPECT_TRUE(HasEdge(recs, obs::SpanKind::kUifRespond));
  for (const obs::FlightRecord& r : recs) {
    if (r.edge == static_cast<u8>(obs::SpanKind::kUifWork) ||
        r.edge == static_cast<u8>(obs::SpanKind::kUifRespond)) {
      EXPECT_EQ(r.delta_ns, obs::kFlightDeltaUnknown);
      EXPECT_EQ(r.tenant, 1u);
    }
  }
}

TEST_F(FlightRouterFixture, FlightOffRunsCleanAndRecordsNothing) {
  Build({.flight = false, .with_triggers = false});
  EXPECT_EQ(obs->flight(), nullptr);
  ASSERT_EQ(RunOne(false, 0), nvme::kStatusSuccess);
  EXPECT_EQ(obs->trace().requests_opened(), 1u);  // tracing unaffected
}

TEST_F(FlightRouterFixture, TimelineMatchesSpanAnalyzerExactly) {
  Build({.queues = 2});
  for (int i = 0; i < 40; i++) {
    ASSERT_EQ(RunOne(i % 2, i % 64, static_cast<u16>(i % 2)),
              nvme::kStatusSuccess);
  }
  ASSERT_TRUE(triggers->RequestDump(sim.now(), "cross-validation"));

  obs::FlightDump dump;
  std::string error;
  ASSERT_TRUE(
      obs::FlightDump::Parse(triggers->last_dump_text(), &dump, &error))
      << error;
  obs::FlightTimeline timeline(dump);
  ASSERT_TRUE(timeline.Validate(&error)) << error;
  EXPECT_EQ(timeline.truncated_requests(), 0u);
  EXPECT_EQ(timeline.requests().size(), 40u);

  obs::SpanAnalyzer spans;
  spans.Analyze(obs->trace());
  ASSERT_TRUE(spans.CheckExactAttribution(&error)) << error;
  usize compared = 0;
  ASSERT_TRUE(
      obs::CrossValidateFlightSpans(timeline, spans, &compared, &error))
      << error;
  EXPECT_EQ(compared, 40u);

  // Slowest/Failed listings stay inside the attributable set.
  std::vector<const obs::FlightRequestView*> slow = timeline.Slowest(5);
  ASSERT_EQ(slow.size(), 5u);
  for (usize i = 1; i < slow.size(); i++) {
    EXPECT_GE(slow[i - 1]->e2e_ns, slow[i]->e2e_ns);
  }
  EXPECT_TRUE(timeline.Failed().empty());
}

TEST_F(FlightRouterFixture, DeadlineAbortTriggersForensicDump) {
  Build({.with_fault_injector = true, .request_timeout_ns = 400 * kUs});
  fault::FaultPlan plan;
  plan.faults.push_back(
      {.kind = fault::FaultKind::kCommandStall, .count = 1});
  injector->Arm(plan);

  // First IO stalls at the device and aborts at the deadline; later IOs
  // complete normally around it.
  NvmeStatus st = RunOne(false, 0);
  EXPECT_NE(st, nvme::kStatusSuccess);
  ASSERT_EQ(RunOne(true, 1), nvme::kStatusSuccess);

  EXPECT_EQ(triggers->fires(obs::FlightTrigger::kDeadlineAbort), 1u);
  ASSERT_GE(triggers->dumps_produced(), 1u);
  const obs::FlightTriggers::DumpInfo& info = triggers->dumps()[0];
  EXPECT_EQ(info.trigger, obs::FlightTrigger::kDeadlineAbort);
  EXPECT_NE(info.detail.find("vm=1"), std::string::npos);

  obs::FlightDump dump;
  std::string error;
  ASSERT_TRUE(obs::FlightDump::Parse(info.serialized, &dump, &error)) << error;
  obs::FlightTimeline timeline(dump);
  ASSERT_TRUE(timeline.Validate(&error)) << error;
  const obs::FlightRequestView* v = timeline.Find(1);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->timed_out);
  std::vector<const obs::FlightRequestView*> failed = timeline.Failed();
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_EQ(failed[0]->req_id, 1u);
}

TEST_F(FlightRouterFixture, FaultWindowMarksBracketTheAnomaly) {
  Build({.with_fault_injector = true});
  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kLinkDown,
                         .at_ns = 100 * kUs,
                         .duration_ns = 200 * kUs});
  injector->Arm(plan);
  sim.ScheduleAfter(400 * kUs, [] {});
  sim.Run();

  std::vector<obs::FlightRecord> marks = obs->flight()->marks().Records();
  ASSERT_EQ(marks.size(), 2u);
  u32 kind_bits = static_cast<u32>(fault::FaultKind::kLinkDown) << 1;
  EXPECT_EQ(marks[0].edge, obs::kFlightEdgeFaultWindow);
  EXPECT_EQ(marks[0].aux, kind_bits | 1u);  // open
  EXPECT_EQ(marks[0].t, 100 * kUs);
  EXPECT_EQ(marks[1].aux, kind_bits);  // close
  EXPECT_EQ(marks[1].t, 300 * kUs);
}

TEST_F(FlightRouterFixture, SteadyStateRecordingDoesNotAllocate) {
  Build();
  u64 buf = *vm->memory().AllocPages(1);
  int completed = 0, issued = 0, target = 0;
  std::function<void()> issue = [&] {
    if (issued >= target) return;
    issued++;
    nvme::Sqe sqe = (issued % 2) ? nvme::MakeWrite(1, issued % 64, 1, buf, 0)
                                 : nvme::MakeRead(1, issued % 64, 1, buf, 0);
    driver->Submit(0, sqe, [&](NvmeStatus, u32) {
      completed++;
      issue();
    });
  };
  target = 300;  // warmup: pools + rings reach their working set
  for (int d = 0; d < 8; d++) issue();
  sim.Run();
  mem::HotPathAllocs::BeginSteadyState();
  target = 900;
  for (int d = 0; d < 8; d++) issue();
  sim.Run();
  mem::HotPathAllocs::EndSteadyState();
  EXPECT_EQ(completed, 900);
  EXPECT_EQ(mem::HotPathAllocs::steady_state_allocs(), 0u);
  EXPECT_GT(obs->flight()->total_records(), 0u);
}

// --- Resubmit depth breach (pushdown classifier) -----------------------------

struct FlightResubmitFixture : FlightRouterFixture {
  u64 buf_pages = 0;
  nvme::PrpChain chain;

  void BuildPushdown() {
    Build({.classifier_asm = functions::PushdownLookupClassifierAsm()});
    mem::GuestMemory& gm = vm->memory();
    buf_pages = *gm.AllocPages(2);
    chain = *nvme::BuildPrps(gm, buf_pages, kv::kPushdownBlockBytes);
  }

  NvmeStatus BlockIo(u8 opcode, u64 lba, u64 key_arg, u8* data) {
    mem::GuestMemory& gm = vm->memory();
    if (opcode == nvme::kCmdWrite) {
      (void)nvme::PrpWrite(gm, chain.prp1, chain.prp2,
                           kv::kPushdownBlockBytes, data);
    }
    nvme::Sqe sqe;
    sqe.opcode = opcode;
    sqe.nsid = 1;
    sqe.prp1 = chain.prp1;
    sqe.prp2 = chain.prp2;
    sqe.cdw2 = static_cast<u32>(key_arg);
    sqe.cdw3 = static_cast<u32>(key_arg >> 32);
    sqe.set_slba(lba);
    sqe.set_nlb0(kv::kPushdownLbasPerBlock - 1);
    NvmeStatus status = 0xFFF;
    driver->Submit(0, sqe, [&](NvmeStatus st, u32) { status = st; });
    sim.Run();
    return status;
  }
};

TEST_F(FlightResubmitFixture, DepthBoundBreachTriggersDump) {
  BuildPushdown();
  // Self-referential "internal" block: every child pointer is its own
  // LBA, so the chain runs straight into max_resubmit_depth.
  std::vector<u8> block(kv::kPushdownBlockBytes, 0);
  u64 word0 = (static_cast<u64>(kv::kPushdownMagic) << 32) | 1;
  u64 nkeys = kv::kPushdownFanout;
  memcpy(block.data(), &word0, 8);
  memcpy(block.data() + 8, &nkeys, 8);
  for (u32 i = 0; i < kv::kPushdownFanout; i++) {
    u64 key = i;
    u64 child_lba = 0;
    memcpy(block.data() + kv::kPushdownHeaderBytes + i * 16, &key, 8);
    memcpy(block.data() + kv::kPushdownHeaderBytes + i * 16 + 8, &child_lba,
           8);
  }
  ASSERT_EQ(BlockIo(nvme::kCmdWrite, 0, 0, block.data()),
            nvme::kStatusSuccess);

  std::vector<u8> page(kv::kPushdownBlockBytes);
  NvmeStatus st = BlockIo(nvme::kCmdRead, 0, 5, page.data());
  EXPECT_NE(st, nvme::kStatusSuccess);

  EXPECT_EQ(triggers->fires(obs::FlightTrigger::kResubmitDepthBreach), 1u);
  ASSERT_GE(triggers->dumps_produced(), 1u);
  const obs::FlightTriggers::DumpInfo& info = triggers->dumps()[0];
  EXPECT_EQ(info.trigger, obs::FlightTrigger::kResubmitDepthBreach);
  EXPECT_NE(info.detail.find("depth="), std::string::npos);

  // The dump's ring carries the whole runaway chain: RESUBMIT edges up
  // to the bound, all on one request.
  obs::FlightDump dump;
  std::string error;
  ASSERT_TRUE(obs::FlightDump::Parse(info.serialized, &dump, &error)) << error;
  obs::FlightTimeline timeline(dump);
  ASSERT_TRUE(timeline.Validate(&error)) << error;
  const obs::FlightRequestView* v = timeline.Find(2);  // write was req 1
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->resubmits, 8u);  // exactly max_resubmit_depth
}

}  // namespace
}  // namespace nvmetro::core

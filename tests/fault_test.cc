// Failure-injection and boundary-condition sweep across every
// virtualization solution: injected device errors must propagate to the
// guest (never hang a request, never corrupt later I/O), capacity-edge
// I/O must round-trip, and deep bursts must drain completely.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace nvmetro::baselines {
namespace {

struct SolutionFaultTest : ::testing::TestWithParam<SolutionKind> {
  obs::Observability obs;  // declared first: outlives drive + bundle
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<SolutionBundle> bundle;

  void Build() {
    ssd::ControllerConfig drive = Testbed::DefaultDrive();
    drive.obs = &obs;
    tb = std::make_unique<Testbed>(drive);
    SolutionParams params;
    params.obs = &obs;
    bundle = SolutionBundle::Create(tb.get(), GetParam(), params);
    ASSERT_NE(bundle, nullptr);
  }

  Status RunOp(StorageSolution* sol, StorageSolution::Op op, u64 off,
               void* data, u64 len) {
    Status result = Internal("pending");
    sol->Submit(0, op, off, len, data, [&](Status st) { result = st; });
    tb->sim.Run();
    return result;
  }

  /// The NVMetro family routes guest I/O through the VirtualController;
  /// the other stacks never touch router metrics.
  bool UsesRouter() const {
    switch (GetParam()) {
      case SolutionKind::kNvmetro:
      case SolutionKind::kMdev:
      case SolutionKind::kNvmetroEncryption:
      case SolutionKind::kNvmetroSgx:
      case SolutionKind::kNvmetroReplication:
        return true;
      default:
        return false;
    }
  }

  /// After a drained run with injected device errors: the faults must be
  /// visible in the drive counters for every stack, and for router-based
  /// stacks also as per-path error counts — with every request's trace
  /// still ending in a guest-visible completion (VCQ post + IRQ).
  void CheckObsAfterErrors() {
    const obs::MetricsRegistry& m = obs.metrics();
    EXPECT_GE(m.CounterValue("ssd.injected"), 1u);
    EXPECT_GE(m.CounterValue("ssd.errors"), 1u);
    if (!UsesRouter()) {
      EXPECT_EQ(obs.trace().requests_opened(), 0u);
      return;
    }
    u64 path_errors = m.CounterValue("router.fast.errors") +
                      m.CounterValue("router.notify.errors") +
                      m.CounterValue("router.kernel.errors");
    EXPECT_GE(path_errors, 1u) << "device faults invisible in path counters";
    EXPECT_EQ(m.CounterValue("router.requests"),
              m.CounterValue("router.completed") +
                  m.CounterValue("router.failed"));
    EXPECT_EQ(obs.trace().open_requests(), 0u);
    const obs::TraceRecorder& tr = obs.trace();
    for (u64 id = 1; id <= tr.requests_opened(); id++) {
      auto evs = tr.EventsFor(id);
      ASSERT_FALSE(evs.empty()) << "req " << id << " left no trace";
      EXPECT_EQ(evs.back().kind, obs::SpanKind::kIrqInject)
          << "req " << id << " did not end in a completion span";
    }
  }
};

TEST_P(SolutionFaultTest, InjectedErrorsPropagateThenRecover) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  Rng rng(21);
  const u64 bs = 4096;

  // Seed 32 blocks so reads have data behind them.
  std::vector<u8> seed(bs);
  for (int i = 0; i < 32; i++) {
    rng.Fill(seed.data(), seed.size());
    ASSERT_TRUE(
        RunOp(sol, StorageSolution::Op::kWrite, i * bs, seed.data(), bs)
            .ok())
        << sol->name() << " seed " << i;
  }

  // The next 16 data commands reaching the local drive fail. Depending
  // on the stack one guest op may map to several device commands (QEMU
  // readahead, dm-mirror legs), so issue well more guest ops than
  // injections: every op must complete, at least one must surface the
  // error, and the errors must eventually drain.
  tb->phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead),
      16);
  int ok = 0, failed = 0, done = 0;
  const int kOps = 48;
  for (int i = 0; i < kOps; i++) {
    sol->Submit(i % 4, StorageSolution::Op::kRead,
                static_cast<u64>(i % 32) * bs, bs, nullptr, [&](Status st) {
                  done++;
                  if (st.ok()) {
                    ok++;
                  } else {
                    failed++;
                  }
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kOps) << sol->name() << ": a request hung";
  EXPECT_EQ(ok + failed, kOps) << sol->name();
  if (GetParam() == SolutionKind::kDmMirror) {
    // dm-raid1 semantics: a failed leg read is retried on the other
    // mirror, so single-leg media errors are masked from the guest.
    EXPECT_EQ(failed, 0) << sol->name() << ": failover retry broken";
  } else {
    EXPECT_GE(failed, 1) << sol->name() << ": device errors were swallowed";
  }
  EXPECT_GE(ok, 1) << sol->name() << ": errors poisoned unrelated I/O";
  CheckObsAfterErrors();

  // With the injections consumed, a fresh region must round-trip clean
  // data — no stale error state, no cache poisoned by the failures.
  std::vector<u8> in(bs), out(bs, 0);
  rng.Fill(in.data(), in.size());
  const u64 fresh = 64 * bs;
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kWrite, fresh, in.data(), bs).ok())
      << sol->name();
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kRead, fresh, out.data(), bs).ok())
      << sol->name();
  EXPECT_EQ(in, out) << sol->name() << ": post-error data corrupted";
}

TEST_P(SolutionFaultTest, WriteErrorsAlsoPropagate) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  tb->phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScWriteFault), 8);
  int done = 0, failed = 0;
  for (int i = 0; i < 24; i++) {
    sol->Submit(0, StorageSolution::Op::kWrite, i * 4096, 4096, nullptr,
                [&](Status st) {
                  done++;
                  if (!st.ok()) failed++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, 24) << sol->name();
  EXPECT_GE(failed, 1) << sol->name();
  CheckObsAfterErrors();
}

TEST_P(SolutionFaultTest, LastBlockRoundTrips) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  const u64 bs = 4096;
  ASSERT_GE(sol->capacity_bytes(), bs) << sol->name();
  const u64 last = sol->capacity_bytes() - bs;
  Rng rng(33);
  std::vector<u8> in(bs), out(bs, 0);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kWrite, last, in.data(), bs).ok())
      << sol->name() << " capacity " << sol->capacity_bytes();
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kRead, last, out.data(), bs).ok())
      << sol->name();
  EXPECT_EQ(in, out) << sol->name() << ": capacity-edge data corrupted";
}

TEST_P(SolutionFaultTest, DeepMixedBurstDrains) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  const int kOps = 256;
  int done = 0;
  SimTime start = tb->sim.now();
  for (int i = 0; i < kOps; i++) {
    StorageSolution::Op op = (i % 7 == 6) ? StorageSolution::Op::kFlush
                             : (i % 2)    ? StorageSolution::Op::kRead
                                          : StorageSolution::Op::kWrite;
    u64 len = (op == StorageSolution::Op::kFlush) ? 0 : 4096;
    sol->Submit(i % 4, op, static_cast<u64>(i % 64) * 4096, len, nullptr,
                [&](Status st) {
                  EXPECT_TRUE(st.ok()) << sol->name();
                  done++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kOps) << sol->name();
  EXPECT_GT(tb->sim.now(), start) << sol->name() << ": no time advanced";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SolutionFaultTest,
    ::testing::Values(SolutionKind::kNvmetro, SolutionKind::kMdev,
                      SolutionKind::kPassthrough, SolutionKind::kVhostScsi,
                      SolutionKind::kQemu, SolutionKind::kSpdk,
                      SolutionKind::kNvmetroEncryption,
                      SolutionKind::kNvmetroSgx, SolutionKind::kDmCrypt,
                      SolutionKind::kNvmetroReplication,
                      SolutionKind::kDmMirror),
    [](const ::testing::TestParamInfo<SolutionKind>& pinfo) {
      std::string name = SolutionKindName(pinfo.param);
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- Injected-fault recovery scenarios ---------------------------------------------
//
// Deterministic FaultPlans against full solution stacks: every scenario
// must satisfy the bookkeeping invariants of the recovery machinery —
// per path, sends == completions + aborts + timeouts; every request
// reaches a guest-visible outcome; no trace span stays open; the
// replicator's dirty-region log is empty once resync finishes.

struct FaultScenarioTest : ::testing::Test {
  obs::Observability obs;  // declared first: outlives drive + bundle
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<SolutionBundle> bundle;

  void Build(SolutionKind kind, SolutionParams params = {}) {
    ssd::ControllerConfig drive = Testbed::DefaultDrive();
    drive.obs = &obs;
    tb = std::make_unique<Testbed>(drive);
    injector = std::make_unique<fault::FaultInjector>(&tb->sim, &obs);
    params.obs = &obs;
    params.fault = injector.get();
    bundle = SolutionBundle::Create(tb.get(), kind, params);
    ASSERT_NE(bundle, nullptr);
  }

  void CheckRouterInvariants() {
    const obs::MetricsRegistry& m = obs.metrics();
    EXPECT_EQ(m.CounterValue("router.requests"),
              m.CounterValue("router.completed") +
                  m.CounterValue("router.failed"))
        << "a request vanished without completing or failing";
    for (const char* path : {"fast", "notify", "kernel"}) {
      std::string base = std::string("router.") + path;
      EXPECT_EQ(m.CounterValue(base + ".sends"),
                m.CounterValue(base + ".completions") +
                    m.CounterValue(base + ".aborts") +
                    m.CounterValue(base + ".timeouts"))
          << base << " send/completion imbalance";
    }
    EXPECT_EQ(obs.trace().open_requests(), 0u)
        << "trace spans leaked: a request never reached its VCQ";
  }
};

TEST_F(FaultScenarioTest, StalledCommandsTimeOutInsteadOfHanging) {
  SolutionParams params;
  params.router_costs.request_timeout_ns = 2 * kMs;
  Build(SolutionKind::kNvmetro, params);
  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kCommandStall,
                         .count = 4});
  injector->Arm(plan);

  StorageSolution* sol = bundle->vm_solution(0);
  int ok = 0, failed = 0;
  for (int i = 0; i < 16; i++) {
    sol->Submit(i % 4, StorageSolution::Op::kRead,
                static_cast<u64>(i) * 4096, 4096, nullptr, [&](Status st) {
                  if (st.ok()) {
                    ok++;
                  } else {
                    failed++;
                  }
                });
  }
  tb->sim.Run();
  // The four swallowed commands surface as guest-visible timeouts; the
  // rest are untouched.
  EXPECT_EQ(injector->stalls_injected(), 4u);
  EXPECT_EQ(ok, 12);
  EXPECT_EQ(failed, 4);
  EXPECT_EQ(bundle->controller(0)->requests_timed_out(), 4u);
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.timeouts"), 4u);
  EXPECT_EQ(m.CounterValue("router.fast.timeouts"), 4u);
  CheckRouterInvariants();
}

TEST_F(FaultScenarioTest, TransientErrorsAreRetriedToSuccess) {
  SolutionParams params;
  params.router_costs.max_retries = 8;
  Build(SolutionKind::kNvmetro, params);
  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kDelayedError,
                         .count = 6,
                         .status = nvme::MakeStatus(
                             nvme::kSctGeneric, nvme::kScNamespaceNotReady),
                         .delay_ns = 20 * kUs});
  injector->Arm(plan);

  StorageSolution* sol = bundle->vm_solution(0);
  int ok = 0, failed = 0;
  for (int i = 0; i < 16; i++) {
    sol->Submit(i % 4, StorageSolution::Op::kRead,
                static_cast<u64>(i) * 4096, 4096, nullptr, [&](Status st) {
                  if (st.ok()) {
                    ok++;
                  } else {
                    failed++;
                  }
                });
  }
  tb->sim.Run();
  // Every transient error was absorbed by a backoff retry: the guest saw
  // sixteen clean completions.
  EXPECT_EQ(injector->errors_injected(), 6u);
  EXPECT_EQ(ok, 16);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(bundle->controller(0)->leg_retries(), 6u);
  EXPECT_EQ(obs.metrics().CounterValue("router.retries"), 6u);
  EXPECT_EQ(obs.metrics().CounterValue("router.timeouts"), 0u);
  CheckRouterInvariants();
}

TEST_F(FaultScenarioTest, LateCompletionAfterSlotRecycleIsDropped) {
  // Routing-slab reuse hazard regression: a delayed-error CQE that lands
  // AFTER its request's deadline abort must not resolve into the slot's
  // next occupant. The deadline frees the routing slot and orphans its
  // host cids; a second wave then recycles both the slab slot and the
  // cid-table slot, so the late CQE's cid handle carries a stale
  // generation and must be dropped on the floor.
  SolutionParams params;
  params.router_costs.request_timeout_ns = 500 * kUs;
  params.router_costs.max_retries = 2;
  Build(SolutionKind::kNvmetro, params);
  fault::FaultPlan plan;
  // Error CQEs arrive ~5 ms in — an order of magnitude after the 500 us
  // deadline has aborted the request and recycled its slot.
  plan.faults.push_back({.kind = fault::FaultKind::kDelayedError,
                         .count = 8,
                         .status = nvme::MakeStatus(
                             nvme::kSctGeneric, nvme::kScNamespaceNotReady),
                         .delay_ns = 5 * kMs});
  injector->Arm(plan);

  StorageSolution* sol = bundle->vm_solution(0);
  int first_ok = 0, first_failed = 0;
  for (int i = 0; i < 8; i++) {
    sol->Submit(i % 4, StorageSolution::Op::kRead,
                static_cast<u64>(i) * 4096, 4096, nullptr, [&](Status st) {
                  if (st.ok()) {
                    first_ok++;
                  } else {
                    first_failed++;
                  }
                });
  }
  // Second wave at 1 ms: the deadline has fired, the first wave's
  // slots and cids are free, and these requests recycle them while the
  // stale CQEs are still in flight.
  int second_ok = 0, second_failed = 0;
  tb->sim.ScheduleAfter(1 * kMs, [&] {
    for (int i = 0; i < 8; i++) {
      sol->Submit(i % 4, StorageSolution::Op::kRead,
                  static_cast<u64>(8 + i) * 4096, 4096, nullptr,
                  [&](Status st) {
                    if (st.ok()) {
                      second_ok++;
                    } else {
                      second_failed++;
                    }
                  });
    }
  });
  tb->sim.Run();

  // First wave: all eight time out (their only CQE is still ~4.5 ms away
  // when the deadline fires).
  EXPECT_EQ(first_ok, 0);
  EXPECT_EQ(first_failed, 8);
  EXPECT_EQ(bundle->controller(0)->requests_timed_out(), 8u);
  // Second wave: all eight complete cleanly — the stale CQEs must not
  // have completed (or failed) any recycled occupant.
  EXPECT_EQ(second_ok, 8);
  EXPECT_EQ(second_failed, 0);
  // Every late CQE was rejected by the cid generation check.
  EXPECT_EQ(bundle->controller(0)->stale_cid_drops(), 8u);
  // No retry fired: the error CQEs never reached a live request.
  EXPECT_EQ(bundle->controller(0)->leg_retries(), 0u);
  CheckRouterInvariants();
}

TEST_F(FaultScenarioTest, WedgedUifFailsOverToKernelPath) {
  SolutionParams params;
  params.router_costs.uif_liveness_timeout_ns = 200 * kUs;
  params.router_costs.uif_failover_to_kernel = true;
  Build(SolutionKind::kNvmetroReplication, params);
  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kUifWedge,
                         .at_ns = 0,
                         .duration_ns = 10 * kMs});
  injector->Arm(plan);

  StorageSolution* sol = bundle->vm_solution(0);
  int ok = 0, failed = 0;
  for (int i = 0; i < 8; i++) {
    sol->Submit(i % 4, StorageSolution::Op::kWrite,
                static_cast<u64>(i) * 4096, 4096, nullptr, [&](Status st) {
                  if (st.ok()) {
                    ok++;
                  } else {
                    failed++;
                  }
                });
  }
  tb->sim.Run();
  // The wedged UIF never answered; the liveness watchdog declared it
  // dead, dropped the stuck notify legs and re-routed them to the kernel
  // path — the guest never noticed.
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(failed, 0);
  EXPECT_TRUE(bundle->controller(0)->uif_dead());
  EXPECT_EQ(bundle->controller(0)->uif_failovers(), 1u);
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("uif.failovers"), 1u);
  EXPECT_EQ(m.CounterValue("router.notify.timeouts"), 8u);

  // With the UIF marked dead, later writes skip the notify path entirely
  // and go straight to the kernel device.
  u64 kernel_before = m.CounterValue("router.kernel.sends");
  for (int i = 0; i < 4; i++) {
    sol->Submit(0, StorageSolution::Op::kWrite,
                static_cast<u64>(32 + i) * 4096, 4096, nullptr,
                [&](Status st) {
                  EXPECT_TRUE(st.ok());
                  ok++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(ok, 12);
  EXPECT_EQ(m.CounterValue("router.kernel.sends"), kernel_before + 4);
  EXPECT_EQ(m.CounterValue("router.notify.sends"), 8u)
      << "a dead UIF still received requests";
  CheckRouterInvariants();
}

TEST_F(FaultScenarioTest, ReplicaOutageDegradesThenResyncs) {
  Build(SolutionKind::kNvmetroReplication);
  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kLinkDown,
                         .at_ns = 200 * kUs,
                         .duration_ns = 2 * kMs});
  injector->Arm(plan);

  StorageSolution* sol = bundle->vm_solution(0);
  functions::ReplicatorUif* repl = bundle->replicator(0);
  ASSERT_NE(repl, nullptr);

  // One distinct-pattern write every 100 us: before, during and after
  // the outage window.
  const int kWrites = 24;
  const u64 bs = 4096;
  std::vector<std::vector<u8>> pats(kWrites);
  Rng rng(55);
  int ok = 0;
  for (int i = 0; i < kWrites; i++) {
    pats[i].resize(bs);
    rng.Fill(pats[i].data(), bs);
    tb->sim.ScheduleAfter(static_cast<SimTime>(i) * 100 * kUs, [&, i] {
      sol->Submit(i % 4, StorageSolution::Op::kWrite, i * bs, bs,
                  pats[i].data(), [&](Status st) {
                    EXPECT_TRUE(st.ok()) << "write " << i;
                    ok++;
                  });
    });
  }
  tb->sim.Run();
  // Every write was acked despite the dead replica...
  EXPECT_EQ(ok, kWrites);
  EXPECT_GE(repl->writes_failed(), 1u);
  EXPECT_GE(repl->degraded_writes(), 1u);
  // ...and after the link healed, resync drained the dirty-region log
  // and left the mirror clean.
  EXPECT_FALSE(repl->degraded());
  EXPECT_FALSE(repl->resyncing());
  EXPECT_EQ(repl->dirty_regions(), 0u);
  EXPECT_EQ(repl->dirty_sectors(), 0u);
  EXPECT_GE(repl->resynced_sectors(), 8u);
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_GE(m.CounterValue("repl.degraded_writes"), 1u);
  EXPECT_GE(m.CounterValue("repl.resynced_lbas"), 8u);
  EXPECT_GE(m.CounterValue("repl.writes_failed"), 1u);
  // The secondary holds every pattern — including those written while it
  // was unreachable.
  for (int i = 0; i < kWrites; i++) {
    EXPECT_TRUE(bundle->secondary_drive(0)->store().Matches(
        i * bs, pats[i].data(), bs))
        << "secondary lost write " << i;
  }
  CheckRouterInvariants();
}

TEST(FaultSweep, RandomPlansNeverHangAnyStack) {
  const SolutionKind kKinds[] = {
      SolutionKind::kNvmetro,       SolutionKind::kMdev,
      SolutionKind::kPassthrough,   SolutionKind::kVhostScsi,
      SolutionKind::kQemu,          SolutionKind::kSpdk,
      SolutionKind::kNvmetroEncryption, SolutionKind::kNvmetroSgx,
      SolutionKind::kDmCrypt,       SolutionKind::kNvmetroReplication,
      SolutionKind::kDmMirror};
  for (SolutionKind kind : kKinds) {
    bool router = kind == SolutionKind::kNvmetro ||
                  kind == SolutionKind::kMdev ||
                  kind == SolutionKind::kNvmetroEncryption ||
                  kind == SolutionKind::kNvmetroSgx ||
                  kind == SolutionKind::kNvmetroReplication;
    for (u64 seed : {11ull, 22ull, 33ull}) {
      obs::Observability obs;
      ssd::ControllerConfig drive = Testbed::DefaultDrive();
      drive.obs = &obs;
      Testbed tb(drive);
      fault::FaultInjector injector(&tb.sim, &obs);
      SolutionParams params;
      params.obs = &obs;
      params.fault = &injector;
      fault::FaultCaps caps;
      if (router) {
        params.router_costs.request_timeout_ns = 5 * kMs;
        params.router_costs.max_retries = 3;
        params.router_costs.uif_liveness_timeout_ns = 300 * kUs;
        // Re-routing around a dead UIF is only sound when the function is
        // not a data transformation (encryption would be bypassed).
        params.router_costs.uif_failover_to_kernel =
            kind == SolutionKind::kNvmetroReplication;
      } else {
        caps.stalls = false;  // no host timeout machinery: a stall hangs
        caps.wedge = false;   // no UIF process to wedge
      }
      auto bundle = SolutionBundle::Create(&tb, kind, params);
      ASSERT_NE(bundle, nullptr);
      fault::FaultPlan plan = fault::FaultPlan::Random(seed, caps);
      injector.Arm(plan);
      SCOPED_TRACE(std::string(SolutionKindName(kind)) + " " +
                   plan.ToString());

      StorageSolution* sol = bundle->vm_solution(0);
      const int kOps = 64;
      int done = 0;
      // Pace the ops so the load overlaps the plan's fault windows
      // (which land inside the first ~8 ms).
      for (int i = 0; i < kOps; i++) {
        tb.sim.ScheduleAfter(static_cast<SimTime>(i) * 150 * kUs, [&, i] {
          StorageSolution::Op op = (i % 7 == 6) ? StorageSolution::Op::kFlush
                                   : (i % 2)   ? StorageSolution::Op::kRead
                                               : StorageSolution::Op::kWrite;
          u64 len = (op == StorageSolution::Op::kFlush) ? 0 : 4096;
          sol->Submit(i % 4, op, static_cast<u64>(i % 32) * 4096, len,
                      nullptr, [&](Status) { done++; });
        });
      }
      tb.sim.Run();
      // Faults may fail individual ops, but every op must reach a
      // guest-visible outcome and the books must balance.
      EXPECT_EQ(done, kOps) << "a request hung under " << plan.ToString();
      const obs::MetricsRegistry& m = obs.metrics();
      if (router) {
        EXPECT_EQ(m.CounterValue("router.requests"),
                  m.CounterValue("router.completed") +
                      m.CounterValue("router.failed"));
        for (const char* path : {"fast", "notify", "kernel"}) {
          std::string base = std::string("router.") + path;
          EXPECT_EQ(m.CounterValue(base + ".sends"),
                    m.CounterValue(base + ".completions") +
                        m.CounterValue(base + ".aborts") +
                        m.CounterValue(base + ".timeouts"))
              << base << " imbalance";
        }
      }
      EXPECT_EQ(obs.trace().open_requests(), 0u);
    }
  }
}

}  // namespace
}  // namespace nvmetro::baselines

// Failure-injection and boundary-condition sweep across every
// virtualization solution: injected device errors must propagate to the
// guest (never hang a request, never corrupt later I/O), capacity-edge
// I/O must round-trip, and deep bursts must drain completely.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"
#include "obs/obs.h"

namespace nvmetro::baselines {
namespace {

struct SolutionFaultTest : ::testing::TestWithParam<SolutionKind> {
  obs::Observability obs;  // declared first: outlives drive + bundle
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<SolutionBundle> bundle;

  void Build() {
    ssd::ControllerConfig drive = Testbed::DefaultDrive();
    drive.obs = &obs;
    tb = std::make_unique<Testbed>(drive);
    SolutionParams params;
    params.obs = &obs;
    bundle = SolutionBundle::Create(tb.get(), GetParam(), params);
    ASSERT_NE(bundle, nullptr);
  }

  Status RunOp(StorageSolution* sol, StorageSolution::Op op, u64 off,
               void* data, u64 len) {
    Status result = Internal("pending");
    sol->Submit(0, op, off, len, data, [&](Status st) { result = st; });
    tb->sim.Run();
    return result;
  }

  /// The NVMetro family routes guest I/O through the VirtualController;
  /// the other stacks never touch router metrics.
  bool UsesRouter() const {
    switch (GetParam()) {
      case SolutionKind::kNvmetro:
      case SolutionKind::kMdev:
      case SolutionKind::kNvmetroEncryption:
      case SolutionKind::kNvmetroSgx:
      case SolutionKind::kNvmetroReplication:
        return true;
      default:
        return false;
    }
  }

  /// After a drained run with injected device errors: the faults must be
  /// visible in the drive counters for every stack, and for router-based
  /// stacks also as per-path error counts — with every request's trace
  /// still ending in a guest-visible completion (VCQ post + IRQ).
  void CheckObsAfterErrors() {
    const obs::MetricsRegistry& m = obs.metrics();
    EXPECT_GE(m.CounterValue("ssd.injected"), 1u);
    EXPECT_GE(m.CounterValue("ssd.errors"), 1u);
    if (!UsesRouter()) {
      EXPECT_EQ(obs.trace().requests_opened(), 0u);
      return;
    }
    u64 path_errors = m.CounterValue("router.fast.errors") +
                      m.CounterValue("router.notify.errors") +
                      m.CounterValue("router.kernel.errors");
    EXPECT_GE(path_errors, 1u) << "device faults invisible in path counters";
    EXPECT_EQ(m.CounterValue("router.requests"),
              m.CounterValue("router.completed") +
                  m.CounterValue("router.failed"));
    EXPECT_EQ(obs.trace().open_requests(), 0u);
    const obs::TraceRecorder& tr = obs.trace();
    for (u64 id = 1; id <= tr.requests_opened(); id++) {
      auto evs = tr.EventsFor(id);
      ASSERT_FALSE(evs.empty()) << "req " << id << " left no trace";
      EXPECT_EQ(evs.back().kind, obs::SpanKind::kIrqInject)
          << "req " << id << " did not end in a completion span";
    }
  }
};

TEST_P(SolutionFaultTest, InjectedErrorsPropagateThenRecover) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  Rng rng(21);
  const u64 bs = 4096;

  // Seed 32 blocks so reads have data behind them.
  std::vector<u8> seed(bs);
  for (int i = 0; i < 32; i++) {
    rng.Fill(seed.data(), seed.size());
    ASSERT_TRUE(
        RunOp(sol, StorageSolution::Op::kWrite, i * bs, seed.data(), bs)
            .ok())
        << sol->name() << " seed " << i;
  }

  // The next 16 data commands reaching the local drive fail. Depending
  // on the stack one guest op may map to several device commands (QEMU
  // readahead, dm-mirror legs), so issue well more guest ops than
  // injections: every op must complete, at least one must surface the
  // error, and the errors must eventually drain.
  tb->phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead),
      16);
  int ok = 0, failed = 0, done = 0;
  const int kOps = 48;
  for (int i = 0; i < kOps; i++) {
    sol->Submit(i % 4, StorageSolution::Op::kRead,
                static_cast<u64>(i % 32) * bs, bs, nullptr, [&](Status st) {
                  done++;
                  if (st.ok()) {
                    ok++;
                  } else {
                    failed++;
                  }
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kOps) << sol->name() << ": a request hung";
  EXPECT_EQ(ok + failed, kOps) << sol->name();
  if (GetParam() == SolutionKind::kDmMirror) {
    // dm-raid1 semantics: a failed leg read is retried on the other
    // mirror, so single-leg media errors are masked from the guest.
    EXPECT_EQ(failed, 0) << sol->name() << ": failover retry broken";
  } else {
    EXPECT_GE(failed, 1) << sol->name() << ": device errors were swallowed";
  }
  EXPECT_GE(ok, 1) << sol->name() << ": errors poisoned unrelated I/O";
  CheckObsAfterErrors();

  // With the injections consumed, a fresh region must round-trip clean
  // data — no stale error state, no cache poisoned by the failures.
  std::vector<u8> in(bs), out(bs, 0);
  rng.Fill(in.data(), in.size());
  const u64 fresh = 64 * bs;
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kWrite, fresh, in.data(), bs).ok())
      << sol->name();
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kRead, fresh, out.data(), bs).ok())
      << sol->name();
  EXPECT_EQ(in, out) << sol->name() << ": post-error data corrupted";
}

TEST_P(SolutionFaultTest, WriteErrorsAlsoPropagate) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  tb->phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScWriteFault), 8);
  int done = 0, failed = 0;
  for (int i = 0; i < 24; i++) {
    sol->Submit(0, StorageSolution::Op::kWrite, i * 4096, 4096, nullptr,
                [&](Status st) {
                  done++;
                  if (!st.ok()) failed++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, 24) << sol->name();
  EXPECT_GE(failed, 1) << sol->name();
  CheckObsAfterErrors();
}

TEST_P(SolutionFaultTest, LastBlockRoundTrips) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  const u64 bs = 4096;
  ASSERT_GE(sol->capacity_bytes(), bs) << sol->name();
  const u64 last = sol->capacity_bytes() - bs;
  Rng rng(33);
  std::vector<u8> in(bs), out(bs, 0);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kWrite, last, in.data(), bs).ok())
      << sol->name() << " capacity " << sol->capacity_bytes();
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kRead, last, out.data(), bs).ok())
      << sol->name();
  EXPECT_EQ(in, out) << sol->name() << ": capacity-edge data corrupted";
}

TEST_P(SolutionFaultTest, DeepMixedBurstDrains) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  const int kOps = 256;
  int done = 0;
  SimTime start = tb->sim.now();
  for (int i = 0; i < kOps; i++) {
    StorageSolution::Op op = (i % 7 == 6) ? StorageSolution::Op::kFlush
                             : (i % 2)    ? StorageSolution::Op::kRead
                                          : StorageSolution::Op::kWrite;
    u64 len = (op == StorageSolution::Op::kFlush) ? 0 : 4096;
    sol->Submit(i % 4, op, static_cast<u64>(i % 64) * 4096, len, nullptr,
                [&](Status st) {
                  EXPECT_TRUE(st.ok()) << sol->name();
                  done++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kOps) << sol->name();
  EXPECT_GT(tb->sim.now(), start) << sol->name() << ": no time advanced";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SolutionFaultTest,
    ::testing::Values(SolutionKind::kNvmetro, SolutionKind::kMdev,
                      SolutionKind::kPassthrough, SolutionKind::kVhostScsi,
                      SolutionKind::kQemu, SolutionKind::kSpdk,
                      SolutionKind::kNvmetroEncryption,
                      SolutionKind::kNvmetroSgx, SolutionKind::kDmCrypt,
                      SolutionKind::kNvmetroReplication,
                      SolutionKind::kDmMirror),
    [](const ::testing::TestParamInfo<SolutionKind>& pinfo) {
      std::string name = SolutionKindName(pinfo.param);
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace nvmetro::baselines

// Failure-injection and boundary-condition sweep across every
// virtualization solution: injected device errors must propagate to the
// guest (never hang a request, never corrupt later I/O), capacity-edge
// I/O must round-trip, and deep bursts must drain completely.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"

namespace nvmetro::baselines {
namespace {

struct SolutionFaultTest : ::testing::TestWithParam<SolutionKind> {
  std::unique_ptr<Testbed> tb = std::make_unique<Testbed>();
  std::unique_ptr<SolutionBundle> bundle;

  void Build() {
    bundle = SolutionBundle::Create(tb.get(), GetParam(), {});
    ASSERT_NE(bundle, nullptr);
  }

  Status RunOp(StorageSolution* sol, StorageSolution::Op op, u64 off,
               void* data, u64 len) {
    Status result = Internal("pending");
    sol->Submit(0, op, off, len, data, [&](Status st) { result = st; });
    tb->sim.Run();
    return result;
  }
};

TEST_P(SolutionFaultTest, InjectedErrorsPropagateThenRecover) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  Rng rng(21);
  const u64 bs = 4096;

  // Seed 32 blocks so reads have data behind them.
  std::vector<u8> seed(bs);
  for (int i = 0; i < 32; i++) {
    rng.Fill(seed.data(), seed.size());
    ASSERT_TRUE(
        RunOp(sol, StorageSolution::Op::kWrite, i * bs, seed.data(), bs)
            .ok())
        << sol->name() << " seed " << i;
  }

  // The next 16 data commands reaching the local drive fail. Depending
  // on the stack one guest op may map to several device commands (QEMU
  // readahead, dm-mirror legs), so issue well more guest ops than
  // injections: every op must complete, at least one must surface the
  // error, and the errors must eventually drain.
  tb->phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead),
      16);
  int ok = 0, failed = 0, done = 0;
  const int kOps = 48;
  for (int i = 0; i < kOps; i++) {
    sol->Submit(i % 4, StorageSolution::Op::kRead,
                static_cast<u64>(i % 32) * bs, bs, nullptr, [&](Status st) {
                  done++;
                  if (st.ok()) {
                    ok++;
                  } else {
                    failed++;
                  }
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kOps) << sol->name() << ": a request hung";
  EXPECT_EQ(ok + failed, kOps) << sol->name();
  if (GetParam() == SolutionKind::kDmMirror) {
    // dm-raid1 semantics: a failed leg read is retried on the other
    // mirror, so single-leg media errors are masked from the guest.
    EXPECT_EQ(failed, 0) << sol->name() << ": failover retry broken";
  } else {
    EXPECT_GE(failed, 1) << sol->name() << ": device errors were swallowed";
  }
  EXPECT_GE(ok, 1) << sol->name() << ": errors poisoned unrelated I/O";

  // With the injections consumed, a fresh region must round-trip clean
  // data — no stale error state, no cache poisoned by the failures.
  std::vector<u8> in(bs), out(bs, 0);
  rng.Fill(in.data(), in.size());
  const u64 fresh = 64 * bs;
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kWrite, fresh, in.data(), bs).ok())
      << sol->name();
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kRead, fresh, out.data(), bs).ok())
      << sol->name();
  EXPECT_EQ(in, out) << sol->name() << ": post-error data corrupted";
}

TEST_P(SolutionFaultTest, WriteErrorsAlsoPropagate) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  tb->phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScWriteFault), 8);
  int done = 0, failed = 0;
  for (int i = 0; i < 24; i++) {
    sol->Submit(0, StorageSolution::Op::kWrite, i * 4096, 4096, nullptr,
                [&](Status st) {
                  done++;
                  if (!st.ok()) failed++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, 24) << sol->name();
  EXPECT_GE(failed, 1) << sol->name();
}

TEST_P(SolutionFaultTest, LastBlockRoundTrips) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  const u64 bs = 4096;
  ASSERT_GE(sol->capacity_bytes(), bs) << sol->name();
  const u64 last = sol->capacity_bytes() - bs;
  Rng rng(33);
  std::vector<u8> in(bs), out(bs, 0);
  rng.Fill(in.data(), in.size());
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kWrite, last, in.data(), bs).ok())
      << sol->name() << " capacity " << sol->capacity_bytes();
  ASSERT_TRUE(
      RunOp(sol, StorageSolution::Op::kRead, last, out.data(), bs).ok())
      << sol->name();
  EXPECT_EQ(in, out) << sol->name() << ": capacity-edge data corrupted";
}

TEST_P(SolutionFaultTest, DeepMixedBurstDrains) {
  Build();
  StorageSolution* sol = bundle->vm_solution(0);
  const int kOps = 256;
  int done = 0;
  SimTime start = tb->sim.now();
  for (int i = 0; i < kOps; i++) {
    StorageSolution::Op op = (i % 7 == 6) ? StorageSolution::Op::kFlush
                             : (i % 2)    ? StorageSolution::Op::kRead
                                          : StorageSolution::Op::kWrite;
    u64 len = (op == StorageSolution::Op::kFlush) ? 0 : 4096;
    sol->Submit(i % 4, op, static_cast<u64>(i % 64) * 4096, len, nullptr,
                [&](Status st) {
                  EXPECT_TRUE(st.ok()) << sol->name();
                  done++;
                });
  }
  tb->sim.Run();
  EXPECT_EQ(done, kOps) << sol->name();
  EXPECT_GT(tb->sim.now(), start) << sol->name() << ": no time advanced";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SolutionFaultTest,
    ::testing::Values(SolutionKind::kNvmetro, SolutionKind::kMdev,
                      SolutionKind::kPassthrough, SolutionKind::kVhostScsi,
                      SolutionKind::kQemu, SolutionKind::kSpdk,
                      SolutionKind::kNvmetroEncryption,
                      SolutionKind::kNvmetroSgx, SolutionKind::kDmCrypt,
                      SolutionKind::kNvmetroReplication,
                      SolutionKind::kDmMirror),
    [](const ::testing::TestParamInfo<SolutionKind>& pinfo) {
      std::string name = SolutionKindName(pinfo.param);
      for (auto& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace nvmetro::baselines

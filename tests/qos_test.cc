// Multi-tenant QoS tests (DESIGN.md §12).
//
// Three layers, mirroring how the scheduler is wired into the stack:
//
//  1. Property-style scheduler tests: the token ledger is exact — every
//     token granted came out of a reservation or the leftover pool, the
//     fractional-carry refill loses nothing under irregular tick
//     spacing, and a bucket can never go negative or exceed its depth.
//  2. Router-equivalence tests: with QoS detached the router is
//     bit-identical to the QoS-less router — same golden traces on all
//     five routing paths, same simulated end time, same router CPU. An
//     attached-but-uncontended scheduler keeps the trace shape (the
//     QOS_ADMIT span is only stamped for requests that actually parked).
//  3. Isolation tests: a misbehaving best-effort tenant ramping offered
//     load cannot move a latency-critical tenant's p999 beyond a pinned
//     tolerance, the best-effort tenant absorbs every shed, and the
//     invariants survive the fault matrix (command stalls + SQ-full
//     bursts) and a 1000-tenant scale run with a frozen metric registry.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/notify.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "fault/fault.h"
#include "functions/classifiers.h"
#include "functions/replicator_uif.h"
#include "kblock/devices.h"
#include "mem/address_space.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "qos/qos.h"
#include "ssd/controller.h"
#include "uif/framework.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::qos {
namespace {

using Action = AdmitResult::Action;

// --- Scheduler properties ----------------------------------------------------

TEST(QosSchedulerTest, RegistrationValidation) {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 100'000;
  QosScheduler s(cfg);
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1,
                                .cls = TenantClass::kLatencyCritical,
                                .reserved_tokens_per_sec = 60'000})
                  .ok());
  EXPECT_EQ(s.leftover_rate(), 40'000u);
  EXPECT_TRUE(s.HasTenant(1));

  // Duplicate id.
  EXPECT_EQ(s.RegisterTenant({.tenant_id = 1}).code(),
            StatusCode::kAlreadyExists);
  // LC reservations must leave the leftover pool non-negative.
  EXPECT_EQ(s.RegisterTenant({.tenant_id = 2,
                              .cls = TenantClass::kLatencyCritical,
                              .reserved_tokens_per_sec = 50'000})
                .code(),
            StatusCode::kInvalidArgument);
  // An exactly-fitting reservation is fine (leftover rate drops to 0).
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 3,
                                .cls = TenantClass::kLatencyCritical,
                                .reserved_tokens_per_sec = 40'000})
                  .ok());
  EXPECT_EQ(s.leftover_rate(), 0u);

  // Registration rebuilds the leftover pool, so it is fenced off once
  // traffic has started.
  EXPECT_EQ(s.Admit(1, 1, 0).action, Action::kAdmit);
  EXPECT_EQ(s.RegisterTenant({.tenant_id = 4}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(QosSchedulerTest, UnregisteredTenantsAreNotPoliced) {
  QosScheduler s(QosConfig{});
  AdmitResult r = s.Admit(99, 1000, 0);
  EXPECT_EQ(r.action, Action::kAdmit);
  EXPECT_EQ(s.total_granted(), 0u);  // nothing consumed
}

TEST(QosSchedulerTest, RefillIsExactUnderIrregularTickSpacing) {
  // A deliberately awkward rate and an effectively-unbounded bucket:
  // every fractional token must survive the carry. floor(rate * T / 1e9)
  // tokens over any horizon T, regardless of how the ticks land.
  QosConfig cfg;
  cfg.device_tokens_per_sec = 333'333;
  cfg.bucket_depth_ns = 3'600ull * kSec;  // never clamps once drained
  // Buckets start full (refill would clamp to zero): drain the pool at
  // t=0 so every subsequent tick's tokens land in the refill ledger.
  auto drain = [&](QosScheduler* s) {
    EXPECT_TRUE(s->RegisterTenant({.tenant_id = 1}).ok());
    u64 depth = s->leftover_depth();
    EXPECT_EQ(s->Admit(1, static_cast<u32>(depth), 0).action, Action::kAdmit);
    EXPECT_EQ(s->leftover_tokens(), 0u);
  };
  QosScheduler irregular(cfg);
  drain(&irregular);
  Rng rng(42);
  SimTime t = 0;
  for (int i = 0; i < 3000; i++) {
    t += 1 + static_cast<SimTime>(rng.NextBounded(997));
    irregular.AdvanceTo(t);
  }
  u64 expect = static_cast<u64>(static_cast<unsigned __int128>(333'333) *
                                static_cast<u64>(t) / 1'000'000'000);
  EXPECT_EQ(irregular.total_refilled(), expect);

  // The same horizon ticked every single nanosecond lands on the same
  // total: tick spacing is invisible to the ledger.
  QosScheduler dense(cfg);
  drain(&dense);
  for (SimTime u = 1; u <= t; u++) dense.AdvanceTo(u);
  EXPECT_EQ(dense.total_refilled(), expect);

  std::string err;
  EXPECT_TRUE(irregular.CheckConservation(&err)) << err;
  EXPECT_TRUE(dense.CheckConservation(&err)) << err;
}

TEST(QosSchedulerTest, TokenConservationOverSeededSchedule) {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 250'000;
  QosScheduler s(cfg);
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1,
                                .cls = TenantClass::kLatencyCritical,
                                .reserved_tokens_per_sec = 100'000})
                  .ok());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 2}).ok());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 3}).ok());

  Rng rng(7);
  SimTime t = 0;
  u64 admits = 0, defers = 0;
  std::string err;
  for (int i = 0; i < 20'000; i++) {
    t += static_cast<SimTime>(rng.NextBounded(2'000));
    u32 tid = 1 + static_cast<u32>(rng.NextBounded(3));
    u32 cost = 1 + static_cast<u32>(rng.NextBounded(8));
    u64 before = s.total_granted();
    u64 lc_before = s.tokens(1);
    u64 pool_before = s.leftover_tokens();
    AdmitResult r = s.Admit(tid, cost, t);
    if (r.action == Action::kAdmit) {
      admits++;
      // Granted exactly `cost`, never more, never a partial grant.
      ASSERT_EQ(s.total_granted(), before + cost);
    } else {
      defers++;
      // A deferral consumes nothing and promises a future, not the past.
      ASSERT_EQ(s.total_granted(), before);
      ASSERT_GE(s.tokens(1), lc_before);
      ASSERT_GE(s.leftover_tokens(), pool_before);
      ASSERT_GE(r.retry_at, t + cfg.min_backoff_ns);
    }
    if (i % 64 == 0) {
      ASSERT_TRUE(s.CheckConservation(&err)) << err;
    }
  }
  EXPECT_GT(admits, 0u);
  EXPECT_GT(defers, 0u);  // the schedule must actually exercise deferral
  EXPECT_TRUE(s.CheckConservation(&err)) << err;
  EXPECT_EQ(s.granted(1) + s.granted(2) + s.granted(3), s.total_granted());
}

TEST(QosSchedulerTest, DeferConsumesNothingAndRetryAtCoversDeficit) {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 10'000;  // 10 tokens/ms
  cfg.bucket_depth_ns = 1 * kMs;       // depth 10
  QosScheduler s(cfg);
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1}).ok());

  // Drain the full initial pool, then ask for more than remains.
  EXPECT_EQ(s.Admit(1, 10, 0).action, Action::kAdmit);
  AdmitResult r = s.Admit(1, 4, 0);
  ASSERT_EQ(r.action, Action::kDefer);
  EXPECT_EQ(s.leftover_tokens(), 0u);
  // 4 tokens at 10/ms take 400 us to accrue.
  EXPECT_GE(r.retry_at, static_cast<SimTime>(400) * kUs);
  // Asking again at retry_at succeeds: the promise is honored exactly.
  EXPECT_EQ(s.Admit(1, 4, r.retry_at).action, Action::kAdmit);
  std::string err;
  EXPECT_TRUE(s.CheckConservation(&err)) << err;
}

TEST(QosSchedulerTest, BestEffortDrawsLeftoverOnly) {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 100'000;
  QosScheduler s(cfg);
  // The whole device rate is reserved: the leftover pool refills at 0.
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1,
                                .cls = TenantClass::kLatencyCritical,
                                .reserved_tokens_per_sec = 100'000})
                  .ok());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 2}).ok());
  EXPECT_EQ(s.leftover_rate(), 0u);
  EXPECT_EQ(s.leftover_depth(), 0u);

  // The BE tenant cannot touch the LC reservation even while it is full.
  EXPECT_EQ(s.tokens(1), s.bucket_depth(1));
  AdmitResult r = s.Admit(2, 1, 1 * kMs);
  ASSERT_EQ(r.action, Action::kDefer);
  // Zero effective rate: the deferral is a poll, not a promise.
  EXPECT_EQ(r.retry_at, 1 * kMs + cfg.zero_rate_poll_ns);
  EXPECT_EQ(s.tokens(1), s.bucket_depth(1));  // LC bucket untouched

  // The LC tenant itself is unaffected.
  EXPECT_EQ(s.Admit(1, 1, 1 * kMs).action, Action::kAdmit);
}

TEST(QosSchedulerTest, LatencyCriticalBorrowsLeftoverAfterReservation) {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 100'000;
  cfg.bucket_depth_ns = 1 * kMs;
  QosScheduler s(cfg);
  // Reservation bucket holds 40 tokens, leftover pool 60.
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1,
                                .cls = TenantClass::kLatencyCritical,
                                .reserved_tokens_per_sec = 40'000})
                  .ok());
  // One oversized burst: 70 = all 40 reserved + 30 borrowed leftover.
  ASSERT_EQ(s.Admit(1, 70, 0).action, Action::kAdmit);
  EXPECT_EQ(s.tokens(1), 0u);           // reservation consumed first
  EXPECT_EQ(s.leftover_tokens(), 30u);  // remainder borrowed
  EXPECT_EQ(s.granted(1), 70u);
  std::string err;
  EXPECT_TRUE(s.CheckConservation(&err)) << err;
}

TEST(QosSchedulerTest, BucketsClampAtDepthAcrossIdleGaps) {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 50'000;
  cfg.bucket_depth_ns = 1 * kMs;  // depth 50
  QosScheduler s(cfg);
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1}).ok());
  // A second of idle time cannot bank more than one bucket depth.
  s.AdvanceTo(1 * kSec);
  EXPECT_EQ(s.leftover_tokens(), s.leftover_depth());
  std::string err;
  ASSERT_TRUE(s.CheckConservation(&err)) << err;
  // And the post-clamp ledger still balances after the pool drains.
  EXPECT_EQ(s.Admit(1, 50, 1 * kSec).action, Action::kAdmit);
  EXPECT_TRUE(s.CheckConservation(&err)) << err;
}

}  // namespace
}  // namespace nvmetro::qos

// --- Router integration ------------------------------------------------------

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

constexpr NvmeStatus kShedStatus =
    nvme::MakeStatus(nvme::kSctGeneric, nvme::kScNamespaceNotReady);

/// Echoes success synchronously (notify-path target).
struct EchoUif : uif::UifBase {
  bool work(const nvme::Sqe&, u32, u16& status) override {
    status = nvme::kStatusSuccess;
    return false;
  }
};

/// Single-VM router stack with an optional QoS scheduler, mirroring
/// tests/obs_test.cc's ObsRouterFixture so the golden traces pinned
/// there can be asserted unchanged here. A plain struct (not a Test)
/// so equivalence tests can run two stacks side by side.
struct QosRouterStack {
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<NvmetroHost> host;
  VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;
  std::unique_ptr<qos::QosScheduler> sched;

  enum class QosMode {
    kOff,       // never attached
    kDetached,  // attached, then detached before traffic
    kGenerous,  // attached with a rate no workload here can exhaust
  };

  bool Build(QosMode mode, const char* classifier_asm = nullptr,
             qos::QosConfig qcfg = {.device_tokens_per_sec = 10'000'000},
             qos::TenantConfig tcfg = {.tenant_id = 1}) {
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.obs = &obs;
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    vm = std::make_unique<virt::Vm>(&sim,
                                    virt::VmConfig{.memory_bytes = 32 * MiB});
    NvmetroHost::Config hcfg;
    hcfg.obs = &obs;
    host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);
    vc = host->CreateController(vm.get(), {.vm_id = 1});
    auto prog = classifier_asm ? ebpf::Assemble(classifier_asm)
                               : functions::PassthroughClassifier();
    EXPECT_TRUE(prog.ok());
    if (!prog.ok()) return false;
    EXPECT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    if (mode != QosMode::kOff) {
      sched = std::make_unique<qos::QosScheduler>(qcfg, &obs);
      EXPECT_TRUE(sched->RegisterTenant(tcfg).ok());
      vc->AttachQos(sched.get(), tcfg.tenant_id);
      if (mode == QosMode::kDetached) vc->AttachQos(nullptr, 0);
    }
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    EXPECT_TRUE(driver->Init(1).ok());
    return true;
  }

  /// Submits one I/O, runs to completion, returns its trace-span id.
  u64 RunOne(bool write, u64 lba, NvmeStatus* status_out = nullptr) {
    u64 buf = *vm->memory().AllocPages(1);
    nvme::Sqe s = write ? nvme::MakeWrite(1, lba, 1, buf, 0)
                        : nvme::MakeRead(1, lba, 1, buf, 0);
    NvmeStatus status = 0xFFF;
    driver->Submit(0, s, [&](NvmeStatus st, u32) { status = st; });
    sim.Run();
    if (status_out) *status_out = status;
    return obs.trace().requests_opened();
  }
};

struct QosRouterFixture : ::testing::Test, QosRouterStack {};

// The five golden traces from tests/obs_test.cc, pinned verbatim. The
// equivalence tests below assert each path produces its exact string in
// every QoS mode — QoS-off must be bit-identical to today's router, and
// an attached-but-uncontended scheduler must not change the trace shape
// (no QOS_ADMIT span without an actual wait).
constexpr const char* kFastGolden =
    "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE > "
    "VCQ_POST > IRQ_INJECT";
constexpr const char* kKernelGolden =
    "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_KERNEL > KBIO_DONE > "
    "KCQ_COMPLETE > VCQ_POST > IRQ_INJECT";
constexpr const char* kNotifyGolden =
    "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_NOTIFY > UIF_WORK > "
    "UIF_RESPOND > NCQ_COMPLETE > VCQ_POST > IRQ_INJECT";
constexpr const char* kFanoutGolden =
    "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > DISPATCH_NOTIFY > "
    "UIF_WORK > UIF_RESPOND > NCQ_COMPLETE > HCQ_COMPLETE > "
    "VCQ_POST > IRQ_INJECT";
constexpr const char* kDirectGolden =
    "VSQ_POP > CLASSIFIER(VSQ) > VCQ_POST > IRQ_INJECT";

class QosEquivalenceTest
    : public QosRouterFixture,
      public ::testing::WithParamInterface<QosRouterStack::QosMode> {};

INSTANTIATE_TEST_SUITE_P(
    AllModes, QosEquivalenceTest,
    ::testing::Values(QosRouterStack::QosMode::kOff,
                      QosRouterStack::QosMode::kDetached,
                      QosRouterStack::QosMode::kGenerous),
    [](const auto& pinfo) {
      switch (pinfo.param) {
        case QosRouterStack::QosMode::kOff: return "QosOff";
        case QosRouterStack::QosMode::kDetached: return "QosDetached";
        case QosRouterStack::QosMode::kGenerous: return "QosUncontended";
      }
      return "Unknown";
    });

TEST_P(QosEquivalenceTest, FastPathGoldenTrace) {
  ASSERT_TRUE(Build(GetParam()));
  NvmeStatus st = 0;
  u64 id = RunOne(false, 0, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  EXPECT_EQ(obs.trace().PathString(id), kFastGolden);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_P(QosEquivalenceTest, KernelPathGoldenTrace) {
  const char* kAllToKernel =
      "  mov r0, 0x480000\n"  // SEND_KQ | WILL_COMPLETE_KQ
      "  exit\n";
  ASSERT_TRUE(Build(GetParam(), kAllToKernel));
  auto kdev =
      std::make_unique<kblock::NvmeBlockDevice>(&sim, phys.get(), &dma, 1);
  vc->AttachKernelDevice(kdev.get());
  NvmeStatus st = 0;
  u64 id = RunOne(true, 4, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  EXPECT_EQ(obs.trace().PathString(id), kKernelGolden);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_P(QosEquivalenceTest, NotifyPathGoldenTrace) {
  const char* kAllToUif =
      "  mov r0, 0x240000\n"  // SEND_NQ | WILL_COMPLETE_NQ
      "  exit\n";
  ASSERT_TRUE(Build(GetParam(), kAllToUif));
  NotifyChannel channel;
  uif::UifHostParams params;
  params.obs = &obs;
  uif::UifHost uif_host(&sim, "echo", params);
  EchoUif echo;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &echo);
  uif_host.Start();
  NvmeStatus st = 0;
  u64 id = RunOne(true, 0, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  EXPECT_EQ(obs.trace().PathString(id), kNotifyGolden);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_P(QosEquivalenceTest, MirrorFanoutGoldenTrace) {
  ASSERT_TRUE(Build(GetParam(), functions::ReplicatorClassifierAsm()));
  NotifyChannel channel;
  uif::UifHostParams params;
  params.obs = &obs;
  uif::UifHost uif_host(&sim, "repl", params);
  kblock::RamBlockDevice secondary(&sim, 32 * MiB);
  functions::ReplicatorUif repl(&sim, &secondary);
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &repl);
  uif_host.Start();
  NvmeStatus st = 0;
  u64 id = RunOne(true, 8, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  EXPECT_EQ(obs.trace().PathString(id), kFanoutGolden);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_P(QosEquivalenceTest, DirectMediationGoldenTrace) {
  // ReadOnly rejects the write at the classifier. The rejection happens
  // *after* admission: QoS polices entry, not verdicts.
  ASSERT_TRUE(Build(GetParam(), functions::ReadOnlyClassifierAsm()));
  NvmeStatus st = 0;
  u64 id = RunOne(true, 0, &st);
  EXPECT_FALSE(nvme::StatusOk(st));
  EXPECT_EQ(obs.trace().PathString(id), kDirectGolden);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_F(QosRouterFixture, QosOffTimingBitIdenticalToDetached) {
  // Same closed-loop workload on a never-attached stack and on an
  // attach-then-detach stack: simulated end time, router CPU, and event
  // counts must match exactly — detaching leaves zero residue. (An
  // *attached* scheduler legitimately differs: it charges qos_admit_ns.)
  struct Run {
    SimTime end = 0;
    u64 cpu = 0;
    u64 opened = 0;
    u64 events = 0;
  };
  auto run = [](QosMode mode) {
    QosRouterStack f;
    if (!f.Build(mode)) return Run{};
    for (int i = 0; i < 20; i++) f.RunOne(i % 2 == 0, i % 7);
    return Run{f.sim.now(), f.host->RouterCpuBusyNs(),
               f.obs.trace().requests_opened(),
               f.obs.trace().total_recorded()};
  };
  Run off = run(QosMode::kOff);
  Run detached = run(QosMode::kDetached);
  EXPECT_EQ(off.end, detached.end);
  EXPECT_EQ(off.cpu, detached.cpu);
  EXPECT_EQ(off.opened, detached.opened);
  EXPECT_EQ(off.events, detached.events);
  EXPECT_GT(off.opened, 0u);
}

TEST_F(QosRouterFixture, DeferredRequestStampsQosWaitExactly) {
  // One token in the bucket, two requests: the second parks until the
  // 1-token/ms refill covers it. Its span gains a QOS_ADMIT stamp and
  // the parked time lands — exactly — in the qos_wait stage.
  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = 1'000;  // 1 token/ms
  qcfg.bucket_depth_ns = 1 * kMs;      // depth 1
  ASSERT_TRUE(Build(QosMode::kGenerous, nullptr, qcfg, {.tenant_id = 1}));
  u64 buf = *vm->memory().AllocPages(1);
  int done = 0;
  for (int i = 0; i < 2; i++) {
    driver->Submit(0, nvme::MakeRead(1, i, 1, buf, 0),
                   [&](NvmeStatus st, u32) {
                     EXPECT_EQ(st, nvme::kStatusSuccess);
                     done++;
                   });
  }
  sim.Run();
  ASSERT_EQ(done, 2);
  EXPECT_EQ(obs.trace().PathString(1), kFastGolden);
  EXPECT_EQ(obs.trace().PathString(2),
            "VSQ_POP > QOS_ADMIT > CLASSIFIER(VSQ) > DISPATCH_FAST > "
            "HCQ_COMPLETE > VCQ_POST > IRQ_INJECT");
  EXPECT_EQ(vc->qos_deferrals(), 1u);
  EXPECT_EQ(vc->qos_sheds(), 0u);
  EXPECT_EQ(vc->qos_waiting(), 0u);
  EXPECT_EQ(sched->deferrals(1), 1u);

  // The wait is attributed exactly: per-request stage sums still equal
  // e2e, and the deferred request's qos_wait stage holds its parked ns.
  obs::SpanAnalyzer an;
  an.Analyze(obs.trace());
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
  ASSERT_EQ(an.requests().size(), 2u);
  const auto& first = an.requests()[0];
  const auto& second = an.requests()[1];
  EXPECT_EQ(first.stage_ns[static_cast<usize>(obs::Stage::kQosWait)], 0u);
  EXPECT_GT(second.stage_ns[static_cast<usize>(obs::Stage::kQosWait)], 0u);
  // The wait histogram saw the same parked duration.
  const LatencyHistogram* waits =
      obs.metrics().FindHistogram("qos.tenant1.wait_ns");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->count(), 1u);
  EXPECT_EQ(waits->max(),
            second.stage_ns[static_cast<usize>(obs::Stage::kQosWait)]);
  EXPECT_TRUE(sched->CheckConservation(&err)) << err;
}

TEST_F(QosRouterFixture, DeferralBoundShedsWithBusyStatus) {
  // Deferral ring of 2: of five back-to-back submits, one admits, two
  // park, two shed with the busy status. The parked pair completes once
  // tokens accrue; every shed is accounted to the tenant.
  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = 1'000;
  qcfg.bucket_depth_ns = 1 * kMs;
  ASSERT_TRUE(Build(QosMode::kGenerous, nullptr, qcfg,
                    {.tenant_id = 1, .max_deferred = 2}));
  u64 buf = *vm->memory().AllocPages(1);
  int ok = 0, shed = 0;
  for (int i = 0; i < 5; i++) {
    driver->Submit(0, nvme::MakeRead(1, i, 1, buf, 0),
                   [&](NvmeStatus st, u32) {
                     if (nvme::StatusOk(st)) {
                       ok++;
                     } else if (st == kShedStatus) {
                       shed++;
                     }
                   });
  }
  sim.Run();
  EXPECT_EQ(ok, 3);    // 1 admitted + 2 parked-then-admitted
  EXPECT_EQ(shed, 2);  // over the bound
  EXPECT_EQ(vc->qos_sheds(), 2u);
  EXPECT_EQ(sched->sheds(1), 2u);
  EXPECT_EQ(obs.metrics().CounterValue("qos.tenant1.shed"), 2u);
  EXPECT_EQ(vc->qos_waiting(), 0u);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
  // Shed spans carry the QOS_SHED mark.
  usize shed_spans = 0;
  for (const auto& ev : obs.trace().Events()) {
    if (ev.kind == obs::SpanKind::kQosShed) shed_spans++;
  }
  EXPECT_EQ(shed_spans, 2u);
  std::string err;
  EXPECT_TRUE(sched->CheckConservation(&err)) << err;
}

// --- Isolation ---------------------------------------------------------------

struct TenantBook {
  u64 submitted = 0;
  u64 ok = 0;
  u64 shed = 0;
  u64 other_fail = 0;
  bool Balanced() const { return submitted == ok + shed + other_fail; }
};

struct IsolationOut {
  TenantBook lc, be;
  u64 lc_p999 = 0;
  u64 lc_count = 0;
  u64 lc_sheds = 0, be_sheds = 0;
  u64 lc_slo_breach_windows = 0;
  u64 open_requests = 0;
  bool conserved = false;
  std::string conserve_err;
};

/// One latency-critical tenant at a fixed 10k IOPS against one
/// best-effort tenant at `be_interval` spacing, 40 ms horizon, single
/// router worker, shared physical drive. With `faults`, command stalls
/// and an SQ-full burst run concurrently (and host-side timeouts are
/// armed so stalls are survivable).
IsolationOut RunIsolation(u64 seed, SimTime be_interval, bool faults) {
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig ccfg;
  ccfg.capacity = 64 * MiB;
  ccfg.obs = &obs;
  // Disable the drive's intrinsic slow-op tail so the p999-shift assertion
  // measures cross-tenant interference rather than seed-dependent firmware
  // retry draws (1.5% of ops at 2.6x would dominate a few-hundred-sample max).
  ccfg.latency.slow_op_rate = 0.0;
  auto phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, ccfg);
  fault::FaultInjector injector(&sim, &obs);
  if (faults) {
    phys->SetFaultInjector(&injector);
    fault::FaultPlan plan;
    plan.seed = seed;
    fault::FaultSpec stall;
    stall.kind = fault::FaultKind::kCommandStall;
    stall.count = 4;
    stall.probability = 0.002;
    plan.faults.push_back(stall);
    fault::FaultSpec burst;
    burst.kind = fault::FaultKind::kSqFullBurst;
    burst.at_ns = 5 * kMs;
    burst.duration_ns = 2 * kMs;
    plan.faults.push_back(burst);
    injector.Arm(plan);
  }
  NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  hcfg.num_workers = 1;
  if (faults) {
    hcfg.costs.request_timeout_ns = 2 * kMs;
    hcfg.costs.max_retries = 2;
  }
  auto host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);

  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = 50'000;
  qos::QosScheduler sched(qcfg, &obs);
  EXPECT_TRUE(sched
                  .RegisterTenant({.tenant_id = 1,
                                   .cls = qos::TenantClass::kLatencyCritical,
                                   .reserved_tokens_per_sec = 25'000,
                                   .slo_latency_ns = 1 * kMs})
                  .ok());
  EXPECT_TRUE(sched.RegisterTenant({.tenant_id = 2}).ok());

  std::vector<std::unique_ptr<virt::Vm>> vms;
  std::vector<std::unique_ptr<virt::GuestNvmeDriver>> drivers;
  for (u32 i = 1; i <= 2; i++) {
    vms.push_back(std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.memory_bytes = 1 * MiB, .vcpus = 1}));
    VirtualController* vc =
        host->CreateController(vms.back().get(), {.vm_id = i});
    auto prog = functions::PassthroughClassifier();
    EXPECT_TRUE(prog.ok());
    EXPECT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    vc->AttachQos(&sched, i);
  }
  host->Start();
  for (u32 i = 0; i < 2; i++) {
    drivers.push_back(std::make_unique<virt::GuestNvmeDriver>(
        vms[i].get(), host->controller(i)));
    EXPECT_TRUE(drivers.back()->Init(1).ok());
  }

  obs::SloWatchdog slo(&obs.metrics(), &obs.trace(), {});
  sched.ArmSloTargets(&slo);
  const SimTime horizon = 40 * kMs;
  slo.Start(0, horizon, [&](SimTime at, std::function<void()> fn) {
    sim.ScheduleAt(at, std::move(fn));
  });

  IsolationOut out;
  Rng rng(seed);
  u64 bufs[2] = {*vms[0]->memory().AllocPages(1),
                 *vms[1]->memory().AllocPages(1)};
  auto drive = [&](u32 idx, SimTime interval, TenantBook* book) {
    SimTime t = 10 * kUs + static_cast<SimTime>(rng.NextBounded(interval));
    for (; t < horizon; t += interval) {
      u64 lba = rng.NextBounded(1'000);
      sim.ScheduleAt(t, [&sim, &drivers, idx, lba, book, bufs] {
        (void)sim;
        book->submitted++;
        drivers[idx]->Submit(
            0, nvme::MakeRead(1, lba, 1, bufs[idx], 0),
            [book](NvmeStatus st, u32) {
              if (nvme::StatusOk(st)) {
                book->ok++;
              } else if (st == kShedStatus) {
                book->shed++;
              } else {
                book->other_fail++;
              }
            });
      });
    }
  };
  drive(0, 100 * kUs, &out.lc);  // 10k IOPS, well inside the reservation
  drive(1, be_interval, &out.be);
  sim.Run();

  const LatencyHistogram* lc_lat =
      obs.metrics().FindHistogram("qos.tenant1.latency_ns");
  if (lc_lat) {
    out.lc_p999 = lc_lat->Quantile(0.999);
    out.lc_count = lc_lat->count();
  }
  out.lc_sheds = sched.sheds(1);
  out.be_sheds = sched.sheds(2);
  out.lc_slo_breach_windows = slo.breach_windows("qos.tenant1");
  out.open_requests = obs.trace().open_requests();
  out.conserved = sched.CheckConservation(&out.conserve_err);
  return out;
}

TEST(QosIsolationTest, MisbehavingTenantCannotMoveLcTailLatency) {
  // Gentle BE neighbor (5k IOPS) vs. the same neighbor flooding at 40x
  // its fair share (200k IOPS against a 25k tokens/s leftover pool).
  // The LC tenant's p999 may shift only within the pinned tolerance,
  // and every shed lands on the misbehaving tenant.
  constexpr u64 kToleranceNs = 25 * kUs;
  for (u64 seed : {1ull, 7ull, 23ull}) {
    IsolationOut gentle = RunIsolation(seed, 200 * kUs, /*faults=*/false);
    IsolationOut flood = RunIsolation(seed, 5 * kUs, /*faults=*/false);

    ASSERT_GT(gentle.lc_count, 0u);
    ASSERT_GT(flood.lc_count, 0u);
    // The isolation claim itself.
    EXPECT_LE(flood.lc_p999, gentle.lc_p999 + kToleranceNs)
        << "seed " << seed << ": LC p999 moved from " << gentle.lc_p999
        << "ns to " << flood.lc_p999 << "ns under BE flood";
    // The LC tenant never sheds; the flood is absorbed by the BE tenant.
    EXPECT_EQ(flood.lc_sheds, 0u);
    EXPECT_EQ(flood.lc.shed, 0u);
    EXPECT_GT(flood.be_sheds, 0u);
    EXPECT_EQ(flood.be.shed, flood.be_sheds);
    // BE still gets goodput (shed, not starved).
    EXPECT_GT(flood.be.ok, 0u);
    // Books balance and nothing leaks, both runs.
    for (const IsolationOut* o : {&gentle, &flood}) {
      EXPECT_TRUE(o->lc.Balanced());
      EXPECT_TRUE(o->be.Balanced());
      EXPECT_EQ(o->open_requests, 0u);
      EXPECT_TRUE(o->conserved) << o->conserve_err;
      EXPECT_EQ(o->lc_slo_breach_windows, 0u);
    }
  }
}

TEST(QosIsolationTest, QosComposesWithFaultRecovery) {
  // The same flood scenario under the fault matrix: command stalls and
  // an SQ-full burst. Faults divert per-command randomness, so exact
  // latencies are not comparable across runs — the composition claim is
  // that every structural invariant still holds: books balance, no
  // request leaks, the token ledger stays exact, and the LC tenant
  // still never sheds.
  for (u64 seed : {3ull, 11ull}) {
    IsolationOut out = RunIsolation(seed, 5 * kUs, /*faults=*/true);
    EXPECT_TRUE(out.lc.Balanced());
    EXPECT_TRUE(out.be.Balanced());
    EXPECT_EQ(out.open_requests, 0u);
    EXPECT_TRUE(out.conserved) << out.conserve_err;
    EXPECT_EQ(out.lc_sheds, 0u);
    EXPECT_GT(out.be_sheds, 0u);
    EXPECT_GT(out.lc.ok, 0u);  // the LC tenant survived the fault window
  }
}

TEST(QosIsolationTest, ThousandTenantsBoundedMemory) {
  // 1000 tagged VMs on one scheduler: the run completes a fixed
  // horizon, every tenant's metrics exist, and the registry is frozen
  // after registration — the QoS hot path allocates nothing per IO.
  constexpr u32 kTenants = 1000;
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig ccfg;
  ccfg.capacity = 64 * MiB;
  ccfg.max_io_queues = kTenants + 8;
  ccfg.obs = &obs;
  auto phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, ccfg);
  NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  hcfg.num_workers = 4;
  auto host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);

  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = 2'000'000;
  qos::QosScheduler sched(qcfg, &obs);
  for (u32 i = 1; i <= kTenants; i++) {
    // Every fifth tenant is latency-critical with a small reservation.
    qos::TenantConfig t{.tenant_id = i};
    if (i % 5 == 0) {
      t.cls = qos::TenantClass::kLatencyCritical;
      t.reserved_tokens_per_sec = 5'000;
    }
    ASSERT_TRUE(sched.RegisterTenant(t).ok());
  }
  ASSERT_EQ(sched.num_tenants(), kTenants);

  std::vector<std::unique_ptr<virt::Vm>> vms;
  std::vector<std::unique_ptr<virt::GuestNvmeDriver>> drivers;
  vms.reserve(kTenants);
  drivers.reserve(kTenants);
  for (u32 i = 1; i <= kTenants; i++) {
    vms.push_back(std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.memory_bytes = 256 * KiB, .vcpus = 1}));
    VirtualController* vc =
        host->CreateController(vms.back().get(), {.vm_id = i});
    auto prog = functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok());
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    vc->AttachQos(&sched, i);
  }
  host->Start();
  virt::GuestNvmeParams gp;
  gp.queue_entries = 16;
  for (u32 i = 0; i < kTenants; i++) {
    drivers.push_back(std::make_unique<virt::GuestNvmeDriver>(
        vms[i].get(), host->controller(i), gp));
    ASSERT_TRUE(drivers.back()->Init(1).ok());
  }

  // The registry must not grow past this point: per-tenant metrics were
  // all created at RegisterTenant / AttachQos time.
  const usize registry_size = obs.metrics().size();

  u64 ok = 0, failed = 0;
  Rng rng(99);
  constexpr int kIosPerTenant = 3;
  for (int round = 0; round < kIosPerTenant; round++) {
    for (u32 i = 0; i < kTenants; i++) {
      SimTime at = 1 + static_cast<SimTime>(round) * 2 * kMs +
                   static_cast<SimTime>(rng.NextBounded(1 * kMs));
      u64 lba = rng.NextBounded(100);
      sim.ScheduleAt(at, [&, i, lba] {
        u64 buf = *vms[i]->memory().AllocPages(1);
        drivers[i]->Submit(0, nvme::MakeRead(1, lba, 1, buf, 0),
                           [&, i, buf](NvmeStatus st, u32) {
                             if (nvme::StatusOk(st)) {
                               ok++;
                             } else {
                               failed++;
                             }
                             vms[i]->memory().FreePages(buf, 1);
                           });
      });
    }
  }
  sim.Run();

  EXPECT_EQ(ok, static_cast<u64>(kTenants) * kIosPerTenant);
  EXPECT_EQ(failed, 0u);
  // Frozen registry: IO volume registered nothing new.
  EXPECT_EQ(obs.metrics().size(), registry_size);
  // Per-tenant metrics exported for every tenant, populated by traffic.
  for (u32 i = 1; i <= kTenants; i++) {
    std::string base = "qos.tenant" + std::to_string(i);
    const obs::Counter* admitted = obs.metrics().FindCounter(base + ".admitted");
    ASSERT_NE(admitted, nullptr) << base;
    EXPECT_EQ(admitted->value(), static_cast<u64>(kIosPerTenant)) << base;
    ASSERT_NE(obs.metrics().FindHistogram(base + ".latency_ns"), nullptr);
    EXPECT_EQ(obs.metrics().FindHistogram(base + ".latency_ns")->count(),
              static_cast<u64>(kIosPerTenant))
        << base;
  }
  EXPECT_EQ(obs.trace().open_requests(), 0u);
  std::string err;
  EXPECT_TRUE(sched.CheckConservation(&err)) << err;
  EXPECT_EQ(sched.total_granted(),
            static_cast<u64>(kTenants) * kIosPerTenant);
}

}  // namespace
}  // namespace nvmetro::core

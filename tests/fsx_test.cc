// Tests for FlatFs: format/mount, append/read, extents, persistence,
// crash-recovery of metadata, and space management.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "fsx/flatfs.h"
#include "sim/simulator.h"

namespace nvmetro::fsx {
namespace {

/// Test backend: RAM with a small fixed latency via the simulator.
class RamFsBackend : public FsBackend {
 public:
  RamFsBackend(sim::Simulator* sim, u64 capacity, SimTime latency = 1000)
      : sim_(sim), data_(capacity, 0), latency_(latency) {}

  void Read(u64 offset, void* buf, u64 len, Callback done) override {
    reads_++;
    sim_->ScheduleAfter(latency_, [this, offset, buf, len, done] {
      if (offset + len > data_.size()) {
        done(OutOfRange("backend read OOB"));
        return;
      }
      memcpy(buf, data_.data() + offset, len);
      done(OkStatus());
    });
  }
  void Write(u64 offset, const void* buf, u64 len, Callback done) override {
    writes_++;
    sim_->ScheduleAfter(latency_, [this, offset, buf, len, done] {
      if (offset + len > data_.size()) {
        done(OutOfRange("backend write OOB"));
        return;
      }
      memcpy(data_.data() + offset, buf, len);
      done(OkStatus());
    });
  }
  void Flush(Callback done) override {
    sim_->ScheduleAfter(latency_, [done] { done(OkStatus()); });
  }
  u64 capacity() const override { return data_.size(); }

  u64 reads_ = 0, writes_ = 0;

 private:
  sim::Simulator* sim_;
  std::vector<u8> data_;
  SimTime latency_;
};

struct FsFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<RamFsBackend> backend =
      std::make_unique<RamFsBackend>(&sim, 64 * MiB);
  std::unique_ptr<FlatFs> fs;

  void FormatAndMount() {
    bool formatted = false;
    FlatFs::Format(backend.get(), [&](Status st) {
      ASSERT_TRUE(st.ok()) << st.ToString();
      formatted = true;
    });
    sim.Run();
    ASSERT_TRUE(formatted);
    Remount();
  }

  void Remount() {
    fs.reset();
    bool mounted = false;
    FlatFs::Mount(backend.get(), [&](Result<std::unique_ptr<FlatFs>> r) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      fs = std::move(*r);
      mounted = true;
    });
    sim.Run();
    ASSERT_TRUE(mounted);
  }

  Status AppendSync(const std::string& name, const std::vector<u8>& data) {
    Status result = Internal("pending");
    fs->Append(name, data.data(), data.size(),
               [&](Status st) { result = st; });
    sim.Run();
    return result;
  }

  Status ReadSync(const std::string& name, u64 off, std::vector<u8>* out) {
    Status result = Internal("pending");
    fs->ReadAt(name, off, out->data(), out->size(),
               [&](Status st) { result = st; });
    sim.Run();
    return result;
  }

  Status SyncFs() {
    Status result = Internal("pending");
    fs->Sync([&](Status st) { result = st; });
    sim.Run();
    return result;
  }
};

TEST_F(FsFixture, MountUnformattedFails) {
  bool called = false;
  FlatFs::Mount(backend.get(), [&](Result<std::unique_ptr<FlatFs>> r) {
    EXPECT_FALSE(r.ok());
    called = true;
  });
  sim.Run();
  EXPECT_TRUE(called);
}

TEST_F(FsFixture, CreateAppendRead) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("wal").ok());
  Rng rng(3);
  std::vector<u8> data(10'000);
  rng.Fill(data.data(), data.size());
  ASSERT_TRUE(AppendSync("wal", data).ok());
  EXPECT_EQ(fs->FileSize("wal"), data.size());
  std::vector<u8> out(data.size());
  ASSERT_TRUE(ReadSync("wal", 0, &out).ok());
  EXPECT_EQ(out, data);
  // Partial read at an offset.
  std::vector<u8> mid(100);
  ASSERT_TRUE(ReadSync("wal", 5000, &mid).ok());
  EXPECT_EQ(0, memcmp(mid.data(), data.data() + 5000, 100));
}

TEST_F(FsFixture, DuplicateCreateFails) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("f").ok());
  EXPECT_EQ(fs->Create("f").code(), StatusCode::kAlreadyExists);
}

TEST_F(FsFixture, ReadPastEofFails) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("f").ok());
  std::vector<u8> data(100, 1);
  ASSERT_TRUE(AppendSync("f", data).ok());
  std::vector<u8> out(200);
  EXPECT_FALSE(ReadSync("f", 0, &out).ok());
}

TEST_F(FsFixture, MultipleAppendsGrowAcrossExtents) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("big").ok());
  Rng rng(5);
  std::vector<u8> all;
  // Append enough to need several 256 KiB extents.
  for (int i = 0; i < 10; i++) {
    std::vector<u8> chunk(100'000);
    rng.Fill(chunk.data(), chunk.size());
    ASSERT_TRUE(AppendSync("big", chunk).ok());
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(fs->FileSize("big"), all.size());
  std::vector<u8> out(all.size());
  ASSERT_TRUE(ReadSync("big", 0, &out).ok());
  EXPECT_EQ(out, all);
}

TEST_F(FsFixture, PersistenceAcrossRemount) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("a").ok());
  ASSERT_TRUE(fs->Create("b").ok());
  std::vector<u8> data(4096, 0x5C);
  ASSERT_TRUE(AppendSync("a", data).ok());
  ASSERT_TRUE(SyncFs().ok());
  Remount();
  EXPECT_TRUE(fs->Exists("a"));
  EXPECT_TRUE(fs->Exists("b"));
  EXPECT_EQ(fs->FileSize("a"), 4096u);
  std::vector<u8> out(4096);
  ASSERT_TRUE(ReadSync("a", 0, &out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FsFixture, UnsyncedChangesLostOnRemount) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("synced").ok());
  ASSERT_TRUE(SyncFs().ok());
  ASSERT_TRUE(fs->Create("unsynced").ok());
  Remount();  // "crash": drop in-memory state
  EXPECT_TRUE(fs->Exists("synced"));
  EXPECT_FALSE(fs->Exists("unsynced"));
}

TEST_F(FsFixture, RemoveFreesSpaceAfterSyncCommit) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("x").ok());
  std::vector<u8> data(1 * MiB, 7);
  ASSERT_TRUE(AppendSync("x", data).ok());
  u64 free_before = fs->bytes_free();
  ASSERT_TRUE(fs->Remove("x").ok());
  EXPECT_FALSE(fs->Exists("x"));
  // The extents are NOT immediately reusable: until a Sync commits
  // metadata without "x", the durable metadata still maps them, and
  // reusing them would corrupt a crash-recovered image.
  EXPECT_EQ(fs->bytes_free(), free_before);
  ASSERT_TRUE(SyncFs().ok());
  EXPECT_GT(fs->bytes_free(), free_before);
  // Now the freed extent is reused by a new file.
  ASSERT_TRUE(fs->Create("y").ok());
  ASSERT_TRUE(AppendSync("y", data).ok());
  std::vector<u8> out(data.size());
  ASSERT_TRUE(ReadSync("y", 0, &out).ok());
  EXPECT_EQ(out, data);
}

TEST_F(FsFixture, OutOfSpaceReported) {
  backend = std::make_unique<RamFsBackend>(&sim, 2 * MiB);
  FormatAndMount();
  ASSERT_TRUE(fs->Create("f").ok());
  std::vector<u8> chunk(1 * MiB, 1);
  ASSERT_TRUE(AppendSync("f", chunk).ok());
  // Second MiB cannot fit (superblock + meta + rounding overhead).
  Status st = AppendSync("f", chunk);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
}

TEST_F(FsFixture, RepeatedSyncsRecycleMetaExtents) {
  FormatAndMount();
  ASSERT_TRUE(fs->Create("f").ok());
  u64 free_start = fs->bytes_free();
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(SyncFs().ok());
  }
  // Metadata double-buffering keeps at most ~2 extents outstanding.
  EXPECT_GE(fs->bytes_free() + 2 * 256 * KiB + 4096, free_start);
  Remount();
  EXPECT_TRUE(fs->Exists("f"));
}

TEST_F(FsFixture, ManyFilesSurviveRemount) {
  FormatAndMount();
  Rng rng(9);
  std::map<std::string, std::vector<u8>> contents;
  for (int i = 0; i < 20; i++) {
    std::string name = "file-" + std::to_string(i);
    ASSERT_TRUE(fs->Create(name).ok());
    std::vector<u8> data(1000 + rng.NextBounded(5000));
    rng.Fill(data.data(), data.size());
    ASSERT_TRUE(AppendSync(name, data).ok());
    contents[name] = std::move(data);
  }
  ASSERT_TRUE(SyncFs().ok());
  Remount();
  EXPECT_EQ(fs->List().size(), 20u);
  for (const auto& [name, data] : contents) {
    std::vector<u8> out(data.size());
    ASSERT_TRUE(ReadSync(name, 0, &out).ok()) << name;
    EXPECT_EQ(out, data) << name;
  }
}

TEST_F(FsFixture, RandomCrashRecoveryMatchesSyncModel) {
  // Differential crash-consistency test. FlatFs's contract: file *data*
  // is written through to the backend immediately, file *metadata*
  // (names, sizes, extents) becomes durable at Sync. So after a crash
  // (remount), the filesystem must look exactly like the model captured
  // at the last Sync — files created/appended/removed since then roll
  // back, and nothing ever corrupts.
  FormatAndMount();
  Rng rng(31337);
  std::map<std::string, std::vector<u8>> live;    // what the app wrote
  std::map<std::string, std::vector<u8>> synced;  // state at last Sync
  int crashes = 0, syncs = 0;

  for (int op = 0; op < 300; op++) {
    std::string name = "f" + std::to_string(rng.NextBounded(12));
    switch (rng.NextBounded(10)) {
      case 0: {  // create
        Status st = fs->Create(name);
        EXPECT_EQ(st.ok(), !live.count(name)) << name << " op " << op;
        if (st.ok()) live[name] = {};
        break;
      }
      case 1: {  // remove
        Status st = fs->Remove(name);
        EXPECT_EQ(st.ok(), live.count(name) > 0) << name << " op " << op;
        live.erase(name);
        break;
      }
      case 2: {  // sync: live state becomes the durable state
        ASSERT_TRUE(SyncFs().ok());
        synced = live;
        syncs++;
        break;
      }
      case 3: {  // crash + remount: durable state comes back, exactly
        Remount();
        live = synced;
        crashes++;
        for (const auto& [fname, bytes] : synced) {
          ASSERT_EQ(fs->FileSize(fname), bytes.size())
              << fname << " after crash " << crashes;
          if (!bytes.empty()) {
            std::vector<u8> out(bytes.size());
            ASSERT_TRUE(ReadSync(fname, 0, &out).ok()) << fname;
            EXPECT_EQ(out, bytes) << fname << " corrupted by crash";
          }
        }
        // Files that only existed post-sync must be gone.
        EXPECT_EQ(fs->List().size(), synced.size());
        break;
      }
      default: {  // append
        if (!live.count(name)) {
          ASSERT_TRUE(fs->Create(name).ok());
          live[name] = {};
        }
        std::vector<u8> chunk(1 + rng.NextBounded(6000));
        rng.Fill(chunk.data(), chunk.size());
        ASSERT_TRUE(AppendSync(name, chunk).ok()) << name;
        auto& bytes = live[name];
        bytes.insert(bytes.end(), chunk.begin(), chunk.end());
      }
    }
  }
  EXPECT_GT(crashes, 5);  // the schedule actually exercised recovery
  EXPECT_GT(syncs, 5);

  // Final live verification (no crash): everything written must read
  // back regardless of sync state.
  for (const auto& [fname, bytes] : live) {
    ASSERT_EQ(fs->FileSize(fname), bytes.size()) << fname;
    if (bytes.empty()) continue;
    std::vector<u8> out(bytes.size());
    ASSERT_TRUE(ReadSync(fname, 0, &out).ok()) << fname;
    EXPECT_EQ(out, bytes) << fname;
  }
}

}  // namespace
}  // namespace nvmetro::fsx

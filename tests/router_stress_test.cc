// Router robustness under stress and failure: routing-table exhaustion,
// notify-channel overflow, UIF detach mid-flight, VCQ backpressure, long
// ring-wrap runs, and sustained mixed traffic with data verification.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/notify.h"
#include "crypto/xts.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"
#include "functions/encryptor_uif.h"
#include "functions/replicator_uif.h"
#include "mem/address_space.h"
#include "mem/arena.h"
#include "kblock/devices.h"
#include "nvme/prp.h"
#include "obs/obs.h"
#include "ssd/controller.h"
#include "uif/framework.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

struct StressFixture : ::testing::Test {
  obs::Observability obs;  // outlives every pointer-caching component
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<NvmetroHost> host;
  VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;

  void Build(const char* classifier_asm = nullptr, u32 queues = 2) {
    ssd::ControllerConfig cfg;
    cfg.capacity = 256 * MiB;
    cfg.obs = &obs;
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    virt::VmConfig vm_cfg;
    vm_cfg.memory_bytes = 64 * MiB;
    vm = std::make_unique<virt::Vm>(&sim, vm_cfg);
    NvmetroHost::Config hcfg;
    hcfg.obs = &obs;
    host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);
    vc = host->CreateController(vm.get(), {.vm_id = 1});
    auto prog = classifier_asm ? ebpf::Assemble(classifier_asm)
                               : functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok());
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    ASSERT_TRUE(driver->Init(queues).ok());
  }

  /// Tests that deliberately strand requests (undrained notify channel)
  /// opt out and assert the exact leak count themselves.
  bool expect_drained = true;

  /// Post-run bookkeeping invariants that must hold after ANY drained
  /// stress run, however hostile: every started request reached exactly
  /// one guest-visible outcome, every per-path send was matched by a
  /// completion, an abort or a timeout, and no trace span was left open.
  void TearDown() override {
    if (!host || !expect_drained) return;
    const obs::MetricsRegistry& m = obs.metrics();
    EXPECT_EQ(m.CounterValue("router.requests"),
              m.CounterValue("router.completed") +
                  m.CounterValue("router.failed"))
        << "a request vanished without completing or failing";
    for (const char* path : {"fast", "notify", "kernel"}) {
      std::string base = std::string("router.") + path;
      EXPECT_EQ(m.CounterValue(base + ".sends"),
                m.CounterValue(base + ".completions") +
                    m.CounterValue(base + ".aborts") +
                    m.CounterValue(base + ".timeouts"))
          << base << " send/completion imbalance";
    }
    EXPECT_EQ(obs.trace().open_requests(), 0u)
        << "trace spans leaked: a request never reached its VCQ";
  }
};

TEST_F(StressFixture, ThousandsOfRequestsWrapEveryRing) {
  Build();
  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  Rng rng(1);
  int completed = 0;
  int issued = 0;
  const int kTotal = 5'000;  // far beyond the 256-entry rings

  // Closed loop at a small depth so rings wrap dozens of times.
  std::function<void(u32)> issue = [&](u32 q) {
    if (issued >= kTotal) return;
    issued++;
    nvme::Sqe sqe = (issued % 2) ? nvme::MakeWrite(1, issued % 1000, 1, buf, 0)
                                 : nvme::MakeRead(1, issued % 1000, 1, buf, 0);
    driver->Submit(q, sqe, [&, q](NvmeStatus st, u32) {
      EXPECT_EQ(st, nvme::kStatusSuccess);
      completed++;
      issue(q);
    });
  };
  for (u32 q = 0; q < 2; q++) {
    for (int d = 0; d < 16; d++) issue(q);
  }
  sim.Run();
  EXPECT_EQ(completed, kTotal);
  EXPECT_EQ(vc->requests_completed(), static_cast<u64>(kTotal));
  EXPECT_EQ(vc->requests_failed(), 0u);
}

TEST_F(StressFixture, SteadyStateIoMakesZeroPoolAllocations) {
  // The router's pools (routing slabs, cid tables, free lists, batch
  // scratch) grow only during warmup; once the working set exists, ten
  // thousand more I/Os must not trigger a single pool growth event.
  // Under NVMETRO_ZERO_ALLOC_STRICT=1 (the fault-matrix CI job) a
  // violation aborts instead of merely failing the EXPECT below.
  Build(nullptr, 4);
  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  int completed = 0, issued = 0, target = 0;
  std::function<void(u32)> issue = [&](u32 q) {
    if (issued >= target) return;
    issued++;
    nvme::Sqe sqe = (issued % 2) ? nvme::MakeWrite(1, issued % 500, 1, buf, 0)
                                 : nvme::MakeRead(1, issued % 500, 1, buf, 0);
    driver->Submit(q, sqe, [&, q](NvmeStatus st, u32) {
      EXPECT_EQ(st, nvme::kStatusSuccess);
      completed++;
      issue(q);
    });
  };
  // Warmup: every shard reaches its steady working set (depth 16 per
  // queue bounds live slots and cids per shard).
  target = 2'000;
  for (u32 q = 0; q < 4; q++) {
    for (int d = 0; d < 16; d++) issue(q);
  }
  sim.Run();
  ASSERT_EQ(completed, 2'000);
  EXPECT_GT(mem::HotPathAllocs::count(), 0u) << "warmup grew no pool?";

  // Steady state: the same traffic shape, zero growth allowed.
  mem::HotPathAllocs::BeginSteadyState();
  target = 12'000;
  for (u32 q = 0; q < 4; q++) {
    for (int d = 0; d < 16; d++) issue(q);
  }
  sim.Run();
  mem::HotPathAllocs::EndSteadyState();
  EXPECT_EQ(completed, 12'000);
  EXPECT_EQ(mem::HotPathAllocs::steady_state_allocs(), 0u)
      << "hot path allocated in steady state";
}

TEST_F(StressFixture, SustainedRandomTrafficPreservesData) {
  Build();
  mem::GuestMemory& gm = vm->memory();
  Rng rng(7);
  std::map<u64, std::vector<u8>> model;  // lba -> expected block
  int outstanding = 0;
  int ops = 0;

  std::function<void()> step = [&]() {
    if (ops >= 600) return;
    ops++;
    u64 lba = rng.NextBounded(64);
    if (model.count(lba) && rng.NextBool(0.5)) {
      // Verify a previous write through a fresh guest buffer.
      u64 buf = *gm.AllocPages(1);
      outstanding++;
      driver->Submit(0, nvme::MakeRead(1, lba, 1, buf, 0),
                     [&, lba, buf](NvmeStatus st, u32) {
                       ASSERT_EQ(st, nvme::kStatusSuccess);
                       std::vector<u8> out(512);
                       ASSERT_TRUE(gm.Read(buf, out.data(), 512).ok());
                       EXPECT_EQ(out, model[lba]) << "lba " << lba;
                       gm.FreePages(buf, 1);
                       outstanding--;
                       step();
                     });
    } else {
      std::vector<u8> data(512);
      rng.Fill(data.data(), data.size());
      u64 buf = *gm.AllocPages(1);
      ASSERT_TRUE(gm.Write(buf, data.data(), 512).ok());
      model[lba] = data;
      outstanding++;
      driver->Submit(0, nvme::MakeWrite(1, lba, 1, buf, 0),
                     [&, buf](NvmeStatus st, u32) {
                       ASSERT_EQ(st, nvme::kStatusSuccess);
                       gm.FreePages(buf, 1);
                       outstanding--;
                       step();
                     });
    }
  };
  // Writes must be ordered per LBA for the model to hold: issue serially.
  step();
  sim.Run();
  EXPECT_EQ(ops, 600);
  EXPECT_EQ(outstanding, 0);
}

TEST_F(StressFixture, NotifyChannelOverflowFailsRequestsGracefully) {
  // Classifier sends everything to the UIF, but the channel is tiny and
  // nobody drains it: the router must fail the overflow instead of
  // wedging.
  const char* kAllToUif =
      "  mov r0, 0x240000\n"  // SEND_NQ | WILL_COMPLETE_NQ
      "  exit\n";
  Build(kAllToUif);
  core::NotifyChannel tiny(4);
  vc->AttachUif(&tiny);

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  int ok = 0, failed = 0;
  for (int i = 0; i < 16; i++) {
    driver->Submit(0, nvme::MakeWrite(1, i, 1, buf, 0),
                   [&](NvmeStatus st, u32) {
                     if (nvme::StatusOk(st)) {
                       ok++;
                     } else {
                       failed++;
                     }
                   });
  }
  sim.Run();
  // 3 entries fit (ring keeps one slot free); the rest fail fast.
  EXPECT_EQ(failed, 13);
  EXPECT_EQ(vc->requests_failed(), 13u);
  // Nobody drains the tiny channel, so the 3 accepted requests are stuck
  // — exactly what the open-span leak detector exists to expose.
  expect_drained = false;
  EXPECT_EQ(obs.trace().open_requests(), 3u);
  EXPECT_EQ(obs.metrics().CounterValue("router.notify.sends"), 16u);
  EXPECT_EQ(obs.metrics().CounterValue("router.notify.aborts"), 13u);
}

TEST_F(StressFixture, MissingUifFailsNotifyRequests) {
  const char* kAllToUif =
      "  mov r0, 0x240000\n"
      "  exit\n";
  Build(kAllToUif);  // no AttachUif at all
  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  NvmeStatus status = 0;
  driver->Submit(0, nvme::MakeWrite(1, 0, 1, buf, 0),
                 [&](NvmeStatus st, u32) { status = st; });
  sim.Run();
  EXPECT_EQ(status,
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInternalError));
}

TEST_F(StressFixture, UifDetachFailsSubsequentRequests) {
  Build(functions::EncryptorClassifierAsm());
  core::NotifyChannel channel;
  uif::UifHost uif_host(&sim, "enc");
  auto enc_dev = std::make_unique<kblock::NvmeBlockDevice>(&sim, phys.get(),
                                                           &dma, 1);
  auto enc = functions::EncryptorUif::Create(&sim, enc_dev.get(),
                                             std::vector<u8>(64, 1).data(),
                                             64);
  ASSERT_TRUE(enc.ok());
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), enc->get());
  uif_host.Start();

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  NvmeStatus status = 0xFFF;
  driver->Submit(0, nvme::MakeWrite(1, 0, 1, buf, 0),
                 [&](NvmeStatus st, u32) { status = st; });
  sim.Run();
  EXPECT_EQ(status, nvme::kStatusSuccess);

  // Live function removal (paper §III-B): new writes fail cleanly, reads
  // still flow to the device.
  vc->DetachUif();
  driver->Submit(0, nvme::MakeWrite(1, 1, 1, buf, 0),
                 [&](NvmeStatus st, u32) { status = st; });
  sim.Run();
  EXPECT_EQ(status,
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInternalError));
}

TEST_F(StressFixture, UifDetachMidFlightFailsInflightRequests) {
  // Regression: detaching the UIF while notify-path requests are in
  // flight used to strand them — the routing slot leaked and the guest
  // never saw a CQE. A detach must now drain every in-flight notify leg
  // with Abort Requested.
  const char* kAllToUif =
      "  mov r0, 0x240000\n"  // SEND_NQ | WILL_COMPLETE_NQ
      "  exit\n";
  Build(kAllToUif);
  core::NotifyChannel channel;
  uif::UifHost uif_host(&sim, "slow");
  struct SlowUif : uif::UifBase {
    bool work(const nvme::Sqe&, u32 tag, u16& status) override {
      function()->host()->Async(200 * kUs, [fn = function(), tag] {
        fn->Respond(tag, nvme::kStatusSuccess);
      });
      (void)status;
      return true;
    }
  } slow;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &slow);
  uif_host.Start();

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  int done = 0, aborted = 0;
  for (int i = 0; i < 8; i++) {
    driver->Submit(0, nvme::MakeWrite(1, i, 1, buf, 0),
                   [&](NvmeStatus st, u32) {
                     done++;
                     if (st == nvme::MakeStatus(nvme::kSctGeneric,
                                                nvme::kScAbortRequested)) {
                       aborted++;
                     }
                   });
  }
  // Detach while every request sits between NSQ push and the (slow) UIF
  // response.
  sim.ScheduleAfter(50 * kUs, [&] {
    EXPECT_EQ(obs.trace().open_requests(), 8u) << "test raced its setup";
    vc->DetachUif();
  });
  sim.Run();
  EXPECT_EQ(done, 8) << "a detached notify request hung";
  EXPECT_EQ(aborted, 8);
  EXPECT_EQ(vc->requests_failed(), 8u);
  // Every leg was settled as an administrative abort, and the late UIF
  // responses (the Async timers still fire) fell on the stale-tag guard.
  EXPECT_EQ(obs.metrics().CounterValue("router.notify.sends"), 8u);
  EXPECT_EQ(obs.metrics().CounterValue("router.notify.aborts"), 8u);
  EXPECT_EQ(obs.metrics().CounterValue("router.notify.completions"), 0u);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

// --- Classifier hot-swap under load ------------------------------------------------
//
// InstallClassifier mid-flight (paper §III-B live function replacement):
// requests already dispatched keep their recorded routing state and
// complete through their old paths; requests arriving after the swap run
// only the new program. Pinned by golden traces on all three paths.

/// New program after each swap: complete everything inline with success.
constexpr const char* kInlineComplete =
    "  mov r0, 0x10000\n"  // COMPLETE | status 0
    "  exit\n";
constexpr const char* kNewGolden =
    "VSQ_POP > CLASSIFIER(VSQ) > VCQ_POST > IRQ_INJECT";

TEST_F(StressFixture, HotSwapPreservesFastPathInflight) {
  Build();  // passthrough: SEND_HQ | WILL_COMPLETE_HQ
  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  int done = 0;
  for (int i = 0; i < 4; i++) {
    driver->Submit(0, nvme::MakeRead(1, i * 8, 8, buf, 0),
                   [&](NvmeStatus st, u32) {
                     EXPECT_EQ(st, nvme::kStatusSuccess);
                     done++;
                   });
  }
  sim.ScheduleAfter(20 * kUs, [&] {
    EXPECT_EQ(obs.trace().open_requests(), 4u) << "test raced its setup";
    ASSERT_TRUE(
        vc->InstallClassifier(*ebpf::Assemble(kInlineComplete)).ok());
    for (int i = 0; i < 2; i++) {
      driver->Submit(0, nvme::MakeRead(1, i * 8, 8, buf, 0),
                     [&](NvmeStatus st, u32) {
                       EXPECT_EQ(st, nvme::kStatusSuccess);
                       done++;
                     });
    }
  });
  sim.Run();
  EXPECT_EQ(done, 6);
  const obs::TraceRecorder& tr = obs.trace();
  for (u64 id = 1; id <= 4; id++) {
    EXPECT_EQ(tr.PathString(id),
              "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE > "
              "VCQ_POST > IRQ_INJECT")
        << "pre-swap req " << id << " lost its routing state";
  }
  for (u64 id = 5; id <= 6; id++) {
    EXPECT_EQ(tr.PathString(id), kNewGolden)
        << "post-swap req " << id << " did not run the new program";
  }
  EXPECT_EQ(obs.metrics().CounterValue("router.fast.sends"), 4u);
}

TEST_F(StressFixture, HotSwapPreservesNotifyPathInflight) {
  const char* kAllToUif =
      "  mov r0, 0x240000\n"
      "  exit\n";
  Build(kAllToUif);
  core::NotifyChannel channel;
  uif::UifHostParams uif_params;
  uif_params.obs = &obs;  // UIF_WORK / UIF_RESPOND spans in the golden
  uif::UifHost uif_host(&sim, "slow", uif_params);
  struct SlowUif : uif::UifBase {
    bool work(const nvme::Sqe&, u32 tag, u16& status) override {
      calls++;
      function()->host()->Async(200 * kUs, [fn = function(), tag] {
        fn->Respond(tag, nvme::kStatusSuccess);
      });
      (void)status;
      return true;
    }
    int calls = 0;
  } slow;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &slow);
  uif_host.Start();

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  SimTime old_done = 0, new_done = 0;
  int done = 0;
  for (int i = 0; i < 4; i++) {
    driver->Submit(0, nvme::MakeWrite(1, i, 1, buf, 0),
                   [&](NvmeStatus st, u32) {
                     EXPECT_EQ(st, nvme::kStatusSuccess);
                     done++;
                     old_done = sim.now();
                   });
  }
  sim.ScheduleAfter(50 * kUs, [&] {
    EXPECT_EQ(obs.trace().open_requests(), 4u) << "test raced its setup";
    ASSERT_TRUE(
        vc->InstallClassifier(*ebpf::Assemble(kInlineComplete)).ok());
    for (int i = 0; i < 2; i++) {
      driver->Submit(0, nvme::MakeWrite(1, 8 + i, 1, buf, 0),
                     [&](NvmeStatus st, u32) {
                       EXPECT_EQ(st, nvme::kStatusSuccess);
                       done++;
                       new_done = sim.now();
                     });
    }
  });
  sim.Run();
  EXPECT_EQ(done, 6);
  // New requests never reached the UIF and finished before the slow old
  // legs — the new program took effect immediately.
  EXPECT_EQ(slow.calls, 4);
  EXPECT_LT(new_done, old_done);
  const obs::TraceRecorder& tr = obs.trace();
  for (u64 id = 1; id <= 4; id++) {
    EXPECT_EQ(tr.PathString(id),
              "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_NOTIFY > UIF_WORK > "
              "UIF_RESPOND > NCQ_COMPLETE > VCQ_POST > IRQ_INJECT")
        << "pre-swap req " << id << " lost its notify routing state";
  }
  for (u64 id = 5; id <= 6; id++) {
    EXPECT_EQ(tr.PathString(id), kNewGolden) << "post-swap req " << id;
  }
}

TEST_F(StressFixture, HotSwapPreservesKernelPathInflight) {
  const char* kAllToKernel =
      "  mov r0, 0x480000\n"  // SEND_KQ | WILL_COMPLETE_KQ
      "  exit\n";
  Build(kAllToKernel);
  auto kdev = std::make_unique<kblock::NvmeBlockDevice>(&sim, phys.get(),
                                                        &dma, 1);
  vc->AttachKernelDevice(kdev.get());

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  int done = 0;
  for (int i = 0; i < 4; i++) {
    driver->Submit(0, nvme::MakeRead(1, i * 8, 8, buf, 0),
                   [&](NvmeStatus st, u32) {
                     EXPECT_EQ(st, nvme::kStatusSuccess);
                     done++;
                   });
  }
  sim.ScheduleAfter(10 * kUs, [&] {
    EXPECT_EQ(obs.trace().open_requests(), 4u) << "test raced its setup";
    ASSERT_TRUE(
        vc->InstallClassifier(*ebpf::Assemble(kInlineComplete)).ok());
    for (int i = 0; i < 2; i++) {
      driver->Submit(0, nvme::MakeRead(1, i * 8, 8, buf, 0),
                     [&](NvmeStatus st, u32) {
                       EXPECT_EQ(st, nvme::kStatusSuccess);
                       done++;
                     });
    }
  });
  sim.Run();
  EXPECT_EQ(done, 6);
  const obs::TraceRecorder& tr = obs.trace();
  for (u64 id = 1; id <= 4; id++) {
    EXPECT_EQ(tr.PathString(id),
              "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_KERNEL > KBIO_DONE > "
              "KCQ_COMPLETE > VCQ_POST > IRQ_INJECT")
        << "pre-swap req " << id << " lost its kernel routing state";
  }
  for (u64 id = 5; id <= 6; id++) {
    EXPECT_EQ(tr.PathString(id), kNewGolden) << "post-swap req " << id;
  }
  EXPECT_EQ(obs.metrics().CounterValue("router.kernel.sends"), 4u);
}

TEST_F(StressFixture, RoutingTableExhaustionRecovers) {
  // A classifier that never completes anything (sends to the device with
  // WAIT_FOR_HOOK and installs no completion) would leak entries; instead
  // we exhaust the table legitimately with a huge flood and verify the
  // router keeps serving after it drains.
  Build();
  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  int done = 0, busy = 0;
  // Push far more than the 256-entry guest ring in one burst. The guest
  // driver reports ring-full as AbortRequested; everything accepted must
  // complete.
  for (int i = 0; i < 1'000; i++) {
    driver->Submit(0, nvme::MakeRead(1, i % 100, 1, buf, 0),
                   [&](NvmeStatus st, u32) {
                     if (nvme::StatusOk(st)) {
                       done++;
                     } else {
                       busy++;
                     }
                   });
  }
  sim.Run();
  EXPECT_EQ(done + busy, 1'000);
  EXPECT_GT(done, 200);
  // The router is still healthy afterwards.
  NvmeStatus status = 0xFFF;
  driver->Submit(0, nvme::MakeRead(1, 0, 1, buf, 0),
                 [&](NvmeStatus st, u32) { status = st; });
  sim.Run();
  EXPECT_EQ(status, nvme::kStatusSuccess);
}

TEST_F(StressFixture, MultiTargetFanoutUnderLoad) {
  // Replication-style fan-out for hundreds of writes with a slow UIF leg.
  Build(functions::ReplicatorClassifierAsm());
  core::NotifyChannel channel;
  uif::UifHost uif_host(&sim, "repl");
  // A do-nothing-slow UIF: respond after consuming the request.
  struct SlowUif : uif::UifBase {
    bool work(const nvme::Sqe&, u32 tag, u16& status) override {
      calls++;
      function()->host()->Async(200 * kUs, [fn = function(), tag] {
        fn->Respond(tag, nvme::kStatusSuccess);
      });
      (void)status;
      return true;
    }
    int calls = 0;
  } slow;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &slow);
  uif_host.Start();

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  int done = 0;
  SimTime first_done = 0;
  for (int i = 0; i < 100; i++) {
    driver->Submit(0, nvme::MakeWrite(1, i, 1, buf, 0),
                   [&](NvmeStatus st, u32) {
                     EXPECT_EQ(st, nvme::kStatusSuccess);
                     if (done++ == 0) first_done = sim.now();
                   });
  }
  sim.Run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(slow.calls, 100);
  // Completion required BOTH legs: nothing finished before the slow leg.
  EXPECT_GE(first_done, 200 * kUs);
  EXPECT_EQ(vc->fast_path_sends(), 100u);
  EXPECT_EQ(vc->notify_path_sends(), 100u);
}

TEST_F(StressFixture, DeviceErrorsUnderEncryptionLoad) {
  Build(functions::EncryptorClassifierAsm());
  core::NotifyChannel channel;
  uif::UifHost uif_host(&sim, "enc");
  auto enc_dev = std::make_unique<kblock::NvmeBlockDevice>(&sim, phys.get(),
                                                           &dma, 1);
  std::vector<u8> key(64, 9);
  auto enc = functions::EncryptorUif::Create(&sim, enc_dev.get(), key.data(),
                                             key.size());
  ASSERT_TRUE(enc.ok());
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), enc->get());
  uif_host.Start();

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  // Seed some data.
  for (int i = 0; i < 8; i++) {
    NvmeStatus st = 0xFFF;
    driver->Submit(0, nvme::MakeWrite(1, i, 1, buf, 0),
                   [&](NvmeStatus s, u32) { st = s; });
    sim.Run();
    ASSERT_EQ(st, nvme::kStatusSuccess);
  }
  // Every 3rd read fails at the device; the classifier's HOOK_HCQ error
  // branch must forward each failure and the rest must decrypt fine.
  int ok = 0, failed = 0;
  for (int i = 0; i < 30; i++) {
    if (i % 3 == 0) {
      phys->InjectError(1,
                        nvme::MakeStatus(nvme::kSctMediaError,
                                         nvme::kScUnrecoveredRead),
                        1);
    }
    NvmeStatus st = 0xFFF;
    driver->Submit(0, nvme::MakeRead(1, i % 8, 1, buf, 0),
                   [&](NvmeStatus s, u32) { st = s; });
    sim.Run();
    if (nvme::StatusOk(st)) {
      ok++;
    } else {
      EXPECT_EQ(st, nvme::MakeStatus(nvme::kSctMediaError,
                                     nvme::kScUnrecoveredRead));
      failed++;
    }
  }
  EXPECT_EQ(failed, 10);
  EXPECT_EQ(ok, 20);
}

// --- Heterogeneous functions on one router -----------------------------------------

TEST(HeterogeneousFunctions, ThreeVmsThreeFunctionsOneRouterOneUifProcess) {
  // The full §III composition in one host: three VMs with three different
  // storage functions (encryption, replication, QoS rate limiting) share
  // one router worker, and the two UIF-backed functions share one UIF
  // process (§III-D multi-VM hosting). Each function's semantics must
  // hold with all three running concurrently.
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg;
  cfg.capacity = 192 * MiB;
  cfg.obs = &obs;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  NvmetroHost host(&sim, &phys, hcfg);  // one shared router worker

  const u64 kPartNlb = 64 * 1024;  // 32 MiB per VM at 512B LBAs
  auto make_vm = [&](const char* name) {
    return std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.name = name, .memory_bytes = 32 * MiB,
                             .vcpus = 1});
  };
  auto vm_enc = make_vm("enc");
  auto vm_rep = make_vm("rep");
  auto vm_qos = make_vm("qos");
  auto* vc_enc = host.CreateController(
      vm_enc.get(), {.vm_id = 1, .part_first_lba = 0, .part_nlb = kPartNlb});
  auto* vc_rep = host.CreateController(
      vm_rep.get(),
      {.vm_id = 2, .part_first_lba = kPartNlb, .part_nlb = kPartNlb});
  auto* vc_qos = host.CreateController(
      vm_qos.get(),
      {.vm_id = 3, .part_first_lba = 2 * kPartNlb, .part_nlb = kPartNlb});
  ASSERT_TRUE(
      vc_enc->InstallClassifier(*functions::EncryptorClassifier()).ok());
  ASSERT_TRUE(
      vc_rep->InstallClassifier(*functions::ReplicatorClassifier()).ok());
  auto qos_map = functions::MakeQosMap(/*rate=*/1'000, /*burst=*/4);
  ASSERT_TRUE(
      vc_qos->InstallClassifier(*functions::RateLimitClassifier(qos_map))
          .ok());

  // One UIF process hosts both the encryptor and the replicator.
  uif::UifHostParams uif_params;
  uif_params.obs = &obs;
  uif::UifHost uif_host(&sim, "multi-fn", uif_params);
  NotifyChannel ch_enc, ch_rep;
  vc_enc->AttachUif(&ch_enc);
  vc_rep->AttachUif(&ch_rep);
  auto enc_dev =
      std::make_unique<kblock::NvmeBlockDevice>(&sim, &phys, &dma, 1);
  std::vector<u8> key(64, 0x2A);
  auto enc = functions::EncryptorUif::Create(&sim, enc_dev.get(), key.data(),
                                             key.size());
  ASSERT_TRUE(enc.ok());
  kblock::RamBlockDevice secondary(&sim, 32 * MiB);
  functions::ReplicatorUif repl(&sim, &secondary);
  uif_host.AddFunction(&ch_enc, vm_enc.get(), enc->get());
  uif_host.AddFunction(&ch_rep, vm_rep.get(), &repl);
  host.Start();
  uif_host.Start();

  virt::GuestNvmeDriver drv_enc(vm_enc.get(), vc_enc);
  virt::GuestNvmeDriver drv_rep(vm_rep.get(), vc_rep);
  virt::GuestNvmeDriver drv_qos(vm_qos.get(), vc_qos);
  ASSERT_TRUE(drv_enc.Init(1).ok());
  ASSERT_TRUE(drv_rep.Init(1).ok());
  ASSERT_TRUE(drv_qos.Init(1).ok());

  Rng rng(77);
  std::vector<u8> enc_data(4096), rep_data(4096);
  rng.Fill(enc_data.data(), enc_data.size());
  rng.Fill(rep_data.data(), rep_data.size());

  mem::GuestMemory& gm_enc = vm_enc->memory();
  mem::GuestMemory& gm_rep = vm_rep->memory();
  mem::GuestMemory& gm_qos = vm_qos->memory();
  u64 buf_enc = *gm_enc.AllocPages(1);
  u64 buf_rep = *gm_rep.AllocPages(1);
  u64 buf_qos = *gm_qos.AllocPages(1);
  ASSERT_TRUE(gm_enc.Write(buf_enc, enc_data.data(), enc_data.size()).ok());
  ASSERT_TRUE(gm_rep.Write(buf_rep, rep_data.data(), rep_data.size()).ok());

  // Fire everything before running the clock so all three VMs interleave
  // on the shared worker: one encrypted write, one replicated write, and
  // a QoS burst of 12 (bucket of 4).
  NvmeStatus st_enc = 0xFFF, st_rep = 0xFFF;
  drv_enc.Submit(0, nvme::MakeWrite(1, 8, 8, buf_enc, 0),
                 [&](NvmeStatus st, u32) { st_enc = st; });
  drv_rep.Submit(0, nvme::MakeWrite(1, 16, 8, buf_rep, 0),
                 [&](NvmeStatus st, u32) { st_rep = st; });
  int qos_ok = 0, qos_throttled = 0;
  for (int i = 0; i < 12; i++) {
    drv_qos.Submit(0, nvme::MakeRead(1, i, 1, buf_qos, 0),
                   [&](NvmeStatus st, u32) {
                     if (nvme::StatusOk(st)) {
                       qos_ok++;
                     } else {
                       qos_throttled++;
                     }
                   });
  }
  sim.Run();

  // Encryption semantics: success, plaintext nowhere on the media, exact
  // aes-xts-plain64 ciphertext at the translated location (partition 0).
  EXPECT_EQ(st_enc, nvme::kStatusSuccess);
  EXPECT_FALSE(phys.store().Matches(8 * 512, enc_data.data(),
                                    enc_data.size()));
  auto xts = crypto::XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> expect_ct(enc_data.size());
  xts->EncryptRange(8, 512, enc_data.data(), expect_ct.data(),
                    enc_data.size());
  EXPECT_TRUE(
      phys.store().Matches(8 * 512, expect_ct.data(), expect_ct.size()));

  // Replication semantics: plaintext on the primary at the *translated*
  // partition offset AND on the secondary at the guest-relative sector.
  EXPECT_EQ(st_rep, nvme::kStatusSuccess);
  EXPECT_TRUE(phys.store().Matches((kPartNlb + 16) * 512, rep_data.data(),
                                   rep_data.size()));
  EXPECT_TRUE(
      secondary.store().Matches(16 * 512, rep_data.data(), rep_data.size()));
  EXPECT_EQ(repl.writes_replicated(), 1u);

  // QoS semantics: the burst of 4 admitted, the rest throttled — and the
  // other VMs' traffic was not throttled by VM3's bucket.
  EXPECT_EQ(qos_ok + qos_throttled, 12);
  EXPECT_GE(qos_ok, 4);
  EXPECT_GE(qos_throttled, 6);

  // Round-trip reads through the full stacks still work afterwards.
  std::vector<u8> back(4096, 0);
  NvmeStatus st = 0xFFF;
  u64 out_enc = *gm_enc.AllocPages(1);
  drv_enc.Submit(0, nvme::MakeRead(1, 8, 8, out_enc, 0),
                 [&](NvmeStatus s, u32) { st = s; });
  sim.Run();
  ASSERT_EQ(st, nvme::kStatusSuccess);
  ASSERT_TRUE(gm_enc.Read(out_enc, back.data(), back.size()).ok());
  EXPECT_EQ(back, enc_data);  // decrypted back to plaintext

  // Observability invariants across the three concurrent stacks: every
  // request (including the throttled ones) reached one outcome, and no
  // trace span was left open anywhere.
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.requests"),
            m.CounterValue("router.completed") +
                m.CounterValue("router.failed"));
  EXPECT_EQ(m.CounterValue("uif.requests"), m.CounterValue("uif.responses"));
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

}  // namespace
}  // namespace nvmetro::core

// Observability layer tests: metrics-registry semantics, trace-ring
// mechanics, and — the point of the layer — golden traces pinning the
// exact lifecycle-hook sequence of every routing path. The simulation is
// deterministic, so these strings are bit-stable: any change to routing
// order shows up here as a diff, not as a silent regression.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <cstring>

#include "common/histogram.h"
#include "core/notify.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"
#include "functions/replicator_uif.h"
#include "kblock/devices.h"
#include "kv/pushdown.h"
#include "mem/address_space.h"
#include "nvme/prp.h"
#include "obs/obs.h"
#include "obs/span.h"
#include "ssd/controller.h"
#include "uif/framework.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::obs {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, CounterFindOrCreateStablePointer) {
  MetricsRegistry m;
  Counter* a = m.GetCounter("router.requests");
  Counter* b = m.GetCounter("router.requests");
  EXPECT_EQ(a, b);  // find-or-create, not create-duplicate
  a->Inc();
  a->Inc(41);
  EXPECT_EQ(b->value(), 42u);
  EXPECT_EQ(m.CounterValue("router.requests"), 42u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(MetricsRegistryTest, CountersAreMonotonic) {
  MetricsRegistry m;
  Counter* c = m.GetCounter("c");
  u64 prev = 0;
  for (int i = 0; i < 100; i++) {
    c->Inc(i % 3);
    EXPECT_GE(c->value(), prev);
    prev = c->value();
  }
}

TEST(MetricsRegistryTest, FindOnlyNeverCreates) {
  MetricsRegistry m;
  EXPECT_EQ(m.FindCounter("nope"), nullptr);
  EXPECT_EQ(m.FindGauge("nope"), nullptr);
  EXPECT_EQ(m.FindHistogram("nope"), nullptr);
  EXPECT_EQ(m.CounterValue("nope"), 0u);  // absent reads as zero
  EXPECT_EQ(m.size(), 0u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry m;
  Gauge* g = m.GetGauge("queue.depth");
  g->Set(5);
  g->Add(-7);
  EXPECT_EQ(g->value(), -2);  // may dip negative transiently
  EXPECT_EQ(m.FindGauge("queue.depth")->value(), -2);
  EXPECT_EQ(g->max(), 5);  // the watermark survives the dip
  g->Add(9);
  EXPECT_EQ(g->value(), 7);
  EXPECT_EQ(g->max(), 7);  // Add() moves the watermark too
}

TEST(MetricsRegistryTest, GaugeWatermarkNeverNegative) {
  MetricsRegistry m;
  Gauge* g = m.GetGauge("depth");
  g->Set(-4);
  EXPECT_EQ(g->value(), -4);
  EXPECT_EQ(g->max(), 0);  // never went above its implicit start of 0
  m.Reset();
  g->Set(3);
  g->Set(1);
  EXPECT_EQ(g->max(), 3);  // reset cleared the old watermark
}

TEST(MetricsRegistryTest, HistogramMatchesCommonHistogram) {
  // The registry must hand out plain common/histogram instances: same
  // samples -> identical quantiles as a standalone LatencyHistogram.
  MetricsRegistry m;
  LatencyHistogram* h = m.GetHistogram("router.latency_ns");
  LatencyHistogram ref;
  for (u64 v = 1; v <= 10'000; v += 7) {
    h->Record(v);
    ref.Record(v);
  }
  EXPECT_EQ(h->count(), ref.count());
  EXPECT_EQ(h->Median(), ref.Median());
  EXPECT_EQ(h->P99(), ref.P99());
  EXPECT_EQ(h->max(), ref.max());
  EXPECT_DOUBLE_EQ(h->Mean(), ref.Mean());
}

TEST(MetricsRegistryTest, SnapshotIsIsolatedFromLaterMutation) {
  MetricsRegistry m;
  Counter* c = m.GetCounter("a.count");
  Gauge* g = m.GetGauge("a.level");
  LatencyHistogram* h = m.GetHistogram("a.lat");
  c->Inc(3);
  g->Set(9);
  h->Record(1000);
  MetricsRegistry::Snapshot snap = m.TakeSnapshot();
  c->Inc(100);
  g->Set(-1);
  h->Record(5'000'000);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "a.count");
  EXPECT_EQ(snap.counters[0].second, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "a.level");
  EXPECT_EQ(snap.gauges[0].value, 9);
  EXPECT_EQ(snap.gauges[0].max, 9);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_LT(snap.histograms[0].max, 5'000'000u);
}

TEST(MetricsRegistryTest, ExportsTextAndJson) {
  MetricsRegistry m;
  m.GetCounter("b.count")->Inc(7);
  m.GetGauge("b.level")->Set(2);
  m.GetHistogram("b.lat")->Record(500);
  std::string text = m.ToText();
  EXPECT_NE(text.find("b.count"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  std::string json = m.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"b.count\":7"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // one line for tooling
}

// --- JSON validity ------------------------------------------------------------
//
// A minimal strict JSON parser (objects, strings with escapes, numbers):
// enough to round-trip MetricsRegistry::ToJson and reject anything a real
// tool would reject — trailing commas, unescaped control characters, bare
// NaN. Returns the parsed value so tests can assert on content, not just
// shape.

struct JsonValue {
  enum class Kind { kObject, kNumber, kString } kind = Kind::kNumber;
  double num = 0;
  std::string str;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    pos_++;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      pos_++;
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        pos_++;
        continue;  // strict: the next token must be a key, not '}'
      }
      if (s_[pos_] == '}') {
        pos_++;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    pos_++;
    out->clear();
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        pos_++;
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid JSON
      if (c == '\\') {
        pos_++;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            unsigned int cp = 0;
            for (int i = 1; i <= 4; i++) {
              char h = s_[pos_ + i];
              cp <<= 4;
              if (h >= '0' && h <= '9') {
                cp |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                cp |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                cp |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            if (cp > 0xff) return false;  // names here are byte strings
            out->push_back(static_cast<char>(cp));
            pos_ += 4;
            break;
          }
          default:
            return false;
        }
        pos_++;
        continue;
      }
      out->push_back(static_cast<char>(c));
      pos_++;
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    usize start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') pos_++;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return false;  // also rejects NaN / inf / true
    out->kind = JsonValue::Kind::kNumber;
    try {
      out->num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& s_;
  usize pos_ = 0;
};

TEST(MetricsRegistryTest, JsonExportRoundTripsThroughStrictParser) {
  MetricsRegistry m;
  m.GetCounter("router.requests")->Inc(12345);
  m.GetGauge("router.inflight")->Set(-3);
  m.GetHistogram("router.lat")->Record(777);
  JsonValue root;
  ASSERT_TRUE(JsonParser(m.ToJson()).Parse(&root)) << m.ToJson();
  ASSERT_EQ(root.kind, JsonValue::Kind::kObject);
  ASSERT_EQ(root.object.count("counters"), 1u);
  ASSERT_EQ(root.object.count("gauges"), 1u);
  ASSERT_EQ(root.object.count("histograms"), 1u);
  EXPECT_EQ(root.object["counters"].object["router.requests"].num, 12345.0);
  JsonValue& g = root.object["gauges"].object["router.inflight"];
  ASSERT_EQ(g.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(g.object["value"].num, -3.0);
  EXPECT_EQ(g.object["max"].num, 0.0);  // never went positive
  JsonValue& h = root.object["histograms"].object["router.lat"];
  ASSERT_EQ(h.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(h.object["count"].num, 1.0);
  EXPECT_EQ(h.object["p50_ns"].num, 777.0);
  EXPECT_EQ(h.object["p999_ns"].num, 777.0);
  EXPECT_EQ(h.object["sum_ns"].num, 777.0);
}

TEST(MetricsRegistryTest, JsonExportEscapesHostileNames) {
  MetricsRegistry m;
  const std::string hostile = "evil\"name\\with\nnewline\tand\x01ctrl";
  m.GetCounter(hostile)->Inc(1);
  m.GetCounter("plain.name")->Inc(2);
  std::string json = m.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);  // still one line
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  // The escaped name decodes back to the original bytes.
  ASSERT_EQ(root.object["counters"].object.count(hostile), 1u) << json;
  EXPECT_EQ(root.object["counters"].object[hostile].num, 1.0);
  EXPECT_EQ(root.object["counters"].object["plain.name"].num, 2.0);
}

TEST(MetricsRegistryTest, JsonExportEmptyAndEmptyNameAreValid) {
  MetricsRegistry empty;
  JsonValue root;
  ASSERT_TRUE(JsonParser(empty.ToJson()).Parse(&root));
  EXPECT_TRUE(root.object["counters"].object.empty());

  MetricsRegistry m;
  m.GetCounter("")->Inc(9);  // degenerate but must not corrupt the export
  m.GetHistogram("h");       // empty histogram: mean must print as 0.0
  JsonValue root2;
  ASSERT_TRUE(JsonParser(m.ToJson()).Parse(&root2)) << m.ToJson();
  EXPECT_EQ(root2.object["counters"].object[""].num, 9.0);
  EXPECT_EQ(root2.object["histograms"].object["h"].object["mean_ns"].num,
            0.0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsPointers) {
  MetricsRegistry m;
  Counter* c = m.GetCounter("c");
  LatencyHistogram* h = m.GetHistogram("h");
  c->Inc(5);
  h->Record(100);
  m.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(m.GetCounter("c"), c);  // same object, still registered
  c->Inc();
  EXPECT_EQ(m.CounterValue("c"), 1u);
}

// --- TraceRecorder -----------------------------------------------------------

TraceEvent Ev(u64 req, SimTime t, SpanKind kind) {
  TraceEvent ev;
  ev.req_id = req;
  ev.t = t;
  ev.kind = kind;
  return ev;
}

TEST(TraceRecorderTest, RingWrapsAndKeepsNewest) {
  TraceRecorder tr(4);
  for (u64 i = 1; i <= 10; i++) tr.Record(Ev(i, i * 10, SpanKind::kVsqPop));
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.total_recorded(), 10u);
  std::vector<TraceEvent> evs = tr.Events();
  ASSERT_EQ(evs.size(), 4u);
  // Chronological, oldest retained first: events 7..10 survive.
  for (u64 i = 0; i < 4; i++) EXPECT_EQ(evs[i].req_id, 7 + i);
  // Overwritten requests have no retained events.
  EXPECT_TRUE(tr.EventsFor(1).empty());
  EXPECT_EQ(tr.EventsFor(9).size(), 1u);
}

TEST(TraceRecorderTest, OpenCloseAccountingDetectsLeaks) {
  TraceRecorder tr(16);
  u64 a = tr.BeginRequest();
  u64 b = tr.BeginRequest();
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);  // ids are monotonic from 1
  EXPECT_EQ(tr.open_requests(), 2u);
  tr.EndRequest();
  EXPECT_EQ(tr.open_requests(), 1u);  // one span still open -> a leak
  tr.EndRequest();
  EXPECT_EQ(tr.open_requests(), 0u);
  EXPECT_EQ(tr.requests_opened(), 2u);
  EXPECT_EQ(tr.requests_closed(), 2u);
}

TEST(TraceRecorderTest, PathStringJoinsHookNames) {
  TraceRecorder tr(16);
  u64 id = tr.BeginRequest();
  tr.Record(Ev(id, 100, SpanKind::kVsqPop));
  TraceEvent cls = Ev(id, 110, SpanKind::kClassifier);
  cls.hook = 0;  // kHookVsq
  cls.aux = 0x120000;
  tr.Record(cls);
  tr.Record(Ev(id, 120, SpanKind::kDispatchFast));
  tr.Record(Ev(999, 125, SpanKind::kVsqPop));  // other request interleaved
  tr.Record(Ev(id, 130, SpanKind::kHcqComplete));
  EXPECT_EQ(tr.PathString(id),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE");
  std::string line = TraceRecorder::FormatEvent(cls);
  EXPECT_NE(line.find("CLASSIFIER(VSQ)"), std::string::npos);
  EXPECT_NE(line.find("0x120000"), std::string::npos);
  std::string dump = tr.DumpRequest(id);
  EXPECT_NE(dump.find("VSQ_POP"), std::string::npos);
  EXPECT_NE(dump.find("HCQ_COMPLETE"), std::string::npos);
}

TEST(TraceRecorderTest, ResetDropsEventsKeepsCapacity) {
  TraceRecorder tr(8);
  tr.BeginRequest();
  tr.Record(Ev(1, 10, SpanKind::kVsqPop));
  tr.Reset();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.total_recorded(), 0u);
  EXPECT_EQ(tr.open_requests(), 0u);
  EXPECT_EQ(tr.capacity(), 8u);
  EXPECT_EQ(tr.BeginRequest(), 1u);  // ids restart too
}

}  // namespace
}  // namespace nvmetro::obs

// --- Golden traces through the real router -----------------------------------

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

/// Echoes success synchronously: the framework responds on work()==false.
struct EchoUif : uif::UifBase {
  bool work(const nvme::Sqe&, u32, u16& status) override {
    status = nvme::kStatusSuccess;
    return false;
  }
};

struct ObsRouterFixture : ::testing::Test {
  obs::Observability obs;  // must outlive every component caching pointers
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<NvmetroHost> host;
  VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;

  void Build(const char* classifier_asm = nullptr) {
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.obs = &obs;
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    vm = std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.memory_bytes = 32 * MiB});
    NvmetroHost::Config hcfg;
    hcfg.obs = &obs;
    host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);
    vc = host->CreateController(vm.get(), {.vm_id = 1});
    auto prog = classifier_asm ? ebpf::Assemble(classifier_asm)
                               : functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok());
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    ASSERT_TRUE(driver->Init(1).ok());
  }

  /// Submits one I/O, runs to completion, returns its trace-span id.
  u64 RunOne(bool write, u64 lba, NvmeStatus* status_out = nullptr) {
    u64 buf = *vm->memory().AllocPages(1);
    nvme::Sqe s = write ? nvme::MakeWrite(1, lba, 1, buf, 0)
                        : nvme::MakeRead(1, lba, 1, buf, 0);
    NvmeStatus status = 0xFFF;
    driver->Submit(0, s, [&](NvmeStatus st, u32) { status = st; });
    sim.Run();
    if (status_out) *status_out = status;
    return obs.trace().requests_opened();
  }
};

TEST_F(ObsRouterFixture, FastPathGoldenTrace) {
  Build();  // passthrough: everything WILL_COMPLETE_HQ
  NvmeStatus st = 0;
  u64 id = RunOne(false, 0, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  ASSERT_EQ(id, 1u);
  EXPECT_EQ(obs.trace().PathString(id),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE > "
            "VCQ_POST > IRQ_INJECT");
  EXPECT_EQ(obs.trace().open_requests(), 0u);

  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.requests"), 1u);
  EXPECT_EQ(m.CounterValue("router.completed"), 1u);
  EXPECT_EQ(m.CounterValue("router.failed"), 0u);
  EXPECT_EQ(m.CounterValue("router.classifier.runs"), 1u);
  EXPECT_EQ(m.CounterValue("router.fast.sends"), 1u);
  EXPECT_EQ(m.CounterValue("router.fast.completions"), 1u);
  EXPECT_EQ(m.CounterValue("router.notify.sends"), 0u);
  EXPECT_EQ(m.CounterValue("router.kernel.sends"), 0u);
  EXPECT_EQ(m.CounterValue("router.irq.injects"), 1u);
  EXPECT_EQ(m.CounterValue("ssd.commands"), 1u);
  ASSERT_NE(m.FindHistogram("router.latency_ns"), nullptr);
  EXPECT_EQ(m.FindHistogram("router.latency_ns")->count(), 1u);
  EXPECT_EQ(m.FindHistogram("router.fast.latency_ns")->count(), 1u);
  // Timestamps are monotone along the request's span sequence.
  auto evs = obs.trace().EventsFor(id);
  for (usize i = 1; i < evs.size(); i++) EXPECT_GE(evs[i].t, evs[i - 1].t);
  // The router worker's poller published its own counters.
  EXPECT_GT(m.CounterValue("nvmetro.router0.dispatches"), 0u);
}

TEST_F(ObsRouterFixture, KernelPathGoldenTrace) {
  const char* kAllToKernel =
      "  mov r0, 0x480000\n"  // SEND_KQ | WILL_COMPLETE_KQ
      "  exit\n";
  Build(kAllToKernel);
  auto kdev =
      std::make_unique<kblock::NvmeBlockDevice>(&sim, phys.get(), &dma, 1);
  vc->AttachKernelDevice(kdev.get());
  NvmeStatus st = 0;
  u64 id = RunOne(true, 4, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  ASSERT_EQ(id, 1u);
  EXPECT_EQ(obs.trace().PathString(id),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_KERNEL > KBIO_DONE > "
            "KCQ_COMPLETE > VCQ_POST > IRQ_INJECT");
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.kernel.sends"), 1u);
  EXPECT_EQ(m.CounterValue("router.kernel.completions"), 1u);
  EXPECT_EQ(m.CounterValue("router.fast.sends"), 0u);
  EXPECT_EQ(m.FindHistogram("router.kernel.latency_ns")->count(), 1u);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_F(ObsRouterFixture, NotifyPathGoldenTrace) {
  const char* kAllToUif =
      "  mov r0, 0x240000\n"  // SEND_NQ | WILL_COMPLETE_NQ
      "  exit\n";
  Build(kAllToUif);
  NotifyChannel channel;
  uif::UifHostParams params;
  params.obs = &obs;
  uif::UifHost uif_host(&sim, "echo", params);
  EchoUif echo;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &echo);
  uif_host.Start();

  NvmeStatus st = 0;
  u64 id = RunOne(true, 0, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  ASSERT_EQ(id, 1u);
  EXPECT_EQ(obs.trace().PathString(id),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_NOTIFY > UIF_WORK > "
            "UIF_RESPOND > NCQ_COMPLETE > VCQ_POST > IRQ_INJECT");
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.notify.sends"), 1u);
  EXPECT_EQ(m.CounterValue("router.notify.completions"), 1u);
  EXPECT_EQ(m.CounterValue("uif.requests"), 1u);
  EXPECT_EQ(m.CounterValue("uif.responses"), 1u);
  EXPECT_EQ(m.FindHistogram("router.notify.latency_ns")->count(), 1u);
  // The UIF process's adaptive poller published under "<name>.poller".
  EXPECT_GT(m.CounterValue("echo.poller.dispatches"), 0u);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_F(ObsRouterFixture, MirrorFanoutGoldenTrace) {
  // Replicator write: fast path AND notify path in one request; the
  // request completes only when both legs do. The secondary (RAM) leg
  // responds before the primary flash write finishes, so NCQ precedes
  // HCQ in the golden ordering.
  Build(functions::ReplicatorClassifierAsm());
  NotifyChannel channel;
  uif::UifHostParams params;
  params.obs = &obs;
  uif::UifHost uif_host(&sim, "repl", params);
  kblock::RamBlockDevice secondary(&sim, 32 * MiB);
  functions::ReplicatorUif repl(&sim, &secondary);
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &repl);
  uif_host.Start();

  NvmeStatus st = 0;
  u64 id = RunOne(true, 8, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  ASSERT_EQ(id, 1u);
  EXPECT_EQ(obs.trace().PathString(id),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > DISPATCH_NOTIFY > "
            "UIF_WORK > UIF_RESPOND > NCQ_COMPLETE > HCQ_COMPLETE > "
            "VCQ_POST > IRQ_INJECT");
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.fast.sends"), 1u);
  EXPECT_EQ(m.CounterValue("router.notify.sends"), 1u);
  EXPECT_EQ(m.CounterValue("router.fast.completions"), 1u);
  EXPECT_EQ(m.CounterValue("router.notify.completions"), 1u);
  EXPECT_EQ(m.CounterValue("router.completed"), 1u);  // one guest CQE
  // Multi-path request: counted in the overall latency histogram but in
  // no single-path one.
  EXPECT_EQ(m.FindHistogram("router.latency_ns")->count(), 1u);
  EXPECT_EQ(m.FindHistogram("router.fast.latency_ns")->count(), 0u);
  EXPECT_EQ(m.FindHistogram("router.notify.latency_ns")->count(), 0u);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_F(ObsRouterFixture, DirectMediationGoldenTrace) {
  // ReadOnly rejects writes at the classifier: the request never leaves
  // the mediation layer — no dispatch span, straight to the VCQ.
  Build(functions::ReadOnlyClassifierAsm());
  NvmeStatus st = 0;
  u64 id = RunOne(true, 0, &st);
  EXPECT_FALSE(nvme::StatusOk(st));
  ASSERT_EQ(id, 1u);
  EXPECT_EQ(obs.trace().PathString(id),
            "VSQ_POP > CLASSIFIER(VSQ) > VCQ_POST > IRQ_INJECT");
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.fast.sends"), 0u);
  EXPECT_EQ(m.CounterValue("router.notify.sends"), 0u);
  EXPECT_EQ(m.CounterValue("router.kernel.sends"), 0u);
  EXPECT_EQ(m.CounterValue("router.completed"), 1u);  // completed w/ error
  EXPECT_EQ(m.CounterValue("ssd.commands"), 0u);  // device never touched
  // The rejection status is on the VCQ_POST span.
  auto evs = obs.trace().EventsFor(id);
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[2].status, st);
  EXPECT_EQ(obs.trace().open_requests(), 0u);

  // Reads still flow: the next request takes the translated fast path.
  u64 id2 = RunOne(false, 0, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  EXPECT_EQ(obs.trace().PathString(id2),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE > "
            "VCQ_POST > IRQ_INJECT");
}

TEST_F(ObsRouterFixture, ResubmitChainTraceAndResubmitStageAttribution) {
  // A runaway self-referential pushdown chain: the read resubmits until
  // the depth bound (8), so its trace carries exactly 8 RESUBMIT spans,
  // the chain telemetry lands in router.resubmits/router.chain_depth,
  // and SpanAnalyzer charges the hook-rerun time to the dedicated
  // resubmit stage while still summing exactly to e2e.
  Build(functions::PushdownLookupClassifierAsm());
  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(2);
  nvme::PrpChain chain = *nvme::BuildPrps(gm, buf, kv::kPushdownBlockBytes);

  std::vector<u8> block(kv::kPushdownBlockBytes, 0);
  u64 word0 = (static_cast<u64>(kv::kPushdownMagic) << 32) | 1;  // level 1
  u64 nkeys = kv::kPushdownFanout;
  memcpy(block.data(), &word0, 8);
  memcpy(block.data() + 8, &nkeys, 8);
  for (u32 i = 0; i < kv::kPushdownFanout; i++) {
    u64 key = i;
    u64 child_lba = 0;  // every child is itself
    memcpy(block.data() + kv::kPushdownHeaderBytes + i * 16, &key, 8);
    memcpy(block.data() + kv::kPushdownHeaderBytes + i * 16 + 8, &child_lba,
           8);
  }
  (void)nvme::PrpWrite(gm, chain.prp1, chain.prp2, kv::kPushdownBlockBytes,
                       block.data());
  auto submit = [&](u8 opcode, u64 key) {
    nvme::Sqe sqe;
    sqe.opcode = opcode;
    sqe.nsid = 1;
    sqe.prp1 = chain.prp1;
    sqe.prp2 = chain.prp2;
    sqe.cdw2 = static_cast<u32>(key);
    sqe.set_slba(0);
    sqe.set_nlb0(kv::kPushdownLbasPerBlock - 1);
    NvmeStatus status = 0xFFF;
    driver->Submit(0, sqe, [&](NvmeStatus st, u32) { status = st; });
    sim.Run();
    return status;
  };
  ASSERT_EQ(submit(nvme::kCmdWrite, 0), nvme::kStatusSuccess);
  EXPECT_NE(submit(nvme::kCmdRead, 5), nvme::kStatusSuccess);

  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.resubmits"), 8u);
  ASSERT_NE(m.FindHistogram("router.chain_depth"), nullptr);
  EXPECT_EQ(m.FindHistogram("router.chain_depth")->count(), 1u);
  EXPECT_EQ(m.FindHistogram("router.chain_depth")->max(), 8u);

  // The read is request 2 (the image write was 1); its path string shows
  // one RESUBMIT per chain hop.
  std::string path = obs.trace().PathString(2);
  usize hops = 0;
  for (usize pos = path.find("RESUBMIT"); pos != std::string::npos;
       pos = path.find("RESUBMIT", pos + 1)) {
    hops++;
  }
  EXPECT_EQ(hops, 8u) << path;

  obs::SpanAnalyzer an;
  an.Analyze(obs.trace());
  std::string err;
  ASSERT_TRUE(an.CheckExactAttribution(&err)) << err;
  const obs::RequestBreakdown* bd = nullptr;
  for (const obs::RequestBreakdown& r : an.requests()) {
    if (r.req_id == 2) bd = &r;
  }
  ASSERT_NE(bd, nullptr);
  // The classifier hook reruns in the same discrete-event instant as the
  // device completion that feeds it, so the chain's wall time is all
  // device crossings: one per hop, zero in the resubmit stage itself.
  // (The synthetic-trace test pins the nonzero resubmit-stage math.)
  EXPECT_EQ(bd->stage_ns[static_cast<usize>(obs::Stage::kResubmit)], 0u);
  EXPECT_GT(bd->stage_ns[static_cast<usize>(obs::Stage::kDevice)], 0u);
  EXPECT_EQ(bd->StageSum(), bd->e2e_ns);
}

TEST_F(ObsRouterFixture, MdevTraceHasNoClassifierSpan) {
  Build();
  vc->SetFixedTranslationMode(true);  // MDev: in-kernel translation
  NvmeStatus st = 0;
  u64 id = RunOne(false, 0, &st);
  EXPECT_EQ(st, nvme::kStatusSuccess);
  EXPECT_EQ(obs.trace().PathString(id),
            "VSQ_POP > DISPATCH_FAST > HCQ_COMPLETE > VCQ_POST > "
            "IRQ_INJECT");
  EXPECT_EQ(obs.metrics().CounterValue("router.classifier.runs"), 0u);
}

TEST_F(ObsRouterFixture, ErrorCompletionStampsStatusAndErrorCounter) {
  Build();
  phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead), 1);
  NvmeStatus st = 0;
  u64 id = RunOne(false, 0, &st);
  EXPECT_EQ(st,
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead));
  // The failed request still traces to a guest-visible completion.
  EXPECT_EQ(obs.trace().PathString(id),
            "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE > "
            "VCQ_POST > IRQ_INJECT");
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.fast.errors"), 1u);
  EXPECT_EQ(m.CounterValue("ssd.errors"), 1u);
  EXPECT_EQ(m.CounterValue("ssd.injected"), 1u);
  auto evs = obs.trace().EventsFor(id);
  ASSERT_GE(evs.size(), 4u);
  EXPECT_EQ(evs[3].status, st);  // HCQ_COMPLETE carries the NVMe status
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

TEST_F(ObsRouterFixture, ManyRequestsBalanceAndLeaveNoOpenSpans) {
  Build();
  u64 buf = *vm->memory().AllocPages(1);
  int completed = 0, issued = 0;
  const int kTotal = 500;  // wraps nothing but crosses many IRQ batches
  std::function<void()> issue = [&] {
    if (issued >= kTotal) return;
    issued++;
    nvme::Sqe sqe = (issued % 2) ? nvme::MakeWrite(1, issued % 64, 1, buf, 0)
                                 : nvme::MakeRead(1, issued % 64, 1, buf, 0);
    driver->Submit(0, sqe, [&](NvmeStatus st, u32) {
      EXPECT_EQ(st, nvme::kStatusSuccess);
      completed++;
      issue();
    });
  };
  for (int d = 0; d < 8; d++) issue();
  sim.Run();
  EXPECT_EQ(completed, kTotal);
  const obs::MetricsRegistry& m = obs.metrics();
  EXPECT_EQ(m.CounterValue("router.requests"), static_cast<u64>(kTotal));
  EXPECT_EQ(m.CounterValue("router.completed"), static_cast<u64>(kTotal));
  EXPECT_EQ(m.CounterValue("router.fast.sends"),
            m.CounterValue("router.fast.completions"));
  EXPECT_EQ(m.FindHistogram("router.latency_ns")->count(),
            static_cast<u64>(kTotal));
  EXPECT_EQ(obs.trace().requests_opened(), static_cast<u64>(kTotal));
  EXPECT_EQ(obs.trace().open_requests(), 0u);  // leak detector
  EXPECT_EQ(obs.trace().total_recorded(), static_cast<u64>(kTotal) * 6);
}

// --- Zero overhead when disabled ---------------------------------------------

struct StackResult {
  SimTime end_time = 0;
  u64 router_busy_ns = 0;
  u64 total_cpu_ns = 0;
};

/// Runs an identical closed-loop workload with or without observability
/// attached; simulated timing must be bit-identical either way.
StackResult RunStack(obs::Observability* obs) {
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.obs = obs;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  virt::Vm vm(&sim, virt::VmConfig{.memory_bytes = 32 * MiB});
  NvmetroHost::Config hcfg;
  hcfg.obs = obs;
  NvmetroHost host(&sim, &phys, hcfg);
  VirtualController* vc = host.CreateController(&vm, {.vm_id = 1});
  auto prog = functions::PassthroughClassifier();
  EXPECT_TRUE(prog.ok());
  EXPECT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
  host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  EXPECT_TRUE(driver.Init(1).ok());

  u64 buf = *vm.memory().AllocPages(1);
  int issued = 0;
  std::function<void()> issue = [&] {
    if (issued >= 300) return;
    issued++;
    nvme::Sqe sqe = (issued % 3) ? nvme::MakeRead(1, issued % 32, 1, buf, 0)
                                 : nvme::MakeWrite(1, issued % 32, 1, buf, 0);
    driver.Submit(0, sqe, [&](NvmeStatus, u32) { issue(); });
  };
  for (int d = 0; d < 4; d++) issue();
  sim.Run();

  StackResult r;
  r.end_time = sim.now();
  r.router_busy_ns = host.worker(0)->busy_ns();
  r.total_cpu_ns = sim.TotalCpuBusyNs();
  return r;
}

TEST(ObsOverheadTest, DisabledAndEnabledTimingsAreIdentical) {
  StackResult off = RunStack(nullptr);
  obs::Observability obs;
  StackResult on = RunStack(&obs);
  // Recording never charges simulated CPU: enabling observability must
  // not move a single simulated nanosecond.
  EXPECT_EQ(on.end_time, off.end_time);
  EXPECT_EQ(on.router_busy_ns, off.router_busy_ns);
  EXPECT_EQ(on.total_cpu_ns, off.total_cpu_ns);
  // And the instrumented run did record.
  EXPECT_EQ(obs.metrics().CounterValue("router.requests"), 300u);
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

}  // namespace
}  // namespace nvmetro::core

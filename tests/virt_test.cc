// Tests for the virt module: VM construction, guest NVMe driver ring
// setup, submission/interrupt costs, coalescing, backpressure, and the
// halt-wake latency model — against a scripted in-test backend.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::virt {
namespace {

/// Scripted backend: records attachments and doorbells; completes
/// commands on demand by writing CQEs into the shared rings.
class FakeBackend : public VirtualNvmeBackend {
 public:
  explicit FakeBackend(sim::Simulator* sim) : sim_(sim) {}

  Status AttachQueuePair(u16 qid, nvme::SqRing* sq, nvme::CqRing* cq,
                         u64 sq_gpa, u64 cq_gpa) override {
    queues_.push_back({qid, sq, cq, nullptr});
    // gpa 0 is a valid guest address (first allocated page); just check
    // the rings do not alias.
    EXPECT_NE(sq_gpa, cq_gpa);
    return OkStatus();
  }

  SimTime SqDoorbell(u16 qid) override {
    doorbells_++;
    last_doorbell_qid_ = qid;
    return doorbell_cost_;
  }

  void CqDoorbell(u16 qid) override { cq_doorbells_++; (void)qid; }

  void SetIrqHandler(u16 qid, std::function<void()> handler) override {
    for (auto& q : queues_) {
      if (q.qid == qid) q.irq = std::move(handler);
    }
  }

  u64 CapacityBytes() const override { return 1 * GiB; }

  /// Completes every pending SQE on queue `idx` with `status`.
  void CompleteAll(usize idx, nvme::NvmeStatus status,
                   SimTime delay = 10 * kUs) {
    sim_->ScheduleAfter(delay, [this, idx, status] {
      Queue& q = queues_[idx];
      nvme::Sqe sqe;
      bool any = false;
      while (q.sq->Pop(&sqe)) {
        nvme::Cqe cqe;
        cqe.cid = sqe.cid;
        cqe.sq_id = q.qid;
        cqe.set_status(status);
        ASSERT_TRUE(q.cq->Push(cqe));
        any = true;
      }
      if (any && q.irq) q.irq();
    });
  }

  struct Queue {
    u16 qid;
    nvme::SqRing* sq;
    nvme::CqRing* cq;
    std::function<void()> irq;
  };
  sim::Simulator* sim_;
  std::vector<Queue> queues_;
  int doorbells_ = 0;
  int cq_doorbells_ = 0;
  u16 last_doorbell_qid_ = 0;
  SimTime doorbell_cost_ = 0;
};

struct VirtFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<Vm> vm;
  std::unique_ptr<FakeBackend> backend;
  std::unique_ptr<GuestNvmeDriver> driver;

  void Build(u32 nqueues = 2, u32 vcpus = 2) {
    VmConfig cfg;
    cfg.memory_bytes = 16 * MiB;
    cfg.vcpus = vcpus;
    vm = std::make_unique<Vm>(&sim, cfg);
    backend = std::make_unique<FakeBackend>(&sim);
    driver = std::make_unique<GuestNvmeDriver>(vm.get(), backend.get());
    ASSERT_TRUE(driver->Init(nqueues).ok());
  }
};

TEST_F(VirtFixture, VmAllocatesMemoryAndCpus) {
  Build();
  EXPECT_EQ(vm->memory().size(), 16 * MiB);
  EXPECT_EQ(vm->num_vcpus(), 2u);
  EXPECT_NE(vm->vcpu(0), nullptr);
  EXPECT_NE(vm->vcpu(1), nullptr);
  EXPECT_EQ(vm->TotalCpuBusyNs(), 0u);
}

TEST_F(VirtFixture, InitAttachesRequestedQueues) {
  Build(3);
  EXPECT_EQ(driver->num_queues(), 3u);
  EXPECT_EQ(backend->queues_.size(), 3u);
  EXPECT_EQ(backend->queues_[0].qid, 1);
  EXPECT_EQ(backend->queues_[2].qid, 3);
  EXPECT_EQ(driver->capacity_bytes(), 1 * GiB);
}

TEST_F(VirtFixture, SubmitPushesRingsAndRingsDoorbell) {
  Build();
  bool done = false;
  driver->Submit(0, nvme::MakeFlush(1), [&](nvme::NvmeStatus st, u32) {
    EXPECT_TRUE(nvme::StatusOk(st));
    done = true;
  });
  backend->CompleteAll(0, nvme::kStatusSuccess);
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(backend->doorbells_, 1);
  EXPECT_EQ(backend->last_doorbell_qid_, 1);
  EXPECT_GE(backend->cq_doorbells_, 1);
}

TEST_F(VirtFixture, CompletionRoutedByCid) {
  Build();
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    driver->Submit(0, nvme::MakeFlush(1),
                   [&order, i](nvme::NvmeStatus, u32) {
                     order.push_back(i);
                   });
  }
  backend->CompleteAll(0, nvme::kStatusSuccess);
  sim.Run();
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; i++) EXPECT_EQ(order[i], i);
  EXPECT_EQ(driver->Inflight(0), 0u);
}

TEST_F(VirtFixture, ErrorStatusDelivered) {
  Build();
  nvme::NvmeStatus got = 0;
  driver->Submit(0, nvme::MakeFlush(1),
                 [&](nvme::NvmeStatus st, u32) { got = st; });
  backend->CompleteAll(
      0, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScWriteFault));
  sim.Run();
  EXPECT_EQ(got, nvme::MakeStatus(nvme::kSctMediaError,
                                  nvme::kScWriteFault));
}

TEST_F(VirtFixture, QueuesMapToDistinctVcpus) {
  Build(2, 2);
  driver->Submit(0, nvme::MakeFlush(1), [](nvme::NvmeStatus, u32) {});
  driver->Submit(1, nvme::MakeFlush(1), [](nvme::NvmeStatus, u32) {});
  backend->CompleteAll(0, nvme::kStatusSuccess);
  backend->CompleteAll(1, nvme::kStatusSuccess);
  sim.Run();
  EXPECT_GT(vm->vcpu(0)->busy_ns(), 0u);
  EXPECT_GT(vm->vcpu(1)->busy_ns(), 0u);
}

TEST_F(VirtFixture, GuestPaysSubmissionAndInterruptCosts) {
  Build(1, 1);
  GuestNvmeParams defaults;
  driver->Submit(0, nvme::MakeFlush(1), [](nvme::NvmeStatus, u32) {});
  backend->CompleteAll(0, nvme::kStatusSuccess);
  sim.Run();
  u64 busy = vm->vcpu(0)->busy_ns();
  EXPECT_GE(busy, defaults.submit_cpu_ns + defaults.irq_entry_ns);
  EXPECT_LT(busy, 20 * kUs);
}

TEST_F(VirtFixture, DoorbellExtraCostCharged) {
  Build(1, 1);
  backend->doorbell_cost_ = 5 * kUs;  // e.g. a trap to wake a parked path
  driver->Submit(0, nvme::MakeFlush(1), [](nvme::NvmeStatus, u32) {});
  backend->CompleteAll(0, nvme::kStatusSuccess);
  sim.Run();
  EXPECT_GE(vm->vcpu(0)->busy_ns(), 5 * kUs);
}

TEST_F(VirtFixture, InterruptCoalescingBatchesCompletions) {
  Build(1, 1);
  // Submit a batch; the backend completes them all in one IRQ. The guest
  // pays one irq_entry plus per-CQE costs — observable as less CPU than
  // per-completion interrupts would cost.
  const int kBatch = 32;
  int done = 0;
  for (int i = 0; i < kBatch; i++) {
    driver->Submit(0, nvme::MakeFlush(1),
                   [&](nvme::NvmeStatus, u32) { done++; });
  }
  backend->CompleteAll(0, nvme::kStatusSuccess, 100 * kUs);
  sim.Run();
  EXPECT_EQ(done, kBatch);
  GuestNvmeParams p;
  u64 busy = vm->vcpu(0)->busy_ns();
  u64 uncoalesced = kBatch * (p.submit_cpu_ns + p.doorbell_cpu_ns +
                              p.irq_entry_ns + p.per_cqe_cpu_ns);
  EXPECT_LT(busy, uncoalesced);  // fewer irq entries than completions
}

TEST_F(VirtFixture, RingFullReportsBusy) {
  GuestNvmeParams params;
  params.queue_entries = 8;
  VmConfig cfg;
  cfg.memory_bytes = 16 * MiB;
  cfg.vcpus = 1;
  vm = std::make_unique<Vm>(&sim, cfg);
  backend = std::make_unique<FakeBackend>(&sim);
  driver = std::make_unique<GuestNvmeDriver>(vm.get(), backend.get(),
                                             params);
  ASSERT_TRUE(driver->Init(1).ok());
  int busy = 0, ok = 0;
  for (int i = 0; i < 12; i++) {
    driver->Submit(0, nvme::MakeFlush(1), [&](nvme::NvmeStatus st, u32) {
      if (nvme::StatusOk(st)) {
        ok++;
      } else {
        busy++;
      }
    });
  }
  // Never complete: 7 fit in the 8-entry ring, the rest bounce.
  sim.Run();
  EXPECT_EQ(busy, 5);
  EXPECT_EQ(driver->Inflight(0), 7u);
}

TEST_F(VirtFixture, HaltWakeAddsLatencyOnlyWhenIdle) {
  Build(1, 1);
  GuestNvmeParams p;
  // First completion arrives after the vCPU has been idle a long time:
  // cold halt wake. Keep the vCPU busy for the second: warm.
  SimTime t_done_cold = 0, t_done_warm = 0;
  driver->Submit(0, nvme::MakeFlush(1), [&](nvme::NvmeStatus, u32) {
    t_done_cold = sim.now();
  });
  backend->CompleteAll(0, nvme::kStatusSuccess, 200 * kUs);
  sim.Run();
  SimTime cold_latency = t_done_cold - 200 * kUs;

  driver->Submit(0, nvme::MakeFlush(1), [&](nvme::NvmeStatus, u32) {
    t_done_warm = sim.now();
  });
  SimTime issue_at = sim.now();
  // Busy-loop the guest vCPU across the completion window.
  for (int i = 0; i < 100; i++) vm->vcpu(0)->Charge(1 * kUs);
  backend->CompleteAll(0, nvme::kStatusSuccess, 20 * kUs);
  sim.Run();
  SimTime warm_latency = t_done_warm - issue_at - 20 * kUs;
  // The cold path paid ~halt_wake_cold more than the warm one
  // (the warm completion then queues behind the busy loop, so compare
  // only the wake component).
  EXPECT_GE(cold_latency, p.halt_wake_cold_ns);
  (void)warm_latency;
}

}  // namespace
}  // namespace nvmetro::virt

// Differential tests for the two eBPF execution engines: the legacy
// decode-per-step interpreter (ebpf/interpreter.h) and the pre-decoded
// VM (ebpf/vm.h). The contract pinned here is bit-identity: for any
// program and input, both engines must produce the same r0, the same
// status (including the exact diagnostic string), the same executed
// instruction count and the same live map-region count. The suite also
// pins the interpreter correctness fixes that ride along with the
// resubmission work (DESIGN.md §15): bounded region growth under
// looping lookups, per-call helper-argument validation, the runtime
// read-only ctx table, and the verifier's read-only data region.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ebpf/assembler.h"
#include "ebpf/helpers.h"
#include "ebpf/insn.h"
#include "ebpf/interpreter.h"
#include "ebpf/map.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "ebpf/vm.h"

namespace nvmetro::ebpf {
namespace {

/// Same test context layout as ebpf_test.cc: 32 bytes, first 24 read-
/// only, last 8 writable, plus an 8-byte data-pointer field for the
/// read-only data region tests.
struct TestCtx {
  u64 a;     // ro
  u64 b;     // ro
  u64 c;     // ro
  u64 out;   // rw
  u64 data;  // ro: host pointer to the attached data region
};

CtxDescriptor TestCtxDesc() {
  CtxDescriptor d;
  d.size = sizeof(TestCtx);
  d.fields = {
      {0, 8, false, "a"},    {8, 8, false, "b"},  {16, 8, false, "c"},
      {24, 8, true, "out"},  {32, 8, false, "data"},
  };
  d.data_ptr_offset = 32;
  d.data_region_size = 4096;
  return d;
}

struct EngineResults {
  Interpreter::RunResult legacy;
  Interpreter::RunResult decoded;
  TestCtx legacy_ctx;
  TestCtx decoded_ctx;
};

struct VmFixture : ::testing::Test {
  CtxDescriptor desc = TestCtxDesc();

  /// Runs `prog` through both engines with identical inputs (each on
  /// its own copy of the ctx so engine-order cannot leak state) and
  /// EXPECTs every observable to match.
  EngineResults RunBoth(const Program& prog, TestCtx ctx = {},
                        const HelperRegistry& helpers =
                            HelperRegistry::Default(),
                        bool with_desc = false, const void* data = nullptr,
                        u32 data_len = 0, u64 max_insns = 1'000'000) {
    EngineResults out;
    out.legacy_ctx = ctx;
    out.decoded_ctx = ctx;

    Interpreter interp(helpers, Interpreter::Options{max_insns});
    interp.env().ktime_ns = [] { return 12345ull; };
    RunParams lp;
    lp.ctx = &out.legacy_ctx;
    lp.ctx_size = sizeof(TestCtx);
    lp.ctx_desc = with_desc ? &desc : nullptr;
    lp.data = data;
    lp.data_len = data_len;
    out.legacy = interp.Run(prog, lp);

    DecodedProgram dp = DecodedProgram::Decode(prog, helpers);
    DecodedVm dvm(DecodedVm::Options{max_insns});
    dvm.env().ktime_ns = [] { return 12345ull; };
    RunParams dpar = lp;
    dpar.ctx = &out.decoded_ctx;
    out.decoded = dvm.Run(dp, dpar);

    EXPECT_EQ(out.legacy.r0, out.decoded.r0);
    EXPECT_EQ(out.legacy.status.ok(), out.decoded.status.ok())
        << "legacy: " << out.legacy.status.ToString()
        << "\ndecoded: " << out.decoded.status.ToString();
    EXPECT_EQ(out.legacy.status.ToString(), out.decoded.status.ToString());
    EXPECT_EQ(out.legacy.insns, out.decoded.insns);
    EXPECT_EQ(out.legacy.map_regions, out.decoded.map_regions);
    EXPECT_EQ(std::memcmp(&out.legacy_ctx, &out.decoded_ctx, sizeof(TestCtx)),
              0)
        << "engines diverged on ctx side effects";
    return out;
  }

  EngineResults RunBothAsm(const std::string& text, TestCtx ctx = {},
                           std::vector<std::shared_ptr<Map>> maps = {}) {
    auto prog = Assemble(text, std::move(maps));
    EXPECT_TRUE(prog.ok()) << prog.status().ToString() << "\n" << text;
    if (!prog.ok()) return {};
    return RunBoth(*prog, ctx);
  }
};

// --- ALU32 / jump edge-case conformance ---------------------------------------

struct EdgeCase {
  const char* name;
  const char* text;
  u64 expect_r0;
};

class EdgeCaseTest : public VmFixture,
                     public ::testing::WithParamInterface<EdgeCase> {};

TEST_P(EdgeCaseTest, BitIdenticalAndCorrect) {
  const EdgeCase& c = GetParam();
  auto r = RunBothAsm(c.text);
  ASSERT_TRUE(r.legacy.status.ok()) << c.name << ": "
                                    << r.legacy.status.ToString();
  EXPECT_EQ(r.legacy.r0, c.expect_r0) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, EdgeCaseTest,
    ::testing::Values(
        // Register-form shifts mask the count to the operand width.
        EdgeCase{"lsh64_masked", "mov r0, 1\nmov r2, 65\nlsh r0, r2\nexit\n",
                 2},
        EdgeCase{"rsh64_masked",
                 "lddw r0, 0x8000000000000000\nmov r2, 127\nrsh r0, r2\nexit\n",
                 1},
        EdgeCase{"lsh32_masked", "mov r0, 1\nmov r2, 33\nlsh32 r0, r2\nexit\n",
                 2},
        EdgeCase{"rsh32_masked",
                 "lddw r0, 0x80000000\nmov r2, 63\nrsh32 r0, r2\nexit\n", 1},
        // Signed ARSH: 64-bit propagates bit 63, 32-bit propagates bit
        // 31 of the truncated value and zero-extends the result.
        EdgeCase{"arsh64_negative",
                 "lddw r0, 0xFFFFFFFFFFFFFF00\nmov r2, 4\narsh r0, r2\nexit\n",
                 0xFFFFFFFFFFFFFFF0ull},
        EdgeCase{"arsh32_negative",
                 "lddw r0, 0x00000000FFFFFF00\nmov r2, 4\narsh32 r0, r2\n"
                 "exit\n",
                 0xFFFFFFF0ull},
        EdgeCase{"arsh32_positive_top_clear",
                 "lddw r0, 0xFFFFFFFF7FFFFF00\nmov r2, 8\narsh32 r0, r2\n"
                 "exit\n",
                 0x007FFFFFull},
        // Division and modulo by a zero register: div yields 0, mod
        // leaves dst unchanged — in both widths.
        EdgeCase{"div64_by_zero", "mov r0, 100\nmov r2, 0\ndiv r0, r2\nexit\n",
                 0},
        EdgeCase{"mod64_by_zero", "mov r0, 100\nmov r2, 0\nmod r0, r2\nexit\n",
                 100},
        EdgeCase{"div32_by_zero",
                 "mov r0, 100\nmov r2, 0\ndiv32 r0, r2\nexit\n", 0},
        EdgeCase{"mod32_by_zero",
                 "lddw r0, 0x1F000000FF\nmov r2, 0\nmod32 r0, r2\nexit\n",
                 0xFFull},  // 32-bit mod masks dst even when keeping it
        // ALU32 immediates are sign-extended then masked.
        EdgeCase{"add32_negative_imm", "mov r0, 1\nadd32 r0, -2\nexit\n",
                 0xFFFFFFFFull},
        EdgeCase{"mov32_zero_extends",
                 "lddw r2, 0xAABBCCDD11223344\nmov32 r0, r2\nexit\n",
                 0x11223344ull},
        EdgeCase{"neg32_wraps", "mov r0, 0\nneg32 r0\nexit\n", 0},
        EdgeCase{"neg64_min",
                 "lddw r0, 0x8000000000000000\nneg r0\nexit\n",
                 0x8000000000000000ull},
        // Unsigned vs signed jump comparisons at the sign boundary.
        EdgeCase{"jgt_unsigned_minus_one",
                 "lddw r2, 0xFFFFFFFFFFFFFFFF\njgt r2, 1, yes\nmov r0, 0\n"
                 "exit\nyes: mov r0, 1\nexit\n",
                 1},
        EdgeCase{"jsgt_signed_minus_one",
                 "lddw r2, 0xFFFFFFFFFFFFFFFF\njsgt r2, 1, yes\nmov r0, 0\n"
                 "exit\nyes: mov r0, 1\nexit\n",
                 0},
        EdgeCase{"jslt_signed_min",
                 "lddw r2, 0x8000000000000000\njslt r2, 0, yes\nmov r0, 0\n"
                 "exit\nyes: mov r0, 1\nexit\n",
                 1},
        EdgeCase{"jset_register_form",
                 "mov r2, 6\nmov r3, 2\njset r2, r3, yes\nmov r0, 0\nexit\n"
                 "yes: mov r0, 1\nexit\n",
                 1}),
    [](const ::testing::TestParamInfo<EdgeCase>& info) {
      return info.param.name;
    });

// --- LD_IMM64 decoding --------------------------------------------------------

TEST_F(VmFixture, LdImm64FullWidthValue) {
  auto r = RunBothAsm("lddw r0, 0x1122334455667788\nexit\n");
  EXPECT_EQ(r.legacy.r0, 0x1122334455667788ull);
}

TEST_F(VmFixture, LdImm64LowSlotTruncatesToU32) {
  // The lo slot contributes only its 32 imm bits; hand-build the pair
  // with a polluted hi slot to pin the (lo & 0xFFFFFFFF) | (hi << 32)
  // composition in both engines.
  std::vector<Insn> insns = {
      LdImm64Lo(0, 0, 0xDEADBEEFCAFEF00Dull),
      LdImm64Hi(0xDEADBEEFCAFEF00Dull),
      Exit(),
  };
  Program prog(std::move(insns), {});
  auto r = RunBoth(prog);
  EXPECT_EQ(r.legacy.r0, 0xDEADBEEFCAFEF00Dull);
}

TEST_F(VmFixture, TruncatedLdImm64IsAnError) {
  std::vector<Insn> insns = {
      MovImm(0, 0),
      LdImm64Lo(2, 0, 7),  // hi slot missing: program ends here
  };
  Program prog(std::move(insns), {});
  auto r = RunBoth(prog);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("truncated LD_IMM64"),
            std::string::npos);
}

TEST_F(VmFixture, MapIndexOutOfBoundsIsAnError) {
  auto amap = std::make_shared<ArrayMap>(8, 4);
  std::vector<Insn> insns = {
      LdImm64Lo(1, kPseudoMapIdx, 3),  // only map 0 exists
      LdImm64Hi(0),
      MovImm(0, 0),
      Exit(),
  };
  Program prog(std::move(insns), {amap});
  auto r = RunBoth(prog);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("bad map index"),
            std::string::npos);
}

TEST_F(VmFixture, JumpIntoLdImm64HiSlotIsAnError) {
  // The hi half of a LD_IMM64 is not independently executable; a rogue
  // jump into it must produce the same diagnostic from both engines.
  std::vector<Insn> insns = {
      JmpImm(kJmpJeq, 0, 0, 1),  // jump over the lo slot into the hi slot
      LdImm64Lo(0, 0, 7),
      LdImm64Hi(7),
      Exit(),
  };
  insns[0].regs = 0;  // r0 vs 0 — taken
  Program prog(std::move(insns), {});
  auto r = RunBoth(prog);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("bad class"), std::string::npos);
}

// --- Randomized differential (straight-line ALU + jumps) ----------------------

TEST_F(VmFixture, RandomProgramsAreBitIdentical) {
  Rng rng(20260808);
  const u8 kAluOps[] = {kAluAdd, kAluSub, kAluMul, kAluDiv, kAluMod,
                        kAluOr,  kAluAnd, kAluXor, kAluLsh, kAluRsh,
                        kAluArsh, kAluMov, kAluNeg};
  const u8 kJmpOps[] = {kJmpJeq,  kJmpJne,  kJmpJgt,  kJmpJge,
                        kJmpJlt,  kJmpJle,  kJmpJset, kJmpJsgt,
                        kJmpJsge, kJmpJslt, kJmpJsle};
  for (int iter = 0; iter < 500; iter++) {
    std::vector<Insn> insns;
    for (u8 reg = 0; reg < 6; reg++) {
      u64 seed = rng.Next();
      insns.push_back(LdImm64Lo(reg, 0, seed));
      insns.push_back(LdImm64Hi(seed));
    }
    u32 body = 1 + static_cast<u32>(rng.NextBounded(24));
    for (u32 i = 0; i < body; i++) {
      u8 dst = static_cast<u8>(rng.NextBounded(6));
      u8 src = static_cast<u8>(rng.NextBounded(6));
      bool is64 = rng.NextBool(0.5);
      if (rng.NextBounded(4) == 0) {
        // Forward jump over the next few instructions (possibly to the
        // exit padding below).
        insns.push_back(JmpImm(kJmpOps[rng.NextBounded(sizeof(kJmpOps))],
                               dst, static_cast<i32>(rng.Next()),
                               static_cast<i16>(rng.NextBounded(4))));
      } else if (rng.NextBool(0.5)) {
        insns.push_back(
            AluReg(kAluOps[rng.NextBounded(sizeof(kAluOps))], dst, src,
                   is64));
      } else {
        insns.push_back(AluImm(kAluOps[rng.NextBounded(sizeof(kAluOps))],
                               dst, static_cast<i32>(rng.Next()), is64));
      }
    }
    // Enough exit padding that every forward jump lands on an exit.
    for (int i = 0; i < 4; i++) insns.push_back(Exit());
    Program prog(std::move(insns), {});
    RunBoth(prog);  // EXPECTs bit-identity internally
  }
}

// --- Region growth under looping lookups (satellite fix) ----------------------

TEST_F(VmFixture, LoopingLookupReusesItsRegionSlot) {
  // Unverified program (the verifier rejects backward jumps); the
  // runtime must bound the region list by call *sites*, not calls:
  // 64 executions of one lookup site may leave exactly one region.
  auto amap = std::make_shared<ArrayMap>(8, 4);
  const char* text =
      "mov r6, 64\n"
      "mov r2, 0\n"
      "stxw [r10-4], r2\n"
      "loop:\n"
      "lddw r1, map 0\n"
      "mov r2, r10\n"
      "add r2, -4\n"
      "call map_lookup_elem\n"
      "sub r6, 1\n"
      "jne r6, 0, loop\n"
      "mov r0, 0\n"
      "exit\n";
  auto prog = Assemble(text, {amap});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto r = RunBoth(*prog);
  ASSERT_TRUE(r.legacy.status.ok()) << r.legacy.status.ToString();
  EXPECT_EQ(r.legacy.map_regions, 1u);
  EXPECT_EQ(r.decoded.map_regions, 1u);
}

TEST_F(VmFixture, DistinctCallSitesGetDistinctRegions) {
  auto amap = std::make_shared<ArrayMap>(8, 4);
  const char* text =
      "mov r2, 0\n"
      "stxw [r10-4], r2\n"
      "lddw r1, map 0\n"
      "mov r2, r10\n"
      "add r2, -4\n"
      "call map_lookup_elem\n"
      "lddw r1, map 0\n"
      "mov r2, r10\n"
      "add r2, -4\n"
      "call map_lookup_elem\n"
      "mov r0, 0\n"
      "exit\n";
  auto prog = Assemble(text, {amap});
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto r = RunBoth(*prog);
  ASSERT_TRUE(r.legacy.status.ok());
  EXPECT_EQ(r.legacy.map_regions, 2u);
}

// --- Per-call helper argument validation (satellite fix) ----------------------

HelperRegistry RegistryWithKeyFirstHelper() {
  HelperRegistry reg;
  for (u32 id : {kHelperMapLookup, kHelperMapUpdate, kHelperMapDelete,
                 kHelperKtimeGetNs, kHelperTrace, kHelperGetPrandomU32}) {
    reg.Register(*HelperRegistry::Default().Find(id));
  }
  // Pathological signature: the key pointer precedes the map that sizes
  // it. No shipped helper looks like this; it exists to pin the
  // validation order both engines must apply per call.
  reg.Register(HelperSpec{
      100, "key_first", RetType::kInteger,
      {ArgType::kStackPtrKey, ArgType::kMapPtr},
      [](HelperEnv&, u64, u64, u64, u64, u64) { return 0ull; }});
  return reg;
}

TEST_F(VmFixture, KeyArgumentBeforeMapArgumentRejected) {
  HelperRegistry reg = RegistryWithKeyFirstHelper();
  auto amap = std::make_shared<ArrayMap>(8, 4);
  std::vector<Insn> insns = {
      MovImm(2, 0),
      Stx(kSizeW, 10, 2, -4),           // init key bytes
      MovReg(1, 10),
      AluImm(kAluAdd, 1, -4),           // r1 = stack key ptr
      LdImm64Lo(2, kPseudoMapIdx, 0),   // r2 = map
      LdImm64Hi(0),
      Call(100),
      MovImm(0, 0),
      Exit(),
  };
  Program prog(std::move(insns), {amap});
  auto r = RunBoth(prog, {}, reg);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find(
                "key/value argument before map argument"),
            std::string::npos)
      << r.legacy.status.ToString();
}

TEST_F(VmFixture, MapScopeDoesNotLeakAcrossCalls) {
  // A valid lookup first, then a key_first call: if the first call's
  // map leaked into the second call's scope, the stale map would size
  // the key and the call would pass. It must still fail.
  HelperRegistry reg = RegistryWithKeyFirstHelper();
  auto amap = std::make_shared<ArrayMap>(8, 4);
  std::vector<Insn> insns = {
      MovImm(2, 0),
      Stx(kSizeW, 10, 2, -4),
      LdImm64Lo(1, kPseudoMapIdx, 0),
      LdImm64Hi(0),
      MovReg(2, 10),
      AluImm(kAluAdd, 2, -4),
      Call(kHelperMapLookup),           // scopes amap to THIS call only
      MovImm(2, 0),
      Stx(kSizeW, 10, 2, -4),
      MovReg(1, 10),
      AluImm(kAluAdd, 1, -4),
      LdImm64Lo(2, kPseudoMapIdx, 0),
      LdImm64Hi(0),
      Call(100),
      MovImm(0, 0),
      Exit(),
  };
  Program prog(std::move(insns), {amap});
  auto r = RunBoth(prog, {}, reg);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find(
                "key/value argument before map argument"),
            std::string::npos)
      << r.legacy.status.ToString();
}

TEST_F(VmFixture, NonMapValueAsMapArgumentRejected) {
  auto amap = std::make_shared<ArrayMap>(8, 4);
  std::vector<Insn> insns = {
      MovImm(2, 0),
      Stx(kSizeW, 10, 2, -4),
      MovImm(1, 1234),                  // not a map reference
      MovReg(2, 10),
      AluImm(kAluAdd, 2, -4),
      Call(kHelperMapLookup),
      MovImm(0, 0),
      Exit(),
  };
  Program prog(std::move(insns), {amap});
  auto r = RunBoth(prog);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("bad map argument"),
            std::string::npos);
}

// --- Runtime read-only ctx table (satellite fix) ------------------------------

TEST_F(VmFixture, RogueStoreToReadOnlyCtxFieldBlocked) {
  // Hand-assembled, never verified: STX into ctx field `a` (read-only).
  // With the ctx descriptor installed, both engines must refuse and the
  // field must be unchanged.
  std::vector<Insn> insns = {
      MovImm(2, 99),
      Stx(kSizeDw, 1, 2, 0),  // [r1+0] = 99 — rogue
      MovImm(0, 0),
      Exit(),
  };
  Program prog(std::move(insns), {});
  TestCtx ctx{7, 0, 0, 0, 0};
  auto r = RunBoth(prog, ctx, HelperRegistry::Default(), /*with_desc=*/true);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("store to read-only ctx field"),
            std::string::npos)
      << r.legacy.status.ToString();
  EXPECT_EQ(r.legacy_ctx.a, 7u);
  EXPECT_EQ(r.decoded_ctx.a, 7u);
}

TEST_F(VmFixture, StoreToWritableCtxFieldAllowed) {
  std::vector<Insn> insns = {
      MovImm(2, 99),
      Stx(kSizeDw, 1, 2, 24),  // `out` is writable
      MovImm(0, 0),
      Exit(),
  };
  Program prog(std::move(insns), {});
  auto r = RunBoth(prog, {}, HelperRegistry::Default(), /*with_desc=*/true);
  ASSERT_TRUE(r.legacy.status.ok()) << r.legacy.status.ToString();
  EXPECT_EQ(r.legacy_ctx.out, 99u);
  EXPECT_EQ(r.decoded_ctx.out, 99u);
}

TEST_F(VmFixture, StImmediateHitsTheSameCtxTable) {
  // The ST (immediate) form goes through the same enforcement.
  std::vector<Insn> insns = {
      StImm(kSizeDw, 1, 8, 1),  // ctx field `b` is read-only
      MovImm(0, 0),
      Exit(),
  };
  Program prog(std::move(insns), {});
  auto r = RunBoth(prog, {}, HelperRegistry::Default(), /*with_desc=*/true);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("store to read-only ctx field"),
            std::string::npos);
}

// --- Read-only data region at runtime -----------------------------------------

TEST_F(VmFixture, DataRegionReadableButNotWritable) {
  alignas(8) u8 page[64] = {};
  u64 magic = 0x00C0FFEE;
  std::memcpy(page, &magic, 8);
  TestCtx ctx{};
  ctx.data = reinterpret_cast<u64>(page);

  // Read through the data pointer: fine in both engines.
  {
    std::vector<Insn> insns = {
        Ldx(kSizeDw, 2, 1, 32),  // r2 = ctx->data
        Ldx(kSizeDw, 0, 2, 0),   // r0 = *data
        Exit(),
    };
    Program prog(std::move(insns), {});
    auto r = RunBoth(prog, ctx, HelperRegistry::Default(), /*with_desc=*/true,
                     page, sizeof(page));
    ASSERT_TRUE(r.legacy.status.ok()) << r.legacy.status.ToString();
    EXPECT_EQ(r.legacy.r0, magic);
  }
  // Store through it: refused with the same message.
  {
    std::vector<Insn> insns = {
        Ldx(kSizeDw, 2, 1, 32),
        MovImm(3, 1),
        Stx(kSizeDw, 2, 3, 0),
        MovImm(0, 0),
        Exit(),
    };
    Program prog(std::move(insns), {});
    auto r = RunBoth(prog, ctx, HelperRegistry::Default(), /*with_desc=*/true,
                     page, sizeof(page));
    EXPECT_FALSE(r.legacy.status.ok());
    EXPECT_NE(r.legacy.status.ToString().find("store to read-only region"),
              std::string::npos)
        << r.legacy.status.ToString();
    EXPECT_EQ(page[0], 0xEE);  // unmodified
  }
  // Read past the attached length: invalid load in both engines.
  {
    std::vector<Insn> insns = {
        Ldx(kSizeDw, 2, 1, 32),
        Ldx(kSizeDw, 0, 2, 64),  // one past the end
        Exit(),
    };
    Program prog(std::move(insns), {});
    auto r = RunBoth(prog, ctx, HelperRegistry::Default(), /*with_desc=*/true,
                     page, sizeof(page));
    EXPECT_FALSE(r.legacy.status.ok());
    EXPECT_NE(r.legacy.status.ToString().find("invalid load addr"),
              std::string::npos);
  }
}

// --- Budgets and diagnostics --------------------------------------------------

TEST_F(VmFixture, InstructionBudgetBitIdentical) {
  const char* text =
      "mov r0, 0\n"
      "loop:\n"
      "add r0, 1\n"
      "ja loop\n";
  auto prog = Assemble(text);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  auto r = RunBoth(*prog, {}, HelperRegistry::Default(), false, nullptr, 0,
                   /*max_insns=*/100);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_EQ(r.legacy.insns, r.decoded.insns);
}

TEST_F(VmFixture, BadRegisterDiagnosticsMatch) {
  std::vector<Insn> insns = {MovImm(0, 0), Exit()};
  insns[0].regs = 0x0D;  // dst = 13: out of range
  Program prog(std::move(insns), {});
  auto r = RunBoth(prog);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("bad register"),
            std::string::npos);
}

TEST_F(VmFixture, UnknownHelperDiagnosticsMatch) {
  std::vector<Insn> insns = {Call(999), MovImm(0, 0), Exit()};
  Program prog(std::move(insns), {});
  auto r = RunBoth(prog);
  EXPECT_FALSE(r.legacy.status.ok());
  EXPECT_NE(r.legacy.status.ToString().find("bad helper"), std::string::npos);
}

TEST_F(VmFixture, HelpersScrubCallerSavedRegistersIdentically) {
  // r1-r5 are zeroed after a call in the legacy engine; reading one
  // back afterwards (unverified) must match in the decoded VM.
  const char* text =
      "mov r1, 42\n"
      "call ktime_get_ns\n"
      "mov r0, r1\n"
      "exit\n";
  auto prog = Assemble(text);
  ASSERT_TRUE(prog.ok());
  auto r = RunBoth(*prog);
  ASSERT_TRUE(r.legacy.status.ok());
  EXPECT_EQ(r.legacy.r0, 0u);
}

// --- Verifier: read-only data region ------------------------------------------

struct DataVerifierFixture : VmFixture {
  Verifier verifier{desc, HelperRegistry::Default()};

  Status Verify(const std::string& text) {
    auto prog = Assemble(text);
    EXPECT_TRUE(prog.ok()) << prog.status().ToString() << "\n" << text;
    if (!prog.ok()) return prog.status();
    return verifier.Verify(*prog);
  }
};

TEST_F(DataVerifierFixture, NullCheckedBoundedReadAccepted) {
  Status s = Verify(
      "ldxdw r2, [r1+32]\n"
      "jne r2, 0, have\n"
      "mov r0, 0\nexit\n"
      "have:\n"
      "ldxdw r0, [r2+4088]\n"  // last in-bounds dword of the 4096 region
      "exit\n");
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_F(DataVerifierFixture, UncheckedDereferenceRejected) {
  Status s = Verify(
      "ldxdw r2, [r1+32]\n"
      "ldxdw r0, [r2+0]\n"
      "exit\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("possibly-null"), std::string::npos)
      << s.ToString();
}

TEST_F(DataVerifierFixture, OutOfBoundsReadRejected) {
  Status s = Verify(
      "ldxdw r2, [r1+32]\n"
      "jne r2, 0, have\n"
      "mov r0, 0\nexit\n"
      "have:\n"
      "ldxdw r0, [r2+4089]\n"  // crosses the 4096 boundary
      "exit\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("out of bounds"), std::string::npos)
      << s.ToString();
}

TEST_F(DataVerifierFixture, StoreToDataRegionRejected) {
  Status s = Verify(
      "ldxdw r2, [r1+32]\n"
      "jne r2, 0, have\n"
      "mov r0, 0\nexit\n"
      "have:\n"
      "mov r3, 1\n"
      "stxdw [r2+0], r3\n"
      "mov r0, 0\nexit\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("read-only data region"), std::string::npos)
      << s.ToString();
}

TEST_F(DataVerifierFixture, PointerArithmeticStaysBoundsChecked) {
  Status s = Verify(
      "ldxdw r2, [r1+32]\n"
      "jne r2, 0, have\n"
      "mov r0, 0\nexit\n"
      "have:\n"
      "add r2, 4000\n"
      "ldxdw r0, [r2+96]\n"  // 4000 + 96 + 8 = 4104 > 4096
      "exit\n");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("out of bounds"), std::string::npos)
      << s.ToString();
}

// --- Fuzz: verified programs run identically ----------------------------------

TEST_F(VmFixture, FuzzVerifiedProgramsBitIdentical) {
  Verifier verifier{desc, HelperRegistry::Default()};
  Rng rng(777);
  auto amap = std::make_shared<ArrayMap>(8, 4);
  int accepted = 0;
  for (int iter = 0; iter < 2000; iter++) {
    u32 len = 1 + static_cast<u32>(rng.NextBounded(20));
    std::vector<Insn> insns;
    u32 init = static_cast<u32>(rng.NextBounded(6));
    for (u32 r = 2; r < 2 + init; r++) {
      insns.push_back(MovImm(static_cast<u8>(r),
                             static_cast<i32>(rng.NextBounded(128))));
    }
    static const u8 kAlu[] = {kAluAdd, kAluSub, kAluMul, kAluDiv,
                              kAluOr,  kAluAnd, kAluLsh, kAluRsh,
                              kAluMod, kAluXor, kAluMov, kAluArsh};
    static const u8 kJmp[] = {kJmpJeq, kJmpJne, kJmpJgt, kJmpJge,
                              kJmpJlt, kJmpJle, kJmpJset};
    for (u32 i = 0; i < len; i++) {
      u8 dst = static_cast<u8>(rng.NextBounded(11));
      u8 src = static_cast<u8>(rng.NextBounded(11));
      i16 off = static_cast<i16>(static_cast<i64>(rng.NextBounded(80)) - 40);
      i32 imm = static_cast<i32>(static_cast<i64>(rng.NextBounded(64)) - 8);
      u8 size = static_cast<u8>(rng.NextBounded(4) << 3);
      switch (rng.NextBounded(8)) {
        case 0:
          insns.push_back(AluImm(kAlu[rng.NextBounded(12)], dst, imm,
                                 rng.NextBool(0.5)));
          break;
        case 1:
          insns.push_back(AluReg(kAlu[rng.NextBounded(12)], dst, src,
                                 rng.NextBool(0.5)));
          break;
        case 2:
          insns.push_back(Ldx(size, dst, src, off));
          break;
        case 3:
          insns.push_back(Stx(size, dst, src, off));
          break;
        case 4:
          insns.push_back(StImm(size, dst, off, imm));
          break;
        case 5:
          insns.push_back(JmpImm(kJmp[rng.NextBounded(7)], dst, imm,
                                 static_cast<i16>(rng.NextBounded(6))));
          break;
        case 6:
          insns.push_back(MovReg(dst, src));
          break;
        case 7:
          insns.push_back(Call(static_cast<i32>(rng.NextBounded(10))));
          break;
      }
    }
    insns.push_back(MovImm(0, 0));
    insns.push_back(Exit());
    Program prog(std::move(insns), {amap});
    if (!verifier.Verify(prog).ok()) continue;
    accepted++;
    TestCtx ctx{rng.Next(), rng.Next(), rng.Next(), 0, 0};
    auto r = RunBoth(prog, ctx);
    EXPECT_TRUE(r.legacy.status.ok())
        << "iteration " << iter << ": " << r.legacy.status.ToString();
  }
  EXPECT_GT(accepted, 10);
}

}  // namespace
}  // namespace nvmetro::ebpf

// QoS deferral-ring audit (DESIGN.md §13 satellite).
//
// The audit that motivated SetParkedHead(): before the fix, a fresh
// best-effort arrival could snatch newly refilled leftover tokens at
// admit time, ahead of a tenant whose parked command had been waiting on
// its retry timer — under a sustained stream of fresh arrivals the
// parked ring starved indefinitely. The fix reserves the *oldest other*
// BE parked head's cost out of the leftover pool, so the oldest waiter
// always makes progress (and therefore every waiter eventually becomes
// oldest).
//
// Two layers: scheduler-level tests pin the reservation semantics
// exactly (token-for-token), and a full-router regression drives the
// original starvation scenario — a parked burst behind a shed-heavy
// fresh stream — asserting every parked command completes, in ring
// (deadline) order, with a bounded worst-case wait.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/router.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "obs/obs.h"
#include "qos/qos.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::qos {
namespace {

using Action = AdmitResult::Action;

QosConfig SmallPool() {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 10'000;  // leftover depth = 10 tokens (1 ms)
  return cfg;
}

TEST(QosParkedHeadTest, OldestOtherHeadIsReservedFromLeftover) {
  QosScheduler s(SmallPool());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1}).ok());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 2}).ok());
  // Drain the leftover pool (starts full at 10 tokens).
  ASSERT_EQ(s.Admit(1, 10, 0).action, Action::kAdmit);
  ASSERT_EQ(s.leftover_tokens(), 0u);

  // Tenant 1 parks a 5-token command; 500 us later 5 tokens refilled.
  s.SetParkedHead(1, 5, 0);
  s.AdvanceTo(500 * kUs);
  ASSERT_EQ(s.leftover_tokens(), 5u);

  // A fresh tenant-2 arrival may no longer take them: the head's cost is
  // reserved. Nothing is consumed by the deferral.
  EXPECT_EQ(s.Admit(2, 5, 500 * kUs).action, Action::kDefer);
  EXPECT_EQ(s.leftover_tokens(), 5u);
  // Tenant 2 can still use tokens above the reservation...
  s.AdvanceTo(800 * kUs);  // 8 tokens now
  EXPECT_EQ(s.Admit(2, 3, 800 * kUs).action, Action::kAdmit);
  // ...but not dip into it.
  EXPECT_EQ(s.Admit(2, 1, 800 * kUs).action, Action::kDefer);

  // The parked tenant itself is exempt from its own reservation.
  EXPECT_EQ(s.Admit(1, 5, 800 * kUs).action, Action::kAdmit);
  std::string err;
  EXPECT_TRUE(s.CheckConservation(&err)) << err;
}

TEST(QosParkedHeadTest, ClearingTheHeadReleasesTheReservation) {
  QosScheduler s(SmallPool());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1}).ok());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 2}).ok());
  ASSERT_EQ(s.Admit(1, 10, 0).action, Action::kAdmit);
  s.SetParkedHead(1, 4, 0);
  s.AdvanceTo(400 * kUs);
  ASSERT_EQ(s.Admit(2, 4, 400 * kUs).action, Action::kDefer);
  // Ring drained: cost 0 clears the head and the tokens are free again.
  s.SetParkedHead(1, 0, 0);
  EXPECT_EQ(s.Admit(2, 4, 400 * kUs).action, Action::kAdmit);
}

TEST(QosParkedHeadTest, OldestOfSeveralHeadsWins) {
  QosScheduler s(SmallPool());
  for (u32 i = 1; i <= 3; i++) {
    ASSERT_TRUE(s.RegisterTenant({.tenant_id = i}).ok());
  }
  ASSERT_EQ(s.Admit(1, 10, 0).action, Action::kAdmit);
  s.SetParkedHead(1, 2, 100);  // parked first -> the reservation
  s.SetParkedHead(2, 7, 200);
  s.AdvanceTo(300 * kUs);  // 3 tokens
  // Only tenant 1's 2 tokens are reserved (not 2+7, which could exceed
  // the pool depth and deadlock every ring): tenant 3 may take 1.
  EXPECT_EQ(s.Admit(3, 1, 300 * kUs).action, Action::kAdmit);
  EXPECT_EQ(s.Admit(3, 1, 300 * kUs).action, Action::kDefer);
  // Tenant 1 drains; tenant 2's (younger, bigger) head takes over.
  s.SetParkedHead(1, 0, 0);
  s.AdvanceTo(900 * kUs);  // 8 tokens buffered
  EXPECT_EQ(s.Admit(3, 1, 900 * kUs).action, Action::kAdmit);
  EXPECT_EQ(s.Admit(3, 1, 900 * kUs).action, Action::kDefer);  // 7 reserved
  EXPECT_EQ(s.Admit(2, 7, 900 * kUs).action, Action::kAdmit);
}

TEST(QosParkedHeadTest, LatencyCriticalCallersIgnoreTheReservation) {
  QosConfig cfg;
  cfg.device_tokens_per_sec = 20'000;
  QosScheduler s(cfg);
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 1,
                                .cls = TenantClass::kLatencyCritical,
                                .reserved_tokens_per_sec = 10'000})
                  .ok());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 2}).ok());
  ASSERT_TRUE(s.RegisterTenant({.tenant_id = 3}).ok());
  // Drain both the LC bucket and the leftover pool.
  ASSERT_EQ(s.Admit(1, 10, 0).action, Action::kAdmit);
  ASSERT_EQ(s.Admit(2, 10, 0).action, Action::kAdmit);
  s.SetParkedHead(2, 6, 0);
  // SetParkedHead on an LC tenant is a no-op (LC never parks for tokens
  // it reserved; the router only reports BE heads).
  s.SetParkedHead(1, 3, 0);
  s.AdvanceTo(600 * kUs);  // LC bucket: 6 tokens; leftover: 6 tokens
  // LC spills past its empty reservation into leftover unimpeded by the
  // BE head reservation: 6 own + 6 leftover.
  EXPECT_EQ(s.Admit(1, 12, 600 * kUs).action, Action::kAdmit);
  // The BE head reservation still binds BE peers.
  s.AdvanceTo(1'200 * kUs);
  EXPECT_EQ(s.Admit(3, 1, 1'200 * kUs).action, Action::kDefer);
  std::string err;
  EXPECT_TRUE(s.CheckConservation(&err)) << err;
}

}  // namespace
}  // namespace nvmetro::qos

// --- Full-router starvation regression ---------------------------------------

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

constexpr NvmeStatus kShedStatus =
    nvme::MakeStatus(nvme::kSctGeneric, nvme::kScNamespaceNotReady);

TEST(QosRingAuditTest, ParkedBurstIsNotStarvedByFreshArrivals) {
  // Device 10k tokens/s, two BE tenants. Tenant 1 dumps a 40-command
  // burst at t=0: the first few admit from the full pool, the rest park.
  // Tenant 2 then streams fresh arrivals at 2x the device rate for the
  // whole horizon — the exact pattern that starved the parked ring
  // before SetParkedHead(): every refilled token was taken at admit time
  // by a fresh arrival that never waited.
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig ccfg;
  ccfg.capacity = 64 * MiB;
  ccfg.obs = &obs;
  ccfg.latency.slow_op_rate = 0.0;
  auto phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, ccfg);
  NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  hcfg.num_workers = 1;
  auto host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);

  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = 10'000;
  qos::QosScheduler sched(qcfg, &obs);
  ASSERT_TRUE(sched.RegisterTenant({.tenant_id = 1}).ok());
  ASSERT_TRUE(sched.RegisterTenant({.tenant_id = 2}).ok());

  std::vector<std::unique_ptr<virt::Vm>> vms;
  std::vector<std::unique_ptr<virt::GuestNvmeDriver>> drivers;
  for (u32 i = 1; i <= 2; i++) {
    vms.push_back(std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.memory_bytes = 1 * MiB, .vcpus = 1}));
    VirtualController* vc =
        host->CreateController(vms.back().get(), {.vm_id = i});
    auto prog = functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok());
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    vc->AttachQos(&sched, i);
  }
  host->Start();
  for (u32 i = 0; i < 2; i++) {
    drivers.push_back(std::make_unique<virt::GuestNvmeDriver>(
        vms[i].get(), host->controller(i)));
    ASSERT_TRUE(drivers.back()->Init(1).ok());
  }

  const SimTime horizon = 40 * kMs;
  u64 bufs[2] = {*vms[0]->memory().AllocPages(1),
                 *vms[1]->memory().AllocPages(1)};

  constexpr u32 kBurst = 40;  // < max_deferred (64): nothing may shed
  struct BurstState {
    u32 completed = 0;
    std::vector<u32> completion_order;
    std::vector<SimTime> completion_at;
  } burst;
  for (u32 n = 0; n < kBurst; n++) {
    sim.ScheduleAt(10 * kUs, [&drivers, &sim, &burst, &bufs, n] {
      drivers[0]->Submit(0, nvme::MakeRead(1, n, 1, bufs[0], 0),
                         [&sim, &burst, n](NvmeStatus st, u32) {
                           ASSERT_TRUE(nvme::StatusOk(st))
                               << "burst command " << n << " shed/failed";
                           burst.completed++;
                           burst.completion_order.push_back(n);
                           burst.completion_at.push_back(sim.now());
                         });
    });
  }
  // Fresh stream: 20k IOPS against a 10k tokens/s device, never pausing.
  u64 fresh_ok = 0, fresh_shed = 0;
  for (SimTime t = 15 * kUs; t < horizon; t += 50 * kUs) {
    sim.ScheduleAt(t, [&drivers, &bufs, &fresh_ok, &fresh_shed] {
      drivers[1]->Submit(0, nvme::MakeRead(1, 1, 1, bufs[1], 0),
                         [&fresh_ok, &fresh_shed](NvmeStatus st, u32) {
                           if (nvme::StatusOk(st)) {
                             fresh_ok++;
                           } else if (st == kShedStatus) {
                             fresh_shed++;
                           } else {
                             FAIL() << "unexpected status";
                           }
                         });
    });
  }
  sim.Run();

  // Every parked command completed (no starvation, no sheds)...
  EXPECT_EQ(burst.completed, kBurst);
  EXPECT_EQ(sched.sheds(1), 0u);
  // ...in ring order (the deferral ring is FIFO per tenant, so resume
  // order must equal submission order — the "deadline order" audit)...
  for (u32 i = 0; i < burst.completion_order.size(); i++) {
    EXPECT_EQ(burst.completion_order[i], i) << "resumed out of ring order";
  }
  // ...with a bounded worst-case wait: 40 tokens at 10k tokens/s is 4 ms
  // of work; even sharing the pool with the fresh stream the whole burst
  // must drain well inside the horizon (starvation showed up here as
  // commands pinned until the ring was force-drained at end of run).
  ASSERT_FALSE(burst.completion_at.empty());
  EXPECT_LT(burst.completion_at.back(), 20 * kMs);
  // The fresh stream got real service too (the reservation is one head,
  // not the whole pool) and absorbed the shed pressure.
  EXPECT_GT(fresh_ok, 100u);
  EXPECT_GT(fresh_shed, 0u);

  std::string err;
  EXPECT_TRUE(sched.CheckConservation(&err)) << err;
  EXPECT_EQ(obs.trace().open_requests(), 0u);
}

}  // namespace
}  // namespace nvmetro::core

// Tests for AES and XTS-AES: FIPS-197 / IEEE 1619 vectors, AES-NI vs
// portable equivalence, and round-trip properties.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/cpufeat.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/xts.h"

namespace nvmetro::crypto {
namespace {

std::vector<u8> FromHex(const std::string& hex) {
  std::vector<u8> out;
  for (usize i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(
        static_cast<u8>(std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const u8* p, usize n) {
  static const char* kDigits = "0123456789abcdef";
  std::string s;
  for (usize i = 0; i < n; i++) {
    s += kDigits[p[i] >> 4];
    s += kDigits[p[i] & 0xF];
  }
  return s;
}

// --- AES (FIPS-197 Appendix C) --------------------------------------------------

TEST(AesTest, Fips197Aes128Vector) {
  auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  auto pt = FromHex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key.data(), key.size());
  ASSERT_TRUE(aes.ok());
  u8 ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
  u8 back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(0, std::memcmp(back, pt.data(), 16));
}

TEST(AesTest, Fips197Aes256Vector) {
  auto key =
      FromHex("000102030405060708090a0b0c0d0e0f"
              "101112131415161718191a1b1c1d1e1f");
  auto pt = FromHex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key.data(), key.size());
  ASSERT_TRUE(aes.ok());
  u8 ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "8ea2b7ca516745bfeafc49904b496089");
  u8 back[16];
  aes->DecryptBlock(ct, back);
  EXPECT_EQ(0, std::memcmp(back, pt.data(), 16));
}

TEST(AesTest, PortableMatchesFips128) {
  auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  auto pt = FromHex("00112233445566778899aabbccddeeff");
  auto aes = Aes::Create(key.data(), key.size());
  ASSERT_TRUE(aes.ok());
  aes->DisableAesni();
  u8 ct[16];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(AesTest, InvalidKeyLengthRejected) {
  u8 key[24] = {};
  EXPECT_FALSE(Aes::Create(key, 24).ok());  // AES-192 unsupported
  EXPECT_FALSE(Aes::Create(key, 0).ok());
}

class AesEquivalenceTest : public ::testing::TestWithParam<usize> {};

TEST_P(AesEquivalenceTest, AesNiMatchesPortable) {
  if (!CpuHasAesNi()) GTEST_SKIP() << "no AES-NI on this host";
  const usize key_len = GetParam();
  Rng rng(99 + key_len);
  for (int iter = 0; iter < 50; iter++) {
    std::vector<u8> key(key_len);
    rng.Fill(key.data(), key.size());
    auto fast = Aes::Create(key.data(), key.size());
    auto slow = Aes::Create(key.data(), key.size());
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    ASSERT_TRUE(fast->using_aesni());
    slow->DisableAesni();
    u8 pt[16], a[16], b[16];
    rng.Fill(pt, 16);
    fast->EncryptBlock(pt, a);
    slow->EncryptBlock(pt, b);
    ASSERT_EQ(0, std::memcmp(a, b, 16)) << "encrypt divergence";
    fast->DecryptBlock(a, a);
    slow->DecryptBlock(b, b);
    ASSERT_EQ(0, std::memcmp(a, pt, 16));
    ASSERT_EQ(0, std::memcmp(b, pt, 16));
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesEquivalenceTest,
                         ::testing::Values(16, 32));

TEST(AesTest, MultiBlockEcbMatchesSingle) {
  Rng rng(7);
  std::vector<u8> key(16);
  rng.Fill(key.data(), 16);
  auto aes = Aes::Create(key.data(), 16);
  ASSERT_TRUE(aes.ok());
  std::vector<u8> pt(256), bulk(256), single(256);
  rng.Fill(pt.data(), pt.size());
  aes->EncryptBlocks(pt.data(), bulk.data(), pt.size());
  for (usize off = 0; off < pt.size(); off += 16) {
    aes->EncryptBlock(pt.data() + off, single.data() + off);
  }
  EXPECT_EQ(bulk, single);
}

// --- XTS (IEEE 1619-2007 vectors) ------------------------------------------------

TEST(XtsTest, Ieee1619Vector1) {
  // Key1 = Key2 = 0, sector 0, 32 zero bytes.
  std::vector<u8> key(32, 0);
  auto xts = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> pt(32, 0), ct(32);
  xts->EncryptSector(0, pt.data(), ct.data(), pt.size());
  EXPECT_EQ(ToHex(ct.data(), 32),
            "917cf69ebd68b2ec9b9fe9a3eadda692"
            "cd43d2f59598ed858c02c2652fbf922e");
}

TEST(XtsTest, Ieee1619Vector2) {
  auto key = FromHex(
      "1111111111111111111111111111111122222222222222222222222222222222");
  auto xts = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> pt(32, 0x44), ct(32);
  xts->EncryptSector(0x3333333333ull, pt.data(), ct.data(), pt.size());
  EXPECT_EQ(ToHex(ct.data(), 32),
            "c454185e6a16936e39334038acef838b"
            "fb186fff7480adc4289382ecd6d394f0");
}

TEST(XtsTest, Ieee1619Vector3) {
  auto key = FromHex(
      "fffefdfcfbfaf9f8f7f6f5f4f3f2f1f022222222222222222222222222222222");
  auto xts = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> pt(32, 0x44), ct(32);
  xts->EncryptSector(0x3333333333ull, pt.data(), ct.data(), pt.size());
  EXPECT_EQ(ToHex(ct.data(), 32),
            "af85336b597afc1a900b2eb21ec949d2"
            "92df4c047e0b21532186a5971a227a89");
}

TEST(XtsTest, RoundTripProperty) {
  Rng rng(11);
  std::vector<u8> key(64);
  rng.Fill(key.data(), key.size());
  auto xts = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  for (int iter = 0; iter < 30; iter++) {
    u64 sector = rng.Next();
    std::vector<u8> pt(512), ct(512), back(512);
    rng.Fill(pt.data(), pt.size());
    xts->EncryptSector(sector, pt.data(), ct.data(), pt.size());
    EXPECT_NE(pt, ct);
    xts->DecryptSector(sector, ct.data(), back.data(), ct.size());
    ASSERT_EQ(pt, back);
  }
}

TEST(XtsTest, DifferentSectorsGiveDifferentCiphertext) {
  std::vector<u8> key(32, 0xAB);
  auto xts = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> pt(512, 0x5A), c0(512), c1(512);
  xts->EncryptSector(0, pt.data(), c0.data(), 512);
  xts->EncryptSector(1, pt.data(), c1.data(), 512);
  EXPECT_NE(c0, c1);
}

TEST(XtsTest, RangeMatchesPerSector) {
  Rng rng(13);
  std::vector<u8> key(32);
  rng.Fill(key.data(), key.size());
  auto xts = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  const u64 first = 77;
  std::vector<u8> pt(4 * 512), a(4 * 512), b(4 * 512);
  rng.Fill(pt.data(), pt.size());
  xts->EncryptRange(first, 512, pt.data(), a.data(), pt.size());
  for (int i = 0; i < 4; i++) {
    xts->EncryptSector(first + i, pt.data() + i * 512, b.data() + i * 512,
                       512);
  }
  EXPECT_EQ(a, b);
  std::vector<u8> back(pt.size());
  xts->DecryptRange(first, 512, a.data(), back.data(), a.size());
  EXPECT_EQ(back, pt);
}

TEST(XtsTest, InPlaceOperation) {
  Rng rng(17);
  std::vector<u8> key(32);
  rng.Fill(key.data(), key.size());
  auto xts = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> buf(1024), orig;
  rng.Fill(buf.data(), buf.size());
  orig = buf;
  xts->EncryptRange(5, 512, buf.data(), buf.data(), buf.size());
  EXPECT_NE(buf, orig);
  xts->DecryptRange(5, 512, buf.data(), buf.data(), buf.size());
  EXPECT_EQ(buf, orig);
}

TEST(XtsTest, PortableMatchesAesni) {
  if (!CpuHasAesNi()) GTEST_SKIP();
  Rng rng(19);
  std::vector<u8> key(32);
  rng.Fill(key.data(), key.size());
  auto fast = XtsCipher::Create(key.data(), key.size());
  auto slow = XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  slow->DisableAesni();
  std::vector<u8> pt(2048), a(2048), b(2048);
  rng.Fill(pt.data(), pt.size());
  fast->EncryptRange(123, 512, pt.data(), a.data(), pt.size());
  slow->EncryptRange(123, 512, pt.data(), b.data(), pt.size());
  EXPECT_EQ(a, b);
}

TEST(XtsTest, InvalidKeyLengthRejected) {
  u8 key[48] = {};
  EXPECT_FALSE(XtsCipher::Create(key, 48).ok());
  EXPECT_FALSE(XtsCipher::Create(key, 16).ok());
}

}  // namespace
}  // namespace nvmetro::crypto

// Tests for guest memory, the page allocator, IOMMU windows, and the
// hot-path arena pools.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/address_space.h"
#include "mem/arena.h"
#include "mem/guest_memory.h"

namespace nvmetro::mem {
namespace {

TEST(GuestMemoryTest, SizeRoundedToPage) {
  GuestMemory gm(kPageSize + 1);
  EXPECT_EQ(gm.size(), 2 * kPageSize);
}

TEST(GuestMemoryTest, ReadWriteRoundTrip) {
  GuestMemory gm(64 * KiB);
  const char msg[] = "hello nvme";
  ASSERT_TRUE(gm.Write(1234, msg, sizeof(msg)).ok());
  char out[sizeof(msg)] = {};
  ASSERT_TRUE(gm.Read(1234, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);
}

TEST(GuestMemoryTest, CrossPageAccess) {
  GuestMemory gm(64 * KiB);
  std::vector<u8> buf(3 * kPageSize, 0xAB);
  ASSERT_TRUE(gm.Write(kPageSize - 100, buf.data(), buf.size()).ok());
  std::vector<u8> out(buf.size());
  ASSERT_TRUE(gm.Read(kPageSize - 100, out.data(), out.size()).ok());
  EXPECT_EQ(buf, out);
}

TEST(GuestMemoryTest, OutOfBoundsRejected) {
  GuestMemory gm(16 * KiB);
  u8 b = 0;
  EXPECT_FALSE(gm.Read(gm.size(), &b, 1).ok());
  EXPECT_FALSE(gm.Write(gm.size() - 1, &b, 2).ok());
  EXPECT_EQ(gm.Translate(gm.size() - 1, 2), nullptr);
  EXPECT_NE(gm.Translate(gm.size() - 1, 1), nullptr);
}

TEST(GuestMemoryTest, OverflowingRangeRejected) {
  GuestMemory gm(16 * KiB);
  EXPECT_EQ(gm.Translate(~0ull - 2, 8), nullptr);
  EXPECT_EQ(gm.Translate(8, ~0ull), nullptr);
}

TEST(GuestMemoryTest, ZeroInitialized) {
  GuestMemory gm(16 * KiB);
  u64 v = 1;
  ASSERT_TRUE(gm.Read(0, &v, sizeof(v)).ok());
  EXPECT_EQ(v, 0u);
}

TEST(GuestMemoryTest, FillWorks) {
  GuestMemory gm(16 * KiB);
  ASSERT_TRUE(gm.Fill(100, 0x5A, 50).ok());
  u8 out[50];
  ASSERT_TRUE(gm.Read(100, out, 50).ok());
  for (u8 b : out) EXPECT_EQ(b, 0x5A);
}

TEST(AllocatorTest, AllocReturnsPageAligned) {
  GuestMemory gm(256 * KiB);
  auto a = gm.AllocPages(3);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a % kPageSize, 0u);
  EXPECT_EQ(gm.allocated_bytes(), 3 * kPageSize);
}

TEST(AllocatorTest, DistinctAllocationsDontOverlap) {
  GuestMemory gm(256 * KiB);
  auto a = gm.AllocPages(2);
  auto b = gm.AllocPages(2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a + 2 * kPageSize <= *b || *b + 2 * kPageSize <= *a);
}

TEST(AllocatorTest, ExhaustionReported) {
  GuestMemory gm(4 * kPageSize);
  ASSERT_TRUE(gm.AllocPages(4).ok());
  auto r = gm.AllocPages(1);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(AllocatorTest, FreeAllowsReuseAndCoalesces) {
  GuestMemory gm(8 * kPageSize);
  auto a = gm.AllocPages(4);
  auto b = gm.AllocPages(4);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  gm.FreePages(*a, 4);
  gm.FreePages(*b, 4);
  // After coalescing, an 8-page run must be available.
  auto c = gm.AllocPages(8);
  EXPECT_TRUE(c.ok());
}

TEST(AllocatorTest, ZeroPagesRejected) {
  GuestMemory gm(16 * KiB);
  EXPECT_FALSE(gm.AllocPages(0).ok());
}

// --- IommuSpace ---------------------------------------------------------------

TEST(IommuTest, PassesThroughBaseSpace) {
  GuestMemory gm(64 * KiB);
  IommuSpace iommu(&gm, gm.size());
  const char msg[] = "dma";
  ASSERT_TRUE(iommu.Write(42, msg, sizeof(msg)).ok());
  char out[4] = {};
  ASSERT_TRUE(gm.Read(42, out, sizeof(msg)).ok());
  EXPECT_STREQ(out, msg);
}

TEST(IommuTest, MapsHostBuffers) {
  GuestMemory gm(64 * KiB);
  IommuSpace iommu(&gm, gm.size());
  std::vector<u8> host(1000, 0);
  u64 iova = iommu.MapHostBuffer(host.data(), host.size());
  EXPECT_GE(iova, gm.size());
  const char msg[] = "through the window";
  ASSERT_TRUE(iommu.Write(iova + 10, msg, sizeof(msg)).ok());
  EXPECT_EQ(std::memcmp(host.data() + 10, msg, sizeof(msg)), 0);
}

TEST(IommuTest, WindowBoundsEnforced) {
  GuestMemory gm(16 * KiB);
  IommuSpace iommu(&gm, gm.size());
  std::vector<u8> host(100);
  u64 iova = iommu.MapHostBuffer(host.data(), host.size());
  EXPECT_NE(iommu.Translate(iova, 100), nullptr);
  EXPECT_EQ(iommu.Translate(iova, 101), nullptr);
  EXPECT_EQ(iommu.Translate(iova + 50, 51), nullptr);
}

TEST(IommuTest, UnmapRevokes) {
  GuestMemory gm(16 * KiB);
  IommuSpace iommu(&gm, gm.size());
  std::vector<u8> host(100);
  u64 iova = iommu.MapHostBuffer(host.data(), host.size());
  iommu.Unmap(iova);
  EXPECT_EQ(iommu.Translate(iova, 1), nullptr);
  EXPECT_EQ(iommu.mapped_windows(), 0u);
}

TEST(IommuTest, MultipleWindowsIndependent) {
  GuestMemory gm(16 * KiB);
  IommuSpace iommu(&gm, gm.size());
  std::vector<u8> h1(64, 1), h2(64, 2);
  u64 i1 = iommu.MapHostBuffer(h1.data(), h1.size());
  u64 i2 = iommu.MapHostBuffer(h2.data(), h2.size());
  EXPECT_NE(i1, i2);
  u8 v = 0;
  ASSERT_TRUE(iommu.Read(i1, &v, 1).ok());
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(iommu.Read(i2, &v, 1).ok());
  EXPECT_EQ(v, 2);
  // Gap between windows is unmapped.
  EXPECT_EQ(iommu.Translate(i1 + 4096 + 64, 1), nullptr);
}

TEST(IommuTest, UnmappedRangeBelowWindowBaseFails) {
  IommuSpace iommu(nullptr, 1 * MiB);
  EXPECT_EQ(iommu.Translate(100, 4), nullptr);
}

// --- Arena pools (DESIGN.md §14) ----------------------------------------------

TEST(SlabPoolTest, PointersStableAcrossGrowth) {
  SlabPool<u64, 4> pool;
  u64* first = nullptr;
  for (u32 i = 0; i < 100; i++) {
    u32 idx = pool.PushBack();
    *pool.at(idx) = i;
    if (i == 0) first = pool.at(0);
  }
  // Growth appends chunks; existing elements never move.
  EXPECT_EQ(pool.at(0), first);
  for (u32 i = 0; i < 100; i++) EXPECT_EQ(*pool.at(i), i);
  EXPECT_EQ(pool.size(), 100u);
  EXPECT_GE(pool.capacity(), 100u);
}

TEST(SlabPoolTest, GrowthNotesOncePerChunk) {
  u64 before = HotPathAllocs::count();
  SlabPool<u64, 8> pool;
  for (u32 i = 0; i < 24; i++) pool.PushBack();
  // 24 elements in chunks of 8 = exactly 3 growth events.
  EXPECT_EQ(HotPathAllocs::count() - before, 3u);
}

TEST(GenTableTest, AllocFindTakeRoundTrip) {
  GenTable t;
  u16 h1, h2;
  ASSERT_TRUE(t.Alloc(111, &h1));
  ASSERT_TRUE(t.Alloc(222, &h2));
  EXPECT_NE(h1, h2);
  EXPECT_EQ(t.Find(h1), 111u);
  EXPECT_EQ(t.Find(h2), 222u);
  EXPECT_EQ(t.in_use(), 2u);
  EXPECT_EQ(t.Take(h1), 111u);
  EXPECT_EQ(t.in_use(), 1u);
  EXPECT_EQ(t.Find(h1), GenTable::kNoValue);
}

TEST(GenTableTest, StaleHandleRejectedAfterRecycle) {
  GenTable t;
  u16 old_h;
  ASSERT_TRUE(t.Alloc(111, &old_h));
  ASSERT_TRUE(t.Free(old_h));
  // Recycle the same slot for a different value: the freed handle's
  // generation no longer matches, so it must not resolve to the new
  // occupant (the late-completion hazard the table exists to stop).
  u16 new_h;
  ASSERT_TRUE(t.Alloc(222, &new_h));
  EXPECT_EQ(new_h & GenTable::kSlotMask, old_h & GenTable::kSlotMask);
  EXPECT_NE(new_h, old_h);
  EXPECT_EQ(t.Find(old_h), GenTable::kNoValue);
  EXPECT_FALSE(t.Free(old_h));
  EXPECT_EQ(t.Take(old_h), GenTable::kNoValue);
  EXPECT_EQ(t.Find(new_h), 222u);
}

TEST(GenTableTest, DoubleFreeRejected) {
  GenTable t;
  u16 h;
  ASSERT_TRUE(t.Alloc(7, &h));
  EXPECT_TRUE(t.Free(h));
  EXPECT_FALSE(t.Free(h));
  EXPECT_EQ(t.in_use(), 0u);
}

TEST(GenTableTest, FreeValueReleasesEverySlotHoldingIt) {
  GenTable t;
  u16 a, b, c;
  ASSERT_TRUE(t.Alloc(5, &a));
  ASSERT_TRUE(t.Alloc(9, &b));
  ASSERT_TRUE(t.Alloc(5, &c));
  EXPECT_EQ(t.FreeValue(5), 2u);
  EXPECT_EQ(t.in_use(), 1u);
  EXPECT_EQ(t.Find(a), GenTable::kNoValue);
  EXPECT_EQ(t.Find(c), GenTable::kNoValue);
  EXPECT_EQ(t.Find(b), 9u);
}

TEST(GenTableTest, ExhaustsAtMaxSlotsAndRecovers) {
  GenTable t;
  std::vector<u16> handles;
  handles.reserve(GenTable::kMaxSlots);
  for (u32 i = 0; i < GenTable::kMaxSlots; i++) {
    u16 h;
    ASSERT_TRUE(t.Alloc(i, &h));
    handles.push_back(h);
  }
  u16 h;
  EXPECT_FALSE(t.Alloc(99, &h));
  ASSERT_TRUE(t.Free(handles[0]));
  EXPECT_TRUE(t.Alloc(99, &h));
}

TEST(GenTableTest, SteadyStateReuseDoesNotGrow) {
  GenTable t;
  u16 h;
  ASSERT_TRUE(t.Alloc(1, &h));  // first alloc grows by one chunk
  ASSERT_TRUE(t.Free(h));
  u64 before = HotPathAllocs::count();
  HotPathAllocs::BeginSteadyState();
  for (u32 i = 0; i < 10'000; i++) {
    ASSERT_TRUE(t.Alloc(i, &h));
    EXPECT_EQ(t.Take(h), i);
  }
  HotPathAllocs::EndSteadyState();
  EXPECT_EQ(HotPathAllocs::steady_state_allocs(), 0u);
  EXPECT_EQ(HotPathAllocs::count(), before);
}

TEST(HotPathAllocsTest, SteadyStateWindowTalliesGrowth) {
  HotPathAllocs::BeginSteadyState();
  EXPECT_TRUE(HotPathAllocs::in_steady_state());
  EXPECT_EQ(HotPathAllocs::steady_state_allocs(), 0u);
  SlabPool<u32, 4> pool;
  pool.PushBack();  // grows inside the window
  EXPECT_EQ(HotPathAllocs::steady_state_allocs(), 1u);
  HotPathAllocs::EndSteadyState();
  EXPECT_FALSE(HotPathAllocs::in_steady_state());
}

}  // namespace
}  // namespace nvmetro::mem

// Tests for the workload harnesses: fio (closed loop, rate mode, CPU
// accounting), the solution-backed filesystem adapter, and YCSB over
// MiniKv on a full storage stack.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/factory.h"
#include "common/rng.h"
#include "workload/fio.h"
#include "workload/solution_fs.h"
#include "workload/ycsb.h"

namespace nvmetro::workload {
namespace {

using baselines::SolutionBundle;
using baselines::SolutionKind;
using baselines::SolutionParams;
using baselines::StorageSolution;
using baselines::Testbed;

struct FioFixture : ::testing::Test {
  std::unique_ptr<Testbed> tb = std::make_unique<Testbed>();
  std::unique_ptr<SolutionBundle> bundle;

  StorageSolution* Sol(SolutionKind kind) {
    bundle = SolutionBundle::Create(tb.get(), kind);
    EXPECT_NE(bundle, nullptr);
    return bundle->vm_solution(0);
  }

  static FioConfig QuickConfig() {
    FioConfig cfg;
    cfg.warmup = 10 * kMs;
    cfg.duration = 60 * kMs;
    cfg.random_region = 64 * MiB;
    cfg.seq_region_per_job = 16 * MiB;
    return cfg;
  }
};

TEST_F(FioFixture, RandomReadProducesThroughputAndLatency) {
  StorageSolution* sol = Sol(SolutionKind::kNvmetro);
  FioConfig cfg = QuickConfig();
  cfg.block_size = 4096;
  cfg.queue_depth = 8;
  cfg.mode = FioMode::kRandRead;
  FioResult r = Fio::Run(&tb->sim, sol, cfg);
  EXPECT_GT(r.iops, 10'000);  // QD8 on a ~70us device
  EXPECT_GT(r.lat.count(), 100u);
  EXPECT_GT(r.lat.Median(), 10 * kUs);
  EXPECT_LT(r.lat.Median(), 1 * kMs);
  EXPECT_LE(r.lat.Median(), r.lat.P99());
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.total_cpu_pct(), 0.0);
}

TEST_F(FioFixture, HigherQueueDepthGivesMoreIops) {
  StorageSolution* sol = Sol(SolutionKind::kNvmetro);
  FioConfig cfg = QuickConfig();
  cfg.mode = FioMode::kRandRead;
  cfg.block_size = 512;
  cfg.queue_depth = 1;
  double iops_qd1 = Fio::Run(&tb->sim, sol, cfg).iops;
  cfg.queue_depth = 32;
  double iops_qd32 = Fio::Run(&tb->sim, sol, cfg).iops;
  EXPECT_GT(iops_qd32, iops_qd1 * 5);
}

TEST_F(FioFixture, SequentialLargeBlocksAreBandwidthBound) {
  StorageSolution* sol = Sol(SolutionKind::kNvmetro);
  FioConfig cfg = QuickConfig();
  cfg.mode = FioMode::kSeqRead;
  cfg.block_size = 128 * KiB;
  cfg.queue_depth = 32;
  FioResult r = Fio::Run(&tb->sim, sol, cfg);
  EXPECT_GT(r.mbps, 2'000);  // near the 3.5 GB/s device
  EXPECT_LT(r.mbps, 4'000);
}

TEST_F(FioFixture, RateModeHoldsRequestedIops) {
  StorageSolution* sol = Sol(SolutionKind::kNvmetro);
  FioConfig cfg = QuickConfig();
  cfg.mode = FioMode::kRandRead;
  cfg.block_size = 512;
  cfg.queue_depth = 4;
  cfg.rate_iops = 10'000;
  FioResult r = Fio::Run(&tb->sim, sol, cfg);
  EXPECT_NEAR(r.iops, 10'000, 1'500);
}

TEST_F(FioFixture, MixedModeIssuesBothDirections) {
  StorageSolution* sol = Sol(SolutionKind::kNvmetro);
  FioConfig cfg = QuickConfig();
  cfg.mode = FioMode::kRandRW;
  cfg.queue_depth = 16;
  FioResult r = Fio::Run(&tb->sim, sol, cfg);
  EXPECT_GT(r.read_lat.count(), 100u);
  EXPECT_GT(r.write_lat.count(), 100u);
  double ratio = static_cast<double>(r.read_lat.count()) /
                 static_cast<double>(r.lat.count());
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

TEST_F(FioFixture, MultiSolutionRunKeepsPerVmResults) {
  SolutionParams params;
  params.num_vms = 2;
  bundle = SolutionBundle::Create(tb.get(), SolutionKind::kNvmetro, params);
  ASSERT_NE(bundle, nullptr);
  FioConfig cfg = QuickConfig();
  cfg.mode = FioMode::kRandRead;
  cfg.queue_depth = 8;
  auto results = Fio::RunMulti(
      &tb->sim, {bundle->vm_solution(0), bundle->vm_solution(1)}, cfg);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].iops, 1'000);
  EXPECT_GT(results[1].iops, 1'000);
}

// --- SolutionFsBackend --------------------------------------------------------

TEST_F(FioFixture, FsBackendAlignedAndUnalignedWrites) {
  StorageSolution* sol = Sol(SolutionKind::kNvmetro);
  SolutionFsBackend fs(sol, 0, 1 * MiB, 16 * MiB);
  Rng rng(3);
  std::vector<u8> a(4096), b(777), c(300);
  rng.Fill(a.data(), a.size());
  rng.Fill(b.data(), b.size());
  rng.Fill(c.data(), c.size());
  int done = 0;
  fs.Write(0, a.data(), a.size(), [&](Status st) {
    EXPECT_TRUE(st.ok());
    done++;
  });
  fs.Write(4096, b.data(), b.size(), [&](Status st) {
    EXPECT_TRUE(st.ok());
    done++;
  });
  fs.Write(4096 + 777, c.data(), c.size(), [&](Status st) {
    EXPECT_TRUE(st.ok());
    done++;
  });
  tb->sim.Run();
  ASSERT_EQ(done, 3);
  EXPECT_GT(fs.rmw_writes(), 0u);
  // Unaligned read across all three writes.
  std::vector<u8> out(4096 + 777 + 300);
  Status st = Internal("pending");
  fs.Read(0, out.data(), out.size(), [&](Status s) { st = s; });
  tb->sim.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(0, memcmp(out.data(), a.data(), a.size()));
  EXPECT_EQ(0, memcmp(out.data() + 4096, b.data(), b.size()));
  EXPECT_EQ(0, memcmp(out.data() + 4096 + 777, c.data(), c.size()));
}

// --- YCSB end-to-end -------------------------------------------------------------

struct YcsbFixture : ::testing::Test {
  std::unique_ptr<Testbed> tb = std::make_unique<Testbed>();
  std::unique_ptr<SolutionBundle> bundle;
  std::unique_ptr<SolutionFsBackend> backend;
  std::unique_ptr<fsx::FlatFs> fs;
  std::unique_ptr<kv::MiniKv> db;

  void BuildStack(SolutionKind kind) {
    bundle = SolutionBundle::Create(tb.get(), kind);
    ASSERT_NE(bundle, nullptr);
    StorageSolution* sol = bundle->vm_solution(0);
    backend = std::make_unique<SolutionFsBackend>(sol, 0, 0,
                                                  sol->capacity_bytes());
    bool ok = false;
    fsx::FlatFs::Format(backend.get(), [&](Status st) {
      ASSERT_TRUE(st.ok()) << st.ToString();
      ok = true;
    });
    tb->sim.Run();
    ASSERT_TRUE(ok);
    ok = false;
    fsx::FlatFs::Mount(backend.get(),
                       [&](Result<std::unique_ptr<fsx::FlatFs>> r) {
                         ASSERT_TRUE(r.ok()) << r.status().ToString();
                         fs = std::move(*r);
                         ok = true;
                       });
    tb->sim.Run();
    ASSERT_TRUE(ok);
    kv::MiniKvOptions opt;
    opt.cpu = sol->vm()->vcpu(0);
    opt.memtable_bytes = 256 * KiB;
    ok = false;
    kv::MiniKv::Open(&tb->sim, fs.get(), opt,
                     [&](Result<std::unique_ptr<kv::MiniKv>> r) {
                       ASSERT_TRUE(r.ok()) << r.status().ToString();
                       db = std::move(*r);
                       ok = true;
                     });
    tb->sim.Run();
    ASSERT_TRUE(ok);
  }
};

TEST_F(YcsbFixture, LoadThenWorkloadAOnNvmetro) {
  BuildStack(SolutionKind::kNvmetro);
  YcsbConfig cfg;
  cfg.workload = 'a';
  cfg.record_count = 500;
  cfg.op_count = 300;
  cfg.value_bytes = 200;
  bool loaded = false;
  Ycsb::Load(db.get(), cfg, [&](Status st) {
    ASSERT_TRUE(st.ok()) << st.ToString();
    loaded = true;
  });
  tb->sim.Run();
  ASSERT_TRUE(loaded);
  // Spot-check loaded values round-tripped through the whole stack.
  for (u64 k : {u64{0}, u64{123}, u64{499}}) {
    Result<std::string> r = Internal("pending");
    db->Get(Ycsb::KeyFor(k),
            [&](Result<std::string> got) { r = std::move(got); });
    tb->sim.Run();
    ASSERT_TRUE(r.ok()) << k;
    EXPECT_EQ(*r, Ycsb::ValueFor(k, cfg.value_bytes));
  }

  YcsbResult result;
  bool ran = false;
  Ycsb::Run(&tb->sim, db.get(), bundle->vm_solution(0)->vm()->vcpu(1), cfg,
            [&](YcsbResult r) {
              result = std::move(r);
              ran = true;
            });
  tb->sim.Run();
  ASSERT_TRUE(ran);
  EXPECT_EQ(result.ops, cfg.op_count);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(result.ops_per_sec, 100.0);
}

class YcsbWorkloadTest : public YcsbFixture,
                         public ::testing::WithParamInterface<char> {};

TEST_P(YcsbWorkloadTest, AllWorkloadsCompleteOnEncryptedStack) {
  BuildStack(SolutionKind::kNvmetroEncryption);
  YcsbConfig cfg;
  cfg.workload = GetParam();
  cfg.record_count = 300;
  cfg.op_count = 150;
  cfg.value_bytes = 150;
  cfg.scan_max_len = 20;
  bool loaded = false;
  Ycsb::Load(db.get(), cfg, [&](Status st) {
    ASSERT_TRUE(st.ok());
    loaded = true;
  });
  tb->sim.Run();
  ASSERT_TRUE(loaded);
  bool ran = false;
  YcsbResult result;
  Ycsb::Run(&tb->sim, db.get(), bundle->vm_solution(0)->vm()->vcpu(1), cfg,
            [&](YcsbResult r) {
              result = std::move(r);
              ran = true;
            });
  tb->sim.Run();
  ASSERT_TRUE(ran) << "workload " << GetParam();
  EXPECT_EQ(result.ops, cfg.op_count);
  EXPECT_EQ(result.failures, 0u) << "workload " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Mixes, YcsbWorkloadTest,
                         ::testing::Values('a', 'b', 'c', 'd', 'e', 'f'));

TEST_P(YcsbWorkloadTest, OpMixMatchesYcsbSpec) {
  // Statistical property: the operations each workload actually issues
  // (observed via the store's counters) must match the published YCSB
  // core-workload mixes within binomial noise.
  BuildStack(SolutionKind::kNvmetro);
  YcsbConfig cfg;
  cfg.workload = GetParam();
  cfg.record_count = 400;
  cfg.op_count = 2'000;
  cfg.value_bytes = 64;
  cfg.scan_max_len = 10;
  bool loaded = false;
  Ycsb::Load(db.get(), cfg, [&](Status st) {
    ASSERT_TRUE(st.ok());
    loaded = true;
  });
  tb->sim.Run();
  ASSERT_TRUE(loaded);
  u64 gets0 = db->stats().gets;
  u64 puts0 = db->stats().puts;
  u64 scans0 = db->stats().scans;
  bool ran = false;
  Ycsb::Run(&tb->sim, db.get(), bundle->vm_solution(0)->vm()->vcpu(1), cfg,
            [&](YcsbResult) { ran = true; });
  tb->sim.Run();
  ASSERT_TRUE(ran);
  double n = static_cast<double>(cfg.op_count);
  double gets = static_cast<double>(db->stats().gets - gets0) / n;
  double puts = static_cast<double>(db->stats().puts - puts0) / n;
  double scans = static_cast<double>(db->stats().scans - scans0) / n;
  const double tol = 0.04;  // ~4 sigma for p=.5, n=2000
  switch (GetParam()) {
    case 'a':  // 50% read / 50% update
      EXPECT_NEAR(gets, 0.5, tol);
      EXPECT_NEAR(puts, 0.5, tol);
      EXPECT_EQ(scans, 0.0);
      break;
    case 'b':  // 95% read / 5% update
      EXPECT_NEAR(gets, 0.95, tol);
      EXPECT_NEAR(puts, 0.05, tol);
      break;
    case 'c':  // read-only
      EXPECT_EQ(gets, 1.0);
      EXPECT_EQ(puts, 0.0);
      break;
    case 'd':  // 95% read-latest / 5% insert
      EXPECT_NEAR(gets, 0.95, tol);
      EXPECT_NEAR(puts, 0.05, tol);
      break;
    case 'e':  // 95% scan / 5% insert
      EXPECT_NEAR(scans, 0.95, tol);
      EXPECT_NEAR(puts, 0.05, tol);
      EXPECT_EQ(gets, 0.0);
      break;
    case 'f':  // 50% read / 50% RMW: every op reads, half also write
      EXPECT_NEAR(gets, 1.0, tol);
      EXPECT_NEAR(puts, 0.5, tol);
      break;
  }
}

TEST_F(YcsbFixture, WorkloadDReadsSkewTowardLatestInserts) {
  // YCSB D's read distribution is "latest": most reads target recently
  // inserted records. Verify through the store: after running D, the
  // most recent keys must be read far more often than the oldest —
  // observable as D completing with zero failures even though its reads
  // target keys that only exist because D's own inserts created them.
  BuildStack(SolutionKind::kNvmetro);
  YcsbConfig cfg;
  cfg.workload = 'd';
  cfg.record_count = 200;
  cfg.op_count = 1'000;
  cfg.value_bytes = 64;
  bool loaded = false;
  Ycsb::Load(db.get(), cfg, [&](Status st) {
    ASSERT_TRUE(st.ok());
    loaded = true;
  });
  tb->sim.Run();
  ASSERT_TRUE(loaded);
  YcsbResult result;
  bool ran = false;
  Ycsb::Run(&tb->sim, db.get(), bundle->vm_solution(0)->vm()->vcpu(1), cfg,
            [&](YcsbResult r) {
              result = std::move(r);
              ran = true;
            });
  tb->sim.Run();
  ASSERT_TRUE(ran);
  // ~50 inserts happened (5% of 1000); reads that followed the latest
  // distribution found them. A mismatch between the insert frontier and
  // the read distribution shows up as read failures.
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(db->stats().puts, 20u);
}

}  // namespace
}  // namespace nvmetro::workload

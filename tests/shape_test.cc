// Shape-regression tests: the qualitative relationships of the paper's
// evaluation, asserted with short fio runs so that cost-model changes
// that would break a reproduced figure fail CI instead of silently
// shifting the results. Each test names the paper claim it guards.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/factory.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"
#include "workload/fio.h"

namespace nvmetro {
namespace {

using baselines::SolutionBundle;
using baselines::SolutionKind;
using baselines::SolutionParams;
using baselines::Testbed;
using workload::Fio;
using workload::FioConfig;
using workload::FioMode;
using workload::FioResult;

FioResult RunShape(SolutionKind kind, u64 bs, u32 qd, u32 jobs,
                   FioMode mode, double rate = 0) {
  Testbed tb;
  auto bundle = SolutionBundle::Create(&tb, kind);
  EXPECT_NE(bundle, nullptr);
  FioConfig cfg;
  cfg.block_size = bs;
  cfg.queue_depth = qd;
  cfg.num_jobs = jobs;
  cfg.mode = mode;
  cfg.rate_iops = rate;
  cfg.warmup = 20 * kMs;
  cfg.duration = 60 * kMs;
  cfg.random_region = 256 * MiB;
  cfg.seq_region_per_job = 768 * MiB;
  return Fio::Run(&tb.sim, bundle->vm_solution(0), cfg);
}

// §V-B: "NVMetro with a dummy eBPF classifier performs similarly to
// MDev-NVMe, SPDK and device passthrough."
TEST(ShapeBasic, PolledSolutionsPerformSimilarly) {
  double nvmetro =
      RunShape(SolutionKind::kNvmetro, 512, 128, 1, FioMode::kRandRead).iops;
  double mdev =
      RunShape(SolutionKind::kMdev, 512, 128, 1, FioMode::kRandRead).iops;
  double spdk =
      RunShape(SolutionKind::kSpdk, 512, 128, 1, FioMode::kRandRead).iops;
  double pt = RunShape(SolutionKind::kPassthrough, 512, 128, 1,
                       FioMode::kRandRead)
                  .iops;
  EXPECT_NEAR(nvmetro / mdev, 1.0, 0.1);
  EXPECT_NEAR(nvmetro / spdk, 1.0, 0.15);
  EXPECT_NEAR(nvmetro / pt, 1.0, 0.15);
}

// §V-B: "NVMetro is 2.7x faster at 512B RR than QEMU at QD1/1 job."
TEST(ShapeBasic, QemuMuchSlowerAt512bQd1) {
  double nvmetro =
      RunShape(SolutionKind::kNvmetro, 512, 1, 1, FioMode::kRandRead).iops;
  double qemu =
      RunShape(SolutionKind::kQemu, 512, 1, 1, FioMode::kRandRead).iops;
  EXPECT_GT(nvmetro / qemu, 2.0);
  EXPECT_LT(nvmetro / qemu, 3.5);
}

// §V-B: "QEMU at 16K/QD128/1 job performs the best, being between 19% to
// 32% faster than NVMetro."
TEST(ShapeBasic, QemuWinsAt16kSeqReadQd128) {
  double nvmetro =
      RunShape(SolutionKind::kNvmetro, 16 * KiB, 128, 1, FioMode::kSeqRead)
          .iops;
  double qemu =
      RunShape(SolutionKind::kQemu, 16 * KiB, 128, 1, FioMode::kSeqRead)
          .iops;
  EXPECT_GT(qemu / nvmetro, 1.10);
  EXPECT_LT(qemu / nvmetro, 1.45);
}

// §V-B: "vhost-scsi despite being in-kernel falls behind in performance,
// being one of the worst performers regardless of configuration."
TEST(ShapeBasic, VhostTrailsEverywhere) {
  for (u32 qd : {1u, 128u}) {
    double nvmetro =
        RunShape(SolutionKind::kNvmetro, 512, qd, 1, FioMode::kRandRead)
            .iops;
    double vhost =
        RunShape(SolutionKind::kVhostScsi, 512, qd, 1, FioMode::kRandRead)
            .iops;
    EXPECT_LT(vhost, nvmetro * 0.85) << "qd=" << qd;
  }
}

// Fig. 4: polling solutions share median latencies; passthrough's median
// is ~18% higher at 512B RR; vhost much higher; QEMU ~3.4x.
TEST(ShapeLatency, MedianOrderingAtFixedRate) {
  auto median = [&](SolutionKind kind) {
    return static_cast<double>(
        RunShape(kind, 512, 4, 1, FioMode::kRandRead, 10'000).lat.Median());
  };
  double nvmetro = median(SolutionKind::kNvmetro);
  double mdev = median(SolutionKind::kMdev);
  double pt = median(SolutionKind::kPassthrough);
  double vhost = median(SolutionKind::kVhostScsi);
  double qemu = median(SolutionKind::kQemu);
  EXPECT_NEAR(nvmetro / mdev, 1.0, 0.05);
  EXPECT_GT(pt / nvmetro, 1.04);   // paper: +18.2%
  EXPECT_LT(pt / nvmetro, 1.35);
  EXPECT_GT(vhost / nvmetro, 1.5);  // paper: +73.6%
  EXPECT_GT(qemu / nvmetro, 2.2);   // paper: 3.4x
  EXPECT_LT(qemu / nvmetro, 4.5);
}

// Fig. 4: "the only solution with a lower 99th-percentile write latency
// than NVMetro is SPDK."
TEST(ShapeLatency, SpdkHasLowerWriteTail) {
  auto p99w = [&](SolutionKind kind) {
    return static_cast<double>(
        RunShape(kind, 512, 4, 1, FioMode::kRandWrite, 10'000).lat.P99());
  };
  double nvmetro = p99w(SolutionKind::kNvmetro);
  double spdk = p99w(SolutionKind::kSpdk);
  EXPECT_LT(spdk, nvmetro);
  EXPECT_GT(spdk, nvmetro * 0.75);  // 5.9-18% lower in the paper
}

// §V-C: "our UIF is up to 1.6x, 1.5x and 1.4x faster than dm-crypt" at
// (512B, 16K, 128K)/QD1/1job.
TEST(ShapeEncryption, UifBeatsDmCryptAtQd1) {
  struct Case {
    u64 bs;
    FioMode mode;
    double lo, hi;
  };
  for (const Case& c : {Case{512, FioMode::kRandRead, 1.3, 2.0},
                        Case{16 * KiB, FioMode::kSeqRead, 1.25, 1.9},
                        Case{128 * KiB, FioMode::kSeqRead, 1.1, 1.7}}) {
    double uif = RunShape(SolutionKind::kNvmetroEncryption, c.bs, 1, 1,
                          c.mode)
                     .iops;
    double dmc = RunShape(SolutionKind::kDmCrypt, c.bs, 1, 1, c.mode).iops;
    EXPECT_GT(uif / dmc, c.lo) << c.bs;
    EXPECT_LT(uif / dmc, c.hi) << c.bs;
  }
}

// §V-C: "3.2x faster with 16K reads/QD128/4 jobs" — the gap widens with
// parallelism (dm-crypt serializes on one kcryptd).
TEST(ShapeEncryption, GapWidensAtHighParallelism) {
  double uif = RunShape(SolutionKind::kNvmetroEncryption, 16 * KiB, 128, 4,
                        FioMode::kSeqRead)
                   .iops;
  double dmc =
      RunShape(SolutionKind::kDmCrypt, 16 * KiB, 128, 4, FioMode::kSeqRead)
          .iops;
  EXPECT_GT(uif / dmc, 2.2);
}

// §V-C: SGX performs like non-SGX except at large blocks / high QD
// (one fewer crypto thread): "up to 50% and 75% slower".
TEST(ShapeEncryption, SgxMatchesExceptHighParallelism) {
  double sgx_small = RunShape(SolutionKind::kNvmetroSgx, 512, 1, 1,
                              FioMode::kRandRead)
                         .iops;
  double plain_small = RunShape(SolutionKind::kNvmetroEncryption, 512, 1, 1,
                                FioMode::kRandRead)
                           .iops;
  EXPECT_NEAR(sgx_small / plain_small, 1.0, 0.1);
  double sgx_big = RunShape(SolutionKind::kNvmetroSgx, 16 * KiB, 128, 4,
                            FioMode::kSeqRead)
                       .iops;
  double plain_big = RunShape(SolutionKind::kNvmetroEncryption, 16 * KiB,
                              128, 4, FioMode::kSeqRead)
                         .iops;
  EXPECT_LT(sgx_big / plain_big, 0.65);
}

// §V-D: "NVMetro outperforms dm-mirror at all configurations by 68%,
// 220% and 291%" at 512B/QD1, 512B/QD128/4, 128K/QD128/4 reads.
TEST(ShapeReplication, NvmetroReadsBeatDmMirror) {
  double n1 = RunShape(SolutionKind::kNvmetroReplication, 512, 1, 1,
                       FioMode::kRandRead)
                  .iops;
  double d1 =
      RunShape(SolutionKind::kDmMirror, 512, 1, 1, FioMode::kRandRead).iops;
  EXPECT_GT(n1 / d1, 1.4);
  EXPECT_LT(n1 / d1, 2.4);
  double n2 = RunShape(SolutionKind::kNvmetroReplication, 128 * KiB, 128, 4,
                       FioMode::kSeqRead)
                  .iops;
  double d2 = RunShape(SolutionKind::kDmMirror, 128 * KiB, 128, 4,
                       FioMode::kSeqRead)
                  .iops;
  EXPECT_GT(n2 / d2, 2.5);
}

// §V-E: passthrough uses the least CPU; SPDK the most (always-spinning
// reactors).
TEST(ShapeCpu, PassthroughLowestSpdkHighest) {
  auto cpu = [&](SolutionKind kind) {
    FioResult r = RunShape(kind, 512, 128, 4, FioMode::kRandRead);
    return r.total_cpu_pct();
  };
  double pt = cpu(SolutionKind::kPassthrough);
  double nvmetro = cpu(SolutionKind::kNvmetro);
  double spdk = cpu(SolutionKind::kSpdk);
  EXPECT_LT(pt, nvmetro);
  EXPECT_GT(spdk, nvmetro);
}

// §V-E: at QD1 NVMetro's adaptive workers keep its CPU far below a
// spinning core; SPDK burns >=100% regardless.
TEST(ShapeCpu, AdaptiveWorkersIdleCheaply) {
  FioResult nvmetro = RunShape(SolutionKind::kNvmetro, 512, 1, 1,
                               FioMode::kRandRead);
  FioResult spdk =
      RunShape(SolutionKind::kSpdk, 512, 1, 1, FioMode::kRandRead);
  EXPECT_LT(nvmetro.total_cpu_pct(), 80);
  EXPECT_GT(spdk.total_cpu_pct(), 100);
}

// Fig. 5: aggregate throughput grows with VM count at low queue depth
// under ONE shared router worker.
TEST(ShapeScalability, ThroughputGrowsWithVmCount) {
  auto run_vms = [&](u32 n) {
    Testbed tb;
    SolutionParams params;
    params.num_vms = n;
    params.vm_cfg.vcpus = 1;
    params.vm_cfg.memory_bytes = 64 * MiB;
    params.router_workers = 1;
    auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro,
                                         params);
    EXPECT_NE(bundle, nullptr);
    FioConfig cfg;
    cfg.block_size = 512;
    cfg.queue_depth = 4;
    cfg.mode = FioMode::kRandRead;
    cfg.random_region = 128 * MiB;
    cfg.warmup = 20 * kMs;
    cfg.duration = 60 * kMs;
    std::vector<baselines::StorageSolution*> sols;
    for (u32 i = 0; i < n; i++) sols.push_back(bundle->vm_solution(i));
    double total = 0;
    for (const auto& r : Fio::RunMulti(&tb.sim, sols, cfg)) {
      total += r.iops;
    }
    return total;
  };
  double one = run_vms(1);
  double four = run_vms(4);
  EXPECT_GT(four, one * 3.0);
}

// §III-B / ablation: classifier flexibility is ~free on the fast path —
// even a program padded to hundreds of verified eBPF instructions must
// not dent throughput (interpretation is nanoseconds per request against
// a multi-microsecond device).
TEST(ShapeAblation, ClassifierComplexityIsFree) {
  auto run_padded = [&](u32 pad) {
    Testbed tb;
    auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro);
    EXPECT_NE(bundle, nullptr);
    std::string text;
    for (u32 i = 0; i < pad; i++) text += "  mov r3, 7\n";
    text += functions::PassthroughClassifierAsm();
    auto prog = ebpf::Assemble(text, {});
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    EXPECT_TRUE(bundle->nvmetro_host()
                    ->controller(0)
                    ->InstallClassifier(std::move(*prog))
                    .ok());
    FioConfig cfg;
    cfg.block_size = 512;
    cfg.queue_depth = 128;
    cfg.mode = FioMode::kRandRead;
    cfg.random_region = 256 * MiB;
    cfg.warmup = 20 * kMs;
    cfg.duration = 60 * kMs;
    return Fio::Run(&tb.sim, bundle->vm_solution(0), cfg).iops;
  };
  double plain = run_padded(0);
  double padded = run_padded(256);
  EXPECT_GT(padded, plain * 0.98);
}

// The design claim the whole benchmark suite rests on: the simulation is
// deterministic — same seed, same testbed, bit-identical results. Run a
// nontrivial full stack (encryption over the UIF path) twice and demand
// exact equality of throughput, latency percentiles, and CPU.
TEST(ShapeDeterminism, IdenticalRunsProduceIdenticalResults) {
  auto run_once = [&]() {
    return RunShape(SolutionKind::kNvmetroEncryption, 4096, 16, 2,
                    FioMode::kRandRW);
  };
  FioResult a = run_once();
  FioResult b = run_once();
  EXPECT_EQ(a.iops, b.iops);
  EXPECT_EQ(a.lat.Median(), b.lat.Median());
  EXPECT_EQ(a.lat.P99(), b.lat.P99());
  EXPECT_EQ(a.host_cpu_pct, b.host_cpu_pct);
  EXPECT_EQ(a.guest_cpu_pct, b.guest_cpu_pct);
  EXPECT_GT(a.iops, 0.0);
}

}  // namespace
}  // namespace nvmetro

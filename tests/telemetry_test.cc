// Telemetry layer tests: span analytics (exact latency attribution),
// windowed time-series sampling, the SLO watchdog, and the Perfetto /
// Prometheus exporters with their strict validators.
//
// The load-bearing invariant is exactness: for every analyzed request,
// the per-stage nanosecond breakdown must sum to the end-to-end latency
// measured independently from the first and last trace timestamps —
// across all five routing paths, under batching, and under fault
// recovery. An attribution that merely "adds up approximately" would
// silently hide a stage.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/factory.h"
#include "common/histogram.h"
#include "core/notify.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "fault/fault.h"
#include "functions/classifiers.h"
#include "functions/replicator_uif.h"
#include "kblock/devices.h"
#include "mem/address_space.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "ssd/controller.h"
#include "uif/framework.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::obs {
namespace {

// --- SpanAnalyzer on synthetic traces ----------------------------------------

TraceEvent Ev(u64 req, SimTime t, SpanKind kind, u32 vm = 1) {
  TraceEvent ev;
  ev.req_id = req;
  ev.t = t;
  ev.kind = kind;
  ev.vm_id = vm;
  return ev;
}

TEST(SpanAnalyzerTest, SyntheticFastSpanAttributesEveryDelta) {
  TraceRecorder tr(64);
  u64 id = tr.BeginRequest();
  tr.Record(Ev(id, 100, SpanKind::kVsqPop));
  tr.Record(Ev(id, 130, SpanKind::kClassifier));     // classify   +30
  tr.Record(Ev(id, 150, SpanKind::kDispatchFast));   // dispatch   +20
  tr.Record(Ev(id, 1150, SpanKind::kHcqComplete));   // device     +1000
  tr.Record(Ev(id, 1200, SpanKind::kVcqPost));       // post       +50
  tr.Record(Ev(id, 1900, SpanKind::kIrqInject));     // irq        +700
  tr.EndRequest();

  SpanAnalyzer an;
  an.Analyze(tr);
  ASSERT_EQ(an.requests().size(), 1u);
  const RequestBreakdown& bd = an.requests()[0];
  EXPECT_EQ(bd.req_id, id);
  EXPECT_EQ(bd.vm_id, 1u);
  EXPECT_EQ(bd.path, PathClass::kFast);
  EXPECT_EQ(bd.e2e_ns, 1100u);  // 1200 - 100, independent of the stages
  EXPECT_EQ(bd.irq_ns, 700u);   // outside e2e
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kClassify)], 30u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kDispatch)], 20u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kDevice)], 1000u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kPost)], 50u);
  EXPECT_EQ(bd.StageSum(), bd.e2e_ns);
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
  EXPECT_EQ(an.by_path()[static_cast<usize>(PathClass::kFast)].requests, 1u);
  ASSERT_EQ(an.by_vm().count(1), 1u);
  EXPECT_EQ(an.by_vm().at(1).e2e.max(), 1100u);
}

TEST(SpanAnalyzerTest, NotifyAndRetryKindsLandInTheirStages) {
  TraceRecorder tr(64);
  u64 id = tr.BeginRequest();
  tr.Record(Ev(id, 0, SpanKind::kVsqPop));
  tr.Record(Ev(id, 10, SpanKind::kClassifier));       // classify    +10
  tr.Record(Ev(id, 10, SpanKind::kDispatchNotify));   // dispatch    +0
  tr.Record(Ev(id, 250, SpanKind::kUifWork));         // uif_queue   +240
  tr.Record(Ev(id, 700, SpanKind::kUifRespond));      // uif_service +450
  tr.Record(Ev(id, 800, SpanKind::kRetry));           // retry_wait  +100
  // The delta FOLLOWING a RETRY stamp is the backoff wait, charged to
  // retry_wait even though the re-dispatch event ends it.
  tr.Record(Ev(id, 820, SpanKind::kDispatchNotify));  // retry_wait  +20
  tr.Record(Ev(id, 900, SpanKind::kUifWork));         // uif_queue   +80
  tr.Record(Ev(id, 950, SpanKind::kUifRespond));      // uif_service +50
  tr.Record(Ev(id, 990, SpanKind::kNcqComplete));     // harvest     +40
  tr.Record(Ev(id, 1000, SpanKind::kVcqPost));        // post        +10
  tr.EndRequest();

  SpanAnalyzer an;
  an.Analyze(tr);
  ASSERT_EQ(an.requests().size(), 1u);
  const RequestBreakdown& bd = an.requests()[0];
  EXPECT_EQ(bd.path, PathClass::kNotify);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kRetryWait)], 120u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kUifQueue)], 320u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kUifService)], 500u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kHarvest)], 40u);
  EXPECT_EQ(bd.e2e_ns, 1000u);
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
}

TEST(SpanAnalyzerTest, ResubmitChainHopsLandInTheResubmitStage) {
  // A two-hop pushdown chain: each RESUBMIT stamp ends a hook-rerun
  // delta (charged to the dedicated resubmit stage, not to classify or
  // dispatch), and the chain's extra device crossings stay in device.
  TraceRecorder tr(64);
  u64 id = tr.BeginRequest();
  tr.Record(Ev(id, 0, SpanKind::kVsqPop));
  tr.Record(Ev(id, 10, SpanKind::kClassifier));      // classify  +10
  tr.Record(Ev(id, 20, SpanKind::kDispatchFast));    // dispatch  +10
  tr.Record(Ev(id, 1020, SpanKind::kHcqComplete));   // device    +1000
  tr.Record(Ev(id, 1070, SpanKind::kResubmit));      // resubmit  +50
  tr.Record(Ev(id, 1080, SpanKind::kDispatchFast));  // dispatch  +10
  tr.Record(Ev(id, 2080, SpanKind::kHcqComplete));   // device    +1000
  tr.Record(Ev(id, 2120, SpanKind::kResubmit));      // resubmit  +40
  tr.Record(Ev(id, 2130, SpanKind::kDispatchFast));  // dispatch  +10
  tr.Record(Ev(id, 3130, SpanKind::kHcqComplete));   // device    +1000
  tr.Record(Ev(id, 3180, SpanKind::kVcqPost));       // post      +50
  tr.EndRequest();

  SpanAnalyzer an;
  an.Analyze(tr);
  ASSERT_EQ(an.requests().size(), 1u);
  const RequestBreakdown& bd = an.requests()[0];
  EXPECT_EQ(bd.path, PathClass::kFast);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kClassify)], 10u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kDispatch)], 30u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kDevice)], 3000u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kResubmit)], 90u);
  EXPECT_EQ(bd.stage_ns[static_cast<usize>(Stage::kPost)], 50u);
  EXPECT_EQ(bd.e2e_ns, 3180u);
  EXPECT_EQ(bd.StageSum(), bd.e2e_ns);
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
  EXPECT_STREQ(StageName(Stage::kResubmit), "resubmit");
}

TEST(SpanAnalyzerTest, LateFanoutLegAfterPostStaysUnattributed) {
  // A mirror write completes to the guest when the faster leg settles;
  // the slower leg's completion arrives after VCQ_POST and must not be
  // attributed to any stage (it is outside the guest-visible request).
  TraceRecorder tr(64);
  u64 id = tr.BeginRequest();
  tr.Record(Ev(id, 0, SpanKind::kVsqPop));
  tr.Record(Ev(id, 10, SpanKind::kClassifier));
  tr.Record(Ev(id, 20, SpanKind::kDispatchFast));
  tr.Record(Ev(id, 30, SpanKind::kDispatchNotify));
  tr.Record(Ev(id, 200, SpanKind::kNcqComplete));
  tr.Record(Ev(id, 250, SpanKind::kVcqPost));
  tr.Record(Ev(id, 900, SpanKind::kHcqComplete));  // late leg: ignored
  tr.Record(Ev(id, 950, SpanKind::kIrqInject));
  tr.EndRequest();

  SpanAnalyzer an;
  an.Analyze(tr);
  ASSERT_EQ(an.requests().size(), 1u);
  const RequestBreakdown& bd = an.requests()[0];
  EXPECT_EQ(bd.path, PathClass::kFanout);
  EXPECT_EQ(bd.e2e_ns, 250u);
  EXPECT_EQ(bd.StageSum(), 250u);
  // IRQ delay still measured from the previous event (the late leg).
  EXPECT_EQ(bd.irq_ns, 50u);
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
}

TEST(SpanAnalyzerTest, OpenAndTruncatedSpansAreExcludedButCounted) {
  TraceRecorder tr(4);  // tiny ring: forces eviction
  u64 a = tr.BeginRequest();
  tr.Record(Ev(a, 0, SpanKind::kVsqPop));
  tr.Record(Ev(a, 10, SpanKind::kDispatchFast));
  tr.Record(Ev(a, 20, SpanKind::kHcqComplete));
  u64 b = tr.BeginRequest();
  tr.Record(Ev(b, 30, SpanKind::kVsqPop));         // ring now full
  tr.Record(Ev(b, 40, SpanKind::kDispatchFast));   // evicts a's VSQ_POP
  tr.Record(Ev(b, 50, SpanKind::kVcqPost));        // evicts a's dispatch
  u64 c = tr.BeginRequest();
  tr.Record(Ev(c, 60, SpanKind::kVsqPop));         // open span: no post

  EXPECT_TRUE(tr.truncated(a));
  EXPECT_FALSE(tr.truncated(b));
  EXPECT_EQ(tr.eviction_horizon(), a);

  SpanAnalyzer an;
  an.Analyze(tr);
  // Only b is analyzable: a is truncated, c never posted.
  ASSERT_EQ(an.requests().size(), 1u);
  EXPECT_EQ(an.requests()[0].req_id, b);
  EXPECT_EQ(an.truncated_spans(), 1u);
  EXPECT_EQ(an.open_spans(), 1u);
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
}

// --- TraceRecorder truncation (regression: wrapped spans must be marked) -----

TEST(TraceRecorderTest, WrappedPathStringCarriesEllipsisPrefix) {
  TraceRecorder tr(4);
  u64 a = tr.BeginRequest();
  tr.Record(Ev(a, 0, SpanKind::kVsqPop));
  tr.Record(Ev(a, 10, SpanKind::kDispatchFast));
  tr.Record(Ev(a, 20, SpanKind::kHcqComplete));
  tr.Record(Ev(a, 30, SpanKind::kVcqPost));
  EXPECT_FALSE(tr.truncated(a));  // exactly full, nothing evicted yet
  EXPECT_EQ(tr.PathString(a),
            "VSQ_POP > DISPATCH_FAST > HCQ_COMPLETE > VCQ_POST");

  u64 b = tr.BeginRequest();
  tr.Record(Ev(b, 40, SpanKind::kVsqPop));  // evicts a's first event
  EXPECT_TRUE(tr.truncated(a));
  EXPECT_EQ(tr.eviction_horizon(), a);
  // The partial path can never be mistaken for a complete one.
  EXPECT_EQ(tr.PathString(a),
            "... > DISPATCH_FAST > HCQ_COMPLETE > VCQ_POST");
  EXPECT_EQ(tr.PathString(b), "VSQ_POP");
  // A request with NO retained events still reports as truncated.
  tr.Record(Ev(b, 50, SpanKind::kDispatchFast));
  tr.Record(Ev(b, 60, SpanKind::kHcqComplete));
  tr.Record(Ev(b, 70, SpanKind::kVcqPost));
  EXPECT_EQ(tr.EventsFor(a).size(), 0u);
  EXPECT_EQ(tr.PathString(a), "...");

  tr.Reset();
  EXPECT_EQ(tr.eviction_horizon(), 0u);
  EXPECT_FALSE(tr.truncated(1));
}

// --- LatencyHistogram windowed statistics ------------------------------------

TEST(HistogramDeltaTest, WindowedQuantilesIgnoreOlderSamples) {
  LatencyHistogram h;
  for (int i = 0; i < 100; i++) h.Record(1000);
  LatencyHistogram prev = h;  // window boundary
  for (int i = 0; i < 50; i++) h.Record(9000);
  EXPECT_EQ(h.DeltaCount(prev), 50u);
  EXPECT_EQ(h.DeltaSum(prev), 50u * 9000u);
  // The window's median is ~9000 (bucket resolution), nowhere near the
  // lifetime median of 1000.
  u64 p50 = h.DeltaQuantile(prev, 0.5);
  EXPECT_NEAR(static_cast<double>(p50), 9000.0, 9000.0 * 0.01);
  EXPECT_GE(h.DeltaQuantile(prev, 0.99), p50);
  // An empty window reads 0, not a stale value.
  LatencyHistogram prev2 = h;
  EXPECT_EQ(h.DeltaCount(prev2), 0u);
  EXPECT_EQ(h.DeltaQuantile(prev2, 0.5), 0u);
}

TEST(HistogramDeltaTest, DeltaQuantileClampsToLifetimeMax) {
  LatencyHistogram h;
  h.Record(500);
  LatencyHistogram prev = h;
  h.Record(700);  // window of one sample
  u64 q = h.DeltaQuantile(prev, 1.0);
  EXPECT_LE(q, h.max());
  EXPECT_NEAR(static_cast<double>(q), 700.0, 700.0 * 0.01);
}

TEST(HistogramDeltaTest, P999TracksTail) {
  LatencyHistogram h;
  for (u64 v = 1; v <= 10'000; v++) h.Record(v);
  EXPECT_GE(h.P999(), h.P99());
  EXPECT_NEAR(static_cast<double>(h.P999()), 9990.0, 9990.0 * 0.01);
  EXPECT_EQ(h.sum(), 10'000ull * 10'001ull / 2);
}

// --- TimeSeries --------------------------------------------------------------

TEST(TimeSeriesTest, CounterProbeYieldsDeltasAndRates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("iops.src");
  TimeSeries ts(&reg, {.interval_ns = 1'000'000, .capacity = 16});
  ts.AddCounterProbe("iops", "iops.src");
  ASSERT_EQ(ts.columns().size(), 3u);  // t_ns, iops_delta, iops_rate
  EXPECT_EQ(ts.columns()[1], "iops_delta");
  EXPECT_EQ(ts.columns()[2], "iops_rate");

  c->Inc(100);
  ts.SampleNow(1'000'000);
  c->Inc(250);
  ts.SampleNow(2'000'000);
  ts.SampleNow(3'000'000);  // idle window

  auto samples = ts.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].values[1], 100.0);
  EXPECT_EQ(samples[0].values[2], 100.0 / 0.001);  // per second
  EXPECT_EQ(samples[1].values[1], 250.0);
  EXPECT_EQ(samples[2].values[1], 0.0);
  EXPECT_EQ(samples[2].values[2], 0.0);
}

TEST(TimeSeriesTest, GaugeAndHistogramProbesSampleLevelsAndWindows) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("depth.src");
  LatencyHistogram* h = reg.GetHistogram("lat.src");
  TimeSeries ts(&reg, {.interval_ns = 1'000'000, .capacity = 16});
  ts.AddGaugeProbe("depth", "depth.src");
  ts.AddHistogramProbe("lat", "lat.src");
  // t_ns, depth, depth_max, lat_count, lat_p50_ns, lat_p99_ns
  ASSERT_EQ(ts.columns().size(), 6u);

  g->Set(7);
  g->Set(3);
  for (int i = 0; i < 4; i++) h->Record(1000);
  ts.SampleNow(1'000'000);
  for (int i = 0; i < 6; i++) h->Record(5000);
  ts.SampleNow(2'000'000);

  auto samples = ts.samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].values[1], 3.0);  // level after the dip
  EXPECT_EQ(samples[0].values[2], 7.0);  // watermark survives
  EXPECT_EQ(samples[0].values[3], 4.0);  // window count
  EXPECT_EQ(samples[0].values[4], 1000.0);
  EXPECT_EQ(samples[1].values[3], 6.0);  // only the new window's samples
  EXPECT_NEAR(samples[1].values[4], 5000.0, 5000.0 * 0.01);
}

TEST(TimeSeriesTest, AbsentMetricSamplesAsZeroUntilRegistered) {
  MetricsRegistry reg;
  TimeSeries ts(&reg, {.interval_ns = 1'000'000, .capacity = 4});
  ts.AddCounterProbe("x", "late.metric");
  ts.SampleNow(1'000'000);
  reg.GetCounter("late.metric")->Inc(5);
  ts.SampleNow(2'000'000);
  auto samples = ts.samples();
  EXPECT_EQ(samples[0].values[1], 0.0);
  EXPECT_EQ(samples[1].values[1], 5.0);  // picked up without re-probing
}

TEST(TimeSeriesTest, RingKeepsNewestSamples) {
  MetricsRegistry reg;
  TimeSeries ts(&reg, {.interval_ns = 1'000'000, .capacity = 4});
  for (int i = 1; i <= 10; i++) ts.SampleNow(i * 1'000'000);
  EXPECT_EQ(ts.total_sampled(), 10u);
  auto samples = ts.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.front().t, 7'000'000u);
  EXPECT_EQ(samples.back().t, 10'000'000u);
}

TEST(TimeSeriesTest, StartPreSchedulesEveryTickUpToHorizon) {
  MetricsRegistry reg;
  reg.GetCounter("c");
  TimeSeries ts(&reg, {.interval_ns = 1'000'000, .capacity = 16});
  ts.AddCounterProbe("c", "c");
  // Fake scheduler: collect, then fire in order (the simulator would).
  std::vector<std::pair<SimTime, std::function<void()>>> ticks;
  ts.Start(0, 5'500'000,
           [&](SimTime at, std::function<void()> fn) {
             ticks.emplace_back(at, std::move(fn));
           });
  ASSERT_EQ(ticks.size(), 5u);  // 1ms..5ms inclusive, never past horizon
  EXPECT_EQ(ticks.front().first, 1'000'000u);
  EXPECT_EQ(ticks.back().first, 5'000'000u);
  for (auto& [at, fn] : ticks) fn();
  EXPECT_EQ(ts.total_sampled(), 5u);
}

TEST(TimeSeriesTest, CsvIsRectangularWithHeader) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Inc(3);
  reg.GetGauge("g")->Set(-2);
  TimeSeries ts(&reg, {.interval_ns = 1'000'000, .capacity = 8});
  ts.AddCounterProbe("c", "c");
  ts.AddGaugeProbe("g", "g");
  ts.SampleNow(1'000'000);
  ts.SampleNow(2'000'000);
  std::string csv = ts.ToCsv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t_ns,c_delta,c_rate,g,g_max");
  usize lines = 0, commas_first = 0;
  for (usize i = 0; i < csv.size(); i++) {
    if (csv[i] == '\n') lines++;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 samples, newline-terminated
  std::string row = csv.substr(csv.find('\n') + 1);
  row = row.substr(0, row.find('\n'));
  for (char ch : row) {
    if (ch == ',') commas_first++;
  }
  EXPECT_EQ(commas_first, 4u);  // same column count as the header
  EXPECT_NE(row.find("-2"), std::string::npos);  // negative gauge intact
}

TEST(TimeSeriesTest, CsvSnapshotAfterWrapKeepsOnlyRetainedWindow) {
  // A forensic dump embeds ToCsv() from a long-running ring: after the
  // ring wraps, the snapshot must hold exactly the newest `capacity`
  // samples with their per-window deltas intact — not a blend of old
  // and new rows.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("ios");
  TimeSeries ts(&reg, {.interval_ns = 1'000'000, .capacity = 4});
  ts.AddCounterProbe("ios", "ios");
  for (int i = 1; i <= 10; i++) {
    c->Inc(static_cast<u64>(i));  // window i's delta is exactly i
    ts.SampleNow(static_cast<SimTime>(i) * 1'000'000);
  }
  EXPECT_EQ(ts.total_sampled(), 10u);
  ASSERT_EQ(ts.samples().size(), 4u);

  std::string csv = ts.ToCsv();
  std::vector<std::string> lines;
  for (usize pos = 0; pos < csv.size();) {
    usize nl = csv.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    lines.push_back(csv.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 5u);  // header + the 4 retained samples
  EXPECT_EQ(lines[0], "t_ns,ios_delta,ios_rate");
  // Oldest retained row first: windows 7..10, each delta = window index
  // and rate = delta / 1 ms.
  for (int i = 0; i < 4; i++) {
    int w = 7 + i;
    EXPECT_EQ(lines[static_cast<usize>(1 + i)],
              std::to_string(w * 1'000'000) + "," + std::to_string(w) + "," +
                  std::to_string(w * 1000))
        << "window " << w;
  }
}

// --- SloWatchdog -------------------------------------------------------------

TEST(SloWatchdogTest, LatencyTargetBreachesOnlyOnBadWindows) {
  MetricsRegistry reg;
  TraceRecorder tr(64);
  LatencyHistogram* h = reg.GetHistogram("router.latency_ns");
  SloWatchdog slo(&reg, &tr, {.interval_ns = 1'000'000});
  slo.AddLatencyTarget("p99", "router.latency_ns", 0.99, 10'000);

  for (int i = 0; i < 5; i++) h->Record(1000);
  slo.EvaluateWindow(1'000'000);  // healthy window
  EXPECT_EQ(slo.breach_windows("p99"), 0u);
  EXPECT_EQ(reg.FindGauge("slo.p99.breached")->value(), 0);

  for (int i = 0; i < 3; i++) h->Record(50'000);
  slo.EvaluateWindow(2'000'000);  // the window's p99 is ~50us
  EXPECT_EQ(slo.breach_windows("p99"), 1u);
  EXPECT_EQ(reg.CounterValue("slo.p99.breaches"), 1u);
  EXPECT_EQ(reg.FindGauge("slo.p99.breached")->value(), 1);
  ASSERT_EQ(slo.breaches().size(), 1u);
  EXPECT_EQ(slo.breaches()[0].t, 2'000'000u);
  EXPECT_EQ(slo.breaches()[0].target, "p99");
  EXPECT_GT(slo.breaches()[0].observed, slo.breaches()[0].limit);

  slo.EvaluateWindow(3'000'000);  // empty window: never a breach
  EXPECT_EQ(slo.breach_windows("p99"), 1u);
  EXPECT_EQ(reg.FindGauge("slo.p99.breached")->value(), 0);  // cleared
  EXPECT_EQ(slo.windows_evaluated(), 3u);

  // The breach left a trace mark for the Perfetto export.
  auto evs = tr.Events();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].kind, SpanKind::kSloBreach);
  EXPECT_EQ(evs[0].req_id, 0u);
  EXPECT_EQ(evs[0].t, 2'000'000u);
  EXPECT_EQ(evs[0].status, 0u);  // target index
}

TEST(SloWatchdogTest, ErrorRateTargetUsesWindowDeltas) {
  MetricsRegistry reg;
  Counter* err = reg.GetCounter("router.failed");
  Counter* total = reg.GetCounter("router.requests");
  SloWatchdog slo(&reg, nullptr, {.interval_ns = 1'000'000});
  slo.AddErrorRateTarget("errors", "router.failed", "router.requests", 0.0);

  total->Inc(100);
  slo.EvaluateWindow(1'000'000);  // 0/100: fine
  EXPECT_EQ(slo.breach_windows("errors"), 0u);

  total->Inc(50);
  err->Inc(2);
  slo.EvaluateWindow(2'000'000);  // 2/50 > 0: breach
  EXPECT_EQ(slo.breach_windows("errors"), 1u);

  total->Inc(50);
  slo.EvaluateWindow(3'000'000);  // errors from window 2 don't leak in
  EXPECT_EQ(slo.breach_windows("errors"), 1u);

  slo.EvaluateWindow(4'000'000);  // no traffic at all: never a breach
  EXPECT_EQ(slo.breach_windows("errors"), 1u);
  EXPECT_EQ(reg.CounterValue("slo.errors.breaches"), 1u);
}

TEST(SloWatchdogTest, StartPreSchedulesWindows) {
  MetricsRegistry reg;
  SloWatchdog slo(&reg, nullptr, {.interval_ns = 2'000'000});
  slo.AddErrorRateTarget("e", "err", "total", 0.0);
  std::vector<std::function<void()>> ticks;
  slo.Start(0, 10'000'000, [&](SimTime, std::function<void()> fn) {
    ticks.push_back(std::move(fn));
  });
  ASSERT_EQ(ticks.size(), 5u);
  for (auto& fn : ticks) fn();
  EXPECT_EQ(slo.windows_evaluated(), 5u);
}

// --- Exporters + validators --------------------------------------------------

TEST(ExportTest, EmptyTraceAndRegistryExportsAreValid) {
  TraceRecorder tr(8);
  MetricsRegistry reg;
  std::string err;
  EXPECT_TRUE(ValidateTraceEventJson(ExportPerfettoJson(tr), &err)) << err;
  EXPECT_TRUE(ValidatePrometheusText(ExportPrometheusText(reg), &err)) << err;
}

TEST(ExportTest, PerfettoExportContainsSlicesInstantsAndMetadata) {
  TraceRecorder tr(64);
  u64 id = tr.BeginRequest();
  tr.Record(Ev(id, 1000, SpanKind::kVsqPop, 3));
  tr.Record(Ev(id, 1500, SpanKind::kDispatchFast, 3));
  tr.Record(Ev(id, 2750, SpanKind::kRetry, 3));
  tr.Record(Ev(id, 3000, SpanKind::kDispatchFast, 3));
  tr.Record(Ev(id, 5000, SpanKind::kHcqComplete, 3));
  tr.Record(Ev(id, 5250, SpanKind::kVcqPost, 3));
  TraceEvent mark;  // SLO breach mark on the telemetry track
  mark.req_id = 0;
  mark.t = 6000;
  mark.kind = SpanKind::kSloBreach;
  tr.Record(mark);

  std::string json = ExportPerfettoJson(tr);
  std::string err;
  ASSERT_TRUE(ValidateTraceEventJson(json, &err)) << err << "\n" << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  // Complete slices carry the stage as category; the retry doubles as an
  // instant; metadata names the VM process and the path track.
  EXPECT_NE(json.find("\"name\":\"HCQ_COMPLETE\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"device\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"SLO_BREACH\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"VM 3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fast path\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"telemetry\""), std::string::npos);
  // ts is microseconds with the nanosecond fraction preserved.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(ExportTest, TraceEventValidatorRejectsMalformedDocuments) {
  std::string err;
  EXPECT_FALSE(ValidateTraceEventJson("{", &err));
  EXPECT_FALSE(ValidateTraceEventJson("[]", &err));  // root must be object
  EXPECT_FALSE(ValidateTraceEventJson("{\"foo\":1}", &err));
  // An X slice without dur is structurally invalid.
  EXPECT_FALSE(ValidateTraceEventJson(
      "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,"
      "\"pid\":1,\"tid\":1}]}",
      &err));
  EXPECT_NE(err.find("dur"), std::string::npos);
  // Trailing comma: full-grammar strictness.
  EXPECT_FALSE(ValidateTraceEventJson("{\"traceEvents\":[],}", &err));
}

TEST(ExportTest, PrometheusExportPassesStrictChecker) {
  MetricsRegistry reg;
  reg.GetCounter("router.requests")->Inc(42);
  Gauge* g = reg.GetGauge("router.inflight");
  g->Set(9);
  g->Set(4);
  LatencyHistogram* h = reg.GetHistogram("router.latency_ns");
  for (u64 v = 100; v <= 1000; v += 100) h->Record(v);

  std::string text = ExportPrometheusText(reg);
  std::string err;
  ASSERT_TRUE(ValidatePrometheusText(text, &err)) << err << "\n" << text;
  // Counters gain _total; the watermark rides along as its own gauge;
  // histograms export as summaries with the three quantiles.
  EXPECT_NE(text.find("# TYPE router_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("router_requests_total 42"), std::string::npos);
  EXPECT_NE(text.find("router_inflight 4"), std::string::npos);
  EXPECT_NE(text.find("router_inflight_max 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE router_latency_ns summary"), std::string::npos);
  EXPECT_NE(text.find("router_latency_ns{quantile=\"0.999\"}"),
            std::string::npos);
  EXPECT_NE(text.find("router_latency_ns_sum 5500"), std::string::npos);
  EXPECT_NE(text.find("router_latency_ns_count 10"), std::string::npos);
}

TEST(ExportTest, PrometheusValidatorRejectsMalformedText) {
  std::string err;
  // Sample with no preceding TYPE declaration.
  EXPECT_FALSE(ValidatePrometheusText("orphan_metric 1\n", &err));
  // Duplicate TYPE.
  EXPECT_FALSE(ValidatePrometheusText(
      "# TYPE a counter\na 1\n# TYPE a counter\na 2\n", &err));
  // Sample not matching the current family.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE a counter\nb 1\n", &err));
  // Unquoted label value.
  EXPECT_FALSE(
      ValidatePrometheusText("# TYPE a gauge\na{x=1} 1\n", &err));
  // Non-numeric value.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE a gauge\na one\n", &err));
  // Missing trailing newline.
  EXPECT_FALSE(ValidatePrometheusText("# TYPE a gauge\na 1", &err));
  // And the good version of each passes.
  EXPECT_TRUE(ValidatePrometheusText(
      "# TYPE a summary\na{quantile=\"0.5\"} 3\na_sum 9\na_count 3\n", &err))
      << err;
}

}  // namespace
}  // namespace nvmetro::obs

// --- Exact attribution through the real router -------------------------------

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

/// Echoes success synchronously (framework responds on work()==false).
struct EchoUif : uif::UifBase {
  bool work(const nvme::Sqe&, u32, u16& status) override {
    status = nvme::kStatusSuccess;
    return false;
  }
};

/// The ObsRouterFixture stack from obs_test.cc, parameterized by
/// RouterCosts so the batched pipeline can be exercised too.
struct SpanRouterFixture : ::testing::Test {
  obs::Observability obs;  // must outlive every component caching pointers
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  RouterCosts costs{};
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<NvmetroHost> host;
  VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;

  void Build(const char* classifier_asm = nullptr, u16 queues = 1) {
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.obs = &obs;
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    vm = std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.memory_bytes = 32 * MiB});
    NvmetroHost::Config hcfg;
    hcfg.obs = &obs;
    hcfg.costs = costs;
    host = std::make_unique<NvmetroHost>(&sim, phys.get(), hcfg);
    vc = host->CreateController(vm.get(), {.vm_id = 1});
    auto prog = classifier_asm ? ebpf::Assemble(classifier_asm)
                               : functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok());
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    ASSERT_TRUE(driver->Init(queues).ok());
  }

  void RunClosedLoop(int total, int depth, u16 queues = 1) {
    u64 buf = *vm->memory().AllocPages(1);
    int issued = 0;
    std::function<void(u16)> issue = [&](u16 q) {
      if (issued >= total) return;
      issued++;
      nvme::Sqe sqe = (issued % 3)
                          ? nvme::MakeRead(1, issued % 32, 1, buf, 0)
                          : nvme::MakeWrite(1, issued % 32, 1, buf, 0);
      driver->Submit(q, sqe, [&, q](NvmeStatus, u32) { issue(q); });
    };
    for (u16 q = 0; q < queues; q++) {
      for (int d = 0; d < depth; d++) issue(q);
    }
    sim.Run();
  }

  /// Analyzes the run's trace and asserts the exact-sum invariant.
  obs::SpanAnalyzer AnalyzeExact(u64 expect_requests) {
    obs::SpanAnalyzer an;
    an.Analyze(obs.trace());
    EXPECT_EQ(an.requests().size(), expect_requests);
    EXPECT_EQ(an.truncated_spans(), 0u);
    EXPECT_EQ(an.open_spans(), 0u);
    std::string err;
    EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
    return an;
  }
};

TEST_F(SpanRouterFixture, FastPathExactAttribution) {
  Build();  // passthrough: everything WILL_COMPLETE_HQ
  RunClosedLoop(50, 2);
  obs::SpanAnalyzer an = AnalyzeExact(50);
  const auto& agg = an.by_path()[static_cast<usize>(obs::PathClass::kFast)];
  EXPECT_EQ(agg.requests, 50u);
  // Router-side hooks (pop, classify, dispatch, harvest+post) all run
  // inside single handler invocations, so their deltas are zero sim-time:
  // the ONLY stage that accrues wall time on the fast path is the device.
  EXPECT_EQ(an.StageSignature(obs::PathClass::kFast), "device");
  // ... which means device time accounts for the entire e2e latency.
  u64 e2e_total = 0;
  for (const obs::RequestBreakdown& bd : an.requests()) e2e_total += bd.e2e_ns;
  EXPECT_GT(e2e_total, 0u);
  EXPECT_EQ(agg.stage_sum_ns[static_cast<usize>(obs::Stage::kDevice)],
            e2e_total);
  // Per-VM aggregation sees the same population.
  ASSERT_EQ(an.by_vm().count(1), 1u);
  EXPECT_EQ(an.by_vm().at(1).requests, 50u);
  EXPECT_NE(an.RenderTable().find("path=fast"), std::string::npos);
}

TEST_F(SpanRouterFixture, KernelPathExactAttribution) {
  const char* kAllToKernel =
      "  mov r0, 0x480000\n"  // SEND_KQ | WILL_COMPLETE_KQ
      "  exit\n";
  Build(kAllToKernel);
  auto kdev =
      std::make_unique<kblock::NvmeBlockDevice>(&sim, phys.get(), &dma, 1);
  vc->AttachKernelDevice(kdev.get());
  RunClosedLoop(30, 2);
  obs::SpanAnalyzer an = AnalyzeExact(30);
  const auto& agg = an.by_path()[static_cast<usize>(obs::PathClass::kKernel)];
  EXPECT_EQ(agg.requests, 30u);
  // KBIO_DONE splits device service from mailbox residency: both the
  // device and harvest stages accrue wall time on the kernel path (the
  // KCQ is drained by a later poll), while the instantaneous router-side
  // hooks contribute zero.
  EXPECT_EQ(an.StageSignature(obs::PathClass::kKernel), "device+harvest");
  EXPECT_GT(agg.stage_sum_ns[static_cast<usize>(obs::Stage::kDevice)], 0u);
  EXPECT_GT(agg.stage_sum_ns[static_cast<usize>(obs::Stage::kHarvest)], 0u);
}

TEST_F(SpanRouterFixture, NotifyPathExactAttribution) {
  const char* kAllToUif =
      "  mov r0, 0x240000\n"  // SEND_NQ | WILL_COMPLETE_NQ
      "  exit\n";
  Build(kAllToUif);
  NotifyChannel channel;
  uif::UifHostParams params;
  params.obs = &obs;
  uif::UifHost uif_host(&sim, "echo", params);
  EchoUif echo;
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &echo);
  uif_host.Start();
  RunClosedLoop(30, 2);
  obs::SpanAnalyzer an = AnalyzeExact(30);
  const auto& agg = an.by_path()[static_cast<usize>(obs::PathClass::kNotify)];
  EXPECT_EQ(agg.requests, 30u);
  // The doorbell-to-worker handoff (uif_queue) and the NCQ harvest poll
  // take wall time; EchoUif responds inside the worker's handler, so
  // uif_service is instantaneous, like the router-side hooks.
  EXPECT_EQ(an.StageSignature(obs::PathClass::kNotify), "uif_queue+harvest");
  EXPECT_GT(agg.stage_sum_ns[static_cast<usize>(obs::Stage::kUifQueue)], 0u);
  EXPECT_EQ(agg.stage_sum_ns[static_cast<usize>(obs::Stage::kUifService)], 0u);
}

TEST_F(SpanRouterFixture, FanoutPathExactAttribution) {
  Build(functions::ReplicatorClassifierAsm());
  NotifyChannel channel;
  uif::UifHostParams params;
  params.obs = &obs;
  uif::UifHost uif_host(&sim, "repl", params);
  kblock::RamBlockDevice secondary(&sim, 32 * MiB);
  functions::ReplicatorUif repl(&sim, &secondary);
  vc->AttachUif(&channel);
  uif_host.AddFunction(&channel, vm.get(), &repl);
  uif_host.Start();
  RunClosedLoop(30, 2);
  // Reads go fast-path, writes mirror onto fast+notify.
  obs::SpanAnalyzer an = AnalyzeExact(30);
  const auto& fan = an.by_path()[static_cast<usize>(obs::PathClass::kFanout)];
  const auto& fast = an.by_path()[static_cast<usize>(obs::PathClass::kFast)];
  EXPECT_GT(fan.requests, 0u);
  EXPECT_GT(fast.requests, 0u);
  EXPECT_EQ(fan.requests + fast.requests, 30u);
}

TEST_F(SpanRouterFixture, DirectPathExactAttribution) {
  // ReadOnly rejects writes at the classifier: no dispatch stage at all.
  Build(functions::ReadOnlyClassifierAsm());
  RunClosedLoop(30, 2);
  obs::SpanAnalyzer an = AnalyzeExact(30);
  const auto& agg = an.by_path()[static_cast<usize>(obs::PathClass::kDirect)];
  EXPECT_GT(agg.requests, 0u);  // the writes (every third request)
  // A classifier rejection completes within the pop handler itself: the
  // whole span is instantaneous, so no stage accrues time and the
  // guest-visible e2e latency is exactly zero.
  EXPECT_EQ(an.StageSignature(obs::PathClass::kDirect), "");
  EXPECT_EQ(agg.e2e.max(), 0u);
  for (const obs::RequestBreakdown& bd : an.requests()) {
    if (bd.path != obs::PathClass::kDirect) continue;
    EXPECT_EQ(bd.stage_ns[static_cast<usize>(obs::Stage::kDevice)], 0u);
    EXPECT_EQ(bd.stage_ns[static_cast<usize>(obs::Stage::kDispatch)], 0u);
  }
}

TEST_F(SpanRouterFixture, BatchedPipelineKeepsExactAttribution) {
  costs.max_batch = 32;
  Build(nullptr, 4);
  // Several guest queues at depth: real multi-command batches form, BATCH
  // events appear in spans, and attribution must still sum exactly.
  RunClosedLoop(200, 8, 4);
  obs::SpanAnalyzer an = AnalyzeExact(200);
  const LatencyHistogram* bs = obs.metrics().FindHistogram("router.batch_size");
  ASSERT_NE(bs, nullptr);
  EXPECT_GT(bs->max(), 1u);  // real multi-command batches formed
  const auto& agg = an.by_path()[static_cast<usize>(obs::PathClass::kFast)];
  EXPECT_EQ(agg.requests, 200u);
}

}  // namespace
}  // namespace nvmetro::core

// --- Exact attribution under fault recovery ----------------------------------

namespace nvmetro::baselines {
namespace {

struct FaultSpanTest : ::testing::Test {
  obs::Observability obs;  // declared first: outlives drive + bundle
  std::unique_ptr<Testbed> tb;
  std::unique_ptr<fault::FaultInjector> injector;
  std::unique_ptr<SolutionBundle> bundle;

  void Build(SolutionKind kind, SolutionParams params = {}) {
    ssd::ControllerConfig drive = Testbed::DefaultDrive();
    drive.obs = &obs;
    tb = std::make_unique<Testbed>(drive);
    injector = std::make_unique<fault::FaultInjector>(&tb->sim, &obs);
    params.obs = &obs;
    params.fault = injector.get();
    bundle = SolutionBundle::Create(tb.get(), kind, params);
    ASSERT_NE(bundle, nullptr);
  }

  void SubmitReads(int n) {
    StorageSolution* sol = bundle->vm_solution(0);
    for (int i = 0; i < n; i++) {
      sol->Submit(i % 4, StorageSolution::Op::kRead,
                  static_cast<u64>(i) * 4096, 4096, nullptr, [](Status) {});
    }
    tb->sim.Run();
  }
};

TEST_F(FaultSpanTest, RetriedRequestsStillSumExactly) {
  SolutionParams params;
  params.router_costs.max_retries = 8;
  Build(SolutionKind::kNvmetro, params);
  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kDelayedError,
                         .count = 6,
                         .status = nvme::MakeStatus(
                             nvme::kSctGeneric, nvme::kScNamespaceNotReady),
                         .delay_ns = 20 * kUs});
  injector->Arm(plan);
  SubmitReads(16);

  EXPECT_EQ(obs.metrics().CounterValue("router.retries"), 6u);
  obs::SpanAnalyzer an;
  an.Analyze(obs.trace());
  EXPECT_EQ(an.requests().size(), 16u);
  EXPECT_EQ(an.open_spans(), 0u);
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
  // The retry backoff was attributed, not lost: some request carries
  // non-zero retry_wait time.
  u64 retry_ns = 0;
  for (const obs::RequestBreakdown& bd : an.requests()) {
    retry_ns += bd.stage_ns[static_cast<usize>(obs::Stage::kRetryWait)];
  }
  EXPECT_GT(retry_ns, 0u);
}

TEST_F(FaultSpanTest, TimedOutRequestsStillSumExactly) {
  SolutionParams params;
  params.router_costs.request_timeout_ns = 2 * kMs;
  Build(SolutionKind::kNvmetro, params);
  fault::FaultPlan plan;
  plan.faults.push_back({.kind = fault::FaultKind::kCommandStall, .count = 4});
  injector->Arm(plan);
  SubmitReads(16);

  EXPECT_EQ(obs.metrics().CounterValue("router.timeouts"), 4u);
  obs::SpanAnalyzer an;
  an.Analyze(obs.trace());
  EXPECT_EQ(an.requests().size(), 16u);
  EXPECT_EQ(an.open_spans(), 0u);
  std::string err;
  EXPECT_TRUE(an.CheckExactAttribution(&err)) << err;
  // Timed-out requests attribute their wait to the failover stage.
  u64 failover_ns = 0;
  for (const obs::RequestBreakdown& bd : an.requests()) {
    failover_ns += bd.stage_ns[static_cast<usize>(obs::Stage::kFailover)];
  }
  EXPECT_GT(failover_ns, 0u);
  // The whole faulty run exports cleanly through both strict validators.
  std::string verr;
  EXPECT_TRUE(
      obs::ValidateTraceEventJson(obs::ExportPerfettoJson(obs.trace()), &verr))
      << verr;
  EXPECT_TRUE(obs::ValidatePrometheusText(
      obs::ExportPrometheusText(obs.metrics()), &verr))
      << verr;
}

}  // namespace
}  // namespace nvmetro::baselines

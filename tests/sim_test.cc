// Tests for the discrete-event simulation core: event ordering, VCpu
// serialization and CPU accounting, poller busy/adaptive behaviour.
#include <gtest/gtest.h>

#include <vector>

#include "sim/poller.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::sim {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(300, [&] { order.push_back(3); });
  sim.ScheduleAt(100, [&] { order.push_back(1); });
  sim.ScheduleAt(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.ScheduleAt(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime seen = 0;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150u);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(SimulatorTest, CancelInvalidIsNoop) {
  Simulator sim;
  sim.Cancel(EventId{});
  sim.Cancel(EventId{9999});
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, StaleCancelDoesNotUnderflowPending) {
  // Regression: cancelling an EventId whose event already fired used to
  // land the seq in cancelled_ while queue_ no longer held it, so
  // pending() == queue_.size() - cancelled_.size() wrapped to ~0.
  Simulator sim;
  EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();  // the event fires; `id` is now stale
  EXPECT_EQ(sim.pending(), 0u);
  sim.Cancel(id);
  EXPECT_EQ(sim.pending(), 0u);
  sim.Cancel(id);  // and again, for good measure
  EXPECT_EQ(sim.pending(), 0u);
  // The simulator still schedules and runs normally afterwards.
  bool ran = false;
  sim.ScheduleAt(20, [&] { ran = true; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, DoubleCancelCountsOnce) {
  Simulator sim;
  EventId a = sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.Cancel(a);  // second cancel of the same live-then-cancelled event
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimulatorTest, PendingExcludesCancelledUntilDrained) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; i++) {
    ids.push_back(sim.ScheduleAt(10 * (i + 1), [] {}));
  }
  for (int i = 0; i < 8; i += 2) sim.Cancel(ids[i]);
  EXPECT_EQ(sim.pending(), 4u);
  sim.RunUntil(45);  // fires events at 20 and 40
  EXPECT_EQ(sim.pending(), 2u);
  sim.Run();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.events_executed(), 4u);
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.ScheduleAt(100, [&] { fired.push_back(100); });
  sim.ScheduleAt(200, [&] { fired.push_back(200); });
  sim.RunUntil(150);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_EQ(sim.now(), 150u);
  sim.Run();
  EXPECT_EQ(fired.size(), 2u);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.ScheduleAfter(10, chain);
  };
  sim.ScheduleAt(0, chain);
  sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40u);
}

// --- VCpu -------------------------------------------------------------------

TEST(VCpuTest, SerializesWork) {
  Simulator sim;
  VCpu cpu(&sim, "c0");
  std::vector<SimTime> done;
  cpu.Run(100, [&] { done.push_back(sim.now()); });
  cpu.Run(50, [&] { done.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100u);
  EXPECT_EQ(done[1], 150u);  // queued behind the first item
}

TEST(VCpuTest, AccountsWorkTime) {
  Simulator sim;
  VCpu cpu(&sim, "c0");
  cpu.Run(100, [] {});
  cpu.Run(200, [] {});
  sim.Run();
  EXPECT_EQ(cpu.busy_ns(), 300u);
}

TEST(VCpuTest, IdleGapsNotAccounted) {
  Simulator sim;
  VCpu cpu(&sim, "c0");
  cpu.Run(100, [] {});
  sim.ScheduleAt(10000, [&] { cpu.Run(50, [] {}); });
  sim.Run();
  EXPECT_EQ(cpu.busy_ns(), 150u);
  EXPECT_EQ(sim.now(), 10050u);
}

TEST(VCpuTest, PollingAccruesWallTime) {
  Simulator sim;
  VCpu cpu(&sim, "poller");
  sim.ScheduleAt(0, [&] { cpu.SetPolling(true); });
  sim.ScheduleAt(1000, [&] { cpu.SetPolling(false); });
  sim.ScheduleAt(2000, [] {});  // advance clock past poll window
  sim.Run();
  EXPECT_EQ(cpu.busy_ns(), 1000u);
}

TEST(VCpuTest, WorkDuringPollingNotDoubleCounted) {
  Simulator sim;
  VCpu cpu(&sim, "poller");
  sim.ScheduleAt(0, [&] {
    cpu.SetPolling(true);
    cpu.Run(300, [] {});
  });
  sim.ScheduleAt(1000, [&] { cpu.SetPolling(false); });
  sim.Run();
  EXPECT_EQ(cpu.busy_ns(), 1000u);  // wall time only, not 1300
}

TEST(VCpuTest, OpenPollingWindowCounted) {
  Simulator sim;
  VCpu cpu(&sim, "poller");
  sim.ScheduleAt(0, [&] { cpu.SetPolling(true); });
  sim.ScheduleAt(500, [] {});
  sim.Run();
  EXPECT_EQ(cpu.busy_ns(), 500u);  // window still open at end
}

TEST(VCpuTest, RegisteredWithSimulator) {
  Simulator sim;
  VCpu a(&sim, "a"), b(&sim, "b");
  a.Charge(10);
  b.Charge(20);
  sim.Run();
  EXPECT_EQ(sim.cpus().size(), 2u);
  EXPECT_EQ(sim.TotalCpuBusyNs(), 30u);
}

// --- Poller -----------------------------------------------------------------

struct PollerFixture : ::testing::Test {
  Simulator sim;
  VCpu cpu{&sim, "poll"};
  int handled = 0;
};

TEST_F(PollerFixture, DispatchesNotifiedEvents) {
  Poller::Options opts;
  opts.dispatch_cost = 100;
  Poller p(&sim, &cpu, opts);
  u32 src = p.AddSource([&] { handled++; });
  p.Start();
  p.Notify(src);
  p.Notify(src);
  sim.Run();
  EXPECT_EQ(handled, 2);
  EXPECT_EQ(p.dispatched(), 2u);
}

TEST_F(PollerFixture, EventsBeforeStartAreQueued) {
  Poller p(&sim, &cpu, Poller::Options{});
  u32 src = p.AddSource([&] { handled++; });
  p.Notify(src);
  p.Start();
  sim.Run();
  EXPECT_EQ(handled, 1);
}

TEST_F(PollerFixture, BusyPollBurnsCpuWhileIdle) {
  Poller::Options opts;
  opts.adaptive = false;
  Poller p(&sim, &cpu, opts);
  p.AddSource([&] { handled++; });
  p.Start();
  sim.RunUntil(1 * kMs);
  EXPECT_EQ(cpu.busy_ns(), 1 * kMs);  // spinning with no events
}

TEST_F(PollerFixture, AdaptiveSleepsWhenIdle) {
  Poller::Options opts;
  opts.adaptive = true;
  opts.idle_timeout = 10 * kUs;
  Poller p(&sim, &cpu, opts);
  p.AddSource([&] { handled++; });
  p.Start();
  sim.RunUntil(1 * kMs);
  EXPECT_TRUE(p.sleeping());
  // CPU burned only during the initial 10us polling window.
  EXPECT_LE(cpu.busy_ns(), 11 * kUs);
}

TEST_F(PollerFixture, WakeupFromSleepPaysLatency) {
  Poller::Options opts;
  opts.adaptive = true;
  opts.idle_timeout = 10 * kUs;
  opts.wakeup_latency = 4 * kUs;
  opts.dispatch_cost = 0;
  opts.wakeup_cpu_cost = 0;
  Poller p(&sim, &cpu, opts);
  SimTime handled_at = 0;
  u32 src = p.AddSource([&] { handled_at = sim.now(); });
  p.Start();
  sim.RunUntil(100 * kUs);
  ASSERT_TRUE(p.sleeping());
  p.Notify(src);
  sim.Run();
  EXPECT_GE(handled_at, 104 * kUs);
  // With no further activity the adaptive poller goes back to sleep.
  EXPECT_TRUE(p.sleeping());
}

TEST_F(PollerFixture, ActivityPreventsSleep) {
  Poller::Options opts;
  opts.adaptive = true;
  opts.idle_timeout = 50 * kUs;
  Poller p(&sim, &cpu, opts);
  u32 src = p.AddSource([&] { handled++; });
  p.Start();
  // Notify every 20us, well under the idle timeout.
  for (int i = 1; i <= 10; i++) {
    sim.ScheduleAt(i * 20 * kUs, [&p, src] { p.Notify(src); });
  }
  sim.RunUntil(210 * kUs);
  EXPECT_FALSE(p.sleeping());
  EXPECT_EQ(handled, 10);
}

TEST_F(PollerFixture, MultipleSourcesFifo) {
  Poller p(&sim, &cpu, Poller::Options{});
  std::vector<int> order;
  u32 a = p.AddSource([&] { order.push_back(0); });
  u32 b = p.AddSource([&] { order.push_back(1); });
  p.Start();
  p.Notify(b);
  p.Notify(a);
  p.Notify(b);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 0, 1}));
}

TEST_F(PollerFixture, StopHaltsDispatchAndCpu) {
  Poller p(&sim, &cpu, Poller::Options{});
  u32 src = p.AddSource([&] { handled++; });
  p.Start();
  sim.RunUntil(10 * kUs);
  p.Stop();
  u64 busy = cpu.busy_ns();
  p.Notify(src);
  sim.RunUntil(1 * kMs);
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(cpu.busy_ns(), busy);
}

}  // namespace
}  // namespace nvmetro::sim

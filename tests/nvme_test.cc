// Tests for the NVMe protocol layer: SQE/CQE layouts, queue rings with
// phase tags, PRP build/walk round-trips, identify structures.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/guest_memory.h"
#include "nvme/defs.h"
#include "nvme/identify.h"
#include "nvme/prp.h"
#include "nvme/queue.h"

namespace nvmetro::nvme {
namespace {

using mem::GuestMemory;
using mem::kPageSize;

// --- Layouts ------------------------------------------------------------------

TEST(SqeTest, SlbaPacksIntoCdw10And11) {
  Sqe sqe;
  sqe.set_slba(0x1122334455667788ull);
  EXPECT_EQ(sqe.cdw10, 0x55667788u);
  EXPECT_EQ(sqe.cdw11, 0x11223344u);
  EXPECT_EQ(sqe.slba(), 0x1122334455667788ull);
}

TEST(SqeTest, NlbIsZeroBased) {
  Sqe sqe = MakeRead(1, 0, 8, 0, 0);
  EXPECT_EQ(sqe.nlb0(), 7u);
  EXPECT_EQ(sqe.block_count(), 8u);
}

TEST(SqeTest, BuildersSetOpcodes) {
  EXPECT_EQ(MakeRead(1, 0, 1, 0, 0).opcode, kCmdRead);
  EXPECT_EQ(MakeWrite(1, 0, 1, 0, 0).opcode, kCmdWrite);
  EXPECT_EQ(MakeFlush(1).opcode, kCmdFlush);
  EXPECT_EQ(MakeWriteZeroes(1, 5, 3).opcode, kCmdWriteZeroes);
  EXPECT_TRUE(MakeRead(1, 0, 1, 0, 0).is_read());
  EXPECT_TRUE(MakeWrite(1, 0, 1, 0, 0).is_write());
}

TEST(CqeTest, PhaseAndStatusIndependent) {
  Cqe cqe;
  cqe.set_status(MakeStatus(kSctMediaError, kScUnrecoveredRead));
  cqe.set_phase(true);
  EXPECT_TRUE(cqe.phase());
  EXPECT_EQ(cqe.status(), MakeStatus(kSctMediaError, kScUnrecoveredRead));
  cqe.set_phase(false);
  EXPECT_EQ(cqe.status(), MakeStatus(kSctMediaError, kScUnrecoveredRead));
}

TEST(StatusTest, SctScRoundTrip) {
  NvmeStatus s = MakeStatus(kSctMediaError, kScCompareFailure);
  EXPECT_EQ(StatusSct(s), kSctMediaError);
  EXPECT_EQ(StatusSc(s), kScCompareFailure);
  EXPECT_FALSE(StatusOk(s));
  EXPECT_TRUE(StatusOk(kStatusSuccess));
}

TEST(StatusTest, NamesResolve) {
  EXPECT_STREQ(StatusName(kStatusSuccess), "Success");
  EXPECT_STREQ(StatusName(MakeStatus(kSctGeneric, kScLbaOutOfRange)),
               "LbaOutOfRange");
  EXPECT_STREQ(StatusName(MakeStatus(kSctMediaError, kScWriteFault)),
               "WriteFault");
}

TEST(IdentifyTest, ControllerStringsSpacePadded) {
  IdentifyController id;
  id.SetStrings("SN1", "Model X", "FW");
  EXPECT_EQ(id.sn[0], 'S');
  EXPECT_EQ(id.sn[3], ' ');
  EXPECT_EQ(id.mn[6], 'X');
  EXPECT_EQ(id.mn[7], ' ');
}

TEST(IdentifyTest, NamespaceLbaSize) {
  IdentifyNamespace ns;
  ns.lbaf[0].lbads = 9;
  ns.flbas = 0;
  EXPECT_EQ(ns.lba_size(), 512u);
  ns.lbaf[1].lbads = 12;
  ns.flbas = 1;
  EXPECT_EQ(ns.lba_size(), 4096u);
}

// --- SqRing -------------------------------------------------------------------

struct SqRingFixture : ::testing::Test {
  static constexpr u32 kEntries = 8;
  std::vector<u8> mem = std::vector<u8>(kEntries * sizeof(Sqe), 0);
  SqRing ring{mem.data(), kEntries};
};

TEST_F(SqRingFixture, EmptyInitially) {
  Sqe sqe;
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.Pop(&sqe));
  EXPECT_EQ(ring.SpaceLeft(), kEntries - 1);
}

TEST_F(SqRingFixture, PushInvisibleUntilDoorbell) {
  Sqe in = MakeRead(1, 7, 1, 0, 0);
  ASSERT_TRUE(ring.Push(in));
  Sqe out;
  EXPECT_FALSE(ring.Pop(&out));  // tail not published
  ring.PublishTail();
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_EQ(out.slba(), 7u);
}

TEST_F(SqRingFixture, FifoOrderPreserved) {
  for (u16 i = 0; i < 5; i++) {
    Sqe s = MakeRead(1, i, 1, 0, 0);
    s.cid = i;
    ASSERT_TRUE(ring.Push(s));
  }
  ring.PublishTail();
  Sqe out;
  for (u16 i = 0; i < 5; i++) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out.cid, i);
  }
}

TEST_F(SqRingFixture, FullAtEntriesMinusOne) {
  for (u32 i = 0; i < kEntries - 1; i++) {
    ASSERT_TRUE(ring.Push(Sqe{}));
  }
  EXPECT_FALSE(ring.Push(Sqe{}));
  EXPECT_EQ(ring.SpaceLeft(), 0u);
}

TEST_F(SqRingFixture, WrapAroundManyTimes) {
  u16 cid = 0;
  for (int round = 0; round < 10; round++) {
    for (int i = 0; i < 5; i++) {
      Sqe s;
      s.cid = cid++;
      ASSERT_TRUE(ring.Push(s));
    }
    ring.PublishTail();
    Sqe out;
    for (int i = 0; i < 5; i++) ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out.cid, cid - 1);
  }
  EXPECT_TRUE(ring.Empty());
}

TEST_F(SqRingFixture, PeekDoesNotConsume) {
  Sqe s;
  s.cid = 42;
  ring.Push(s);
  ring.PublishTail();
  Sqe out;
  ASSERT_TRUE(ring.Peek(&out));
  EXPECT_EQ(out.cid, 42);
  ASSERT_TRUE(ring.Peek(&out));
  ASSERT_TRUE(ring.Pop(&out));
  EXPECT_FALSE(ring.Peek(&out));
}

// --- CqRing -------------------------------------------------------------------

struct CqRingFixture : ::testing::Test {
  static constexpr u32 kEntries = 4;
  std::vector<u8> mem = std::vector<u8>(kEntries * sizeof(Cqe), 0);
  CqRing ring{mem.data(), kEntries};
};

TEST_F(CqRingFixture, EmptyInitially) {
  Cqe out;
  EXPECT_FALSE(ring.Peek(&out));
  EXPECT_EQ(ring.Pending(), 0u);
}

TEST_F(CqRingFixture, PhaseMakesEntriesVisible) {
  Cqe in;
  in.cid = 9;
  ASSERT_TRUE(ring.Push(in));
  Cqe out;
  ASSERT_TRUE(ring.Peek(&out));
  EXPECT_EQ(out.cid, 9);
  EXPECT_TRUE(out.phase());  // first pass phase = 1
}

TEST_F(CqRingFixture, FullWithoutHeadDoorbell) {
  for (u32 i = 0; i < kEntries - 1; i++) ASSERT_TRUE(ring.Push(Cqe{}));
  EXPECT_FALSE(ring.Push(Cqe{}));  // consumer never freed slots
}

TEST_F(CqRingFixture, HeadDoorbellFreesSlots) {
  for (u32 i = 0; i < kEntries - 1; i++) ASSERT_TRUE(ring.Push(Cqe{}));
  Cqe out;
  ASSERT_TRUE(ring.Peek(&out));
  ring.Pop();
  ring.PublishHead();
  EXPECT_TRUE(ring.Push(Cqe{}));
}

TEST_F(CqRingFixture, PhaseFlipsAcrossWrap) {
  // Fill/drain several times; phase protocol must stay consistent.
  u16 cid = 0;
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < 3; i++) {
      Cqe in;
      in.cid = cid++;
      ASSERT_TRUE(ring.Push(in)) << "round " << round;
    }
    for (int i = 0; i < 3; i++) {
      Cqe out;
      ASSERT_TRUE(ring.Peek(&out));
      EXPECT_EQ(out.cid, cid - 3 + i);
      ring.Pop();
      ring.PublishHead();
    }
    Cqe out;
    EXPECT_FALSE(ring.Peek(&out));
  }
}

TEST_F(CqRingFixture, PendingCountsVisibleEntries) {
  ring.Push(Cqe{});
  ring.Push(Cqe{});
  EXPECT_EQ(ring.Pending(), 2u);
  Cqe out;
  ring.Peek(&out);
  ring.Pop();
  EXPECT_EQ(ring.Pending(), 1u);
}

// --- Ring wrap-around audit ---------------------------------------------------
//
// Pushes/pops through several full wraps at non-power-of-two sizes (where
// `% entries` and the phase flips land mid-lap relative to any power-of-two
// assumption), including the full-ring one-slot-free boundary, and checks
// the consumer head the ring would report in CQE sq_head at every step.

class SqRingWrapTest : public ::testing::TestWithParam<u32> {};

TEST_P(SqRingWrapTest, ThreeWrapsWithFullBoundary) {
  const u32 entries = GetParam();
  std::vector<u8> mem(static_cast<usize>(entries) * sizeof(Sqe), 0);
  SqRing ring(mem.data(), entries);

  // Each round fills the ring completely (entries - 1 slots), verifies the
  // full condition, then drains it — so every round is one full wrap plus
  // the boundary checks.
  u16 push_cid = 0, pop_cid = 0;
  u32 expected_head = 0;
  for (int round = 0; round < 4; round++) {
    for (u32 i = 0; i < entries - 1; i++) {
      Sqe s;
      s.cid = push_cid++;
      ASSERT_TRUE(ring.Push(s)) << "round " << round << " i " << i;
    }
    EXPECT_FALSE(ring.Push(Sqe{})) << "round " << round;  // one slot free
    EXPECT_EQ(ring.SpaceLeft(), 0u);
    ring.PublishTail();
    EXPECT_EQ(ring.Pending(), entries - 1);
    Sqe out;
    for (u32 i = 0; i < entries - 1; i++) {
      EXPECT_EQ(ring.head(), expected_head);
      ASSERT_TRUE(ring.Pop(&out));
      EXPECT_EQ(out.cid, pop_cid++);
      expected_head = (expected_head + 1) % entries;
    }
    EXPECT_FALSE(ring.Pop(&out));
    EXPECT_TRUE(ring.Empty());
    EXPECT_EQ(ring.head(), expected_head);
  }
}

TEST_P(SqRingWrapTest, UnevenCadenceDriftsAcrossWraps) {
  const u32 entries = GetParam();
  std::vector<u8> mem(static_cast<usize>(entries) * sizeof(Sqe), 0);
  SqRing ring(mem.data(), entries);

  // Push 2 / pop 1 until full, then pop the backlog: the wrap point lands
  // at a different slot every lap.
  u16 push_cid = 0, pop_cid = 0;
  u32 outstanding = 0;
  for (int step = 0; step < 4 * static_cast<int>(entries); step++) {
    for (int k = 0; k < 2 && outstanding < entries - 1; k++) {
      Sqe s;
      s.cid = push_cid++;
      ASSERT_TRUE(ring.Push(s));
      outstanding++;
    }
    ring.PublishTail();
    ASSERT_EQ(ring.Pending(), outstanding);
    Sqe out;
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out.cid, pop_cid++);
    outstanding--;
    EXPECT_EQ(ring.SpaceLeft(), entries - 1 - outstanding);
  }
  Sqe out;
  while (outstanding > 0) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out.cid, pop_cid++);
    outstanding--;
  }
  EXPECT_TRUE(ring.Empty());
}

INSTANTIATE_TEST_SUITE_P(NonPowerOfTwo, SqRingWrapTest,
                         ::testing::Values(3u, 65u));

class CqRingWrapTest : public ::testing::TestWithParam<u32> {};

TEST_P(CqRingWrapTest, ThreeWrapsWithFullBoundaryAndLateDoorbell) {
  const u32 entries = GetParam();
  std::vector<u8> mem(static_cast<usize>(entries) * sizeof(Cqe), 0);
  CqRing ring(mem.data(), entries);

  u16 push_cid = 0, pop_cid = 0;
  for (int round = 0; round < 4; round++) {
    // Fill to the one-slot-free boundary.
    for (u32 i = 0; i < entries - 1; i++) {
      Cqe in;
      in.cid = push_cid++;
      ASSERT_TRUE(ring.Push(in)) << "round " << round << " i " << i;
    }
    EXPECT_FALSE(ring.Push(Cqe{})) << "round " << round;
    EXPECT_EQ(ring.Pending(), entries - 1);
    // Drain with the head doorbell published only at the end — the phase
    // protocol must stay consistent even though the producer still sees
    // the ring full.
    Cqe out;
    for (u32 i = 0; i < entries - 1; i++) {
      ASSERT_TRUE(ring.Peek(&out));
      EXPECT_EQ(out.cid, pop_cid++);
      ring.Pop();
    }
    EXPECT_FALSE(ring.Peek(&out));
    EXPECT_EQ(ring.Pending(), 0u);
    EXPECT_FALSE(ring.Push(Cqe{}));  // doorbell not yet published
    ring.PublishHead();
  }
}

TEST_P(CqRingWrapTest, UnevenCadencePhaseStaysConsistent) {
  const u32 entries = GetParam();
  std::vector<u8> mem(static_cast<usize>(entries) * sizeof(Cqe), 0);
  CqRing ring(mem.data(), entries);

  u16 push_cid = 0, pop_cid = 0;
  u32 outstanding = 0;
  for (int step = 0; step < 4 * static_cast<int>(entries); step++) {
    for (int k = 0; k < 2 && outstanding < entries - 1; k++) {
      Cqe in;
      in.cid = push_cid++;
      ASSERT_TRUE(ring.Push(in));
      outstanding++;
    }
    ASSERT_EQ(ring.Pending(), outstanding);
    Cqe out;
    ASSERT_TRUE(ring.Peek(&out));
    EXPECT_EQ(out.cid, pop_cid++);
    ring.Pop();
    ring.PublishHead();
    outstanding--;
  }
  Cqe out;
  while (outstanding > 0) {
    ASSERT_TRUE(ring.Peek(&out));
    EXPECT_EQ(out.cid, pop_cid++);
    ring.Pop();
    ring.PublishHead();
    outstanding--;
  }
  EXPECT_FALSE(ring.Peek(&out));
  EXPECT_EQ(ring.Pending(), 0u);
}

INSTANTIATE_TEST_SUITE_P(NonPowerOfTwo, CqRingWrapTest,
                         ::testing::Values(3u, 65u));

// --- PRP ----------------------------------------------------------------------

class PrpRoundTripTest
    : public ::testing::TestWithParam<std::pair<u64, u64>> {};

TEST_P(PrpRoundTripTest, BuildThenWalkCoversExactBytes) {
  auto [offset_in_page, len] = GetParam();
  GuestMemory gm(16 * MiB);
  u64 buf = 1 * MiB + offset_in_page;
  auto chain = BuildPrps(gm, buf, len);
  ASSERT_TRUE(chain.ok()) << chain.status().ToString();
  std::vector<PrpSegment> segs;
  ASSERT_TRUE(WalkPrps(gm, chain->prp1, chain->prp2, len, &segs).ok());
  // Segments must tile [buf, buf+len) contiguously.
  u64 expect = buf;
  u64 total = 0;
  for (const auto& s : segs) {
    EXPECT_EQ(s.gpa, expect);
    expect += s.len;
    total += s.len;
  }
  EXPECT_EQ(total, len);
  // All segments after the first must be page-aligned and page-sized
  // except possibly the last.
  for (usize i = 1; i < segs.size(); i++) {
    EXPECT_EQ(segs[i].gpa % kPageSize, 0u);
    if (i + 1 < segs.size()) {
      EXPECT_EQ(segs[i].len, kPageSize);
    }
  }
  FreePrpChain(gm, *chain);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PrpRoundTripTest,
    ::testing::Values(std::pair<u64, u64>{0, 512},
                      std::pair<u64, u64>{0, 4096},
                      std::pair<u64, u64>{512, 4096},
                      std::pair<u64, u64>{0, 8192},
                      std::pair<u64, u64>{100, 8192},
                      std::pair<u64, u64>{0, 16 * 1024},
                      std::pair<u64, u64>{0, 128 * 1024},
                      std::pair<u64, u64>{2048, 128 * 1024},
                      std::pair<u64, u64>{0, 512 * 1024},
                      std::pair<u64, u64>{0, 3 * 1024 * 1024}));

TEST(PrpTest, SinglePageUsesNoPrp2) {
  GuestMemory gm(1 * MiB);
  auto chain = BuildPrps(gm, 8192, 4096);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->prp2, 0u);
  EXPECT_TRUE(chain->list_pages.empty());
}

TEST(PrpTest, TwoPagesUseDirectPrp2) {
  GuestMemory gm(1 * MiB);
  auto chain = BuildPrps(gm, 8192, 8192);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->prp2, 8192 + kPageSize);
  EXPECT_TRUE(chain->list_pages.empty());
}

TEST(PrpTest, ManyPagesUseList) {
  GuestMemory gm(4 * MiB);
  auto chain = BuildPrps(gm, 0, 64 * KiB);  // 16 pages
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->list_pages.size(), 1u);
  EXPECT_EQ(chain->prp2, chain->list_pages[0]);
}

TEST(PrpTest, HugeTransferChainsListPages) {
  GuestMemory gm(16 * MiB);
  // 3 MiB transfer = 768 pages -> needs 2 list pages (511 + rest).
  auto chain = BuildPrps(gm, 0, 3 * MiB);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->list_pages.size(), 2u);
}

TEST(PrpTest, WalkRejectsUnalignedPrp2) {
  GuestMemory gm(1 * MiB);
  std::vector<PrpSegment> segs;
  Status st = WalkPrps(gm, 0, 1234 /* unaligned */, 2 * kPageSize, &segs);
  EXPECT_FALSE(st.ok());
}

TEST(PrpTest, WalkRejectsOutOfBoundsPrp1) {
  GuestMemory gm(64 * KiB);
  std::vector<PrpSegment> segs;
  EXPECT_FALSE(WalkPrps(gm, gm.size() + kPageSize, 0, 512, &segs).ok());
}

TEST(PrpTest, WalkRejectsOutOfBoundsListEntry) {
  GuestMemory gm(64 * KiB);
  // Build a malicious list page pointing outside guest memory.
  auto page = gm.AllocPages(1);
  ASSERT_TRUE(page.ok());
  u64 evil = 64 * MiB;
  ASSERT_TRUE(gm.Write(*page, &evil, sizeof(evil)).ok());
  std::vector<PrpSegment> segs;
  EXPECT_FALSE(WalkPrps(gm, 0, *page, 3 * kPageSize, &segs).ok());
}

TEST(PrpTest, ZeroLengthRejected) {
  GuestMemory gm(64 * KiB);
  std::vector<PrpSegment> segs;
  EXPECT_FALSE(WalkPrps(gm, 0, 0, 0, &segs).ok());
  EXPECT_FALSE(BuildPrps(gm, 0, 0).ok());
}

TEST(PrpTest, PrpReadWriteRoundTripThroughChain) {
  GuestMemory gm(4 * MiB);
  u64 buf = 12 * kPageSize + 300;
  const u64 len = 40 * KiB;
  auto chain = BuildPrps(gm, buf, len);
  ASSERT_TRUE(chain.ok());
  std::vector<u8> in(len);
  for (usize i = 0; i < len; i++) in[i] = static_cast<u8>(i * 7);
  ASSERT_TRUE(PrpWrite(gm, chain->prp1, chain->prp2, len, in.data()).ok());
  std::vector<u8> out(len);
  ASSERT_TRUE(PrpRead(gm, chain->prp1, chain->prp2, len, out.data()).ok());
  EXPECT_EQ(in, out);
  // The data really is in guest memory at the buffer address.
  std::vector<u8> direct(len);
  ASSERT_TRUE(gm.Read(buf, direct.data(), len).ok());
  EXPECT_EQ(in, direct);
}

}  // namespace
}  // namespace nvmetro::nvme

// Tests for the simulated NVMe controller: protocol round-trips through
// real rings and PRPs, latency model behaviour, admin commands, error
// paths and failure injection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mem/guest_memory.h"
#include "nvme/prp.h"
#include "sim/simulator.h"
#include "ssd/backing_store.h"
#include "ssd/controller.h"
#include "ssd/latency_model.h"

namespace nvmetro::ssd {
namespace {

using mem::GuestMemory;
using nvme::Cqe;
using nvme::Sqe;

// --- BackingStore -------------------------------------------------------------

TEST(BackingStoreTest, UnwrittenReadsZero) {
  BackingStore store(1 * MiB);
  std::vector<u8> buf(4096, 0xFF);
  ASSERT_TRUE(store.Read(0, buf.data(), buf.size()).ok());
  for (u8 b : buf) ASSERT_EQ(b, 0);
  EXPECT_EQ(store.chunk_count(), 0u);
}

TEST(BackingStoreTest, WriteReadRoundTrip) {
  BackingStore store(1 * MiB);
  std::vector<u8> in(10000);
  for (usize i = 0; i < in.size(); i++) in[i] = static_cast<u8>(i);
  ASSERT_TRUE(store.Write(12345, in.data(), in.size()).ok());
  std::vector<u8> out(in.size());
  ASSERT_TRUE(store.Read(12345, out.data(), out.size()).ok());
  EXPECT_EQ(in, out);
}

TEST(BackingStoreTest, CrossChunkBoundary) {
  BackingStore store(1 * MiB);
  std::vector<u8> in(200 * KiB, 0x3C);  // spans several 64K chunks
  ASSERT_TRUE(store.Write(30 * KiB, in.data(), in.size()).ok());
  EXPECT_TRUE(store.Matches(30 * KiB, in.data(), in.size()));
  EXPECT_GE(store.chunk_count(), 3u);
}

TEST(BackingStoreTest, TrimZeroes) {
  BackingStore store(1 * MiB);
  std::vector<u8> in(128 * KiB, 0xAA);
  ASSERT_TRUE(store.Write(0, in.data(), in.size()).ok());
  ASSERT_TRUE(store.Trim(1000, 50 * KiB).ok());
  std::vector<u8> out(50 * KiB);
  ASSERT_TRUE(store.Read(1000, out.data(), out.size()).ok());
  for (u8 b : out) ASSERT_EQ(b, 0);
  // Data outside the trim survives.
  u8 b = 0;
  ASSERT_TRUE(store.Read(999, &b, 1).ok());
  EXPECT_EQ(b, 0xAA);
}

TEST(BackingStoreTest, WholeChunkTrimReleasesMemory) {
  BackingStore store(1 * MiB);
  std::vector<u8> in(64 * KiB, 1);
  ASSERT_TRUE(store.Write(0, in.data(), in.size()).ok());
  EXPECT_GE(store.chunk_count(), 1u);
  ASSERT_TRUE(store.Trim(0, 64 * KiB).ok());
  EXPECT_EQ(store.chunk_count(), 0u);
}

TEST(BackingStoreTest, OutOfRangeRejected) {
  BackingStore store(64 * KiB);
  u8 b;
  EXPECT_FALSE(store.Read(64 * KiB, &b, 1).ok());
  EXPECT_FALSE(store.Write(64 * KiB - 1, &b, 2).ok());
}

// --- LatencyModel -------------------------------------------------------------

TEST(LatencyModelTest, Qd1ReadLatencyNearBase) {
  LatencyModel m(LatencyParams{}, 1);
  SimTime done = m.Complete(0, /*write=*/false, 512);
  // cmd overhead + media (with jitter/tail) + negligible bus.
  EXPECT_GT(done, 50 * kUs);
  EXPECT_LT(done, 250 * kUs);
}

TEST(LatencyModelTest, WritesFasterThanReadsAtQd1) {
  LatencyParams p;
  p.jitter = 0;
  p.slow_op_rate = 0;
  LatencyModel m(p, 1);
  SimTime r = m.Complete(0, false, 512);
  LatencyModel m2(p, 1);
  SimTime w = m2.Complete(0, true, 512);
  EXPECT_LT(w, r);
}

TEST(LatencyModelTest, ParallelismOverlapsMediaTime) {
  LatencyParams p;
  p.jitter = 0;
  p.slow_op_rate = 0;
  LatencyModel m(p, 1);
  // Submit 32 reads at t=0: completion of the last should be far less
  // than 32 * read_media (units work in parallel).
  SimTime last = 0;
  for (int i = 0; i < 32; i++) last = m.Complete(0, false, 4096);
  EXPECT_LT(last, 4 * p.read_media_ns);
}

TEST(LatencyModelTest, FirmwarePipelineCapsIops) {
  LatencyParams p;
  p.jitter = 0;
  p.slow_op_rate = 0;
  LatencyModel m(p, 1);
  // Far more commands than media units: completion time of the N-th is
  // bounded below by N * cmd_overhead.
  const int n = 1000;
  SimTime last = 0;
  for (int i = 0; i < n; i++) last = m.Complete(0, false, 512);
  EXPECT_GE(last, n * p.cmd_overhead_ns);
}

TEST(LatencyModelTest, LargeSequentialIsBandwidthBound) {
  LatencyParams p;
  p.jitter = 0;
  p.slow_op_rate = 0;
  LatencyModel m(p, 1);
  const int n = 100;
  SimTime last = 0;
  for (int i = 0; i < n; i++) last = m.Complete(0, false, 128 * KiB);
  double bytes = static_cast<double>(n) * 128 * KiB;
  double gbps = bytes / static_cast<double>(last);  // bytes per ns = GB/s
  EXPECT_GT(gbps, 2.8);
  EXPECT_LT(gbps, 3.8);  // ~3.5 GB/s read bandwidth
}

TEST(LatencyModelTest, DeterministicForSeed) {
  LatencyModel a(LatencyParams{}, 7), b(LatencyParams{}, 7);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Complete(i * 1000, i % 2, 4096),
              b.Complete(i * 1000, i % 2, 4096));
  }
}

// --- SimulatedController -------------------------------------------------------

struct ControllerFixture : ::testing::Test {
  sim::Simulator sim;
  GuestMemory gm{32 * MiB};
  std::unique_ptr<SimulatedController> ctrl;
  u16 qid = 0;
  std::vector<Cqe> completions;

  void SetUp() override {
    ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    ctrl = std::make_unique<SimulatedController>(&sim, &gm, cfg);
    auto q = ctrl->CreateIoQueuePair(64, [this] { Drain(); });
    ASSERT_TRUE(q.ok());
    qid = *q;
  }

  void Drain() {
    auto* cq = ctrl->cq(qid);
    Cqe cqe;
    while (cq->Peek(&cqe)) {
      cq->Pop();
      completions.push_back(cqe);
    }
    cq->PublishHead();
  }

  /// Writes `data` at slba via the full ring+PRP protocol; returns status.
  nvme::NvmeStatus DoWrite(u64 slba, const std::vector<u8>& data,
                           u32 nsid = 1) {
    return DoIo(nvme::kCmdWrite, slba, data.size(), data, nullptr, nsid);
  }
  nvme::NvmeStatus DoRead(u64 slba, u64 len, std::vector<u8>* out,
                          u32 nsid = 1) {
    return DoIo(nvme::kCmdRead, slba, len, {}, out, nsid);
  }

  nvme::NvmeStatus DoIo(u8 opcode, u64 slba, u64 len,
                        const std::vector<u8>& data, std::vector<u8>* out,
                        u32 nsid) {
    u64 pages = (len + mem::kPageSize - 1) / mem::kPageSize + 1;
    auto buf = gm.AllocPages(pages);
    EXPECT_TRUE(buf.ok());
    auto chain = nvme::BuildPrps(gm, *buf, len);
    EXPECT_TRUE(chain.ok());
    if (opcode == nvme::kCmdWrite || opcode == nvme::kCmdCompare) {
      EXPECT_TRUE(
          nvme::PrpWrite(gm, chain->prp1, chain->prp2, len, data.data())
              .ok());
    }
    Sqe sqe;
    sqe.opcode = opcode;
    sqe.nsid = nsid;
    sqe.set_slba(slba);
    sqe.set_nlb0(static_cast<u16>(len / 512 - 1));
    sqe.prp1 = chain->prp1;
    sqe.prp2 = chain->prp2;
    sqe.cid = next_cid_++;
    usize before = completions.size();
    EXPECT_TRUE(ctrl->Submit(qid, sqe));
    sim.Run();
    EXPECT_EQ(completions.size(), before + 1);
    if (out) {
      out->resize(len);
      EXPECT_TRUE(
          nvme::PrpRead(gm, chain->prp1, chain->prp2, len, out->data()).ok());
    }
    nvme::FreePrpChain(gm, *chain);
    gm.FreePages(*buf, pages);
    return completions.back().status();
  }

  u16 next_cid_ = 1;
};

TEST_F(ControllerFixture, WriteReadRoundTrip) {
  std::vector<u8> data(4096);
  for (usize i = 0; i < data.size(); i++) data[i] = static_cast<u8>(i * 3);
  EXPECT_EQ(DoWrite(100, data), nvme::kStatusSuccess);
  std::vector<u8> out;
  EXPECT_EQ(DoRead(100, data.size(), &out), nvme::kStatusSuccess);
  EXPECT_EQ(out, data);
}

TEST_F(ControllerFixture, DataLandsAtCorrectStoreOffset) {
  std::vector<u8> data(512, 0x7E);
  EXPECT_EQ(DoWrite(10, data), nvme::kStatusSuccess);
  EXPECT_TRUE(ctrl->store().Matches(10 * 512, data.data(), data.size()));
}

TEST_F(ControllerFixture, CompletionCarriesCidAndSqId) {
  std::vector<u8> data(512, 1);
  DoWrite(0, data);
  ASSERT_FALSE(completions.empty());
  EXPECT_EQ(completions.back().sq_id, qid);
  EXPECT_EQ(completions.back().cid, next_cid_ - 1);
}

TEST_F(ControllerFixture, LbaOutOfRangeFails) {
  std::vector<u8> data(512, 1);
  u64 nlb = ctrl->ns_block_count(1);
  EXPECT_EQ(DoWrite(nlb, data),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScLbaOutOfRange));
}

TEST_F(ControllerFixture, InvalidNamespaceFails) {
  std::vector<u8> data(512, 1);
  EXPECT_EQ(DoWrite(0, data, /*nsid=*/7),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidNamespace));
}

TEST_F(ControllerFixture, InvalidOpcodeFails) {
  Sqe sqe;
  sqe.opcode = 0x7F;
  sqe.nsid = 1;
  ASSERT_TRUE(ctrl->Submit(qid, sqe));
  sim.Run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status(),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode));
}

TEST_F(ControllerFixture, VendorOpcodeAccepted) {
  Sqe sqe;
  sqe.opcode = 0xC5;  // vendor-specific range
  sqe.nsid = 1;
  ASSERT_TRUE(ctrl->Submit(qid, sqe));
  sim.Run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status(), nvme::kStatusSuccess);
  EXPECT_EQ(completions[0].result, 0x56454E44u);
}

TEST_F(ControllerFixture, FlushSucceeds) {
  ASSERT_TRUE(ctrl->Submit(qid, nvme::MakeFlush(1)));
  sim.Run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status(), nvme::kStatusSuccess);
}

TEST_F(ControllerFixture, WriteZeroesClearsRange) {
  std::vector<u8> data(2048, 0xFF);
  EXPECT_EQ(DoWrite(0, data), nvme::kStatusSuccess);
  ASSERT_TRUE(ctrl->Submit(qid, nvme::MakeWriteZeroes(1, 1, 2)));
  sim.Run();
  std::vector<u8> out;
  EXPECT_EQ(DoRead(0, 2048, &out), nvme::kStatusSuccess);
  for (int i = 0; i < 512; i++) EXPECT_EQ(out[i], 0xFF);
  for (int i = 512; i < 1536; i++) ASSERT_EQ(out[i], 0);
  for (int i = 1536; i < 2048; i++) EXPECT_EQ(out[i], 0xFF);
}

TEST_F(ControllerFixture, CompareMatchesAndFails) {
  std::vector<u8> data(512, 0x11);
  EXPECT_EQ(DoWrite(5, data), nvme::kStatusSuccess);
  EXPECT_EQ(DoIo(nvme::kCmdCompare, 5, 512, data, nullptr, 1),
            nvme::kStatusSuccess);
  data[100] ^= 0xFF;
  EXPECT_EQ(DoIo(nvme::kCmdCompare, 5, 512, data, nullptr, 1),
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScCompareFailure));
}

TEST_F(ControllerFixture, OversizeTransferRejected) {
  Sqe sqe = nvme::MakeRead(1, 0, 2048 /* 1 MiB > MDTS */, 0, 0);
  sqe.cid = 1;
  ASSERT_TRUE(ctrl->Submit(qid, sqe));
  sim.Run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status(),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidField));
}

TEST_F(ControllerFixture, MalformedPrpIsDataTransferError) {
  Sqe sqe = nvme::MakeRead(1, 0, 16, gm.size() + mem::kPageSize, 0);
  sqe.cid = 2;
  ASSERT_TRUE(ctrl->Submit(qid, sqe));
  sim.Run();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status(),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScDataTransferError));
}

TEST_F(ControllerFixture, ErrorInjectionFiresThenClears) {
  ctrl->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead), 2);
  std::vector<u8> out;
  EXPECT_EQ(DoRead(0, 512, &out),
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead));
  EXPECT_EQ(DoRead(0, 512, &out),
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead));
  EXPECT_EQ(DoRead(0, 512, &out), nvme::kStatusSuccess);
}

TEST_F(ControllerFixture, CompletionLatencyIsRealistic) {
  std::vector<u8> data(512, 1);
  SimTime start = sim.now();
  DoWrite(0, data);
  SimTime write_latency = sim.now() - start;
  EXPECT_GT(write_latency, 5 * kUs);
  EXPECT_LT(write_latency, 150 * kUs);
  start = sim.now();
  std::vector<u8> out;
  DoRead(0, 512, &out);
  SimTime read_latency = sim.now() - start;
  EXPECT_GT(read_latency, 30 * kUs);
  EXPECT_LT(read_latency, 300 * kUs);
}

TEST_F(ControllerFixture, MultiQueueIndependent) {
  auto q2 = ctrl->CreateIoQueuePair(32, nullptr);
  ASSERT_TRUE(q2.ok());
  EXPECT_NE(*q2, qid);
  EXPECT_NE(ctrl->sq(*q2), nullptr);
  std::vector<u8> data(512, 9);
  EXPECT_EQ(DoWrite(0, data), nvme::kStatusSuccess);  // qid still works
  ASSERT_TRUE(ctrl->DeleteIoQueuePair(*q2).ok());
  EXPECT_EQ(ctrl->sq(*q2), nullptr);
  EXPECT_FALSE(ctrl->DeleteIoQueuePair(*q2).ok());
}

TEST_F(ControllerFixture, NamespacesPartitionCapacity) {
  ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.num_namespaces = 4;
  SimulatedController c2(&sim, &gm, cfg);
  EXPECT_EQ(c2.ns_block_count(1), 16 * MiB / 512);
  EXPECT_EQ(c2.ns_block_count(4), 16 * MiB / 512);
  EXPECT_EQ(c2.ns_block_count(5), 0u);
}

TEST_F(ControllerFixture, NamespaceIsolation) {
  ControllerConfig cfg;
  cfg.capacity = 4 * MiB;
  cfg.num_namespaces = 2;
  SimulatedController c2(&sim, &gm, cfg);
  auto q = c2.CreateIoQueuePair(16, nullptr);
  ASSERT_TRUE(q.ok());
  // Write to ns1 LBA0 and ns2 LBA0; they must hit distinct store offsets.
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  std::vector<u8> d1(512, 0x01), d2(512, 0x02);
  ASSERT_TRUE(gm.Write(*buf, d1.data(), 512).ok());
  Sqe s1 = nvme::MakeWrite(1, 0, 1, *buf, 0);
  ASSERT_TRUE(c2.Submit(*q, s1));
  sim.Run();
  ASSERT_TRUE(gm.Write(*buf, d2.data(), 512).ok());
  Sqe s2 = nvme::MakeWrite(2, 0, 1, *buf, 0);
  ASSERT_TRUE(c2.Submit(*q, s2));
  sim.Run();
  EXPECT_TRUE(c2.store().Matches(0, d1.data(), 512));
  EXPECT_TRUE(c2.store().Matches(2 * MiB, d2.data(), 512));
}

// --- Admin queue ----------------------------------------------------------------

struct AdminFixture : ControllerFixture {
  std::vector<Cqe> admin_cqes;

  void SetUp() override {
    ControllerFixture::SetUp();
    ctrl->SetAdminCqNotify([this] {
      auto* cq = ctrl->admin_cq();
      Cqe cqe;
      while (cq->Peek(&cqe)) {
        cq->Pop();
        admin_cqes.push_back(cqe);
      }
      cq->PublishHead();
    });
  }

  Cqe RunAdmin(Sqe sqe) {
    usize before = admin_cqes.size();
    EXPECT_TRUE(ctrl->admin_sq()->Push(sqe));
    ctrl->RingAdminSqDoorbell();
    sim.Run();
    EXPECT_EQ(admin_cqes.size(), before + 1);
    return admin_cqes.back();
  }
};

TEST_F(AdminFixture, IdentifyController) {
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  Sqe sqe;
  sqe.opcode = nvme::kAdminIdentify;
  sqe.cdw10 = nvme::kCnsController;
  sqe.prp1 = *buf;
  Cqe cqe = RunAdmin(sqe);
  EXPECT_EQ(cqe.status(), nvme::kStatusSuccess);
  nvme::IdentifyController id;
  ASSERT_TRUE(gm.Read(*buf, &id, sizeof(id)).ok());
  EXPECT_EQ(id.vid, 0x144d);
  EXPECT_EQ(id.nn, 1u);
  EXPECT_EQ(id.sqes, 0x66);
  EXPECT_EQ(id.cqes, 0x44);
}

TEST_F(AdminFixture, IdentifyNamespaceReportsGeometry) {
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  Sqe sqe;
  sqe.opcode = nvme::kAdminIdentify;
  sqe.cdw10 = nvme::kCnsNamespace;
  sqe.nsid = 1;
  sqe.prp1 = *buf;
  Cqe cqe = RunAdmin(sqe);
  EXPECT_EQ(cqe.status(), nvme::kStatusSuccess);
  nvme::IdentifyNamespace ns;
  ASSERT_TRUE(gm.Read(*buf, &ns, sizeof(ns)).ok());
  EXPECT_EQ(ns.nsze, ctrl->ns_block_count(1));
  EXPECT_EQ(ns.lba_size(), 512u);
}

TEST_F(AdminFixture, CreateIoQueuesViaAdminCommands) {
  // Allocate guest ring memory, create CQ then SQ, then do I/O on it.
  const u32 entries = 16;
  auto sq_mem = gm.AllocPages(1);
  auto cq_mem = gm.AllocPages(1);
  ASSERT_TRUE(sq_mem.ok());
  ASSERT_TRUE(cq_mem.ok());

  Sqe ccq;
  ccq.opcode = nvme::kAdminCreateIoCq;
  ccq.cdw10 = 5 | ((entries - 1) << 16);
  ccq.prp1 = *cq_mem;
  EXPECT_EQ(RunAdmin(ccq).status(), nvme::kStatusSuccess);

  Sqe csq;
  csq.opcode = nvme::kAdminCreateIoSq;
  csq.cdw10 = 5 | ((entries - 1) << 16);
  csq.prp1 = *sq_mem;
  EXPECT_EQ(RunAdmin(csq).status(), nvme::kStatusSuccess);

  ASSERT_NE(ctrl->sq(5), nullptr);
  // Round-trip I/O through the admin-created queue.
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  std::vector<u8> data(512, 0x42);
  ASSERT_TRUE(gm.Write(*buf, data.data(), 512).ok());
  ASSERT_TRUE(ctrl->Submit(5, nvme::MakeWrite(1, 77, 1, *buf, 0)));
  sim.Run();
  EXPECT_TRUE(ctrl->store().Matches(77 * 512, data.data(), 512));

  Sqe del;
  del.opcode = nvme::kAdminDeleteIoSq;
  del.cdw10 = 5;
  EXPECT_EQ(RunAdmin(del).status(), nvme::kStatusSuccess);
  EXPECT_EQ(ctrl->sq(5), nullptr);
}

TEST_F(AdminFixture, CreateSqWithoutCqFails) {
  Sqe csq;
  csq.opcode = nvme::kAdminCreateIoSq;
  csq.cdw10 = 9 | (15 << 16);
  csq.prp1 = 0;
  EXPECT_EQ(RunAdmin(csq).status(),
            nvme::MakeStatus(nvme::kSctCommandSpecific,
                             nvme::kScInvalidQueueId));
}

TEST_F(AdminFixture, GetFeaturesNumQueues) {
  Sqe gf;
  gf.opcode = nvme::kAdminGetFeatures;
  gf.cdw10 = nvme::kFeatNumQueues;
  Cqe cqe = RunAdmin(gf);
  EXPECT_EQ(cqe.status(), nvme::kStatusSuccess);
  EXPECT_GT(cqe.result & 0xFFFF, 0u);
}

TEST_F(AdminFixture, UnknownAdminOpcodeRejected) {
  Sqe sqe;
  sqe.opcode = 0x70;
  EXPECT_EQ(RunAdmin(sqe).status(),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode));
}

// --- KV command set -----------------------------------------------------------

struct KvFixture : ControllerFixture {
  void SetUp() override {
    ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    cfg.kv_nsid = 1;
    ctrl = std::make_unique<SimulatedController>(&sim, &gm, cfg);
    auto q = ctrl->CreateIoQueuePair(64, [this] { Drain(); });
    ASSERT_TRUE(q.ok());
    qid = *q;
  }

  nvme::KvKey Key(const char* s) {
    nvme::KvKey k{};
    strncpy(reinterpret_cast<char*>(k.bytes), s, sizeof(k.bytes));
    return k;
  }

  nvme::Cqe RunKv(Sqe sqe) {
    sqe.cid = next_cid_++;
    usize before = completions.size();
    EXPECT_TRUE(ctrl->Submit(qid, sqe));
    sim.Run();
    EXPECT_EQ(completions.size(), before + 1);
    return completions.back();
  }
};

TEST_F(KvFixture, StoreRetrieveRoundTrip) {
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  const char value[] = "kv value payload";
  ASSERT_TRUE(gm.Write(*buf, value, sizeof(value)).ok());
  nvme::Cqe st = RunKv(
      nvme::MakeKvStore(1, Key("alpha"), sizeof(value), *buf, 0));
  EXPECT_EQ(st.status(), nvme::kStatusSuccess);
  EXPECT_EQ(ctrl->kv_entry_count(), 1u);

  auto out = gm.AllocPages(1);
  ASSERT_TRUE(out.ok());
  nvme::Cqe rt = RunKv(
      nvme::MakeKvRetrieve(1, Key("alpha"), 4096, *out, 0));
  EXPECT_EQ(rt.status(), nvme::kStatusSuccess);
  EXPECT_EQ(rt.result, sizeof(value));
  char got[sizeof(value)] = {};
  ASSERT_TRUE(gm.Read(*out, got, sizeof(value)).ok());
  EXPECT_STREQ(got, value);
}

TEST_F(KvFixture, RetrieveMissingKeyFails) {
  auto out = gm.AllocPages(1);
  ASSERT_TRUE(out.ok());
  nvme::Cqe cqe = RunKv(nvme::MakeKvRetrieve(1, Key("nope"), 4096, *out, 0));
  EXPECT_EQ(cqe.status(), nvme::MakeStatus(nvme::kSctCommandSpecific,
                                           nvme::kScKvKeyNotFound));
}

TEST_F(KvFixture, ExistAndDelete) {
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  RunKv(nvme::MakeKvStore(1, Key("k"), 8, *buf, 0));
  EXPECT_EQ(RunKv(nvme::MakeKvExist(1, Key("k"))).status(),
            nvme::kStatusSuccess);
  EXPECT_EQ(RunKv(nvme::MakeKvDelete(1, Key("k"))).status(),
            nvme::kStatusSuccess);
  EXPECT_EQ(RunKv(nvme::MakeKvExist(1, Key("k"))).status(),
            nvme::MakeStatus(nvme::kSctCommandSpecific,
                             nvme::kScKvKeyNotFound));
  EXPECT_EQ(RunKv(nvme::MakeKvDelete(1, Key("k"))).status(),
            nvme::MakeStatus(nvme::kSctCommandSpecific,
                             nvme::kScKvKeyNotFound));
}

TEST_F(KvFixture, RetrieveBufferTooSmallReportsSize) {
  auto buf = gm.AllocPages(2);
  ASSERT_TRUE(buf.ok());
  std::vector<u8> big(5000, 7);
  auto chain = nvme::BuildPrps(gm, *buf, big.size());
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(nvme::PrpWrite(gm, chain->prp1, chain->prp2, big.size(),
                             big.data())
                  .ok());
  Sqe store = nvme::MakeKvStore(1, Key("big"), big.size(), chain->prp1,
                                chain->prp2);
  EXPECT_EQ(RunKv(store).status(), nvme::kStatusSuccess);
  auto out = gm.AllocPages(1);
  nvme::Cqe cqe = RunKv(nvme::MakeKvRetrieve(1, Key("big"), 100, *out, 0));
  EXPECT_EQ(cqe.status(), nvme::MakeStatus(nvme::kSctCommandSpecific,
                                           nvme::kScKvValueTooLarge));
  EXPECT_EQ(cqe.result, big.size());
}

TEST_F(KvFixture, OverwriteReplacesValue) {
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  u64 v1 = 111, v2 = 222;
  ASSERT_TRUE(gm.Write(*buf, &v1, 8).ok());
  RunKv(nvme::MakeKvStore(1, Key("k"), 8, *buf, 0));
  ASSERT_TRUE(gm.Write(*buf, &v2, 8).ok());
  RunKv(nvme::MakeKvStore(1, Key("k"), 8, *buf, 0));
  EXPECT_EQ(ctrl->kv_entry_count(), 1u);
  auto out = gm.AllocPages(1);
  RunKv(nvme::MakeKvRetrieve(1, Key("k"), 4096, *out, 0));
  u64 got = 0;
  ASSERT_TRUE(gm.Read(*out, &got, 8).ok());
  EXPECT_EQ(got, v2);
}

TEST_F(KvFixture, KvOnNonKvNamespaceRejected) {
  ControllerConfig cfg;  // kv_nsid = 0: no KV support
  cfg.capacity = 4 * MiB;
  SimulatedController plain(&sim, &gm, cfg);
  auto q = plain.CreateIoQueuePair(16, nullptr);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(plain.Submit(*q, nvme::MakeKvExist(1, Key("x"))));
  sim.Run();
  auto* cq = plain.cq(*q);
  nvme::Cqe cqe;
  ASSERT_TRUE(cq->Peek(&cqe));
  EXPECT_EQ(cqe.status(),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInvalidOpcode));
}

// --- DSM (TRIM) ------------------------------------------------------------------

TEST_F(ControllerFixture, DsmDeallocatesRanges) {
  std::vector<u8> data(4096, 0xEE);
  EXPECT_EQ(DoWrite(0, data), nvme::kStatusSuccess);
  // Build one DSM range: deallocate blocks [2, 4).
  struct DsmRange {
    u32 cattr, nlb;
    u64 slba;
  };
  auto buf = gm.AllocPages(1);
  ASSERT_TRUE(buf.ok());
  DsmRange r{0, 2, 2};
  ASSERT_TRUE(gm.Write(*buf, &r, sizeof(r)).ok());
  Sqe sqe;
  sqe.opcode = nvme::kCmdDsm;
  sqe.nsid = 1;
  sqe.cdw10 = 0;  // 1 range
  sqe.cdw11 = 0x4;  // deallocate
  sqe.prp1 = *buf;
  ASSERT_TRUE(ctrl->Submit(qid, sqe));
  sim.Run();
  std::vector<u8> out;
  EXPECT_EQ(DoRead(0, 4096, &out), nvme::kStatusSuccess);
  for (int i = 0; i < 1024; i++) EXPECT_EQ(out[i], 0xEE);
  for (int i = 1024; i < 2048; i++) ASSERT_EQ(out[i], 0);
  for (int i = 2048; i < 4096; i++) EXPECT_EQ(out[i], 0xEE);
}

}  // namespace
}  // namespace nvmetro::ssd

// Integration tests for the NVMetro core: router + classifier + paths,
// with the real guest driver, simulated device, UIF framework and the
// paper's storage functions (encryption, SGX encryption, replication).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/classifier.h"
#include "core/notify.h"
#include "core/router.h"
#include "crypto/xts.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"
#include "functions/encryptor_uif.h"
#include "functions/replicator_uif.h"
#include "kblock/devices.h"
#include "kblock/dm.h"
#include "mem/address_space.h"
#include "nvme/prp.h"
#include "ssd/controller.h"
#include "uif/framework.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::core {
namespace {

using nvme::NvmeStatus;

struct CoreFixture : ::testing::Test {
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};  // host windows live high
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<NvmetroHost> host;
  VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;

  void Build(VirtualController::Config vc_cfg = {},
             const char* classifier_asm = nullptr) {
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    virt::VmConfig vm_cfg;
    vm_cfg.memory_bytes = 16 * MiB;
    vm = std::make_unique<virt::Vm>(&sim, vm_cfg);
    host = std::make_unique<NvmetroHost>(&sim, phys.get());
    vc_cfg.vm_id = 1;
    vc = host->CreateController(vm.get(), vc_cfg);
    auto prog = classifier_asm
                    ? ebpf::Assemble(classifier_asm)
                    : functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok()) << prog.status().ToString();
    ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    ASSERT_TRUE(driver->Init(1).ok());
  }

  /// Issues one I/O through the full guest stack; returns its status.
  NvmeStatus GuestIo(u8 opcode, u64 lba, std::vector<u8>* data) {
    mem::GuestMemory& gm = vm->memory();
    u64 len = data ? data->size() : 0;
    u64 pages = data ? (len + mem::kPageSize - 1) / mem::kPageSize + 1 : 1;
    auto buf = gm.AllocPages(pages);
    EXPECT_TRUE(buf.ok());
    nvme::Sqe sqe;
    sqe.opcode = opcode;
    sqe.nsid = 1;
    nvme::PrpChain chain;
    if (data) {
      auto c = nvme::BuildPrps(gm, *buf, len);
      EXPECT_TRUE(c.ok());
      chain = *c;
      if (opcode == nvme::kCmdWrite || opcode == nvme::kCmdCompare) {
        EXPECT_TRUE(nvme::PrpWrite(gm, chain.prp1, chain.prp2, len,
                                   data->data())
                        .ok());
      }
      sqe.prp1 = chain.prp1;
      sqe.prp2 = chain.prp2;
      sqe.set_slba(lba);
      sqe.set_nlb0(static_cast<u16>(len / 512 - 1));
    } else {
      sqe.set_slba(lba);
    }
    NvmeStatus status = 0xFFF;
    bool done = false;
    driver->Submit(0, sqe, [&](NvmeStatus st, u32) {
      status = st;
      done = true;
    });
    sim.Run();
    EXPECT_TRUE(done) << "request never completed";
    if (done && data && opcode == nvme::kCmdRead) {
      EXPECT_TRUE(
          nvme::PrpRead(gm, chain.prp1, chain.prp2, len, data->data()).ok());
    }
    if (data) nvme::FreePrpChain(gm, chain);
    gm.FreePages(*buf, pages);
    return status;
  }

  NvmeStatus GuestWrite(u64 lba, std::vector<u8> data) {
    return GuestIo(nvme::kCmdWrite, lba, &data);
  }
  NvmeStatus GuestRead(u64 lba, std::vector<u8>* out) {
    return GuestIo(nvme::kCmdRead, lba, out);
  }
};

// --- Basic routing -------------------------------------------------------------

TEST_F(CoreFixture, PassthroughWriteReadRoundTrip) {
  Build();
  Rng rng(1);
  std::vector<u8> in(4096), out(4096, 0);
  rng.Fill(in.data(), in.size());
  EXPECT_EQ(GuestWrite(10, in), nvme::kStatusSuccess);
  EXPECT_EQ(GuestRead(10, &out), nvme::kStatusSuccess);
  EXPECT_EQ(in, out);
  EXPECT_EQ(vc->fast_path_sends(), 2u);
  EXPECT_EQ(vc->requests_completed(), 2u);
  EXPECT_EQ(vc->requests_failed(), 0u);
}

TEST_F(CoreFixture, PartitionTranslationLandsAtOffset) {
  VirtualController::Config cfg;
  cfg.part_first_lba = 1000;
  cfg.part_nlb = 10000;
  Build(cfg);
  std::vector<u8> in(512, 0x9A);
  EXPECT_EQ(GuestWrite(5, in), nvme::kStatusSuccess);
  EXPECT_TRUE(phys->store().Matches((1000 + 5) * 512, in.data(), in.size()));
  // Guest LBA 5 must NOT be at absolute LBA 5.
  EXPECT_FALSE(phys->store().Matches(5 * 512, in.data(), in.size()));
}

TEST_F(CoreFixture, RouterEnforcesPartitionIsolation) {
  // A buggy classifier that "forgets" the LBA translation: the router's
  // containment check must stop the request escaping the partition.
  const char* kBuggy =
      "  mov r0, 0x120000\n"  // SEND_HQ | WILL_COMPLETE_HQ, no translate
      "  exit\n";
  VirtualController::Config cfg;
  cfg.part_first_lba = 1000;
  cfg.part_nlb = 10000;
  Build(cfg, kBuggy);
  std::vector<u8> in(512, 1);
  EXPECT_EQ(GuestWrite(5, in),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScLbaOutOfRange));
  EXPECT_EQ(vc->requests_failed(), 1u);
  // And nothing was written at absolute LBA 5.
  EXPECT_TRUE(phys->store().Matches(5 * 512, std::vector<u8>(512, 0).data(),
                                    512));
}

TEST_F(CoreFixture, GuestCannotReachBeyondPartitionEnd) {
  VirtualController::Config cfg;
  cfg.part_first_lba = 0;
  cfg.part_nlb = 100;
  Build(cfg);
  std::vector<u8> in(512, 1);
  EXPECT_EQ(GuestWrite(99, in), nvme::kStatusSuccess);
  EXPECT_EQ(GuestWrite(100, in),
            nvme::MakeStatus(nvme::kSctGeneric, nvme::kScLbaOutOfRange));
}

TEST_F(CoreFixture, RoguePrpOutsideGuestMemoryFailsCleanly) {
  // A malicious or buggy guest points its PRP at an address far beyond
  // its own RAM. The per-queue DMA context (the vIOMMU stand-in) must
  // fail the transfer with an error completion — never touch memory it
  // does not own, never wedge the router.
  Build();
  nvme::Sqe sqe = nvme::MakeWrite(1, 0, 1, /*prp1=*/1ull << 38, 0);
  NvmeStatus st = 0xFFF;
  driver->Submit(0, sqe, [&](NvmeStatus s, u32) { st = s; });
  sim.Run();
  EXPECT_NE(st, nvme::kStatusSuccess);
  EXPECT_NE(st, 0xFFF) << "request hung";
  // The drive's media is untouched and the stack still works.
  EXPECT_TRUE(phys->store().Matches(0, std::vector<u8>(512, 0).data(), 512));
  std::vector<u8> in(512, 7), out(512, 0);
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);
  EXPECT_EQ(GuestRead(0, &out), nvme::kStatusSuccess);
  EXPECT_EQ(in, out);
}

TEST_F(CoreFixture, VerifierRejectsUnsafeClassifier) {
  Build();
  // Loop -> rejected at install time, old classifier stays active.
  auto bad = ebpf::Assemble("l: mov r0, 0\nja l\nexit\n");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(vc->InstallClassifier(std::move(*bad)).ok());
  std::vector<u8> in(512, 2);
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);  // still works
}

TEST_F(CoreFixture, ClassifierCannotWriteReadOnlyCtxFields) {
  Build();
  auto bad = ebpf::Assemble(
      "  mov r2, 0\n"
      "  stxdw [r1+64], r2\n"  // part_offset is read-only
      "  mov r0, 0x120000\n"
      "  exit\n");
  ASSERT_TRUE(bad.ok());
  Status st = vc->InstallClassifier(std::move(*bad));
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ctx write"), std::string::npos);
}

TEST_F(CoreFixture, ReadOnlyClassifierDeniesWrites) {
  Build({}, functions::ReadOnlyClassifierAsm());
  std::vector<u8> in(512, 3), out(512);
  EXPECT_EQ(GuestWrite(0, in),
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScAccessDenied));
  EXPECT_EQ(GuestRead(0, &out), nvme::kStatusSuccess);
  EXPECT_EQ(vc->fast_path_sends(), 1u);  // only the read reached the disk
}

TEST_F(CoreFixture, VendorCommandPassesToHardware) {
  Build({}, functions::VendorPassClassifierAsm());
  nvme::Sqe sqe;
  sqe.opcode = 0x95;  // vendor-specific
  sqe.nsid = 1;
  NvmeStatus status = 0xFFF;
  u32 result = 0;
  driver->Submit(0, sqe, [&](NvmeStatus st, u32 r) {
    status = st;
    result = r;
  });
  sim.Run();
  EXPECT_EQ(status, nvme::kStatusSuccess);
  EXPECT_EQ(result, 0x56454E44u);  // the drive's vendor reply
}

TEST_F(CoreFixture, ClassifierHotSwapUnderOperation) {
  Build();
  std::vector<u8> in(512, 4);
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);
  // Swap in the read-only policy on the fly (paper §III-B: install,
  // migrate and remove storage functions without VM reboots).
  auto ro = functions::ReadOnlyClassifier();
  ASSERT_TRUE(ro.ok());
  ASSERT_TRUE(vc->InstallClassifier(std::move(*ro)).ok());
  EXPECT_EQ(GuestWrite(0, in),
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScAccessDenied));
  std::vector<u8> out(512);
  EXPECT_EQ(GuestRead(0, &out), nvme::kStatusSuccess);
  EXPECT_EQ(out, in);  // first write is still there
}

TEST_F(CoreFixture, VmParkingAfterIdle) {
  Build();
  // Probe parking state at fixed points around a write: shortly after the
  // I/O the VM is active (not parked); long after, it is parked.
  bool parked_soon = true, parked_late = false;
  sim.ScheduleAt(150 * kUs, [&] { parked_soon = vc->parked(); });
  sim.ScheduleAt(5 * kMs, [&] { parked_late = vc->parked(); });
  std::vector<u8> in(512, 5);
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);  // completes < 150us
  EXPECT_FALSE(parked_soon);
  EXPECT_TRUE(parked_late);
  // A parked VM still works; its doorbell just traps to wake the path.
  EXPECT_EQ(GuestWrite(1, in), nvme::kStatusSuccess);
}

TEST_F(CoreFixture, RouterChargesCpu) {
  Build();
  std::vector<u8> in(4096, 6);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(GuestWrite(static_cast<u64>(i) * 8, in),
              nvme::kStatusSuccess);
  }
  EXPECT_GT(host->RouterCpuBusyNs(), 0u);
  EXPECT_GT(vc->classifier()->invocations(), 9u);
}

TEST_F(CoreFixture, FlushRoutesThroughFastPath) {
  Build();
  EXPECT_EQ(GuestIo(nvme::kCmdFlush, 0, nullptr), nvme::kStatusSuccess);
}

// --- Encryption function ---------------------------------------------------------

struct EncryptionFixture : CoreFixture {
  std::unique_ptr<kblock::NvmeBlockDevice> kernel_dev;
  std::unique_ptr<uif::UifHost> uif_host;
  std::unique_ptr<core::NotifyChannel> channel;
  std::unique_ptr<functions::EncryptorUif> encryptor;
  std::vector<u8> key = std::vector<u8>(64, 0);

  void BuildEncryption(u64 part_first = 0) {
    Rng rng(2024);
    rng.Fill(key.data(), key.size());
    VirtualController::Config cfg;
    cfg.part_first_lba = part_first;
    cfg.part_nlb = 32 * MiB / 512;
    Build(cfg, functions::EncryptorClassifierAsm());
    kernel_dev = std::make_unique<kblock::NvmeBlockDevice>(
        &sim, phys.get(), &dma, 1);
    auto enc = functions::EncryptorUif::Create(&sim, kernel_dev.get(),
                                               key.data(), key.size());
    ASSERT_TRUE(enc.ok());
    encryptor = std::move(*enc);
    channel = std::make_unique<core::NotifyChannel>();
    uif_host = std::make_unique<uif::UifHost>(&sim, "enc");
    vc->AttachUif(channel.get());
    uif_host->AddFunction(channel.get(), vm.get(), encryptor.get());
    uif_host->Start();
  }
};

TEST_F(EncryptionFixture, WriteReadRoundTripThroughEncryption) {
  BuildEncryption();
  Rng rng(3);
  std::vector<u8> in(4096), out(4096, 0);
  rng.Fill(in.data(), in.size());
  EXPECT_EQ(GuestWrite(20, in), nvme::kStatusSuccess);
  EXPECT_EQ(GuestRead(20, &out), nvme::kStatusSuccess);
  EXPECT_EQ(in, out);
  EXPECT_EQ(encryptor->writes_encrypted(), 1u);
  EXPECT_EQ(encryptor->reads_decrypted(), 1u);
}

TEST_F(EncryptionFixture, MediaHoldsDmCryptCompatibleCiphertext) {
  BuildEncryption();
  Rng rng(4);
  std::vector<u8> in(2048);
  rng.Fill(in.data(), in.size());
  EXPECT_EQ(GuestWrite(8, in), nvme::kStatusSuccess);
  // Media must not hold plaintext.
  EXPECT_FALSE(phys->store().Matches(8 * 512, in.data(), in.size()));
  // It must hold aes-xts-plain64 ciphertext with guest-relative tweaks —
  // exactly what dm-crypt would produce on this partition.
  auto xts = crypto::XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> expect(in.size());
  xts->EncryptRange(8, 512, in.data(), expect.data(), in.size());
  EXPECT_TRUE(phys->store().Matches(8 * 512, expect.data(), expect.size()));
}

TEST_F(EncryptionFixture, PartitionedEncryptionUsesGuestRelativeTweaks) {
  BuildEncryption(/*part_first=*/4096);
  Rng rng(5);
  std::vector<u8> in(1024);
  rng.Fill(in.data(), in.size());
  EXPECT_EQ(GuestWrite(2, in), nvme::kStatusSuccess);
  auto xts = crypto::XtsCipher::Create(key.data(), key.size());
  ASSERT_TRUE(xts.ok());
  std::vector<u8> expect(in.size());
  // Tweak = guest sector 2 (not absolute 4098) => dm-crypt compatible.
  xts->EncryptRange(2, 512, in.data(), expect.data(), in.size());
  EXPECT_TRUE(
      phys->store().Matches((4096 + 2) * 512, expect.data(), expect.size()));
}

TEST_F(EncryptionFixture, DmCryptCanReadNvmetroEncryptedDisk) {
  BuildEncryption();
  Rng rng(6);
  std::vector<u8> in(4096);
  rng.Fill(in.data(), in.size());
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);
  // Mount the same media under our dm-crypt target and read it back.
  sim::VCpu w(&sim, "kcryptd");
  kblock::NvmeBlockDevice raw(&sim, phys.get(), &dma, 1);
  auto dmc = kblock::DmCrypt::Create(&sim, &raw, key.data(), key.size(),
                                     {&w});
  ASSERT_TRUE(dmc.ok());
  std::vector<u8> out(4096, 0);
  bool done = false;
  (*dmc)->Submit(kblock::Bio::Read(0, out.data(), out.size(), [&](Status st) {
    EXPECT_TRUE(st.ok());
    done = true;
  }));
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(out, in);
}

TEST_F(EncryptionFixture, NvmetroCanReadDmCryptEncryptedDisk) {
  BuildEncryption();
  // Write through dm-crypt first...
  sim::VCpu w(&sim, "kcryptd");
  kblock::NvmeBlockDevice raw(&sim, phys.get(), &dma, 1);
  auto dmc = kblock::DmCrypt::Create(&sim, &raw, key.data(), key.size(),
                                     {&w});
  ASSERT_TRUE(dmc.ok());
  Rng rng(7);
  std::vector<u8> in(2048);
  rng.Fill(in.data(), in.size());
  bool done = false;
  (*dmc)->Submit(
      kblock::Bio::Write(40, in.data(), in.size(), [&](Status st) {
        EXPECT_TRUE(st.ok());
        done = true;
      }));
  sim.Run();
  ASSERT_TRUE(done);
  // ...then read through the NVMetro encryption function.
  std::vector<u8> out(2048, 0);
  EXPECT_EQ(GuestRead(40, &out), nvme::kStatusSuccess);
  EXPECT_EQ(out, in);
}

TEST_F(EncryptionFixture, DeviceReadErrorForwardedByClassifier) {
  BuildEncryption();
  std::vector<u8> in(512, 8);
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);
  // Listing 1 line 8: HOOK_HCQ forwards the device's error | COMPLETE.
  phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead),
      1);
  std::vector<u8> out(512);
  EXPECT_EQ(GuestRead(0, &out),
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead));
  // The UIF never saw the failed read.
  EXPECT_EQ(encryptor->reads_decrypted(), 0u);
}

TEST_F(EncryptionFixture, ClassifierRunsTwicePerReadOncePerWrite) {
  BuildEncryption();
  std::vector<u8> in(512, 9);
  u64 before = vc->classifier()->invocations();
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);
  EXPECT_EQ(vc->classifier()->invocations() - before, 1u);
  before = vc->classifier()->invocations();
  std::vector<u8> out(512);
  EXPECT_EQ(GuestRead(0, &out), nvme::kStatusSuccess);
  EXPECT_EQ(vc->classifier()->invocations() - before, 2u);
}

// --- Replication function ----------------------------------------------------------

struct ReplicationFixture : CoreFixture {
  std::unique_ptr<kblock::RamBlockDevice> secondary_media;
  std::unique_ptr<kblock::RemoteBlockDevice> secondary;
  std::unique_ptr<uif::UifHost> uif_host;
  std::unique_ptr<core::NotifyChannel> channel;
  std::unique_ptr<functions::ReplicatorUif> replicator;

  void BuildReplication() {
    Build({}, functions::ReplicatorClassifierAsm());
    secondary_media =
        std::make_unique<kblock::RamBlockDevice>(&sim, 64 * MiB, 20 * kUs);
    secondary = std::make_unique<kblock::RemoteBlockDevice>(
        &sim, secondary_media.get());
    replicator = std::make_unique<functions::ReplicatorUif>(
        &sim, secondary.get());
    channel = std::make_unique<core::NotifyChannel>();
    uif_host = std::make_unique<uif::UifHost>(&sim, "repl");
    vc->AttachUif(channel.get());
    uif_host->AddFunction(channel.get(), vm.get(), replicator.get());
    uif_host->Start();
  }
};

TEST_F(ReplicationFixture, WritesLandOnBothDisks) {
  BuildReplication();
  Rng rng(10);
  for (int i = 0; i < 10; i++) {
    std::vector<u8> data(512 * (1 + rng.NextBounded(4)));
    rng.Fill(data.data(), data.size());
    u64 lba = rng.NextBounded(1000);
    ASSERT_EQ(GuestWrite(lba, data), nvme::kStatusSuccess);
    EXPECT_TRUE(phys->store().Matches(lba * 512, data.data(), data.size()));
    EXPECT_TRUE(secondary_media->store().Matches(lba * 512, data.data(),
                                                 data.size()));
  }
  EXPECT_EQ(replicator->writes_replicated(), 10u);
}

TEST_F(ReplicationFixture, WriteWaitsForBothLegs) {
  BuildReplication();
  std::vector<u8> in(512, 0xA1);
  SimTime start = sim.now();
  EXPECT_EQ(GuestWrite(0, in), nvme::kStatusSuccess);
  // Must exceed the remote leg's latency (20us media + 2x link).
  EXPECT_GE(sim.now() - start, 30 * kUs);
  EXPECT_EQ(vc->fast_path_sends(), 1u);
  EXPECT_EQ(vc->notify_path_sends(), 1u);
}

TEST_F(ReplicationFixture, ReadsServedLocallyWithoutUif) {
  BuildReplication();
  std::vector<u8> in(512, 0xB2);
  EXPECT_EQ(GuestWrite(3, in), nvme::kStatusSuccess);
  u64 notify_before = vc->notify_path_sends();
  std::vector<u8> out(512);
  EXPECT_EQ(GuestRead(3, &out), nvme::kStatusSuccess);
  EXPECT_EQ(out, in);
  EXPECT_EQ(vc->notify_path_sends(), notify_before);  // read skipped UIF
}

// --- Kernel path -------------------------------------------------------------------

TEST_F(CoreFixture, KernelPathRoundTrip) {
  // Classifier that routes everything via the kernel path.
  const char* kKernelAsm =
      "  ldxdw r4, [r1+24]\n"
      "  ldxdw r5, [r1+64]\n"
      "  add r4, r5\n"
      "  stxdw [r1+24], r4\n"
      "  mov r0, 0x480000\n"  // SEND_KQ | WILL_COMPLETE_KQ
      "  exit\n";
  Build({}, kKernelAsm);
  auto kernel_dev = std::make_unique<kblock::NvmeBlockDevice>(
      &sim, phys.get(), &dma, 1);
  vc->AttachKernelDevice(kernel_dev.get());
  Rng rng(11);
  std::vector<u8> in(8192), out(8192, 0);
  rng.Fill(in.data(), in.size());
  EXPECT_EQ(GuestWrite(50, in), nvme::kStatusSuccess);
  EXPECT_EQ(GuestRead(50, &out), nvme::kStatusSuccess);
  EXPECT_EQ(in, out);
  EXPECT_EQ(vc->kernel_path_sends(), 2u);
  EXPECT_EQ(vc->fast_path_sends(), 0u);
}

// --- KV command set through the router ----------------------------------------------

TEST_F(CoreFixture, KvCommandSetAdoptedByClassifierOnly) {
  // Build a testbed whose drive speaks the KV command set on nsid 1; the
  // only change needed on the NVMetro side is the classifier (paper
  // §III-B).
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.kv_nsid = 1;
  phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
  virt::VmConfig vm_cfg;
  vm_cfg.memory_bytes = 16 * MiB;
  vm = std::make_unique<virt::Vm>(&sim, vm_cfg);
  host = std::make_unique<NvmetroHost>(&sim, phys.get());
  vc = host->CreateController(vm.get(), {.vm_id = 1});
  auto prog = functions::KvPassClassifier();
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  ASSERT_TRUE(vc->InstallClassifier(std::move(*prog)).ok());
  host->Start();
  driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
  ASSERT_TRUE(driver->Init(1).ok());

  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(1);
  const char value[] = "stored through NVMetro's router";
  ASSERT_TRUE(gm.Write(buf, value, sizeof(value)).ok());
  nvme::KvKey key{};
  memcpy(key.bytes, "guest-key", 9);

  NvmeStatus status = 0xFFF;
  driver->Submit(0, nvme::MakeKvStore(1, key, sizeof(value), buf, 0),
                 [&](NvmeStatus st, u32) { status = st; });
  sim.Run();
  EXPECT_EQ(status, nvme::kStatusSuccess);
  EXPECT_EQ(phys->kv_entry_count(), 1u);

  u64 out = *gm.AllocPages(1);
  u32 retrieved_len = 0;
  driver->Submit(0, nvme::MakeKvRetrieve(1, key, 4096, out, 0),
                 [&](NvmeStatus st, u32 result) {
                   status = st;
                   retrieved_len = result;
                 });
  sim.Run();
  EXPECT_EQ(status, nvme::kStatusSuccess);
  EXPECT_EQ(retrieved_len, sizeof(value));
  char got[sizeof(value)] = {};
  ASSERT_TRUE(gm.Read(out, got, sizeof(value)).ok());
  EXPECT_STREQ(got, value);

  // Regular NVM commands still work side by side, LBA-translated.
  std::vector<u8> block(512, 0x11);
  EXPECT_EQ(GuestWrite(3, block), nvme::kStatusSuccess);
  std::vector<u8> back(512);
  EXPECT_EQ(GuestRead(3, &back), nvme::kStatusSuccess);
  EXPECT_EQ(back, block);
}

// --- Multi-VM ----------------------------------------------------------------------

TEST(MultiVmTest, PartitionedVmsDoNotInterfere) {
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  NvmetroHost host(&sim, &phys);

  constexpr int kVms = 3;
  constexpr u64 kPartLba = 8192;
  std::vector<std::unique_ptr<virt::Vm>> vms;
  std::vector<std::unique_ptr<virt::GuestNvmeDriver>> drivers;
  std::vector<VirtualController*> vcs;
  for (int i = 0; i < kVms; i++) {
    virt::VmConfig vm_cfg;
    vm_cfg.name = "vm" + std::to_string(i);
    vm_cfg.memory_bytes = 8 * MiB;
    vms.push_back(std::make_unique<virt::Vm>(&sim, vm_cfg));
    VirtualController::Config c;
    c.vm_id = i + 1;
    c.part_first_lba = i * kPartLba;
    c.part_nlb = kPartLba;
    vcs.push_back(host.CreateController(vms.back().get(), c));
    auto prog = functions::PassthroughClassifier();
    ASSERT_TRUE(prog.ok());
    ASSERT_TRUE(vcs.back()->InstallClassifier(std::move(*prog)).ok());
  }
  host.Start();
  for (int i = 0; i < kVms; i++) {
    drivers.push_back(std::make_unique<virt::GuestNvmeDriver>(
        vms[i].get(), vcs[i]));
    ASSERT_TRUE(drivers[i]->Init(1).ok());
  }

  // Every VM writes a distinct pattern at ITS guest LBA 0, same gpa
  // layout — per-queue DMA contexts must keep them apart.
  std::vector<std::vector<u8>> patterns(kVms);
  int completions = 0;
  for (int i = 0; i < kVms; i++) {
    mem::GuestMemory& gm = vms[i]->memory();
    auto buf = gm.AllocPages(1);
    ASSERT_TRUE(buf.ok());
    patterns[i] = std::vector<u8>(512, static_cast<u8>(0x10 + i));
    ASSERT_TRUE(gm.Write(*buf, patterns[i].data(), 512).ok());
    nvme::Sqe sqe = nvme::MakeWrite(1, 0, 1, *buf, 0);
    drivers[i]->Submit(0, sqe, [&](NvmeStatus st, u32) {
      EXPECT_EQ(st, nvme::kStatusSuccess);
      completions++;
    });
  }
  sim.Run();
  EXPECT_EQ(completions, kVms);
  for (int i = 0; i < kVms; i++) {
    EXPECT_TRUE(phys.store().Matches(i * kPartLba * 512, patterns[i].data(),
                                     512))
        << "vm " << i;
  }
}

// --- UIF framework behaviour ---------------------------------------------------------

struct EchoUif : uif::UifBase {
  bool work(const nvme::Sqe&, u32, u16& status) override {
    calls++;
    status = nvme::kStatusSuccess;
    return false;
  }
  int calls = 0;
};

TEST(UifFrameworkTest, AdaptivePollingSleepsAndWakes) {
  sim::Simulator sim;
  core::NotifyChannel channel;
  virt::Vm vm(&sim, {});
  uif::UifHostParams params;
  params.threads = 1;
  params.idle_timeout_ns = 50 * kUs;
  uif::UifHost host(&sim, "echo", params);
  EchoUif echo;
  host.AddFunction(&channel, &vm, &echo);
  host.Start();
  sim.RunFor(1 * kMs);
  EXPECT_TRUE(host.sleeping());
  u64 busy_asleep = host.TotalCpuBusyNs();
  EXPECT_LE(busy_asleep, 60 * kUs);  // only the pre-sleep window
  // Wake it with a request.
  core::NotifyEntry e;
  e.sqe = nvme::MakeFlush(1);
  e.tag = 1;
  channel.PushRequest(e);
  sim.Run();
  EXPECT_EQ(echo.calls, 1);
  core::NotifyCompletion c;
  ASSERT_TRUE(channel.PopCompletion(&c));
  EXPECT_EQ(c.tag, 1u);
  EXPECT_EQ(c.status, nvme::kStatusSuccess);
}

TEST(UifFrameworkTest, MultipleFunctionsShareOneProcess) {
  sim::Simulator sim;
  core::NotifyChannel ch1, ch2;
  virt::Vm vm1(&sim, {.name = "a", .memory_bytes = 4 * MiB, .vcpus = 1});
  virt::Vm vm2(&sim, {.name = "b", .memory_bytes = 4 * MiB, .vcpus = 1});
  uif::UifHost host(&sim, "multi");
  EchoUif e1, e2;
  host.AddFunction(&ch1, &vm1, &e1);
  host.AddFunction(&ch2, &vm2, &e2);
  host.Start();
  core::NotifyEntry entry;
  entry.sqe = nvme::MakeFlush(1);
  for (u32 t = 0; t < 5; t++) {
    entry.tag = t;
    ch1.PushRequest(entry);
    ch2.PushRequest(entry);
  }
  sim.Run();
  EXPECT_EQ(e1.calls, 5);
  EXPECT_EQ(e2.calls, 5);
}

}  // namespace
}  // namespace nvmetro::core

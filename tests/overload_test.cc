// Overload controller tests (src/overload, DESIGN.md §13).
//
// The controller is a passive state machine driven by Note*() signals
// and Evaluate() ticks, so every property pins down here deterministically
// without a simulator: threshold-driven transitions with immediate
// upgrades, hysteresis + cooldown on the way down, AIMD pacing of
// best-effort credit, shed verdicts that never touch latency-critical
// tenants, symmetric degradation hooks, and the metrics/trace marks the
// telemetry checker consumes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/span.h"
#include "overload/overload.h"

namespace nvmetro::overload {
namespace {

using Action = Verdict::Action;

OverloadConfig TestConfig() {
  OverloadConfig cfg;
  cfg.device_tokens_per_sec = 100'000;
  cfg.backpressure_enter_ns = 200 * kUs;
  cfg.brownout_enter_ns = 1 * kMs;
  cfg.shed_enter_ns = 4 * kMs;
  cfg.exit_fraction = 0.5;
  cfg.cooldown_ns = 1 * kMs;
  cfg.eval_period_ns = 100 * kUs;
  cfg.ewma_alpha = 0.5;
  cfg.min_be_fraction = 0.1;
  cfg.additive_step = 0.1;
  cfg.decrease_factor = 0.5;
  return cfg;
}

/// Pins the EWMA at `wait_ns` (repeated samples converge it there).
void Saturate(OverloadController* c, SimTime wait_ns) {
  for (int i = 0; i < 40; i++) c->NoteQueueWait(wait_ns);
}

TEST(OverloadTest, StartsNormalAndPassesEverything) {
  OverloadController c(TestConfig());
  c.RegisterTenant(1, /*best_effort=*/false);
  c.RegisterTenant(2, /*best_effort=*/true);
  EXPECT_EQ(c.state(), State::kNormal);
  EXPECT_EQ(c.Admit(1, 8, 0).action, Action::kPass);
  EXPECT_EQ(c.Admit(2, 8, 0).action, Action::kPass);
  EXPECT_EQ(c.decisions(), 2u);
  EXPECT_EQ(c.sheds(), 0u);
}

TEST(OverloadTest, SignalIsMaxOfEwmaAndBacklogDrainTime) {
  OverloadController c(TestConfig());
  // 100 tokens at 100k tokens/s = 1 ms of backlog drain.
  c.NoteBacklog(100);
  EXPECT_EQ(c.signal_ns(0), 1 * kMs);
  // EWMA above the backlog term wins the max.
  Saturate(&c, 3 * kMs);
  EXPECT_NEAR(static_cast<double>(c.signal_ns(0)), 3e6, 1e4);
  // Draining the backlog leaves the EWMA term.
  c.NoteBacklog(-100);
  EXPECT_NEAR(static_cast<double>(c.signal_ns(0)), 3e6, 1e4);
  // Over-draining clamps at zero instead of wrapping.
  c.NoteBacklog(-1'000'000);
  EXPECT_EQ(c.backlog_tokens(), 0u);
}

TEST(OverloadTest, UpgradesAreImmediateEvenMidCooldown) {
  OverloadController c(TestConfig());
  Saturate(&c, 300 * kUs);
  c.Evaluate(100 * kUs);
  EXPECT_EQ(c.state(), State::kBackpressure);
  // One period later — far inside the cooldown — a worse signal still
  // escalates straight past Brownout to Shed.
  Saturate(&c, 10 * kMs);
  c.Evaluate(200 * kUs);
  EXPECT_EQ(c.state(), State::kShed);
  EXPECT_EQ(c.transitions(State::kBackpressure), 1u);
  EXPECT_EQ(c.transitions(State::kShed), 1u);
  EXPECT_EQ(c.transitions(State::kBrownout), 0u);  // skipped on the way up
}

TEST(OverloadTest, DowngradeWaitsForCooldownAndHysteresis) {
  OverloadController c(TestConfig());
  Saturate(&c, 300 * kUs);
  c.Evaluate(100 * kUs);
  ASSERT_EQ(c.state(), State::kBackpressure);

  // Signal collapses to zero, but the cooldown (1 ms) has not elapsed.
  Saturate(&c, 0);
  c.Evaluate(200 * kUs);
  EXPECT_EQ(c.state(), State::kBackpressure);
  // Cooldown elapsed + signal below enter*exit_fraction: steps down.
  c.Evaluate(1'200 * kUs);
  EXPECT_EQ(c.state(), State::kNormal);
  EXPECT_EQ(c.transitions(State::kNormal), 1u);
}

TEST(OverloadTest, HysteresisBandHoldsState) {
  OverloadController c(TestConfig());
  Saturate(&c, 300 * kUs);
  c.Evaluate(100 * kUs);
  ASSERT_EQ(c.state(), State::kBackpressure);
  // 150 us sits below enter (200 us) but above exit (100 us): the state
  // must hold forever, not flap.
  for (SimTime t = 2 * kMs; t < 20 * kMs; t += 100 * kUs) {
    Saturate(&c, 150 * kUs);
    c.Evaluate(t);
    ASSERT_EQ(c.state(), State::kBackpressure) << "flapped at t=" << t;
  }
  EXPECT_EQ(c.transitions(State::kBackpressure), 1u);
}

TEST(OverloadTest, DowngradesStepOneStatePerEvaluation) {
  OverloadController c(TestConfig());
  Saturate(&c, 10 * kMs);
  c.Evaluate(100 * kUs);
  ASSERT_EQ(c.state(), State::kShed);
  Saturate(&c, 0);
  c.Evaluate(2 * kMs);  // past cooldown, signal ~0
  EXPECT_EQ(c.state(), State::kBrownout);
  c.Evaluate(4 * kMs);
  EXPECT_EQ(c.state(), State::kBackpressure);
  c.Evaluate(6 * kMs);
  EXPECT_EQ(c.state(), State::kNormal);
}

TEST(OverloadTest, EwmaDecaysWithoutFreshSamples) {
  OverloadController c(TestConfig());
  Saturate(&c, 400 * kUs);
  c.Evaluate(100 * kUs);
  ASSERT_EQ(c.state(), State::kBackpressure);
  // No Note* traffic at all: the EWMA halves every period (alpha 0.5)
  // and the controller must eventually find its own way back to Normal.
  SimTime t = 200 * kUs;
  for (; t < 10 * kMs && c.state() != State::kNormal; t += 100 * kUs) {
    c.Evaluate(t);
  }
  EXPECT_EQ(c.state(), State::kNormal);
}

TEST(OverloadTest, ShedRefusesBestEffortOnly) {
  OverloadController c(TestConfig());
  c.RegisterTenant(1, /*best_effort=*/false);
  c.RegisterTenant(2, /*best_effort=*/true);
  Saturate(&c, 10 * kMs);
  c.Evaluate(100 * kUs);
  ASSERT_EQ(c.state(), State::kShed);
  EXPECT_EQ(c.Admit(1, 8, 200 * kUs).action, Action::kPass);
  EXPECT_EQ(c.Admit(2, 8, 200 * kUs).action, Action::kShed);
  // Unknown tenants default to best-effort (fail safe under overload).
  EXPECT_EQ(c.Admit(99, 8, 200 * kUs).action, Action::kShed);
  EXPECT_EQ(c.sheds(), 2u);
}

TEST(OverloadTest, BackpressurePacesBestEffortAimd) {
  OverloadConfig cfg = TestConfig();
  cfg.pace_depth_ns = 100 * kUs;  // bucket depth = 10 tokens at fraction 1
  OverloadController c(cfg);
  c.RegisterTenant(1, false);
  c.RegisterTenant(2, true);
  Saturate(&c, 300 * kUs);
  c.Evaluate(100 * kUs);
  ASSERT_EQ(c.state(), State::kBackpressure);
  // The signal sits above the entry threshold, so the first evaluation
  // already halved the credit.
  EXPECT_DOUBLE_EQ(c.be_fraction(), 0.5);

  // Drain the pacing bucket dry: deferrals with a future retry time.
  SimTime now = 150 * kUs;
  u64 passed = 0, deferred = 0;
  SimTime retry_at = 0;
  for (int i = 0; i < 30; i++) {
    Verdict v = c.Admit(2, 1, now);
    if (v.action == Action::kPass) {
      passed++;
    } else {
      ASSERT_EQ(v.action, Action::kDefer);
      EXPECT_GT(v.retry_at, now);
      retry_at = v.retry_at;
      deferred++;
    }
  }
  EXPECT_GT(passed, 0u);
  EXPECT_GT(deferred, 0u);
  EXPECT_EQ(c.paced(), deferred);
  // LC is never paced, even with the bucket dry.
  EXPECT_EQ(c.Admit(1, 64, now).action, Action::kPass);
  // By the advertised retry time the bucket has refilled enough.
  EXPECT_EQ(c.Admit(2, 1, retry_at).action, Action::kPass);

  // Multiplicative decrease to the floor while the signal stays high...
  for (int i = 0; i < 10; i++) {
    Saturate(&c, 300 * kUs);
    c.Evaluate(200 * kUs + i * 100 * kUs);
  }
  EXPECT_DOUBLE_EQ(c.be_fraction(), cfg.min_be_fraction);
  // ...and additive recovery back to full credit once it clears (the
  // state machine also steps down; credit restores on reaching Normal).
  Saturate(&c, 0);
  SimTime t = 2 * kMs;
  for (int i = 0; i < 40 && c.be_fraction() < 1.0; i++, t += 100 * kUs) {
    c.Evaluate(t);
  }
  EXPECT_DOUBLE_EQ(c.be_fraction(), 1.0);
}

TEST(OverloadTest, RefundReturnsPacingTokens) {
  OverloadConfig cfg = TestConfig();
  cfg.pace_depth_ns = 100 * kUs;  // 10-token bucket
  OverloadController c(cfg);
  c.RegisterTenant(2, true);
  Saturate(&c, 250 * kUs);
  c.Evaluate(100 * kUs);
  ASSERT_EQ(c.state(), State::kBackpressure);
  SimTime now = 100 * kUs;
  ASSERT_EQ(c.Admit(2, 5, now).action, Action::kPass);
  Verdict v = c.Admit(2, 5, now);
  // Whatever the bucket held, pass+refund must make the same admission
  // pass again: pacing never charges work that did not run.
  if (v.action == Action::kPass) {
    c.Refund(2, 5);
    v = c.Admit(2, 5, now);
    ASSERT_EQ(v.action, Action::kPass);
  }
  c.Refund(2, 5);
  EXPECT_EQ(c.Admit(2, 5, now).action, Action::kPass);
}

TEST(OverloadTest, DegradationHooksFireSymmetrically) {
  OverloadController c(TestConfig());
  std::vector<std::pair<std::string, bool>> fired;
  c.RegisterDegradation("resync", [&](bool on) { fired.push_back({"resync", on}); });
  EXPECT_EQ(c.num_degradations(), 1u);
  EXPECT_TRUE(fired.empty());

  Saturate(&c, 2 * kMs);
  c.Evaluate(100 * kUs);  // -> Brownout
  ASSERT_EQ(c.state(), State::kBrownout);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].second);
  EXPECT_TRUE(c.degradation_active());

  // Escalating to Shed keeps degradation active without re-firing.
  Saturate(&c, 10 * kMs);
  c.Evaluate(200 * kUs);
  ASSERT_EQ(c.state(), State::kShed);
  EXPECT_EQ(fired.size(), 1u);

  // Registering while degraded fires the new hook immediately.
  c.RegisterDegradation("trace", [&](bool on) { fired.push_back({"trace", on}); });
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].first, "trace");
  EXPECT_TRUE(fired[1].second);

  // Recovery below Brownout clears both hooks exactly once.
  Saturate(&c, 0);
  c.Evaluate(2 * kMs);   // Shed -> Brownout (still degraded)
  EXPECT_EQ(fired.size(), 2u);
  c.Evaluate(4 * kMs);   // Brownout -> Backpressure (clears)
  ASSERT_EQ(c.state(), State::kBackpressure);
  ASSERT_EQ(fired.size(), 4u);
  EXPECT_FALSE(fired[2].second);
  EXPECT_FALSE(fired[3].second);
  EXPECT_FALSE(c.degradation_active());
}

TEST(OverloadTest, MetricsAndTraceMarks) {
  obs::Observability obs;
  OverloadController c(TestConfig(), &obs);
  c.RegisterTenant(2, true);
  const auto& m = obs.metrics();
  ASSERT_NE(m.FindGauge("overload.state"), nullptr);
  EXPECT_EQ(m.FindGauge("overload.state")->value(), 0);

  Saturate(&c, 10 * kMs);
  c.Evaluate(100 * kUs);  // Normal -> Shed
  EXPECT_EQ(m.FindGauge("overload.state")->value(), 3);
  EXPECT_EQ(m.FindCounter("overload.transitions.shed")->value(), 1u);
  EXPECT_EQ(m.FindCounter("overload.brownouts")->value(), 1u);
  (void)c.Admit(2, 1, 200 * kUs);
  EXPECT_EQ(m.FindCounter("overload.sheds")->value(), 1u);
  EXPECT_EQ(m.FindCounter("overload.tenant2.shed")->value(), 1u);
  EXPECT_EQ(m.FindCounter("overload.decisions")->value(), 1u);
  EXPECT_GT(m.FindGauge("overload.signal_us")->value(), 0);

  // The transition wrote an OVERLOAD_STATE mark (req 0) with the new
  // state in aux and the previous state in status.
  bool saw_mark = false;
  for (const obs::TraceEvent& ev : obs.trace().Events()) {
    if (ev.kind != obs::SpanKind::kOverloadState) continue;
    saw_mark = true;
    EXPECT_EQ(ev.req_id, 0u);
    EXPECT_EQ(ev.aux, static_cast<u64>(State::kShed));
    EXPECT_EQ(ev.status, static_cast<u16>(State::kNormal));
  }
  EXPECT_TRUE(saw_mark);
}

TEST(OverloadTest, StartPreSchedulesEvaluationCadence) {
  OverloadController c(TestConfig());
  std::vector<SimTime> ticks;
  std::vector<std::function<void()>> fns;
  c.Start(0, 1 * kMs, [&](SimTime at, std::function<void()> fn) {
    ticks.push_back(at);
    fns.push_back(std::move(fn));
  });
  ASSERT_EQ(ticks.size(), 10u);  // 1 ms / 100 us
  EXPECT_EQ(ticks.front(), 100 * kUs);
  EXPECT_EQ(ticks.back(), 1 * kMs);
  // Running the scheduled evaluations drives the state machine.
  Saturate(&c, 10 * kMs);
  fns[0]();
  EXPECT_EQ(c.state(), State::kShed);
}

}  // namespace
}  // namespace nvmetro::overload

// Tests for the UIF framework in isolation: NSQ/NCQ dispatch, the sync
// and async response contracts, adaptive poller sleep/wake behaviour and
// its CPU accounting, multi-function hosting, guest-data iteration, and
// the io_uring-style write path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/notify.h"
#include "kblock/devices.h"
#include "uif/framework.h"
#include "uif/guest_data.h"
#include "uif/uring.h"
#include "virt/vm.h"

namespace nvmetro::uif {
namespace {

/// Records every command; responds per a scripted policy.
class RecordingUif : public UifBase {
 public:
  enum class Mode { kSyncOk, kSyncError, kAsync, kNever };

  explicit RecordingUif(Mode mode) : mode_(mode) {}

  bool work(const nvme::Sqe& cmd, u32 tag, u16& status) override {
    seen.push_back({cmd, tag});
    switch (mode_) {
      case Mode::kSyncOk:
        status = nvme::kStatusSuccess;
        return false;
      case Mode::kSyncError:
        status = nvme::MakeStatus(nvme::kSctMediaError,
                                  nvme::kScWriteFault);
        return false;
      case Mode::kAsync:
        pending_tags.push_back(tag);
        return true;
      case Mode::kNever:
        return true;
    }
    return false;
  }

  struct Seen {
    nvme::Sqe sqe;
    u32 tag;
  };
  Mode mode_;
  std::vector<Seen> seen;
  std::vector<u32> pending_tags;
};

struct UifFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<virt::Vm> vm;
  core::NotifyChannel channel;
  std::unique_ptr<UifHost> host;

  void Build(RecordingUif* impl, UifHostParams params = {}) {
    vm = std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.name = "vm", .memory_bytes = 16 * MiB,
                             .vcpus = 1});
    host = std::make_unique<UifHost>(&sim, "test-uif", params);
    host->AddFunction(&channel, vm.get(), impl);
    host->Start();
  }

  /// Acts as the router: pushes one request onto the NSQ.
  void Push(const nvme::Sqe& sqe, u32 tag) {
    core::NotifyEntry e;
    e.sqe = sqe;
    e.tag = tag;
    e.vm_id = 1;
    ASSERT_TRUE(channel.PushRequest(e));
  }

  std::vector<core::NotifyCompletion> DrainCompletions() {
    std::vector<core::NotifyCompletion> out;
    core::NotifyCompletion c;
    while (channel.PopCompletion(&c)) out.push_back(c);
    return out;
  }
};

TEST_F(UifFixture, DispatchesRequestAndRespondsSync) {
  RecordingUif impl(RecordingUif::Mode::kSyncOk);
  Build(&impl);
  nvme::Sqe sqe = nvme::MakeFlush(1);
  sqe.cid = 77;
  Push(sqe, 42);
  sim.Run();
  ASSERT_EQ(impl.seen.size(), 1u);
  EXPECT_EQ(impl.seen[0].tag, 42u);
  EXPECT_EQ(impl.seen[0].sqe.cid, 77);
  auto done = DrainCompletions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].tag, 42u);
  EXPECT_EQ(done[0].status, nvme::kStatusSuccess);
}

TEST_F(UifFixture, SyncErrorStatusPropagates) {
  RecordingUif impl(RecordingUif::Mode::kSyncError);
  Build(&impl);
  Push(nvme::MakeFlush(1), 7);
  sim.Run();
  auto done = DrainCompletions();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].status,
            nvme::MakeStatus(nvme::kSctMediaError, nvme::kScWriteFault));
}

TEST_F(UifFixture, AsyncRespondDeliversLater) {
  RecordingUif impl(RecordingUif::Mode::kAsync);
  Build(&impl);
  Push(nvme::MakeFlush(1), 3);
  Push(nvme::MakeFlush(1), 4);
  sim.Run();
  ASSERT_EQ(impl.pending_tags.size(), 2u);
  EXPECT_TRUE(DrainCompletions().empty()) << "responded before Respond()";
  // Respond out of order; both must arrive with their own tag.
  UifFunction* fn = impl.function();
  fn->Respond(4, nvme::kStatusSuccess);
  fn->Respond(3, nvme::MakeStatus(nvme::kSctGeneric, nvme::kScInternalError));
  sim.Run();
  auto done = DrainCompletions();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].tag, 4u);
  EXPECT_EQ(done[0].status, nvme::kStatusSuccess);
  EXPECT_EQ(done[1].tag, 3u);
  EXPECT_EQ(fn->requests(), 2u);
  EXPECT_EQ(fn->responses(), 2u);
}

TEST_F(UifFixture, AdaptiveHostSleepsWhenIdleAndWakes) {
  RecordingUif impl(RecordingUif::Mode::kSyncOk);
  UifHostParams params;
  params.idle_timeout_ns = 40 * kUs;
  Build(&impl, params);
  // Nothing to do: after the idle timeout the poll thread must park.
  sim.RunFor(1 * kMs);
  EXPECT_TRUE(host->sleeping());
  u64 cpu_at_sleep = host->TotalCpuBusyNs();
  sim.RunFor(10 * kMs);
  // Parked = (near) zero CPU burn. Allow a trickle for re-arm events.
  EXPECT_LT(host->TotalCpuBusyNs() - cpu_at_sleep, 100 * kUs);
  // A request must wake it and get served.
  Push(nvme::MakeFlush(1), 1);
  sim.Run();
  EXPECT_EQ(DrainCompletions().size(), 1u);
  EXPECT_EQ(impl.seen.size(), 1u);
}

TEST_F(UifFixture, NonAdaptiveHostSpins) {
  RecordingUif impl(RecordingUif::Mode::kSyncOk);
  UifHostParams params;
  params.adaptive = false;
  Build(&impl, params);
  sim.RunFor(5 * kMs);
  EXPECT_FALSE(host->sleeping());
  // A spinning poll thread accounts (close to) wall time as busy.
  EXPECT_GT(host->poll_cpu()->busy_ns(), 4 * kMs);
}

TEST_F(UifFixture, MultipleFunctionsShareOneHost) {
  RecordingUif impl_a(RecordingUif::Mode::kSyncOk);
  RecordingUif impl_b(RecordingUif::Mode::kSyncOk);
  Build(&impl_a);
  core::NotifyChannel channel_b;
  auto vm_b = std::make_unique<virt::Vm>(
      &sim,
      virt::VmConfig{.name = "vm-b", .memory_bytes = 16 * MiB, .vcpus = 1});
  host->AddFunction(&channel_b, vm_b.get(), &impl_b);

  Push(nvme::MakeFlush(1), 10);
  core::NotifyEntry e;
  e.sqe = nvme::MakeFlush(1);
  e.tag = 20;
  e.vm_id = 2;
  ASSERT_TRUE(channel_b.PushRequest(e));
  sim.Run();

  // Each function saw exactly its own VM's request, and each channel got
  // exactly its own completion back.
  ASSERT_EQ(impl_a.seen.size(), 1u);
  EXPECT_EQ(impl_a.seen[0].tag, 10u);
  ASSERT_EQ(impl_b.seen.size(), 1u);
  EXPECT_EQ(impl_b.seen[0].tag, 20u);
  EXPECT_EQ(DrainCompletions().size(), 1u);
  core::NotifyCompletion c;
  ASSERT_TRUE(channel_b.PopCompletion(&c));
  EXPECT_EQ(c.tag, 20u);
  EXPECT_FALSE(channel_b.PopCompletion(&c));
}

TEST_F(UifFixture, GuestDataIteratesCommandBlocks) {
  RecordingUif impl(RecordingUif::Mode::kSyncOk);
  Build(&impl);
  mem::GuestMemory& gm = vm->memory();
  u64 buf = *gm.AllocPages(2);  // 8 KiB = 16 x 512B blocks, PRP1+PRP2
  Rng rng(5);
  std::vector<u8> payload(8192);
  rng.Fill(payload.data(), payload.size());
  memcpy(gm.Translate(buf, payload.size()), payload.data(),
         payload.size());

  nvme::Sqe sqe =
      nvme::MakeWrite(1, /*slba=*/1000, /*nblocks=*/16, buf,
                      buf + mem::kPageSize);
  GuestData data(&gm, sqe);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data.nblocks(), 16u);
  EXPECT_EQ(data.nbytes(), 8192u);
  EXPECT_EQ(data.disk_addr(), 1000u);
  u32 count = 0;
  for (; !data.at_end(); data++) {
    EXPECT_EQ(data.lba(), 1000u + count);
    EXPECT_EQ(data.block_offset(), static_cast<u64>(count) * 512);
    // The block's bytes are the guest's, zero-copy.
    EXPECT_EQ(memcmp(*data, payload.data() + count * 512, 512), 0)
        << "block " << count;
    count++;
  }
  EXPECT_EQ(count, 16u);

  std::vector<u8> copied(8192, 0);
  GuestData again(&gm, sqe);
  ASSERT_TRUE(again.CopyOut(copied.data()).ok());
  EXPECT_EQ(copied, payload);
}

TEST_F(UifFixture, UringWritevLandsOnDeviceAndCompletes) {
  RecordingUif impl(RecordingUif::Mode::kSyncOk);
  Build(&impl);
  kblock::RamBlockDevice dev(&sim, 4 * MiB);
  Uring ring(&sim, &dev, host->poll_cpu());

  Rng rng(9);
  std::vector<u8> a(1024), b(512);
  rng.Fill(a.data(), a.size());
  rng.Fill(b.data(), b.size());
  auto ticket = std::make_unique<IovecTicket>();
  ticket->tag = 1;
  ticket->iovecs = {{a.data(), a.size()}, {b.data(), b.size()}};
  Status wst = Internal("pending");
  ticket->done = [&](Status st) { wst = st; };
  ring.QueueWritev(std::move(ticket), /*sector=*/8);
  sim.Run();
  ASSERT_TRUE(wst.ok());
  EXPECT_EQ(ring.submitted(), 1u);
  EXPECT_EQ(ring.completed(), 1u);
  // Both iovecs landed contiguously at the sector.
  EXPECT_TRUE(dev.store().Matches(8 * kblock::kSectorSize, a.data(),
                                  a.size()));
  EXPECT_TRUE(dev.store().Matches(8 * kblock::kSectorSize + a.size(),
                                  b.data(), b.size()));

  // Read it back through the ring.
  std::vector<u8> ra(1024), rb(512);
  auto rticket = std::make_unique<IovecTicket>();
  rticket->iovecs = {{ra.data(), ra.size()}, {rb.data(), rb.size()}};
  Status rst = Internal("pending");
  rticket->done = [&](Status st) { rst = st; };
  ring.QueueReadv(std::move(rticket), 8);
  Status fst = Internal("pending");
  ring.QueueFsync([&](Status st) { fst = st; });
  sim.Run();
  ASSERT_TRUE(rst.ok());
  ASSERT_TRUE(fst.ok());
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
}

TEST_F(UifFixture, NotifyChannelCapacityBounds) {
  core::NotifyChannel small(8);
  core::NotifyEntry e;
  e.sqe = nvme::MakeFlush(1);
  int pushed = 0;
  for (int i = 0; i < 20; i++) {
    e.tag = i;
    if (small.PushRequest(e)) pushed++;
  }
  EXPECT_LT(pushed, 20);
  EXPECT_GE(pushed, 7);  // ring of 8 holds at least entries-1
  EXPECT_EQ(small.PendingRequests(), static_cast<u32>(pushed));
  core::NotifyEntry out;
  ASSERT_TRUE(small.PopRequest(&out));
  EXPECT_EQ(out.tag, 0u);  // FIFO
  e.tag = 99;
  EXPECT_TRUE(small.PushRequest(e));  // space freed
}

}  // namespace
}  // namespace nvmetro::uif

# Empty compiler generated dependencies file for router_stress_test.
# This may be replaced when dependencies are built.

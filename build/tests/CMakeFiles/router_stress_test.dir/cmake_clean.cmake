file(REMOVE_RECURSE
  "CMakeFiles/router_stress_test.dir/router_stress_test.cc.o"
  "CMakeFiles/router_stress_test.dir/router_stress_test.cc.o.d"
  "router_stress_test"
  "router_stress_test.pdb"
  "router_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

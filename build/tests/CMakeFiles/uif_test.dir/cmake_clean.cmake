file(REMOVE_RECURSE
  "CMakeFiles/uif_test.dir/uif_test.cc.o"
  "CMakeFiles/uif_test.dir/uif_test.cc.o.d"
  "uif_test"
  "uif_test.pdb"
  "uif_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for uif_test.
# This may be replaced when dependencies are built.

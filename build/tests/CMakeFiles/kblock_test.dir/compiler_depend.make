# Empty compiler generated dependencies file for kblock_test.
# This may be replaced when dependencies are built.

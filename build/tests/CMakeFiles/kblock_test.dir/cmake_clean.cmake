file(REMOVE_RECURSE
  "CMakeFiles/kblock_test.dir/kblock_test.cc.o"
  "CMakeFiles/kblock_test.dir/kblock_test.cc.o.d"
  "kblock_test"
  "kblock_test.pdb"
  "kblock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kblock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

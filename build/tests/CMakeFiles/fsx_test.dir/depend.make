# Empty dependencies file for fsx_test.
# This may be replaced when dependencies are built.

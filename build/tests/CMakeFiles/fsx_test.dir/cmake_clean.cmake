file(REMOVE_RECURSE
  "CMakeFiles/fsx_test.dir/fsx_test.cc.o"
  "CMakeFiles/fsx_test.dir/fsx_test.cc.o.d"
  "fsx_test"
  "fsx_test.pdb"
  "fsx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

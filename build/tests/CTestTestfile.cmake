# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_test[1]_include.cmake")
include("/root/repo/build/tests/ebpf_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/kblock_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fsx_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/uif_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/router_stress_test[1]_include.cmake")
include("/root/repo/build/tests/virt_test[1]_include.cmake")
include("/root/repo/build/tests/functions_test[1]_include.cmake")

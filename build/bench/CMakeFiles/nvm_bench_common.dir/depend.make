# Empty dependencies file for nvm_bench_common.
# This may be replaced when dependencies are built.

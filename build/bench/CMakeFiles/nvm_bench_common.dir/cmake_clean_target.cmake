file(REMOVE_RECURSE
  "libnvm_bench_common.a"
)

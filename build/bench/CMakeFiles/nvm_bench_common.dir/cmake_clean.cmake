file(REMOVE_RECURSE
  "CMakeFiles/nvm_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/nvm_bench_common.dir/bench_common.cc.o.d"
  "libnvm_bench_common.a"
  "libnvm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

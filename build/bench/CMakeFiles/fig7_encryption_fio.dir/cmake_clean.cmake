file(REMOVE_RECURSE
  "CMakeFiles/fig7_encryption_fio.dir/fig7_encryption_fio.cc.o"
  "CMakeFiles/fig7_encryption_fio.dir/fig7_encryption_fio.cc.o.d"
  "fig7_encryption_fio"
  "fig7_encryption_fio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_encryption_fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_encryption_fio.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig13_cpu_replication.
# This may be replaced when dependencies are built.

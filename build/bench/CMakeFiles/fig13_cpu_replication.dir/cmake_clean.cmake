file(REMOVE_RECURSE
  "CMakeFiles/fig13_cpu_replication.dir/fig13_cpu_replication.cc.o"
  "CMakeFiles/fig13_cpu_replication.dir/fig13_cpu_replication.cc.o.d"
  "fig13_cpu_replication"
  "fig13_cpu_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_cpu_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

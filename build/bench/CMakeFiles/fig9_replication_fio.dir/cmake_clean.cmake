file(REMOVE_RECURSE
  "CMakeFiles/fig9_replication_fio.dir/fig9_replication_fio.cc.o"
  "CMakeFiles/fig9_replication_fio.dir/fig9_replication_fio.cc.o.d"
  "fig9_replication_fio"
  "fig9_replication_fio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_replication_fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig9_replication_fio.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig3_fio_basic.dir/fig3_fio_basic.cc.o"
  "CMakeFiles/fig3_fio_basic.dir/fig3_fio_basic.cc.o.d"
  "fig3_fio_basic"
  "fig3_fio_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fio_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_loc.cc" "bench/CMakeFiles/table1_loc.dir/table1_loc.cc.o" "gcc" "bench/CMakeFiles/table1_loc.dir/table1_loc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/nvm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/nvm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/nvm_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/fsx/CMakeFiles/nvm_fsx.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nvm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/functions/CMakeFiles/nvm_functions.dir/DependInfo.cmake"
  "/root/repo/build/src/uif/CMakeFiles/nvm_uif.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nvm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kblock/CMakeFiles/nvm_kblock.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/nvm_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/virt/CMakeFiles/nvm_virt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/nvm_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ebpf/CMakeFiles/nvm_ebpf.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/nvm_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/nvm_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for fig6_ycsb_basic.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig6_ycsb_basic.dir/fig6_ycsb_basic.cc.o"
  "CMakeFiles/fig6_ycsb_basic.dir/fig6_ycsb_basic.cc.o.d"
  "fig6_ycsb_basic"
  "fig6_ycsb_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_ycsb_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

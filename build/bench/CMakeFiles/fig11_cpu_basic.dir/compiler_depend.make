# Empty compiler generated dependencies file for fig11_cpu_basic.
# This may be replaced when dependencies are built.

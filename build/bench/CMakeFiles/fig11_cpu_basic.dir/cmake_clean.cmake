file(REMOVE_RECURSE
  "CMakeFiles/fig11_cpu_basic.dir/fig11_cpu_basic.cc.o"
  "CMakeFiles/fig11_cpu_basic.dir/fig11_cpu_basic.cc.o.d"
  "fig11_cpu_basic"
  "fig11_cpu_basic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cpu_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

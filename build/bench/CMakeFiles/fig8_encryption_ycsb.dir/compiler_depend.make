# Empty compiler generated dependencies file for fig8_encryption_ycsb.
# This may be replaced when dependencies are built.

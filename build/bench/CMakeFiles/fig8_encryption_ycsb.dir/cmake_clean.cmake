file(REMOVE_RECURSE
  "CMakeFiles/fig8_encryption_ycsb.dir/fig8_encryption_ycsb.cc.o"
  "CMakeFiles/fig8_encryption_ycsb.dir/fig8_encryption_ycsb.cc.o.d"
  "fig8_encryption_ycsb"
  "fig8_encryption_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_encryption_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

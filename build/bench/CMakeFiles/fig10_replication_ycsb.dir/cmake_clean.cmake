file(REMOVE_RECURSE
  "CMakeFiles/fig10_replication_ycsb.dir/fig10_replication_ycsb.cc.o"
  "CMakeFiles/fig10_replication_ycsb.dir/fig10_replication_ycsb.cc.o.d"
  "fig10_replication_ycsb"
  "fig10_replication_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_replication_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_replication_ycsb.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig12_cpu_encryption.
# This may be replaced when dependencies are built.

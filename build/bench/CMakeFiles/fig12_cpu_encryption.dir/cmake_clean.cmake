file(REMOVE_RECURSE
  "CMakeFiles/fig12_cpu_encryption.dir/fig12_cpu_encryption.cc.o"
  "CMakeFiles/fig12_cpu_encryption.dir/fig12_cpu_encryption.cc.o.d"
  "fig12_cpu_encryption"
  "fig12_cpu_encryption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpu_encryption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

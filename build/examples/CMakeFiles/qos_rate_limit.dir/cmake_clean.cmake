file(REMOVE_RECURSE
  "CMakeFiles/qos_rate_limit.dir/qos_rate_limit.cpp.o"
  "CMakeFiles/qos_rate_limit.dir/qos_rate_limit.cpp.o.d"
  "qos_rate_limit"
  "qos_rate_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_rate_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for qos_rate_limit.
# This may be replaced when dependencies are built.

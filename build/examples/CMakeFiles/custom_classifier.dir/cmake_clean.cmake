file(REMOVE_RECURSE
  "CMakeFiles/custom_classifier.dir/custom_classifier.cpp.o"
  "CMakeFiles/custom_classifier.dir/custom_classifier.cpp.o.d"
  "custom_classifier"
  "custom_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for custom_classifier.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for encrypted_disk.
# This may be replaced when dependencies are built.

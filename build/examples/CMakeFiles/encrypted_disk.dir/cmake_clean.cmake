file(REMOVE_RECURSE
  "CMakeFiles/encrypted_disk.dir/encrypted_disk.cpp.o"
  "CMakeFiles/encrypted_disk.dir/encrypted_disk.cpp.o.d"
  "encrypted_disk"
  "encrypted_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/replicated_disk.dir/replicated_disk.cpp.o"
  "CMakeFiles/replicated_disk.dir/replicated_disk.cpp.o.d"
  "replicated_disk"
  "replicated_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replicated_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for replicated_disk.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_crypto.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/nvm_crypto.dir/aes.cc.o"
  "CMakeFiles/nvm_crypto.dir/aes.cc.o.d"
  "CMakeFiles/nvm_crypto.dir/aes_ni.cc.o"
  "CMakeFiles/nvm_crypto.dir/aes_ni.cc.o.d"
  "CMakeFiles/nvm_crypto.dir/xts.cc.o"
  "CMakeFiles/nvm_crypto.dir/xts.cc.o.d"
  "libnvm_crypto.a"
  "libnvm_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

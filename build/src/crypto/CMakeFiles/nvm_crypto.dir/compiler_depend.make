# Empty compiler generated dependencies file for nvm_crypto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nvm_virt.dir/guest_nvme.cc.o"
  "CMakeFiles/nvm_virt.dir/guest_nvme.cc.o.d"
  "CMakeFiles/nvm_virt.dir/vm.cc.o"
  "CMakeFiles/nvm_virt.dir/vm.cc.o.d"
  "libnvm_virt.a"
  "libnvm_virt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_virt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

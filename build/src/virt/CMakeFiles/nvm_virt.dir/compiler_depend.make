# Empty compiler generated dependencies file for nvm_virt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_virt.a"
)

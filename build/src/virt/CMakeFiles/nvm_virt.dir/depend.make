# Empty dependencies file for nvm_virt.
# This may be replaced when dependencies are built.

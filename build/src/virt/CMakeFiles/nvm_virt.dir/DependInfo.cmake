
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/virt/guest_nvme.cc" "src/virt/CMakeFiles/nvm_virt.dir/guest_nvme.cc.o" "gcc" "src/virt/CMakeFiles/nvm_virt.dir/guest_nvme.cc.o.d"
  "/root/repo/src/virt/vm.cc" "src/virt/CMakeFiles/nvm_virt.dir/vm.cc.o" "gcc" "src/virt/CMakeFiles/nvm_virt.dir/vm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/nvm_nvme.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for nvm_uif.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_uif.a"
)

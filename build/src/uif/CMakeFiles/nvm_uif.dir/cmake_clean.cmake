file(REMOVE_RECURSE
  "CMakeFiles/nvm_uif.dir/framework.cc.o"
  "CMakeFiles/nvm_uif.dir/framework.cc.o.d"
  "CMakeFiles/nvm_uif.dir/guest_data.cc.o"
  "CMakeFiles/nvm_uif.dir/guest_data.cc.o.d"
  "CMakeFiles/nvm_uif.dir/uring.cc.o"
  "CMakeFiles/nvm_uif.dir/uring.cc.o.d"
  "libnvm_uif.a"
  "libnvm_uif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_uif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

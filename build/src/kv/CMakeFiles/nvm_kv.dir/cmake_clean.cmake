file(REMOVE_RECURSE
  "CMakeFiles/nvm_kv.dir/minikv.cc.o"
  "CMakeFiles/nvm_kv.dir/minikv.cc.o.d"
  "CMakeFiles/nvm_kv.dir/sstable.cc.o"
  "CMakeFiles/nvm_kv.dir/sstable.cc.o.d"
  "libnvm_kv.a"
  "libnvm_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

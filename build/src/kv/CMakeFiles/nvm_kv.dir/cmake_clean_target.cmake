file(REMOVE_RECURSE
  "libnvm_kv.a"
)

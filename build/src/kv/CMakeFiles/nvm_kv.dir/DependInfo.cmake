
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/minikv.cc" "src/kv/CMakeFiles/nvm_kv.dir/minikv.cc.o" "gcc" "src/kv/CMakeFiles/nvm_kv.dir/minikv.cc.o.d"
  "/root/repo/src/kv/sstable.cc" "src/kv/CMakeFiles/nvm_kv.dir/sstable.cc.o" "gcc" "src/kv/CMakeFiles/nvm_kv.dir/sstable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fsx/CMakeFiles/nvm_fsx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

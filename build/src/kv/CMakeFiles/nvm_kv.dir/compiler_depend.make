# Empty compiler generated dependencies file for nvm_kv.
# This may be replaced when dependencies are built.

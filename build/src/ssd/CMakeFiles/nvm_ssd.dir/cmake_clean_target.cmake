file(REMOVE_RECURSE
  "libnvm_ssd.a"
)

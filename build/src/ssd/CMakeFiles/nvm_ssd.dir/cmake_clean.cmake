file(REMOVE_RECURSE
  "CMakeFiles/nvm_ssd.dir/backing_store.cc.o"
  "CMakeFiles/nvm_ssd.dir/backing_store.cc.o.d"
  "CMakeFiles/nvm_ssd.dir/controller.cc.o"
  "CMakeFiles/nvm_ssd.dir/controller.cc.o.d"
  "CMakeFiles/nvm_ssd.dir/latency_model.cc.o"
  "CMakeFiles/nvm_ssd.dir/latency_model.cc.o.d"
  "libnvm_ssd.a"
  "libnvm_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for nvm_ssd.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/poller.cc" "src/sim/CMakeFiles/nvm_sim.dir/poller.cc.o" "gcc" "src/sim/CMakeFiles/nvm_sim.dir/poller.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/nvm_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/nvm_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/vcpu.cc" "src/sim/CMakeFiles/nvm_sim.dir/vcpu.cc.o" "gcc" "src/sim/CMakeFiles/nvm_sim.dir/vcpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libnvm_sim.a"
)

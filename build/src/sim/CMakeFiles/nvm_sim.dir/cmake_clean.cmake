file(REMOVE_RECURSE
  "CMakeFiles/nvm_sim.dir/poller.cc.o"
  "CMakeFiles/nvm_sim.dir/poller.cc.o.d"
  "CMakeFiles/nvm_sim.dir/simulator.cc.o"
  "CMakeFiles/nvm_sim.dir/simulator.cc.o.d"
  "CMakeFiles/nvm_sim.dir/vcpu.cc.o"
  "CMakeFiles/nvm_sim.dir/vcpu.cc.o.d"
  "libnvm_sim.a"
  "libnvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

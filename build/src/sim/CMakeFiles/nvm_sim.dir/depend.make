# Empty dependencies file for nvm_sim.
# This may be replaced when dependencies are built.

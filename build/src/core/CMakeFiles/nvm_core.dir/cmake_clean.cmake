file(REMOVE_RECURSE
  "CMakeFiles/nvm_core.dir/classifier.cc.o"
  "CMakeFiles/nvm_core.dir/classifier.cc.o.d"
  "CMakeFiles/nvm_core.dir/notify.cc.o"
  "CMakeFiles/nvm_core.dir/notify.cc.o.d"
  "CMakeFiles/nvm_core.dir/router.cc.o"
  "CMakeFiles/nvm_core.dir/router.cc.o.d"
  "libnvm_core.a"
  "libnvm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

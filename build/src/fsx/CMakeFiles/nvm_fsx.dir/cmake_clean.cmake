file(REMOVE_RECURSE
  "CMakeFiles/nvm_fsx.dir/flatfs.cc.o"
  "CMakeFiles/nvm_fsx.dir/flatfs.cc.o.d"
  "libnvm_fsx.a"
  "libnvm_fsx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_fsx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

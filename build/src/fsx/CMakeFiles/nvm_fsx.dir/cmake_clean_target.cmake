file(REMOVE_RECURSE
  "libnvm_fsx.a"
)

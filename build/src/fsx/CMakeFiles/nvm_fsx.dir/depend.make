# Empty dependencies file for nvm_fsx.
# This may be replaced when dependencies are built.

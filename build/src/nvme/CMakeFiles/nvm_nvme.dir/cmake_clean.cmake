file(REMOVE_RECURSE
  "CMakeFiles/nvm_nvme.dir/defs.cc.o"
  "CMakeFiles/nvm_nvme.dir/defs.cc.o.d"
  "CMakeFiles/nvm_nvme.dir/prp.cc.o"
  "CMakeFiles/nvm_nvme.dir/prp.cc.o.d"
  "CMakeFiles/nvm_nvme.dir/queue.cc.o"
  "CMakeFiles/nvm_nvme.dir/queue.cc.o.d"
  "libnvm_nvme.a"
  "libnvm_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

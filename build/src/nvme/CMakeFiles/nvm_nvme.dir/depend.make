# Empty dependencies file for nvm_nvme.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvme/defs.cc" "src/nvme/CMakeFiles/nvm_nvme.dir/defs.cc.o" "gcc" "src/nvme/CMakeFiles/nvm_nvme.dir/defs.cc.o.d"
  "/root/repo/src/nvme/prp.cc" "src/nvme/CMakeFiles/nvm_nvme.dir/prp.cc.o" "gcc" "src/nvme/CMakeFiles/nvm_nvme.dir/prp.cc.o.d"
  "/root/repo/src/nvme/queue.cc" "src/nvme/CMakeFiles/nvm_nvme.dir/queue.cc.o" "gcc" "src/nvme/CMakeFiles/nvm_nvme.dir/queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libnvm_nvme.a"
)

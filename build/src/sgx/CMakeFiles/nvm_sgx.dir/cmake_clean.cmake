file(REMOVE_RECURSE
  "CMakeFiles/nvm_sgx.dir/enclave.cc.o"
  "CMakeFiles/nvm_sgx.dir/enclave.cc.o.d"
  "libnvm_sgx.a"
  "libnvm_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nvm_sgx.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_sgx.a"
)

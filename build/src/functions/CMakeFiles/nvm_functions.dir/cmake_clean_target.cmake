file(REMOVE_RECURSE
  "libnvm_functions.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/nvm_functions.dir/classifiers.cc.o"
  "CMakeFiles/nvm_functions.dir/classifiers.cc.o.d"
  "CMakeFiles/nvm_functions.dir/encryptor_uif.cc.o"
  "CMakeFiles/nvm_functions.dir/encryptor_uif.cc.o.d"
  "CMakeFiles/nvm_functions.dir/replicator_uif.cc.o"
  "CMakeFiles/nvm_functions.dir/replicator_uif.cc.o.d"
  "libnvm_functions.a"
  "libnvm_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nvm_functions.
# This may be replaced when dependencies are built.

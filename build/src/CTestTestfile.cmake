# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("mem")
subdirs("nvme")
subdirs("ssd")
subdirs("ebpf")
subdirs("crypto")
subdirs("sgx")
subdirs("kblock")
subdirs("virt")
subdirs("core")
subdirs("uif")
subdirs("functions")
subdirs("baselines")
subdirs("fsx")
subdirs("kv")
subdirs("workload")

# Empty compiler generated dependencies file for nvm_kblock.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_kblock.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/nvm_kblock.dir/devices.cc.o"
  "CMakeFiles/nvm_kblock.dir/devices.cc.o.d"
  "CMakeFiles/nvm_kblock.dir/dm.cc.o"
  "CMakeFiles/nvm_kblock.dir/dm.cc.o.d"
  "CMakeFiles/nvm_kblock.dir/scsi.cc.o"
  "CMakeFiles/nvm_kblock.dir/scsi.cc.o.d"
  "CMakeFiles/nvm_kblock.dir/vhost_scsi.cc.o"
  "CMakeFiles/nvm_kblock.dir/vhost_scsi.cc.o.d"
  "libnvm_kblock.a"
  "libnvm_kblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_kblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kblock/devices.cc" "src/kblock/CMakeFiles/nvm_kblock.dir/devices.cc.o" "gcc" "src/kblock/CMakeFiles/nvm_kblock.dir/devices.cc.o.d"
  "/root/repo/src/kblock/dm.cc" "src/kblock/CMakeFiles/nvm_kblock.dir/dm.cc.o" "gcc" "src/kblock/CMakeFiles/nvm_kblock.dir/dm.cc.o.d"
  "/root/repo/src/kblock/scsi.cc" "src/kblock/CMakeFiles/nvm_kblock.dir/scsi.cc.o" "gcc" "src/kblock/CMakeFiles/nvm_kblock.dir/scsi.cc.o.d"
  "/root/repo/src/kblock/vhost_scsi.cc" "src/kblock/CMakeFiles/nvm_kblock.dir/vhost_scsi.cc.o" "gcc" "src/kblock/CMakeFiles/nvm_kblock.dir/vhost_scsi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/nvme/CMakeFiles/nvm_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/nvm_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/nvm_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

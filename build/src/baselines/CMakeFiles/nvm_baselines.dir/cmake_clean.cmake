file(REMOVE_RECURSE
  "CMakeFiles/nvm_baselines.dir/factory.cc.o"
  "CMakeFiles/nvm_baselines.dir/factory.cc.o.d"
  "CMakeFiles/nvm_baselines.dir/solutions.cc.o"
  "CMakeFiles/nvm_baselines.dir/solutions.cc.o.d"
  "libnvm_baselines.a"
  "libnvm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libnvm_baselines.a"
)

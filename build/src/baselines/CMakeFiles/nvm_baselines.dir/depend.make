# Empty dependencies file for nvm_baselines.
# This may be replaced when dependencies are built.

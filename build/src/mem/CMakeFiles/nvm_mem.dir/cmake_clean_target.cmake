file(REMOVE_RECURSE
  "libnvm_mem.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/nvm_mem.dir/address_space.cc.o"
  "CMakeFiles/nvm_mem.dir/address_space.cc.o.d"
  "CMakeFiles/nvm_mem.dir/guest_memory.cc.o"
  "CMakeFiles/nvm_mem.dir/guest_memory.cc.o.d"
  "libnvm_mem.a"
  "libnvm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

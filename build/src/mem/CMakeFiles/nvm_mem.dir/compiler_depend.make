# Empty compiler generated dependencies file for nvm_mem.
# This may be replaced when dependencies are built.

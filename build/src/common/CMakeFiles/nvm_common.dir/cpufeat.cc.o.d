src/common/CMakeFiles/nvm_common.dir/cpufeat.cc.o: \
 /root/repo/src/common/cpufeat.cc /usr/include/stdc-predef.h \
 /root/repo/src/common/cpufeat.h \
 /usr/lib/gcc/x86_64-linux-gnu/12/include/cpuid.h

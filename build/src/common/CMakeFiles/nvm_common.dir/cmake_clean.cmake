file(REMOVE_RECURSE
  "CMakeFiles/nvm_common.dir/cpufeat.cc.o"
  "CMakeFiles/nvm_common.dir/cpufeat.cc.o.d"
  "CMakeFiles/nvm_common.dir/flags.cc.o"
  "CMakeFiles/nvm_common.dir/flags.cc.o.d"
  "CMakeFiles/nvm_common.dir/histogram.cc.o"
  "CMakeFiles/nvm_common.dir/histogram.cc.o.d"
  "CMakeFiles/nvm_common.dir/rng.cc.o"
  "CMakeFiles/nvm_common.dir/rng.cc.o.d"
  "CMakeFiles/nvm_common.dir/status.cc.o"
  "CMakeFiles/nvm_common.dir/status.cc.o.d"
  "CMakeFiles/nvm_common.dir/strutil.cc.o"
  "CMakeFiles/nvm_common.dir/strutil.cc.o.d"
  "CMakeFiles/nvm_common.dir/table.cc.o"
  "CMakeFiles/nvm_common.dir/table.cc.o.d"
  "libnvm_common.a"
  "libnvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

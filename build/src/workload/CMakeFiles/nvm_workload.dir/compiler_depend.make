# Empty compiler generated dependencies file for nvm_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libnvm_workload.a"
)

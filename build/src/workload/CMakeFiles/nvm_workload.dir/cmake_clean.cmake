file(REMOVE_RECURSE
  "CMakeFiles/nvm_workload.dir/fio.cc.o"
  "CMakeFiles/nvm_workload.dir/fio.cc.o.d"
  "CMakeFiles/nvm_workload.dir/solution_fs.cc.o"
  "CMakeFiles/nvm_workload.dir/solution_fs.cc.o.d"
  "CMakeFiles/nvm_workload.dir/ycsb.cc.o"
  "CMakeFiles/nvm_workload.dir/ycsb.cc.o.d"
  "libnvm_workload.a"
  "libnvm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ebpf/assembler.cc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/assembler.cc.o" "gcc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/assembler.cc.o.d"
  "/root/repo/src/ebpf/disasm.cc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/disasm.cc.o" "gcc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/disasm.cc.o.d"
  "/root/repo/src/ebpf/helpers.cc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/helpers.cc.o" "gcc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/helpers.cc.o.d"
  "/root/repo/src/ebpf/interpreter.cc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/interpreter.cc.o" "gcc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/interpreter.cc.o.d"
  "/root/repo/src/ebpf/map.cc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/map.cc.o" "gcc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/map.cc.o.d"
  "/root/repo/src/ebpf/verifier.cc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/verifier.cc.o" "gcc" "src/ebpf/CMakeFiles/nvm_ebpf.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libnvm_ebpf.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/nvm_ebpf.dir/assembler.cc.o"
  "CMakeFiles/nvm_ebpf.dir/assembler.cc.o.d"
  "CMakeFiles/nvm_ebpf.dir/disasm.cc.o"
  "CMakeFiles/nvm_ebpf.dir/disasm.cc.o.d"
  "CMakeFiles/nvm_ebpf.dir/helpers.cc.o"
  "CMakeFiles/nvm_ebpf.dir/helpers.cc.o.d"
  "CMakeFiles/nvm_ebpf.dir/interpreter.cc.o"
  "CMakeFiles/nvm_ebpf.dir/interpreter.cc.o.d"
  "CMakeFiles/nvm_ebpf.dir/map.cc.o"
  "CMakeFiles/nvm_ebpf.dir/map.cc.o.d"
  "CMakeFiles/nvm_ebpf.dir/verifier.cc.o"
  "CMakeFiles/nvm_ebpf.dir/verifier.cc.o.d"
  "libnvm_ebpf.a"
  "libnvm_ebpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_ebpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for nvm_ebpf.
# This may be replaced when dependencies are built.

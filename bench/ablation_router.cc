// Ablation bench (DESIGN.md §6): isolates the cost of NVMetro's design
// choices on the basic 512B random-read workload:
//   - classifier on (NVMetro) vs fixed translation (MDev mode): the price
//     of eBPF-based flexibility;
//   - adaptive router workers vs always-spinning workers: CPU saved by
//     idle parking at low load;
//   - shared router worker vs one worker per VM at 4 VMs.
#include <cstdio>

#include "bench_common.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"

namespace nvmetro::bench {
namespace {

FioResult RunWith(core::RouterCosts costs, u32 num_vms, u32 workers,
                  const CellSpec& cell, const BenchOptions& opts,
                  double rate_iops = 0) {
  Testbed tb;
  SolutionParams params;
  params.seed = opts.seed;
  params.num_vms = num_vms;
  params.router_workers = workers;
  params.router_costs = costs;
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
  if (!bundle) return FioResult{};
  FioConfig cfg;
  cfg.block_size = cell.bs;
  cfg.queue_depth = cell.qd;
  cfg.num_jobs = cell.jobs;
  cfg.mode = cell.mode;
  cfg.warmup = opts.warmup;
  cfg.duration = opts.duration;
  cfg.seed = opts.seed;
  cfg.rate_iops = rate_iops;
  std::vector<baselines::StorageSolution*> sols;
  for (u32 i = 0; i < bundle->num_vms(); i++) {
    sols.push_back(bundle->vm_solution(i));
  }
  auto results = workload::Fio::RunMulti(&tb.sim, sols, cfg);
  FioResult agg = results[0];
  for (usize i = 1; i < results.size(); i++) {
    agg.iops += results[i].iops;
    agg.guest_cpu_pct += results[i].guest_cpu_pct;
  }
  return agg;
}

// A drive fast enough that the shared router worker, not the SSD, is
// the bottleneck: both serial drive stages (firmware pipeline and
// per-command bus setup) are dropped well below the router's
// per-request cost, and jitter/slow-ops are disabled so the sweep is
// a clean A/B on the batching knob alone.
ssd::ControllerConfig RouterBoundDrive() {
  ssd::ControllerConfig cfg = Testbed::DefaultDrive();
  cfg.latency.cmd_overhead_ns = 200;
  cfg.latency.bus_setup_ns = 100;
  cfg.latency.read_media_ns = 4000;
  cfg.latency.write_media_ns = 3000;
  cfg.latency.slow_op_rate = 0;
  cfg.latency.jitter = 0;
  return cfg;
}

FioResult RunBatchCell(u32 max_batch, const CellSpec& cell,
                       const BenchOptions& opts) {
  Testbed tb(RouterBoundDrive());
  SolutionParams params;
  params.seed = opts.seed;
  params.num_vms = 4;
  params.router_workers = 1;  // shared worker: the contended resource
  params.router_costs.max_batch = max_batch;
  params.uif_max_batch = max_batch;
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
  if (!bundle) return FioResult{};
  FioConfig cfg;
  cfg.block_size = cell.bs;
  cfg.queue_depth = cell.qd;
  cfg.num_jobs = cell.jobs;
  cfg.mode = cell.mode;
  cfg.warmup = opts.warmup;
  cfg.duration = opts.duration;
  cfg.seed = opts.seed;
  std::vector<baselines::StorageSolution*> sols;
  for (u32 i = 0; i < bundle->num_vms(); i++) {
    sols.push_back(bundle->vm_solution(i));
  }
  auto results = workload::Fio::RunMulti(&tb.sim, sols, cfg);
  FioResult agg = results[0];
  for (usize i = 1; i < results.size(); i++) {
    agg.iops += results[i].iops;
    agg.guest_cpu_pct += results[i].guest_cpu_pct;
  }
  return agg;
}

/// `--batch-sweep`: batching ablation (DESIGN.md §10). 512B random
/// read, 4 VMs sharing one router worker on a router-bound drive;
/// sweeps max_batch x queue depth and writes machine-readable JSON
/// (default BENCH_batching.json) for the CI bench-smoke job.
int RunBatchSweep(const BenchOptions& opts, const std::string& json_path) {
  PrintHeader("Ablation: batched submission/completion pipeline",
              "512B random read, 4 VMs, 1 shared router worker, "
              "router-bound drive");
  const u32 kBatches[] = {1, 4, 16, 32};
  const u32 kDepths[] = {1, 32};
  TablePrinter t({"qd", "max_batch", "KIOPS", "vs batch=1"});
  std::string json = "{\"bench\":\"batch_sweep\",\"bs\":512,"
                     "\"mode\":\"randread\",\"num_vms\":4,"
                     "\"router_workers\":1,\"cells\":[";
  bool first = true;
  bool qd32_ok = true;
  for (u32 qd : kDepths) {
    CellSpec cell{512, qd, 1, FioMode::kRandRead};
    double base_iops = 0;
    for (u32 mb : kBatches) {
      FioResult r = RunBatchCell(mb, cell, opts);
      if (mb == 1) base_iops = r.iops;
      double gain = base_iops > 0 ? (r.iops / base_iops - 1.0) * 100.0 : 0;
      t.AddRow({StrFormat("%u", qd), StrFormat("%u", mb),
                StrFormat("%.1f", r.iops / 1000.0),
                mb == 1 ? std::string("-") : StrFormat("%+.1f%%", gain)});
      if (!first) json += ",";
      first = false;
      json += StrFormat(
          "{\"qd\":%u,\"max_batch\":%u,\"iops\":%.1f,"
          "\"gain_vs_unbatched_pct\":%.2f}",
          qd, mb, r.iops, gain);
      if (qd == 32 && mb == 32 && gain < 15.0) qd32_ok = false;
    }
  }
  json += StrFormat("],\"qd32_gain_ge_15pct\":%s}",
                    qd32_ok ? "true" : "false");
  t.Print();
  std::printf("qd32 max_batch=32 gain >= 15%%: %s\n",
              qd32_ok ? "yes" : "NO");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return qd32_ok ? 0 : 2;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  flags.DefineBool("batch-sweep", false,
                   "run the batching ablation sweep instead of the "
                   "standard ablation table");
  flags.DefineString("batch-json", "BENCH_batching.json",
                     "output path for the batch-sweep JSON (empty: none)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchOptions opts = OptionsFromFlags(flags);

  if (flags.GetBool("batch-sweep")) {
    return RunBatchSweep(opts, flags.GetString("batch-json"));
  }

  PrintHeader("Ablation: router design choices",
              "512B random read; IOPS and host CPU%% per variant");
  TablePrinter t({"variant", "KIOPS", "host CPU %"});

  // (1) Classifier vs fixed translation at QD128.
  {
    CellSpec cell{512, 128, 1, FioMode::kRandRead};
    FioResult nvmetro = RunCell(SolutionKind::kNvmetro, cell, opts);
    FioResult mdev = RunCell(SolutionKind::kMdev, cell, opts);
    t.AddRow({"eBPF classifier (NVMetro), qd128",
              StrFormat("%.1f", nvmetro.iops / 1000.0),
              StrFormat("%.0f", nvmetro.host_cpu_pct)});
    t.AddRow({"fixed translation (MDev), qd128",
              StrFormat("%.1f", mdev.iops / 1000.0),
              StrFormat("%.0f", mdev.host_cpu_pct)});
  }

  // (2) Adaptive vs always-spinning worker at a low 5K IOPS rate.
  {
    CellSpec cell{512, 4, 1, FioMode::kRandRead};
    core::RouterCosts adaptive;  // defaults: adaptive on
    core::RouterCosts spinning;
    spinning.adaptive_worker = false;
    FioResult a = RunWith(adaptive, 1, 1, cell, opts, 5'000);
    FioResult s = RunWith(spinning, 1, 1, cell, opts, 5'000);
    t.AddRow({"adaptive worker @5K IOPS",
              StrFormat("%.1f", a.iops / 1000.0),
              StrFormat("%.0f", a.host_cpu_pct)});
    t.AddRow({"spinning worker @5K IOPS",
              StrFormat("%.1f", s.iops / 1000.0),
              StrFormat("%.0f", s.host_cpu_pct)});
  }

  // (2b) Classifier complexity sweep: the same passthrough policy padded
  // with extra (verified) eBPF work — flexibility must stay ~free even
  // for much larger programs, because the per-request classifier cost is
  // nanoseconds against a multi-microsecond device.
  for (u32 pad : {0u, 64u, 256u}) {
    CellSpec cell{512, 128, 1, FioMode::kRandRead};
    Testbed tb;
    SolutionParams params;
    params.seed = opts.seed;
    auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
    if (!bundle) continue;
    std::string text;
    for (u32 i = 0; i < pad; i++) text += "  mov r3, 7\n";
    text += functions::PassthroughClassifierAsm();
    auto prog = ebpf::Assemble(text, {});
    if (!prog.ok()) continue;
    core::VirtualController* vc = bundle->nvmetro_host()->controller(0);
    if (!vc->InstallClassifier(std::move(*prog)).ok()) continue;
    FioConfig cfg;
    cfg.block_size = cell.bs;
    cfg.queue_depth = cell.qd;
    cfg.num_jobs = cell.jobs;
    cfg.mode = cell.mode;
    cfg.warmup = opts.warmup;
    cfg.duration = opts.duration;
    cfg.seed = opts.seed;
    auto res = workload::Fio::Run(&tb.sim, bundle->vm_solution(0), cfg);
    t.AddRow({StrFormat("classifier +%u padding insns, qd128", pad),
              StrFormat("%.1f", res.iops / 1000.0),
              StrFormat("%.0f", res.host_cpu_pct)});
  }

  // (3) Shared vs per-VM workers, 4 VMs at QD32.
  {
    CellSpec cell{512, 32, 1, FioMode::kRandRead};
    core::RouterCosts costs;
    FioResult shared = RunWith(costs, 4, 1, cell, opts);
    FioResult per_vm = RunWith(costs, 4, 4, cell, opts);
    t.AddRow({"4 VMs, 1 shared worker",
              StrFormat("%.1f", shared.iops / 1000.0),
              StrFormat("%.0f", shared.host_cpu_pct)});
    t.AddRow({"4 VMs, 4 workers",
              StrFormat("%.1f", per_vm.iops / 1000.0),
              StrFormat("%.0f", per_vm.host_cpu_pct)});
  }

  t.Print();
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

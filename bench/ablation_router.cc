// Ablation bench (DESIGN.md §6): isolates the cost of NVMetro's design
// choices on the basic 512B random-read workload:
//   - classifier on (NVMetro) vs fixed translation (MDev mode): the price
//     of eBPF-based flexibility;
//   - adaptive router workers vs always-spinning workers: CPU saved by
//     idle parking at low load;
//   - shared router worker vs one worker per VM at 4 VMs.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>

#include "bench_common.h"
#include "ebpf/assembler.h"
#include "fault/fault.h"
#include "functions/classifiers.h"
#include "mem/arena.h"
#include "obs/flight.h"
#include "obs/span.h"
#include "virt/guest_nvme.h"

namespace nvmetro::bench {
namespace {

FioResult RunWith(core::RouterCosts costs, u32 num_vms, u32 workers,
                  const CellSpec& cell, const BenchOptions& opts,
                  double rate_iops = 0) {
  Testbed tb;
  SolutionParams params;
  params.seed = opts.seed;
  params.num_vms = num_vms;
  params.router_workers = workers;
  params.router_costs = costs;
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
  if (!bundle) return FioResult{};
  FioConfig cfg;
  cfg.block_size = cell.bs;
  cfg.queue_depth = cell.qd;
  cfg.num_jobs = cell.jobs;
  cfg.mode = cell.mode;
  cfg.warmup = opts.warmup;
  cfg.duration = opts.duration;
  cfg.seed = opts.seed;
  cfg.rate_iops = rate_iops;
  std::vector<baselines::StorageSolution*> sols;
  for (u32 i = 0; i < bundle->num_vms(); i++) {
    sols.push_back(bundle->vm_solution(i));
  }
  auto results = workload::Fio::RunMulti(&tb.sim, sols, cfg);
  FioResult agg = results[0];
  for (usize i = 1; i < results.size(); i++) {
    agg.iops += results[i].iops;
    agg.guest_cpu_pct += results[i].guest_cpu_pct;
  }
  return agg;
}

// A drive fast enough that the shared router worker, not the SSD, is
// the bottleneck: both serial drive stages (firmware pipeline and
// per-command bus setup) are dropped well below the router's
// per-request cost, and jitter/slow-ops are disabled so the sweep is
// a clean A/B on the batching knob alone.
ssd::ControllerConfig RouterBoundDrive() {
  ssd::ControllerConfig cfg = Testbed::DefaultDrive();
  cfg.latency.cmd_overhead_ns = 200;
  cfg.latency.bus_setup_ns = 100;
  cfg.latency.read_media_ns = 4000;
  cfg.latency.write_media_ns = 3000;
  cfg.latency.slow_op_rate = 0;
  cfg.latency.jitter = 0;
  return cfg;
}

FioResult RunBatchCell(u32 max_batch, const CellSpec& cell,
                       const BenchOptions& opts) {
  Testbed tb(RouterBoundDrive());
  SolutionParams params;
  params.seed = opts.seed;
  params.num_vms = 4;
  params.router_workers = 1;  // shared worker: the contended resource
  params.router_costs.max_batch = max_batch;
  params.uif_max_batch = max_batch;
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
  if (!bundle) return FioResult{};
  FioConfig cfg;
  cfg.block_size = cell.bs;
  cfg.queue_depth = cell.qd;
  cfg.num_jobs = cell.jobs;
  cfg.mode = cell.mode;
  cfg.warmup = opts.warmup;
  cfg.duration = opts.duration;
  cfg.seed = opts.seed;
  std::vector<baselines::StorageSolution*> sols;
  for (u32 i = 0; i < bundle->num_vms(); i++) {
    sols.push_back(bundle->vm_solution(i));
  }
  auto results = workload::Fio::RunMulti(&tb.sim, sols, cfg);
  FioResult agg = results[0];
  for (usize i = 1; i < results.size(); i++) {
    agg.iops += results[i].iops;
    agg.guest_cpu_pct += results[i].guest_cpu_pct;
  }
  return agg;
}

/// `--batch-sweep`: batching ablation (DESIGN.md §10). 512B random
/// read, 4 VMs sharing one router worker on a router-bound drive;
/// sweeps max_batch x queue depth and writes machine-readable JSON
/// (default BENCH_batching.json) for the CI bench-smoke job.
int RunBatchSweep(const BenchOptions& opts, const std::string& json_path) {
  PrintHeader("Ablation: batched submission/completion pipeline",
              "512B random read, 4 VMs, 1 shared router worker, "
              "router-bound drive");
  const u32 kBatches[] = {1, 4, 16, 32};
  const u32 kDepths[] = {1, 32};
  TablePrinter t({"qd", "max_batch", "KIOPS", "vs batch=1"});
  std::string json = "{\"bench\":\"batch_sweep\",\"bs\":512,"
                     "\"mode\":\"randread\",\"num_vms\":4,"
                     "\"router_workers\":1,\"cells\":[";
  bool first = true;
  bool qd32_ok = true;
  for (u32 qd : kDepths) {
    CellSpec cell{512, qd, 1, FioMode::kRandRead};
    double base_iops = 0;
    for (u32 mb : kBatches) {
      FioResult r = RunBatchCell(mb, cell, opts);
      if (mb == 1) base_iops = r.iops;
      double gain = base_iops > 0 ? (r.iops / base_iops - 1.0) * 100.0 : 0;
      t.AddRow({StrFormat("%u", qd), StrFormat("%u", mb),
                StrFormat("%.1f", r.iops / 1000.0),
                mb == 1 ? std::string("-") : StrFormat("%+.1f%%", gain)});
      if (!first) json += ",";
      first = false;
      json += StrFormat(
          "{\"qd\":%u,\"max_batch\":%u,\"iops\":%.1f,"
          "\"gain_vs_unbatched_pct\":%.2f}",
          qd, mb, r.iops, gain);
      if (qd == 32 && mb == 32 && gain < 15.0) qd32_ok = false;
    }
  }
  json += StrFormat("],\"qd32_gain_ge_15pct\":%s}",
                    qd32_ok ? "true" : "false");
  t.Print();
  std::printf("qd32 max_batch=32 gain >= 15%%: %s\n",
              qd32_ok ? "yes" : "NO");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return qd32_ok ? 0 : 2;
}

// --- Shard sweep (DESIGN.md §14) ---------------------------------------------

u64 WallNowNs() {
  return static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ShardCell {
  SimTime sim_end = 0;
  double wall_ns_per_io = 0;
  u64 steady_allocs = 0;
  int completed = 0;
};

/// One closed-loop passthrough run with `queues` guest queues (=shards)
/// and either the flat GenTable cid path or the legacy per-shard
/// std::map ablation baseline. Simulated time is data-structure blind,
/// so the flat-vs-legacy delta shows up only in host wall clock — which
/// is what this cell measures, around the steady phase only (pools grow
/// during warmup).
ShardCell RunShardCell(u32 queues, bool legacy, int warmup_ios,
                       int steady_ios) {
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg = Testbed::DefaultDrive();
  cfg.capacity = 64 * MiB;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  virt::Vm vm(&sim, virt::VmConfig{.memory_bytes = 32 * MiB});
  core::NvmetroHost::Config hcfg;
  hcfg.costs.legacy_cid_map = legacy;
  core::NvmetroHost host(&sim, &phys, hcfg);
  core::VirtualController* vc = host.CreateController(&vm, {.vm_id = 1});
  auto prog = functions::PassthroughClassifier();
  if (!prog.ok() || !vc->InstallClassifier(std::move(*prog)).ok()) {
    return ShardCell{};
  }
  host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  if (!driver.Init(static_cast<u16>(queues)).ok()) return ShardCell{};

  ShardCell r;
  u64 buf = *vm.memory().AllocPages(1);
  int issued = 0, target = 0;
  std::function<void(u16)> issue = [&](u16 q) {
    if (issued >= target) return;
    issued++;
    nvme::Sqe sqe = (issued % 2) ? nvme::MakeWrite(1, issued % 64, 1, buf, 0)
                                 : nvme::MakeRead(1, issued % 64, 1, buf, 0);
    driver.Submit(q, sqe, [&, q](nvme::NvmeStatus, u32) {
      r.completed++;
      issue(q);
    });
  };
  // Warmup: pools reach their working set.
  target = warmup_ios;
  for (u16 q = 0; q < queues; q++) {
    for (int d = 0; d < 8; d++) issue(q);
  }
  sim.Run();
  // Steady phase, wall-clock timed, zero pool growth allowed.
  mem::HotPathAllocs::BeginSteadyState();
  target = warmup_ios + steady_ios;
  u64 t0 = WallNowNs();
  for (u16 q = 0; q < queues; q++) {
    for (int d = 0; d < 8; d++) issue(q);
  }
  sim.Run();
  u64 wall = WallNowNs() - t0;
  mem::HotPathAllocs::EndSteadyState();
  r.steady_allocs = mem::HotPathAllocs::steady_state_allocs();
  r.sim_end = sim.now();
  r.wall_ns_per_io =
      steady_ios > 0 ? static_cast<double>(wall) / steady_ios : 0;
  return r;
}

struct CidMicro {
  double map_ns_per_op = 0;
  double flat_ns_per_op = 0;
  double speedup = 0;
};

/// Isolates the cid-table swap: alloc/lookup-free cycles at depth 16,
/// GenTable (flat array + generation check) vs the pre-shard design
/// (std::map<u16,u32> plus a wrapping next-cid probe). One op = one
/// alloc or one take.
CidMicro RunCidMicroBench() {
  constexpr int kIters = 100'000;
  constexpr int kDepth = 16;
  volatile u32 sink = 0;

  mem::GenTable table;
  u16 h[kDepth];
  u64 t0 = WallNowNs();
  for (int it = 0; it < kIters; it++) {
    for (int d = 0; d < kDepth; d++) {
      table.Alloc(static_cast<u32>(d), &h[d]);
    }
    for (int d = 0; d < kDepth; d++) sink = sink + table.Take(h[d]);
  }
  u64 flat_ns = WallNowNs() - t0;

  std::map<u16, u32> legacy;
  u16 next_cid = 0;
  u16 hh[kDepth];
  t0 = WallNowNs();
  for (int it = 0; it < kIters; it++) {
    for (int d = 0; d < kDepth; d++) {
      u16 c;
      do {
        c = next_cid++;
      } while (legacy.count(c));
      legacy.emplace(c, static_cast<u32>(d));
      hh[d] = c;
    }
    for (int d = 0; d < kDepth; d++) {
      auto it2 = legacy.find(hh[d]);
      sink = sink + it2->second;
      legacy.erase(it2);
    }
  }
  u64 map_ns = WallNowNs() - t0;

  CidMicro m;
  const double ops = 2.0 * kIters * kDepth;
  m.flat_ns_per_op = static_cast<double>(flat_ns) / ops;
  m.map_ns_per_op = static_cast<double>(map_ns) / ops;
  m.speedup = m.flat_ns_per_op > 0 ? m.map_ns_per_op / m.flat_ns_per_op : 0;
  return m;
}

/// `--shard-sweep`: per-queue shard ablation (DESIGN.md §14). Sweeps
/// shard count x cid-table implementation on the closed-loop passthrough
/// stack and gates on three properties: simulated time is bit-identical
/// flat-vs-legacy at every shard count, the flat hot path makes zero
/// pool allocations in steady state, and the flat cid table beats the
/// legacy map on host wall clock in the isolated micro-benchmark (whole-
/// stack wall ns/IO is reported but not gated — it is dominated by the
/// simulator engine and too noisy for CI). Writes BENCH_shard.json.
int RunShardSweep(const std::string& json_path) {
  PrintHeader("Ablation: per-queue shards & hot-path memory pools",
              "closed-loop 512B passthrough, shard count x cid table");
  const u32 kShards[] = {1, 2, 4};
  const int kWarmup = 2'000, kSteady = 10'000;

  TablePrinter t({"shards", "cid table", "sim end (ms)", "wall ns/IO",
                  "steady allocs"});
  std::string json = "{\"bench\":\"shard_sweep\",\"bs\":512,"
                     "\"mode\":\"rw_mix\",\"warmup_ios\":2000,"
                     "\"steady_ios\":10000,\"cells\":[";
  bool first = true;
  bool sim_identical = true;
  bool zero_alloc = true;
  for (u32 q : kShards) {
    ShardCell legacy = RunShardCell(q, /*legacy=*/true, kWarmup, kSteady);
    ShardCell flat = RunShardCell(q, /*legacy=*/false, kWarmup, kSteady);
    if (flat.sim_end != legacy.sim_end) sim_identical = false;
    if (flat.steady_allocs != 0) zero_alloc = false;
    for (bool is_legacy : {true, false}) {
      const ShardCell& c = is_legacy ? legacy : flat;
      t.AddRow({StrFormat("%u", q), is_legacy ? "legacy map" : "flat gen",
                StrFormat("%.2f", static_cast<double>(c.sim_end) / kMs),
                StrFormat("%.0f", c.wall_ns_per_io),
                StrFormat("%llu",
                          static_cast<unsigned long long>(c.steady_allocs))});
      if (!first) json += ",";
      first = false;
      json += StrFormat(
          "{\"shards\":%u,\"cid\":\"%s\",\"sim_end_ns\":%llu,"
          "\"wall_ns_per_io\":%.1f,\"steady_allocs\":%llu,"
          "\"completed\":%d}",
          q, is_legacy ? "legacy_map" : "flat_gen",
          static_cast<unsigned long long>(c.sim_end), c.wall_ns_per_io,
          static_cast<unsigned long long>(c.steady_allocs), c.completed);
    }
  }
  t.Print();

  CidMicro micro = RunCidMicroBench();
  bool micro_ok = micro.speedup >= 1.2;
  std::printf(
      "cid micro-bench (alloc/take, depth 16): flat %.1f ns/op, "
      "legacy map %.1f ns/op, speedup %.1fx\n",
      micro.flat_ns_per_op, micro.map_ns_per_op, micro.speedup);
  std::printf("sim time flat == legacy at every shard count: %s\n",
              sim_identical ? "yes" : "NO");
  std::printf("flat steady-state pool allocations == 0: %s\n",
              zero_alloc ? "yes" : "NO");
  std::printf("flat cid table >= 1.2x legacy map: %s\n",
              micro_ok ? "yes" : "NO");

  json += StrFormat(
      "],\"cid_micro\":{\"flat_ns_per_op\":%.2f,\"map_ns_per_op\":%.2f,"
      "\"speedup\":%.2f},\"gates\":{\"sim_identical\":%s,"
      "\"zero_alloc\":%s,\"cid_speedup_ge_1_2\":%s}}",
      micro.flat_ns_per_op, micro.map_ns_per_op, micro.speedup,
      sim_identical ? "true" : "false", zero_alloc ? "true" : "false",
      micro_ok ? "true" : "false");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (sim_identical && zero_alloc && micro_ok) ? 0 : 2;
}

// --- Flight-recorder sweep (DESIGN.md §16) -----------------------------------

struct FlightCell {
  SimTime sim_end = 0;
  double wall_ns_per_io = 0;  // min over reps (noise floor)
  u64 steady_allocs = 0;
  int completed = 0;
};

/// One closed-loop passthrough run with full observability (trace +
/// metrics) attached and the flight recorder toggled by `flight_on` —
/// the only difference between the A and B cells. Simulated time must be
/// bit-identical (recording charges no simulated CPU); the recorder's
/// real cost is host wall clock on the steady phase, reported per IO.
FlightCell RunFlightOverheadCell(bool flight_on, int reps, int warmup_ios,
                                 int steady_ios) {
  FlightCell best;
  for (int rep = 0; rep < reps; rep++) {
    obs::ObservabilityConfig ocfg;
    ocfg.flight = flight_on;
    obs::Observability obs(ocfg);
    sim::Simulator sim;
    mem::IommuSpace dma{nullptr, 1ull << 40};
    ssd::ControllerConfig cfg = Testbed::DefaultDrive();
    cfg.capacity = 64 * MiB;
    cfg.obs = &obs;
    ssd::SimulatedController phys(&sim, &dma, cfg);
    virt::Vm vm(&sim, virt::VmConfig{.memory_bytes = 32 * MiB});
    core::NvmetroHost::Config hcfg;
    hcfg.obs = &obs;
    core::NvmetroHost host(&sim, &phys, hcfg);
    core::VirtualController* vc = host.CreateController(&vm, {.vm_id = 1});
    auto prog = functions::PassthroughClassifier();
    if (!prog.ok() || !vc->InstallClassifier(std::move(*prog)).ok()) {
      return FlightCell{};
    }
    host.Start();
    virt::GuestNvmeDriver driver(&vm, vc);
    const u32 queues = 2;
    if (!driver.Init(queues).ok()) return FlightCell{};

    FlightCell r;
    u64 buf = *vm.memory().AllocPages(1);
    int issued = 0, target = 0;
    std::function<void(u16)> issue = [&](u16 q) {
      if (issued >= target) return;
      issued++;
      nvme::Sqe sqe = (issued % 2)
                          ? nvme::MakeWrite(1, issued % 64, 1, buf, 0)
                          : nvme::MakeRead(1, issued % 64, 1, buf, 0);
      driver.Submit(q, sqe, [&, q](nvme::NvmeStatus, u32) {
        r.completed++;
        issue(q);
      });
    };
    target = warmup_ios;
    for (u16 q = 0; q < queues; q++) {
      for (int d = 0; d < 8; d++) issue(q);
    }
    sim.Run();
    mem::HotPathAllocs::BeginSteadyState();
    target = warmup_ios + steady_ios;
    u64 t0 = WallNowNs();
    for (u16 q = 0; q < queues; q++) {
      for (int d = 0; d < 8; d++) issue(q);
    }
    sim.Run();
    u64 wall = WallNowNs() - t0;
    mem::HotPathAllocs::EndSteadyState();
    r.steady_allocs = mem::HotPathAllocs::steady_state_allocs();
    r.sim_end = sim.now();
    r.wall_ns_per_io =
        steady_ios > 0 ? static_cast<double>(wall) / steady_ios : 0;
    if (rep == 0 || r.wall_ns_per_io < best.wall_ns_per_io) {
      double keep = rep == 0 ? r.wall_ns_per_io
                             : std::min(best.wall_ns_per_io, r.wall_ns_per_io);
      best = r;
      best.wall_ns_per_io = keep;
    }
  }
  return best;
}

struct ForensicResult {
  bool ran = false;         // the run itself built and completed
  bool triggered = false;   // >= 1 anomaly dump produced
  bool parse_ok = false;    // dump text round-trips through Parse
  bool validate_ok = false; // timeline internal consistency
  bool cross_ok = false;    // flight vs SpanAnalyzer agreement
  usize compared = 0;       // requests both instruments retained
  u64 timeouts = 0;
  std::string dump_path;
  std::string error;
};

/// Faulted two-tenant run: command stalls at the device push requests
/// past the router's deadline, the kDeadlineAbort trigger freezes the
/// rings and writes a dump into `dump_dir`, and the dump is then parsed
/// back, internally validated, and cross-checked nanosecond-exactly
/// against a SpanAnalyzer pass over the same run's trace.
ForensicResult RunFlightForensic(const std::string& dump_dir) {
  ForensicResult out;
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig cfg = Testbed::DefaultDrive();
  cfg.capacity = 64 * MiB;
  cfg.obs = &obs;
  ssd::SimulatedController phys(&sim, &dma, cfg);
  fault::FaultInjector injector(&sim, &obs);
  phys.SetFaultInjector(&injector);

  obs::FlightTriggersConfig tcfg;
  tcfg.dump_dir = dump_dir;
  obs::FlightTriggers ftrig(obs.flight(), &obs.metrics(), nullptr, tcfg);

  core::NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  hcfg.flight_triggers = &ftrig;
  hcfg.costs.request_timeout_ns = 400 * kUs;
  core::NvmetroHost host(&sim, &phys, hcfg);

  virt::Vm vm1(&sim, virt::VmConfig{.memory_bytes = 16 * MiB});
  virt::Vm vm2(&sim, virt::VmConfig{.memory_bytes = 16 * MiB});
  core::VirtualController* vc1 = host.CreateController(&vm1, {.vm_id = 1});
  core::VirtualController* vc2 = host.CreateController(&vm2, {.vm_id = 2});
  for (core::VirtualController* vc : {vc1, vc2}) {
    auto prog = functions::PassthroughClassifier();
    if (!prog.ok() || !vc->InstallClassifier(std::move(*prog)).ok()) {
      out.error = "classifier install failed";
      return out;
    }
  }
  host.Start();
  virt::GuestNvmeDriver d1(&vm1, vc1), d2(&vm2, vc2);
  if (!d1.Init(1).ok() || !d2.Init(1).ok()) {
    out.error = "driver init failed";
    return out;
  }

  // A burst of certain command stalls: the affected requests sit at the
  // device until the router's 400us deadline aborts them.
  fault::FaultPlan plan;
  plan.faults.push_back(
      {.kind = fault::FaultKind::kCommandStall, .count = 4});
  injector.Arm(plan);

  struct Tenant {
    virt::GuestNvmeDriver* drv;
    virt::Vm* vm;
    int completed = 0;
    int issued = 0;
    u64 buf = 0;
  } tenants[2] = {{&d1, &vm1}, {&d2, &vm2}};
  const int kIosPerTenant = 400;
  std::function<void(int)> issue = [&](int i) {
    Tenant& t = tenants[i];
    if (t.issued >= kIosPerTenant) return;
    t.issued++;
    nvme::Sqe sqe = (t.issued % 2)
                        ? nvme::MakeWrite(1, t.issued % 64, 1, t.buf, 0)
                        : nvme::MakeRead(1, t.issued % 64, 1, t.buf, 0);
    t.drv->Submit(0, sqe, [&, i](nvme::NvmeStatus, u32) {
      tenants[i].completed++;
      issue(i);
    });
  };
  for (int i = 0; i < 2; i++) {
    tenants[i].buf = *tenants[i].vm->memory().AllocPages(1);
    for (int d = 0; d < 4; d++) issue(i);
  }
  sim.Run();
  out.ran = tenants[0].completed == kIosPerTenant &&
            tenants[1].completed == kIosPerTenant;
  out.timeouts =
      vc1->requests_timed_out() + vc2->requests_timed_out();
  out.triggered = ftrig.dumps_produced() >= 1;
  if (!out.triggered) {
    out.error = "no anomaly dump was produced";
    return out;
  }
  const obs::FlightTriggers::DumpInfo& info = ftrig.dumps()[0];
  out.dump_path = info.path;

  obs::FlightDump dump;
  if (!obs::FlightDump::Parse(info.serialized, &dump, &out.error)) {
    return out;
  }
  out.parse_ok = true;
  obs::FlightTimeline timeline(dump);
  if (!timeline.Validate(&out.error)) return out;
  out.validate_ok = true;

  obs::SpanAnalyzer spans;
  spans.Analyze(obs.trace());
  if (!obs::CrossValidateFlightSpans(timeline, spans, &out.compared,
                                     &out.error)) {
    return out;
  }
  out.cross_ok = true;
  return out;
}

/// `--flight-sweep`: flight-recorder overhead + forensic round-trip
/// (DESIGN.md §16). Gates: recorder-on host wall ns/IO within 3% of
/// recorder-off (min over reps), simulated time bit-identical, zero
/// steady-state pool allocations either way, and a deadline-abort dump
/// from a faulted 2-tenant run that parses, validates, and agrees with
/// SpanAnalyzer on every overlapping request. Writes BENCH_flight.json.
int RunFlightSweep(const Flags& flags, const std::string& json_path) {
  PrintHeader("Flight recorder: always-on overhead + forensic round-trip",
              "closed-loop 512B passthrough, recorder on vs off");
  const int reps = static_cast<int>(flags.GetInt("flight-reps"));
  const int kWarmup = 2'000;
  const int steady = static_cast<int>(flags.GetInt("flight-ios"));

  FlightCell off = RunFlightOverheadCell(false, reps, kWarmup, steady);
  FlightCell on = RunFlightOverheadCell(true, reps, kWarmup, steady);

  double overhead_pct =
      off.wall_ns_per_io > 0
          ? (on.wall_ns_per_io / off.wall_ns_per_io - 1.0) * 100.0
          : 0.0;
  bool gate_overhead = overhead_pct <= 3.0;
  bool gate_sim = on.sim_end == off.sim_end && on.sim_end != 0;
  bool gate_alloc = on.steady_allocs == 0 && off.steady_allocs == 0;

  TablePrinter t({"recorder", "wall ns/IO (min)", "sim end (ms)",
                  "steady allocs"});
  for (bool is_on : {false, true}) {
    const FlightCell& c = is_on ? on : off;
    t.AddRow({is_on ? "on" : "off", StrFormat("%.0f", c.wall_ns_per_io),
              StrFormat("%.2f", static_cast<double>(c.sim_end) / kMs),
              StrFormat("%llu",
                        static_cast<unsigned long long>(c.steady_allocs))});
  }
  t.Print();
  std::printf("recorder overhead: %+.2f%% host ns/IO (gate <= 3%%): %s\n",
              overhead_pct, gate_overhead ? "ok" : "FAIL");
  std::printf("sim time identical on vs off: %s\n", gate_sim ? "yes" : "NO");
  std::printf("zero steady-state allocations: %s\n",
              gate_alloc ? "yes" : "NO");

  ForensicResult fr = RunFlightForensic(flags.GetString("flight-dump-dir"));
  std::printf(
      "forensic: run=%s timeouts=%llu dump=%s parse=%s validate=%s "
      "cross-validate=%s (%zu requests)%s%s\n",
      fr.ran ? "ok" : "FAIL", static_cast<unsigned long long>(fr.timeouts),
      fr.triggered ? (fr.dump_path.empty() ? "(in-memory)"
                                           : fr.dump_path.c_str())
                   : "NONE",
      fr.parse_ok ? "ok" : "FAIL", fr.validate_ok ? "ok" : "FAIL",
      fr.cross_ok ? "ok" : "FAIL", fr.compared,
      fr.error.empty() ? "" : " error: ", fr.error.c_str());
  bool gate_forensic = fr.ran && fr.triggered && fr.parse_ok &&
                       fr.validate_ok && fr.cross_ok && fr.compared > 0;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\"bench\":\"flight_sweep\",\"reps\":%d,\"steady_ios\":%d,\n"
        " \"off\":{\"wall_ns_per_io\":%.1f,\"sim_end_ns\":%llu,"
        "\"steady_allocs\":%llu},\n"
        " \"on\":{\"wall_ns_per_io\":%.1f,\"sim_end_ns\":%llu,"
        "\"steady_allocs\":%llu},\n"
        " \"overhead_pct\":%.2f,\n"
        " \"forensic\":{\"timeouts\":%llu,\"compared\":%zu,"
        "\"dump_path\":\"%s\"},\n"
        " \"gates\":{\"overhead_le_3pct\":%s,\"sim_identical\":%s,"
        "\"zero_alloc\":%s,\"forensic_roundtrip\":%s}}\n",
        reps, steady, off.wall_ns_per_io,
        static_cast<unsigned long long>(off.sim_end),
        static_cast<unsigned long long>(off.steady_allocs),
        on.wall_ns_per_io, static_cast<unsigned long long>(on.sim_end),
        static_cast<unsigned long long>(on.steady_allocs), overhead_pct,
        static_cast<unsigned long long>(fr.timeouts), fr.compared,
        fr.dump_path.c_str(), gate_overhead ? "true" : "false",
        gate_sim ? "true" : "false", gate_alloc ? "true" : "false",
        gate_forensic ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return (gate_overhead && gate_sim && gate_alloc && gate_forensic) ? 0 : 2;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  flags.DefineBool("batch-sweep", false,
                   "run the batching ablation sweep instead of the "
                   "standard ablation table");
  flags.DefineString("batch-json", "BENCH_batching.json",
                     "output path for the batch-sweep JSON (empty: none)");
  flags.DefineBool("shard-sweep", false,
                   "run the per-queue shard / cid-table ablation sweep");
  flags.DefineString("shard-json", "BENCH_shard.json",
                     "output path for the shard-sweep JSON (empty: none)");
  flags.DefineBool("flight-sweep", false,
                   "run the flight-recorder overhead + forensic round-trip "
                   "sweep (DESIGN.md S16)");
  flags.DefineString("flight-json", "BENCH_flight.json",
                     "output path for the flight-sweep JSON (empty: none)");
  flags.DefineString("flight-dump-dir", ".",
                     "directory for the forensic run's anomaly dump "
                     "(empty: keep in memory)");
  flags.DefineInt("flight-reps", 5,
                  "wall-clock repetitions per overhead cell (min taken)");
  flags.DefineInt("flight-ios", 20'000, "steady-phase IOs per repetition");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchOptions opts = OptionsFromFlags(flags);

  if (flags.GetBool("batch-sweep")) {
    return RunBatchSweep(opts, flags.GetString("batch-json"));
  }
  if (flags.GetBool("shard-sweep")) {
    return RunShardSweep(flags.GetString("shard-json"));
  }
  if (flags.GetBool("flight-sweep")) {
    return RunFlightSweep(flags, flags.GetString("flight-json"));
  }

  PrintHeader("Ablation: router design choices",
              "512B random read; IOPS and host CPU%% per variant");
  TablePrinter t({"variant", "KIOPS", "host CPU %"});

  // (1) Classifier vs fixed translation at QD128.
  {
    CellSpec cell{512, 128, 1, FioMode::kRandRead};
    FioResult nvmetro = RunCell(SolutionKind::kNvmetro, cell, opts);
    FioResult mdev = RunCell(SolutionKind::kMdev, cell, opts);
    t.AddRow({"eBPF classifier (NVMetro), qd128",
              StrFormat("%.1f", nvmetro.iops / 1000.0),
              StrFormat("%.0f", nvmetro.host_cpu_pct)});
    t.AddRow({"fixed translation (MDev), qd128",
              StrFormat("%.1f", mdev.iops / 1000.0),
              StrFormat("%.0f", mdev.host_cpu_pct)});
  }

  // (2) Adaptive vs always-spinning worker at a low 5K IOPS rate.
  {
    CellSpec cell{512, 4, 1, FioMode::kRandRead};
    core::RouterCosts adaptive;  // defaults: adaptive on
    core::RouterCosts spinning;
    spinning.adaptive_worker = false;
    FioResult a = RunWith(adaptive, 1, 1, cell, opts, 5'000);
    FioResult s = RunWith(spinning, 1, 1, cell, opts, 5'000);
    t.AddRow({"adaptive worker @5K IOPS",
              StrFormat("%.1f", a.iops / 1000.0),
              StrFormat("%.0f", a.host_cpu_pct)});
    t.AddRow({"spinning worker @5K IOPS",
              StrFormat("%.1f", s.iops / 1000.0),
              StrFormat("%.0f", s.host_cpu_pct)});
  }

  // (2b) Classifier complexity sweep: the same passthrough policy padded
  // with extra (verified) eBPF work — flexibility must stay ~free even
  // for much larger programs, because the per-request classifier cost is
  // nanoseconds against a multi-microsecond device.
  for (u32 pad : {0u, 64u, 256u}) {
    CellSpec cell{512, 128, 1, FioMode::kRandRead};
    Testbed tb;
    SolutionParams params;
    params.seed = opts.seed;
    auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
    if (!bundle) continue;
    std::string text;
    for (u32 i = 0; i < pad; i++) text += "  mov r3, 7\n";
    text += functions::PassthroughClassifierAsm();
    auto prog = ebpf::Assemble(text, {});
    if (!prog.ok()) continue;
    core::VirtualController* vc = bundle->nvmetro_host()->controller(0);
    if (!vc->InstallClassifier(std::move(*prog)).ok()) continue;
    FioConfig cfg;
    cfg.block_size = cell.bs;
    cfg.queue_depth = cell.qd;
    cfg.num_jobs = cell.jobs;
    cfg.mode = cell.mode;
    cfg.warmup = opts.warmup;
    cfg.duration = opts.duration;
    cfg.seed = opts.seed;
    auto res = workload::Fio::Run(&tb.sim, bundle->vm_solution(0), cfg);
    t.AddRow({StrFormat("classifier +%u padding insns, qd128", pad),
              StrFormat("%.1f", res.iops / 1000.0),
              StrFormat("%.0f", res.host_cpu_pct)});
  }

  // (3) Shared vs per-VM workers, 4 VMs at QD32.
  {
    CellSpec cell{512, 32, 1, FioMode::kRandRead};
    core::RouterCosts costs;
    FioResult shared = RunWith(costs, 4, 1, cell, opts);
    FioResult per_vm = RunWith(costs, 4, 4, cell, opts);
    t.AddRow({"4 VMs, 1 shared worker",
              StrFormat("%.1f", shared.iops / 1000.0),
              StrFormat("%.0f", shared.host_cpu_pct)});
    t.AddRow({"4 VMs, 4 workers",
              StrFormat("%.1f", per_vm.iops / 1000.0),
              StrFormat("%.0f", per_vm.host_cpu_pct)});
  }

  t.Print();
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

// Ablation bench (DESIGN.md §6): isolates the cost of NVMetro's design
// choices on the basic 512B random-read workload:
//   - classifier on (NVMetro) vs fixed translation (MDev mode): the price
//     of eBPF-based flexibility;
//   - adaptive router workers vs always-spinning workers: CPU saved by
//     idle parking at low load;
//   - shared router worker vs one worker per VM at 4 VMs.
#include <cstdio>

#include "bench_common.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"

namespace nvmetro::bench {
namespace {

FioResult RunWith(core::RouterCosts costs, u32 num_vms, u32 workers,
                  const CellSpec& cell, const BenchOptions& opts,
                  double rate_iops = 0) {
  Testbed tb;
  SolutionParams params;
  params.seed = opts.seed;
  params.num_vms = num_vms;
  params.router_workers = workers;
  params.router_costs = costs;
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
  if (!bundle) return FioResult{};
  FioConfig cfg;
  cfg.block_size = cell.bs;
  cfg.queue_depth = cell.qd;
  cfg.num_jobs = cell.jobs;
  cfg.mode = cell.mode;
  cfg.warmup = opts.warmup;
  cfg.duration = opts.duration;
  cfg.seed = opts.seed;
  cfg.rate_iops = rate_iops;
  std::vector<baselines::StorageSolution*> sols;
  for (u32 i = 0; i < bundle->num_vms(); i++) {
    sols.push_back(bundle->vm_solution(i));
  }
  auto results = workload::Fio::RunMulti(&tb.sim, sols, cfg);
  FioResult agg = results[0];
  for (usize i = 1; i < results.size(); i++) {
    agg.iops += results[i].iops;
    agg.guest_cpu_pct += results[i].guest_cpu_pct;
  }
  return agg;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchOptions opts = OptionsFromFlags(flags);

  PrintHeader("Ablation: router design choices",
              "512B random read; IOPS and host CPU%% per variant");
  TablePrinter t({"variant", "KIOPS", "host CPU %"});

  // (1) Classifier vs fixed translation at QD128.
  {
    CellSpec cell{512, 128, 1, FioMode::kRandRead};
    FioResult nvmetro = RunCell(SolutionKind::kNvmetro, cell, opts);
    FioResult mdev = RunCell(SolutionKind::kMdev, cell, opts);
    t.AddRow({"eBPF classifier (NVMetro), qd128",
              StrFormat("%.1f", nvmetro.iops / 1000.0),
              StrFormat("%.0f", nvmetro.host_cpu_pct)});
    t.AddRow({"fixed translation (MDev), qd128",
              StrFormat("%.1f", mdev.iops / 1000.0),
              StrFormat("%.0f", mdev.host_cpu_pct)});
  }

  // (2) Adaptive vs always-spinning worker at a low 5K IOPS rate.
  {
    CellSpec cell{512, 4, 1, FioMode::kRandRead};
    core::RouterCosts adaptive;  // defaults: adaptive on
    core::RouterCosts spinning;
    spinning.adaptive_worker = false;
    FioResult a = RunWith(adaptive, 1, 1, cell, opts, 5'000);
    FioResult s = RunWith(spinning, 1, 1, cell, opts, 5'000);
    t.AddRow({"adaptive worker @5K IOPS",
              StrFormat("%.1f", a.iops / 1000.0),
              StrFormat("%.0f", a.host_cpu_pct)});
    t.AddRow({"spinning worker @5K IOPS",
              StrFormat("%.1f", s.iops / 1000.0),
              StrFormat("%.0f", s.host_cpu_pct)});
  }

  // (2b) Classifier complexity sweep: the same passthrough policy padded
  // with extra (verified) eBPF work — flexibility must stay ~free even
  // for much larger programs, because the per-request classifier cost is
  // nanoseconds against a multi-microsecond device.
  for (u32 pad : {0u, 64u, 256u}) {
    CellSpec cell{512, 128, 1, FioMode::kRandRead};
    Testbed tb;
    SolutionParams params;
    params.seed = opts.seed;
    auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
    if (!bundle) continue;
    std::string text;
    for (u32 i = 0; i < pad; i++) text += "  mov r3, 7\n";
    text += functions::PassthroughClassifierAsm();
    auto prog = ebpf::Assemble(text, {});
    if (!prog.ok()) continue;
    core::VirtualController* vc = bundle->nvmetro_host()->controller(0);
    if (!vc->InstallClassifier(std::move(*prog)).ok()) continue;
    FioConfig cfg;
    cfg.block_size = cell.bs;
    cfg.queue_depth = cell.qd;
    cfg.num_jobs = cell.jobs;
    cfg.mode = cell.mode;
    cfg.warmup = opts.warmup;
    cfg.duration = opts.duration;
    cfg.seed = opts.seed;
    auto res = workload::Fio::Run(&tb.sim, bundle->vm_solution(0), cfg);
    t.AddRow({StrFormat("classifier +%u padding insns, qd128", pad),
              StrFormat("%.1f", res.iops / 1000.0),
              StrFormat("%.0f", res.host_cpu_pct)});
  }

  // (3) Shared vs per-VM workers, 4 VMs at QD32.
  {
    CellSpec cell{512, 32, 1, FioMode::kRandRead};
    core::RouterCosts costs;
    FioResult shared = RunWith(costs, 4, 1, cell, opts);
    FioResult per_vm = RunWith(costs, 4, 4, cell, opts);
    t.AddRow({"4 VMs, 1 shared worker",
              StrFormat("%.1f", shared.iops / 1000.0),
              StrFormat("%.0f", shared.host_cpu_pct)});
    t.AddRow({"4 VMs, 4 workers",
              StrFormat("%.1f", per_vm.iops / 1000.0),
              StrFormat("%.0f", per_vm.host_cpu_pct)});
  }

  t.Print();
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

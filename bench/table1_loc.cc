// Table I: source code sizes of the NVMetro classifier and UIF
// implementations, counted from this repository's own sources (the
// reproduction's equivalents of the paper's components).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/table.h"
#include "functions/classifiers.h"

namespace nvmetro::bench {
namespace {

/// Non-empty, non-comment-only lines of a source file.
int CountFileLoc(const std::string& path) {
  std::ifstream in(path);
  if (!in) return -1;
  int count = 0;
  std::string line;
  while (std::getline(in, line)) {
    // Trim.
    auto b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    auto piece = line.substr(b);
    if (piece.rfind("//", 0) == 0 || piece.rfind(";", 0) == 0) continue;
    count++;
  }
  return count;
}

int CountAsmLoc(const char* text) {
  int count = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    auto b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    if (line[b] == ';' || line[b] == '#') continue;
    count++;
  }
  return count;
}

int SumFiles(std::initializer_list<const char*> files) {
  int total = 0;
  for (const char* f : files) {
    int n = CountFileLoc(std::string(NVMETRO_SOURCE_DIR "/") + f);
    if (n > 0) total += n;
  }
  return total;
}

int Main() {
  std::printf("=== Table I ===\n");
  std::printf(
      "Source code sizes of NVMetro classifier and UIF implementations\n"
      "(this reproduction's components; paper's numbers alongside)\n\n");
  nvmetro::TablePrinter t(
      {"Function", "Component", "Lines (repro)", "Lines (paper)"});
  t.AddRow({"Encryptor", "Classifier",
            std::to_string(
                CountAsmLoc(functions::EncryptorClassifierAsm())),
            "32"});
  t.AddRow({"Encryptor", "Normal UIF",
            std::to_string(SumFiles({"src/functions/encryptor_uif.h",
                                     "src/functions/encryptor_uif.cc"}) /
                           2),  // file holds both UIF variants
            "520"});
  t.AddRow({"Encryptor", "SGX UIF + enclave",
            std::to_string(SumFiles({"src/sgx/enclave.h",
                                     "src/sgx/enclave.cc"})),
            "501"});
  t.AddRow({"Replicator", "Classifier",
            std::to_string(
                CountAsmLoc(functions::ReplicatorClassifierAsm())),
            "16"});
  t.AddRow({"Replicator", "UIF",
            std::to_string(SumFiles({"src/functions/replicator_uif.h",
                                     "src/functions/replicator_uif.cc"})),
            "307"});
  t.AddRow({"Framework", "-",
            std::to_string(SumFiles(
                {"src/uif/framework.h", "src/uif/framework.cc",
                 "src/uif/guest_data.h", "src/uif/guest_data.cc",
                 "src/uif/uring.h", "src/uif/uring.cc"})),
            "1116"});
  t.Print();
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main() { return nvmetro::bench::Main(); }

// Figure 5: NVMetro scalability under an increasing number of small VMs
// sharing ONE router worker thread; 512B random workloads at QD 1, 4, 32
// and 128 (paper §V-B).
#include <cstdio>

#include "bench_common.h"

namespace nvmetro::bench {
namespace {

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  flags.DefineInt("max-vms", 8, "largest VM count to sweep");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchOptions opts = OptionsFromFlags(flags);

  PrintHeader("Figure 5",
              "NVMetro aggregate throughput (Kilo IOPS) with N small VMs "
              "served by one shared router worker, 512B blocks");

  u32 max_vms = static_cast<u32>(flags.GetInt("max-vms"));
  std::vector<std::string> headers = {"config"};
  for (u32 n = 1; n <= max_vms; n++) {
    headers.push_back(StrFormat("%u VM%s", n, n > 1 ? "s" : ""));
  }
  TablePrinter table(headers);

  for (FioMode mode :
       {FioMode::kRandRead, FioMode::kRandWrite, FioMode::kRandRW}) {
    for (u32 qd : {1u, 4u, 32u, 128u}) {
      std::vector<std::string> row = {
          StrFormat("%s qd=%u", workload::FioModeName(mode), qd)};
      for (u32 n = 1; n <= max_vms; n++) {
        BenchOptions cell_opts = opts;
        cell_opts.num_vms = n;
        // Small VMs: 1 dedicated core, own partition (paper footnote 1).
        Testbed tb;
        SolutionParams params;
        params.seed = opts.seed;
        params.num_vms = n;
        params.guest_queues = 1;
        params.vm_cfg.vcpus = 1;
        params.vm_cfg.memory_bytes = 64 * MiB;
        params.router_workers = 1;  // one host kernel thread serves all
        auto bundle =
            SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
        if (!bundle) {
          row.push_back("-");
          continue;
        }
        FioConfig cfg;
        cfg.block_size = 512;
        cfg.queue_depth = qd;
        cfg.num_jobs = 1;
        cfg.mode = mode;
        cfg.random_region = 256 * MiB;  // within each small partition
        cfg.warmup = cell_opts.warmup;
        cfg.duration = cell_opts.duration;
        cfg.seed = cell_opts.seed;
        std::vector<baselines::StorageSolution*> sols;
        for (u32 i = 0; i < n; i++) sols.push_back(bundle->vm_solution(i));
        auto results = workload::Fio::RunMulti(&tb.sim, sols, cfg);
        double total = 0;
        for (const auto& r : results) total += r.iops;
        row.push_back(StrFormat("%.1f", total / 1000.0));
        std::fflush(stdout);
      }
      table.AddRow(std::move(row));
    }
  }
  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

// Component microbenchmarks (google-benchmark): NVMe ring operations,
// PRP construction/walks, eBPF verification and per-invocation dispatch
// of the shipped classifiers, XTS-AES throughput, map operations, and the
// latency histogram.
//
// These measure REAL wall-clock cost of the library's data structures on
// the build machine (unlike the figure benches, which measure simulated
// time).
#include <benchmark/benchmark.h>

#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/classifier.h"
#include "crypto/xts.h"
#include "ebpf/assembler.h"
#include "ebpf/interpreter.h"
#include "ebpf/map.h"
#include "ebpf/verifier.h"
#include "functions/classifiers.h"
#include "mem/guest_memory.h"
#include "nvme/prp.h"
#include "nvme/queue.h"

namespace nvmetro {
namespace {

void BM_SqRingPushPop(benchmark::State& state) {
  std::vector<u8> mem(256 * sizeof(nvme::Sqe), 0);
  nvme::SqRing ring(mem.data(), 256);
  nvme::Sqe sqe = nvme::MakeRead(1, 0, 8, 0, 0);
  nvme::Sqe out;
  for (auto _ : state) {
    ring.Push(sqe);
    ring.PublishTail();
    ring.Pop(&out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqRingPushPop);

void BM_CqRingPushPop(benchmark::State& state) {
  std::vector<u8> mem(256 * sizeof(nvme::Cqe), 0);
  nvme::CqRing ring(mem.data(), 256);
  nvme::Cqe cqe;
  nvme::Cqe out;
  for (auto _ : state) {
    ring.Push(cqe);
    ring.Peek(&out);
    ring.Pop();
    ring.PublishHead();
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CqRingPushPop);

void BM_PrpBuildWalk(benchmark::State& state) {
  mem::GuestMemory gm(64 * MiB);
  u64 len = static_cast<u64>(state.range(0));
  auto buf = gm.AllocPages((len + mem::kPageSize - 1) / mem::kPageSize + 1);
  for (auto _ : state) {
    auto chain = nvme::BuildPrps(gm, *buf, len);
    std::vector<nvme::PrpSegment> segs;
    benchmark::DoNotOptimize(
        nvme::WalkPrps(gm, chain->prp1, chain->prp2, len, &segs));
    nvme::FreePrpChain(gm, *chain);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<i64>(len));
}
BENCHMARK(BM_PrpBuildWalk)->Arg(4096)->Arg(16 * 1024)->Arg(128 * 1024);

void BM_VerifierEncryptorClassifier(benchmark::State& state) {
  auto prog = functions::EncryptorClassifier();
  ebpf::Verifier verifier(core::NvmetroCtxDescriptor(),
                          ebpf::HelperRegistry::Default());
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.Verify(*prog));
  }
}
BENCHMARK(BM_VerifierEncryptorClassifier);

void BM_ClassifierInvocation(benchmark::State& state) {
  // Per-request cost of running the encryption classifier at HOOK_VSQ —
  // the shortcut-processing hot path of the router.
  auto prog = functions::EncryptorClassifier();
  auto runtime = core::ClassifierRuntime::Create(std::move(*prog));
  core::ClassifierCtx ctx;
  ctx.opcode = nvme::kCmdRead;
  ctx.slba = 1234;
  for (auto _ : state) {
    ctx.current_hook = core::kHookVsq;
    benchmark::DoNotOptimize((*runtime)->Run(&ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifierInvocation);

void BM_XtsEncrypt(benchmark::State& state) {
  std::vector<u8> key(64);
  Rng rng(3);
  rng.Fill(key.data(), key.size());
  auto xts = crypto::XtsCipher::Create(key.data(), key.size());
  u64 len = static_cast<u64>(state.range(0));
  std::vector<u8> buf(len);
  rng.Fill(buf.data(), buf.size());
  for (auto _ : state) {
    xts->EncryptRange(0, 512, buf.data(), buf.data(), buf.size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<i64>(len));
  state.SetLabel(xts->using_aesni() ? "aesni" : "portable");
}
BENCHMARK(BM_XtsEncrypt)->Arg(512)->Arg(4096)->Arg(128 * 1024);

void BM_XtsEncryptPortable(benchmark::State& state) {
  std::vector<u8> key(64);
  Rng rng(3);
  rng.Fill(key.data(), key.size());
  auto xts = crypto::XtsCipher::Create(key.data(), key.size());
  xts->DisableAesni();
  std::vector<u8> buf(4096);
  for (auto _ : state) {
    xts->EncryptRange(0, 512, buf.data(), buf.data(), buf.size());
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_XtsEncryptPortable);

void BM_EbpfMapLookup(benchmark::State& state) {
  ebpf::HashMap map(8, 8, 10'000);
  Rng rng(5);
  for (u64 i = 0; i < 5'000; i++) {
    u64 k = i, v = i * 3;
    map.Update(&k, &v);
  }
  u64 key = 2'500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Lookup(&key));
  }
}
BENCHMARK(BM_EbpfMapLookup);

void BM_HistogramRecord(benchmark::State& state) {
  LatencyHistogram h;
  Rng rng(7);
  for (auto _ : state) {
    h.Record(100 + rng.NextBounded(1'000'000));
  }
  benchmark::DoNotOptimize(h.P99());
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfianNext(benchmark::State& state) {
  ScrambledZipfianGenerator gen(3'000'000, 0.99, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next());
  }
}
BENCHMARK(BM_ZipfianNext);

}  // namespace
}  // namespace nvmetro

BENCHMARK_MAIN();

// Open-loop production traffic + overload control proof (DESIGN.md §13).
//
// Every other bench is closed-loop; this one drives the multi-tenant
// QoS stack with the open-loop generator (src/workload/openloop.h):
// per-tenant Poisson arrivals under a diurnal envelope, so offered load
// is independent of service capacity and true overload is reachable.
// Two experiments per seed, each with the overload controller attached
// and detached:
//
//  - Hockey stick: aggregate offered load sweeps from well below device
//    capacity to 2.5x over it; per level the bench records goodput and
//    per-tenant p99/p999 — the classic flat-then-vertical tail curve,
//    and the controller's bounded-queue version of it.
//
//  - Burst recovery: steady load at 60% capacity, then one best-effort
//    tenant bursts 10x for a fixed window (1.5x capacity offered).
//    Time-to-recover is the shared bench_common definition — first
//    best-effort completion after the burst clears that is both OK and
//    under the latency bar — measured controller-on vs controller-off.
//
// Invariants checked per seed (--sweep exits 2 on violation):
//   - with the controller on, LC p999 stays under target through the
//     10x burst and the controller demonstrably engaged (transitions,
//     sheds, degradation hooks);
//   - controller-on goodput at 2x offered load >= 90% of peak goodput;
//   - time-to-recover with the controller is strictly smaller than
//     without it;
//   - every run keeps exact books (submitted == ok + shed + failed per
//     tenant), the token ledger conserves, and no trace span leaks.
//
// Headline artifact: BENCH_traffic.json (CI bench-smoke upload).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/router.h"
#include "fault/fault.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "obs/slo.h"
#include "overload/overload.h"
#include "qos/qos.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"
#include "workload/openloop.h"

namespace nvmetro::bench {
namespace {

using overload::OverloadController;
using workload::Arrival;
using workload::OpenLoopConfig;
using workload::OpenLoopGenerator;
using workload::TenantLoad;

constexpr u32 kTenants = 4;  // 1,2 = LC; 3 = gentle BE; 4 = bursty BE
constexpr u64 kDeviceTokensPerSec = 50'000;
constexpr u64 kLcReserved[2] = {15'000, 10'000};
// Hockey-stick base shares: sum == device capacity at factor 1.0.
constexpr double kBaseShare[kTenants] = {18'000, 12'000, 12'000, 8'000};
// Burst-recovery steady shares (60% capacity) and the 10x burst.
constexpr double kRecoveryShare[kTenants] = {12'000, 8'000, 5'000, 5'000};
constexpr double kBurstMultiplier = 10.0;
constexpr u64 kLcSloNs = 2 * kMs;        // LC p999 target (watchdog + check)
constexpr u64 kRecoverLatNs = 1 * kMs;   // "good IO" bar for TTR
constexpr u32 kOutstandingCap = 256;     // open-loop client concurrency cap
constexpr nvme::NvmeStatus kShedStatus =
    nvme::MakeStatus(nvme::kSctGeneric, nvme::kScNamespaceNotReady);

obs::TelemetryScheduler SimScheduler(sim::Simulator* sim) {
  return [sim](SimTime at, std::function<void()> fn) {
    sim->ScheduleAt(at, std::move(fn));
  };
}

overload::OverloadConfig ControllerConfig() {
  overload::OverloadConfig ocfg;
  ocfg.device_tokens_per_sec = kDeviceTokensPerSec;
  ocfg.backpressure_enter_ns = 300 * kUs;
  ocfg.brownout_enter_ns = 1 * kMs;
  ocfg.shed_enter_ns = 2 * kMs;
  ocfg.cooldown_ns = 500 * kUs;
  ocfg.eval_period_ns = 100 * kUs;
  // Pace floor above the steady BE offered load (10k of 50k): pacing
  // must squeeze bursts, not starve the baseline — a floor below the
  // baseline rate would re-queue steady traffic and hold the delay
  // signal up after the burst has cleared.
  ocfg.min_be_fraction = 0.25;
  ocfg.additive_step = 0.1;
  return ocfg;
}

struct TenantBook {
  u64 submitted = 0;
  u64 ok = 0;
  u64 shed = 0;
  u64 other_fail = 0;
  u64 cap_dropped = 0;  // open-loop client hit the outstanding cap
  u64 p99_ns = 0;
  u64 p999_ns = 0;
  u64 lat_count = 0;
  bool Balanced() const { return submitted == ok + shed + other_fail; }
};

struct RunResult {
  TenantBook t[kTenants];
  double goodput_iops = 0;
  u64 open_requests = 0;
  bool books_ok = false;
  bool conserved = false;
  std::string conserve_err;
  u64 lc_breach_windows = 0;
  // Controller engagement (zero when detached).
  u64 transitions = 0;      // into non-Normal states
  u64 ovl_sheds = 0;
  u64 ovl_paced = 0;
  bool degradation_fired = false;
  bool degradation_cleared = false;
  i64 ttr_ns = -2;  // -2 = run had no burst window
};

struct Scenario {
  u64 seed = 1;
  SimTime horizon = 40 * kMs;
  double scale = 1.0;       // hockey-stick factor over kBaseShare
  bool recovery = false;    // burst-recovery shape instead of the sweep
  SimTime burst_at = 0;
  SimTime burst_for = 0;
  SimTime diurnal_period = 0;
  bool controller = false;
  /// Device faults concurrent with the traffic burst (the combined
  /// overload+fault seed of the CI fault matrix): random command stalls
  /// plus an SQ-full burst overlapping the 10x window.
  bool faults = false;
  const BenchOptions* telemetry = nullptr;
};

RunResult RunScenario(const Scenario& sc) {
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig ccfg;
  ccfg.capacity = 64 * MiB;
  ccfg.obs = &obs;
  // As in qos_isolation: measure queueing policy, not the drive's own
  // slow-op tail lottery.
  ccfg.latency.slow_op_rate = 0.0;
  auto phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, ccfg);
  fault::FaultInjector injector(&sim, &obs);
  if (sc.faults) {
    phys->SetFaultInjector(&injector);
    fault::FaultPlan plan;
    plan.seed = sc.seed;
    fault::FaultSpec stall;
    stall.kind = fault::FaultKind::kCommandStall;
    stall.count = 4;
    stall.probability = 0.002;
    plan.faults.push_back(stall);
    fault::FaultSpec sq_full;
    sq_full.kind = fault::FaultKind::kSqFullBurst;
    sq_full.at_ns = sc.burst_at + sc.burst_for / 4;  // inside the 10x window
    sq_full.duration_ns = 2 * kMs;
    plan.faults.push_back(sq_full);
    injector.Arm(plan);
  }
  core::NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  hcfg.num_workers = 1;
  if (sc.faults) {
    hcfg.costs.request_timeout_ns = 2 * kMs;
    hcfg.costs.max_retries = 2;
  }
  auto host = std::make_unique<core::NvmetroHost>(&sim, phys.get(), hcfg);

  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = kDeviceTokensPerSec;
  qos::QosScheduler qos(qcfg, &obs);
  for (u32 i = 1; i <= kTenants; i++) {
    qos::TenantConfig t{.tenant_id = i};
    if (i <= 2) {
      t.cls = qos::TenantClass::kLatencyCritical;
      t.reserved_tokens_per_sec = kLcReserved[i - 1];
      t.slo_latency_ns = kLcSloNs;
    }
    Status st = qos.RegisterTenant(t);
    if (!st.ok()) {
      std::fprintf(stderr, "tenant %u: %s\n", i, st.ToString().c_str());
      return {};
    }
  }

  RunResult out;
  std::unique_ptr<OverloadController> ovl;
  if (sc.controller) {
    ovl = std::make_unique<OverloadController>(ControllerConfig(), &obs);
    for (u32 i = 1; i <= kTenants; i++) ovl->RegisterTenant(i, i > 2);
    // Degradation hooks: stand-ins for "disable resync pacing" /
    // "downshift trace sampling" — the bench proves the contract (fired
    // on Brownout entry, cleared symmetrically on recovery).
    ovl->RegisterDegradation("resync_pacing", [&out](bool on) {
      if (on) out.degradation_fired = true;
      else out.degradation_cleared = true;
    });
    ovl->RegisterDegradation("trace_downshift", [](bool) {});
  }

  std::vector<std::unique_ptr<virt::Vm>> vms;
  std::vector<std::unique_ptr<virt::GuestNvmeDriver>> drivers;
  for (u32 i = 1; i <= kTenants; i++) {
    vms.push_back(std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.memory_bytes = 1 * MiB, .vcpus = 1}));
    core::VirtualController* vc =
        host->CreateController(vms.back().get(), {.vm_id = i});
    auto prog = functions::PassthroughClassifier();
    if (!prog.ok() || !vc->InstallClassifier(std::move(*prog)).ok()) {
      std::fprintf(stderr, "tenant %u: classifier install failed\n", i);
      return {};
    }
    vc->AttachQos(&qos, i);
    if (ovl) vc->AttachOverload(ovl.get());
  }
  host->Start();
  for (u32 i = 0; i < kTenants; i++) {
    drivers.push_back(std::make_unique<virt::GuestNvmeDriver>(
        vms[i].get(), host->controller(i)));
    if (!drivers.back()->Init(1).ok()) {
      std::fprintf(stderr, "tenant %u: driver init failed\n", i + 1);
      return {};
    }
  }

  const SimTime slack = 30 * kMs;  // drain + recovery window past arrivals
  obs::SloWatchdog slo(&obs.metrics(), &obs.trace(), {});
  qos.ArmSloTargets(&slo);
  if (ovl) ovl->ArmSloTargets(&slo, 0.5);
  slo.Start(0, sc.horizon + slack, SimScheduler(&sim));
  if (ovl) ovl->Start(0, sc.horizon + slack, SimScheduler(&sim));
  TelemetrySession session(&sim, &obs,
                           sc.telemetry ? *sc.telemetry : BenchOptions{});
  if (sc.telemetry) session.Start(sc.horizon + slack);

  // --- Open-loop arrival stream -------------------------------------------
  OpenLoopConfig gcfg;
  gcfg.seed = sc.seed;
  gcfg.horizon_ns = sc.horizon;
  for (u32 i = 0; i < kTenants; i++) {
    TenantLoad load;
    load.tenant_id = i + 1;
    load.base_iops = sc.recovery ? kRecoveryShare[i] : kBaseShare[i] * sc.scale;
    load.write_fraction = 0.0;  // reads: cost == 1 token, capacity exact
    load.first_lba = static_cast<u64>(i) * 16384;
    load.region_nlb = 16384;
    // Mixed sizes within one 4 KiB page (both cost one token, so the
    // token capacity stays exactly kDeviceTokensPerSec IOPS).
    load.mix = {{1, 3}, {8, 1}};
    if (sc.diurnal_period) {
      load.diurnal_amplitude = 0.15;
      load.diurnal_period_ns = sc.diurnal_period;
    }
    if (sc.recovery && i == 3) {
      load.burst_multiplier = kBurstMultiplier;
      load.forced_burst_at_ns = sc.burst_at;
      load.forced_burst_duration_ns = sc.burst_for;
    }
    gcfg.tenants.push_back(load);
  }
  OpenLoopGenerator gen(gcfg);

  RecoveryTracker recovery(sc.burst_at + sc.burst_for, kRecoverLatNs);
  u64 bufs[kTenants];
  u32 outstanding[kTenants] = {};
  for (u32 i = 0; i < kTenants; i++) bufs[i] = *vms[i]->memory().AllocPages(1);

  Arrival a;
  while (gen.Next(&a)) {
    u32 idx = a.tenant_id - 1;
    TenantBook* book = &out.t[idx];
    sim.ScheduleAt(a.at, [&sim, &drivers, &recovery, &outstanding, &bufs, sc,
                          book, idx, a] {
      // The open-loop client caps its own concurrency, not its rate:
      // past the cap an arrival is lost, never rescheduled.
      if (outstanding[idx] >= kOutstandingCap) {
        book->cap_dropped++;
        return;
      }
      outstanding[idx]++;
      book->submitted++;
      SimTime submit_ns = sim.now();
      drivers[idx]->Submit(
          0, nvme::MakeRead(1, a.slba, static_cast<u16>(a.nlb), bufs[idx], 0),
          [&sim, &recovery, &outstanding, book, idx, submit_ns,
           sc](nvme::NvmeStatus st, u32) {
            outstanding[idx]--;
            bool ok = nvme::StatusOk(st);
            if (ok) {
              book->ok++;
            } else if (st == kShedStatus) {
              book->shed++;
            } else {
              book->other_fail++;
            }
            // TTR is measured on the burst's victims: the best-effort
            // cohort (the LC tenants never lose their reservation).
            if (sc.recovery && idx >= 2) {
              recovery.OnCompletion(sim.now(), ok, sim.now() - submit_ns);
            }
          });
    });
  }
  sim.Run();

  out.books_ok = true;
  u64 total_ok = 0;
  for (u32 i = 0; i < kTenants; i++) {
    TenantBook* t = &out.t[i];
    std::string base = "qos.tenant" + std::to_string(i + 1);
    if (const LatencyHistogram* h =
            obs.metrics().FindHistogram(base + ".latency_ns")) {
      t->p99_ns = h->Quantile(0.99);
      t->p999_ns = h->Quantile(0.999);
      t->lat_count = h->count();
    }
    if (!t->Balanced()) out.books_ok = false;
    total_ok += t->ok;
    if (i < 2) out.lc_breach_windows += slo.breach_windows(base);
  }
  out.goodput_iops = static_cast<double>(total_ok) * 1e9 /
                     static_cast<double>(sc.horizon);
  out.open_requests = obs.trace().open_requests();
  out.conserved = qos.CheckConservation(&out.conserve_err);
  if (ovl) {
    out.transitions = ovl->transitions(overload::State::kBackpressure) +
                      ovl->transitions(overload::State::kBrownout) +
                      ovl->transitions(overload::State::kShed);
    out.ovl_sheds = ovl->sheds();
    out.ovl_paced = ovl->paced();
  }
  if (sc.recovery) out.ttr_ns = recovery.time_to_recover_ns();
  if (sc.telemetry) session.Finish();
  return out;
}

struct SeedOutcome {
  bool ok = true;
  std::string why;
  void Fail(const std::string& reason) {
    ok = false;
    if (!why.empty()) why += "; ";
    why += reason;
  }
};

bool RunBooksOk(const RunResult& r) {
  return r.books_ok && r.conserved && r.open_requests == 0;
}

/// Runs the full hockey-stick + recovery matrix for one seed.
bool RunSeed(u64 seed, SimTime horizon, const std::vector<double>& levels,
             double two_x_level, TablePrinter* table, std::string* json) {
  SeedOutcome outcome;
  Scenario sc;
  sc.seed = seed;
  sc.horizon = horizon;
  sc.diurnal_period = horizon / 2;  // one compressed day-and-night cycle

  *json += StrFormat("{\"seed\":%llu,\"levels\":[",
                     static_cast<unsigned long long>(seed));
  double peak_on = 0, good_at_2x = -1;
  for (usize li = 0; li < levels.size(); li++) {
    sc.scale = levels[li];
    sc.recovery = false;
    sc.controller = false;
    RunResult off = RunScenario(sc);
    sc.controller = true;
    RunResult on = RunScenario(sc);
    if (!RunBooksOk(off) || !RunBooksOk(on)) {
      outcome.Fail(StrFormat("level %.2f books/ledger/open-span violation",
                             sc.scale));
    }
    peak_on = std::max(peak_on, on.goodput_iops);
    if (sc.scale == two_x_level) good_at_2x = on.goodput_iops;
    double offered = 0;
    for (double s : kBaseShare) offered += s * sc.scale;
    table->AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(seed)),
         StrFormat("%.1fx", sc.scale),
         StrFormat("%.1fk", off.goodput_iops / 1000.0),
         StrFormat("%.1fk", on.goodput_iops / 1000.0),
         StrFormat("%.0f", off.t[0].p999_ns / 1000.0),
         StrFormat("%.0f", on.t[0].p999_ns / 1000.0),
         StrFormat("%.0f", off.t[2].p99_ns / 1000.0),
         StrFormat("%.0f", on.t[2].p99_ns / 1000.0),
         StrFormat("%llu", static_cast<unsigned long long>(on.ovl_sheds))});
    if (li) *json += ",";
    *json += StrFormat(
        "{\"scale\":%.2f,\"offered_iops\":%.0f,"
        "\"off\":{\"goodput_iops\":%.0f,\"lc1_p999_ns\":%llu,"
        "\"lc2_p999_ns\":%llu,\"be3_p99_ns\":%llu},"
        "\"on\":{\"goodput_iops\":%.0f,\"lc1_p999_ns\":%llu,"
        "\"lc2_p999_ns\":%llu,\"be3_p99_ns\":%llu,\"ovl_sheds\":%llu,"
        "\"ovl_paced\":%llu,\"transitions\":%llu}}",
        sc.scale, offered, off.goodput_iops,
        static_cast<unsigned long long>(off.t[0].p999_ns),
        static_cast<unsigned long long>(off.t[1].p999_ns),
        static_cast<unsigned long long>(off.t[2].p99_ns), on.goodput_iops,
        static_cast<unsigned long long>(on.t[0].p999_ns),
        static_cast<unsigned long long>(on.t[1].p999_ns),
        static_cast<unsigned long long>(on.t[2].p99_ns),
        static_cast<unsigned long long>(on.ovl_sheds),
        static_cast<unsigned long long>(on.ovl_paced),
        static_cast<unsigned long long>(on.transitions));
  }
  if (good_at_2x >= 0 && good_at_2x < 0.9 * peak_on) {
    outcome.Fail(StrFormat("goodput at 2x (%.0f) < 90%% of peak (%.0f)",
                           good_at_2x, peak_on));
  }

  // --- Burst recovery ------------------------------------------------------
  sc.recovery = true;
  sc.scale = 1.0;
  sc.diurnal_period = 0;
  sc.burst_at = horizon * 3 / 10;
  sc.burst_for = 10 * kMs;
  if (sc.burst_at + sc.burst_for + 15 * kMs > horizon) {
    sc.burst_for = horizon > sc.burst_at + 15 * kMs
                       ? horizon - sc.burst_at - 15 * kMs
                       : horizon / 4;
  }
  sc.controller = false;
  RunResult roff = RunScenario(sc);
  sc.controller = true;
  RunResult ron = RunScenario(sc);
  if (!RunBooksOk(roff) || !RunBooksOk(ron)) {
    outcome.Fail("recovery run books/ledger/open-span violation");
  }
  // The controller must demonstrably engage under the 10x burst...
  if (ron.transitions == 0) outcome.Fail("controller never left Normal");
  if (!ron.degradation_fired || !ron.degradation_cleared) {
    outcome.Fail("degradation hooks did not fire and clear");
  }
  // ...protect the LC tenants through it...
  for (u32 lc = 0; lc < 2; lc++) {
    if (ron.t[lc].lat_count == 0 || ron.t[lc].p999_ns > kLcSloNs) {
      outcome.Fail(StrFormat("LC%u p999 %.0fus over target under burst", lc + 1,
                             ron.t[lc].p999_ns / 1000.0));
    }
  }
  if (ron.lc_breach_windows != 0) outcome.Fail("LC SLO windows breached");
  // ...and strictly beat the uncontrolled stack back to good service.
  if (ron.ttr_ns < 0 || roff.ttr_ns < 0) {
    outcome.Fail("a recovery run never recovered");
  } else if (ron.ttr_ns >= roff.ttr_ns) {
    outcome.Fail(StrFormat("TTR on (%.2fms) not < TTR off (%.2fms)",
                           ron.ttr_ns / 1e6, roff.ttr_ns / 1e6));
  }
  table->AddRow({StrFormat("%llu", static_cast<unsigned long long>(seed)),
                 "burst", "-", "-",
                 StrFormat("%.0f", roff.t[0].p999_ns / 1000.0),
                 StrFormat("%.0f", ron.t[0].p999_ns / 1000.0),
                 StrFormat("%.0f", roff.ttr_ns / 1e3),
                 StrFormat("%.0f", ron.ttr_ns / 1e3),
                 StrFormat("%llu",
                           static_cast<unsigned long long>(ron.ovl_sheds))});
  *json += StrFormat(
      "],\"recovery\":{\"burst_multiplier\":%.0f,\"burst_ms\":%llu,"
      "\"ttr_off_ns\":%lld,\"ttr_on_ns\":%lld,\"lc1_p999_on_ns\":%llu,"
      "\"lc2_p999_on_ns\":%llu,\"transitions_on\":%llu,\"ovl_sheds_on\":%llu,"
      "\"degradation_fired\":%s},\"ok\":%s%s%s}",
      kBurstMultiplier, static_cast<unsigned long long>(sc.burst_for / kMs),
      static_cast<long long>(roff.ttr_ns), static_cast<long long>(ron.ttr_ns),
      static_cast<unsigned long long>(ron.t[0].p999_ns),
      static_cast<unsigned long long>(ron.t[1].p999_ns),
      static_cast<unsigned long long>(ron.transitions),
      static_cast<unsigned long long>(ron.ovl_sheds),
      ron.degradation_fired ? "true" : "false",
      outcome.ok ? "true" : "false",
      outcome.ok ? "" : ",\"why\":\"", outcome.ok ? "" : (outcome.why + "\"").c_str());
  if (!outcome.ok) {
    std::fprintf(stderr, "seed %llu FAILED: %s\n",
                 static_cast<unsigned long long>(seed), outcome.why.c_str());
  }
  return outcome.ok;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.DefineBool("sweep", false,
                   "multi-seed overload proof (CI mode): exits non-zero on "
                   "any invariant violation");
  flags.DefineInt("seeds", 10, "seed count for --sweep");
  flags.DefineInt("seed", 1, "seed for the single-seed run");
  flags.DefineInt("duration-ms", 40, "arrival horizon per run");
  flags.DefineBool("quick", false, "2 levels + shorter horizon (CI smoke)");
  flags.DefineBool("fault", false,
                   "combined overload+fault run (CI fault matrix): command "
                   "stalls + an SQ-full burst inside the 10x window, "
                   "controller on; checks books, ledger and recovery");
  flags.DefineString("traffic-json", "BENCH_traffic.json",
                     "machine-readable result file ('' = skip)");
  flags.DefineBool("csv", false, "CSV output");
  flags.DefineString("perfetto", "",
                     "write a Perfetto trace of one controller-on burst run");
  flags.DefineString("prom", "",
                     "write Prometheus metrics of one controller-on burst "
                     "run");
  flags.DefineString("timeseries", "", "write a time-series CSV");
  flags.DefineInt("timeseries-interval-us", 1000,
                  "time-series sampling window (microseconds)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const bool quick = flags.GetBool("quick");
  const SimTime horizon = (quick ? 30 : flags.GetInt("duration-ms")) * kMs;
  const double two_x = 2.0;
  std::vector<double> levels =
      quick ? std::vector<double>{0.5, two_x}
            : std::vector<double>{0.4, 0.8, 1.0, 1.4, two_x, 2.5};
  std::vector<u64> seeds;
  if (flags.GetBool("sweep")) {
    for (u64 s = 1; s <= static_cast<u64>(flags.GetInt("seeds")); s++) {
      seeds.push_back(s);
    }
  } else {
    seeds.push_back(static_cast<u64>(flags.GetInt("seed")));
  }

  PrintHeader(
      "Open-loop traffic: overload control vs. uncontrolled queues",
      StrFormat("device %lluk tokens/s, LC reserved %lluk+%lluk, offered "
                "%.1fx-%.1fx + 10x burst, %llums horizon",
                static_cast<unsigned long long>(kDeviceTokensPerSec / 1000),
                static_cast<unsigned long long>(kLcReserved[0] / 1000),
                static_cast<unsigned long long>(kLcReserved[1] / 1000),
                levels.front(), levels.back(),
                static_cast<unsigned long long>(horizon / kMs)));
  std::printf("(rows: sweep levels show p999/p99 us; the burst row shows "
              "TTR off/on in us)\n");
  TablePrinter table({"seed", "offered", "off_good", "on_good", "lc1_off",
                      "lc1_on", "be3_off", "be3_on", "ovl_shed"});
  std::string json = StrFormat(
      "{\"bench\":\"open_loop_traffic\",\"device_tokens_per_sec\":%llu,"
      "\"lc_reserved_tokens_per_sec\":[%llu,%llu],\"duration_ms\":%llu,"
      "\"lc_slo_ns\":%llu,\"recover_lat_ns\":%llu,\"seeds\":[",
      static_cast<unsigned long long>(kDeviceTokensPerSec),
      static_cast<unsigned long long>(kLcReserved[0]),
      static_cast<unsigned long long>(kLcReserved[1]),
      static_cast<unsigned long long>(horizon / kMs),
      static_cast<unsigned long long>(kLcSloNs),
      static_cast<unsigned long long>(kRecoverLatNs));
  u64 violations = 0;
  if (flags.GetBool("fault")) {
    // Combined overload+fault mode: the burst-recovery scenario with the
    // controller on while the device itself misbehaves. The TTR-on <
    // TTR-off comparison is meaningless under random stalls; what must
    // hold is that the books stay exact, the ledger conserves, the
    // controller still engages, and the best-effort cohort still
    // recovers to sub-SLO service after the burst clears.
    for (usize i = 0; i < seeds.size(); i++) {
      Scenario sc;
      sc.seed = seeds[i];
      sc.horizon = horizon;
      sc.recovery = true;
      sc.burst_at = horizon * 3 / 10;
      sc.burst_for = 10 * kMs;
      sc.controller = true;
      sc.faults = true;
      RunResult r = RunScenario(sc);
      bool ok = RunBooksOk(r) && r.transitions > 0 && r.ttr_ns >= 0 &&
                r.degradation_fired && r.degradation_cleared;
      if (!ok) {
        violations++;
        std::fprintf(stderr,
                     "seed %llu FAILED (fault mode): books=%d conserved=%d "
                     "open=%llu transitions=%llu ttr=%lld %s\n",
                     static_cast<unsigned long long>(seeds[i]), r.books_ok,
                     r.conserved,
                     static_cast<unsigned long long>(r.open_requests),
                     static_cast<unsigned long long>(r.transitions),
                     static_cast<long long>(r.ttr_ns),
                     r.conserve_err.c_str());
      }
      table.AddRow(
          {StrFormat("%llu", static_cast<unsigned long long>(seeds[i])),
           "fault", "-", "-", StrFormat("%.0f", r.t[0].p999_ns / 1000.0),
           StrFormat("%.0f", r.t[1].p999_ns / 1000.0), "-",
           StrFormat("%.0f", static_cast<double>(r.ttr_ns) / 1e3),
           StrFormat("%llu", static_cast<unsigned long long>(r.ovl_sheds))});
      if (i) json += ",";
      json += StrFormat(
          "{\"seed\":%llu,\"fault\":true,\"ttr_ns\":%lld,"
          "\"transitions\":%llu,\"ovl_sheds\":%llu,\"ok\":%s}",
          static_cast<unsigned long long>(seeds[i]),
          static_cast<long long>(r.ttr_ns),
          static_cast<unsigned long long>(r.transitions),
          static_cast<unsigned long long>(r.ovl_sheds),
          ok ? "true" : "false");
    }
  } else {
    for (usize i = 0; i < seeds.size(); i++) {
      if (i) json += ",";
      if (!RunSeed(seeds[i], horizon, levels, two_x, &table, &json)) {
        violations++;
      }
    }
  }
  json += StrFormat("],\"seeds_run\":%zu,\"all_ok\":%s}\n", seeds.size(),
                    violations == 0 ? "true" : "false");

  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  std::printf("overload proof: %zu seed(s), %llu violation(s)\n", seeds.size(),
              static_cast<unsigned long long>(violations));

  const std::string json_path = flags.GetString("traffic-json");
  if (!json_path.empty()) {
    if (!WriteTelemetryFile(json_path, json, "open-loop traffic JSON")) {
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Telemetry exports from one dedicated controller-on burst run so CI
  // can validate overload metrics/spans with check_telemetry.
  BenchOptions telem;
  telem.perfetto_path = flags.GetString("perfetto");
  telem.prom_path = flags.GetString("prom");
  telem.timeseries_path = flags.GetString("timeseries");
  telem.timeseries_interval =
      static_cast<SimTime>(flags.GetInt("timeseries-interval-us")) * kUs;
  if (!telem.perfetto_path.empty() || !telem.prom_path.empty() ||
      !telem.timeseries_path.empty()) {
    Scenario sc;
    sc.seed = seeds[0];
    sc.horizon = horizon;
    sc.recovery = true;
    sc.burst_at = horizon * 3 / 10;
    sc.burst_for = 10 * kMs;
    sc.controller = true;
    sc.telemetry = &telem;
    RunScenario(sc);
  }

  return violations == 0 ? 0 : 2;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

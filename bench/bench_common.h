// Shared support for the figure-reproduction benches: cell execution
// (fresh testbed per cell, like rebooting between fio runs), solution
// filters and standard flags.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/flags.h"
#include "common/strutil.h"
#include "common/table.h"
#include "obs/obs.h"
#include "obs/timeseries.h"
#include "workload/fio.h"

namespace nvmetro::bench {

using baselines::SolutionBundle;
using baselines::SolutionKind;
using baselines::SolutionParams;
using baselines::Testbed;
using workload::Fio;
using workload::FioConfig;
using workload::FioMode;
using workload::FioResult;

/// One fio cell of the evaluation matrix.
struct CellSpec {
  u64 bs = 512;
  u32 qd = 1;
  u32 jobs = 1;
  FioMode mode = FioMode::kRandRead;
};

struct BenchOptions {
  SimTime warmup = 40 * kMs;
  SimTime duration = 200 * kMs;
  u64 random_region = 1 * GiB;
  u64 seq_region_per_job = 768 * MiB;
  double rate_iops = 0;
  u64 seed = 7;
  u32 num_vms = 1;
  /// Observability (--metrics/--metrics-json/--trace): when any is set,
  /// the cell runs with an obs::Observability threaded through the stack
  /// and dumps it after the run. All off by default — and because
  /// recording never charges simulated time, enabling them does not
  /// change any reported figure.
  bool metrics = false;
  bool metrics_json = false;
  u32 trace_requests = 0;  // dump the last N request traces
  /// Telemetry exports (--perfetto/--prom/--timeseries): file paths,
  /// empty = off. Any of them implies observability, like the dump flags.
  std::string perfetto_path;
  std::string prom_path;
  std::string timeseries_path;
  SimTime timeseries_interval = 1 * kMs;
};

/// True when any observability output was requested.
bool WantObservability(const BenchOptions& opts);

/// Prints the metrics registry (text and/or JSON) and the last
/// `trace_requests` request traces, per the options.
void DumpObservability(const obs::Observability& obs,
                       const BenchOptions& opts);

/// Registers the standard bench flags (--quick, --duration-ms, --seed...).
void DefineBenchFlags(Flags* flags);
/// Builds options from parsed flags.
BenchOptions OptionsFromFlags(const Flags& flags);

/// Runs one fio cell for one solution kind on a fresh testbed. Also
/// reports bundle-level host CPU through the FioResult cpu fields.
FioResult RunCell(SolutionKind kind, const CellSpec& cell,
                  const BenchOptions& opts);

/// One cell's telemetry exports: a windowed TimeSeries sampler over the
/// standard probes (IOPS, windowed p50/p99, queue depths, batch size,
/// fault state) plus the Perfetto/Prometheus file writers. Construct
/// before the run, Start() with the run's sim-time horizon (pre-schedules
/// the sampling ticks), Finish() after the run to write the files.
/// Inert when none of the telemetry paths are set.
class TelemetrySession {
 public:
  TelemetrySession(sim::Simulator* sim, obs::Observability* obs,
                   const BenchOptions& opts);
  ~TelemetrySession();

  void Start(SimTime horizon);
  void Finish();

 private:
  sim::Simulator* sim_;
  obs::Observability* obs_;
  BenchOptions opts_;
  std::unique_ptr<obs::TimeSeries> timeseries_;
};

/// Writes `data` to `path` ("-" = stdout); warns on failure.
bool WriteTelemetryFile(const std::string& path, const std::string& data,
                        const char* what);

/// The one shared definition of time-to-recover, used by both the fault
/// sweep (bench/fault_availability) and the overload bench
/// (bench/open_loop_traffic): recovery is the first request that
/// *completes* at or after the fault/burst clears, with an OK status and
/// an end-to-end latency no worse than `lat_ok_ns` — so a request that
/// merely limps home through a drained backlog does not count as
/// "recovered". `lat_ok_ns` = UINT64_MAX accepts any successful
/// completion (the fault sweep's availability view); the overload bench
/// passes the LC latency SLO so recovery means "fast again", not just
/// "completing again". TTR = first_good - clear, or -1 if never.
class RecoveryTracker {
 public:
  RecoveryTracker(SimTime clear_ns, u64 lat_ok_ns)
      : clear_ns_(clear_ns), lat_ok_ns_(lat_ok_ns) {}

  /// Feed every guest-visible completion.
  void OnCompletion(SimTime at, bool ok, u64 e2e_ns) {
    if (recovered_ || at < clear_ns_) return;
    if (!ok || e2e_ns > lat_ok_ns_) return;
    recovered_ = true;
    first_good_ns_ = at;
  }

  bool recovered() const { return recovered_; }
  SimTime clear_ns() const { return clear_ns_; }
  SimTime first_good_ns() const { return first_good_ns_; }
  /// Nanoseconds from clear to the first good completion; -1 = never.
  i64 time_to_recover_ns() const {
    return recovered_ ? static_cast<i64>(first_good_ns_ - clear_ns_) : -1;
  }

 private:
  SimTime clear_ns_;
  u64 lat_ok_ns_;
  bool recovered_ = false;
  SimTime first_good_ns_ = 0;
};

/// The six basic solutions of §V-B, in the paper's legend order.
const std::vector<SolutionKind>& BasicSolutions();

/// Parses a comma-separated solution filter ("NVMetro,QEMU"); empty ->
/// `def`.
std::vector<SolutionKind> ParseSolutions(const std::string& csv,
                                         const std::vector<SolutionKind>& def);

/// "512B RR qd=1 jobs=1" style cell label.
std::string CellLabel(const CellSpec& cell);

/// The fio cells of each Figure 3 panel row (paper Table II).
std::vector<CellSpec> Fig3Cells();

/// The fio cells of the storage-function figures (7, 9, 12, 13):
/// {512B,16K,128K} x {qd1/jobs1, qd128/jobs4}.
std::vector<CellSpec> FunctionCells();

/// Prints a standard figure header.
void PrintHeader(const std::string& title, const std::string& what);



// --- YCSB cells (Figures 6, 8, 10) -------------------------------------------

namespace ycsb_support {

struct YcsbBenchOptions {
  u64 records = 40'000;
  u64 ops = 15'000;
  u32 value_bytes = 1'000;
  u64 seed = 7;
  /// Observability dump controls (mirrors BenchOptions).
  bool metrics = false;
  bool metrics_json = false;
  u32 trace_requests = 0;
};

struct YcsbCellResult {
  double total_ops_per_sec = 0;
  u64 failures = 0;
  bool ok = false;
};

/// Runs one YCSB cell: `jobs` parallel clients, each with its own DB
/// instance on its own filesystem region (paper §V-A), on a fresh
/// testbed of the given solution kind.
YcsbCellResult RunYcsbCell(SolutionKind kind, char workload, u32 jobs,
                           const YcsbBenchOptions& opts);

void DefineYcsbFlags(Flags* flags);
YcsbBenchOptions YcsbOptionsFromFlags(const Flags& flags);

}  // namespace ycsb_support

}  // namespace nvmetro::bench

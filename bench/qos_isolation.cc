// Multi-tenant QoS isolation proof (DESIGN.md §12).
//
// Four tenants share one router worker and one physical drive under the
// token-bucket QoS scheduler: two latency-critical tenants with reserved
// token rates, one well-behaved best-effort tenant, and one misbehaving
// best-effort aggressor whose offered load ramps from its fair share to
// 40x the leftover pool. For each load level the bench measures every
// LC tenant's p999 completion latency against the gentle baseline.
//
// The isolation claim, checked per seed and written to BENCH_qos.json
// (CI bench-smoke artifact): no ramp level may move any LC tenant's
// p999 by more than the pinned tolerance, the LC tenants never shed,
// their SLO watchdog windows never breach, and the aggressor absorbs
// every shed while still getting goodput (shed, not starved). --sweep
// repeats the proof over a deterministic multi-seed schedule and exits
// non-zero on any violation.
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "core/router.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "obs/slo.h"
#include "qos/qos.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::bench {
namespace {

constexpr u32 kTenants = 4;  // 1,2 = LC; 3 = gentle BE; 4 = aggressor BE
constexpr u64 kDeviceTokensPerSec = 50'000;
constexpr u64 kLcReserved[2] = {15'000, 10'000};
constexpr double kLcOfferedIops[2] = {10'000, 5'000};
constexpr double kGentleBeIops = 5'000;
constexpr nvme::NvmeStatus kShedStatus =
    nvme::MakeStatus(nvme::kSctGeneric, nvme::kScNamespaceNotReady);

struct TenantStats {
  u64 submitted = 0;
  u64 ok = 0;
  u64 shed = 0;
  u64 other_fail = 0;
  u64 p999_ns = 0;
  u64 lat_count = 0;
  u64 sheds_accounted = 0;  // scheduler-side ledger
  u64 slo_breach_windows = 0;
  bool Balanced() const { return submitted == ok + shed + other_fail; }
};

struct ScenarioResult {
  TenantStats tenants[kTenants];
  u64 open_requests = 0;
  bool conserved = false;
  std::string conserve_err;
  bool books_ok = false;
};

/// One run: fixed LC + gentle-BE load, aggressor at `aggressor_iops`.
ScenarioResult RunScenario(u64 seed, SimTime horizon, double aggressor_iops,
                           const BenchOptions* telemetry) {
  obs::Observability obs;
  sim::Simulator sim;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  ssd::ControllerConfig ccfg;
  ccfg.capacity = 64 * MiB;
  ccfg.obs = &obs;
  // Quiesce the drive's own slow-op lottery (1.5% of ops at 2.6x): the
  // p999 deltas below must measure cross-tenant interference, not which
  // run's 0.1% tail happened to draw a firmware retry.
  ccfg.latency.slow_op_rate = 0.0;
  auto phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, ccfg);
  core::NvmetroHost::Config hcfg;
  hcfg.obs = &obs;
  hcfg.num_workers = 1;
  auto host = std::make_unique<core::NvmetroHost>(&sim, phys.get(), hcfg);

  qos::QosConfig qcfg;
  qcfg.device_tokens_per_sec = kDeviceTokensPerSec;
  qos::QosScheduler sched(qcfg, &obs);
  for (u32 i = 1; i <= kTenants; i++) {
    qos::TenantConfig t{.tenant_id = i};
    if (i <= 2) {
      t.cls = qos::TenantClass::kLatencyCritical;
      t.reserved_tokens_per_sec = kLcReserved[i - 1];
      t.slo_latency_ns = 1 * kMs;
    }
    Status st = sched.RegisterTenant(t);
    if (!st.ok()) {
      std::fprintf(stderr, "tenant %u: %s\n", i, st.ToString().c_str());
      return {};
    }
  }

  std::vector<std::unique_ptr<virt::Vm>> vms;
  std::vector<std::unique_ptr<virt::GuestNvmeDriver>> drivers;
  for (u32 i = 1; i <= kTenants; i++) {
    vms.push_back(std::make_unique<virt::Vm>(
        &sim, virt::VmConfig{.memory_bytes = 1 * MiB, .vcpus = 1}));
    core::VirtualController* vc =
        host->CreateController(vms.back().get(), {.vm_id = i});
    auto prog = functions::PassthroughClassifier();
    if (!prog.ok() || !vc->InstallClassifier(std::move(*prog)).ok()) {
      std::fprintf(stderr, "tenant %u: classifier install failed\n", i);
      return {};
    }
    vc->AttachQos(&sched, i);
  }
  host->Start();
  for (u32 i = 0; i < kTenants; i++) {
    drivers.push_back(std::make_unique<virt::GuestNvmeDriver>(
        vms[i].get(), host->controller(i)));
    if (!drivers.back()->Init(1).ok()) {
      std::fprintf(stderr, "tenant %u: driver init failed\n", i + 1);
      return {};
    }
  }

  obs::SloWatchdog slo(&obs.metrics(), &obs.trace(), {});
  sched.ArmSloTargets(&slo);
  slo.Start(0, horizon, [&](SimTime at, std::function<void()> fn) {
    sim.ScheduleAt(at, std::move(fn));
  });
  TelemetrySession session(&sim, &obs,
                           telemetry ? *telemetry : BenchOptions{});
  if (telemetry) session.Start(horizon + 10 * kMs);

  ScenarioResult out;
  Rng rng(seed);
  u64 bufs[kTenants];
  for (u32 i = 0; i < kTenants; i++) bufs[i] = *vms[i]->memory().AllocPages(1);
  auto drive = [&](u32 idx, double iops) {
    if (iops <= 0) return;
    TenantStats* book = &out.tenants[idx];
    SimTime interval = static_cast<SimTime>(1e9 / iops);
    SimTime t = 10 * kUs + static_cast<SimTime>(rng.NextBounded(interval));
    for (; t < horizon; t += interval) {
      u64 lba = rng.NextBounded(1'000);
      sim.ScheduleAt(t, [&drivers, idx, lba, book, &bufs] {
        book->submitted++;
        drivers[idx]->Submit(0, nvme::MakeRead(1, lba, 1, bufs[idx], 0),
                             [book](nvme::NvmeStatus st, u32) {
                               if (nvme::StatusOk(st)) {
                                 book->ok++;
                               } else if (st == kShedStatus) {
                                 book->shed++;
                               } else {
                                 book->other_fail++;
                               }
                             });
      });
    }
  };
  drive(0, kLcOfferedIops[0]);
  drive(1, kLcOfferedIops[1]);
  drive(2, kGentleBeIops);
  drive(3, aggressor_iops);
  sim.Run();

  out.books_ok = true;
  for (u32 i = 0; i < kTenants; i++) {
    TenantStats* t = &out.tenants[i];
    std::string base = "qos.tenant" + std::to_string(i + 1);
    if (const LatencyHistogram* h =
            obs.metrics().FindHistogram(base + ".latency_ns")) {
      t->p999_ns = h->Quantile(0.999);
      t->lat_count = h->count();
    }
    t->sheds_accounted = sched.sheds(i + 1);
    t->slo_breach_windows = slo.breach_windows(base);
    if (!t->Balanced()) out.books_ok = false;
  }
  out.open_requests = obs.trace().open_requests();
  out.conserved = sched.CheckConservation(&out.conserve_err);
  if (telemetry) session.Finish();
  return out;
}

struct LevelCheck {
  double offered_iops = 0;
  ScenarioResult r;
  bool isolated = true;
};

/// Runs baseline + ramp levels for one seed; appends table rows and a
/// JSON object; returns whether the seed stayed isolated.
bool RunSeed(u64 seed, SimTime horizon, const std::vector<double>& levels,
             u64 tolerance_ns, TablePrinter* table, std::string* json) {
  std::vector<LevelCheck> checks;
  for (double iops : levels) {
    LevelCheck c;
    c.offered_iops = iops;
    c.r = RunScenario(seed, horizon, iops, nullptr);
    checks.push_back(std::move(c));
  }
  const ScenarioResult& base = checks[0].r;
  bool seed_ok = true;
  *json += StrFormat("{\"seed\":%llu,\"levels\":[",
                     static_cast<unsigned long long>(seed));
  for (usize li = 0; li < checks.size(); li++) {
    LevelCheck& c = checks[li];
    const ScenarioResult& r = c.r;
    // Isolation invariants at every level (the baseline included).
    for (u32 lc = 0; lc < 2; lc++) {
      u64 p999 = r.tenants[lc].p999_ns;
      if (r.tenants[lc].lat_count == 0 ||
          p999 > base.tenants[lc].p999_ns + tolerance_ns) {
        c.isolated = false;
      }
      if (r.tenants[lc].sheds_accounted != 0 || r.tenants[lc].shed != 0 ||
          r.tenants[lc].slo_breach_windows != 0) {
        c.isolated = false;
      }
    }
    if (!r.books_ok || !r.conserved || r.open_requests != 0) {
      c.isolated = false;
    }
    // Shedding must land on the aggressor, and the aggressor still gets
    // goodput; router-side and scheduler-side shed ledgers must agree.
    const TenantStats& be = r.tenants[3];
    if (be.shed != be.sheds_accounted || be.ok == 0) c.isolated = false;
    if (li + 1 == checks.size() && be.shed == 0) c.isolated = false;
    seed_ok = seed_ok && c.isolated;

    double secs = static_cast<double>(horizon) / 1e9;
    table->AddRow(
        {StrFormat("%llu", static_cast<unsigned long long>(seed)),
         StrFormat("%.0fk", c.offered_iops / 1000.0),
         StrFormat("%.1f", r.tenants[0].p999_ns / 1000.0),
         StrFormat("%+.1f", (static_cast<double>(r.tenants[0].p999_ns) -
                             static_cast<double>(base.tenants[0].p999_ns)) /
                                1000.0),
         StrFormat("%.1f", r.tenants[1].p999_ns / 1000.0),
         StrFormat("%+.1f", (static_cast<double>(r.tenants[1].p999_ns) -
                             static_cast<double>(base.tenants[1].p999_ns)) /
                                1000.0),
         StrFormat("%.1f", be.ok / secs / 1000.0),
         StrFormat("%llu", static_cast<unsigned long long>(be.shed)),
         c.isolated ? "yes" : "NO"});
    if (li) *json += ",";
    *json += StrFormat(
        "{\"offered_iops\":%.0f,\"lc1_p999_ns\":%llu,\"lc1_delta_ns\":%lld,"
        "\"lc2_p999_ns\":%llu,\"lc2_delta_ns\":%lld,\"be_ok\":%llu,"
        "\"be_shed\":%llu,\"lc_sheds\":%llu,\"isolated\":%s}",
        c.offered_iops,
        static_cast<unsigned long long>(r.tenants[0].p999_ns),
        static_cast<long long>(r.tenants[0].p999_ns) -
            static_cast<long long>(base.tenants[0].p999_ns),
        static_cast<unsigned long long>(r.tenants[1].p999_ns),
        static_cast<long long>(r.tenants[1].p999_ns) -
            static_cast<long long>(base.tenants[1].p999_ns),
        static_cast<unsigned long long>(be.ok),
        static_cast<unsigned long long>(be.shed),
        static_cast<unsigned long long>(r.tenants[0].sheds_accounted +
                                        r.tenants[1].sheds_accounted),
        c.isolated ? "true" : "false");
  }
  *json += StrFormat("],\"isolated\":%s}", seed_ok ? "true" : "false");
  return seed_ok;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.DefineBool("sweep", false,
                   "multi-seed isolation proof (CI mode): exits non-zero "
                   "if any seed's LC p999 moves past the tolerance");
  flags.DefineInt("seeds", 10, "seed count for --sweep");
  flags.DefineInt("seed", 1, "seed for the single-seed run");
  flags.DefineInt("duration-ms", 40, "offered-load horizon per run");
  flags.DefineBool("quick", false, "shorter horizon, fewer ramp levels");
  flags.DefineInt("tolerance-us", 25,
                  "pinned LC p999 shift tolerance vs. the gentle baseline");
  flags.DefineString("qos-json", "BENCH_qos.json",
                     "machine-readable result file ('' = skip)");
  flags.DefineBool("csv", false, "CSV output");
  flags.DefineString("perfetto", "",
                     "write a Perfetto trace of one overload run");
  flags.DefineString("prom", "",
                     "write per-tenant Prometheus metrics of one overload "
                     "run");
  flags.DefineString("timeseries", "", "write a time-series CSV");
  flags.DefineInt("timeseries-interval-us", 1000,
                  "time-series sampling window (microseconds)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  const bool quick = flags.GetBool("quick");
  const SimTime horizon =
      (quick ? 15 : flags.GetInt("duration-ms")) * kMs;
  const u64 tolerance_ns = static_cast<u64>(flags.GetInt("tolerance-us")) * kUs;
  // Baseline first: the aggressor at its fair share, then ramping to
  // 40x the leftover pool's refill rate.
  std::vector<double> levels = quick
                                   ? std::vector<double>{5'000, 200'000}
                                   : std::vector<double>{5'000, 20'000,
                                                         80'000, 200'000};
  std::vector<u64> seeds;
  if (flags.GetBool("sweep")) {
    for (u64 s = 1; s <= static_cast<u64>(flags.GetInt("seeds")); s++) {
      seeds.push_back(s);
    }
  } else {
    seeds.push_back(static_cast<u64>(flags.GetInt("seed")));
  }

  PrintHeader(
      "QoS isolation: misbehaving tenant vs. LC tail latency",
      StrFormat("device %lluk tokens/s, LC reserved %lluk+%lluk, "
                "BE aggressor ramp, %llums horizon, tolerance %lluus",
                static_cast<unsigned long long>(kDeviceTokensPerSec / 1000),
                static_cast<unsigned long long>(kLcReserved[0] / 1000),
                static_cast<unsigned long long>(kLcReserved[1] / 1000),
                static_cast<unsigned long long>(horizon / kMs),
                static_cast<unsigned long long>(tolerance_ns / kUs)));
  TablePrinter table({"seed", "be_offered", "lc1_p999_us", "d1_us",
                      "lc2_p999_us", "d2_us", "be_good_kiops", "be_shed",
                      "isolated"});
  std::string json = StrFormat(
      "{\"bench\":\"qos_isolation\",\"device_tokens_per_sec\":%llu,"
      "\"lc_reserved_tokens_per_sec\":[%llu,%llu],\"duration_ms\":%llu,"
      "\"tolerance_ns\":%llu,\"seeds\":[",
      static_cast<unsigned long long>(kDeviceTokensPerSec),
      static_cast<unsigned long long>(kLcReserved[0]),
      static_cast<unsigned long long>(kLcReserved[1]),
      static_cast<unsigned long long>(horizon / kMs),
      static_cast<unsigned long long>(tolerance_ns));
  u64 violations = 0;
  for (usize i = 0; i < seeds.size(); i++) {
    if (i) json += ",";
    if (!RunSeed(seeds[i], horizon, levels, tolerance_ns, &table, &json)) {
      violations++;
    }
  }
  json += StrFormat("],\"seeds_run\":%zu,\"all_isolated\":%s}\n",
                    seeds.size(), violations == 0 ? "true" : "false");

  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  std::printf("isolation: %zu seed(s), %llu violation(s)\n", seeds.size(),
              static_cast<unsigned long long>(violations));

  const std::string json_path = flags.GetString("qos-json");
  if (!json_path.empty()) {
    if (!WriteTelemetryFile(json_path, json, "QoS isolation JSON")) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Optional telemetry exports from one dedicated overload run, so the
  // CI job can validate per-tenant Prometheus series and QoS trace
  // spans with tools/check_telemetry.
  BenchOptions telem;
  telem.perfetto_path = flags.GetString("perfetto");
  telem.prom_path = flags.GetString("prom");
  telem.timeseries_path = flags.GetString("timeseries");
  telem.timeseries_interval =
      static_cast<SimTime>(flags.GetInt("timeseries-interval-us")) * kUs;
  if (!telem.perfetto_path.empty() || !telem.prom_path.empty() ||
      !telem.timeseries_path.empty()) {
    RunScenario(seeds[0], horizon, levels.back(), &telem);
  }

  return violations == 0 ? 0 : 2;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

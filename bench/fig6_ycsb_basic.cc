// Figure 6: YCSB throughput for each workload type (A-F), 1 and 4
// parallel jobs, across the six storage virtualization methods.
#include <cstdio>

#include "bench_common.h"

namespace nvmetro::bench {
namespace {

using ycsb_support::RunYcsbCell;
using ycsb_support::YcsbBenchOptions;

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  ycsb_support::DefineYcsbFlags(&flags);
  flags.DefineString("workloads", "abcdef", "YCSB workloads to run");
  flags.DefineString("jobs", "1,4", "job counts to run");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  YcsbBenchOptions opts = ycsb_support::YcsbOptionsFromFlags(flags);
  auto solutions = ParseSolutions(flags.GetString("solutions"),
                                  BasicSolutions());

  PrintHeader("Figure 6",
              StrFormat("YCSB throughput (Kilo ops/sec) per workload, "
                        "%llu records / %llu ops per instance",
                        (unsigned long long)opts.records,
                        (unsigned long long)opts.ops));

  std::vector<std::string> headers = {"config"};
  for (SolutionKind k : solutions) headers.push_back(SolutionKindName(k));
  TablePrinter table(headers);

  std::vector<u32> job_counts;
  for (const std::string& j : StrSplit(flags.GetString("jobs"), ',', true)) {
    job_counts.push_back(static_cast<u32>(std::stoul(j)));
  }
  for (u32 jobs : job_counts) {
    for (char w : flags.GetString("workloads")) {
      std::vector<std::string> row = {
          StrFormat("%c jobs=%u", static_cast<char>(toupper(w)), jobs)};
      for (SolutionKind kind : solutions) {
        auto r = RunYcsbCell(kind, static_cast<char>(tolower(w)), jobs,
                             opts);
        row.push_back(r.ok ? StrFormat("%.1f%s", r.total_ops_per_sec / 1000.0,
                                       r.failures ? "!" : "")
                           : "-");
        std::fflush(stdout);
      }
      table.AddRow(std::move(row));
    }
  }
  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

// Figure 3: basic fio throughput for each workload configuration and
// storage virtualization method (paper §V-B). Also prints the Table II
// configuration list with --list.
#include <cstdio>

#include "bench_common.h"

namespace nvmetro::bench {
namespace {

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  flags.DefineBool("list", false, "print the Table II config list and exit");
  flags.DefineString("bs", "", "filter: block size (512/16K/128K)");
  flags.DefineInt("qd", 0, "filter: queue depth");
  flags.DefineInt("jobs", 0, "filter: job count");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintHelp(argv[0]);
    return 1;
  }

  if (flags.GetBool("list")) {
    PrintHeader("Table II", "fio benchmark configurations");
    TablePrinter t({"Block size", "Mode", "QD", "Nr. jobs"});
    t.AddRow({"512", "Random read (RR)", "1, 128", "1"});
    t.AddRow({"512", "Random write (RW)", "1, 128", "1"});
    t.AddRow({"512", "Mixed random R/W (RRW)", "1, 128", "1"});
    t.AddRow({"512", "Random read (RR)", "128", "4"});
    t.AddRow({"512", "Random write (RW)", "128", "4"});
    t.AddRow({"512", "Mixed random R/W (RRW)", "128", "4"});
    t.AddRow({"16K", "Sequential read (SR)", "1, 128", "1, 4"});
    t.AddRow({"16K", "Sequential write (SW)", "1, 128", "1, 4"});
    t.AddRow({"16K", "Mixed sequential R/W (SRW)", "1, 128", "1, 4"});
    t.AddRow({"128K", "Sequential read (SR)", "1, 128", "1, 4"});
    t.AddRow({"128K", "Sequential write (SW)", "1, 128", "1, 4"});
    t.AddRow({"128K", "Mixed sequential R/W (SRW)", "1, 128", "1, 4"});
    t.Print();
    return 0;
  }

  BenchOptions opts = OptionsFromFlags(flags);
  auto solutions = ParseSolutions(flags.GetString("solutions"),
                                  BasicSolutions());
  u64 bs_filter = flags.GetString("bs").empty()
                      ? 0
                      : ParseBlockSize(flags.GetString("bs"));

  PrintHeader("Figure 3",
              "fio throughput (Kilo IOPS) per workload configuration and "
              "storage virtualization method");
  std::vector<std::string> headers = {"config"};
  for (SolutionKind k : solutions) headers.push_back(SolutionKindName(k));
  TablePrinter table(headers);

  for (const CellSpec& cell : Fig3Cells()) {
    if (bs_filter && cell.bs != bs_filter) continue;
    if (flags.GetInt("qd") && cell.qd != flags.GetInt("qd")) continue;
    if (flags.GetInt("jobs") && cell.jobs != flags.GetInt("jobs")) continue;
    std::vector<std::string> row = {CellLabel(cell)};
    for (SolutionKind kind : solutions) {
      FioResult r = RunCell(kind, cell, opts);
      row.push_back(StrFormat("%.1f%s", r.iops / 1000.0,
                              r.errors ? "!" : ""));
      if (r.errors) {
        std::fprintf(stderr, "WARNING: %s %s: %llu errored ops\n",
                     SolutionKindName(kind), CellLabel(cell).c_str(),
                     (unsigned long long)r.errors);
      }
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

// Figure 9: live disk replication with fio — NVMetro replication (fast
// path reads, fanned-out writes with a remote NVMe-oF secondary) vs
// dm-mirror + vhost-scsi (paper §V-D).
#include <cstdio>

#include "bench_common.h"

namespace nvmetro::bench {
namespace {

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchOptions opts = OptionsFromFlags(flags);
  auto solutions = ParseSolutions(
      flags.GetString("solutions"),
      {SolutionKind::kNvmetroReplication, SolutionKind::kDmMirror});

  PrintHeader("Figure 9", "disk replication: fio throughput (Kilo IOPS)");
  std::vector<std::string> headers = {"config"};
  for (SolutionKind k : solutions) headers.push_back(SolutionKindName(k));
  TablePrinter table(headers);
  for (const CellSpec& cell : FunctionCells()) {
    std::vector<std::string> row = {CellLabel(cell)};
    for (SolutionKind kind : solutions) {
      FioResult r = RunCell(kind, cell, opts);
      row.push_back(
          StrFormat("%.1f%s", r.iops / 1000.0, r.errors ? "!" : ""));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

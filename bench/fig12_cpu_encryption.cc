// Figure 12: CPU consumption of fio with disk encryption (NVMetro
// encryption UIF / SGX UIF / dm-crypt), paper §V-E.
#include <cstdio>

#include "bench_common.h"

namespace nvmetro::bench {
namespace {

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchOptions opts = OptionsFromFlags(flags);
  auto solutions = ParseSolutions(
      flags.GetString("solutions"),
      {SolutionKind::kNvmetroEncryption, SolutionKind::kNvmetroSgx,
       SolutionKind::kDmCrypt});

  PrintHeader("Figure 12",
              "total system CPU (%% of one core) for the disk-encryption "
              "fio cells");
  std::vector<std::string> headers = {"config"};
  for (SolutionKind k : solutions) headers.push_back(SolutionKindName(k));
  TablePrinter table(headers);
  for (const CellSpec& cell : FunctionCells()) {
    std::vector<std::string> row = {CellLabel(cell)};
    for (SolutionKind kind : solutions) {
      FioResult r = RunCell(kind, cell, opts);
      row.push_back(StrFormat("%.0f", r.total_cpu_pct()));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

// bench/pushdown_lookup: pushdown point lookups via classifier
// resubmission chains (DESIGN.md §15) vs the route-only baseline, plus
// the pre-decoded-VM interpreter microbenchmark.
//
// Three measurements, all gated (exit 2 on violation), written to
// BENCH_pushdown.json:
//   1. Guest-visible completions per lookup: exactly 1 with the
//      pushdown classifier vs `levels` reads for route-only.
//   2. Guest-visible lookup latency: the chain must beat the route-only
//      walk on every multi-level tree (it saves a vCQ post + interrupt +
//      guest resubmit per hop).
//   3. Host wall-clock per classifier invocation: the pre-decoded VM
//      must be >= 30% cheaper than the legacy interpreter, with
//      bit-identical verdict streams.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/strutil.h"
#include "core/classifier.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "functions/classifiers.h"
#include "kv/pushdown.h"
#include "mem/address_space.h"
#include "nvme/prp.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

namespace nvmetro::bench {
namespace {

using nvme::NvmeStatus;

struct Testbed {
  sim::Simulator sim;
  // Declared before the host: components cache registry pointers.
  obs::Observability obs;
  mem::IommuSpace dma{nullptr, 1ull << 40};
  std::unique_ptr<ssd::SimulatedController> phys;
  std::unique_ptr<virt::Vm> vm;
  std::unique_ptr<core::NvmetroHost> host;
  core::VirtualController* vc = nullptr;
  std::unique_ptr<virt::GuestNvmeDriver> driver;

  bool Build(const char* classifier_asm) {
    ssd::ControllerConfig cfg;
    cfg.capacity = 64 * MiB;
    phys = std::make_unique<ssd::SimulatedController>(&sim, &dma, cfg);
    virt::VmConfig vm_cfg;
    vm_cfg.memory_bytes = 16 * MiB;
    vm = std::make_unique<virt::Vm>(&sim, vm_cfg);
    core::NvmetroHostConfig host_cfg;
    host_cfg.obs = &obs;
    host = std::make_unique<core::NvmetroHost>(&sim, phys.get(), host_cfg);
    vc = host->CreateController(vm.get(), {.vm_id = 1});
    auto prog = ebpf::Assemble(classifier_asm);
    if (!prog.ok()) {
      std::fprintf(stderr, "assemble: %s\n", prog.status().ToString().c_str());
      return false;
    }
    Status st = vc->InstallClassifier(std::move(*prog));
    if (!st.ok()) {
      std::fprintf(stderr, "install: %s\n", st.ToString().c_str());
      return false;
    }
    host->Start();
    driver = std::make_unique<virt::GuestNvmeDriver>(vm.get(), vc);
    return driver->Init(1).ok();
  }

  /// One 4096-byte guest I/O; `key_arg` lands in cdw2/cdw3 (the lookup
  /// key for the pushdown classifier, ignored by everything else).
  /// Returns the completion's sim-time latency via *lat_ns.
  NvmeStatus BlockIo(u8 opcode, u64 lba, u64 key_arg, u8* data,
                     SimTime* lat_ns = nullptr) {
    mem::GuestMemory& gm = vm->memory();
    auto buf = gm.AllocPages(2);
    if (!buf.ok()) return 0xFFF;
    auto chain = nvme::BuildPrps(gm, *buf, kv::kPushdownBlockBytes);
    if (!chain.ok()) return 0xFFF;
    if (opcode == nvme::kCmdWrite) {
      (void)nvme::PrpWrite(gm, chain->prp1, chain->prp2,
                           kv::kPushdownBlockBytes, data);
    }
    nvme::Sqe sqe;
    sqe.opcode = opcode;
    sqe.nsid = 1;
    sqe.prp1 = chain->prp1;
    sqe.prp2 = chain->prp2;
    sqe.cdw2 = static_cast<u32>(key_arg);
    sqe.cdw3 = static_cast<u32>(key_arg >> 32);
    sqe.set_slba(lba);
    sqe.set_nlb0(kv::kPushdownLbasPerBlock - 1);
    NvmeStatus status = 0xFFF;
    SimTime start = sim.now(), done_at = start;
    driver->Submit(0, sqe, [&](NvmeStatus st, u32) {
      status = st;
      done_at = sim.now();
    });
    sim.Run();
    if (lat_ns) *lat_ns = done_at - start;
    if (status == nvme::kStatusSuccess && opcode == nvme::kCmdRead) {
      (void)nvme::PrpRead(gm, chain->prp1, chain->prp2,
                          kv::kPushdownBlockBytes, data);
    }
    nvme::FreePrpChain(gm, *chain);
    gm.FreePages(*buf, 2);
    return status;
  }

  bool LoadImage(const kv::PushdownIndex& idx) {
    for (u64 b = 0; b < idx.num_blocks(); b++) {
      std::vector<u8> block(
          idx.image.begin() + b * kv::kPushdownBlockBytes,
          idx.image.begin() + (b + 1) * kv::kPushdownBlockBytes);
      if (BlockIo(nvme::kCmdWrite, idx.base_lba + b * kv::kPushdownLbasPerBlock,
                  0, block.data()) != nvme::kStatusSuccess)
        return false;
    }
    return true;
  }
};

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct SizeResult {
  u64 keys = 0;
  u32 levels = 0;
  u64 blocks = 0;
  double push_med_ns = 0, route_med_ns = 0;
  double push_cpl_per_lookup = 0, route_cpl_per_lookup = 0;
  double resubmits_per_lookup = 0;
  bool values_ok = true;
};

bool WriteTextFile(const std::string& path, const std::string& text,
                   const char* what) {
  FILE* f = fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s '%s'\n", what, path.c_str());
    return false;
  }
  fwrite(text.data(), 1, text.size(), f);
  fclose(f);
  return true;
}

/// Builds an index over `nkeys` keys, loads it into two fresh testbeds
/// (pushdown classifier vs passthrough) and times `lookups` point
/// lookups through each. When `prom_path` / `perfetto_path` are
/// non-empty the pushdown testbed's telemetry is exported after the
/// lookups, so CI can validate the resubmission series
/// (check_telemetry --expect-resubmit).
bool RunSize(u64 nkeys, u32 lookups, const std::string& prom_path,
             const std::string& perfetto_path, SizeResult* out) {
  std::vector<std::pair<u64, u64>> kvs;
  kvs.reserve(nkeys);
  for (u64 i = 0; i < nkeys; i++) kvs.push_back({i * 7 + 3, i * 31 + 11});
  kv::PushdownIndex idx = kv::BuildPushdownIndex(kvs, /*base_lba=*/0);
  out->keys = nkeys;
  out->levels = idx.levels;
  out->blocks = idx.num_blocks();

  // --- pushdown: one guest read per lookup, chain below the guest ---
  {
    Testbed tb;
    if (!tb.Build(functions::PushdownLookupClassifierAsm())) return false;
    if (!tb.LoadImage(idx)) return false;
    std::vector<double> lats;
    u64 cpl0 = tb.vc->requests_completed();
    u64 rs0 = tb.vc->resubmissions();
    std::vector<u8> page(kv::kPushdownBlockBytes);
    for (u32 i = 0; i < lookups; i++) {
      u64 key = kvs[(i * 2654435761u) % kvs.size()].first;
      SimTime lat = 0;
      if (tb.BlockIo(nvme::kCmdRead, idx.root_lba(), key, page.data(),
                     &lat) != nvme::kStatusSuccess)
        return false;
      u64 value = 0;
      if (!kv::PushdownLeafLookup(page.data(), key, &value) ||
          value != (key - 3) / 7 * 31 + 11)
        out->values_ok = false;
      lats.push_back(static_cast<double>(lat));
    }
    out->push_med_ns = Median(lats);
    out->push_cpl_per_lookup =
        static_cast<double>(tb.vc->requests_completed() - cpl0) / lookups;
    out->resubmits_per_lookup =
        static_cast<double>(tb.vc->resubmissions() - rs0) / lookups;
    if (!prom_path.empty() &&
        !WriteTextFile(prom_path, obs::ExportPrometheusText(tb.obs.metrics()),
                       "Prometheus metrics"))
      return false;
    if (!perfetto_path.empty() &&
        !WriteTextFile(perfetto_path, obs::ExportPerfettoJson(tb.obs.trace()),
                       "Perfetto trace"))
      return false;
  }

  // --- route-only: the guest walks the tree itself ---
  {
    Testbed tb;
    if (!tb.Build(functions::PassthroughClassifierAsm())) return false;
    if (!tb.LoadImage(idx)) return false;
    std::vector<double> lats;
    u64 cpl0 = tb.vc->requests_completed();
    std::vector<u8> page(kv::kPushdownBlockBytes);
    for (u32 i = 0; i < lookups; i++) {
      u64 key = kvs[(i * 2654435761u) % kvs.size()].first;
      u64 lba = idx.root_lba();
      double total = 0;
      for (;;) {
        SimTime lat = 0;
        if (tb.BlockIo(nvme::kCmdRead, lba, 0, page.data(), &lat) !=
            nvme::kStatusSuccess)
          return false;
        total += static_cast<double>(lat);
        if (kv::PushdownLevel(page.data()) == 0) break;
        u32 slot = kv::PushdownSearchBlock(page.data(), key);
        lba = kv::PushdownEntryVal(page.data(), slot);
      }
      u64 value = 0;
      if (!kv::PushdownLeafLookup(page.data(), key, &value) ||
          value != (key - 3) / 7 * 31 + 11)
        out->values_ok = false;
      lats.push_back(total);
    }
    out->route_med_ns = Median(lats);
    out->route_cpl_per_lookup =
        static_cast<double>(tb.vc->requests_completed() - cpl0) / lookups;
  }
  return true;
}

struct MicroResult {
  double legacy_ns = 0, pre_decoded_ns = 0;
  double improvement_pct = 0;
  bool identical = true;
};

/// Host wall-clock per classifier invocation, legacy interpreter vs
/// pre-decoded VM, over a mixed VSQ/completion-hook ctx workload; also
/// checks the two verdict streams are bit-identical (verdict, simulated
/// cost, status, and the ctx fields the classifier writes).
bool RunMicro(u32 iters, MicroResult* out) {
  auto prog = functions::PushdownLookupClassifier();
  if (!prog.ok()) return false;
  auto legacy = core::ClassifierRuntime::Create(
      *prog, core::ClassifierRuntime::Options{.pre_decoded = false});
  auto fast = core::ClassifierRuntime::Create(
      *prog, core::ClassifierRuntime::Options{.pre_decoded = true});
  if (!legacy.ok() || !fast.ok()) return false;

  // One internal block (level 1) with a full fanout of entries.
  std::vector<std::pair<u64, u64>> entries;
  for (u32 i = 0; i < kv::kPushdownFanout; i++)
    entries.push_back({i * 100, 1000 + i * 8});
  kv::PushdownIndex blk = kv::BuildPushdownIndex(entries, 0);
  // BuildPushdownIndex makes a leaf; patch the level to 1 so the
  // classifier treats it as internal and runs the full search + rewrite.
  u64 word0 = (static_cast<u64>(kv::kPushdownMagic) << 32) | 1;
  memcpy(blk.image.data(), &word0, 8);

  std::vector<core::ClassifierCtx> work;
  for (u32 i = 0; i < 64; i++) {
    core::ClassifierCtx c{};
    if (i % 4 == 0) {
      c.current_hook = core::kHookVsq;
      c.opcode = nvme::kCmdRead;
      c.slba = i * 8;
      c.nlb = 8;
    } else {
      c.current_hook = core::kHookHcq;
      c.opcode = nvme::kCmdRead;
      c.slba = 0;
      c.nlb = 8;
      c.cmd_arg = (i * 37) % (kv::kPushdownFanout * 100);
      c.data = reinterpret_cast<u64>(blk.image.data());
      c.data_len = kv::kPushdownBlockBytes;
      c.chain_depth = 1;
    }
    c.nsid = 1;
    c.part_limit = 1 << 20;
    work.push_back(c);
  }

  // Bit-identity first (also warms both engines).
  for (const core::ClassifierCtx& t : work) {
    core::ClassifierCtx a = t, b = t;
    auto ra = (*legacy)->Run(&a);
    auto rb = (*fast)->Run(&b);
    if (ra.verdict != rb.verdict || ra.cpu_cost != rb.cpu_cost ||
        ra.status.ok() != rb.status.ok() || a.slba != b.slba ||
        a.nlb != b.nlb || a.state != b.state)
      out->identical = false;
  }

  auto time_engine = [&](core::ClassifierRuntime* rt) {
    auto t0 = std::chrono::steady_clock::now();
    u64 sink = 0;
    for (u32 it = 0; it < iters; it++) {
      for (const core::ClassifierCtx& t : work) {
        core::ClassifierCtx c = t;
        sink += rt->Run(&c).verdict;
      }
    }
    auto t1 = std::chrono::steady_clock::now();
    if (sink == 0x12345) std::fprintf(stderr, "!\n");  // keep `sink` live
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    return ns / (static_cast<double>(iters) * work.size());
  };

  out->legacy_ns = time_engine(legacy->get());
  out->pre_decoded_ns = time_engine(fast->get());
  out->improvement_pct =
      100.0 * (out->legacy_ns - out->pre_decoded_ns) / out->legacy_ns;
  return true;
}

bool WriteJson(const std::string& path, const std::vector<SizeResult>& sizes,
               const MicroResult& micro, bool ok) {
  FILE* f = fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"sizes\": [\n");
  for (usize i = 0; i < sizes.size(); i++) {
    const SizeResult& s = sizes[i];
    fprintf(f,
            "    {\"keys\": %llu, \"levels\": %u, \"blocks\": %llu,\n"
            "     \"pushdown_median_ns\": %.0f, \"routeonly_median_ns\": "
            "%.0f,\n"
            "     \"pushdown_completions_per_lookup\": %.2f,\n"
            "     \"routeonly_completions_per_lookup\": %.2f,\n"
            "     \"resubmits_per_lookup\": %.2f, \"values_ok\": %s}%s\n",
            static_cast<unsigned long long>(s.keys), s.levels,
            static_cast<unsigned long long>(s.blocks), s.push_med_ns,
            s.route_med_ns, s.push_cpl_per_lookup, s.route_cpl_per_lookup,
            s.resubmits_per_lookup, s.values_ok ? "true" : "false",
            i + 1 < sizes.size() ? "," : "");
  }
  fprintf(f,
          "  ],\n  \"micro\": {\"legacy_ns_per_invocation\": %.1f,\n"
          "            \"pre_decoded_ns_per_invocation\": %.1f,\n"
          "            \"improvement_pct\": %.1f, \"bit_identical\": %s},\n"
          "  \"ok\": %s\n}\n",
          micro.legacy_ns, micro.pre_decoded_ns, micro.improvement_pct,
          micro.identical ? "true" : "false", ok ? "true" : "false");
  fclose(f);
  return true;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.DefineBool("sweep", false, "run all tree sizes");
  flags.DefineBool("quick", false, "smaller trees, fewer lookups");
  flags.DefineBool("micro", true, "run the interpreter microbenchmark");
  flags.DefineInt("lookups", 32, "point lookups per tree size");
  flags.DefineInt("micro-iters", 2000, "microbenchmark repetitions");
  flags.DefineString("json", "BENCH_pushdown.json", "output path");
  flags.DefineString("prom", "",
                     "export the pushdown testbed's Prometheus metrics here");
  flags.DefineString("perfetto", "",
                     "export the pushdown testbed's Perfetto trace here");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  bool quick = flags.GetBool("quick");
  u32 lookups = static_cast<u32>(flags.GetInt("lookups"));
  if (quick) lookups = std::min(lookups, 8u);

  std::vector<u64> sizes;
  if (flags.GetBool("sweep")) {
    sizes = quick ? std::vector<u64>{64, 8'000}
                  : std::vector<u64>{64, 8'000, 300'000};
  } else {
    sizes = {8'000};
  }

  std::printf("pushdown_lookup: resubmission-chain point lookups "
              "(DESIGN.md S15)\n\n");
  std::printf("%10s %7s %7s %14s %14s %8s %8s %9s\n", "keys", "levels",
              "blocks", "pushdown(ns)", "routeonly(ns)", "cpl/lk",
              "ro-cpl", "resub/lk");

  std::vector<SizeResult> results;
  bool gate_cpl = true, gate_lat = true, gate_values = true;
  for (u64 n : sizes) {
    SizeResult r;
    if (!RunSize(n, lookups, flags.GetString("prom"),
                 flags.GetString("perfetto"), &r)) {
      std::fprintf(stderr, "size %llu failed\n",
                   static_cast<unsigned long long>(n));
      return 1;
    }
    std::printf("%10llu %7u %7llu %14.0f %14.0f %8.2f %8.2f %9.2f\n",
                static_cast<unsigned long long>(r.keys), r.levels,
                static_cast<unsigned long long>(r.blocks), r.push_med_ns,
                r.route_med_ns, r.push_cpl_per_lookup,
                r.route_cpl_per_lookup, r.resubmits_per_lookup);
    if (r.push_cpl_per_lookup != 1.0 ||
        r.route_cpl_per_lookup != static_cast<double>(r.levels))
      gate_cpl = false;
    if (r.resubmits_per_lookup != static_cast<double>(r.levels - 1))
      gate_cpl = false;
    if (r.levels > 1 && r.push_med_ns >= r.route_med_ns) gate_lat = false;
    if (!r.values_ok) gate_values = false;
    results.push_back(r);
  }

  MicroResult micro;
  bool gate_micro = true, gate_ident = true;
  if (flags.GetBool("micro")) {
    u32 iters = static_cast<u32>(flags.GetInt("micro-iters"));
    if (quick) iters = std::min(iters, 500u);
    if (!RunMicro(iters, &micro)) {
      std::fprintf(stderr, "micro failed\n");
      return 1;
    }
    std::printf("\nmicro: legacy %.1f ns/invocation, pre-decoded %.1f "
                "ns/invocation (%.1f%% better), bit-identical=%s\n",
                micro.legacy_ns, micro.pre_decoded_ns,
                micro.improvement_pct, micro.identical ? "yes" : "NO");
    gate_micro = micro.improvement_pct >= 30.0;
    gate_ident = micro.identical;
  }

  bool ok = gate_cpl && gate_lat && gate_values && gate_micro && gate_ident;
  WriteJson(flags.GetString("json"), results, micro, ok);
  std::printf("\ngates: completions=%s latency=%s values=%s micro>=30%%=%s "
              "bit-identical=%s\n",
              gate_cpl ? "ok" : "FAIL", gate_lat ? "ok" : "FAIL",
              gate_values ? "ok" : "FAIL", gate_micro ? "ok" : "FAIL",
              gate_ident ? "ok" : "FAIL");
  return ok ? 0 : 2;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

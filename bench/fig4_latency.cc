// Figure 4: request latency at a fixed rate of 10,000 IOPS, varying block
// sizes and queue depths; median latency per cell with the 99th
// percentile alongside (the paper's whiskers).
#include <cstdio>

#include "bench_common.h"

namespace nvmetro::bench {
namespace {

int Main(int argc, const char* const* argv) {
  Flags flags;
  DefineBenchFlags(&flags);
  flags.DefineInt("rate", 10'000, "fixed request rate (IOPS)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  BenchOptions opts = OptionsFromFlags(flags);
  opts.rate_iops = static_cast<double>(flags.GetInt("rate"));
  auto solutions = ParseSolutions(flags.GetString("solutions"),
                                  BasicSolutions());

  PrintHeader("Figure 4",
              StrFormat("median / p99 latency (usec) at a fixed rate of "
                        "%lld IOPS",
                        static_cast<long long>(flags.GetInt("rate"))));

  // Panels as in the figure: 512B at QD 1/4/32/128 (RR and RW), then
  // 16K and 128K at QD 1 and 32.
  struct Panel {
    u64 bs;
    u32 qd;
    FioMode mode;
  };
  std::vector<Panel> panels;
  for (u32 qd : {1u, 4u, 32u, 128u}) {
    panels.push_back({512, qd, FioMode::kRandRead});
    panels.push_back({512, qd, FioMode::kRandWrite});
  }
  for (u64 bs : {16 * KiB, 128 * KiB}) {
    for (u32 qd : {1u, 32u}) {
      panels.push_back({bs, qd, FioMode::kRandRead});
      panels.push_back({bs, qd, FioMode::kRandWrite});
    }
  }

  std::vector<std::string> headers = {"config"};
  for (SolutionKind k : solutions) headers.push_back(SolutionKindName(k));
  TablePrinter table(headers);
  for (const Panel& p : panels) {
    CellSpec cell{p.bs, p.qd, 1, p.mode};
    std::vector<std::string> row = {CellLabel(cell)};
    for (SolutionKind kind : solutions) {
      FioResult r = RunCell(kind, cell, opts);
      row.push_back(StrFormat("%.0f/%.0f",
                              static_cast<double>(r.lat.Median()) / 1000.0,
                              static_cast<double>(r.lat.P99()) / 1000.0));
      std::fflush(stdout);
    }
    table.AddRow(std::move(row));
  }
  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
    std::printf("\ncells are median/p99 in microseconds\n");
  }
  return 0;
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

#include "bench_common.h"

#include <cstdio>

#include "obs/export.h"

namespace nvmetro::bench {

void DefineBenchFlags(Flags* flags) {
  flags->DefineBool("quick", false, "shorter runs for smoke testing");
  flags->DefineInt("duration-ms", 200, "measurement window per cell (ms)");
  flags->DefineInt("warmup-ms", 40, "warmup before measuring (ms)");
  flags->DefineInt("seed", 7, "random seed");
  flags->DefineString("solutions", "",
                      "comma-separated solution filter (default: all)");
  flags->DefineBool("csv", false, "emit CSV instead of aligned tables");
  flags->DefineBool("metrics", false,
                    "dump the per-path metrics registry after each cell");
  flags->DefineBool("metrics-json", false,
                    "dump the metrics registry as one-line JSON");
  flags->DefineInt("trace", 0,
                   "dump the trace spans of the last N requests per cell");
  flags->DefineString("perfetto", "",
                      "write a Chrome/Perfetto trace-event JSON file");
  flags->DefineString("prom", "",
                      "write a Prometheus text-format metrics file");
  flags->DefineString("timeseries", "",
                      "write a telemetry time-series CSV file");
  flags->DefineInt("timeseries-interval-us", 1000,
                   "time-series sampling window (microseconds)");
}

BenchOptions OptionsFromFlags(const Flags& flags) {
  BenchOptions opts;
  opts.duration = static_cast<SimTime>(flags.GetInt("duration-ms")) * kMs;
  opts.warmup = static_cast<SimTime>(flags.GetInt("warmup-ms")) * kMs;
  opts.seed = static_cast<u64>(flags.GetInt("seed"));
  if (flags.GetBool("quick")) {
    opts.duration = 60 * kMs;
    opts.warmup = 20 * kMs;
  }
  opts.metrics = flags.GetBool("metrics");
  opts.metrics_json = flags.GetBool("metrics-json");
  opts.trace_requests = static_cast<u32>(flags.GetInt("trace"));
  opts.perfetto_path = flags.GetString("perfetto");
  opts.prom_path = flags.GetString("prom");
  opts.timeseries_path = flags.GetString("timeseries");
  opts.timeseries_interval =
      static_cast<SimTime>(flags.GetInt("timeseries-interval-us")) * kUs;
  return opts;
}

bool WantObservability(const BenchOptions& opts) {
  return opts.metrics || opts.metrics_json || opts.trace_requests > 0 ||
         !opts.perfetto_path.empty() || !opts.prom_path.empty() ||
         !opts.timeseries_path.empty();
}

bool WriteTelemetryFile(const std::string& path, const std::string& data,
                        const char* what) {
  if (path == "-") {
    std::fwrite(data.data(), 1, data.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s to '%s'\n", what, path.c_str());
    return false;
  }
  std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  return true;
}

TelemetrySession::TelemetrySession(sim::Simulator* sim,
                                   obs::Observability* obs,
                                   const BenchOptions& opts)
    : sim_(sim), obs_(obs), opts_(opts) {
  if (opts_.timeseries_path.empty()) return;
  obs::TimeSeries::Config cfg;
  cfg.interval_ns = opts_.timeseries_interval;
  timeseries_ = std::make_unique<obs::TimeSeries>(&obs_->metrics(), cfg);
  // The standard probe set: throughput, windowed tail latency, queue
  // depths, batching and fault state.
  timeseries_->AddCounterProbe("iops", "router.completed");
  timeseries_->AddCounterProbe("errors", "router.failed");
  timeseries_->AddHistogramProbe("lat", "router.latency_ns");
  timeseries_->AddHistogramProbe("batch", "router.batch_size");
  timeseries_->AddGaugeProbe("inflight", "router.inflight");
  timeseries_->AddGaugeProbe("ssd_inflight", "ssd.inflight");
  timeseries_->AddGaugeProbe("nsq_backlog", "uif.nsq.backlog");
  timeseries_->AddGaugeProbe("link_down", "fault.link_down");
  timeseries_->AddGaugeProbe("uif_wedged", "fault.uif_wedged");
  timeseries_->AddGaugeProbe("sq_full", "fault.sq_full");
}

TelemetrySession::~TelemetrySession() = default;

void TelemetrySession::Start(SimTime horizon) {
  if (!timeseries_) return;
  timeseries_->Start(sim_->now(), sim_->now() + horizon,
                     [this](SimTime at, std::function<void()> fn) {
                       sim_->ScheduleAt(at, std::move(fn));
                     });
}

void TelemetrySession::Finish() {
  if (!opts_.perfetto_path.empty()) {
    WriteTelemetryFile(opts_.perfetto_path,
                       obs::ExportPerfettoJson(obs_->trace()),
                       "Perfetto trace");
  }
  if (!opts_.prom_path.empty()) {
    WriteTelemetryFile(opts_.prom_path,
                       obs::ExportPrometheusText(obs_->metrics()),
                       "Prometheus metrics");
  }
  if (timeseries_ && !opts_.timeseries_path.empty()) {
    WriteTelemetryFile(opts_.timeseries_path, timeseries_->ToCsv(),
                       "time-series CSV");
  }
}

void DumpObservability(const obs::Observability& obs,
                       const BenchOptions& opts) {
  if (opts.metrics) {
    std::printf("--- metrics ---\n%s", obs.metrics().ToText().c_str());
  }
  if (opts.metrics_json) {
    std::printf("%s\n", obs.metrics().ToJson().c_str());
  }
  if (opts.trace_requests > 0) {
    const obs::TraceRecorder& tr = obs.trace();
    u64 last = tr.requests_opened();
    u64 first = last > opts.trace_requests ? last - opts.trace_requests + 1
                                           : u64{1};
    std::printf("--- traces (requests %llu..%llu) ---\n",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(last));
    for (u64 id = first; id <= last; id++) {
      std::printf("req %llu: %s\n%s",
                  static_cast<unsigned long long>(id),
                  tr.PathString(id).c_str(), tr.DumpRequest(id).c_str());
    }
  }
}

FioResult RunCell(SolutionKind kind, const CellSpec& cell,
                  const BenchOptions& opts) {
  // Declared before the testbed/bundle: components cache pointers into
  // the registry, so the sink must outlive them.
  obs::Observability obs;
  const bool want_obs = WantObservability(opts);
  ssd::ControllerConfig drive_cfg = Testbed::DefaultDrive();
  if (want_obs) drive_cfg.obs = &obs;
  Testbed tb(drive_cfg);
  SolutionParams params;
  params.seed = opts.seed;
  params.num_vms = opts.num_vms;
  if (want_obs) params.obs = &obs;
  auto bundle = SolutionBundle::Create(&tb, kind, params);
  if (!bundle) {
    FioResult r;
    r.solution = SolutionKindName(kind);
    return r;
  }
  FioConfig cfg;
  cfg.block_size = cell.bs;
  cfg.queue_depth = cell.qd;
  cfg.num_jobs = cell.jobs;
  cfg.mode = cell.mode;
  cfg.rate_iops = opts.rate_iops;
  cfg.random_region = opts.random_region;
  cfg.seq_region_per_job = opts.seq_region_per_job;
  cfg.warmup = opts.warmup;
  cfg.duration = opts.duration;
  cfg.seed = opts.seed;

  TelemetrySession telemetry(&tb.sim, &obs, opts);
  if (want_obs) {
    // Horizon with drain slack so the tail windows are still sampled.
    telemetry.Start(opts.warmup + opts.duration + 40 * kMs);
  }

  if (opts.num_vms == 1) {
    FioResult r = Fio::Run(&tb.sim, bundle->vm_solution(0), cfg);
    if (want_obs) {
      telemetry.Finish();
      DumpObservability(obs, opts);
    }
    return r;
  }
  // Multi-VM: aggregate.
  std::vector<baselines::StorageSolution*> sols;
  for (u32 i = 0; i < bundle->num_vms(); i++) {
    sols.push_back(bundle->vm_solution(i));
  }
  auto results = Fio::RunMulti(&tb.sim, sols, cfg);
  FioResult agg;
  agg.solution = results[0].solution;
  for (const auto& r : results) {
    agg.iops += r.iops;
    agg.mbps += r.mbps;
    agg.ops += r.ops;
    agg.errors += r.errors;
    agg.lat.Merge(r.lat);
    agg.read_lat.Merge(r.read_lat);
    agg.write_lat.Merge(r.write_lat);
    agg.guest_cpu_pct += r.guest_cpu_pct;
  }
  agg.host_cpu_pct = results[0].host_cpu_pct;  // host agents are shared
  if (want_obs) {
    telemetry.Finish();
    DumpObservability(obs, opts);
  }
  return agg;
}

const std::vector<SolutionKind>& BasicSolutions() {
  static const std::vector<SolutionKind> kAll = {
      SolutionKind::kNvmetro,    SolutionKind::kMdev,
      SolutionKind::kPassthrough, SolutionKind::kVhostScsi,
      SolutionKind::kQemu,       SolutionKind::kSpdk,
  };
  return kAll;
}

std::vector<SolutionKind> ParseSolutions(
    const std::string& csv, const std::vector<SolutionKind>& def) {
  if (csv.empty()) return def;
  std::vector<SolutionKind> out;
  for (const std::string& piece : StrSplit(csv, ',', true)) {
    static const std::vector<SolutionKind> kAllKinds = {
        SolutionKind::kNvmetro,
        SolutionKind::kMdev,
        SolutionKind::kPassthrough,
        SolutionKind::kVhostScsi,
        SolutionKind::kQemu,
        SolutionKind::kSpdk,
        SolutionKind::kNvmetroEncryption,
        SolutionKind::kNvmetroSgx,
        SolutionKind::kDmCrypt,
        SolutionKind::kNvmetroReplication,
        SolutionKind::kDmMirror,
    };
    bool found = false;
    for (SolutionKind k : kAllKinds) {
      if (piece == SolutionKindName(k)) {
        out.push_back(k);
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "unknown solution '%s'\n", piece.c_str());
    }
  }
  return out.empty() ? def : out;
}

std::string CellLabel(const CellSpec& cell) {
  return StrFormat("%s %s qd=%u jobs=%u",
                   FormatBlockSize(cell.bs).c_str(),
                   workload::FioModeName(cell.mode), cell.qd, cell.jobs);
}

std::vector<CellSpec> Fig3Cells() {
  std::vector<CellSpec> cells;
  struct Panel {
    u32 qd;
    u32 jobs;
  };
  const Panel small_panels[] = {{1, 1}, {128, 1}, {128, 4}};
  const Panel big_panels[] = {{1, 1}, {128, 1}, {1, 4}, {128, 4}};
  for (const auto& p : small_panels) {
    for (FioMode m :
         {FioMode::kRandRead, FioMode::kRandWrite, FioMode::kRandRW}) {
      cells.push_back({512, p.qd, p.jobs, m});
    }
  }
  for (u64 bs : {16 * KiB, 128 * KiB}) {
    for (const auto& p : big_panels) {
      for (FioMode m :
           {FioMode::kSeqRead, FioMode::kSeqWrite, FioMode::kSeqRW}) {
        cells.push_back({bs, p.qd, p.jobs, m});
      }
    }
  }
  return cells;
}

std::vector<CellSpec> FunctionCells() {
  std::vector<CellSpec> cells;
  struct Panel {
    u32 qd;
    u32 jobs;
  };
  for (Panel p : {Panel{1, 1}, Panel{128, 4}}) {
    for (u64 bs : {u64{512}, 16 * KiB, 128 * KiB}) {
      std::vector<FioMode> modes =
          bs == 512 ? std::vector<FioMode>{FioMode::kRandRead,
                                           FioMode::kRandWrite,
                                           FioMode::kRandRW}
                    : std::vector<FioMode>{FioMode::kSeqRead,
                                           FioMode::kSeqWrite,
                                           FioMode::kSeqRW};
      for (FioMode m : modes) cells.push_back({bs, p.qd, p.jobs, m});
    }
  }
  return cells;
}

void PrintHeader(const std::string& title, const std::string& what) {
  std::printf("=== %s ===\n%s\n\n", title.c_str(), what.c_str());
}

}  // namespace nvmetro::bench

#include "fsx/flatfs.h"
#include "kv/minikv.h"
#include "workload/solution_fs.h"
#include "workload/ycsb.h"

namespace nvmetro::bench::ycsb_support {

void DefineYcsbFlags(Flags* flags) {
  flags->DefineInt("records", 40'000,
                   "records per DB instance (paper: 3M, scaled)");
  flags->DefineInt("ops", 15'000, "operations per job (paper: 1M, scaled)");
  flags->DefineInt("value-bytes", 1'000, "record payload size");
}

YcsbBenchOptions YcsbOptionsFromFlags(const Flags& flags) {
  YcsbBenchOptions opts;
  opts.records = static_cast<u64>(flags.GetInt("records"));
  opts.ops = static_cast<u64>(flags.GetInt("ops"));
  opts.value_bytes = static_cast<u32>(flags.GetInt("value-bytes"));
  opts.seed = static_cast<u64>(flags.GetInt("seed"));
  opts.metrics = flags.GetBool("metrics");
  opts.metrics_json = flags.GetBool("metrics-json");
  opts.trace_requests = static_cast<u32>(flags.GetInt("trace"));
  if (flags.GetBool("quick")) {
    opts.records = 5'000;
    opts.ops = 2'000;
  }
  return opts;
}

YcsbCellResult RunYcsbCell(SolutionKind kind, char workload, u32 jobs,
                           const YcsbBenchOptions& opts) {
  YcsbCellResult out;
  BenchOptions dump_opts;
  dump_opts.metrics = opts.metrics;
  dump_opts.metrics_json = opts.metrics_json;
  dump_opts.trace_requests = opts.trace_requests;
  const bool want_obs = WantObservability(dump_opts);
  obs::Observability obs;
  ssd::ControllerConfig drive_cfg = Testbed::DefaultDrive();
  if (want_obs) drive_cfg.obs = &obs;
  Testbed tb(drive_cfg);
  SolutionParams params;
  params.seed = opts.seed;
  if (want_obs) params.obs = &obs;
  auto bundle = SolutionBundle::Create(&tb, kind, params);
  if (!bundle) return out;
  baselines::StorageSolution* sol = bundle->vm_solution(0);

  struct Instance {
    std::unique_ptr<workload::SolutionFsBackend> backend;
    std::unique_ptr<fsx::FlatFs> fs;
    std::unique_ptr<kv::MiniKv> db;
    workload::YcsbResult result;
    bool done = false;
  };
  std::vector<std::unique_ptr<Instance>> instances;
  u64 region = sol->capacity_bytes() / std::max<u32>(1, jobs);

  workload::YcsbConfig cfg;
  cfg.workload = workload;
  cfg.record_count = opts.records;
  cfg.op_count = opts.ops;
  cfg.value_bytes = opts.value_bytes;
  cfg.seed = opts.seed;

  // Build + format + mount + open + load each instance.
  for (u32 j = 0; j < jobs; j++) {
    auto inst = std::make_unique<Instance>();
    inst->backend = std::make_unique<workload::SolutionFsBackend>(
        sol, j, static_cast<u64>(j) * region, region);
    bool step_ok = false;
    fsx::FlatFs::Format(inst->backend.get(), [&](Status st) {
      step_ok = st.ok();
    });
    tb.sim.Run();
    if (!step_ok) return out;
    step_ok = false;
    fsx::FlatFs::Mount(inst->backend.get(),
                       [&](Result<std::unique_ptr<fsx::FlatFs>> r) {
                         if (r.ok()) {
                           inst->fs = std::move(*r);
                           step_ok = true;
                         }
                       });
    tb.sim.Run();
    if (!step_ok) return out;
    kv::MiniKvOptions kv_opts;
    kv_opts.cpu = sol->vm()->vcpu(j % sol->vm()->num_vcpus());
    step_ok = false;
    kv::MiniKv::Open(&tb.sim, inst->fs.get(), kv_opts,
                     [&](Result<std::unique_ptr<kv::MiniKv>> r) {
                       if (r.ok()) {
                         inst->db = std::move(*r);
                         step_ok = true;
                       }
                     });
    tb.sim.Run();
    if (!step_ok) return out;
    instances.push_back(std::move(inst));
  }
  // Load phase: all instances in parallel.
  u32 loaded = 0;
  for (auto& inst : instances) {
    workload::Ycsb::Load(inst->db.get(), cfg, [&](Status st) {
      if (st.ok()) loaded++;
    });
  }
  tb.sim.Run();
  if (loaded != jobs) return out;

  // Run phase: concurrent closed-loop clients.
  for (u32 j = 0; j < jobs; j++) {
    Instance* inst = instances[j].get();
    workload::YcsbConfig jcfg = cfg;
    jcfg.seed = cfg.seed + j * 131;
    workload::Ycsb::Run(&tb.sim, inst->db.get(),
                        sol->vm()->vcpu(j % sol->vm()->num_vcpus()), jcfg,
                        [inst](workload::YcsbResult r) {
                          inst->result = std::move(r);
                          inst->done = true;
                        });
  }
  tb.sim.Run();
  out.ok = true;
  for (auto& inst : instances) {
    if (!inst->done) {
      out.ok = false;
      continue;
    }
    out.total_ops_per_sec += inst->result.ops_per_sec;
    out.failures += inst->result.failures;
  }
  if (want_obs) DumpObservability(obs, dump_opts);
  return out;
}

}  // namespace nvmetro::bench::ycsb_support

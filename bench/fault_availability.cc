// Availability under injected failures.
//
// Default (timeline) mode: NVMetro replication under a steady 4K write
// load while the NVMe-oF link to the secondary drops and heals. Reports
// a per-millisecond timeline — completions, mean latency, degraded
// writes, the dirty-region backlog and resync progress — showing the
// guest's view of a replica outage: no stall, a degraded window, then a
// background resync back to a clean mirror.
//
// --sweep mode (CI fault-matrix): runs a seeded random FaultPlan against
// every solution stack and checks the recovery invariants the test suite
// pins — every request reaches a guest-visible outcome, the router's
// per-path books balance (sends == completions + aborts + timeouts) and
// no trace span stays open. Exits non-zero on any violation.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "fault/fault.h"
#include "obs/slo.h"

namespace nvmetro::bench {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using functions::ReplicatorUif;

BenchOptions DumpOptionsFromFlags(const Flags& flags) {
  BenchOptions opts;
  opts.metrics = flags.GetBool("metrics");
  opts.metrics_json = flags.GetBool("metrics-json");
  opts.trace_requests = static_cast<u32>(flags.GetInt("trace"));
  opts.perfetto_path = flags.GetString("perfetto");
  opts.prom_path = flags.GetString("prom");
  opts.timeseries_path = flags.GetString("timeseries");
  opts.timeseries_interval =
      static_cast<SimTime>(flags.GetInt("timeseries-interval-us")) * kUs;
  return opts;
}

/// Wraps Simulator::ScheduleAt for the obs-side samplers (the obs
/// library is a leaf and cannot link the simulator itself).
obs::TelemetryScheduler SimScheduler(sim::Simulator* sim) {
  return [sim](SimTime at, std::function<void()> fn) {
    sim->ScheduleAt(at, std::move(fn));
  };
}

int RunTimeline(const Flags& flags) {
  const SimTime duration = flags.GetInt("duration-ms") * kMs;
  const SimTime interval = flags.GetInt("interval-us") * kUs;
  const SimTime down_at = flags.GetInt("down-at-ms") * kMs;
  const SimTime down_for = flags.GetInt("down-ms") * kMs;
  const u64 bucket = 1 * kMs;
  const u64 buckets = duration / bucket;
  const u64 bs = 4096;

  obs::Observability obs;
  ssd::ControllerConfig drive = Testbed::DefaultDrive();
  drive.obs = &obs;
  Testbed tb(drive);
  FaultInjector injector(&tb.sim, &obs);
  SolutionParams params;
  params.obs = &obs;
  params.fault = &injector;
  auto bundle = SolutionBundle::Create(
      &tb, SolutionKind::kNvmetroReplication, params);
  if (!bundle) {
    std::fprintf(stderr, "failed to build replication stack\n");
    return 1;
  }
  FaultPlan plan;
  plan.faults.push_back({.kind = FaultKind::kLinkDown,
                         .at_ns = down_at,
                         .duration_ns = down_for});
  injector.Arm(plan);

  // SLO watchdog: guest-visible write failures breach immediately; the
  // breach timeline must agree with the availability check below (a
  // replica outage handled by degraded mode is NOT an outage).
  obs::SloWatchdog slo(&obs.metrics(), &obs.trace(), {.interval_ns = 1 * kMs});
  slo.AddErrorRateTarget("write_errors", "router.failed", "router.requests",
                         0.0);
  const SimTime horizon = duration + 40 * kMs;  // drain slack
  slo.Start(0, horizon, SimScheduler(&tb.sim));

  BenchOptions dump = DumpOptionsFromFlags(flags);
  TelemetrySession telemetry(&tb.sim, &obs, dump);
  telemetry.Start(horizon);

  baselines::StorageSolution* sol = bundle->vm_solution(0);
  ReplicatorUif* repl = bundle->replicator(0);

  struct Bucket {
    u64 completions = 0;
    u64 lat_sum = 0;
    u64 degraded_writes = 0;  // snapshot at bucket end (cumulative)
    u64 dirty_sectors = 0;    // snapshot at bucket end
    u64 resynced = 0;         // snapshot at bucket end (cumulative)
  };
  std::vector<Bucket> timeline(buckets);

  // Shared time-to-recover definition (bench_common): first good IO
  // completing after the link heals. Any successful completion counts —
  // this is the availability view, not the latency view.
  RecoveryTracker recovery(down_at + down_for, ~0ull);
  u64 submitted = 0, completed = 0, errors = 0;
  for (SimTime t = 0; t < duration; t += interval) {
    tb.sim.ScheduleAfter(t, [&, t] {
      u64 off = (submitted * bs) % (8 * MiB);
      submitted++;
      sol->Submit(submitted % 4, baselines::StorageSolution::Op::kWrite,
                  off, bs, nullptr, [&, t](Status st) {
                    completed++;
                    if (!st.ok()) errors++;
                    recovery.OnCompletion(tb.sim.now(), st.ok(),
                                          tb.sim.now() - t);
                    u64 b = tb.sim.now() / bucket;
                    if (b < buckets) {
                      timeline[b].completions++;
                      timeline[b].lat_sum += tb.sim.now() - t;
                    }
                  });
    });
  }
  for (u64 b = 0; b < buckets; b++) {
    tb.sim.ScheduleAfter((b + 1) * bucket - 1, [&, b] {
      timeline[b].degraded_writes = repl->degraded_writes();
      timeline[b].dirty_sectors = repl->dirty_sectors();
      timeline[b].resynced = repl->resynced_sectors();
    });
  }
  tb.sim.Run();

  PrintHeader("Fault availability",
              StrFormat("replica outage at %llums for %llums, 4K writes "
                        "every %lluus",
                        (unsigned long long)(down_at / kMs),
                        (unsigned long long)(down_for / kMs),
                        (unsigned long long)(interval / kUs)));
  TablePrinter table({"t_ms", "kIOPS", "lat_us", "degraded_writes",
                      "dirty_sectors", "resynced_lbas"});
  for (u64 b = 0; b < buckets; b++) {
    const Bucket& bk = timeline[b];
    double kiops = bk.completions / (bucket / 1e9) / 1000.0;
    double lat_us =
        bk.completions ? bk.lat_sum / 1000.0 / bk.completions : 0.0;
    table.AddRow({StrFormat("%llu", (unsigned long long)b),
                  StrFormat("%.1f", kiops), StrFormat("%.1f", lat_us),
                  StrFormat("%llu", (unsigned long long)bk.degraded_writes),
                  StrFormat("%llu", (unsigned long long)bk.dirty_sectors),
                  StrFormat("%llu", (unsigned long long)bk.resynced)});
  }
  if (flags.GetBool("csv")) {
    std::fputs(table.RenderCsv().c_str(), stdout);
  } else {
    table.Print();
  }
  std::printf(
      "writes: %llu submitted, %llu completed, %llu errors; "
      "replicated=%llu failed=%llu degraded=%llu resynced_sectors=%llu "
      "end_state=%s\n",
      (unsigned long long)submitted, (unsigned long long)completed,
      (unsigned long long)errors,
      (unsigned long long)repl->writes_replicated(),
      (unsigned long long)repl->writes_failed(),
      (unsigned long long)repl->degraded_writes(),
      (unsigned long long)repl->resynced_sectors(),
      repl->degraded() ? "DEGRADED" : "clean");
  std::printf("slo: %llu windows, %llu breached\n",
              (unsigned long long)slo.windows_evaluated(),
              (unsigned long long)slo.breach_windows("write_errors"));
  std::printf("time_to_recover: %lld ns (fault clear %llums, first good IO "
              "%.3fms)\n",
              (long long)recovery.time_to_recover_ns(),
              (unsigned long long)(recovery.clear_ns() / kMs),
              recovery.first_good_ns() / 1e6);

  const std::string json_path = flags.GetString("fault-json");
  if (!json_path.empty()) {
    std::string json = StrFormat(
        "{\"bench\":\"fault_availability\",\"down_at_ms\":%llu,"
        "\"down_ms\":%llu,\"duration_ms\":%llu,\"submitted\":%llu,"
        "\"completed\":%llu,\"errors\":%llu,\"degraded_writes\":%llu,"
        "\"resynced_sectors\":%llu,\"slo_breach_windows\":%llu,"
        "\"recovered\":%s,\"fault_clear_ns\":%llu,\"first_good_ns\":%llu,"
        "\"time_to_recover_ns\":%lld}\n",
        (unsigned long long)(down_at / kMs),
        (unsigned long long)(down_for / kMs),
        (unsigned long long)(duration / kMs), (unsigned long long)submitted,
        (unsigned long long)completed, (unsigned long long)errors,
        (unsigned long long)repl->degraded_writes(),
        (unsigned long long)repl->resynced_sectors(),
        (unsigned long long)slo.breach_windows("write_errors"),
        recovery.recovered() ? "true" : "false",
        (unsigned long long)recovery.clear_ns(),
        (unsigned long long)recovery.first_good_ns(),
        (long long)recovery.time_to_recover_ns());
    if (WriteTelemetryFile(json_path, json, "fault availability JSON")) {
      std::printf("wrote %s\n", json_path.c_str());
    }
  }

  telemetry.Finish();
  if (WantObservability(dump)) DumpObservability(obs, dump);

  // The run itself is an availability check: every write must complete
  // and the mirror must be clean again by the end.
  if (completed != submitted || errors || repl->degraded() ||
      repl->dirty_sectors() != 0 || !recovery.recovered()) {
    std::fprintf(stderr, "FAIL: outage was guest-visible or unresolved\n");
    return 1;
  }
  // The watchdog's view must match: guest-visible errors iff breaches.
  if ((slo.breach_windows("write_errors") > 0) != (errors > 0)) {
    std::fprintf(stderr,
                 "FAIL: SLO breach timeline disagrees with the outage "
                 "check (%llu breach windows, %llu errors)\n",
                 (unsigned long long)slo.breach_windows("write_errors"),
                 (unsigned long long)errors);
    return 1;
  }
  return 0;
}

bool RouterKind(SolutionKind kind) {
  switch (kind) {
    case SolutionKind::kNvmetro:
    case SolutionKind::kMdev:
    case SolutionKind::kNvmetroEncryption:
    case SolutionKind::kNvmetroSgx:
    case SolutionKind::kNvmetroReplication:
      return true;
    default:
      return false;
  }
}

/// One random-plan run against one stack; returns true when every
/// recovery invariant held.
bool SweepOne(SolutionKind kind, u64 seed, const BenchOptions& dump) {
  obs::Observability obs;
  ssd::ControllerConfig drive = Testbed::DefaultDrive();
  drive.obs = &obs;
  Testbed tb(drive);
  FaultInjector injector(&tb.sim, &obs);
  SolutionParams params;
  params.obs = &obs;
  params.fault = &injector;
  fault::FaultCaps caps;
  if (RouterKind(kind)) {
    params.router_costs.request_timeout_ns = 5 * kMs;
    params.router_costs.max_retries = 3;
    params.router_costs.uif_liveness_timeout_ns = 300 * kUs;
    params.router_costs.uif_failover_to_kernel =
        kind == SolutionKind::kNvmetroReplication;
  } else {
    caps.stalls = false;  // no host timeout machinery: a stall hangs
    caps.wedge = false;   // no UIF process to wedge
  }
  auto bundle = SolutionBundle::Create(&tb, kind, params);
  if (!bundle) {
    std::fprintf(stderr, "%s: failed to build\n", SolutionKindName(kind));
    return false;
  }
  FaultPlan plan = FaultPlan::Random(seed, caps);
  injector.Arm(plan);
  SimTime faults_clear = 0;
  for (const auto& f : plan.faults) {
    faults_clear = std::max(faults_clear, f.at_ns + f.duration_ns);
  }
  // Availability view of recovery: first successful completion after the
  // last fault clears (same definition as the timeline JSON field).
  RecoveryTracker recovery(faults_clear, ~0ull);

  // SLO watchdog armed alongside the invariant checker: with a zero
  // error-rate budget and windows telescoping over the whole run, it
  // must breach iff any request reached the guest with an error.
  obs::SloWatchdog slo(&obs.metrics(), &obs.trace(), {.interval_ns = 1 * kMs});
  if (RouterKind(kind)) {
    slo.AddErrorRateTarget("errors", "router.failed", "router.requests", 0.0);
    slo.Start(0, 40 * kMs, SimScheduler(&tb.sim));
  }

  baselines::StorageSolution* sol = bundle->vm_solution(0);
  const u64 ops = 64;
  u64 done = 0, failed = 0;
  for (u64 i = 0; i < ops; i++) {
    tb.sim.ScheduleAfter(i * 150 * kUs, [&, i] {
      using Op = baselines::StorageSolution::Op;
      Op op = (i % 7 == 6) ? Op::kFlush : (i % 2) ? Op::kRead : Op::kWrite;
      u64 len = (op == Op::kFlush) ? 0 : 4096;
      sol->Submit(i % 4, op, (i % 32) * 4096, len, nullptr, [&](Status st) {
        done++;
        if (!st.ok()) failed++;
        recovery.OnCompletion(tb.sim.now(), st.ok(), 0);
      });
    });
  }
  tb.sim.Run();

  bool ok = done == ops;
  const obs::MetricsRegistry& m = obs.metrics();
  if (RouterKind(kind)) {
    ok = ok && m.CounterValue("router.requests") ==
                   m.CounterValue("router.completed") +
                       m.CounterValue("router.failed");
    for (const char* path : {"fast", "notify", "kernel"}) {
      std::string base = std::string("router.") + path;
      ok = ok && m.CounterValue(base + ".sends") ==
                     m.CounterValue(base + ".completions") +
                         m.CounterValue(base + ".aborts") +
                         m.CounterValue(base + ".timeouts");
    }
  }
  ok = ok && obs.trace().open_requests() == 0;
  u64 breach_windows = 0;
  if (RouterKind(kind)) {
    // Breach-timeline agreement: no new false positives or negatives
    // relative to the router's own failure accounting.
    breach_windows = slo.breach_windows("errors");
    ok = ok && (breach_windows > 0) == (m.CounterValue("router.failed") > 0);
  }
  std::printf(
      "%-20s seed=%-3llu %-4s done=%llu/%llu failed=%llu slo_breaches=%llu"
      " ttr_ns=%lld  %s\n",
      SolutionKindName(kind), (unsigned long long)seed, ok ? "ok" : "FAIL",
      (unsigned long long)done, (unsigned long long)ops,
      (unsigned long long)failed, (unsigned long long)breach_windows,
      (long long)recovery.time_to_recover_ns(), plan.ToString().c_str());
  if (WantObservability(dump)) DumpObservability(obs, dump);
  return ok;
}

int RunSweep(const Flags& flags) {
  const SolutionKind kKinds[] = {
      SolutionKind::kNvmetro,       SolutionKind::kMdev,
      SolutionKind::kPassthrough,   SolutionKind::kVhostScsi,
      SolutionKind::kQemu,          SolutionKind::kSpdk,
      SolutionKind::kNvmetroEncryption, SolutionKind::kNvmetroSgx,
      SolutionKind::kDmCrypt,       SolutionKind::kNvmetroReplication,
      SolutionKind::kDmMirror};
  const u64 seed = static_cast<u64>(flags.GetInt("seed"));
  BenchOptions dump = DumpOptionsFromFlags(flags);
  int failures = 0;
  for (SolutionKind kind : kKinds) {
    if (!SweepOne(kind, seed, dump)) failures++;
  }
  if (failures) {
    std::fprintf(stderr, "fault sweep: %d stack(s) violated invariants\n",
                 failures);
    return 1;
  }
  std::printf("fault sweep: all stacks clean (seed=%llu)\n",
              (unsigned long long)seed);
  return 0;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.DefineBool("sweep", false,
                   "run a random fault plan against every stack and check "
                   "recovery invariants (CI fault-matrix mode)");
  flags.DefineInt("seed", 1, "fault plan seed (--sweep)");
  flags.DefineInt("duration-ms", 12, "timeline length");
  flags.DefineInt("interval-us", 20, "one 4K write per interval");
  flags.DefineInt("down-at-ms", 3, "link outage start");
  flags.DefineInt("down-ms", 3, "link outage duration");
  flags.DefineString("fault-json", "BENCH_fault.json",
                     "timeline-mode result JSON with the first-class "
                     "time_to_recover_ns field ('' = skip)");
  flags.DefineBool("csv", false, "CSV output");
  flags.DefineBool("metrics", false, "dump the metrics registry");
  flags.DefineBool("metrics-json", false, "dump metrics as JSON");
  flags.DefineInt("trace", 0, "dump the last N request traces");
  flags.DefineString("perfetto", "",
                     "write a Chrome/Perfetto trace-event JSON file");
  flags.DefineString("prom", "",
                     "write a Prometheus text-format metrics file");
  flags.DefineString("timeseries", "",
                     "write a telemetry time-series CSV file");
  flags.DefineInt("timeseries-interval-us", 1000,
                  "time-series sampling window (microseconds)");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return flags.GetBool("sweep") ? RunSweep(flags) : RunTimeline(flags);
}

}  // namespace
}  // namespace nvmetro::bench

int main(int argc, char** argv) { return nvmetro::bench::Main(argc, argv); }

// KV-SSD offload through NVMetro (paper §III-B): the router does not
// interpret commands — the classifier does. So adopting a whole new
// command set (here a simplified KV SSD: Store/Retrieve/Delete/Exist
// with 16-byte keys) needs zero router changes: swap in a classifier
// that recognizes the vendor opcodes and routes them untranslated, and
// the guest talks key-value to the drive through the same virtual NVMe
// controller that serves its block I/O.
//
//   $ ./build/examples/kv_offload
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/router.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

using namespace nvmetro;

namespace {

nvme::KvKey Key(const char* s) {
  nvme::KvKey k{};
  memcpy(k.bytes, s, strlen(s));
  return k;
}

}  // namespace

int main() {
  sim::Simulator sim;
  mem::IommuSpace dma(nullptr, 1ull << 40);
  ssd::ControllerConfig cfg;
  cfg.capacity = 64 * MiB;
  cfg.kv_nsid = 1;  // the drive speaks KV on namespace 1
  ssd::SimulatedController drive(&sim, &dma, cfg);

  virt::Vm vm(&sim, {.name = "vm", .memory_bytes = 16 * MiB, .vcpus = 1});
  core::NvmetroHost host(&sim, &drive);
  auto* vc = host.CreateController(&vm, {.vm_id = 1});
  // The only NVMetro-side change for the new command set:
  if (!vc->InstallClassifier(*functions::KvPassClassifier()).ok()) return 1;
  host.Start();
  virt::GuestNvmeDriver driver(&vm, vc);
  if (!driver.Init(1).ok()) return 1;

  mem::GuestMemory& gm = vm.memory();
  u64 buf = *gm.AllocPages(1);
  u64 out = *gm.AllocPages(1);

  auto submit = [&](nvme::Sqe sqe, u32* result = nullptr) {
    nvme::NvmeStatus status = 0xFFF;
    driver.Submit(0, sqe, [&](nvme::NvmeStatus st, u32 r) {
      status = st;
      if (result) *result = r;
    });
    sim.Run();
    return status;
  };

  // Store three values under keys; no LBAs anywhere.
  const char* pairs[][2] = {{"user:42", "alice"},
                            {"user:43", "bob"},
                            {"cfg:mode", "replicated"}};
  for (auto& [k, v] : pairs) {
    if (!gm.Write(buf, v, strlen(v) + 1).ok()) return 1;
    nvme::NvmeStatus st = submit(
        nvme::MakeKvStore(1, Key(k), static_cast<u32>(strlen(v) + 1), buf,
                          0));
    std::printf("STORE %-9s = %-11s -> %s\n", k, v,
                nvme::StatusOk(st) ? "ok" : "error");
    if (!nvme::StatusOk(st)) return 1;
  }

  // Retrieve one back.
  u32 len = 0;
  nvme::NvmeStatus st =
      submit(nvme::MakeKvRetrieve(1, Key("user:42"), 4096, out, 0), &len);
  char got[64] = {};
  if (!nvme::StatusOk(st) || !gm.Read(out, got, len).ok()) return 1;
  std::printf("RETRIEVE user:42     -> \"%s\" (%u bytes)\n", got, len);

  // Exist / Delete / Exist.
  bool existed = nvme::StatusOk(submit(nvme::MakeKvExist(1, Key("user:43"))));
  submit(nvme::MakeKvDelete(1, Key("user:43")));
  bool still = nvme::StatusOk(submit(nvme::MakeKvExist(1, Key("user:43"))));
  std::printf("EXIST user:43 before delete: %s, after: %s\n",
              existed ? "yes" : "no", still ? "yes" : "no");

  std::printf("drive now holds %llu KV entries; router untouched\n",
              static_cast<unsigned long long>(drive.kv_entry_count()));
  bool pass = strcmp(got, "alice") == 0 && existed && !still &&
              drive.kv_entry_count() == 2;
  std::printf("%s\n", pass ? "kv offload works end-to-end" : "FAILED");
  return pass ? 0 : 1;
}

// Writing your own I/O classifier: a quality-of-service policy in ~20
// lines of eBPF assembly, installed (and hot-swapped) at runtime —
// NVMetro's flexibility criterion (paper §III-B). Also shows the verifier
// rejecting an unsafe program.
//
// The policy: LBAs below a threshold are a "protected system area" —
// writes there are denied; everything else passes to the fast path. The
// per-request `state` field and a map are available for richer policies.
//
//   $ ./build/examples/custom_classifier
#include <cstdio>
#include <vector>

#include "common/strutil.h"
#include "core/classifier.h"
#include "core/router.h"
#include "ebpf/assembler.h"
#include "ebpf/disasm.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "nvme/prp.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

using namespace nvmetro;

// ctx offsets: opcode=8, slba=24, part_offset=64 (core/classifier.h).
// Verdicts: SEND_HQ|WILL_COMPLETE_HQ = 0x120000;
//           COMPLETE|AccessDenied    = 0x10000 | 0x286.
static const char* kQosClassifier = R"(
; Protect LBAs < 1024 from writes; pass everything else through.
  ldxdw r3, [r1+8]          ; opcode
  jne r3, 1, allow          ; only writes are filtered
  ldxdw r4, [r1+24]         ; slba (guest-relative at HOOK_VSQ)
  jlt r4, 1024, deny
allow:
  ldxdw r4, [r1+24]         ; LBA translation: slba += part_offset
  ldxdw r5, [r1+64]
  add r4, r5
  stxdw [r1+24], r4
  mov r0, 0x120000          ; SEND_HQ | WILL_COMPLETE_HQ
  exit
deny:
  mov r0, 0x10286           ; COMPLETE | status AccessDenied
  exit
)";

int main() {
  sim::Simulator sim;
  mem::IommuSpace dma(nullptr, 1ull << 40);
  ssd::ControllerConfig cfg;
  cfg.capacity = 512 * MiB;
  ssd::SimulatedController drive(&sim, &dma, cfg);
  virt::Vm vm(&sim, {.name = "vm", .memory_bytes = 16 * MiB, .vcpus = 2});
  core::NvmetroHost nvmetro(&sim, &drive);
  auto* vc = nvmetro.CreateController(&vm, {.vm_id = 1});

  // The verifier is the gate: an unsafe classifier (here: an infinite
  // loop) is rejected before it can ever run.
  auto evil = ebpf::Assemble("spin: mov r0, 0\nja spin\nexit\n");
  Status st = vc->InstallClassifier(std::move(*evil));
  std::printf("installing a looping classifier: %s\n",
              st.ok() ? "ACCEPTED (bug!)" : st.ToString().c_str());

  // Install the QoS policy. The disassembler shows exactly what the
  // verifier approved (bpftool-style; round-trips through the assembler).
  auto qos = ebpf::Assemble(kQosClassifier);
  if (!qos.ok()) {
    std::fprintf(stderr, "assembler: %s\n", qos.status().ToString().c_str());
    return 1;
  }
  std::printf("\nverified program (%zu insns), disassembled:\n%s\n",
              qos->insns().size(), ebpf::Disassemble(*qos)->c_str());
  st = vc->InstallClassifier(std::move(*qos));
  std::printf("installing the QoS classifier: %s\n",
              st.ok() ? "verified and installed" : st.ToString().c_str());
  nvmetro.Start();

  virt::GuestNvmeDriver driver(&vm, vc);
  (void)driver.Init(1);

  auto write_at = [&](u64 lba) {
    mem::GuestMemory& gm = vm.memory();
    u64 buf = *gm.AllocPages(1);
    std::vector<u8> block(512, 0x42);
    gm.Write(buf, block.data(), block.size());
    nvme::NvmeStatus result = 0;
    driver.Submit(0, nvme::MakeWrite(1, lba, 1, buf, 0),
                  [&](nvme::NvmeStatus s, u32) { result = s; });
    sim.Run();
    return result;
  };

  nvme::NvmeStatus protected_write = write_at(10);
  nvme::NvmeStatus normal_write = write_at(5000);
  std::printf("write to LBA 10 (protected): %s\n",
              nvme::StatusName(protected_write));
  std::printf("write to LBA 5000:           %s\n",
              nvme::StatusName(normal_write));

  // Policies are hot-swappable without touching the VM (paper: install,
  // migrate and remove storage functions on the fly).
  auto open_policy = functions::PassthroughClassifier();
  (void)vc->InstallClassifier(std::move(*open_policy));
  std::printf("after hot-swap to passthrough, LBA 10: %s\n",
              nvme::StatusName(write_at(10)));
  return 0;
}

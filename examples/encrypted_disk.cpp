// Transparent disk encryption (paper §IV-A): the eBPF classifier routes
// reads device-first-then-UIF and writes UIF-first; the userspace I/O
// function performs XTS-AES with the key isolated in userspace — and the
// resulting disk is bit-compatible with dm-crypt.
//
//   $ ./build/examples/encrypted_disk
#include <cstdio>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"
#include "crypto/xts.h"
#include "kblock/dm.h"

using namespace nvmetro;
using baselines::SolutionBundle;
using baselines::SolutionKind;
using baselines::StorageSolution;
using baselines::Testbed;

int main() {
  Testbed tb;
  auto bundle =
      SolutionBundle::Create(&tb, SolutionKind::kNvmetroEncryption);
  if (!bundle) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  StorageSolution* disk = bundle->vm_solution(0);

  // The guest writes secrets; it has no idea the disk is encrypted.
  Rng rng(2024);
  std::vector<u8> secret(4096);
  rng.Fill(secret.data(), secret.size());
  std::snprintf(reinterpret_cast<char*>(secret.data()), 64,
                "TOP SECRET: the cluster root key lives here");

  bool ok = false;
  disk->Submit(0, StorageSolution::Op::kWrite, 0, secret.size(),
               secret.data(), [&](Status st) { ok = st.ok(); });
  tb.sim.Run();
  std::printf("guest write: %s\n", ok ? "ok" : "FAILED");

  // 1. The guest reads its plaintext back normally.
  std::vector<u8> readback(4096, 0);
  disk->Submit(0, StorageSolution::Op::kRead, 0, readback.size(),
               readback.data(), [&](Status st) { ok = st.ok(); });
  tb.sim.Run();
  std::printf("guest read round-trip: %s\n",
              ok && readback == secret ? "plaintext intact" : "FAILED");

  // 2. The physical media never sees plaintext.
  bool plaintext_on_media =
      tb.phys->store().Matches(0, secret.data(), secret.size());
  std::printf("plaintext on physical media: %s\n",
              plaintext_on_media ? "YES (BUG!)" : "no (ciphertext only)");

  // 3. The format is exactly dm-crypt aes-xts-plain64: mount the same
  //    media under the kernel's dm-crypt with the same key and read it.
  sim::VCpu kcryptd(&tb.sim, "kcryptd");
  kblock::NvmeBlockDevice raw(&tb.sim, tb.phys.get(), &tb.dma, 1);
  auto dmc = kblock::DmCrypt::Create(&tb.sim, &raw,
                                     bundle->xts_key().data(),
                                     bundle->xts_key().size(), {&kcryptd});
  std::vector<u8> via_dmcrypt(4096, 0);
  bool dm_ok = false;
  (*dmc)->Submit(kblock::Bio::Read(0, via_dmcrypt.data(),
                                   via_dmcrypt.size(), [&](Status st) {
                                     dm_ok = st.ok();
                                   }));
  tb.sim.Run();
  std::printf("dm-crypt cross-mount read: %s\n",
              dm_ok && via_dmcrypt == secret
                  ? "matches the guest's plaintext (formats compatible)"
                  : "FAILED");

  // 4. Show what an attacker with media access sees.
  std::vector<u8> media_bytes(64);
  tb.phys->store().Read(0, media_bytes.data(), media_bytes.size());
  std::printf("first media bytes: ");
  for (int i = 0; i < 16; i++) std::printf("%02x", media_bytes[i]);
  std::printf("...\n");
  return 0;
}

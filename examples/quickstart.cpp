// Quickstart: bring up NVMetro from the public API, one component at a
// time — simulated drive, VM, router, classifier — then do I/O through
// the guest NVMe driver and inspect the routing statistics.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "core/router.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "nvme/prp.h"
#include "obs/obs.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

using namespace nvmetro;

int main() {
  // 0. Observability (optional): a metrics registry + trace recorder that
  //    components publish into. Recording charges no simulated time, so
  //    the run is identical with or without it.
  obs::Observability obs;

  // 1. The host machine: a simulated clock and a physical NVMe drive.
  //    All timing below is simulated; all data and protocol state is
  //    real.
  sim::Simulator sim;
  mem::IommuSpace dma(nullptr, 1ull << 40);
  ssd::ControllerConfig drive_cfg;
  drive_cfg.capacity = 1 * GiB;
  drive_cfg.obs = &obs;
  ssd::SimulatedController drive(&sim, &dma, drive_cfg);

  // 2. A guest VM: guest-physical memory + vCPUs.
  virt::VmConfig vm_cfg;
  vm_cfg.name = "demo-vm";
  vm_cfg.memory_bytes = 32 * MiB;
  virt::Vm vm(&sim, vm_cfg);

  // 3. NVMetro: the router host, and a virtual controller giving this VM
  //    a 256 MiB partition of namespace 1.
  core::NvmetroHost::Config host_cfg;
  host_cfg.obs = &obs;
  core::NvmetroHost nvmetro(&sim, &drive, host_cfg);
  core::VirtualController::Config vc_cfg;
  vc_cfg.vm_id = 1;
  vc_cfg.part_first_lba = 4096;        // partition starts at LBA 4096
  vc_cfg.part_nlb = 256 * MiB / 512;   // 256 MiB of LBAs
  core::VirtualController* vc = nvmetro.CreateController(&vm, vc_cfg);

  // 4. Install an I/O classifier: eBPF bytecode, verified before it is
  //    accepted. The passthrough classifier translates guest LBAs to the
  //    partition and sends everything down the fast path.
  auto classifier = functions::PassthroughClassifier();
  if (!classifier.ok() ||
      !vc->InstallClassifier(std::move(*classifier)).ok()) {
    std::fprintf(stderr, "classifier install failed\n");
    return 1;
  }
  nvmetro.Start();

  // 5. The guest side: an NVMe driver with one I/O queue pair whose rings
  //    live in guest memory.
  virt::GuestNvmeDriver driver(&vm, vc);
  if (!driver.Init(/*nqueues=*/1).ok()) {
    std::fprintf(stderr, "guest driver init failed\n");
    return 1;
  }

  // 6. Write a block: allocate a guest buffer, build PRPs, submit.
  mem::GuestMemory& gm = vm.memory();
  u64 buf = *gm.AllocPages(1);
  const char message[] = "hello from the guest, via NVMetro";
  gm.Write(buf, message, sizeof(message));

  nvme::Sqe write_cmd = nvme::MakeWrite(/*nsid=*/1, /*slba=*/7,
                                        /*nblocks=*/1, buf, 0);
  bool done = false;
  driver.Submit(0, write_cmd, [&](nvme::NvmeStatus st, u32) {
    std::printf("write completed: %s (t=%.1f us)\n", nvme::StatusName(st),
                static_cast<double>(sim.now()) / 1000.0);
    done = true;
  });
  sim.Run();

  // 7. Read it back into a second buffer.
  u64 buf2 = *gm.AllocPages(1);
  nvme::Sqe read_cmd = nvme::MakeRead(1, 7, 1, buf2, 0);
  driver.Submit(0, read_cmd, [&](nvme::NvmeStatus st, u32) {
    char out[64] = {};
    gm.Read(buf2, out, sizeof(message));
    std::printf("read completed:  %s -> \"%s\"\n", nvme::StatusName(st),
                out);
  });
  sim.Run();

  // 8. Where did the data land physically? At the partition offset —
  //    the classifier's LBA translation at work.
  std::printf("media holds the data at absolute LBA %llu: %s\n",
              (unsigned long long)(vc_cfg.part_first_lba + 7),
              drive.store().Matches((vc_cfg.part_first_lba + 7) * 512,
                                    message, sizeof(message))
                  ? "yes"
                  : "no");

  // 9. Routing statistics.
  std::printf(
      "\nrouter stats: %llu completed, %llu fast-path, %llu notify-path, "
      "%llu classifier runs\n",
      (unsigned long long)vc->requests_completed(),
      (unsigned long long)vc->fast_path_sends(),
      (unsigned long long)vc->notify_path_sends(),
      (unsigned long long)vc->classifier()->invocations());
  std::printf("router CPU: %.1f us, guest CPU: %.1f us (simulated)\n",
              static_cast<double>(nvmetro.RouterCpuBusyNs()) / 1000.0,
              static_cast<double>(vm.TotalCpuBusyNs()) / 1000.0);

  // 10. Observability: the write's full lifecycle, span by span, and the
  //     registry's per-path counters (taxonomy in DESIGN.md §8). Request
  //     ids are monotonic from 1, so the write above is request 1.
  std::printf("\nwrite request trace: %s\n",
              obs.trace().PathString(1).c_str());
  std::printf("%s", obs.trace().DumpRequest(1).c_str());
  std::printf("\nmetrics:\n%s", obs.metrics().ToText().c_str());
  (void)done;
  return 0;
}

// Per-VM QoS with a map-backed eBPF classifier: a noisy neighbor is
// capped by a token bucket *in the I/O router* — no UIF, no host thread,
// just a few eBPF instructions and a shared map that the operator can
// retune at runtime (the paper's "flexible request routing" applied to
// rate limiting).
//
// Two VMs share one drive and one router worker. vm0 runs the stock
// passthrough classifier; vm1 gets RateLimitClassifier with a 2000 IOPS
// bucket. Both guests hammer 512B random reads; throttled commands
// complete with an abort status and the guest backs off briefly — watch
// vm1 pin to its cap while vm0 keeps the rest of the drive.
//
//   $ ./build/examples/qos_rate_limit
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "core/router.h"
#include "functions/classifiers.h"
#include "mem/address_space.h"
#include "ssd/controller.h"
#include "virt/guest_nvme.h"
#include "virt/vm.h"

using namespace nvmetro;

namespace {

// Closed-loop read generator: resubmit on completion; on a throttle
// verdict, back off 200us before retrying (a real guest would do the
// same from its error handler). Recursive free functions over a shared
// context — the idiomatic async-loop shape in this codebase.
struct GuestLoop {
  sim::Simulator* sim;
  virt::GuestNvmeDriver* driver;
  u64 buf;
  SimTime deadline;
  u64 done = 0;
  u64 throttled = 0;
  Rng rng{42};
};

void Issue(std::shared_ptr<GuestLoop> l);

void OnComplete(std::shared_ptr<GuestLoop> l, nvme::NvmeStatus st) {
  if (l->sim->now() >= l->deadline) return;
  if (nvme::StatusOk(st)) {
    l->done++;
    Issue(l);
    return;
  }
  l->throttled++;
  l->sim->ScheduleAfter(200 * kUs, [l] {
    if (l->sim->now() < l->deadline) Issue(l);
  });
}

void Issue(std::shared_ptr<GuestLoop> l) {
  u64 lba = l->rng.NextBounded(32 * 1024);
  l->driver->Submit(0, nvme::MakeRead(1, lba, 1, l->buf, 0),
                    [l](nvme::NvmeStatus st, u32) { OnComplete(l, st); });
}

}  // namespace

int main() {
  sim::Simulator sim;
  mem::IommuSpace dma(nullptr, 1ull << 40);
  ssd::ControllerConfig drive_cfg;
  drive_cfg.capacity = 256 * MiB;
  ssd::SimulatedController drive(&sim, &dma, drive_cfg);
  core::NvmetroHost host(&sim, &drive);

  virt::Vm vm0(&sim, {.name = "vm0", .memory_bytes = 16 * MiB, .vcpus = 1});
  virt::Vm vm1(&sim, {.name = "vm1", .memory_bytes = 16 * MiB, .vcpus = 1});
  auto* vc0 = host.CreateController(
      &vm0, {.vm_id = 0, .part_first_lba = 0, .part_nlb = 128 * 1024});
  auto* vc1 = host.CreateController(
      &vm1,
      {.vm_id = 1, .part_first_lba = 128 * 1024, .part_nlb = 128 * 1024});

  // vm0: unthrottled. vm1: 2000 IOPS token bucket, 64-deep burst. The
  // map is shared state between the control plane and the classifier —
  // an operator could rewrite slot 2 (rate) while I/O is in flight.
  if (!vc0->InstallClassifier(*functions::PassthroughClassifier()).ok())
    return 1;
  auto qos_map = functions::MakeQosMap(/*rate_per_sec=*/2000, /*burst=*/64);
  if (!vc1->InstallClassifier(*functions::RateLimitClassifier(qos_map))
           .ok())
    return 1;
  host.Start();

  virt::GuestNvmeDriver drv0(&vm0, vc0);
  virt::GuestNvmeDriver drv1(&vm1, vc1);
  if (!drv0.Init(1).ok() || !drv1.Init(1).ok()) return 1;

  const SimTime kRun = 500 * kMs;
  auto loop0 = std::make_shared<GuestLoop>(
      GuestLoop{&sim, &drv0, *vm0.memory().AllocPages(1), kRun});
  auto loop1 = std::make_shared<GuestLoop>(
      GuestLoop{&sim, &drv1, *vm1.memory().AllocPages(1), kRun});
  for (int i = 0; i < 4; i++) {  // QD4 per guest
    Issue(loop0);
    Issue(loop1);
  }
  sim.Run();

  double secs = static_cast<double>(kRun) / kSec;
  std::printf("after %.1fs of simulated time, QD4 each:\n", secs);
  std::printf("  vm0 (no limit):    %6.0f IOPS\n",
              static_cast<double>(loop0->done) / secs);
  std::printf("  vm1 (2000 IOPS):   %6.0f IOPS, %llu commands throttled\n",
              static_cast<double>(loop1->done) / secs,
              static_cast<unsigned long long>(loop1->throttled));
  bool capped = loop1->done / secs < 2600 && loop1->done / secs > 1500;
  std::printf("vm1 held to its bucket: %s\n", capped ? "yes" : "NO");
  return capped ? 0 : 1;
}

// Live disk replication (paper §IV-B): the classifier fans writes out to
// the local drive AND the UIF (which forwards them to a remote NVMe-oF
// secondary) while reads go straight to the local drive; writes complete
// only when both disks have the data — demonstrated here by killing the
// primary and reading everything back from the mirror.
//
//   $ ./build/examples/replicated_disk
#include <cstdio>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"

using namespace nvmetro;
using baselines::SolutionBundle;
using baselines::SolutionKind;
using baselines::StorageSolution;
using baselines::Testbed;

int main() {
  Testbed tb;
  auto bundle =
      SolutionBundle::Create(&tb, SolutionKind::kNvmetroReplication);
  if (!bundle) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  StorageSolution* disk = bundle->vm_solution(0);

  // Write a database-looking set of blocks.
  Rng rng(7);
  const int kBlocks = 32;
  std::vector<std::vector<u8>> data(kBlocks);
  int completed = 0;
  SimTime start = tb.sim.now();
  for (int i = 0; i < kBlocks; i++) {
    data[i] = std::vector<u8>(4096);
    rng.Fill(data[i].data(), data[i].size());
    disk->Submit(0, StorageSolution::Op::kWrite,
                 static_cast<u64>(i) * 4096, 4096, data[i].data(),
                 [&](Status st) {
                   if (st.ok()) completed++;
                 });
  }
  tb.sim.Run();
  std::printf("wrote %d/%d blocks in %.1f us (synchronous mirroring "
              "includes the remote leg)\n",
              completed, kBlocks,
              static_cast<double>(tb.sim.now() - start) / 1000.0);

  // Reads are served by the LOCAL drive only — measure one.
  std::vector<u8> out(4096);
  start = tb.sim.now();
  bool ok = false;
  disk->Submit(0, StorageSolution::Op::kRead, 0, out.size(), out.data(),
               [&](Status st) { ok = st.ok(); });
  tb.sim.Run();
  std::printf("local read: %s in %.1f us (no remote round-trip)\n",
              ok && out == data[0] ? "ok" : "FAILED",
              static_cast<double>(tb.sim.now() - start) / 1000.0);

  // Verify both copies byte-for-byte.
  bool primary_ok = true, secondary_ok = true;
  for (int i = 0; i < kBlocks; i++) {
    if (!tb.phys->store().Matches(static_cast<u64>(i) * 4096,
                                  data[i].data(), 4096)) {
      primary_ok = false;
    }
    if (!bundle->secondary_drive(0)->store().Matches(
            static_cast<u64>(i) * 4096, data[i].data(), 4096)) {
      secondary_ok = false;
    }
  }
  std::printf("primary holds all blocks:   %s\n",
              primary_ok ? "yes" : "NO");
  std::printf("secondary holds all blocks: %s\n",
              secondary_ok ? "yes" : "NO");

  // Disaster: the primary starts throwing unrecoverable read errors.
  // The mirror still has everything.
  tb.phys->InjectError(
      1, nvme::MakeStatus(nvme::kSctMediaError, nvme::kScUnrecoveredRead),
      1'000'000);
  std::vector<u8> rescued(4096, 0);
  bundle->secondary_drive(0)->store().Read(0, rescued.data(),
                                           rescued.size());
  std::printf("primary failed; block 0 recovered from the mirror: %s\n",
              rescued == data[0] ? "intact" : "LOST");
  return 0;
}

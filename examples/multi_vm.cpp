// Multi-VM sharing: several VMs share one physical NVMe namespace as
// isolated partitions, all served by a single shared router worker —
// the setup behind the paper's scalability evaluation (Figure 5) and one
// thing SPDK-style exclusive device assignment cannot do (§V-F).
//
//   $ ./build/examples/multi_vm
#include <cstdio>
#include <vector>

#include "baselines/factory.h"
#include "common/rng.h"
#include "workload/fio.h"

using namespace nvmetro;
using baselines::SolutionBundle;
using baselines::SolutionKind;
using baselines::SolutionParams;
using baselines::StorageSolution;
using baselines::Testbed;

int main() {
  Testbed tb;
  SolutionParams params;
  params.num_vms = 4;
  params.vm_cfg.vcpus = 1;
  params.vm_cfg.memory_bytes = 64 * MiB;
  params.router_workers = 1;  // ONE host thread serves all four VMs
  auto bundle = SolutionBundle::Create(&tb, SolutionKind::kNvmetro, params);
  if (!bundle) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // Each VM writes its own signature at ITS LBA 0; partitions keep them
  // apart on the shared namespace.
  int done = 0;
  std::vector<std::vector<u8>> sig(4);
  for (u32 i = 0; i < 4; i++) {
    sig[i] = std::vector<u8>(512, static_cast<u8>(0xA0 + i));
    bundle->vm_solution(i)->Submit(0, StorageSolution::Op::kWrite, 0, 512,
                                   sig[i].data(), [&](Status st) {
                                     if (st.ok()) done++;
                                   });
  }
  tb.sim.Run();
  std::printf("%d/4 VMs wrote their signature at guest LBA 0\n", done);
  for (u32 i = 0; i < 4; i++) {
    std::vector<u8> out(512);
    bool ok = false;
    bundle->vm_solution(i)->Submit(0, StorageSolution::Op::kRead, 0, 512,
                                   out.data(),
                                   [&](Status st) { ok = st.ok(); });
    tb.sim.Run();
    std::printf("  vm%u reads back its own data: %s\n", i,
                ok && out == sig[i] ? "yes (isolated)" : "CROSS-TALK!");
  }

  // Now drive all four VMs concurrently with 512B random reads at QD32
  // and watch one router thread serve them all.
  workload::FioConfig cfg;
  cfg.block_size = 512;
  cfg.queue_depth = 32;
  cfg.mode = workload::FioMode::kRandRead;
  cfg.random_region = 128 * MiB;
  cfg.warmup = 20 * kMs;
  cfg.duration = 100 * kMs;
  std::vector<StorageSolution*> sols;
  for (u32 i = 0; i < 4; i++) sols.push_back(bundle->vm_solution(i));
  auto results = workload::Fio::RunMulti(&tb.sim, sols, cfg);
  double total = 0;
  for (u32 i = 0; i < 4; i++) {
    std::printf("  vm%u: %.1f KIOPS (median %.0f us)\n", i,
                results[i].iops / 1000.0,
                static_cast<double>(results[i].lat.Median()) / 1000.0);
    total += results[i].iops;
  }
  std::printf("aggregate: %.1f KIOPS through 1 shared router worker "
              "(host CPU %.0f%%)\n",
              total / 1000.0, results[0].host_cpu_pct);
  return 0;
}

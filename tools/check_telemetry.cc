// Telemetry artifact checker for CI.
//
// Runs the same strict validators the unit tests use against exported
// telemetry files:
//
//   check_telemetry --perfetto=trace.json --prom=metrics.prom
//                   [--timeseries=series.csv] [--expect-tenants=N]
//
// Exits non-zero (with a diagnostic) when any given file fails its
// format check, so the bench-smoke job rejects an export regression
// before the artifact is uploaded.
//
// --expect-tenants=N additionally requires the Prometheus text to carry
// the per-tenant QoS series (qos_tenant<i>_admitted_total and the
// qos_tenant<i>_latency_ns summary) for every tenant 1..N, and — when a
// Perfetto trace is also given — requires at least one QOS_ span event
// in it, so a wiring regression that silently drops tenant attribution
// fails the smoke job even though the files stay format-valid.
//
// --expect-resubmit requires the classifier-chain resubmission series
// (DESIGN.md §15): the router_resubmits_total counter and the
// router_chain_depth histogram summary in the Prometheus text, and — when
// a Perfetto trace is given — at least one RESUBMIT span event, so the
// pushdown bench-smoke fails if chain telemetry silently disappears.
//
// --expect-overload similarly requires the overload-control series
// (DESIGN.md §13): the overload_state gauge, every per-state transition
// counter, the decision/shed/paced totals and — with --expect-tenants=N
// — the per-tenant overload_tenant<i>_{shed,paced,degraded}_total
// counters; a Perfetto trace, when given, must carry an OVERLOAD_ event
// (the state-transition instant marks and/or shed spans).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"
#include "obs/export.h"

namespace nvmetro {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  usize n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// Structural CSV check: a non-empty header, every row with the same
/// column count, every non-header field numeric.
bool ValidateTimeSeriesCsv(const std::string& text, std::string* error) {
  usize pos = 0, lineno = 0, columns = 0;
  while (pos < text.size()) {
    usize nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      *error = "last line not newline-terminated";
      return false;
    }
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    lineno++;
    usize fields = 1;
    usize start = 0;
    for (usize i = 0; i <= line.size(); i++) {
      if (i == line.size() || line[i] == ',') {
        std::string field = line.substr(start, i - start);
        if (field.empty()) {
          *error = "line " + std::to_string(lineno) + ": empty field";
          return false;
        }
        if (lineno > 1) {
          char* end = nullptr;
          std::strtod(field.c_str(), &end);
          if (end != field.c_str() + field.size()) {
            *error = "line " + std::to_string(lineno) +
                     ": non-numeric field '" + field + "'";
            return false;
          }
        }
        start = i + 1;
        if (i < line.size()) fields++;
      }
    }
    if (lineno == 1) {
      columns = fields;
    } else if (fields != columns) {
      *error = "line " + std::to_string(lineno) + ": column count mismatch";
      return false;
    }
  }
  if (lineno == 0) {
    *error = "empty file";
    return false;
  }
  return true;
}

/// Per-tenant QoS coverage check against exported Prometheus text: every
/// tenant 1..n must have its admission counter and latency summary.
bool CheckTenantSeries(const std::string& prom, i64 n, std::string* error) {
  for (i64 i = 1; i <= n; i++) {
    const std::string base = "qos_tenant" + std::to_string(i);
    for (const char* suffix : {"_admitted_total", "_latency_ns"}) {
      const std::string name = base + suffix;
      if (prom.find(name) == std::string::npos) {
        *error = "missing per-tenant series '" + name + "'";
        return false;
      }
    }
  }
  return true;
}

/// Overload-control series coverage: state gauge, per-state transition
/// counters, global totals; per-tenant shed/pace/degrade attribution for
/// tenants 1..n when n > 0.
bool CheckOverloadSeries(const std::string& prom, i64 n, std::string* error) {
  const char* required[] = {
      "overload_state",
      "overload_signal_us",
      "overload_be_fraction_pct",
      "overload_decisions_total",
      "overload_sheds_total",
      "overload_paced_total",
      "overload_brownouts_total",
      "overload_transitions_normal_total",
      "overload_transitions_backpressure_total",
      "overload_transitions_brownout_total",
      "overload_transitions_shed_total",
  };
  for (const char* name : required) {
    if (prom.find(name) == std::string::npos) {
      *error = std::string("missing overload series '") + name + "'";
      return false;
    }
  }
  for (i64 i = 1; i <= n; i++) {
    const std::string base = "overload_tenant" + std::to_string(i);
    for (const char* suffix :
         {"_shed_total", "_paced_total", "_degraded_total"}) {
      const std::string name = base + suffix;
      if (prom.find(name) == std::string::npos) {
        *error = "missing per-tenant overload series '" + name + "'";
        return false;
      }
    }
  }
  return true;
}

/// Classifier-chain resubmission coverage: the resubmit counter plus the
/// chain-depth summary (count + quantile lines both spell the base name).
bool CheckResubmitSeries(const std::string& prom, std::string* error) {
  for (const char* name : {"router_resubmits_total", "router_chain_depth"}) {
    if (prom.find(name) == std::string::npos) {
      *error = std::string("missing resubmission series '") + name + "'";
      return false;
    }
  }
  return true;
}

int Check(const std::string& path, const char* what,
          bool (*validate)(const std::string&, std::string*)) {
  std::string data;
  if (!ReadFile(path, &data)) {
    std::fprintf(stderr, "check_telemetry: cannot read %s '%s'\n", what,
                 path.c_str());
    return 1;
  }
  std::string error;
  if (!validate(data, &error)) {
    std::fprintf(stderr, "check_telemetry: %s '%s' INVALID: %s\n", what,
                 path.c_str(), error.c_str());
    return 1;
  }
  std::printf("check_telemetry: %s '%s' ok (%zu bytes)\n", what, path.c_str(),
              data.size());
  return 0;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.DefineString("perfetto", "", "trace-event JSON file to validate");
  flags.DefineString("prom", "", "Prometheus text file to validate");
  flags.DefineString("timeseries", "", "time-series CSV file to validate");
  flags.DefineInt("expect-tenants", 0,
                  "require per-tenant QoS series for tenants 1..N in the "
                  "Prometheus text (and a QOS_ span in the Perfetto trace)");
  flags.DefineBool("expect-resubmit", false,
                   "require the classifier-chain resubmission series "
                   "(router_resubmits_total counter, router_chain_depth "
                   "summary) in the Prometheus text and a RESUBMIT span in "
                   "the Perfetto trace");
  flags.DefineBool("expect-overload", false,
                   "require the overload-control series (state gauge, "
                   "transition counters, per-tenant shed/pace attribution "
                   "with --expect-tenants) in the Prometheus text and an "
                   "OVERLOAD_ event in the Perfetto trace");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  int rc = 0;
  bool any = false;
  if (!flags.GetString("perfetto").empty()) {
    any = true;
    rc |= Check(flags.GetString("perfetto"), "Perfetto trace",
                &obs::ValidateTraceEventJson);
  }
  if (!flags.GetString("prom").empty()) {
    any = true;
    rc |= Check(flags.GetString("prom"), "Prometheus metrics",
                &obs::ValidatePrometheusText);
  }
  if (!flags.GetString("timeseries").empty()) {
    any = true;
    rc |= Check(flags.GetString("timeseries"), "time-series CSV",
                &ValidateTimeSeriesCsv);
  }
  i64 expect_tenants = flags.GetInt("expect-tenants");
  if (expect_tenants > 0) {
    any = true;
    if (flags.GetString("prom").empty()) {
      std::fprintf(stderr,
                   "check_telemetry: --expect-tenants requires --prom\n");
      return 1;
    }
    std::string prom, error;
    if (!ReadFile(flags.GetString("prom"), &prom)) {
      std::fprintf(stderr, "check_telemetry: cannot read Prometheus file\n");
      return 1;
    }
    if (!CheckTenantSeries(prom, expect_tenants, &error)) {
      std::fprintf(stderr, "check_telemetry: tenant coverage INVALID: %s\n",
                   error.c_str());
      rc |= 1;
    } else {
      std::printf("check_telemetry: per-tenant series ok (%lld tenant(s))\n",
                  static_cast<long long>(expect_tenants));
    }
    if (!flags.GetString("perfetto").empty()) {
      std::string trace;
      if (ReadFile(flags.GetString("perfetto"), &trace) &&
          trace.find("QOS_") == std::string::npos) {
        std::fprintf(stderr,
                     "check_telemetry: Perfetto trace has no QOS_ spans\n");
        rc |= 1;
      }
    }
  }
  if (flags.GetBool("expect-resubmit")) {
    any = true;
    if (flags.GetString("prom").empty()) {
      std::fprintf(stderr,
                   "check_telemetry: --expect-resubmit requires --prom\n");
      return 1;
    }
    std::string prom, error;
    if (!ReadFile(flags.GetString("prom"), &prom)) {
      std::fprintf(stderr, "check_telemetry: cannot read Prometheus file\n");
      return 1;
    }
    if (!CheckResubmitSeries(prom, &error)) {
      std::fprintf(stderr, "check_telemetry: resubmit coverage INVALID: %s\n",
                   error.c_str());
      rc |= 1;
    } else {
      std::printf("check_telemetry: resubmission series ok\n");
    }
    if (!flags.GetString("perfetto").empty()) {
      std::string trace;
      if (ReadFile(flags.GetString("perfetto"), &trace) &&
          trace.find("RESUBMIT") == std::string::npos) {
        std::fprintf(stderr,
                     "check_telemetry: Perfetto trace has no RESUBMIT "
                     "spans\n");
        rc |= 1;
      }
    }
  }
  if (flags.GetBool("expect-overload")) {
    any = true;
    if (flags.GetString("prom").empty()) {
      std::fprintf(stderr,
                   "check_telemetry: --expect-overload requires --prom\n");
      return 1;
    }
    std::string prom, error;
    if (!ReadFile(flags.GetString("prom"), &prom)) {
      std::fprintf(stderr, "check_telemetry: cannot read Prometheus file\n");
      return 1;
    }
    if (!CheckOverloadSeries(prom, expect_tenants, &error)) {
      std::fprintf(stderr, "check_telemetry: overload coverage INVALID: %s\n",
                   error.c_str());
      rc |= 1;
    } else {
      std::printf("check_telemetry: overload series ok\n");
    }
    if (!flags.GetString("perfetto").empty()) {
      std::string trace;
      if (ReadFile(flags.GetString("perfetto"), &trace) &&
          trace.find("OVERLOAD_") == std::string::npos) {
        std::fprintf(stderr,
                     "check_telemetry: Perfetto trace has no OVERLOAD_ "
                     "events\n");
        rc |= 1;
      }
    }
  }
  if (!any) {
    std::fprintf(stderr,
                 "check_telemetry: nothing to check (pass --perfetto/--prom/"
                 "--timeseries)\n");
    return 1;
  }
  return rc;
}

}  // namespace
}  // namespace nvmetro

int main(int argc, char** argv) { return nvmetro::Main(argc, argv); }

// Telemetry artifact checker for CI.
//
// Runs the same strict validators the unit tests use against exported
// telemetry files:
//
//   check_telemetry --perfetto=trace.json --prom=metrics.prom
//                   [--timeseries=series.csv]
//
// Exits non-zero (with a diagnostic) when any given file fails its
// format check, so the bench-smoke job rejects an export regression
// before the artifact is uploaded.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"
#include "obs/export.h"

namespace nvmetro {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  usize n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

/// Structural CSV check: a non-empty header, every row with the same
/// column count, every non-header field numeric.
bool ValidateTimeSeriesCsv(const std::string& text, std::string* error) {
  usize pos = 0, lineno = 0, columns = 0;
  while (pos < text.size()) {
    usize nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      *error = "last line not newline-terminated";
      return false;
    }
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    lineno++;
    usize fields = 1;
    usize start = 0;
    for (usize i = 0; i <= line.size(); i++) {
      if (i == line.size() || line[i] == ',') {
        std::string field = line.substr(start, i - start);
        if (field.empty()) {
          *error = "line " + std::to_string(lineno) + ": empty field";
          return false;
        }
        if (lineno > 1) {
          char* end = nullptr;
          std::strtod(field.c_str(), &end);
          if (end != field.c_str() + field.size()) {
            *error = "line " + std::to_string(lineno) +
                     ": non-numeric field '" + field + "'";
            return false;
          }
        }
        start = i + 1;
        if (i < line.size()) fields++;
      }
    }
    if (lineno == 1) {
      columns = fields;
    } else if (fields != columns) {
      *error = "line " + std::to_string(lineno) + ": column count mismatch";
      return false;
    }
  }
  if (lineno == 0) {
    *error = "empty file";
    return false;
  }
  return true;
}

int Check(const std::string& path, const char* what,
          bool (*validate)(const std::string&, std::string*)) {
  std::string data;
  if (!ReadFile(path, &data)) {
    std::fprintf(stderr, "check_telemetry: cannot read %s '%s'\n", what,
                 path.c_str());
    return 1;
  }
  std::string error;
  if (!validate(data, &error)) {
    std::fprintf(stderr, "check_telemetry: %s '%s' INVALID: %s\n", what,
                 path.c_str(), error.c_str());
    return 1;
  }
  std::printf("check_telemetry: %s '%s' ok (%zu bytes)\n", what, path.c_str(),
              data.size());
  return 0;
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.DefineString("perfetto", "", "trace-event JSON file to validate");
  flags.DefineString("prom", "", "Prometheus text file to validate");
  flags.DefineString("timeseries", "", "time-series CSV file to validate");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  int rc = 0;
  bool any = false;
  if (!flags.GetString("perfetto").empty()) {
    any = true;
    rc |= Check(flags.GetString("perfetto"), "Perfetto trace",
                &obs::ValidateTraceEventJson);
  }
  if (!flags.GetString("prom").empty()) {
    any = true;
    rc |= Check(flags.GetString("prom"), "Prometheus metrics",
                &obs::ValidatePrometheusText);
  }
  if (!flags.GetString("timeseries").empty()) {
    any = true;
    rc |= Check(flags.GetString("timeseries"), "time-series CSV",
                &ValidateTimeSeriesCsv);
  }
  if (!any) {
    std::fprintf(stderr,
                 "check_telemetry: nothing to check (pass --perfetto/--prom/"
                 "--timeseries)\n");
    return 1;
  }
  return rc;
}

}  // namespace
}  // namespace nvmetro

int main(int argc, char** argv) { return nvmetro::Main(argc, argv); }

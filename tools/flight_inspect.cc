// Postmortem inspector for flight-recorder dumps (DESIGN.md §16).
//
//   flight_inspect <dump.flight> [--slowest=N] [--failed] [--req=ID]
//                  [--tenant=T] [--path=fast|kernel|notify|direct|fanout]
//                  [--queue=Q] [--validate] [--metrics] [--timeseries]
//
// Loads a FlightDump produced by a FlightTriggers anomaly (or
// RequestDump), reconstructs per-request timelines with the same folding
// rules as SpanAnalyzer, and answers the first questions of any incident
// review: what fired, what was in flight, which requests were slow or
// failed, and where each one's nanoseconds went.
//
// With no listing flag it prints the dump header, per-ring occupancy and
// the marks timeline (fault windows, trigger fires, stale-cid drops).
// --validate re-checks the dump's internal consistency (chronological
// order, stored deltas vs. timestamps, stage sums == e2e) and exits
// non-zero on any violation, so CI can gate on a dump round-tripping.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "obs/flight.h"
#include "obs/span.h"

namespace nvmetro {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  char buf[4096];
  usize n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool PathFromName(const std::string& name, obs::PathClass* out) {
  for (usize i = 0; i < obs::kPathClassCount; i++) {
    obs::PathClass pc = static_cast<obs::PathClass>(i);
    if (name == obs::PathClassName(pc)) {
      *out = pc;
      return true;
    }
  }
  return false;
}

/// Listing filter assembled from --tenant/--path/--queue.
struct Filter {
  i64 tenant = -1;
  i64 queue = -1;
  bool have_path = false;
  obs::PathClass path = obs::PathClass::kDirect;

  bool Pass(const obs::FlightRequestView& v) const {
    if (tenant >= 0 && static_cast<i64>(v.tenant) != tenant) return false;
    if (queue >= 0 && static_cast<i64>(v.queue) != queue) return false;
    if (have_path && v.path != path) return false;
    return true;
  }
};

void PrintRequestRow(const obs::FlightRequestView& v) {
  std::printf("  req=%-8" PRIu64 " vm=%u q=%u op=0x%02x path=%-7s e2e=%-10" PRIu64
              " status=0x%04x%s%s\n",
              v.req_id, v.vm_id, v.queue, v.opcode, obs::PathClassName(v.path),
              v.e2e_ns, v.final_status, v.timed_out ? " TIMEOUT" : "",
              v.shed ? " SHED" : "");
  std::printf("    stages:");
  for (usize s = 0; s < obs::kStageCount; s++) {
    if (v.stage_ns[s] == 0) continue;
    std::printf(" %s=%" PRIu64,
                obs::StageName(static_cast<obs::Stage>(s)), v.stage_ns[s]);
  }
  if (v.irq_ns) std::printf(" | irq=%" PRIu64, v.irq_ns);
  if (v.resubmits) std::printf(" | resubmits=%" PRIu64, v.resubmits);
  std::printf("\n");
}

void PrintRecords(const std::vector<obs::FlightRecord>& records) {
  for (const obs::FlightRecord& r : records) {
    std::printf("    t=%-12" PRIu64 " %-16s delta=", r.t,
                obs::FlightEdgeName(r.edge));
    if (r.delta_ns == obs::kFlightDeltaUnknown) {
      std::printf("%-10s", "-");
    } else {
      std::printf("%-10u", r.delta_ns);
    }
    std::printf(" status=0x%04x aux=%u tag=0x%04x hook=%u\n", r.status, r.aux,
                r.tag_lo, r.hook);
  }
}

int Main(int argc, const char* const* argv) {
  Flags flags;
  flags.DefineInt("slowest", 0,
                  "list the N slowest attributable requests with per-stage "
                  "attribution");
  flags.DefineBool("failed", false,
                   "list failed (error-posted, timed-out or shed) requests");
  flags.DefineInt("req", -1, "print the full record timeline of one request");
  flags.DefineInt("tenant", -1, "restrict listings to one tenant/VM id");
  flags.DefineInt("queue", -1, "restrict listings to one guest queue");
  flags.DefineString("path", "",
                     "restrict listings to one routing path "
                     "(direct|fast|kernel|notify|fanout)");
  flags.DefineBool("validate", false,
                   "re-check dump consistency (deltas, ordering, stage sums) "
                   "and exit non-zero on violation");
  flags.DefineBool("metrics", false, "print the embedded metrics snapshot");
  flags.DefineBool("timeseries", false,
                   "print the embedded time-series CSV tail");
  Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: flight_inspect <dump.flight> [flags]\n");
    return 1;
  }
  const std::string& path = flags.positional()[0];

  std::string text;
  if (!ReadFile(path, &text)) {
    std::fprintf(stderr, "flight_inspect: cannot read '%s'\n", path.c_str());
    return 1;
  }
  obs::FlightDump dump;
  std::string error;
  if (!obs::FlightDump::Parse(text, &dump, &error)) {
    std::fprintf(stderr, "flight_inspect: '%s' does not parse: %s\n",
                 path.c_str(), error.c_str());
    return 1;
  }

  Filter filter;
  filter.tenant = flags.GetInt("tenant");
  filter.queue = flags.GetInt("queue");
  if (!flags.GetString("path").empty()) {
    if (!PathFromName(flags.GetString("path"), &filter.path)) {
      std::fprintf(stderr, "flight_inspect: unknown --path '%s'\n",
                   flags.GetString("path").c_str());
      return 1;
    }
    filter.have_path = true;
  }

  obs::FlightTimeline timeline(dump);

  // --- Header -------------------------------------------------------------
  std::printf("flight dump: %s\n", path.c_str());
  std::printf("  trigger: %s (seq %" PRIu64 ") at t=%" PRIu64 "\n",
              obs::FlightTriggerName(dump.trigger), dump.seq, dump.t);
  if (!dump.detail.empty()) std::printf("  detail: %s\n", dump.detail.c_str());
  u64 total_records = 0;
  for (const obs::FlightDump::RingDump& r : dump.rings) {
    if (r.queue == obs::kFlightMarksQueue) {
      std::printf("  marks ring: %zu/%" PRIu64 " records (total %" PRIu64
                  ")\n",
                  r.records.size(), r.capacity, r.total);
    } else {
      std::printf("  ring vm=%u q=%u: %zu/%" PRIu64 " records (total %" PRIu64
                  ", dropped-frozen %" PRIu64 ")\n",
                  r.vm_id, r.queue, r.records.size(), r.capacity, r.total,
                  r.dropped_frozen);
    }
    total_records += r.records.size();
  }
  std::printf("  %" PRIu64 " records, %zu requests reconstructed, %" PRIu64
              " truncated by wraparound\n",
              total_records, timeline.requests().size(),
              timeline.truncated_requests());
  std::printf("  snapshots: metrics %zu bytes, timeseries %zu bytes\n",
              dump.metrics_text.size(), dump.timeseries_csv.size());

  if (!timeline.marks().empty()) {
    std::printf("marks:\n");
    PrintRecords(timeline.marks());
  }

  int rc = 0;

  // --- Listings -----------------------------------------------------------
  i64 slowest = flags.GetInt("slowest");
  if (slowest > 0) {
    std::vector<const obs::FlightRequestView*> rows =
        timeline.Slowest(timeline.requests().size());
    std::printf("slowest %lld (of %zu attributable):\n",
                static_cast<long long>(slowest), rows.size());
    i64 shown = 0;
    for (const obs::FlightRequestView* v : rows) {
      if (!filter.Pass(*v)) continue;
      PrintRequestRow(*v);
      if (++shown == slowest) break;
    }
    if (shown == 0) std::printf("  (none matched the filter)\n");
  }

  if (flags.GetBool("failed")) {
    std::vector<const obs::FlightRequestView*> rows = timeline.Failed();
    std::printf("failed/timed-out/shed:\n");
    usize shown = 0;
    for (const obs::FlightRequestView* v : rows) {
      if (!filter.Pass(*v)) continue;
      PrintRequestRow(*v);
      shown++;
    }
    if (shown == 0) std::printf("  (none)\n");
  }

  i64 req = flags.GetInt("req");
  if (req >= 0) {
    const obs::FlightRequestView* v = timeline.Find(static_cast<u64>(req));
    if (!v) {
      std::fprintf(stderr, "flight_inspect: request %lld not in dump\n",
                   static_cast<long long>(req));
      rc = 1;
    } else {
      std::printf("request %lld:\n", static_cast<long long>(req));
      PrintRequestRow(*v);
      PrintRecords(v->records);
      if (!v->complete_head) {
        std::printf("    (head evicted by wraparound — attribution partial)\n");
      }
    }
  }

  if (flags.GetBool("metrics")) {
    std::fwrite(dump.metrics_text.data(), 1, dump.metrics_text.size(), stdout);
  }
  if (flags.GetBool("timeseries")) {
    std::fwrite(dump.timeseries_csv.data(), 1, dump.timeseries_csv.size(),
                stdout);
  }

  if (flags.GetBool("validate")) {
    if (!timeline.Validate(&error)) {
      std::fprintf(stderr, "flight_inspect: dump INVALID: %s\n",
                   error.c_str());
      rc = 1;
    } else {
      std::printf("validate: ok (%zu requests, %" PRIu64 " truncated)\n",
                  timeline.requests().size(), timeline.truncated_requests());
    }
  }
  return rc;
}

}  // namespace
}  // namespace nvmetro

int main(int argc, char** argv) { return nvmetro::Main(argc, argv); }

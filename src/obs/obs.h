// Observability context: one MetricsRegistry + one TraceRecorder per
// experiment/testbed, handed to every data-path component as an optional
// pointer. A null Observability disables everything at one branch per
// hook and — because recording never charges simulated CPU — enabling it
// does not change any simulated timing or CPU figure.
#pragma once

#include <memory>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nvmetro::obs {

struct ObservabilityConfig {
  /// TraceRecorder ring capacity, in events.
  usize trace_capacity = 1 << 16;
  /// Always-on flight recorder (obs/flight.h). On by default — it is the
  /// black box; `false` exists for the overhead ablation and for pinning
  /// that recorder-off behavior is unchanged.
  bool flight = true;
  /// FlightRing capacity per guest queue, in 32-byte records.
  usize flight_ring_capacity = 1 << 12;
  /// Process-wide flight marks ring capacity.
  usize flight_mark_capacity = 256;
};

class Observability {
 public:
  explicit Observability(ObservabilityConfig cfg = {})
      : trace_(cfg.trace_capacity) {
    if (cfg.flight) {
      flight_ = std::make_unique<FlightRecorder>(FlightConfig{
          cfg.flight_ring_capacity, cfg.flight_mark_capacity});
    }
  }
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }
  /// Null when ObservabilityConfig::flight was false.
  FlightRecorder* flight() { return flight_.get(); }
  const FlightRecorder* flight() const { return flight_.get(); }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
  std::unique_ptr<FlightRecorder> flight_;
};

}  // namespace nvmetro::obs

// Observability context: one MetricsRegistry + one TraceRecorder per
// experiment/testbed, handed to every data-path component as an optional
// pointer. A null Observability disables everything at one branch per
// hook and — because recording never charges simulated CPU — enabling it
// does not change any simulated timing or CPU figure.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nvmetro::obs {

struct ObservabilityConfig {
  /// TraceRecorder ring capacity, in events.
  usize trace_capacity = 1 << 16;
};

class Observability {
 public:
  explicit Observability(ObservabilityConfig cfg = {})
      : trace_(cfg.trace_capacity) {}
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

 private:
  MetricsRegistry metrics_;
  TraceRecorder trace_;
};

}  // namespace nvmetro::obs

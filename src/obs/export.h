// Telemetry exporters + the strict validators that gate them.
//
// Two industry formats so runs can be inspected with standard tooling:
//
//  - Chrome/Perfetto trace-event JSON from the TraceRecorder: one
//    process ("pid") per VM, one track ("tid") per routing-path class,
//    a complete-slice ("ph":"X") per attribution stage with the
//    classifier verdict / NVMe status in args, and instant events for
//    timeouts, retries, failovers and SLO breaches. Load with
//    ui.perfetto.dev or chrome://tracing.
//
//  - Prometheus text exposition from the MetricsRegistry: counters as
//    <name>_total, gauges (plus a <name>_max watermark gauge), and
//    histograms as summaries with p50/p99/p999 quantile labels + _sum
//    and _count series.
//
// The validators are deliberately strict (full JSON grammar, line-level
// Prometheus grammar) and are shared verbatim by tests/telemetry_test.cc
// and tools/check_telemetry, so CI rejects an export regression the same
// way the unit tests do.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nvmetro::obs {

/// Chrome trace-event JSON ({"displayTimeUnit":"ns","traceEvents":[...]})
/// of every retained span in `tr`. Timestamps are microseconds (trace
/// format requirement) with nanosecond fraction preserved.
std::string ExportPerfettoJson(const TraceRecorder& tr);

/// Prometheus text exposition format (version 0.0.4) of every metric.
/// Dotted metric names are sanitized ('.' -> '_').
std::string ExportPrometheusText(const MetricsRegistry& reg);

/// Strict trace-event JSON check: full JSON parse + structural rules
/// (root object, "traceEvents" array, per-event ph/name/ts/pid/tid
/// typing, "X" slices need a numeric dur). On failure, fills `error`.
bool ValidateTraceEventJson(const std::string& json, std::string* error);

/// Strict Prometheus text check: every line is a comment/HELP/TYPE or a
/// sample with a legal metric name, legal label syntax and a numeric
/// value; TYPE declarations precede their samples and are not repeated.
bool ValidatePrometheusText(const std::string& text, std::string* error);

}  // namespace nvmetro::obs

#include "obs/metrics.h"

#include <cstdio>

namespace nvmetro::obs {

namespace {
template <typename Map, typename T = typename Map::mapped_type::element_type>
T* FindOrCreate(Map& map, const std::string& name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, std::make_unique<T>()).first;
  }
  return it->second.get();
}

template <typename Map>
const typename Map::mapped_type::element_type* FindOnly(
    const Map& map, const std::string& name) {
  auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

/// Escapes a metric name for use inside a JSON string literal. Names are
/// dotted identifiers by convention, but the export must stay valid JSON
/// for any registered name (quotes, backslashes, control characters).
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (unsigned char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

void AppendJsonKey(std::string* out, const std::string& name, bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  out->push_back('"');
  AppendJsonEscaped(out, name);
  *out += "\":";
}
}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(gauges_, name);
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return FindOrCreate(histograms_, name);
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  return FindOnly(counters_, name);
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  return FindOnly(gauges_, name);
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  return FindOnly(histograms_, name);
}

u64 MetricsRegistry::CounterValue(const std::string& name) const {
  const Counter* c = FindCounter(name);
  return c ? c->value() : 0;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back(GaugeStat{name, g->value(), g->max()});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramStat s;
    s.name = name;
    s.count = h->count();
    s.p50 = h->Median();
    s.p99 = h->P99();
    s.p999 = h->P999();
    s.max = h->max();
    s.sum = h->sum();
    s.mean = h->Mean();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

std::string MetricsRegistry::ToText() const {
  Snapshot snap = TakeSnapshot();
  usize width = 0;
  for (const auto& [name, v] : snap.counters) width = std::max(width, name.size());
  for (const auto& g : snap.gauges) width = std::max(width, g.name.size());
  for (const auto& h : snap.histograms) width = std::max(width, h.name.size());
  std::string out;
  char buf[256];
  for (const auto& [name, v] : snap.counters) {
    std::snprintf(buf, sizeof(buf), "%-*s %llu\n", static_cast<int>(width),
                  name.c_str(), static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& g : snap.gauges) {
    std::snprintf(buf, sizeof(buf), "%-*s %lld (max %lld)\n",
                  static_cast<int>(width), g.name.c_str(),
                  static_cast<long long>(g.value),
                  static_cast<long long>(g.max));
    out += buf;
  }
  for (const auto& h : snap.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-*s count=%llu p50=%lluns p99=%lluns p999=%lluns "
                  "max=%lluns mean=%.0fns sum=%lluns\n",
                  static_cast<int>(width), h.name.c_str(),
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p99),
                  static_cast<unsigned long long>(h.p999),
                  static_cast<unsigned long long>(h.max), h.mean,
                  static_cast<unsigned long long>(h.sum));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  Snapshot snap = TakeSnapshot();
  std::string out = "{\"counters\":{";
  char buf[192];
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    AppendJsonKey(&out, name, &first);
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    AppendJsonKey(&out, g.name, &first);
    std::snprintf(buf, sizeof(buf), "{\"value\":%lld,\"max\":%lld}",
                  static_cast<long long>(g.value),
                  static_cast<long long>(g.max));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    AppendJsonKey(&out, h.name, &first);
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                  "\"p999_ns\":%llu,\"max_ns\":%llu,\"mean_ns\":%.1f,"
                  "\"sum_ns\":%llu}",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p99),
                  static_cast<unsigned long long>(h.p999),
                  static_cast<unsigned long long>(h.max), h.mean,
                  static_cast<unsigned long long>(h.sum));
    out += buf;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  for (auto& [name, c] : counters_) *c = Counter{};
  for (auto& [name, g] : gauges_) *g = Gauge{};
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace nvmetro::obs

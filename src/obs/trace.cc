#include "obs/trace.h"

#include <cstdio>

namespace nvmetro::obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kVsqPop: return "VSQ_POP";
    case SpanKind::kClassifier: return "CLASSIFIER";
    case SpanKind::kDispatchFast: return "DISPATCH_FAST";
    case SpanKind::kDispatchNotify: return "DISPATCH_NOTIFY";
    case SpanKind::kDispatchKernel: return "DISPATCH_KERNEL";
    case SpanKind::kHcqComplete: return "HCQ_COMPLETE";
    case SpanKind::kNcqComplete: return "NCQ_COMPLETE";
    case SpanKind::kKcqComplete: return "KCQ_COMPLETE";
    case SpanKind::kUifWork: return "UIF_WORK";
    case SpanKind::kUifRespond: return "UIF_RESPOND";
    case SpanKind::kVcqPost: return "VCQ_POST";
    case SpanKind::kIrqInject: return "IRQ_INJECT";
    case SpanKind::kTimeout: return "TIMEOUT";
    case SpanKind::kRetry: return "RETRY";
    case SpanKind::kUifFailover: return "UIF_FAILOVER";
    case SpanKind::kBatch: return "BATCH";
    case SpanKind::kKernelDone: return "KBIO_DONE";
    case SpanKind::kSloBreach: return "SLO_BREACH";
    case SpanKind::kQosAdmit: return "QOS_ADMIT";
    case SpanKind::kQosShed: return "QOS_SHED";
    case SpanKind::kOverloadState: return "OVERLOAD_STATE";
    case SpanKind::kOverloadShed: return "OVERLOAD_SHED";
    case SpanKind::kResubmit: return "RESUBMIT";
  }
  return "?";
}

const char* TraceHookName(u64 hook) {
  switch (hook) {
    case 0: return "VSQ";
    case 1: return "HCQ";
    case 2: return "NCQ";
    case 3: return "KCQ";
  }
  return "?";
}

TraceRecorder::TraceRecorder(usize capacity)
    : ring_(capacity ? capacity : 1) {}

void TraceRecorder::Record(const TraceEvent& ev) {
  TraceEvent& slot = ring_[total_ % ring_.size()];
  if (total_ >= ring_.size() && slot.req_id > eviction_horizon_) {
    // Overwriting an event of request `slot.req_id`: every request up to
    // that id may now have a hole in its retained span.
    eviction_horizon_ = slot.req_id;
  }
  slot = ev;
  total_++;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  usize n = size();
  out.reserve(n);
  u64 start = total_ - n;
  for (u64 i = 0; i < n; i++) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::EventsFor(u64 req_id) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : Events()) {
    if (ev.req_id == req_id) out.push_back(ev);
  }
  return out;
}

std::string TraceRecorder::PathString(u64 req_id) const {
  std::string out;
  if (truncated(req_id)) out = "...";
  for (const TraceEvent& ev : EventsFor(req_id)) {
    if (!out.empty()) out += " > ";
    out += SpanKindName(ev.kind);
    if (ev.kind == SpanKind::kClassifier) {
      out += "(";
      out += TraceHookName(ev.hook);
      out += ")";
    }
  }
  return out;
}

std::string TraceRecorder::FormatEvent(const TraceEvent& ev) {
  char buf[160];
  if (ev.kind == SpanKind::kClassifier) {
    std::snprintf(buf, sizeof(buf),
                  "t=%llu req=%llu vm=%u %s(%s) verdict=0x%llx",
                  static_cast<unsigned long long>(ev.t),
                  static_cast<unsigned long long>(ev.req_id), ev.vm_id,
                  SpanKindName(ev.kind), TraceHookName(ev.hook),
                  static_cast<unsigned long long>(ev.aux));
  } else {
    std::snprintf(buf, sizeof(buf), "t=%llu req=%llu vm=%u %s status=0x%x",
                  static_cast<unsigned long long>(ev.t),
                  static_cast<unsigned long long>(ev.req_id), ev.vm_id,
                  SpanKindName(ev.kind), ev.status);
  }
  return buf;
}

std::string TraceRecorder::DumpRequest(u64 req_id) const {
  std::string out;
  for (const TraceEvent& ev : EventsFor(req_id)) {
    out += FormatEvent(ev);
    out += "\n";
  }
  return out;
}

void TraceRecorder::Reset() {
  total_ = 0;
  eviction_horizon_ = 0;
  next_req_id_ = 1;
  opened_ = 0;
  closed_ = 0;
}

}  // namespace nvmetro::obs

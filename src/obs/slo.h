// SLO watchdog: windowed latency / error-rate targets over the metrics
// stream, ReFlex-style (per-tenant tail-latency SLOs as a first-class
// control input).
//
// Opt-in: nothing is evaluated unless targets are added and Start() (or
// EvaluateWindow()) is called. Each evaluation window computes windowed
// statistics via LatencyHistogram/Counter deltas — a breach in window N
// does not contaminate window N+1. Breaches are published three ways so
// every consumer sees the same timeline:
//   - counter  slo.<target>.breaches   (cumulative breach windows)
//   - gauge    slo.<target>.breached   (1 while the last window breached)
//   - trace    SLO_BREACH mark (req_id 0, aux = window end time,
//              status = target index) for the Perfetto export
//
// Like TimeSeries, scheduling is horizon-based via a caller-supplied
// scheduler callback (the obs library cannot link the simulator).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace nvmetro::obs {

class SloWatchdog {
 public:
  struct Config {
    SimTime interval_ns = 1'000'000;  // 1 ms evaluation windows
  };

  /// `trace` may be null (no trace marks, metrics only).
  SloWatchdog(MetricsRegistry* registry, TraceRecorder* trace, Config cfg);
  SloWatchdog(const SloWatchdog&) = delete;
  SloWatchdog& operator=(const SloWatchdog&) = delete;

  /// Breach when quantile `q` of `hist_metric`'s *window* samples exceeds
  /// `max_ns`. Windows with no samples never breach.
  void AddLatencyTarget(const std::string& name, const std::string& hist_metric,
                        double q, u64 max_ns);

  /// Breach when (window errors / window total) exceeds `max_rate`.
  /// Windows where the total did not move never breach.
  void AddErrorRateTarget(const std::string& name,
                          const std::string& err_metric,
                          const std::string& total_metric, double max_rate);

  /// Pre-schedules one evaluation per interval over (start, horizon].
  void Start(SimTime start, SimTime horizon, const TelemetryScheduler& sched);

  /// Evaluates every target over the window since the previous call.
  void EvaluateWindow(SimTime now);

  struct Breach {
    SimTime t = 0;  // window end
    std::string target;
    double observed = 0;
    double limit = 0;
  };
  const std::vector<Breach>& breaches() const { return breaches_; }
  u64 breach_windows(const std::string& target) const;
  u64 windows_evaluated() const { return windows_; }

  /// Invoked synchronously on every breach, after it is published to
  /// metrics/trace. The flight-recorder trigger framework hangs off this
  /// (FlightTriggers::ArmSlo); anything else can observe breaches the
  /// same way without polling breaches().
  void SetBreachHook(std::function<void(const Breach&)> hook) {
    breach_hook_ = std::move(hook);
  }

 private:
  struct Target {
    std::string name;
    bool latency = false;
    // latency target
    std::string hist_metric;
    double q = 0.99;
    u64 max_ns = 0;
    LatencyHistogram prev;
    bool primed = false;
    // error-rate target
    std::string err_metric;
    std::string total_metric;
    double max_rate = 0;
    u64 last_err = 0;
    u64 last_total = 0;
    // published metrics
    Counter* breaches_ctr = nullptr;
    Gauge* breached_gauge = nullptr;
    u64 breach_windows = 0;
  };

  void Publish(Target* t, usize index, SimTime now, double observed,
               double limit, bool breached);

  MetricsRegistry* registry_;
  TraceRecorder* trace_;
  Config cfg_;
  std::vector<Target> targets_;
  std::vector<Breach> breaches_;
  std::function<void(const Breach&)> breach_hook_;
  u64 windows_ = 0;
};

}  // namespace nvmetro::obs

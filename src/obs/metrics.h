// Metrics registry: named counters, gauges and sim-time histograms.
//
// The paper's evaluation is built on per-path accounting — polling-thread
// CPU, fast/kernel/notify splits, tail latency (§III-C, Figs. 3-5,
// 11-13). The registry gives every data-path component a place to publish
// those numbers without ad-hoc tally members:
//
//  - Registration (`GetCounter` etc.) happens once, at attach/setup time,
//    and returns a pointer that stays valid for the registry's lifetime.
//  - The hot path is a plain `counter->Inc()` / `hist->Record(ns)` on the
//    cached pointer: no lookup, no allocation, no locking (the simulation
//    is single-threaded).
//  - Snapshots copy values out, so exporting or asserting on a snapshot
//    is isolated from concurrent-in-sim-time mutation.
//  - Export to aligned text (human) and JSON (tooling/figures).
//
// Components take an optional `obs::Observability*` and cache null metric
// pointers when it is absent, so a disabled registry costs one branch and
// zero simulated time.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace nvmetro::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(u64 n = 1) { value_ += n; }
  u64 value() const { return value_; }

 private:
  u64 value_ = 0;
};

/// Instantaneous level (queue depth, open spans...). May go negative
/// transiently while legs of a fan-out settle. Tracks its high watermark
/// since reset, so peak queue depth survives a snapshot instead of being
/// lost between samples.
class Gauge {
 public:
  void Set(i64 v) {
    value_ = v;
    if (v > max_) max_ = v;
  }
  void Add(i64 d) { Set(value_ + d); }
  i64 value() const { return value_; }
  /// Highest value ever Set/Add-ed since construction or reset (0 if the
  /// gauge never went positive).
  i64 max() const { return max_; }

 private:
  i64 value_ = 0;
  i64 max_ = 0;
};

/// Named metrics, find-or-create. Names are dotted paths by convention:
/// "<component>.<path>.<what>", e.g. "router.fast.sends" (see DESIGN.md
/// "Observability" for the taxonomy).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned pointer is stable until the registry is
  /// destroyed — cache it and increment without further lookups.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Find-only (nullptr when the metric was never registered). For tests
  /// and exporters that must not create metrics as a side effect.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  /// Convenience for assertions: value of a counter, 0 when absent.
  u64 CounterValue(const std::string& name) const;

  /// Point-in-time copy of every metric value. Mutations after the
  /// snapshot do not affect it.
  struct GaugeStat {
    std::string name;
    i64 value = 0;
    i64 max = 0;  // high watermark since reset
  };
  struct HistogramStat {
    std::string name;
    u64 count = 0;
    u64 p50 = 0;
    u64 p99 = 0;
    u64 p999 = 0;
    u64 max = 0;
    u64 sum = 0;  // CPU-accounting figures need totals, not just quantiles
    double mean = 0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, u64>> counters;
    std::vector<GaugeStat> gauges;
    std::vector<HistogramStat> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Aligned "name value" text block, histograms as p50/p99/max/mean.
  std::string ToText() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}} on one line.
  std::string ToJson() const;

  /// Zeroes every registered metric (pointers stay valid).
  void Reset();

  usize size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map: ordered export, stable node addresses.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace nvmetro::obs

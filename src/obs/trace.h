// Per-request trace spans: the routing state machine, observable.
//
// Every request that enters the I/O router gets a process-wide id, and
// each lifecycle hook — VSQ pop, classifier verdict, fast/kernel/notify
// dispatch, HCQ/NCQ/KCQ completion, UIF work/response, VCQ post, IRQ
// inject — stamps a TraceEvent into a fixed-size ring buffer with the
// simulated timestamp and the hook's payload (classifier verdict, NVMe
// status). Because the simulator is deterministic, the event sequence of
// a request is bit-stable across runs: the golden-trace tests in
// tests/obs_test.cc pin the exact hook sequence per routing path and fail
// on any silent routing regression.
//
// Recording is allocation-free: the ring is sized up front and old events
// are overwritten on wraparound. Open/closed request accounting doubles
// as a leak detector for stuck requests (open_requests() != 0 after a
// drained run means a span never completed).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace nvmetro::obs {

/// One stamp per lifecycle hook. Values are ABI-stable within a build
/// only; golden traces assert on the names from SpanKindName().
enum class SpanKind : u8 {
  kVsqPop = 0,         // request popped from a guest VSQ
  kClassifier,         // eBPF classifier ran (hook + verdict recorded)
  kDispatchFast,       // HSQ push to the physical controller
  kDispatchNotify,     // NSQ push to the UIF
  kDispatchKernel,     // NVMe->bio translation + host block submit
  kHcqComplete,        // fast-path completion observed on the HCQ
  kNcqComplete,        // notify-path completion observed on the NCQ
  kKcqComplete,        // kernel-path completion drained from the mailbox
  kUifWork,            // UIF framework dispatched the command to work()
  kUifRespond,         // UIF pushed its NCQ response
  kVcqPost,            // CQE written to the guest VCQ
  kIrqInject,          // guest interrupt fired (posted-interrupt latency)
  kTimeout,            // request deadline fired; outstanding legs aborted
  kRetry,              // a transient leg failure was re-dispatched
  kUifFailover,        // notify leg abandoned (UIF dead / detached)
  kBatch,              // request drained in a multi-command batch
                       // (aux = batch size; only stamped for size > 1)
  kKernelDone,         // kernel-path host bio completed (pre-mailbox)
  kSloBreach,          // SLO watchdog breach mark (req_id = 0;
                       // aux = window end, status = target index)
  kQosAdmit,           // deferred request finally admitted by the QoS
                       // scheduler (aux = parked ns; never stamped for
                       // requests admitted without waiting)
  kQosShed,            // request shed at the QoS deferral bound
  kOverloadState,      // overload-controller transition mark (req_id = 0;
                       // aux = new state, status = previous state)
  kOverloadShed,       // request rejected by the overload controller's
                       // Shed state (retryable busy to the guest)
  kResubmit,           // classifier kResubmit accepted: dependent read
                       // re-issued below the guest (aux = new slba)
};

const char* SpanKindName(SpanKind kind);

/// Classifier hook names for FormatEvent ("VSQ", "HCQ", "NCQ", "KCQ").
const char* TraceHookName(u64 hook);

struct TraceEvent {
  u64 req_id = 0;    // process-wide request id (Observability::BeginRequest)
  SimTime t = 0;     // simulated timestamp
  u64 aux = 0;       // classifier verdict for kClassifier, else 0
  u32 vm_id = 0;
  u16 status = 0;    // NVMe status where the hook carries one
  SpanKind kind = SpanKind::kVsqPop;
  u8 hook = 0;       // core::Hook for kClassifier
};

/// Fixed-capacity ring of TraceEvents plus request open/close accounting.
class TraceRecorder {
 public:
  explicit TraceRecorder(usize capacity = 1 << 16);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Stamps one event. O(1), no allocation; overwrites the oldest event
  /// once the ring is full.
  void Record(const TraceEvent& ev);

  /// Opens a request span and returns its id (monotonic from 1).
  u64 BeginRequest() {
    opened_++;
    return next_req_id_++;
  }
  /// Closes a request span (the guest saw its completion).
  void EndRequest() { closed_++; }

  u64 requests_opened() const { return opened_; }
  u64 requests_closed() const { return closed_; }
  /// Leak detector: non-zero after a drained run means stuck requests.
  u64 open_requests() const { return opened_ - closed_; }

  usize capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  usize size() const { return total_ < ring_.size() ? total_ : ring_.size(); }
  /// Events ever recorded, including overwritten ones.
  u64 total_recorded() const { return total_; }

  /// Chronological copy (oldest retained event first).
  std::vector<TraceEvent> Events() const;

  /// All retained events of one request, in order.
  std::vector<TraceEvent> EventsFor(u64 req_id) const;

  /// The golden-trace form: retained hooks of `req_id` joined with " > ",
  /// e.g. "VSQ_POP > CLASSIFIER(VSQ) > DISPATCH_FAST > HCQ_COMPLETE >
  /// VCQ_POST > IRQ_INJECT". A span whose early events were evicted by
  /// ring wraparound is prefixed with "... > " so a partial path can
  /// never be mistaken for a complete one.
  std::string PathString(u64 req_id) const;

  /// True if any event of `req_id` may have been evicted by wraparound:
  /// the ring has overwritten events of a request with an id >= req_id.
  /// Conservative (a wrapped ring may still retain every event of a
  /// *later* request in full, which is exactly what this distinguishes).
  bool truncated(u64 req_id) const {
    return req_id != 0 && req_id <= eviction_horizon_;
  }
  /// Highest request id that lost at least one event to eviction.
  u64 eviction_horizon() const { return eviction_horizon_; }

  /// "t=12345 req=7 vm=1 CLASSIFIER(VSQ) verdict=0x20011 status=0x0".
  static std::string FormatEvent(const TraceEvent& ev);

  /// Multi-line dump of one request's retained events.
  std::string DumpRequest(u64 req_id) const;

  /// Drops events and resets counters (capacity is kept).
  void Reset();

 private:
  std::vector<TraceEvent> ring_;
  u64 total_ = 0;  // next write position is total_ % capacity
  u64 eviction_horizon_ = 0;  // max req_id that lost an event to wraparound
  u64 next_req_id_ = 1;
  u64 opened_ = 0;
  u64 closed_ = 0;
};

}  // namespace nvmetro::obs

#include "obs/export.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "obs/span.h"

namespace nvmetro::obs {

namespace {

/// Trace-format "tid" for a routing-path class (0 is the telemetry track).
int PathTid(PathClass pc) { return static_cast<int>(pc) + 1; }

}  // namespace

std::string ExportPerfettoJson(const TraceRecorder& tr) {
  std::vector<TraceEvent> events = tr.Events();

  // Group per request, preserving chronological order within each.
  std::map<u64, std::vector<TraceEvent>> by_req;
  std::vector<TraceEvent> marks;  // req_id == 0 (SLO breaches etc.)
  for (const TraceEvent& ev : events) {
    if (ev.req_id == 0) {
      marks.push_back(ev);
    } else {
      by_req[ev.req_id].push_back(ev);
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  char buf[320];
  std::set<u32> pids;
  std::set<std::pair<u32, int>> tracks;

  for (const auto& [req_id, evs] : by_req) {
    PathClass pc = ClassifyPath(evs);
    int tid = PathTid(pc);
    u32 pid = evs.front().vm_id;
    pids.insert(pid);
    tracks.insert({pid, tid});
    for (usize i = 1; i < evs.size(); i++) {
      const TraceEvent& a = evs[i - 1];
      const TraceEvent& b = evs[i];
      comma();
      // ts/dur are microseconds in the trace-event format; %.3f keeps
      // the nanosecond fraction exactly.
      std::snprintf(
          buf, sizeof(buf),
          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
          "\"dur\":%.3f,\"pid\":%u,\"tid\":%d,\"args\":{\"req\":%llu,"
          "\"status\":\"0x%x\",\"aux\":%llu}}",
          SpanKindName(b.kind), StageName(StageForKind(b.kind)),
          static_cast<double>(a.t) / 1000.0,
          static_cast<double>(b.t - a.t) / 1000.0, pid, tid,
          static_cast<unsigned long long>(req_id), b.status,
          static_cast<unsigned long long>(b.aux));
      out += buf;
      // Fault-handling hooks double as instants so they stay visible at
      // any zoom level.
      if (b.kind == SpanKind::kTimeout || b.kind == SpanKind::kRetry ||
          b.kind == SpanKind::kUifFailover) {
        comma();
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%u,"
                      "\"tid\":%d,\"s\":\"t\",\"args\":{\"req\":%llu}}",
                      SpanKindName(b.kind),
                      static_cast<double>(b.t) / 1000.0, pid, tid,
                      static_cast<unsigned long long>(req_id));
        out += buf;
      }
    }
  }

  for (const TraceEvent& ev : marks) {
    pids.insert(ev.vm_id);
    tracks.insert({ev.vm_id, 0});
    comma();
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":%u,"
                  "\"tid\":0,\"s\":\"g\",\"args\":{\"target\":%u}}",
                  SpanKindName(ev.kind), static_cast<double>(ev.t) / 1000.0,
                  ev.vm_id, ev.status);
    out += buf;
  }

  for (u32 pid : pids) {
    comma();
    if (pid == 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
                    "\"args\":{\"name\":\"telemetry\"}}");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"args\":{\"name\":\"VM %u\"}}",
                    pid, pid);
    }
    out += buf;
  }
  for (const auto& [pid, tid] : tracks) {
    comma();
    const char* name =
        tid == 0 ? "marks"
                 : PathClassName(static_cast<PathClass>(tid - 1));
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s path\"}}",
                  pid, tid, name);
    out += buf;
  }

  out += "]}";
  return out;
}

namespace {

std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (usize i = 0; i < name.size(); i++) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (i > 0 && c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) out.push_back('_');
  return out;
}

}  // namespace

std::string ExportPrometheusText(const MetricsRegistry& reg) {
  MetricsRegistry::Snapshot snap = reg.TakeSnapshot();
  std::string out;
  char buf[256];
  for (const auto& [name, v] : snap.counters) {
    std::string n = SanitizeMetricName(name) + "_total";
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %llu\n", n.c_str(),
                  n.c_str(), static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& g : snap.gauges) {
    std::string n = SanitizeMetricName(g.name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %lld\n", n.c_str(),
                  n.c_str(), static_cast<long long>(g.value));
    out += buf;
    std::snprintf(buf, sizeof(buf), "# TYPE %s_max gauge\n%s_max %lld\n",
                  n.c_str(), n.c_str(), static_cast<long long>(g.max));
    out += buf;
  }
  for (const auto& h : snap.histograms) {
    std::string n = SanitizeMetricName(h.name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s summary\n", n.c_str());
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s{quantile=\"0.5\"} %llu\n", n.c_str(),
                  static_cast<unsigned long long>(h.p50));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s{quantile=\"0.99\"} %llu\n", n.c_str(),
                  static_cast<unsigned long long>(h.p99));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s{quantile=\"0.999\"} %llu\n", n.c_str(),
                  static_cast<unsigned long long>(h.p999));
    out += buf;
    std::snprintf(buf, sizeof(buf), "%s_sum %llu\n%s_count %llu\n", n.c_str(),
                  static_cast<unsigned long long>(h.sum), n.c_str(),
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Strict validators
// ---------------------------------------------------------------------------

namespace {

/// Minimal but complete JSON value model + recursive-descent parser.
/// Unlike the metrics-export round-trip parser in tests (objects and
/// scalars only), this handles the full grammar — the trace-event format
/// needs arrays, booleans and floating-point timestamps.
struct JValue {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : p_(s.data()), end_(p_ + s.size()) {}

  bool Parse(JValue* out, std::string* error) {
    SkipWs();
    if (!ParseValue(out)) {
      if (error) *error = err_.empty() ? "parse error" : err_;
      return false;
    }
    SkipWs();
    if (p_ != end_) {
      if (error) *error = "trailing data after JSON value";
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      p_++;
    }
  }

  bool Fail(const char* msg) {
    if (err_.empty()) err_ = msg;
    return false;
  }

  bool Literal(const char* lit) {
    const char* q = p_;
    while (*lit) {
      if (q == end_ || *q != *lit) return false;
      q++;
      lit++;
    }
    p_ = q;
    return true;
  }

  bool ParseValue(JValue* out) {
    if (p_ == end_) return Fail("unexpected end of input");
    switch (*p_) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"':
        out->kind = JValue::kStr;
        return ParseString(&out->str);
      case 't':
        if (!Literal("true")) return Fail("bad literal");
        out->kind = JValue::kBool;
        out->b = true;
        return true;
      case 'f':
        if (!Literal("false")) return Fail("bad literal");
        out->kind = JValue::kBool;
        out->b = false;
        return true;
      case 'n':
        if (!Literal("null")) return Fail("bad literal");
        out->kind = JValue::kNull;
        return true;
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JValue* out) {
    out->kind = JValue::kObj;
    p_++;  // '{'
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      p_++;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (p_ == end_ || *p_ != '"') return Fail("expected object key");
      if (!ParseString(&key)) return false;
      SkipWs();
      if (p_ == end_ || *p_ != ':') return Fail("expected ':'");
      p_++;
      SkipWs();
      JValue v;
      if (!ParseValue(&v)) return false;
      out->obj[key] = std::move(v);
      SkipWs();
      if (p_ == end_) return Fail("unterminated object");
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == '}') {
        p_++;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(JValue* out) {
    out->kind = JValue::kArr;
    p_++;  // '['
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      p_++;
      return true;
    }
    while (true) {
      SkipWs();
      JValue v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (p_ == end_) return Fail("unterminated array");
      if (*p_ == ',') {
        p_++;
        continue;
      }
      if (*p_ == ']') {
        p_++;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseString(std::string* out) {
    p_++;  // '"'
    while (p_ != end_) {
      unsigned char c = static_cast<unsigned char>(*p_);
      if (c == '"') {
        p_++;
        return true;
      }
      if (c == '\\') {
        p_++;
        if (p_ == end_) return Fail("bad escape");
        char e = *p_++;
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned v = 0;
            for (int i = 0; i < 4; i++) {
              if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_)))
                return Fail("bad \\u escape");
              char h = *p_++;
              v = v * 16 + static_cast<unsigned>(
                               h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            // Validation only: stash the code point as '?' placeholders.
            out->push_back('?');
            (void)v;
            break;
          }
          default: return Fail("bad escape");
        }
        continue;
      }
      if (c < 0x20) return Fail("raw control character in string");
      out->push_back(static_cast<char>(c));
      p_++;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JValue* out) {
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') p_++;
    if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
      return Fail("bad number");
    if (*p_ == '0') {
      p_++;
    } else {
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) p_++;
    }
    if (p_ != end_ && *p_ == '.') {
      p_++;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return Fail("bad number fraction");
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) p_++;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      p_++;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) p_++;
      if (p_ == end_ || !std::isdigit(static_cast<unsigned char>(*p_)))
        return Fail("bad number exponent");
      while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) p_++;
    }
    out->kind = JValue::kNum;
    out->num = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }

  const char* p_;
  const char* end_;
  std::string err_;
};

bool EventFail(std::string* error, usize index, const char* msg) {
  if (error) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "traceEvents[%zu]: %s", index, msg);
    *error = buf;
  }
  return false;
}

bool HasNum(const JValue& ev, const char* key) {
  auto it = ev.obj.find(key);
  return it != ev.obj.end() && it->second.kind == JValue::kNum;
}

bool HasStr(const JValue& ev, const char* key) {
  auto it = ev.obj.find(key);
  return it != ev.obj.end() && it->second.kind == JValue::kStr;
}

}  // namespace

bool ValidateTraceEventJson(const std::string& json, std::string* error) {
  JValue root;
  if (!JsonParser(json).Parse(&root, error)) return false;
  if (root.kind != JValue::kObj) {
    if (error) *error = "root is not an object";
    return false;
  }
  auto it = root.obj.find("traceEvents");
  if (it == root.obj.end() || it->second.kind != JValue::kArr) {
    if (error) *error = "missing traceEvents array";
    return false;
  }
  const std::vector<JValue>& evs = it->second.arr;
  for (usize i = 0; i < evs.size(); i++) {
    const JValue& ev = evs[i];
    if (ev.kind != JValue::kObj) return EventFail(error, i, "not an object");
    if (!HasStr(ev, "ph")) return EventFail(error, i, "missing ph");
    const std::string& ph = ev.obj.at("ph").str;
    if (!HasStr(ev, "name")) return EventFail(error, i, "missing name");
    if (ph == "M") {
      auto ait = ev.obj.find("args");
      if (ait == ev.obj.end() || ait->second.kind != JValue::kObj)
        return EventFail(error, i, "metadata without args object");
      continue;
    }
    if (ph != "X" && ph != "i" && ph != "B" && ph != "E" && ph != "C")
      return EventFail(error, i, "unknown ph");
    if (!HasNum(ev, "ts")) return EventFail(error, i, "missing numeric ts");
    if (!HasNum(ev, "pid")) return EventFail(error, i, "missing numeric pid");
    if (!HasNum(ev, "tid")) return EventFail(error, i, "missing numeric tid");
    if (ph == "X") {
      if (!HasNum(ev, "dur")) return EventFail(error, i, "X without dur");
      if (ev.obj.at("dur").num < 0) return EventFail(error, i, "negative dur");
    }
  }
  return true;
}

namespace {

bool IsMetricNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}
bool IsMetricNameChar(char c) {
  return IsMetricNameStart(c) || (c >= '0' && c <= '9');
}

bool LineFail(std::string* error, usize lineno, const char* msg) {
  if (error) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "line %zu: %s", lineno, msg);
    *error = buf;
  }
  return false;
}

}  // namespace

bool ValidatePrometheusText(const std::string& text, std::string* error) {
  std::set<std::string> typed;
  std::string current_family;
  std::string current_type;
  usize lineno = 0;
  usize pos = 0;
  while (pos < text.size()) {
    usize nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      return LineFail(error, lineno + 1, "last line not newline-terminated");
    }
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    lineno++;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# TYPE <name> <type>" / "# HELP <name> <text>" / free comment.
      if (line.rfind("# TYPE ", 0) == 0) {
        usize sp = line.find(' ', 7);
        if (sp == std::string::npos)
          return LineFail(error, lineno, "malformed TYPE line");
        std::string name = line.substr(7, sp - 7);
        std::string type = line.substr(sp + 1);
        if (name.empty() || !IsMetricNameStart(name[0]))
          return LineFail(error, lineno, "bad metric name in TYPE");
        for (char c : name) {
          if (!IsMetricNameChar(c))
            return LineFail(error, lineno, "bad metric name in TYPE");
        }
        if (type != "counter" && type != "gauge" && type != "summary" &&
            type != "histogram" && type != "untyped")
          return LineFail(error, lineno, "unknown metric type");
        if (!typed.insert(name).second)
          return LineFail(error, lineno, "duplicate TYPE declaration");
        current_family = name;
        current_type = type;
      }
      continue;
    }
    // Sample line: name[{labels}] value [timestamp]
    usize i = 0;
    if (!IsMetricNameStart(line[0]))
      return LineFail(error, lineno, "bad metric name");
    while (i < line.size() && IsMetricNameChar(line[i])) i++;
    std::string name = line.substr(0, i);
    if (i < line.size() && line[i] == '{') {
      i++;
      while (true) {
        if (i >= line.size()) return LineFail(error, lineno, "unclosed labels");
        if (line[i] == '}') {
          i++;
          break;
        }
        usize lstart = i;
        if (!((line[i] >= 'a' && line[i] <= 'z') ||
              (line[i] >= 'A' && line[i] <= 'Z') || line[i] == '_'))
          return LineFail(error, lineno, "bad label name");
        while (i < line.size() &&
               (IsMetricNameChar(line[i]) && line[i] != ':')) {
          i++;
        }
        if (i == lstart || i >= line.size() || line[i] != '=')
          return LineFail(error, lineno, "bad label");
        i++;
        if (i >= line.size() || line[i] != '"')
          return LineFail(error, lineno, "label value not quoted");
        i++;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') i++;  // escaped char
          i++;
        }
        if (i >= line.size())
          return LineFail(error, lineno, "unterminated label value");
        i++;  // closing quote
        if (i < line.size() && line[i] == ',') i++;
      }
    }
    if (i >= line.size() || line[i] != ' ')
      return LineFail(error, lineno, "missing value separator");
    i++;
    const char* vstart = line.c_str() + i;
    char* vend = nullptr;
    std::strtod(vstart, &vend);
    if (vend == vstart) return LineFail(error, lineno, "unparsable value");
    usize rest = i + static_cast<usize>(vend - vstart);
    if (rest != line.size()) {
      // Optional timestamp: a single integer after one space.
      if (line[rest] != ' ')
        return LineFail(error, lineno, "trailing garbage after value");
      for (usize k = rest + 1; k < line.size(); k++) {
        if (!std::isdigit(static_cast<unsigned char>(line[k])) &&
            !(k == rest + 1 && line[k] == '-'))
          return LineFail(error, lineno, "bad timestamp");
      }
    }
    // Every sample must belong to the most recent TYPE declaration.
    bool matches = name == current_family;
    if (!matches && (current_type == "summary" || current_type == "histogram")) {
      matches = name == current_family + "_sum" ||
                name == current_family + "_count";
    }
    if (!matches)
      return LineFail(error, lineno, "sample without preceding TYPE");
  }
  return true;
}

}  // namespace nvmetro::obs

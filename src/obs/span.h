// Span analytics: where did the nanoseconds go?
//
// TraceRecorder answers *what happened* to a request (the hook sequence);
// this module answers *where the time went*. SpanAnalyzer folds the
// recorded TraceEvent stream into per-request stage breakdowns — VSQ pop
// → classify → dispatch → device/UIF service → completion harvest → VCQ
// post (→ IRQ delivery) — and aggregates them per routing path and per
// VM into stage histograms.
//
// The attribution is exact, not approximate: each delta between two
// consecutive events of a request is assigned to exactly one stage (the
// stage is named by the *later* event), so the per-request stage sums
// telescope to end-to-end latency to the nanosecond. The simulator is
// deterministic, so tests assert this as an equality across every
// routing path, batch size and fault schedule.
//
// Requests whose early events were evicted by ring wraparound
// (TraceRecorder::truncated) and requests that never reached VCQ_POST
// are excluded from the aggregates and counted separately — a truncated
// span would attribute a plausible-but-wrong partial sum.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "obs/trace.h"

namespace nvmetro::obs {

/// Latency attribution stages. Every SpanKind maps to exactly one stage
/// (StageForKind); IRQ delivery is tracked separately because it lands
/// after the guest-visible completion and is not part of e2e latency.
enum class Stage : u8 {
  kClassify = 0,  // VSQ queueing + classifier run (incl. batch drain)
  kDispatch,      // verdict applied: HSQ/NSQ push or bio translation
  kUifQueue,      // NSQ residency until the UIF poller picked it up
  kUifService,    // UIF work() until its NCQ response
  kDevice,        // device service (HCQ observe / host bio complete)
  kHarvest,       // completion residency until the router drained it
  kRetryWait,     // backoff before a transient leg re-dispatch
  kFailover,      // deadline abort / UIF failover handling
  kPost,          // completion merge + CQE write to the guest VCQ
  kQosWait,       // parked by QoS admission until tokens were granted
  kResubmit,      // classifier-chained re-issue (completion-hook rerun
                  // + LBA rewrite + re-dispatch of the same slot)
  kCount,
};
constexpr usize kStageCount = static_cast<usize>(Stage::kCount);

const char* StageName(Stage stage);

/// Which stage a delta *ending* at an event of this kind belongs to.
Stage StageForKind(SpanKind kind);

/// Routing-path classification of one request's event sequence, from the
/// dispatch kinds it contains: none -> direct-complete, one -> that
/// path, several distinct -> fan-out.
enum class PathClass : u8 {
  kDirect = 0,  // classifier completed inline (no dispatch)
  kFast,
  kKernel,
  kNotify,
  kFanout,
  kCount,
};
constexpr usize kPathClassCount = static_cast<usize>(PathClass::kCount);

const char* PathClassName(PathClass pc);

PathClass ClassifyPath(const std::vector<TraceEvent>& events);

/// One request's attribution: per-stage nanoseconds summing exactly to
/// e2e (VSQ pop -> VCQ post), plus the post-completion IRQ delay.
struct RequestBreakdown {
  u64 req_id = 0;
  u32 vm_id = 0;
  PathClass path = PathClass::kDirect;
  u64 e2e_ns = 0;
  u64 irq_ns = 0;  // VCQ post -> IRQ inject (outside e2e)
  std::array<u64, kStageCount> stage_ns{};

  u64 StageSum() const {
    u64 s = 0;
    for (u64 v : stage_ns) s += v;
    return s;
  }
};

class SpanAnalyzer {
 public:
  /// Stage histograms over a set of requests (one routing path or VM).
  struct Aggregate {
    u64 requests = 0;
    LatencyHistogram e2e;
    LatencyHistogram irq;
    std::array<LatencyHistogram, kStageCount> stages;
    std::array<u64, kStageCount> stage_sum_ns{};  // totals for tables
  };

  /// Folds every retained, complete, non-truncated span in `tr` into
  /// breakdowns and aggregates. May be called repeatedly (accumulates);
  /// call Reset() between independent runs.
  void Analyze(const TraceRecorder& tr);

  const std::vector<RequestBreakdown>& requests() const { return requests_; }
  const std::array<Aggregate, kPathClassCount>& by_path() const {
    return by_path_;
  }
  const std::map<u32, Aggregate>& by_vm() const { return by_vm_; }

  /// Spans skipped because ring wraparound evicted part of them.
  u64 truncated_spans() const { return truncated_spans_; }
  /// Spans skipped because they never reached VCQ_POST (stuck/aborted).
  u64 open_spans() const { return open_spans_; }

  /// Verifies sum(stage_ns) == e2e_ns for every analyzed request.
  /// Returns false and describes the first violator in `error`.
  bool CheckExactAttribution(std::string* error) const;

  /// Stage signature of one path: names of the stages that received any
  /// time, joined with "+", e.g. "classify+dispatch+device+post".
  /// Golden-table tests pin this per routing path.
  std::string StageSignature(PathClass pc) const;

  /// Human-readable per-path stage table (mean ns per stage, e2e p50/p99).
  std::string RenderTable() const;

  void Reset();

 private:
  void Fold(const RequestBreakdown& bd);

  std::vector<RequestBreakdown> requests_;
  std::array<Aggregate, kPathClassCount> by_path_{};
  std::map<u32, Aggregate> by_vm_;
  u64 truncated_spans_ = 0;
  u64 open_spans_ = 0;
};

}  // namespace nvmetro::obs

// Time-series telemetry: how did the system behave *over time*?
//
// MetricsRegistry values are cumulative — one number for the whole run.
// TimeSeries snapshots a configured set of probes on a fixed sim-time
// cadence into a fixed-capacity ring, turning cumulative counters into
// per-window deltas/rates (IOPS), gauges into instantaneous levels +
// watermarks (queue depth), and histograms into *windowed* percentiles
// (p50/p99 of just that window's samples, via LatencyHistogram delta
// statistics against a retained copy).
//
// Scheduling: the obs library is a leaf (nvm_sim links nvm_obs), so the
// sampler cannot talk to the Simulator directly. Start() takes a
// scheduler callback and PRE-schedules every tick up to a horizon —
// Simulator::Run() drains the event queue, so a self-rescheduling
// sampler would never let Run() return.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace nvmetro::obs {

/// Schedules `fn` to run at absolute sim time `at`. Callers wrap
/// Simulator::ScheduleAt; tests can call the tick lambda directly.
using TelemetryScheduler =
    std::function<void(SimTime at, std::function<void()> fn)>;

class TimeSeries {
 public:
  struct Config {
    SimTime interval_ns = 1'000'000;  // 1 ms windows
    usize capacity = 4096;            // samples retained (ring)
  };

  TimeSeries(const MetricsRegistry* registry, Config cfg);
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  // Probes resolve their metric by name at sample time (a metric
  // registered after the probe still gets picked up; an absent metric
  // samples as 0). Each probe contributes columns named from `column`:
  //   counter:   <column>_delta (per window), <column>_rate (per second)
  //   gauge:     <column> (level), <column>_max (watermark since reset)
  //   histogram: <column>_count (window), <column>_p50_ns, <column>_p99_ns
  void AddCounterProbe(const std::string& column, const std::string& metric);
  void AddGaugeProbe(const std::string& column, const std::string& metric);
  void AddHistogramProbe(const std::string& column, const std::string& metric);

  /// Pre-schedules one sample per interval over (start, horizon].
  void Start(SimTime start, SimTime horizon, const TelemetryScheduler& sched);

  /// Stamps one sample at `now` (what the scheduled ticks call).
  void SampleNow(SimTime now);

  struct Sample {
    SimTime t = 0;
    std::vector<double> values;  // parallel to columns()
  };

  const std::vector<std::string>& columns() const { return columns_; }
  /// Retained samples, oldest first (at most Config::capacity).
  std::vector<Sample> samples() const;
  u64 total_sampled() const { return total_; }

  /// "t_ns,<col>,...\n" header + one row per retained sample.
  std::string ToCsv() const;

 private:
  enum class ProbeKind : u8 { kCounter, kGauge, kHistogram };
  struct Probe {
    ProbeKind kind;
    std::string metric;
    u64 last_count = 0;            // counter: previous cumulative value
    LatencyHistogram prev;         // histogram: copy at last sample
    bool primed = false;
  };

  const MetricsRegistry* registry_;
  Config cfg_;
  std::vector<Probe> probes_;
  std::vector<std::string> columns_;
  std::vector<Sample> ring_;
  u64 total_ = 0;  // next write position is total_ % capacity
  SimTime last_t_ = 0;
};

}  // namespace nvmetro::obs

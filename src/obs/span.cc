#include "obs/span.h"

#include <algorithm>
#include <cstdio>

namespace nvmetro::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kClassify: return "classify";
    case Stage::kDispatch: return "dispatch";
    case Stage::kUifQueue: return "uif_queue";
    case Stage::kUifService: return "uif_service";
    case Stage::kDevice: return "device";
    case Stage::kHarvest: return "harvest";
    case Stage::kRetryWait: return "retry_wait";
    case Stage::kFailover: return "failover";
    case Stage::kPost: return "post";
    case Stage::kQosWait: return "qos_wait";
    case Stage::kResubmit: return "resubmit";
    case Stage::kCount: break;
  }
  return "?";
}

Stage StageForKind(SpanKind kind) {
  switch (kind) {
    case SpanKind::kVsqPop:  // always a span's first event; delta is 0
    case SpanKind::kClassifier:
    case SpanKind::kBatch:
      return Stage::kClassify;
    case SpanKind::kDispatchFast:
    case SpanKind::kDispatchNotify:
    case SpanKind::kDispatchKernel:
      return Stage::kDispatch;
    case SpanKind::kUifWork: return Stage::kUifQueue;
    case SpanKind::kUifRespond: return Stage::kUifService;
    case SpanKind::kHcqComplete:
    case SpanKind::kKernelDone:
      return Stage::kDevice;
    case SpanKind::kNcqComplete:
    case SpanKind::kKcqComplete:
      return Stage::kHarvest;
    case SpanKind::kRetry: return Stage::kRetryWait;
    case SpanKind::kTimeout:
    case SpanKind::kUifFailover:
      return Stage::kFailover;
    case SpanKind::kVcqPost: return Stage::kPost;
    case SpanKind::kQosAdmit:  // the delta ending here is the parked wait
    case SpanKind::kQosShed:
    case SpanKind::kOverloadShed:
      return Stage::kQosWait;
    case SpanKind::kResubmit:      // chain hop: hook rerun + re-dispatch
      return Stage::kResubmit;
    case SpanKind::kIrqInject:     // handled out-of-band (post-e2e)
    case SpanKind::kSloBreach:     // req_id == 0, never folded
    case SpanKind::kOverloadState: // req_id == 0, never folded
      return Stage::kPost;
  }
  return Stage::kPost;
}

const char* PathClassName(PathClass pc) {
  switch (pc) {
    case PathClass::kDirect: return "direct";
    case PathClass::kFast: return "fast";
    case PathClass::kKernel: return "kernel";
    case PathClass::kNotify: return "notify";
    case PathClass::kFanout: return "fanout";
    case PathClass::kCount: break;
  }
  return "?";
}

PathClass ClassifyPath(const std::vector<TraceEvent>& events) {
  bool fast = false, kernel = false, notify = false;
  for (const TraceEvent& ev : events) {
    if (ev.kind == SpanKind::kDispatchFast) fast = true;
    if (ev.kind == SpanKind::kDispatchKernel) kernel = true;
    if (ev.kind == SpanKind::kDispatchNotify) notify = true;
  }
  int n = (fast ? 1 : 0) + (kernel ? 1 : 0) + (notify ? 1 : 0);
  if (n == 0) return PathClass::kDirect;
  if (n > 1) return PathClass::kFanout;
  if (fast) return PathClass::kFast;
  if (kernel) return PathClass::kKernel;
  return PathClass::kNotify;
}

namespace {
// Per-request folding state while walking the event stream.
struct Working {
  RequestBreakdown bd;
  SimTime start_t = 0;
  SimTime prev_t = 0;
  SpanKind prev_kind = SpanKind::kVsqPop;
  bool started = false;
  bool posted = false;
  bool fast = false, kernel = false, notify = false;
};
}  // namespace

void SpanAnalyzer::Analyze(const TraceRecorder& tr) {
  std::map<u64, Working> live;
  for (const TraceEvent& ev : tr.Events()) {
    if (ev.req_id == 0) continue;  // marks (SLO breach), not request spans
    if (tr.truncated(ev.req_id)) continue;  // counted below
    Working& w = live[ev.req_id];
    if (!w.started) {
      w.started = true;
      w.bd.req_id = ev.req_id;
      w.bd.vm_id = ev.vm_id;
      w.start_t = ev.t;
      w.prev_t = ev.t;
    } else {
      u64 delta = ev.t - w.prev_t;
      w.prev_t = ev.t;
      if (!w.posted) {
        // Stage named by the later event — except after a RETRY stamp,
        // where the delta IS the backoff wait (the re-dispatch event
        // that ends it would misfile it under dispatch).
        Stage stage = w.prev_kind == SpanKind::kRetry
                          ? Stage::kRetryWait
                          : StageForKind(ev.kind);
        w.bd.stage_ns[static_cast<usize>(stage)] += delta;
      } else if (ev.kind == SpanKind::kIrqInject) {
        w.bd.irq_ns += delta;
      }
      // Anything else after VCQ_POST (late fan-out leg events) is outside
      // the guest-visible request and deliberately unattributed.
    }
    w.prev_kind = ev.kind;
    switch (ev.kind) {
      case SpanKind::kDispatchFast: w.fast = true; break;
      case SpanKind::kDispatchKernel: w.kernel = true; break;
      case SpanKind::kDispatchNotify: w.notify = true; break;
      case SpanKind::kVcqPost:
        if (!w.posted) {
          w.posted = true;
          // Measured independently of the stage deltas — the exact-sum
          // invariant (CheckExactAttribution) compares the two.
          w.bd.e2e_ns = ev.t - w.start_t;
        }
        break;
      default: break;
    }
  }

  u64 horizon = tr.eviction_horizon();
  if (horizon > 0) {
    // Every id in [1, horizon] lost at least part of its span; the ones we
    // skipped above are a subset (only ids with retained events), so count
    // from the horizon, not from what happens to still be in the ring.
    truncated_spans_ += horizon;
  }
  for (auto& [id, w] : live) {
    if (!w.posted) {
      open_spans_++;
      continue;
    }
    int n = (w.fast ? 1 : 0) + (w.kernel ? 1 : 0) + (w.notify ? 1 : 0);
    if (n == 0) w.bd.path = PathClass::kDirect;
    else if (n > 1) w.bd.path = PathClass::kFanout;
    else if (w.fast) w.bd.path = PathClass::kFast;
    else if (w.kernel) w.bd.path = PathClass::kKernel;
    else w.bd.path = PathClass::kNotify;
    requests_.push_back(w.bd);
    Fold(w.bd);
  }
}

void SpanAnalyzer::Fold(const RequestBreakdown& bd) {
  Aggregate* aggs[2] = {&by_path_[static_cast<usize>(bd.path)],
                        &by_vm_[bd.vm_id]};
  for (Aggregate* a : aggs) {
    a->requests++;
    a->e2e.Record(bd.e2e_ns);
    a->irq.Record(bd.irq_ns);
    for (usize s = 0; s < kStageCount; s++) {
      a->stages[s].Record(bd.stage_ns[s]);
      a->stage_sum_ns[s] += bd.stage_ns[s];
    }
  }
}

bool SpanAnalyzer::CheckExactAttribution(std::string* error) const {
  for (const RequestBreakdown& bd : requests_) {
    if (bd.StageSum() != bd.e2e_ns) {
      if (error) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "req %llu (%s): stage sum %llu ns != e2e %llu ns",
                      static_cast<unsigned long long>(bd.req_id),
                      PathClassName(bd.path),
                      static_cast<unsigned long long>(bd.StageSum()),
                      static_cast<unsigned long long>(bd.e2e_ns));
        *error = buf;
      }
      return false;
    }
  }
  return true;
}

std::string SpanAnalyzer::StageSignature(PathClass pc) const {
  const Aggregate& a = by_path_[static_cast<usize>(pc)];
  std::string out;
  for (usize s = 0; s < kStageCount; s++) {
    if (a.stage_sum_ns[s] == 0) continue;
    if (!out.empty()) out += "+";
    out += StageName(static_cast<Stage>(s));
  }
  return out;
}

std::string SpanAnalyzer::RenderTable() const {
  std::string out;
  char buf[192];
  for (usize p = 0; p < kPathClassCount; p++) {
    const Aggregate& a = by_path_[p];
    if (a.requests == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "path=%-6s n=%llu e2e p50=%lluns p99=%lluns irq p50=%lluns\n",
                  PathClassName(static_cast<PathClass>(p)),
                  static_cast<unsigned long long>(a.requests),
                  static_cast<unsigned long long>(a.e2e.Median()),
                  static_cast<unsigned long long>(a.e2e.P99()),
                  static_cast<unsigned long long>(a.irq.Median()));
    out += buf;
    for (usize s = 0; s < kStageCount; s++) {
      if (a.stage_sum_ns[s] == 0) continue;
      double mean =
          static_cast<double>(a.stage_sum_ns[s]) / static_cast<double>(a.requests);
      std::snprintf(buf, sizeof(buf), "  %-11s mean=%.0fns total=%lluns\n",
                    StageName(static_cast<Stage>(s)), mean,
                    static_cast<unsigned long long>(a.stage_sum_ns[s]));
      out += buf;
    }
  }
  return out;
}

void SpanAnalyzer::Reset() {
  requests_.clear();
  by_path_ = {};
  by_vm_.clear();
  truncated_spans_ = 0;
  open_spans_ = 0;
}

}  // namespace nvmetro::obs

// Always-on flight recorder (DESIGN.md §16): the router's black box.
//
// TraceRecorder is an opt-in, full-fidelity instrument — someone must
// have enabled a big ring *before* the incident to get anything out of
// it. Production debugging needs the opposite: a recorder that is always
// on, cheap enough to never turn off, and that preserves the last few
// thousand IO lifecycle edges per queue when an anomaly fires. The
// flight recorder is that black box: one packed 32-byte FlightRecord per
// lifecycle edge, written into a fixed-capacity per-shard ring with zero
// steady-state allocations and zero simulated-CPU charge, plus a trigger
// framework (FlightTriggers) that freezes every ring together and
// serializes a self-contained forensic dump — rings + a MetricsRegistry
// snapshot + an optional TimeSeries tail — when something goes wrong:
//
//   - an SLO breach (SloWatchdog breach hook),
//   - an overload state escalation (OverloadController wiring),
//   - a fault-recovery deadline abort (router OnDeadline),
//   - a stale-cid drop (late completion failed the generation check),
//   - a resubmit depth-bound breach (runaway classifier chain),
//   - a QoS shed storm (consecutive sheds past a burst threshold), or
//   - an explicit SIGUSR1-style programmatic RequestDump().
//
// Dumps round-trip through FlightDump::Serialize/Parse and are inspected
// postmortem with tools/flight_inspect, which reconstructs per-request
// timelines and per-stage attribution using the *same* folding rules as
// SpanAnalyzer (obs/span.h) — CrossValidateFlightSpans pins that the two
// instruments agree nanosecond-exactly on every request both retain.
//
// Leaf-library constraint (see CMakeLists.txt): nothing here may touch
// the simulator. Timestamps are passed in by the recording components
// and trigger sources; file IO happens only on the cold dump path.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"

namespace nvmetro::obs {

class SloWatchdog;

/// One IO lifecycle edge, packed to 32 bytes. `edge` is the SpanKind of
/// the hook that stamped it (so flight timelines and trace spans share
/// one taxonomy), or one of the kFlightEdge* mark codes below for
/// req_id-0 annotations (fault windows, trigger fires, stale-cid drops).
struct FlightRecord {
  u64 t = 0;         // simulated timestamp of the edge
  u64 req_id = 0;    // process-wide request id (0 = mark, not a request)
  u32 delta_ns = 0;  // ns since this request's previous edge (saturating;
                     // kFlightDeltaUnknown = recompute from timestamps)
  u32 aux = 0;       // edge payload: verdict / slba / batch size (low 32)
  u16 status = 0;    // NVMe status where the edge carries one
  u16 tag_lo = 0;    // routing tag low 16 bits (shard:6 | slot:10)
  u8 edge = 0;       // obs::SpanKind, or a kFlightEdge* mark code
  u8 opcode = 0;     // guest NVMe opcode
  u8 tenant = 0;     // tenant/VM id (low 8 bits)
  u8 hook = 0;       // classifier hook for classifier/resubmit edges
};
static_assert(sizeof(FlightRecord) == 32,
              "FlightRecord must stay one packed 32-byte line");

/// delta_ns sentinel for edges stamped off the router hot path (UIF
/// work/respond, IRQ inject) where the request's previous-edge time is
/// not at hand; inspectors recompute deltas from timestamps anyway.
constexpr u32 kFlightDeltaUnknown = 0xFFFFFFFFu;

/// Mark codes (req_id == 0), disjoint from every SpanKind value.
constexpr u8 kFlightEdgeFaultWindow = 0xF0;   // aux = (FaultKind << 1) | open
constexpr u8 kFlightEdgeTriggerFired = 0xF1;  // aux = FlightTrigger reason
constexpr u8 kFlightEdgeStaleCid = 0xF2;      // aux = host cid dropped

/// "VSQ_POP" / "RESUBMIT" / "FAULT_WINDOW" / ... for any edge byte.
const char* FlightEdgeName(u8 edge);

/// Queue index used by the recorder's process-wide marks ring.
constexpr u32 kFlightMarksQueue = 0xFFFFFFFFu;

/// Fixed-capacity ring of FlightRecords for one guest queue (shard).
/// Record() is the always-on hot path: one branch and one 32-byte store,
/// no allocation, no simulated-CPU charge.
class FlightRing {
 public:
  /// `capacity` is rounded up to a power of two and allocated up front
  /// (attach time, never on the IO path).
  FlightRing(u32 vm_id, u32 queue, usize capacity);
  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  void Record(const FlightRecord& r) {
    if (frozen_) {
      dropped_frozen_++;
      return;
    }
    buf_[total_ & mask_] = r;
    total_++;
  }

  u32 vm_id() const { return vm_id_; }
  u32 queue() const { return queue_; }
  usize capacity() const { return buf_.size(); }
  /// Records ever written (including overwritten ones).
  u64 total() const { return total_; }
  /// Records currently retained (<= capacity).
  usize held() const {
    return total_ < buf_.size() ? static_cast<usize>(total_) : buf_.size();
  }
  /// Records dropped because the ring was frozen for a dump.
  u64 dropped_frozen() const { return dropped_frozen_; }
  bool frozen() const { return frozen_; }
  void set_frozen(bool on) { frozen_ = on; }

  /// Chronological copy, oldest retained record first (cold path).
  std::vector<FlightRecord> Records() const;

 private:
  u32 vm_id_;
  u32 queue_;
  std::vector<FlightRecord> buf_;
  u64 mask_;
  u64 total_ = 0;
  u64 dropped_frozen_ = 0;
  bool frozen_ = false;
};

struct FlightConfig {
  /// Records retained per queue ring (rounded up to a power of two).
  /// 4096 records x 32 B = 128 KiB per guest queue.
  usize ring_capacity = 1 << 12;
  /// Process-wide marks ring (fault windows, trigger fires).
  usize mark_capacity = 256;
};

/// Owns one FlightRing per registered guest queue plus the marks ring.
/// Registration happens at queue-attach time; the steady-state surface
/// is FlightRing::Record through the pointer each shard caches.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightConfig cfg = {});
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Allocates (or returns the existing) ring for a guest queue. Called
  /// at AttachQueuePair time — never on the IO path.
  FlightRing* RegisterRing(u32 vm_id, u32 queue);
  /// Ring lookup for off-router recorders (UIF framework); null when the
  /// queue was never registered.
  FlightRing* Find(u32 vm_id, u32 queue);

  /// Stamps a req_id-0 annotation into the marks ring.
  void Mark(SimTime t, u8 edge, u32 aux, u16 status = 0);

  /// Freeze/unfreeze every ring together (trigger snapshot window).
  /// Records arriving while frozen are dropped and counted per ring.
  void Freeze();
  void Unfreeze();
  bool frozen() const { return frozen_; }

  u64 total_records() const;
  u64 dropped_while_frozen() const;
  const std::vector<std::unique_ptr<FlightRing>>& rings() const {
    return rings_;
  }
  const FlightRing& marks() const { return marks_; }

 private:
  FlightConfig cfg_;
  std::vector<std::unique_ptr<FlightRing>> rings_;
  FlightRing marks_;
  bool frozen_ = false;
};

// --- Triggers --------------------------------------------------------------

enum class FlightTrigger : u8 {
  kManual = 0,           // explicit RequestDump (SIGUSR1-style)
  kSloBreach,            // SloWatchdog breach hook
  kOverloadEscalation,   // OverloadController state upgrade
  kDeadlineAbort,        // router request deadline fired
  kStaleCidDrop,         // late completion failed the generation check
  kResubmitDepthBreach,  // classifier chain hit max_resubmit_depth
  kQosShedStorm,         // consecutive QoS sheds past the burst threshold
  kCount,
};
constexpr usize kFlightTriggerCount = static_cast<usize>(FlightTrigger::kCount);

const char* FlightTriggerName(FlightTrigger t);

/// Parse by name ("deadline_abort"); false on unknown names.
bool FlightTriggerFromName(const std::string& name, FlightTrigger* out);

/// A parsed (or freshly built) forensic dump: trigger context, a
/// Prometheus-text metrics snapshot, an optional TimeSeries CSV tail,
/// and every ring's retained records. Serialize/Parse round-trip
/// bit-exactly (tests/flight_test.cc).
struct FlightDump {
  u32 version = 1;
  FlightTrigger trigger = FlightTrigger::kManual;
  SimTime t = 0;    // sim time the trigger fired
  u64 seq = 0;      // dump sequence number within the run
  std::string detail;
  std::string metrics_text;    // ExportPrometheusText at dump time ("" = none)
  std::string timeseries_csv;  // TimeSeries::ToCsv at dump time ("" = none)

  struct RingDump {
    u32 vm_id = 0;
    u32 queue = 0;
    u64 capacity = 0;
    u64 total = 0;           // records ever written (eviction detector)
    u64 dropped_frozen = 0;
    std::vector<FlightRecord> records;  // oldest first
  };
  std::vector<RingDump> rings;  // marks ring included (queue == kFlightMarksQueue)

  std::string Serialize() const;
  static bool Parse(const std::string& text, FlightDump* out,
                    std::string* error);
};

struct FlightTriggersConfig {
  /// Directory for dump files; "" keeps dumps in memory only (the
  /// serialized text stays retrievable via dumps()).
  std::string dump_dir;
  /// File name prefix: <dir>/<prefix>-<seq>-<reason>.flight
  std::string dump_prefix = "flight";
  /// Minimum sim-time spacing between anomaly dumps (manual requests
  /// bypass it) so a breach storm cannot dump itself to death.
  SimTime cooldown_ns = 5'000'000;
  /// Hard cap on dumps per run; later fires are counted but suppressed.
  u32 max_dumps = 4;
};

/// The anomaly->dump framework. Components report anomalies with Fire();
/// an accepted fire freezes every ring, serializes a FlightDump (rings +
/// metrics + time-series), optionally writes it to dump_dir, stamps a
/// TRIGGER_FIRED mark, and unfreezes. Registers "flight.dumps" /
/// "flight.fires_suppressed" counters lazily on the first fire so
/// trigger-free runs keep their metric exports bit-identical.
class FlightTriggers {
 public:
  /// `metrics` and `series` may be null (their snapshot is omitted).
  FlightTriggers(FlightRecorder* recorder, MetricsRegistry* metrics,
                 const TimeSeries* series, FlightTriggersConfig cfg = {});
  FlightTriggers(const FlightTriggers&) = delete;
  FlightTriggers& operator=(const FlightTriggers&) = delete;

  /// Arms or disarms one trigger source (all armed by default).
  void Arm(FlightTrigger t, bool on);
  bool armed(FlightTrigger t) const {
    return armed_[static_cast<usize>(t)];
  }

  /// Reports an anomaly. Returns true when a dump was produced; false
  /// when the source is disarmed, in cooldown, or the dump cap is hit.
  bool Fire(FlightTrigger t, SimTime now, const std::string& detail);

  /// SIGUSR1-style explicit dump: always armed, bypasses the cooldown
  /// (still bounded by max_dumps).
  bool RequestDump(SimTime now, const std::string& detail);

  /// Wires the SLO watchdog's breach hook to Fire(kSloBreach).
  void ArmSlo(SloWatchdog* slo);

  u64 fires(FlightTrigger t) const { return fires_[static_cast<usize>(t)]; }
  u64 dumps_produced() const { return static_cast<u64>(dumps_.size()); }
  u64 fires_suppressed() const { return suppressed_; }

  struct DumpInfo {
    FlightTrigger trigger = FlightTrigger::kManual;
    SimTime t = 0;
    u64 seq = 0;
    std::string detail;
    std::string path;        // "" when dump_dir is empty
    std::string serialized;  // the full dump text
  };
  const std::vector<DumpInfo>& dumps() const { return dumps_; }
  /// Serialized text of the most recent dump ("" before the first).
  const std::string& last_dump_text() const;

 private:
  FlightDump BuildDump(FlightTrigger t, SimTime now,
                       const std::string& detail);

  FlightRecorder* recorder_;
  MetricsRegistry* metrics_;
  const TimeSeries* series_;
  FlightTriggersConfig cfg_;
  bool armed_[kFlightTriggerCount];
  u64 fires_[kFlightTriggerCount] = {};
  u64 suppressed_ = 0;
  u64 next_seq_ = 0;
  SimTime last_dump_t_ = 0;
  bool dumped_once_ = false;
  std::vector<DumpInfo> dumps_;
  Counter* m_dumps_ = nullptr;
  Counter* m_suppressed_ = nullptr;
};

// --- Postmortem timeline reconstruction ------------------------------------

/// One request reconstructed from a dump: its retained records plus the
/// SpanAnalyzer-rule attribution (stage named by the later edge, the
/// delta after a RETRY stamp is retry wait, IRQ after post is irq_ns).
struct FlightRequestView {
  u64 req_id = 0;
  u32 vm_id = 0;
  u32 queue = 0;
  u8 opcode = 0;
  u8 tenant = 0;
  u16 tag_lo = 0;
  /// First retained record is the VSQ pop — nothing of this request was
  /// evicted, so its attribution is trustworthy end to end.
  bool complete_head = false;
  bool posted = false;   // saw VCQ_POST
  bool timed_out = false;
  bool shed = false;
  u16 final_status = 0;  // VCQ_POST status (valid when posted)
  u64 e2e_ns = 0;        // VSQ pop -> VCQ post (valid when attributable())
  u64 irq_ns = 0;        // VCQ post -> IRQ inject
  u64 resubmits = 0;     // RESUBMIT edges seen
  PathClass path = PathClass::kDirect;
  std::array<u64, kStageCount> stage_ns{};
  std::vector<FlightRecord> records;  // chronological

  bool attributable() const { return complete_head && posted; }
  bool failed() const { return posted && final_status != 0; }
  u64 StageSum() const {
    u64 s = 0;
    for (u64 v : stage_ns) s += v;
    return s;
  }
};

/// Groups a dump's records into per-request timelines and attributes
/// every inter-edge delta to a stage with SpanAnalyzer's folding rules.
class FlightTimeline {
 public:
  explicit FlightTimeline(const FlightDump& dump);

  const std::vector<FlightRequestView>& requests() const { return requests_; }
  const FlightRequestView* Find(u64 req_id) const;
  /// Attributable requests by descending e2e latency, at most `n`.
  std::vector<const FlightRequestView*> Slowest(usize n) const;
  /// Posted-with-error, timed-out, or shed requests.
  std::vector<const FlightRequestView*> Failed() const;
  const std::vector<FlightRecord>& marks() const { return marks_; }
  /// Requests whose head was evicted by ring wraparound (excluded from
  /// requests() attribution but still counted).
  u64 truncated_requests() const { return truncated_; }

  /// Internal consistency: chronological records per request, stored
  /// deltas (where not kFlightDeltaUnknown) equal to the timestamp
  /// deltas, and per-stage sums exactly equal to e2e for every
  /// attributable request. Returns false with a diagnostic on violation.
  bool Validate(std::string* error) const;

 private:
  std::vector<FlightRequestView> requests_;
  std::vector<FlightRecord> marks_;
  u64 truncated_ = 0;
};

/// Cross-instrument agreement: for every request that is attributable in
/// `timeline` AND fully retained by the SpanAnalyzer (same req_id), the
/// e2e and every per-stage nanosecond figure must match exactly.
/// `compared` (optional) receives the number of requests checked.
bool CrossValidateFlightSpans(const FlightTimeline& timeline,
                              const SpanAnalyzer& spans, usize* compared,
                              std::string* error);

}  // namespace nvmetro::obs

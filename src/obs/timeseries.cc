#include "obs/timeseries.h"

#include <cstdio>

namespace nvmetro::obs {

TimeSeries::TimeSeries(const MetricsRegistry* registry, Config cfg)
    : registry_(registry), cfg_(cfg) {
  if (cfg_.interval_ns == 0) cfg_.interval_ns = 1;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  ring_.resize(cfg_.capacity);
  columns_.push_back("t_ns");
}

void TimeSeries::AddCounterProbe(const std::string& column,
                                 const std::string& metric) {
  Probe p;
  p.kind = ProbeKind::kCounter;
  p.metric = metric;
  probes_.push_back(std::move(p));
  columns_.push_back(column + "_delta");
  columns_.push_back(column + "_rate");
}

void TimeSeries::AddGaugeProbe(const std::string& column,
                               const std::string& metric) {
  Probe p;
  p.kind = ProbeKind::kGauge;
  p.metric = metric;
  probes_.push_back(std::move(p));
  columns_.push_back(column);
  columns_.push_back(column + "_max");
}

void TimeSeries::AddHistogramProbe(const std::string& column,
                                   const std::string& metric) {
  Probe p;
  p.kind = ProbeKind::kHistogram;
  p.metric = metric;
  probes_.push_back(std::move(p));
  columns_.push_back(column + "_count");
  columns_.push_back(column + "_p50_ns");
  columns_.push_back(column + "_p99_ns");
}

void TimeSeries::Start(SimTime start, SimTime horizon,
                       const TelemetryScheduler& sched) {
  for (SimTime t = start + cfg_.interval_ns; t <= horizon;
       t += cfg_.interval_ns) {
    sched(t, [this, t] { SampleNow(t); });
  }
}

void TimeSeries::SampleNow(SimTime now) {
  Sample s;
  s.t = now;
  s.values.reserve(columns_.size());
  s.values.push_back(static_cast<double>(now));
  double window_s =
      static_cast<double>(now - last_t_) / 1e9;  // 0 on the first sample
  for (Probe& p : probes_) {
    switch (p.kind) {
      case ProbeKind::kCounter: {
        const Counter* c = registry_->FindCounter(p.metric);
        u64 v = c ? c->value() : 0;
        u64 delta = p.primed ? v - p.last_count : v;
        p.last_count = v;
        p.primed = true;
        s.values.push_back(static_cast<double>(delta));
        s.values.push_back(window_s > 0 ? static_cast<double>(delta) / window_s
                                        : 0.0);
        break;
      }
      case ProbeKind::kGauge: {
        const Gauge* g = registry_->FindGauge(p.metric);
        s.values.push_back(g ? static_cast<double>(g->value()) : 0.0);
        s.values.push_back(g ? static_cast<double>(g->max()) : 0.0);
        break;
      }
      case ProbeKind::kHistogram: {
        const LatencyHistogram* h = registry_->FindHistogram(p.metric);
        if (!h) {
          s.values.push_back(0.0);
          s.values.push_back(0.0);
          s.values.push_back(0.0);
          break;
        }
        if (!p.primed) {
          p.prev.Reset();  // window = everything so far on the first sample
          p.primed = true;
        }
        u64 n = h->DeltaCount(p.prev);
        s.values.push_back(static_cast<double>(n));
        s.values.push_back(static_cast<double>(h->DeltaQuantile(p.prev, 0.5)));
        s.values.push_back(static_cast<double>(h->DeltaQuantile(p.prev, 0.99)));
        p.prev = *h;
        break;
      }
    }
  }
  last_t_ = now;
  ring_[total_ % ring_.size()] = std::move(s);
  total_++;
}

std::vector<TimeSeries::Sample> TimeSeries::samples() const {
  std::vector<Sample> out;
  usize n = total_ < ring_.size() ? static_cast<usize>(total_) : ring_.size();
  out.reserve(n);
  u64 start = total_ - n;
  for (u64 i = 0; i < n; i++) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

std::string TimeSeries::ToCsv() const {
  std::string out;
  for (usize i = 0; i < columns_.size(); i++) {
    if (i) out += ",";
    out += columns_[i];
  }
  out += "\n";
  char buf[48];
  for (const Sample& s : samples()) {
    for (usize i = 0; i < s.values.size(); i++) {
      if (i) out += ",";
      double v = s.values[i];
      if (v == static_cast<double>(static_cast<long long>(v))) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
      } else {
        std::snprintf(buf, sizeof(buf), "%.3f", v);
      }
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace nvmetro::obs

#include "obs/slo.h"

namespace nvmetro::obs {

SloWatchdog::SloWatchdog(MetricsRegistry* registry, TraceRecorder* trace,
                         Config cfg)
    : registry_(registry), trace_(trace), cfg_(cfg) {
  if (cfg_.interval_ns == 0) cfg_.interval_ns = 1;
}

void SloWatchdog::AddLatencyTarget(const std::string& name,
                                   const std::string& hist_metric, double q,
                                   u64 max_ns) {
  Target t;
  t.name = name;
  t.latency = true;
  t.hist_metric = hist_metric;
  t.q = q;
  t.max_ns = max_ns;
  t.breaches_ctr = registry_->GetCounter("slo." + name + ".breaches");
  t.breached_gauge = registry_->GetGauge("slo." + name + ".breached");
  targets_.push_back(std::move(t));
}

void SloWatchdog::AddErrorRateTarget(const std::string& name,
                                     const std::string& err_metric,
                                     const std::string& total_metric,
                                     double max_rate) {
  Target t;
  t.name = name;
  t.latency = false;
  t.err_metric = err_metric;
  t.total_metric = total_metric;
  t.max_rate = max_rate;
  t.breaches_ctr = registry_->GetCounter("slo." + name + ".breaches");
  t.breached_gauge = registry_->GetGauge("slo." + name + ".breached");
  targets_.push_back(std::move(t));
}

void SloWatchdog::Start(SimTime start, SimTime horizon,
                        const TelemetryScheduler& sched) {
  for (SimTime t = start + cfg_.interval_ns; t <= horizon;
       t += cfg_.interval_ns) {
    sched(t, [this, t] { EvaluateWindow(t); });
  }
}

void SloWatchdog::EvaluateWindow(SimTime now) {
  windows_++;
  for (usize i = 0; i < targets_.size(); i++) {
    Target& t = targets_[i];
    bool breached = false;
    double observed = 0, limit = 0;
    if (t.latency) {
      limit = static_cast<double>(t.max_ns);
      const LatencyHistogram* h = registry_->FindHistogram(t.hist_metric);
      if (h) {
        if (!t.primed) {
          t.prev.Reset();  // first window covers everything so far
          t.primed = true;
        }
        if (h->DeltaCount(t.prev) > 0) {
          observed = static_cast<double>(h->DeltaQuantile(t.prev, t.q));
          breached = observed > limit;
        }
        t.prev = *h;
      }
    } else {
      limit = t.max_rate;
      const Counter* err = registry_->FindCounter(t.err_metric);
      const Counter* total = registry_->FindCounter(t.total_metric);
      u64 ev = err ? err->value() : 0;
      u64 tv = total ? total->value() : 0;
      u64 d_err = ev - t.last_err;
      u64 d_total = tv - t.last_total;
      t.last_err = ev;
      t.last_total = tv;
      if (d_total > 0) {
        observed = static_cast<double>(d_err) / static_cast<double>(d_total);
        breached = observed > limit;
      }
    }
    Publish(&t, i, now, observed, limit, breached);
  }
}

void SloWatchdog::Publish(Target* t, usize index, SimTime now, double observed,
                          double limit, bool breached) {
  t->breached_gauge->Set(breached ? 1 : 0);
  if (!breached) return;
  t->breach_windows++;
  t->breaches_ctr->Inc();
  breaches_.push_back(Breach{now, t->name, observed, limit});
  if (breach_hook_) breach_hook_(breaches_.back());
  if (trace_) {
    TraceEvent ev;
    ev.req_id = 0;  // mark, not a request span
    ev.t = now;
    ev.aux = now;
    ev.status = static_cast<u16>(index);
    ev.kind = SpanKind::kSloBreach;
    trace_->Record(ev);
  }
}

u64 SloWatchdog::breach_windows(const std::string& target) const {
  for (const Target& t : targets_) {
    if (t.name == target) return t.breach_windows;
  }
  return 0;
}

}  // namespace nvmetro::obs

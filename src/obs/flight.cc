#include "obs/flight.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>

#include "obs/export.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace nvmetro::obs {

namespace {

usize RoundUpPow2(usize n) {
  usize p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* FlightEdgeName(u8 edge) {
  switch (edge) {
    case kFlightEdgeFaultWindow: return "FAULT_WINDOW";
    case kFlightEdgeTriggerFired: return "TRIGGER_FIRED";
    case kFlightEdgeStaleCid: return "STALE_CID_DROP";
    default: break;
  }
  return SpanKindName(static_cast<SpanKind>(edge));
}

// --- FlightRing ------------------------------------------------------------

FlightRing::FlightRing(u32 vm_id, u32 queue, usize capacity)
    : vm_id_(vm_id), queue_(queue) {
  usize cap = RoundUpPow2(capacity ? capacity : 1);
  buf_.resize(cap);
  mask_ = cap - 1;
}

std::vector<FlightRecord> FlightRing::Records() const {
  std::vector<FlightRecord> out;
  usize n = held();
  out.reserve(n);
  u64 first = total_ - n;
  for (u64 i = first; i < total_; i++) {
    out.push_back(buf_[i & mask_]);
  }
  return out;
}

// --- FlightRecorder --------------------------------------------------------

FlightRecorder::FlightRecorder(FlightConfig cfg)
    : cfg_(cfg), marks_(0, kFlightMarksQueue, cfg.mark_capacity) {}

FlightRing* FlightRecorder::RegisterRing(u32 vm_id, u32 queue) {
  if (FlightRing* r = Find(vm_id, queue)) return r;
  rings_.push_back(
      std::make_unique<FlightRing>(vm_id, queue, cfg_.ring_capacity));
  rings_.back()->set_frozen(frozen_);
  return rings_.back().get();
}

FlightRing* FlightRecorder::Find(u32 vm_id, u32 queue) {
  for (auto& r : rings_) {
    if (r->vm_id() == vm_id && r->queue() == queue) return r.get();
  }
  return nullptr;
}

void FlightRecorder::Mark(SimTime t, u8 edge, u32 aux, u16 status) {
  FlightRecord r;
  r.t = t;
  r.edge = edge;
  r.aux = aux;
  r.status = status;
  r.delta_ns = kFlightDeltaUnknown;
  marks_.Record(r);
}

void FlightRecorder::Freeze() {
  frozen_ = true;
  for (auto& r : rings_) r->set_frozen(true);
  marks_.set_frozen(true);
}

void FlightRecorder::Unfreeze() {
  frozen_ = false;
  for (auto& r : rings_) r->set_frozen(false);
  marks_.set_frozen(false);
}

u64 FlightRecorder::total_records() const {
  u64 n = marks_.total();
  for (const auto& r : rings_) n += r->total();
  return n;
}

u64 FlightRecorder::dropped_while_frozen() const {
  u64 n = marks_.dropped_frozen();
  for (const auto& r : rings_) n += r->dropped_frozen();
  return n;
}

// --- Triggers --------------------------------------------------------------

const char* FlightTriggerName(FlightTrigger t) {
  switch (t) {
    case FlightTrigger::kManual: return "manual";
    case FlightTrigger::kSloBreach: return "slo_breach";
    case FlightTrigger::kOverloadEscalation: return "overload_escalation";
    case FlightTrigger::kDeadlineAbort: return "deadline_abort";
    case FlightTrigger::kStaleCidDrop: return "stale_cid_drop";
    case FlightTrigger::kResubmitDepthBreach: return "resubmit_depth_breach";
    case FlightTrigger::kQosShedStorm: return "qos_shed_storm";
    case FlightTrigger::kCount: break;
  }
  return "?";
}

bool FlightTriggerFromName(const std::string& name, FlightTrigger* out) {
  for (usize i = 0; i < kFlightTriggerCount; i++) {
    FlightTrigger t = static_cast<FlightTrigger>(i);
    if (name == FlightTriggerName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

// --- FlightDump serialization ----------------------------------------------
//
// Line-oriented, versioned, with length-prefixed blocks for the embedded
// strings (detail / metrics text / time-series CSV) so no escaping is
// needed and the round-trip is bit-exact.

std::string FlightDump::Serialize() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "NVMFLIGHT %u\n", version);
  out += buf;
  std::snprintf(buf, sizeof(buf), "trigger %u %s\n",
                static_cast<unsigned>(trigger), FlightTriggerName(trigger));
  out += buf;
  std::snprintf(buf, sizeof(buf), "t %llu\nseq %llu\n",
                static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(seq));
  out += buf;
  auto block = [&out, &buf](const char* name, const std::string& data) {
    std::snprintf(buf, sizeof(buf), "%s %zu\n", name, data.size());
    out += buf;
    out += data;
    out += '\n';
  };
  block("detail", detail);
  block("metrics", metrics_text);
  block("timeseries", timeseries_csv);
  std::snprintf(buf, sizeof(buf), "rings %zu\n", rings.size());
  out += buf;
  for (const RingDump& r : rings) {
    std::snprintf(buf, sizeof(buf), "ring %u %u %llu %llu %llu %zu\n",
                  r.vm_id, r.queue, static_cast<unsigned long long>(r.capacity),
                  static_cast<unsigned long long>(r.total),
                  static_cast<unsigned long long>(r.dropped_frozen),
                  r.records.size());
    out += buf;
    for (const FlightRecord& rec : r.records) {
      std::snprintf(buf, sizeof(buf),
                    "R %llu %llu %lu %lu %u %u %u %u %u %u\n",
                    static_cast<unsigned long long>(rec.t),
                    static_cast<unsigned long long>(rec.req_id),
                    static_cast<unsigned long>(rec.delta_ns),
                    static_cast<unsigned long>(rec.aux),
                    static_cast<unsigned>(rec.status),
                    static_cast<unsigned>(rec.tag_lo),
                    static_cast<unsigned>(rec.edge),
                    static_cast<unsigned>(rec.opcode),
                    static_cast<unsigned>(rec.tenant),
                    static_cast<unsigned>(rec.hook));
      out += buf;
    }
  }
  out += "end\n";
  return out;
}

namespace {

/// Cursor over the serialized text; every helper fails by returning
/// false and leaving a diagnostic.
struct Reader {
  const std::string& text;
  usize pos = 0;
  std::string* error;

  bool Fail(const std::string& msg) {
    if (error) *error = msg + " (offset " + std::to_string(pos) + ")";
    return false;
  }
  bool Line(std::string* out) {
    usize nl = text.find('\n', pos);
    if (nl == std::string::npos) return Fail("unterminated line");
    out->assign(text, pos, nl - pos);
    pos = nl + 1;
    return true;
  }
  /// "name <len>\n<len raw bytes>\n"
  bool Block(const char* name, std::string* out) {
    std::string line;
    if (!Line(&line)) return false;
    char fmt[32];
    std::snprintf(fmt, sizeof(fmt), "%s %%zu", name);
    usize len = 0;
    if (std::sscanf(line.c_str(), fmt, &len) != 1) {
      return Fail(std::string("expected '") + name + " <len>', got '" + line +
                  "'");
    }
    if (pos + len + 1 > text.size()) return Fail("truncated block");
    out->assign(text, pos, len);
    pos += len;
    if (text[pos] != '\n') return Fail("block not newline-terminated");
    pos++;
    return true;
  }
};

}  // namespace

bool FlightDump::Parse(const std::string& text, FlightDump* out,
                       std::string* error) {
  *out = FlightDump{};
  Reader rd{text, 0, error};
  std::string line;
  if (!rd.Line(&line)) return false;
  unsigned version = 0;
  if (std::sscanf(line.c_str(), "NVMFLIGHT %u", &version) != 1) {
    return rd.Fail("not a flight dump (bad magic)");
  }
  if (version != 1) return rd.Fail("unsupported dump version");
  out->version = version;
  if (!rd.Line(&line)) return false;
  unsigned trig = 0;
  char trig_name[64] = {};
  if (std::sscanf(line.c_str(), "trigger %u %63s", &trig, trig_name) != 2 ||
      trig >= kFlightTriggerCount) {
    return rd.Fail("bad trigger line '" + line + "'");
  }
  out->trigger = static_cast<FlightTrigger>(trig);
  if (std::string(trig_name) != FlightTriggerName(out->trigger)) {
    return rd.Fail("trigger name/code mismatch");
  }
  unsigned long long v = 0;
  if (!rd.Line(&line) || std::sscanf(line.c_str(), "t %llu", &v) != 1) {
    return rd.Fail("bad t line");
  }
  out->t = v;
  if (!rd.Line(&line) || std::sscanf(line.c_str(), "seq %llu", &v) != 1) {
    return rd.Fail("bad seq line");
  }
  out->seq = v;
  if (!rd.Block("detail", &out->detail)) return false;
  if (!rd.Block("metrics", &out->metrics_text)) return false;
  if (!rd.Block("timeseries", &out->timeseries_csv)) return false;
  usize nrings = 0;
  if (!rd.Line(&line) || std::sscanf(line.c_str(), "rings %zu", &nrings) != 1) {
    return rd.Fail("bad rings line");
  }
  for (usize i = 0; i < nrings; i++) {
    if (!rd.Line(&line)) return false;
    RingDump ring;
    unsigned long long cap = 0, total = 0, dropped = 0;
    usize nrec = 0;
    if (std::sscanf(line.c_str(), "ring %u %u %llu %llu %llu %zu",
                    &ring.vm_id, &ring.queue, &cap, &total, &dropped,
                    &nrec) != 6) {
      return rd.Fail("bad ring header '" + line + "'");
    }
    ring.capacity = cap;
    ring.total = total;
    ring.dropped_frozen = dropped;
    ring.records.reserve(nrec);
    for (usize j = 0; j < nrec; j++) {
      if (!rd.Line(&line)) return false;
      FlightRecord rec;
      unsigned long long t = 0, req = 0;
      unsigned long delta = 0, aux = 0;
      unsigned status = 0, tag = 0, edge = 0, opcode = 0, tenant = 0,
               hook = 0;
      if (std::sscanf(line.c_str(), "R %llu %llu %lu %lu %u %u %u %u %u %u",
                      &t, &req, &delta, &aux, &status, &tag, &edge, &opcode,
                      &tenant, &hook) != 10) {
        return rd.Fail("bad record '" + line + "'");
      }
      rec.t = t;
      rec.req_id = req;
      rec.delta_ns = static_cast<u32>(delta);
      rec.aux = static_cast<u32>(aux);
      rec.status = static_cast<u16>(status);
      rec.tag_lo = static_cast<u16>(tag);
      rec.edge = static_cast<u8>(edge);
      rec.opcode = static_cast<u8>(opcode);
      rec.tenant = static_cast<u8>(tenant);
      rec.hook = static_cast<u8>(hook);
      ring.records.push_back(rec);
    }
    out->rings.push_back(std::move(ring));
  }
  if (!rd.Line(&line) || line != "end") return rd.Fail("missing end marker");
  return true;
}

// --- FlightTriggers --------------------------------------------------------

FlightTriggers::FlightTriggers(FlightRecorder* recorder,
                               MetricsRegistry* metrics,
                               const TimeSeries* series,
                               FlightTriggersConfig cfg)
    : recorder_(recorder), metrics_(metrics), series_(series),
      cfg_(std::move(cfg)) {
  for (usize i = 0; i < kFlightTriggerCount; i++) armed_[i] = true;
}

void FlightTriggers::Arm(FlightTrigger t, bool on) {
  armed_[static_cast<usize>(t)] = on;
}

bool FlightTriggers::Fire(FlightTrigger t, SimTime now,
                          const std::string& detail) {
  fires_[static_cast<usize>(t)]++;
  bool manual = t == FlightTrigger::kManual;
  bool in_cooldown =
      dumped_once_ && !manual && now - last_dump_t_ < cfg_.cooldown_ns;
  if (!armed_[static_cast<usize>(t)] || in_cooldown ||
      dumps_.size() >= cfg_.max_dumps) {
    suppressed_++;
    if (m_suppressed_) m_suppressed_->Inc();
    return false;
  }
  // Lazy registration keeps trigger-free metric exports bit-identical.
  if (metrics_ && !m_dumps_) {
    m_dumps_ = metrics_->GetCounter("flight.dumps");
    m_suppressed_ = metrics_->GetCounter("flight.fires_suppressed");
  }
  recorder_->Freeze();
  FlightDump dump = BuildDump(t, now, detail);
  DumpInfo info;
  info.trigger = t;
  info.t = now;
  info.seq = dump.seq;
  info.detail = detail;
  info.serialized = dump.Serialize();
  recorder_->Unfreeze();
  // The black box keeps its own record of the trigger (visible in the
  // *next* dump's marks ring, and to live introspection).
  recorder_->Mark(now, kFlightEdgeTriggerFired, static_cast<u32>(t));
  if (!cfg_.dump_dir.empty()) {
    info.path = cfg_.dump_dir + "/" + cfg_.dump_prefix + "-" +
                std::to_string(dump.seq) + "-" + FlightTriggerName(t) +
                ".flight";
    if (std::FILE* f = std::fopen(info.path.c_str(), "wb")) {
      std::fwrite(info.serialized.data(), 1, info.serialized.size(), f);
      std::fclose(f);
    } else {
      info.path.clear();  // unwritable dir: keep the in-memory dump
    }
  }
  dumps_.push_back(std::move(info));
  last_dump_t_ = now;
  dumped_once_ = true;
  if (m_dumps_) m_dumps_->Inc();
  return true;
}

bool FlightTriggers::RequestDump(SimTime now, const std::string& detail) {
  return Fire(FlightTrigger::kManual, now, detail);
}

void FlightTriggers::ArmSlo(SloWatchdog* slo) {
  slo->SetBreachHook([this](const SloWatchdog::Breach& b) {
    Fire(FlightTrigger::kSloBreach, b.t, "target=" + b.target);
  });
}

const std::string& FlightTriggers::last_dump_text() const {
  static const std::string kEmpty;
  return dumps_.empty() ? kEmpty : dumps_.back().serialized;
}

FlightDump FlightTriggers::BuildDump(FlightTrigger t, SimTime now,
                                     const std::string& detail) {
  FlightDump dump;
  dump.trigger = t;
  dump.t = now;
  dump.seq = next_seq_++;
  dump.detail = detail;
  if (metrics_) dump.metrics_text = ExportPrometheusText(*metrics_);
  if (series_) dump.timeseries_csv = series_->ToCsv();
  auto snap = [](const FlightRing& r) {
    FlightDump::RingDump rd;
    rd.vm_id = r.vm_id();
    rd.queue = r.queue();
    rd.capacity = r.capacity();
    rd.total = r.total();
    rd.dropped_frozen = r.dropped_frozen();
    rd.records = r.Records();
    return rd;
  };
  for (const auto& r : recorder_->rings()) dump.rings.push_back(snap(*r));
  dump.rings.push_back(snap(recorder_->marks()));
  return dump;
}

// --- FlightTimeline --------------------------------------------------------

FlightTimeline::FlightTimeline(const FlightDump& dump) {
  // Group records by request, preserving each ring's (chronological)
  // order; a request's records all live in its arrival queue's ring.
  std::map<u64, FlightRequestView> live;
  for (const FlightDump::RingDump& ring : dump.rings) {
    for (const FlightRecord& rec : ring.records) {
      if (rec.req_id == 0) {
        marks_.push_back(rec);
        continue;
      }
      FlightRequestView& v = live[rec.req_id];
      if (v.records.empty()) {
        v.req_id = rec.req_id;
        v.vm_id = ring.vm_id;
        v.queue = ring.queue;
        v.opcode = rec.opcode;
        v.tenant = rec.tenant;
        v.tag_lo = rec.tag_lo;
        v.complete_head = rec.edge == static_cast<u8>(SpanKind::kVsqPop);
      }
      v.records.push_back(rec);
    }
  }
  std::stable_sort(marks_.begin(), marks_.end(),
                   [](const FlightRecord& a, const FlightRecord& b) {
                     return a.t < b.t;
                   });

  for (auto& [id, v] : live) {
    if (!v.complete_head) {
      truncated_++;
      continue;
    }
    // SpanAnalyzer's folding rules (obs/span.cc), applied to the flight
    // stream: stage named by the later edge, the delta after a RETRY
    // stamp is the backoff wait, IRQ after post is out-of-band.
    SimTime start_t = v.records.front().t;
    SimTime prev_t = start_t;
    u8 prev_edge = v.records.front().edge;
    bool fast = false, kernel = false, notify = false;
    for (usize i = 0; i < v.records.size(); i++) {
      const FlightRecord& rec = v.records[i];
      SpanKind kind = static_cast<SpanKind>(rec.edge);
      if (i > 0) {
        u64 delta = rec.t - prev_t;
        prev_t = rec.t;
        if (!v.posted) {
          Stage stage = prev_edge == static_cast<u8>(SpanKind::kRetry)
                            ? Stage::kRetryWait
                            : StageForKind(kind);
          v.stage_ns[static_cast<usize>(stage)] += delta;
        } else if (kind == SpanKind::kIrqInject) {
          v.irq_ns += delta;
        }
      }
      prev_edge = rec.edge;
      switch (kind) {
        case SpanKind::kDispatchFast: fast = true; break;
        case SpanKind::kDispatchKernel: kernel = true; break;
        case SpanKind::kDispatchNotify: notify = true; break;
        case SpanKind::kResubmit: v.resubmits++; break;
        case SpanKind::kTimeout: v.timed_out = true; break;
        case SpanKind::kQosShed:
        case SpanKind::kOverloadShed: v.shed = true; break;
        case SpanKind::kVcqPost:
          if (!v.posted) {
            v.posted = true;
            v.e2e_ns = rec.t - start_t;
            v.final_status = rec.status;
          }
          break;
        default: break;
      }
    }
    int n = (fast ? 1 : 0) + (kernel ? 1 : 0) + (notify ? 1 : 0);
    if (n == 0) v.path = PathClass::kDirect;
    else if (n > 1) v.path = PathClass::kFanout;
    else if (fast) v.path = PathClass::kFast;
    else if (kernel) v.path = PathClass::kKernel;
    else v.path = PathClass::kNotify;
    requests_.push_back(std::move(v));
  }
}

const FlightRequestView* FlightTimeline::Find(u64 req_id) const {
  for (const FlightRequestView& v : requests_) {
    if (v.req_id == req_id) return &v;
  }
  return nullptr;
}

std::vector<const FlightRequestView*> FlightTimeline::Slowest(usize n) const {
  std::vector<const FlightRequestView*> out;
  for (const FlightRequestView& v : requests_) {
    if (v.attributable()) out.push_back(&v);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightRequestView* a, const FlightRequestView* b) {
                     return a->e2e_ns > b->e2e_ns;
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<const FlightRequestView*> FlightTimeline::Failed() const {
  std::vector<const FlightRequestView*> out;
  for (const FlightRequestView& v : requests_) {
    if (v.failed() || v.timed_out || v.shed) out.push_back(&v);
  }
  return out;
}

bool FlightTimeline::Validate(std::string* error) const {
  char buf[192];
  for (const FlightRequestView& v : requests_) {
    SimTime prev_t = 0;
    // Stored deltas measure time since the previous *router* stamp
    // (off-hot-path edges carry the sentinel and don't advance the
    // request's last-edge clock), so validate against the timestamp of
    // the last non-sentinel record, not merely the previous record.
    SimTime last_stamp_t = 0;
    for (usize i = 0; i < v.records.size(); i++) {
      const FlightRecord& rec = v.records[i];
      if (i > 0) {
        if (rec.t < prev_t) {
          std::snprintf(buf, sizeof(buf),
                        "req %" PRIu64 ": records not chronological", v.req_id);
          if (error) *error = buf;
          return false;
        }
        if (rec.delta_ns != kFlightDeltaUnknown) {
          u64 delta = rec.t - last_stamp_t;
          if (static_cast<u64>(rec.delta_ns) !=
              std::min<u64>(delta, kFlightDeltaUnknown - 1)) {
            std::snprintf(buf, sizeof(buf),
                          "req %" PRIu64 " record %zu: stored delta %u != "
                          "timestamp delta %" PRIu64,
                          v.req_id, i, rec.delta_ns, delta);
            if (error) *error = buf;
            return false;
          }
        }
      }
      prev_t = rec.t;
      if (rec.delta_ns != kFlightDeltaUnknown) last_stamp_t = rec.t;
    }
    if (v.attributable() && v.StageSum() != v.e2e_ns) {
      std::snprintf(buf, sizeof(buf),
                    "req %" PRIu64 ": stage sum %" PRIu64 " ns != e2e %" PRIu64
                    " ns",
                    v.req_id, v.StageSum(), v.e2e_ns);
      if (error) *error = buf;
      return false;
    }
  }
  return true;
}

bool CrossValidateFlightSpans(const FlightTimeline& timeline,
                              const SpanAnalyzer& spans, usize* compared,
                              std::string* error) {
  usize n = 0;
  char buf[224];
  for (const RequestBreakdown& bd : spans.requests()) {
    const FlightRequestView* v = timeline.Find(bd.req_id);
    if (!v || !v->attributable()) continue;  // evicted from a flight ring
    n++;
    if (v->e2e_ns != bd.e2e_ns) {
      std::snprintf(buf, sizeof(buf),
                    "req %" PRIu64 ": flight e2e %" PRIu64
                    " ns != span e2e %" PRIu64 " ns",
                    bd.req_id, v->e2e_ns, bd.e2e_ns);
      if (error) *error = buf;
      return false;
    }
    for (usize s = 0; s < kStageCount; s++) {
      if (v->stage_ns[s] != bd.stage_ns[s]) {
        std::snprintf(buf, sizeof(buf),
                      "req %" PRIu64 " stage %s: flight %" PRIu64
                      " ns != span %" PRIu64 " ns",
                      bd.req_id, StageName(static_cast<Stage>(s)),
                      v->stage_ns[s], bd.stage_ns[s]);
        if (error) *error = buf;
        return false;
      }
    }
  }
  if (compared) *compared = n;
  return true;
}

}  // namespace nvmetro::obs

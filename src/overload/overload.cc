#include "overload/overload.h"

#include <algorithm>
#include <cassert>

#include "obs/obs.h"
#include "obs/slo.h"

namespace nvmetro::overload {

const char* StateName(State s) {
  switch (s) {
    case State::kNormal: return "normal";
    case State::kBackpressure: return "backpressure";
    case State::kBrownout: return "brownout";
    case State::kShed: return "shed";
  }
  return "?";
}

OverloadController::OverloadController(OverloadConfig cfg,
                                       obs::Observability* obs)
    : cfg_(cfg), obs_(obs) {
  assert(cfg_.device_tokens_per_sec > 0);
  assert(cfg_.backpressure_enter_ns <= cfg_.brownout_enter_ns &&
         cfg_.brownout_enter_ns <= cfg_.shed_enter_ns);
  // Pacing bucket starts full at full fraction: the controller is
  // invisible until the first Backpressure entry shrinks be_fraction_.
  pace_tokens_ = std::max<u64>(
      1, static_cast<u64>(static_cast<double>(cfg_.device_tokens_per_sec) *
                          static_cast<double>(cfg_.pace_depth_ns) / 1e9));
  if (obs_) {
    auto& m = obs_->metrics();
    m_decisions_ = m.GetCounter("overload.decisions");
    m_sheds_ = m.GetCounter("overload.sheds");
    m_paced_ = m.GetCounter("overload.paced");
    m_brownouts_ = m.GetCounter("overload.brownouts");
    for (usize i = 0; i < 4; ++i) {
      m_transitions_[i] = m.GetCounter(
          std::string("overload.transitions.") +
          StateName(static_cast<State>(i)));
    }
    m_state_ = m.GetGauge("overload.state");
    m_signal_us_ = m.GetGauge("overload.signal_us");
    m_be_fraction_pct_ = m.GetGauge("overload.be_fraction_pct");
    m_state_->Set(static_cast<i64>(state_));
    m_be_fraction_pct_->Set(100);
  }
}

void OverloadController::RegisterTenant(u32 tenant_id, bool best_effort) {
  Tenant t;
  t.tenant_id = tenant_id;
  t.best_effort = best_effort;
  if (obs_) {
    auto& m = obs_->metrics();
    std::string base = "overload.tenant" + std::to_string(tenant_id);
    t.m_shed = m.GetCounter(base + ".shed");
    t.m_paced = m.GetCounter(base + ".paced");
    t.m_degraded = m.GetCounter(base + ".degraded");
  }
  tenants_.push_back(std::move(t));
}

void OverloadController::RegisterDegradation(std::string name,
                                             std::function<void(bool)> hook) {
  hooks_.push_back(Hook{std::move(name), std::move(hook)});
  if (degraded_) hooks_.back().fn(true);
}

void OverloadController::Start(SimTime start, SimTime horizon,
                               obs::TelemetryScheduler sched) {
  pace_last_ = start;
  last_transition_ = start;
  for (SimTime at = start + cfg_.eval_period_ns; at <= start + horizon;
       at += cfg_.eval_period_ns) {
    sched(at, [this, at] { Evaluate(at); });
  }
}

OverloadController::Tenant* OverloadController::Find(u32 tenant_id) {
  for (Tenant& t : tenants_) {
    if (t.tenant_id == tenant_id) return &t;
  }
  return nullptr;
}

void OverloadController::RefillPace(SimTime now) {
  if (now <= pace_last_) return;
  u64 dt = now - pace_last_;
  pace_last_ = now;
  double rate = static_cast<double>(cfg_.device_tokens_per_sec) * be_fraction_;
  u64 rate_u = static_cast<u64>(rate);
  if (rate_u == 0) rate_u = 1;
  // Exact fractional carry, same scheme as qos::QosScheduler.
  u64 acc = rate_u * dt + pace_carry_;
  u64 add = acc / 1'000'000'000ull;
  pace_carry_ = acc % 1'000'000'000ull;
  u64 depth = std::max<u64>(
      1, static_cast<u64>(static_cast<double>(cfg_.device_tokens_per_sec) *
                          be_fraction_ * static_cast<double>(cfg_.pace_depth_ns) /
                          1e9));
  pace_tokens_ = std::min(depth, pace_tokens_ + add);
}

SimTime OverloadController::signal_ns(SimTime now) const {
  (void)now;
  double backlog_ns = static_cast<double>(backlog_tokens_) * 1e9 /
                      static_cast<double>(cfg_.device_tokens_per_sec);
  double s = std::max(ewma_wait_ns_, backlog_ns);
  return static_cast<SimTime>(s);
}

Verdict OverloadController::Admit(u32 tenant_id, u32 cost, SimTime now) {
  decisions_++;
  if (m_decisions_) m_decisions_->Inc();
  if (state_ == State::kNormal) return {};
  Tenant* t = Find(tenant_id);
  // Unknown tenants are treated as best-effort; LC passes untouched.
  bool be = !t || t->best_effort;
  if (!be) return {};
  if (state_ == State::kShed) {
    sheds_++;
    if (m_sheds_) m_sheds_->Inc();
    if (t && t->m_shed) t->m_shed->Inc();
    return {Verdict::Action::kShed, 0};
  }
  // Backpressure / Brownout: draw from the pacing bucket.
  if (degraded_ && t && t->m_degraded) t->m_degraded->Inc();
  RefillPace(now);
  if (pace_tokens_ >= cost) {
    pace_tokens_ -= cost;
    return {};
  }
  paced_++;
  if (m_paced_) m_paced_->Inc();
  if (t && t->m_paced) t->m_paced->Inc();
  u64 deficit = cost - pace_tokens_;
  double rate = static_cast<double>(cfg_.device_tokens_per_sec) * be_fraction_;
  if (rate < 1.0) rate = 1.0;
  SimTime wait =
      static_cast<SimTime>(static_cast<double>(deficit) * 1e9 / rate) + 1;
  return {Verdict::Action::kDefer, now + wait};
}

void OverloadController::Refund(u32 tenant_id, u32 cost) {
  Tenant* t = Find(tenant_id);
  if (state_ == State::kNormal || (t && !t->best_effort)) return;
  pace_tokens_ += cost;  // depth clamp happens at the next refill
}

void OverloadController::NoteQueueWait(SimTime wait_ns) {
  ewma_wait_ns_ = cfg_.ewma_alpha * static_cast<double>(wait_ns) +
                  (1.0 - cfg_.ewma_alpha) * ewma_wait_ns_;
  wait_sampled_ = true;
}

void OverloadController::NoteBacklog(i64 cost_delta) {
  if (cost_delta < 0 && static_cast<u64>(-cost_delta) > backlog_tokens_) {
    backlog_tokens_ = 0;
    return;
  }
  backlog_tokens_ = static_cast<u64>(static_cast<i64>(backlog_tokens_) +
                                     cost_delta);
}

u64 OverloadController::transitions(State into) const {
  return transitions_[Index(into)];
}

void OverloadController::SetDegraded(bool on) {
  if (degraded_ == on) return;
  degraded_ = on;
  if (on && m_brownouts_) m_brownouts_->Inc();
  for (Hook& h : hooks_) h.fn(on);
}

void OverloadController::TransitionTo(State next, SimTime now) {
  if (next == state_) return;
  State prev = state_;
  state_ = next;
  last_transition_ = now;
  transitions_[Index(next)]++;
  if (m_transitions_[Index(next)]) m_transitions_[Index(next)]->Inc();
  if (m_state_) m_state_->Set(static_cast<i64>(next));
  if (obs_) {
    obs::TraceEvent ev;
    ev.req_id = 0;  // mark, not a request span
    ev.t = now;
    ev.aux = static_cast<u64>(next);
    ev.status = static_cast<u16>(prev);
    ev.kind = obs::SpanKind::kOverloadState;
    obs_->trace().Record(ev);
  }
  if (ftrig_ && next > prev) {
    // Escalation only — recovery downgrades are good news, not anomalies.
    ftrig_->Fire(obs::FlightTrigger::kOverloadEscalation, now,
                 std::string("state=") + StateName(next) +
                     " from=" + StateName(prev));
  }
  // Entering Backpressure from Normal starts pacing at full credit; the
  // AIMD loop shrinks it from there. Recovery to Normal restores it.
  if (prev == State::kNormal) {
    be_fraction_ = 1.0;
  } else if (next == State::kNormal) {
    be_fraction_ = 1.0;
    if (m_be_fraction_pct_) m_be_fraction_pct_->Set(100);
  }
  SetDegraded(state_ >= State::kBrownout);
}

void OverloadController::Evaluate(SimTime now) {
  // Decay the EWMA when no parked command resumed this period, so the
  // signal ramps down once queues empty (resumes stop happening exactly
  // when there is nothing left to wait).
  if (!wait_sampled_) ewma_wait_ns_ *= (1.0 - cfg_.ewma_alpha);
  wait_sampled_ = false;

  SimTime sig = signal_ns(now);
  if (m_signal_us_) m_signal_us_->Set(static_cast<i64>(sig / kUs));

  // Target state from entry thresholds; upgrades are immediate.
  State target = State::kNormal;
  if (sig >= cfg_.shed_enter_ns) {
    target = State::kShed;
  } else if (sig >= cfg_.brownout_enter_ns) {
    target = State::kBrownout;
  } else if (sig >= cfg_.backpressure_enter_ns) {
    target = State::kBackpressure;
  }
  if (target > state_) {
    TransitionTo(target, now);
  } else if (target < state_ && now - last_transition_ >= cfg_.cooldown_ns) {
    // Hysteresis: require the signal below the *current* state's exit
    // threshold before stepping down one state.
    SimTime enter = state_ == State::kShed ? cfg_.shed_enter_ns
                    : state_ == State::kBrownout ? cfg_.brownout_enter_ns
                                                 : cfg_.backpressure_enter_ns;
    if (static_cast<double>(sig) <
        static_cast<double>(enter) * cfg_.exit_fraction) {
      TransitionTo(static_cast<State>(static_cast<u8>(state_) - 1), now);
    }
  }

  // AIMD credit adaptation while pacing is active.
  if (state_ >= State::kBackpressure && state_ != State::kShed) {
    SimTime enter = state_ == State::kBrownout ? cfg_.brownout_enter_ns
                                               : cfg_.backpressure_enter_ns;
    if (sig >= enter) {
      be_fraction_ =
          std::max(cfg_.min_be_fraction, be_fraction_ * cfg_.decrease_factor);
    } else if (static_cast<double>(sig) <
               static_cast<double>(enter) * cfg_.exit_fraction) {
      be_fraction_ = std::min(1.0, be_fraction_ + cfg_.additive_step);
    }
    RefillPace(now);
    if (m_be_fraction_pct_) {
      m_be_fraction_pct_->Set(static_cast<i64>(be_fraction_ * 100.0));
    }
  }
}

void OverloadController::ArmSloTargets(obs::SloWatchdog* slo,
                                       double max_shed_rate) const {
  slo->AddErrorRateTarget("overload.shed_rate", "overload.sheds",
                          "overload.decisions", max_shed_rate);
}

}  // namespace nvmetro::overload

// Overload control: queue-delay-driven graceful degradation layered on
// the QoS admission hook (DESIGN.md §13).
//
// The QoS scheduler (src/qos) enforces *steady-state* isolation — LC
// reservations hold as long as offered load is near capacity. It has no
// notion of overload: under a sustained open-loop burst its deferral
// rings simply fill and shed blindly, and every tenant's queueing delay
// grows together. This controller adds the missing control loop, after
// the Breakwater/SEDA school of server overload control:
//
//  - Delay signal. The controller tracks max(EWMA of measured queue
//    waits, instantaneous backlog delay), where backlog delay is the
//    parked token mass divided by device token rate — the time the
//    current queue needs to drain. The EWMA reacts to what requests
//    actually experienced; the backlog term sees a standing queue the
//    moment it forms, before any parked request has resumed.
//
//  - State machine Normal → Backpressure → Brownout → Shed, advanced on
//    a fixed evaluation cadence. Entry thresholds are per-state delay
//    bounds; exits use lower thresholds (hysteresis) plus a minimum
//    dwell (cooldown), so the controller cannot flap around a boundary.
//    Upgrades are immediate (overload must be met now); downgrades step
//    one state per evaluation.
//
//  - Backpressure shrinks best-effort credit, Breakwater-style: BE
//    admissions draw from a pacing bucket refilled at `be_fraction` of
//    the device rate, and `be_fraction` is adapted AIMD — multiplicative
//    decrease while the signal sits above the entry threshold, additive
//    recovery while it is below the exit threshold. LC tenants are never
//    paced; their reservations are exactly the traffic the controller
//    exists to protect.
//
//  - Brownout fires registered degradation hooks (disable replication
//    resync pacing, downshift trace sampling, ...): optional work is
//    turned off before any request is refused. Hooks are re-entered
//    symmetrically on recovery.
//
//  - Shed refuses new best-effort admissions outright (the router turns
//    that verdict into a retryable busy status) and evicts parked BE
//    commands, so the backlog drains at device speed instead of
//    serializing behind doomed work.
//
// The controller is passive and leaf (links only common+obs): the
// router calls Admit()/Note*() on its hot path, and the evaluation tick
// is pre-scheduled through a TelemetryScheduler callback exactly like
// the TimeSeries sampler, so this library never links the simulator.
//
// Observability: gauge `overload.state`, per-state transition counters
// `overload.transitions.<state>`, signal gauge `overload.signal_us`,
// pacing gauge `overload.be_fraction_pct`, per-tenant counters
// `overload.tenant<id>.{shed,paced,degraded}`, and an OVERLOAD_STATE
// trace mark per transition (req_id = 0, aux = new state, status = old
// state — auto-exported as a Perfetto instant event).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/timeseries.h"

namespace nvmetro::obs {
class Counter;
class FlightTriggers;
class Gauge;
class Observability;
class SloWatchdog;
}  // namespace nvmetro::obs

namespace nvmetro::overload {

enum class State : u8 {
  kNormal = 0,
  kBackpressure = 1,
  kBrownout = 2,
  kShed = 3,
};

const char* StateName(State s);

struct OverloadConfig {
  /// Device token rate (1 token = one 4 KiB page), the same figure the
  /// QoS scheduler arbitrates. Converts parked token mass to drain time
  /// and sizes the best-effort pacing bucket.
  u64 device_tokens_per_sec = 200'000;

  /// State-entry delay thresholds (signal >= threshold enters the state;
  /// must be nondecreasing).
  SimTime backpressure_enter_ns = 200 * kUs;
  SimTime brownout_enter_ns = 1 * kMs;
  SimTime shed_enter_ns = 4 * kMs;
  /// Hysteresis: a state is exited only once the signal drops below
  /// enter * exit_fraction.
  double exit_fraction = 0.5;
  /// Minimum dwell after any transition before a downgrade is allowed.
  SimTime cooldown_ns = 2 * kMs;

  /// Evaluation cadence (state transitions + AIMD adaptation).
  SimTime eval_period_ns = 100 * kUs;
  /// Weight of a new wait sample in the EWMA; the EWMA also decays by
  /// (1 - alpha) on every evaluation without a fresh sample so the
  /// signal ramps down once the queue empties.
  double ewma_alpha = 0.3;

  /// AIMD pacing of best-effort credit while in Backpressure or deeper:
  /// fraction of device rate BE admissions may draw, multiplied by
  /// `decrease_factor` when the signal sits above the current state's
  /// entry threshold, incremented by `additive_step` when below its exit
  /// threshold. Clamped to [min_be_fraction, 1.0].
  double min_be_fraction = 0.05;
  double additive_step = 0.05;
  double decrease_factor = 0.5;
  /// Pacing-bucket burst allowance, as ns of refill at the device rate.
  SimTime pace_depth_ns = 500 * kUs;
};

/// Verdict of one controller admission check. The controller never
/// consumes QoS tokens — kPass only means "not refused here"; the QoS
/// scheduler still arbitrates afterwards.
struct Verdict {
  enum class Action : u8 { kPass = 0, kDefer, kShed };
  Action action = Action::kPass;
  /// For kDefer: absolute sim-time when the pacing deficit clears.
  SimTime retry_at = 0;
};

class OverloadController {
 public:
  explicit OverloadController(OverloadConfig cfg,
                              obs::Observability* obs = nullptr);
  OverloadController(const OverloadController&) = delete;
  OverloadController& operator=(const OverloadController&) = delete;

  /// Declares a tenant and whether it is best-effort (paced/shed) or
  /// latency-critical (always passed through). Registers its metrics.
  void RegisterTenant(u32 tenant_id, bool best_effort);

  /// Registers a degradation hook fired with active=true on entering
  /// Brownout (or deeper) and active=false on recovering past it.
  /// Registration while browned out fires the hook immediately.
  void RegisterDegradation(std::string name, std::function<void(bool)> hook);

  /// Pre-schedules evaluation ticks over [start, start + horizon] via
  /// `sched`, exactly like TimeSeries::Start. Without Start the
  /// controller still paces (buckets refill lazily) but never changes
  /// state.
  void Start(SimTime start, SimTime horizon, obs::TelemetryScheduler sched);

  // --- Router hot path ----------------------------------------------------
  /// Admission check for one command of `cost` tokens. LC tenants and
  /// Normal state always pass. BE tenants draw `cost` from the pacing
  /// bucket in Backpressure/Brownout and are refused in Shed.
  Verdict Admit(u32 tenant_id, u32 cost, SimTime now);

  /// Returns pacing tokens consumed by a kPass verdict whose command was
  /// subsequently deferred by the QoS scheduler (so pacing never charges
  /// work that did not run).
  void Refund(u32 tenant_id, u32 cost);

  /// A parked command resumed after waiting `wait_ns` (EWMA sample).
  void NoteQueueWait(SimTime wait_ns);
  /// Parked token mass entering (+) or leaving (-) the deferral rings.
  void NoteBacklog(i64 cost_delta);

  // --- Introspection ------------------------------------------------------
  State state() const { return state_; }
  /// Current delay signal (max of EWMA and backlog drain time).
  SimTime signal_ns(SimTime now) const;
  double be_fraction() const { return be_fraction_; }
  u64 backlog_tokens() const { return backlog_tokens_; }
  u64 transitions(State into) const;
  u64 decisions() const { return decisions_; }
  u64 sheds() const { return sheds_; }
  u64 paced() const { return paced_; }
  usize num_degradations() const { return hooks_.size(); }
  bool degradation_active() const { return degraded_; }

  /// Adds an error-rate target `overload.shed_rate` (sheds over
  /// decisions) to the watchdog, so sustained shedding surfaces as an
  /// SLO breach alongside the latency targets.
  void ArmSloTargets(obs::SloWatchdog* slo, double max_shed_rate) const;

  /// Forces one evaluation at `now` (tests; Start-driven otherwise).
  void Evaluate(SimTime now);

  /// Wires the flight-recorder trigger framework: every state *upgrade*
  /// (Normal -> Backpressure -> Brownout -> Shed) fires the
  /// kOverloadEscalation anomaly. Pass nullptr to detach.
  void ArmFlightTriggers(obs::FlightTriggers* ftrig) { ftrig_ = ftrig; }

 private:
  struct Tenant {
    u32 tenant_id = 0;
    bool best_effort = true;
    obs::Counter* m_shed = nullptr;
    obs::Counter* m_paced = nullptr;
    obs::Counter* m_degraded = nullptr;
  };
  struct Hook {
    std::string name;
    std::function<void(bool)> fn;
  };

  Tenant* Find(u32 tenant_id);
  void RefillPace(SimTime now);
  void TransitionTo(State next, SimTime now);
  void SetDegraded(bool on);
  static usize Index(State s) { return static_cast<usize>(s); }

  OverloadConfig cfg_;
  obs::Observability* obs_;
  obs::FlightTriggers* ftrig_ = nullptr;
  std::vector<Tenant> tenants_;
  std::vector<Hook> hooks_;

  State state_ = State::kNormal;
  SimTime last_transition_ = 0;
  bool degraded_ = false;

  // Delay signal.
  double ewma_wait_ns_ = 0.0;
  bool wait_sampled_ = false;  // fresh sample since the last evaluation
  u64 backlog_tokens_ = 0;

  // Best-effort pacing bucket (fractional-carry refill as in qos).
  double be_fraction_ = 1.0;
  u64 pace_tokens_ = 0;
  u64 pace_carry_ = 0;  // in rate*ns units (< 1e9)
  SimTime pace_last_ = 0;

  u64 decisions_ = 0;
  u64 sheds_ = 0;
  u64 paced_ = 0;
  u64 transitions_[4] = {};

  obs::Counter* m_decisions_ = nullptr;
  obs::Counter* m_sheds_ = nullptr;
  obs::Counter* m_paced_ = nullptr;
  obs::Counter* m_brownouts_ = nullptr;
  obs::Counter* m_transitions_[4] = {};
  obs::Gauge* m_state_ = nullptr;
  obs::Gauge* m_signal_us_ = nullptr;
  obs::Gauge* m_be_fraction_pct_ = nullptr;
};

}  // namespace nvmetro::overload

#include "fault/fault.h"

#include "common/strutil.h"
#include "obs/obs.h"

namespace nvmetro::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCommandStall: return "command-stall";
    case FaultKind::kDelayedError: return "delayed-error";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kUifWedge: return "uif-wedge";
    case FaultKind::kSqFullBurst: return "sq-full-burst";
  }
  return "?";
}

FaultPlan FaultPlan::Random(u64 seed, const FaultCaps& caps) {
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);

  std::vector<FaultKind> kinds;
  if (caps.delayed_errors) kinds.push_back(FaultKind::kDelayedError);
  if (caps.stalls) kinds.push_back(FaultKind::kCommandStall);
  if (caps.link) kinds.push_back(FaultKind::kLinkDown);
  if (caps.wedge) kinds.push_back(FaultKind::kUifWedge);
  if (caps.sq_bursts) kinds.push_back(FaultKind::kSqFullBurst);
  if (kinds.empty()) return plan;

  u64 n = rng.NextRange(2, 6);
  for (u64 i = 0; i < n; i++) {
    FaultSpec spec;
    spec.kind = kinds[rng.NextBounded(kinds.size())];
    switch (spec.kind) {
      case FaultKind::kDelayedError:
        spec.count = static_cast<u32>(rng.NextRange(1, 8));
        spec.probability = 0.25 + rng.NextDouble() * 0.75;
        spec.delay_ns = rng.NextRange(10, 200) * kUs;
        // Alternate transient and hard statuses so both the retry and
        // the propagate paths get exercised.
        spec.status = rng.NextBool(0.5)
                          ? nvme::MakeStatus(nvme::kSctGeneric,
                                             nvme::kScNamespaceNotReady)
                          : nvme::MakeStatus(nvme::kSctMediaError,
                                             nvme::kScUnrecoveredRead);
        break;
      case FaultKind::kCommandStall:
        spec.count = static_cast<u32>(rng.NextRange(1, 4));
        spec.probability = 0.25 + rng.NextDouble() * 0.5;
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kUifWedge:
      case FaultKind::kSqFullBurst:
        spec.at_ns = rng.NextRange(50, 4'000) * kUs;
        spec.duration_ns = rng.NextRange(100, 4'000) * kUs;
        break;
    }
    plan.faults.push_back(spec);
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out = StrFormat("plan(seed=%llu):", (unsigned long long)seed);
  for (const FaultSpec& f : faults) {
    switch (f.kind) {
      case FaultKind::kCommandStall:
      case FaultKind::kDelayedError:
        out += StrFormat(" %s{n=%u,p=%.2f}", FaultKindName(f.kind), f.count,
                         f.probability);
        break;
      default:
        out += StrFormat(" %s{at=%lluus,dur=%lluus}", FaultKindName(f.kind),
                         (unsigned long long)(f.at_ns / kUs),
                         (unsigned long long)(f.duration_ns / kUs));
        break;
    }
  }
  return out;
}

FaultInjector::FaultInjector(sim::Simulator* sim, obs::Observability* obs)
    : sim_(sim), obs_(obs), rng_(0x5DEECE66Dull) {
  if (obs_) {
    obs::MetricsRegistry& m = obs_->metrics();
    m_stalls_ = m.GetCounter("fault.stalls");
    m_errors_ = m.GetCounter("fault.errors");
    m_sq_rejects_ = m.GetCounter("fault.sq_rejects");
    m_link_transitions_ = m.GetCounter("fault.link_transitions");
    m_wedge_transitions_ = m.GetCounter("fault.wedge_transitions");
    m_link_down_ = m.GetGauge("fault.link_down");
    m_uif_wedged_ = m.GetGauge("fault.uif_wedged");
    m_sq_full_ = m.GetGauge("fault.sq_full");
  }
}

void FaultInjector::Arm(const FaultPlan& plan) {
  rng_ = Rng(plan.seed * 0xBF58476D1CE4E5B9ull + 1);
  for (const FaultSpec& spec : plan.faults) {
    switch (spec.kind) {
      case FaultKind::kCommandStall:
      case FaultKind::kDelayedError:
        command_faults_.push_back({spec, spec.count});
        break;
      case FaultKind::kLinkDown:
      case FaultKind::kUifWedge:
      case FaultKind::kSqFullBurst: {
        FaultKind kind = spec.kind;
        SimTime start =
            spec.at_ns > sim_->now() ? spec.at_ns - sim_->now() : 0;
        sim_->ScheduleAfter(start, [this, kind] { OpenWindow(kind); });
        sim_->ScheduleAfter(start + spec.duration_ns,
                            [this, kind] { CloseWindow(kind); });
        break;
      }
    }
  }
}

void FaultInjector::OpenWindow(FaultKind kind) {
  // Annotate the black box: a dump whose marks ring shows an open fault
  // window explains the anomalies recorded inside it.
  if (obs_ && obs_->flight()) {
    obs_->flight()->Mark(sim_->now(), obs::kFlightEdgeFaultWindow,
                         (static_cast<u32>(kind) << 1) | 1u);
  }
  switch (kind) {
    case FaultKind::kLinkDown:
      if (link_depth_++ == 0) {
        if (m_link_transitions_) m_link_transitions_->Inc();
        for (auto& fn : link_subs_) fn(true);
      }
      if (m_link_down_) m_link_down_->Set(link_depth_);
      break;
    case FaultKind::kUifWedge:
      if (wedge_depth_++ == 0) {
        if (m_wedge_transitions_) m_wedge_transitions_->Inc();
        for (auto& fn : wedge_subs_) fn(true);
      }
      if (m_uif_wedged_) m_uif_wedged_->Set(wedge_depth_);
      break;
    case FaultKind::kSqFullBurst:
      sq_full_depth_++;
      if (m_sq_full_) m_sq_full_->Set(sq_full_depth_);
      break;
    default:
      break;
  }
}

void FaultInjector::CloseWindow(FaultKind kind) {
  if (obs_ && obs_->flight()) {
    obs_->flight()->Mark(sim_->now(), obs::kFlightEdgeFaultWindow,
                         static_cast<u32>(kind) << 1);
  }
  switch (kind) {
    case FaultKind::kLinkDown:
      if (--link_depth_ == 0) {
        if (m_link_transitions_) m_link_transitions_->Inc();
        for (auto& fn : link_subs_) fn(false);
      }
      if (m_link_down_) m_link_down_->Set(link_depth_);
      break;
    case FaultKind::kUifWedge:
      if (--wedge_depth_ == 0) {
        if (m_wedge_transitions_) m_wedge_transitions_->Inc();
        for (auto& fn : wedge_subs_) fn(false);
      }
      if (m_uif_wedged_) m_uif_wedged_->Set(wedge_depth_);
      break;
    case FaultKind::kSqFullBurst:
      sq_full_depth_--;
      if (m_sq_full_) m_sq_full_->Set(sq_full_depth_);
      break;
    default:
      break;
  }
}

FaultInjector::CommandAction FaultInjector::OnSsdCommand(
    u32 nsid, nvme::NvmeStatus* status, SimTime* extra_delay) {
  for (ArmedCommandFault& f : command_faults_) {
    if (f.remaining == 0) continue;
    if (f.spec.nsid != 0 && f.spec.nsid != nsid) continue;
    if (f.spec.probability < 1.0 && !rng_.NextBool(f.spec.probability)) {
      continue;
    }
    f.remaining--;
    if (f.spec.kind == FaultKind::kCommandStall) {
      stalls_++;
      if (m_stalls_) m_stalls_->Inc();
      return CommandAction::kStall;
    }
    errors_++;
    if (m_errors_) m_errors_->Inc();
    *status = f.spec.status;
    *extra_delay = f.spec.delay_ns;
    return CommandAction::kError;
  }
  return CommandAction::kNone;
}

bool FaultInjector::OnSsdSubmit() {
  if (sq_full_depth_ > 0) {
    sq_rejects_++;
    if (m_sq_rejects_) m_sq_rejects_->Inc();
    return false;
  }
  return true;
}

}  // namespace nvmetro::fault

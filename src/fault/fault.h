// Deterministic fault injection (the robustness counterpart of obs/).
//
// A FaultPlan is a seedable list of scoped faults; a FaultInjector arms
// the plan on the simulated clock and exposes the resulting fault state
// to the components that honor it:
//  - command-scoped faults (stall, delayed error) are queried per I/O
//    command by ssd::SimulatedController::ExecuteIo;
//  - SQ-full bursts gate ssd::SimulatedController::Submit;
//  - link-down windows toggle kblock::RemoteBlockDevice via the
//    OnLinkChange callbacks (wired by the solution factory);
//  - UIF wedge windows toggle core::NotifyChannel::SetWedged the same
//    way (a wedged channel models a crashed/frozen UIF process).
//
// Everything is deterministic: the same plan + seed yields the same fault
// sequence on every run, so recovery behavior can be pinned by golden
// traces and exact counters (tests/fault_test.cc).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "nvme/defs.h"
#include "sim/simulator.h"

namespace nvmetro::obs {
class Counter;
class Gauge;
class Observability;
}  // namespace nvmetro::obs

namespace nvmetro::fault {

enum class FaultKind : u8 {
  /// The device swallows a command: no CQE is ever posted. Requires the
  /// host to run request timeouts or the request hangs by design.
  kCommandStall,
  /// The device completes a command with `status` after `delay_ns`.
  kDelayedError,
  /// The NVMe-oF link to the remote secondary drops for the window
  /// [at_ns, at_ns + duration_ns); submissions error out after one
  /// propagation delay (the transport notices the dead peer).
  kLinkDown,
  /// The UIF process freezes (crash/SIGSTOP) for the window: it pops no
  /// NSQ entries and its NCQ responses are lost.
  kUifWedge,
  /// The physical controller rejects SQ pushes for the window (deep
  /// device backpressure).
  kSqFullBurst,
};

const char* FaultKindName(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kDelayedError;
  /// Command-scoped faults: namespace filter (0 = any) and budget.
  u32 nsid = 0;
  u32 count = 1;
  /// Per-command trigger probability (command-scoped faults).
  double probability = 1.0;
  /// kDelayedError: completion status + added latency.
  nvme::NvmeStatus status =
      nvme::MakeStatus(nvme::kSctGeneric, nvme::kScNamespaceNotReady);
  SimTime delay_ns = 50 * kUs;
  /// Windowed faults (kLinkDown/kUifWedge/kSqFullBurst).
  SimTime at_ns = 0;
  SimTime duration_ns = 1 * kMs;
};

/// What a random plan may contain. Kinds a stack cannot survive are
/// capped off (e.g. stalls need host-side timeouts).
struct FaultCaps {
  bool stalls = true;
  bool delayed_errors = true;
  bool link = true;
  bool wedge = true;
  bool sq_bursts = true;
};

struct FaultPlan {
  std::vector<FaultSpec> faults;
  u64 seed = 1;

  /// Deterministic random plan: 2-6 faults drawn from the capped kinds,
  /// windows inside the first ~8 ms of the run. Same seed, same plan.
  static FaultPlan Random(u64 seed, const FaultCaps& caps = {});

  std::string ToString() const;
};

/// Arms a FaultPlan on the simulated clock and answers fault queries.
class FaultInjector {
 public:
  explicit FaultInjector(sim::Simulator* sim,
                         obs::Observability* obs = nullptr);

  /// Installs `plan`: schedules window edges, arms command budgets.
  /// May be called more than once; plans accumulate.
  void Arm(const FaultPlan& plan);

  // --- Command-scoped queries (ssd::SimulatedController) -------------------

  enum class CommandAction : u8 { kNone, kStall, kError };

  /// Per-I/O-command check. On kError fills *status and *extra_delay.
  CommandAction OnSsdCommand(u32 nsid, nvme::NvmeStatus* status,
                             SimTime* extra_delay);

  /// SQ push gate: false while an SQ-full burst window is open.
  bool OnSsdSubmit();

  // --- Window state --------------------------------------------------------

  bool link_down() const { return link_depth_ > 0; }
  bool uif_wedged() const { return wedge_depth_ > 0; }
  bool sq_full() const { return sq_full_depth_ > 0; }

  /// Edge-change subscriptions (fired on 0<->1 depth transitions, in
  /// registration order). The factory wires these to the remote devices,
  /// notify channels and replicator UIFs of a bundle.
  void OnLinkChange(std::function<void(bool down)> fn) {
    link_subs_.push_back(std::move(fn));
  }
  void OnUifWedgeChange(std::function<void(bool wedged)> fn) {
    wedge_subs_.push_back(std::move(fn));
  }

  // --- Introspection -------------------------------------------------------

  u64 stalls_injected() const { return stalls_; }
  u64 errors_injected() const { return errors_; }
  u64 sq_rejects() const { return sq_rejects_; }

 private:
  struct ArmedCommandFault {
    FaultSpec spec;
    u32 remaining;
  };

  void OpenWindow(FaultKind kind);
  void CloseWindow(FaultKind kind);

  sim::Simulator* sim_;
  obs::Observability* obs_;
  Rng rng_;
  std::vector<ArmedCommandFault> command_faults_;
  int link_depth_ = 0;
  int wedge_depth_ = 0;
  int sq_full_depth_ = 0;
  std::vector<std::function<void(bool)>> link_subs_;
  std::vector<std::function<void(bool)>> wedge_subs_;
  u64 stalls_ = 0;
  u64 errors_ = 0;
  u64 sq_rejects_ = 0;
  // Observability (null without obs_): "fault.stalls", "fault.errors",
  // "fault.sq_rejects", "fault.link_transitions", "fault.wedge_transitions".
  obs::Counter* m_stalls_ = nullptr;
  obs::Counter* m_errors_ = nullptr;
  obs::Counter* m_sq_rejects_ = nullptr;
  obs::Counter* m_link_transitions_ = nullptr;
  obs::Counter* m_wedge_transitions_ = nullptr;
  // Window-state gauges so a time-series sampler can overlay fault state
  // on latency/IOPS series: "fault.link_down", "fault.uif_wedged",
  // "fault.sq_full" (value = open-window nesting depth).
  obs::Gauge* m_link_down_ = nullptr;
  obs::Gauge* m_uif_wedged_ = nullptr;
  obs::Gauge* m_sq_full_ = nullptr;
};

}  // namespace nvmetro::fault

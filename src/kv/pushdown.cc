#include "kv/pushdown.h"

#include <cstring>

namespace nvmetro::kv {

namespace {

void PutWord(u8* block, u32 off, u64 v) { std::memcpy(block + off, &v, 8); }

// Appends one formatted block and returns its block number.
u64 AppendBlock(PushdownIndex* idx, u32 level,
                const std::vector<std::pair<u64, u64>>& entries) {
  u64 bno = idx->num_blocks();
  idx->image.resize(idx->image.size() + kPushdownBlockBytes);
  u8* b = idx->image.data() + bno * kPushdownBlockBytes;
  PutWord(b, 0, (static_cast<u64>(kPushdownMagic) << 32) | level);
  PutWord(b, 8, entries.size());
  for (u32 i = 0; i < kPushdownFanout; i++) {
    u32 off = kPushdownHeaderBytes + i * 16;
    if (i < entries.size()) {
      PutWord(b, off, entries[i].first);
      PutWord(b, off + 8, entries[i].second);
    } else {
      PutWord(b, off, kPushdownPadKey);
      PutWord(b, off + 8, 0);
    }
  }
  return bno;
}

}  // namespace

PushdownIndex BuildPushdownIndex(
    const std::vector<std::pair<u64, u64>>& sorted_kvs, u64 base_lba) {
  PushdownIndex idx;
  idx.base_lba = base_lba;

  // Level 0: leaves.
  std::vector<u64> level_blocks;   // block numbers of the level being built
  std::vector<u64> level_firsts;   // first key of each of those blocks
  {
    std::vector<std::pair<u64, u64>> chunk;
    chunk.reserve(kPushdownFanout);
    usize i = 0;
    do {
      chunk.clear();
      while (i < sorted_kvs.size() && chunk.size() < kPushdownFanout) {
        chunk.push_back(sorted_kvs[i++]);
      }
      level_firsts.push_back(chunk.empty() ? 0 : chunk.front().first);
      level_blocks.push_back(AppendBlock(&idx, 0, chunk));
    } while (i < sorted_kvs.size());
  }
  idx.levels = 1;

  // Upper levels until a single root remains. Entry values are the
  // child's guest LBA — exactly what the classifier writes into
  // ctx.slba (plus part_offset) on a resubmission hop.
  while (level_blocks.size() > 1) {
    std::vector<u64> next_blocks, next_firsts;
    std::vector<std::pair<u64, u64>> chunk;
    chunk.reserve(kPushdownFanout);
    for (usize i = 0; i < level_blocks.size();) {
      chunk.clear();
      while (i < level_blocks.size() && chunk.size() < kPushdownFanout) {
        chunk.push_back(
            {level_firsts[i],
             base_lba + level_blocks[i] * kPushdownLbasPerBlock});
        i++;
      }
      next_firsts.push_back(chunk.front().first);
      next_blocks.push_back(AppendBlock(&idx, idx.levels, chunk));
    }
    level_blocks = std::move(next_blocks);
    level_firsts = std::move(next_firsts);
    idx.levels++;
  }
  idx.root_block = level_blocks.front();
  return idx;
}

u32 PushdownSearchBlock(const u8* block, u64 key) {
  // Uniform binary search, 7 fixed steps over the 128 entry slots; the
  // classifier runs the identical unrolled sequence (pad keys are ~0,
  // never <= a real key).
  u32 idx = 0;
  for (u32 step = kPushdownFanout / 2; step >= 1; step >>= 1) {
    u32 cand = idx + step;
    if (PushdownEntryKey(block, cand) <= key) idx = cand;
  }
  return idx;
}

bool PushdownLeafLookup(const u8* block, u64 key, u64* value) {
  if (PushdownMagicOf(block) != kPushdownMagic ||
      PushdownLevel(block) != 0) {
    return false;
  }
  u64 nkeys = PushdownNumKeys(block);
  if (nkeys == 0) return false;
  u32 i = PushdownSearchBlock(block, key);
  if (i >= nkeys || PushdownEntryKey(block, i) != key) return false;
  if (value) *value = PushdownEntryVal(block, i);
  return true;
}

bool PushdownLookupImage(const PushdownIndex& idx, u64 key, u64* value,
                         u32* hops) {
  if (hops) *hops = 0;
  if (idx.num_blocks() == 0) return false;
  u64 bno = idx.root_block;
  for (;;) {
    const u8* b = idx.image.data() + bno * kPushdownBlockBytes;
    if (PushdownMagicOf(b) != kPushdownMagic) return false;
    if (PushdownLevel(b) == 0) return PushdownLeafLookup(b, key, value);
    u32 i = PushdownSearchBlock(b, key);
    u64 child_lba = PushdownEntryVal(b, i);
    u64 child = (child_lba - idx.base_lba) / kPushdownLbasPerBlock;
    if (child >= idx.num_blocks()) return false;  // corrupt index
    bno = child;
    if (hops) (*hops)++;
  }
}

u64 PushdownKeyPrefix(const std::string& key) {
  u64 v = 0;
  for (u32 i = 0; i < 8; i++) {
    v <<= 8;
    if (i < key.size()) v |= static_cast<u8>(key[i]);
  }
  return v;
}

PushdownIndex BuildSsTablePushdownIndex(const SsTableMeta& meta,
                                        u64 base_lba) {
  std::vector<std::pair<u64, u64>> kvs;
  kvs.reserve(meta.first_keys.size());
  for (u32 b = 0; b < meta.num_blocks(); b++) {
    u64 prefix = PushdownKeyPrefix(meta.first_keys[b]);
    // Prefix ties collapse to the first block: the floor search then
    // lands on the earliest candidate, matching SsTableMeta::FindBlock
    // semantics on the 8-byte prefix.
    if (!kvs.empty() && kvs.back().first == prefix) continue;
    kvs.push_back({prefix, b});
  }
  return BuildPushdownIndex(kvs, base_lba);
}

}  // namespace nvmetro::kv

// Bloom filter for SSTable key membership (as RocksDB attaches per-table
// filters), with serialization for the table footer.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace nvmetro::kv {

class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sizes the filter for `expected_keys` at `bits_per_key`.
  BloomFilter(u64 expected_keys, u32 bits_per_key) {
    u64 nbits = std::max<u64>(64, expected_keys * bits_per_key);
    bits_.assign((nbits + 7) / 8, 0);
    // k = bits_per_key * ln2, clamped.
    hashes_ = std::max<u32>(1, std::min<u32>(12,
        static_cast<u32>(static_cast<double>(bits_per_key) * 0.69)));
  }

  void Add(const std::string& key) {
    u64 h1 = FnvHash64Bytes(key.data(), key.size());
    u64 h2 = FnvHash64(h1);
    for (u32 i = 0; i < hashes_; i++) {
      u64 bit = (h1 + i * h2) % (bits_.size() * 8);
      bits_[bit / 8] |= static_cast<u8>(1u << (bit % 8));
    }
  }

  /// False when the key is definitely absent.
  bool MayContain(const std::string& key) const {
    if (bits_.empty()) return true;
    u64 h1 = FnvHash64Bytes(key.data(), key.size());
    u64 h2 = FnvHash64(h1);
    for (u32 i = 0; i < hashes_; i++) {
      u64 bit = (h1 + i * h2) % (bits_.size() * 8);
      if (!(bits_[bit / 8] & (1u << (bit % 8)))) return false;
    }
    return true;
  }

  const std::vector<u8>& bits() const { return bits_; }
  u32 hashes() const { return hashes_; }

  void Restore(std::vector<u8> bits, u32 hashes) {
    bits_ = std::move(bits);
    hashes_ = hashes;
  }

 private:
  std::vector<u8> bits_;
  u32 hashes_ = 1;
};

}  // namespace nvmetro::kv

// Pushdown index: a static on-disk B+-tree laid out for classifier
// resubmission chains (DESIGN.md §15).
//
// The format is co-designed with the eBPF verifier's constraints so the
// per-hop search program verifies without loops or variable pointer
// arithmetic:
//   - fixed 4096-byte blocks (one read data page per hop);
//   - a 16-byte header: word0 = (magic32 << 32) | level, word1 = nkeys;
//   - exactly 128 fixed-width {u64 key, u64 value} entries, missing
//     slots padded with key = ~0 (so real keys must be < ~0);
//   - fanout 128 = 2^7, searched by a fully unrolled 7-step uniform
//     binary search whose index is a compile-time constant on every
//     verifier path (max touched offset 16 + 127*16 + 8 = 2056 < 4096,
//     provable without bounds branches).
//
// Internal entries hold the *guest LBA* of the child block; the
// classifier adds part_offset and returns kResubmit, so an H-level
// lookup costs one guest-visible completion instead of H round trips.
// Leaf blocks (level 0) complete to the guest, which finishes the
// lookup locally with PushdownLeafLookup on the returned page.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "kv/sstable.h"

namespace nvmetro::kv {

constexpr u32 kPushdownBlockBytes = 4096;
constexpr u32 kPushdownHeaderBytes = 16;
constexpr u32 kPushdownFanout = 128;
constexpr u32 kPushdownMagic = 0x50444958;  // "PDIX"
constexpr u64 kPushdownPadKey = ~0ull;
/// 512-byte LBAs per index block.
constexpr u32 kPushdownLbasPerBlock = kPushdownBlockBytes / 512;

struct PushdownIndex {
  u32 levels = 0;      // tree height; 1 = a single leaf
  u64 root_block = 0;  // block number of the root within `image`
  u64 base_lba = 0;    // guest LBA where image block 0 lives
  std::vector<u8> image;  // num_blocks() * kPushdownBlockBytes

  u64 num_blocks() const { return image.size() / kPushdownBlockBytes; }
  u64 root_lba() const {
    return base_lba + root_block * kPushdownLbasPerBlock;
  }
};

/// Builds the index over strictly-increasing (key, value) pairs (keys
/// must be < kPushdownPadKey). Leaves come first in the image, then
/// each upper level; the root is the last block.
PushdownIndex BuildPushdownIndex(
    const std::vector<std::pair<u64, u64>>& sorted_kvs, u64 base_lba);

/// Floor search of one block: index of the last entry with key <= `key`
/// (0 if none). Mirrors the classifier's unrolled binary search step
/// for step, so host and eBPF walks are comparable bit-for-bit.
u32 PushdownSearchBlock(const u8* block, u64 key);

/// Exact-match lookup in a leaf block (what the guest runs on the page
/// a resubmission chain returns).
bool PushdownLeafLookup(const u8* block, u64 key, u64* value);

/// Host-reference walk of the whole image (the route-only baseline
/// performs these hops as guest-visible reads). `hops` counts internal
/// blocks traversed before the leaf.
bool PushdownLookupImage(const PushdownIndex& idx, u64 key, u64* value,
                         u32* hops);

/// First 8 key bytes, big-endian, so u64 ordering matches string
/// ordering on the prefix.
u64 PushdownKeyPrefix(const std::string& key);

/// SSTable tie-in: indexes `meta`'s data blocks by the prefix of each
/// block's first key; values are data-block numbers. Lookups then chase
/// index blocks below the guest and read the one candidate data block
/// (consult `meta.bloom` first to skip absent keys entirely). Prefix
/// ties collapse to the first block with that prefix.
PushdownIndex BuildSsTablePushdownIndex(const SsTableMeta& meta,
                                        u64 base_lba);

// --- raw block accessors (shared by builder, reference walk, tests) ---

inline u64 PushdownWord(const u8* block, u32 off) {
  u64 v;
  __builtin_memcpy(&v, block + off, 8);
  return v;
}
inline u32 PushdownLevel(const u8* block) {
  return static_cast<u32>(PushdownWord(block, 0) & 0xFFFFFFFF);
}
inline u32 PushdownMagicOf(const u8* block) {
  return static_cast<u32>(PushdownWord(block, 0) >> 32);
}
inline u64 PushdownNumKeys(const u8* block) {
  return PushdownWord(block, 8);
}
inline u64 PushdownEntryKey(const u8* block, u32 idx) {
  return PushdownWord(block, kPushdownHeaderBytes + idx * 16);
}
inline u64 PushdownEntryVal(const u8* block, u32 idx) {
  return PushdownWord(block, kPushdownHeaderBytes + idx * 16 + 8);
}

}  // namespace nvmetro::kv

#include "kv/sstable.h"

#include <algorithm>
#include <cstring>

namespace nvmetro::kv {

namespace {
void PutU16(std::vector<u8>* out, u16 v) {
  out->push_back(static_cast<u8>(v));
  out->push_back(static_cast<u8>(v >> 8));
}
void PutU32(std::vector<u8>* out, u32 v) {
  for (int i = 0; i < 4; i++) out->push_back(static_cast<u8>(v >> (8 * i)));
}
void PutU64(std::vector<u8>* out, u64 v) {
  for (int i = 0; i < 8; i++) out->push_back(static_cast<u8>(v >> (8 * i)));
}
u16 GetU16(const u8* p) { return static_cast<u16>(p[0] | (p[1] << 8)); }
u32 GetU32(const u8* p) {
  u32 v = 0;
  for (int i = 0; i < 4; i++) v |= static_cast<u32>(p[i]) << (8 * i);
  return v;
}
u64 GetU64(const u8* p) {
  u64 v = 0;
  for (int i = 0; i < 8; i++) v |= static_cast<u64>(p[i]) << (8 * i);
  return v;
}

void AppendRecord(std::vector<u8>* out, const Record& r) {
  PutU16(out, static_cast<u16>(r.key.size()));
  out->push_back(r.tombstone ? 1 : 0);
  PutU32(out, static_cast<u32>(r.value.size()));
  out->insert(out->end(), r.key.begin(), r.key.end());
  out->insert(out->end(), r.value.begin(), r.value.end());
}

}  // namespace

i64 SsTableMeta::FindBlock(const std::string& key) const {
  if (first_keys.empty()) return -1;
  // Last block whose first key <= key.
  auto it = std::upper_bound(first_keys.begin(), first_keys.end(), key);
  if (it == first_keys.begin()) return -1;
  return static_cast<i64>(it - first_keys.begin()) - 1;
}

std::vector<u8> BuildSsTable(const std::map<std::string, Record>& records,
                             u32 block_bytes, u32 bloom_bits_per_key,
                             SsTableMeta* meta) {
  std::vector<u8> file;
  meta->first_keys.clear();
  meta->block_offsets.clear();
  meta->num_keys = records.size();
  meta->bloom = BloomFilter(records.size(), bloom_bits_per_key);

  u64 block_start = 0;
  bool block_open = false;
  for (const auto& [key, rec] : records) {
    meta->bloom.Add(key);
    if (!block_open) {
      block_start = file.size();
      meta->block_offsets.push_back(block_start);
      meta->first_keys.push_back(key);
      block_open = true;
    }
    AppendRecord(&file, rec);
    if (file.size() - block_start >= block_bytes) block_open = false;
  }
  meta->block_offsets.push_back(file.size());
  meta->data_len = file.size();

  // Index blob.
  u64 index_off = file.size();
  PutU32(&file, static_cast<u32>(meta->first_keys.size()));
  for (usize i = 0; i < meta->first_keys.size(); i++) {
    PutU32(&file, static_cast<u32>(meta->first_keys[i].size()));
    file.insert(file.end(), meta->first_keys[i].begin(),
                meta->first_keys[i].end());
    PutU64(&file, meta->block_offsets[i]);
  }
  PutU64(&file, meta->data_len);
  PutU64(&file, meta->num_keys);
  PutU32(&file, meta->bloom.hashes());
  PutU32(&file, static_cast<u32>(meta->bloom.bits().size()));
  file.insert(file.end(), meta->bloom.bits().begin(),
              meta->bloom.bits().end());

  // Footer.
  u64 index_end = file.size();
  PutU64(&file, index_off);
  PutU64(&file, index_end - index_off);
  PutU64(&file, kSsTableMagic);
  return file;
}

Status ParseSsTableTail(const std::vector<u8>& tail, u64 file_len,
                        SsTableMeta* meta) {
  if (tail.size() < kSsTableFooterLen)
    return DataLoss("sstable: tail too short");
  const u8* foot = tail.data() + tail.size() - kSsTableFooterLen;
  u64 index_off = GetU64(foot);
  u64 index_len = GetU64(foot + 8);
  u64 magic = GetU64(foot + 16);
  if (magic != kSsTableMagic) return DataLoss("sstable: bad magic");
  if (index_off + index_len + kSsTableFooterLen != file_len)
    return DataLoss("sstable: inconsistent footer");
  // The tail buffer holds the file's last tail.size() bytes.
  u64 tail_start = file_len - tail.size();
  if (index_off < tail_start)
    return DataLoss("sstable: tail does not include index");
  const u8* p = tail.data() + (index_off - tail_start);
  const u8* end = foot;

  auto need = [&](u64 n) { return static_cast<u64>(end - p) >= n; };
  if (!need(4)) return DataLoss("sstable: truncated index");
  u32 nblocks = GetU32(p);
  p += 4;
  meta->first_keys.clear();
  meta->block_offsets.clear();
  for (u32 i = 0; i < nblocks; i++) {
    if (!need(4)) return DataLoss("sstable: truncated index key");
    u32 klen = GetU32(p);
    p += 4;
    if (!need(klen + 8)) return DataLoss("sstable: truncated index entry");
    meta->first_keys.emplace_back(reinterpret_cast<const char*>(p), klen);
    p += klen;
    meta->block_offsets.push_back(GetU64(p));
    p += 8;
  }
  if (!need(8 + 8 + 4 + 4)) return DataLoss("sstable: truncated index tail");
  meta->data_len = GetU64(p);
  p += 8;
  meta->num_keys = GetU64(p);
  p += 8;
  u32 hashes = GetU32(p);
  p += 4;
  u32 bloom_len = GetU32(p);
  p += 4;
  if (!need(bloom_len)) return DataLoss("sstable: truncated bloom");
  std::vector<u8> bits(p, p + bloom_len);
  meta->bloom.Restore(std::move(bits), hashes);
  meta->block_offsets.push_back(meta->data_len);
  return OkStatus();
}

Status ParseBlock(const u8* data, u64 len, std::vector<Record>* out) {
  u64 pos = 0;
  while (pos < len) {
    if (pos + 7 > len) return DataLoss("sstable: truncated record header");
    u16 klen = GetU16(data + pos);
    u8 tomb = data[pos + 2];
    u32 vlen = GetU32(data + pos + 3);
    pos += 7;
    if (pos + klen + vlen > len)
      return DataLoss("sstable: truncated record body");
    Record r;
    r.key.assign(reinterpret_cast<const char*>(data + pos), klen);
    pos += klen;
    r.value.assign(reinterpret_cast<const char*>(data + pos), vlen);
    pos += vlen;
    r.tombstone = tomb != 0;
    out->push_back(std::move(r));
  }
  return OkStatus();
}

BlockFind FindInBlock(const u8* data, u64 len, const std::string& key,
                      std::string* value) {
  u64 pos = 0;
  while (pos < len) {
    if (pos + 7 > len) return BlockFind::kCorrupt;
    u16 klen = GetU16(data + pos);
    u8 tomb = data[pos + 2];
    u32 vlen = GetU32(data + pos + 3);
    pos += 7;
    if (pos + klen + vlen > len) return BlockFind::kCorrupt;
    if (klen == key.size() &&
        std::memcmp(data + pos, key.data(), klen) == 0) {
      if (tomb) return BlockFind::kTombstone;
      value->assign(reinterpret_cast<const char*>(data + pos + klen), vlen);
      return BlockFind::kFound;
    }
    pos += klen + vlen;
  }
  return BlockFind::kAbsent;
}

}  // namespace nvmetro::kv

// SSTable format: the on-disk sorted-run files of MiniKv.
//
// Layout: [data block]* [index blob] [footer]. Data blocks hold sorted
// records; the index blob carries the first key + offset of every block,
// the key count and the serialized bloom filter; the 24-byte footer
// locates the index. Records: u16 klen | u8 tombstone | u32 vlen | key |
// value.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "kv/bloom.h"

namespace nvmetro::kv {

struct Record {
  std::string key;
  std::string value;
  bool tombstone = false;
};

/// In-memory metadata of one SSTable (the file's data blocks stay on
/// disk; this is what the table cache would pin).
struct SsTableMeta {
  u64 id = 0;
  std::string fname;
  u64 data_len = 0;   // bytes of data-block area
  u64 num_keys = 0;
  std::vector<std::string> first_keys;  // per block
  std::vector<u64> block_offsets;       // per block, plus end sentinel
  BloomFilter bloom;

  /// Index of the block that may contain `key`, or -1.
  i64 FindBlock(const std::string& key) const;
  u32 num_blocks() const {
    return block_offsets.empty()
               ? 0
               : static_cast<u32>(block_offsets.size() - 1);
  }
  u64 BlockLen(u32 idx) const {
    return block_offsets[idx + 1] - block_offsets[idx];
  }
};

/// Serializes sorted records into a complete SSTable file image and the
/// corresponding metadata. `block_bytes` bounds data-block payload.
std::vector<u8> BuildSsTable(const std::map<std::string, Record>& records,
                             u32 block_bytes, u32 bloom_bits_per_key,
                             SsTableMeta* meta);

/// Parses the index+footer region of a file image (tail bytes) back into
/// metadata. `file_len` is the total file size; `tail` must hold at least
/// the last `tail.size()` bytes of the file and include the whole index.
Status ParseSsTableTail(const std::vector<u8>& tail, u64 file_len,
                        SsTableMeta* meta);

/// Size of the footer (for reading the tail).
constexpr u64 kSsTableFooterLen = 24;
constexpr u64 kSsTableMagic = 0x4D494E494B563031ull;  // "MINIKV01"

/// Parses all records of one data block.
Status ParseBlock(const u8* data, u64 len, std::vector<Record>* out);

/// Searches one data block for a key.
enum class BlockFind { kFound, kTombstone, kAbsent, kCorrupt };
BlockFind FindInBlock(const u8* data, u64 len, const std::string& key,
                      std::string* value);

}  // namespace nvmetro::kv

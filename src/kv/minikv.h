// MiniKv: an LSM-tree key-value store over FlatFs.
//
// Substitution for the paper's RocksDB (§V-A): a write-ahead log feeding
// an in-memory memtable, flushed to sorted SSTable files with bloom
// filters and block indexes, background size-tiered compaction, an LRU
// block cache, point gets and ordered scans. The I/O stream it produces —
// buffered WAL appends, large sequential flush/compaction writes, random
// block reads — is the same kind of mixed load YCSB-on-RocksDB generates
// through the storage stacks under test.
//
// The API is asynchronous (callback-based) because the store runs inside
// the discrete-event simulation; per-operation CPU is charged to the
// configured guest vCPU.
#pragma once

#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "fsx/flatfs.h"
#include "kv/sstable.h"
#include "sim/simulator.h"
#include "sim/vcpu.h"

namespace nvmetro::kv {

struct MiniKvOptions {
  u64 memtable_bytes = 4 * MiB;
  u32 block_bytes = 4096;
  u64 block_cache_bytes = 64 * MiB;
  /// Number of sorted runs that triggers a full-merge compaction.
  u32 compact_threshold = 6;
  u32 bloom_bits_per_key = 10;
  u64 wal_buffer_bytes = 32 * KiB;
  /// WAL files are preallocated at this size so appended records survive
  /// a crash without per-append filesystem metadata syncs.
  u64 wal_capacity_bytes = 16 * MiB;
  /// Guest CPU the DB engine runs on (charged per op); may be null in
  /// pure-logic tests.
  sim::VCpu* cpu = nullptr;
  SimTime cpu_per_op_ns = 1'200;
};

class MiniKv {
 public:
  using StatusCb = std::function<void(Status)>;
  using GetCb = std::function<void(Result<std::string>)>;
  using ScanResult = std::vector<std::pair<std::string, std::string>>;
  using ScanCb = std::function<void(Result<ScanResult>)>;
  using OpenCb = std::function<void(Result<std::unique_ptr<MiniKv>>)>;

  /// Opens (and recovers) a store on a mounted FlatFs: loads SSTable
  /// metadata from disk and replays the WAL into the memtable.
  static void Open(sim::Simulator* sim, fsx::FlatFs* fs,
                   MiniKvOptions options, OpenCb done);

  ~MiniKv() = default;

  void Put(const std::string& key, const std::string& value, StatusCb done);
  void Delete(const std::string& key, StatusCb done);
  void Get(const std::string& key, GetCb done);
  /// Returns up to `count` key/value pairs with key >= start, in order.
  void Scan(const std::string& start, u32 count, ScanCb done);

  /// Forces the current memtable to disk (waits for any ongoing flush).
  void FlushMemtable(StatusCb done);

  struct Stats {
    u64 puts = 0;
    u64 gets = 0;
    u64 deletes = 0;
    u64 scans = 0;
    u64 memtable_hits = 0;
    u64 bloom_skips = 0;
    u64 block_reads = 0;       // data blocks fetched from storage
    u64 block_cache_hits = 0;
    u64 flushes = 0;
    u64 compactions = 0;
    u64 wal_bytes = 0;
    u64 write_stalls = 0;
  };
  const Stats& stats() const { return stats_; }
  usize sstable_count() const { return ssts_.size(); }
  u64 memtable_bytes() const { return mem_bytes_; }

 private:
  MiniKv(sim::Simulator* sim, fsx::FlatFs* fs, MiniKvOptions options)
      : sim_(sim), fs_(fs), opt_(options) {}

  struct Sst {
    SsTableMeta meta;
  };
  using SstPtr = std::shared_ptr<Sst>;

  // --- write path ---
  void Write(const std::string& key, const std::string& value,
             bool tombstone, StatusCb done);
  void AppendWal(const Record& rec);
  void FlushWalBuffer();
  void MaybeScheduleFlush();
  void StartFlush();
  void FinishFlush(Status st);
  void MaybeStartCompaction();

  // --- async-loop steps (free of self-referential closures) ---
  static void OpenStep(std::shared_ptr<struct OpenCtx> ctx);
  void CompactReadStep(std::shared_ptr<struct CompactCtx> ctx);
  void CompactFinish(std::shared_ptr<struct CompactCtx> ctx);
  void ScanStep(std::shared_ptr<struct ScanCtx> ctx);
  void GatherScanMemtables(const std::shared_ptr<struct ScanCtx>& ctx);

  // --- read path ---
  void GetFromSsts(std::shared_ptr<struct GetCtx> ctx);
  void ReadBlock(const SstPtr& sst, u32 block_idx,
                 std::function<void(Result<std::shared_ptr<std::vector<u8>>>)>
                     done);

  // --- block cache ---
  std::shared_ptr<std::vector<u8>> CacheLookup(u64 sst_id, u32 block);
  void CacheInsert(u64 sst_id, u32 block,
                   std::shared_ptr<std::vector<u8>> data);

  void RunOnCpu(SimTime cost, std::function<void()> fn) {
    if (opt_.cpu) {
      opt_.cpu->Run(cost, std::move(fn));
    } else {
      sim_->ScheduleAfter(cost, std::move(fn));
    }
  }

  sim::Simulator* sim_;
  fsx::FlatFs* fs_;
  MiniKvOptions opt_;
  Stats stats_;

  // Active memtable + the immutable one being flushed.
  std::map<std::string, Record> memtable_;
  u64 mem_bytes_ = 0;
  std::shared_ptr<std::map<std::string, Record>> imm_memtable_;
  bool flushing_ = false;
  bool compacting_ = false;
  std::vector<StatusCb> stall_waiters_;
  std::vector<StatusCb> flush_waiters_;

  // Sorted runs, newest first.
  std::vector<SstPtr> ssts_;
  u64 next_file_id_ = 1;

  // WAL.
  std::string wal_name_;
  std::vector<u8> wal_buffer_;
  u64 wal_pos_ = 0;  // next write offset within the preallocated file

  // Block cache (LRU).
  struct CacheEntry {
    std::shared_ptr<std::vector<u8>> data;
    std::list<u64>::iterator lru_it;
  };
  std::unordered_map<u64, CacheEntry> cache_;
  std::list<u64> cache_lru_;
  u64 cache_bytes_ = 0;

  friend struct GetCtx;
  friend struct OpenCtx;
  friend struct CompactCtx;
  friend struct ScanCtx;
  friend struct MiniKvTestPeer;
};

}  // namespace nvmetro::kv

#include "kv/minikv.h"

#include <algorithm>
#include <cstring>

namespace nvmetro::kv {

namespace {
constexpr u64 kIoChunk = 256 * KiB;  // sequential I/O unit for flush/compact

// --- WAL record framing ------------------------------------------------------
// magic | klen u16 | tomb u8 | vlen u32 | crc u32 | key | value
// The crc (truncated FNV of key+value) plus the magic byte let recovery
// scan a preallocated (zero-filled) log and stop at the first torn or
// unwritten record.
constexpr u8 kWalMagic = 0xA7;

u32 WalCrc(const std::string& key, const std::string& value) {
  u64 h = FnvHash64Bytes(key.data(), key.size()) ^
          FnvHash64Bytes(value.data(), value.size());
  return static_cast<u32>(h ^ (h >> 32));
}

void AppendWalRecord(std::vector<u8>* buf, const Record& rec) {
  buf->push_back(kWalMagic);
  u16 klen = static_cast<u16>(rec.key.size());
  buf->push_back(static_cast<u8>(klen));
  buf->push_back(static_cast<u8>(klen >> 8));
  buf->push_back(rec.tombstone ? 1 : 0);
  u32 vlen = static_cast<u32>(rec.value.size());
  for (int i = 0; i < 4; i++) buf->push_back(static_cast<u8>(vlen >> (8 * i)));
  u32 crc = WalCrc(rec.key, rec.value);
  for (int i = 0; i < 4; i++) buf->push_back(static_cast<u8>(crc >> (8 * i)));
  buf->insert(buf->end(), rec.key.begin(), rec.key.end());
  buf->insert(buf->end(), rec.value.begin(), rec.value.end());
}

/// Scans WAL records until the first invalid one (torn tail / unwritten
/// zeros).
void ParseWalRecords(const u8* p, u64 len, std::vector<Record>* out) {
  u64 pos = 0;
  while (pos + 12 <= len) {
    if (p[pos] != kWalMagic) return;
    u16 klen = static_cast<u16>(p[pos + 1] | (p[pos + 2] << 8));
    u8 tomb = p[pos + 3];
    u32 vlen = 0;
    for (int i = 0; i < 4; i++) {
      vlen |= static_cast<u32>(p[pos + 4 + i]) << (8 * i);
    }
    u32 crc = 0;
    for (int i = 0; i < 4; i++) {
      crc |= static_cast<u32>(p[pos + 8 + i]) << (8 * i);
    }
    pos += 12;
    if (klen == 0 || pos + klen + vlen > len) return;
    Record r;
    r.key.assign(reinterpret_cast<const char*>(p + pos), klen);
    pos += klen;
    r.value.assign(reinterpret_cast<const char*>(p + pos), vlen);
    pos += vlen;
    r.tombstone = tomb != 0;
    if (WalCrc(r.key, r.value) != crc) return;
    out->push_back(std::move(r));
  }
}

u64 RecordBytes(const Record& r) {
  return 7 + r.key.size() + r.value.size();
}

std::string SstName(u64 id) { return "sst-" + std::to_string(id); }
std::string WalName(u64 id) { return "wal-" + std::to_string(id); }

/// Sequentially appends `data` to `file` in kIoChunk pieces.
void AppendChunked(fsx::FlatFs* fs, const std::string& file,
                   std::shared_ptr<std::vector<u8>> data, u64 pos,
                   fsx::FlatFs::Callback done) {
  if (pos >= data->size()) {
    done(OkStatus());
    return;
  }
  u64 n = std::min<u64>(kIoChunk, data->size() - pos);
  fs->Append(file, data->data() + pos, n,
             [fs, file, data, pos, n, done = std::move(done)](Status st) {
               if (!st.ok()) {
                 done(st);
                 return;
               }
               AppendChunked(fs, file, data, pos + n, done);
             });
}

/// Sequentially reads a whole file in kIoChunk pieces.
void ReadWhole(fsx::FlatFs* fs, const std::string& file,
               std::shared_ptr<std::vector<u8>> out, u64 pos,
               fsx::FlatFs::Callback done) {
  if (pos >= out->size()) {
    done(OkStatus());
    return;
  }
  u64 n = std::min<u64>(kIoChunk, out->size() - pos);
  fs->ReadAt(file, pos, out->data() + pos, n,
             [fs, file, out, pos, n, done = std::move(done)](Status st) {
               if (!st.ok()) {
                 done(st);
                 return;
               }
               ReadWhole(fs, file, out, pos + n, done);
             });
}

}  // namespace

// --- Open / recovery -------------------------------------------------------------

struct OpenCtx {
  std::unique_ptr<MiniKv> db;
  std::vector<u64> sst_ids;
  usize next = 0;
  u64 wal_id = 0;
  bool has_wal = false;
  MiniKv::OpenCb done;
};

void MiniKv::Open(sim::Simulator* sim, fsx::FlatFs* fs,
                  MiniKvOptions options, OpenCb done) {
  auto db = std::unique_ptr<MiniKv>(new MiniKv(sim, fs, options));
  MiniKv* kv = db.get();

  // Discover SSTables and the WAL.
  std::vector<u64> sst_ids;
  u64 wal_id = 0;
  bool has_wal = false;
  for (const std::string& name : fs->List()) {
    if (name.rfind("sst-", 0) == 0) {
      sst_ids.push_back(std::stoull(name.substr(4)));
    } else if (name.rfind("wal-", 0) == 0) {
      u64 id = std::stoull(name.substr(4));
      wal_id = std::max(wal_id, id);
      has_wal = true;
    }
  }
  std::sort(sst_ids.begin(), sst_ids.end(), std::greater<u64>());
  for (u64 id : sst_ids) kv->next_file_id_ = std::max(kv->next_file_id_, id + 1);
  if (has_wal) kv->next_file_id_ = std::max(kv->next_file_id_, wal_id + 1);

  auto ctx = std::make_shared<OpenCtx>();
  ctx->db = std::move(db);
  ctx->sst_ids = std::move(sst_ids);
  ctx->wal_id = wal_id;
  ctx->has_wal = has_wal;
  ctx->done = std::move(done);
  OpenStep(std::move(ctx));
}

void MiniKv::OpenStep(std::shared_ptr<OpenCtx> ctx) {
  MiniKv* kv2 = ctx->db.get();
  if (ctx->next < ctx->sst_ids.size()) {
    u64 id = ctx->sst_ids[ctx->next++];
    std::string name = SstName(id);
    u64 len = kv2->fs_->FileSize(name);
    // Read a generous tail (index + footer); the index of our table
    // sizes is well under 1 MiB.
    u64 tail_len = std::min<u64>(len, 1 * MiB);
    auto tail = std::make_shared<std::vector<u8>>(tail_len);
    kv2->fs_->ReadAt(name, len - tail_len, tail->data(), tail_len,
                     [ctx, id, name, len, tail](Status st) mutable {
                       if (!st.ok()) {
                         ctx->done(st);
                         return;
                       }
                       auto sst = std::make_shared<Sst>();
                       sst->meta.id = id;
                       sst->meta.fname = name;
                       Status ps = ParseSsTableTail(*tail, len, &sst->meta);
                       if (!ps.ok()) {
                         ctx->done(ps);
                         return;
                       }
                       ctx->db->ssts_.push_back(std::move(sst));
                       OpenStep(std::move(ctx));
                     });
    return;
  }
  // Replay WAL (scan the preallocated log until the first invalid
  // record).
  MiniKv* kv3 = ctx->db.get();
  if (ctx->has_wal) {
    kv3->wal_name_ = WalName(ctx->wal_id);
    u64 len = kv3->fs_->FileSize(kv3->wal_name_);
    auto blob = std::make_shared<std::vector<u8>>(len);
    auto finish = [ctx, blob]() {
      MiniKv* kv4 = ctx->db.get();
      std::vector<Record> recs;
      ParseWalRecords(blob->data(), blob->size(), &recs);
      for (auto& r : recs) {
        kv4->mem_bytes_ += RecordBytes(r);
        // Recovered records land past whatever is already replayed.
        std::vector<u8> reenc;
        AppendWalRecord(&reenc, r);
        kv4->wal_pos_ += reenc.size();
        kv4->memtable_[r.key] = std::move(r);
      }
      ctx->done(std::move(ctx->db));
    };
    if (len == 0) {
      finish();
    } else {
      ReadWhole(kv3->fs_, kv3->wal_name_, blob, 0,
                [ctx, finish](Status st) {
                  if (!st.ok()) {
                    ctx->done(st);
                    return;
                  }
                  finish();
                });
    }
    return;
  }
  // Fresh store: create + preallocate the first WAL and persist the
  // filesystem metadata once, so the log file itself survives crashes.
  kv3->wal_name_ = WalName(kv3->next_file_id_++);
  Status cs = kv3->fs_->Create(kv3->wal_name_);
  if (cs.ok()) cs = kv3->fs_->Preallocate(kv3->wal_name_,
                                          kv3->opt_.wal_capacity_bytes);
  if (!cs.ok()) {
    ctx->done(cs);
    return;
  }
  kv3->fs_->Sync([ctx](Status st) {
    if (!st.ok()) {
      ctx->done(st);
      return;
    }
    ctx->done(std::move(ctx->db));
  });
}

// --- Write path ------------------------------------------------------------------

void MiniKv::Put(const std::string& key, const std::string& value,
                 StatusCb done) {
  stats_.puts++;
  Write(key, value, false, std::move(done));
}

void MiniKv::Delete(const std::string& key, StatusCb done) {
  stats_.deletes++;
  Write(key, "", true, std::move(done));
}

void MiniKv::Write(const std::string& key, const std::string& value,
                   bool tombstone, StatusCb done) {
  if (key.empty()) {
    RunOnCpu(0, [done = std::move(done)] {
      done(InvalidArgument("empty keys are not supported"));
    });
    return;
  }
  // Backpressure: both memtables full -> stall until the flush finishes
  // (RocksDB write stall).
  if (imm_memtable_ && mem_bytes_ >= opt_.memtable_bytes) {
    stats_.write_stalls++;
    stall_waiters_.push_back([this, key, value, tombstone,
                              done = std::move(done)](Status st) {
      if (!st.ok()) {
        done(st);
        return;
      }
      Write(key, value, tombstone, done);
    });
    return;
  }
  RunOnCpu(opt_.cpu_per_op_ns, [this, key, value, tombstone,
                                done = std::move(done)] {
    Record rec{key, value, tombstone};
    AppendWal(rec);
    mem_bytes_ += RecordBytes(rec);
    memtable_[key] = std::move(rec);
    MaybeScheduleFlush();
    done(OkStatus());
  });
}

void MiniKv::AppendWal(const Record& rec) {
  u64 before = wal_buffer_.size();
  AppendWalRecord(&wal_buffer_, rec);
  stats_.wal_bytes += wal_buffer_.size() - before;
  if (wal_buffer_.size() >= opt_.wal_buffer_bytes) FlushWalBuffer();
  // A nearly-full log forces an early memtable flush (log rotation).
  if (wal_pos_ + wal_buffer_.size() + 64 * KiB > opt_.wal_capacity_bytes &&
      !flushing_) {
    StartFlush();
  }
}

void MiniKv::FlushWalBuffer() {
  if (wal_buffer_.empty()) return;
  if (wal_pos_ + wal_buffer_.size() > opt_.wal_capacity_bytes) {
    // Should not happen (rotation kicks in earlier); drop durability of
    // the overflow rather than corrupting the log.
    wal_buffer_.clear();
    return;
  }
  auto blob = std::make_shared<std::vector<u8>>(std::move(wal_buffer_));
  wal_buffer_.clear();
  u64 at = wal_pos_;
  wal_pos_ += blob->size();
  // Buffered (no-sync) WAL, as RocksDB defaults: the write is issued,
  // the writer does not wait for it.
  fs_->WriteAt(wal_name_, at, blob->data(), blob->size(),
               [blob](Status) { /* fire and forget */ });
}

void MiniKv::MaybeScheduleFlush() {
  if (mem_bytes_ < opt_.memtable_bytes || imm_memtable_) return;
  StartFlush();
}

void MiniKv::StartFlush() {
  if (flushing_ || memtable_.empty()) return;
  flushing_ = true;
  stats_.flushes++;
  imm_memtable_ =
      std::make_shared<std::map<std::string, Record>>(std::move(memtable_));
  memtable_.clear();
  mem_bytes_ = 0;
  FlushWalBuffer();
  // The WAL for the flushed memtable is obsolete once the SST lands;
  // start a fresh WAL for the new memtable immediately.
  std::string old_wal = wal_name_;
  wal_name_ = WalName(next_file_id_++);
  (void)fs_->Create(wal_name_);
  (void)fs_->Preallocate(wal_name_, opt_.wal_capacity_bytes);
  wal_pos_ = 0;

  u64 sst_id = next_file_id_++;
  auto sst = std::make_shared<Sst>();
  sst->meta.id = sst_id;
  sst->meta.fname = SstName(sst_id);
  auto image = std::make_shared<std::vector<u8>>(
      BuildSsTable(*imm_memtable_, opt_.block_bytes, opt_.bloom_bits_per_key,
                   &sst->meta));
  Status cs = fs_->Create(sst->meta.fname);
  if (!cs.ok()) {
    FinishFlush(cs);
    return;
  }
  AppendChunked(fs_, sst->meta.fname, image, 0,
                [this, sst, old_wal](Status st) {
                  if (!st.ok()) {
                    FinishFlush(st);
                    return;
                  }
                  fs_->Sync([this, sst, old_wal](Status st2) {
                    if (st2.ok()) {
                      ssts_.insert(ssts_.begin(), sst);
                      fs_->Remove(old_wal);
                      imm_memtable_.reset();
                    }
                    FinishFlush(st2);
                  });
                });
}

void MiniKv::FinishFlush(Status st) {
  flushing_ = false;
  imm_memtable_.reset();
  auto stalled = std::move(stall_waiters_);
  stall_waiters_.clear();
  for (auto& cb : stalled) cb(st);
  auto waiters = std::move(flush_waiters_);
  flush_waiters_.clear();
  for (auto& cb : waiters) cb(st);
  MaybeStartCompaction();
}

void MiniKv::FlushMemtable(StatusCb done) {
  if (memtable_.empty() && !flushing_) {
    RunOnCpu(0, [done = std::move(done)] { done(OkStatus()); });
    return;
  }
  flush_waiters_.push_back(std::move(done));
  if (!flushing_) StartFlush();
}

// --- Compaction ------------------------------------------------------------------

struct CompactCtx {
  std::vector<MiniKv::SstPtr> inputs;
  std::map<std::string, Record> merged;
  usize idx = 0;
};

void MiniKv::MaybeStartCompaction() {
  if (compacting_ || ssts_.size() < opt_.compact_threshold) return;
  compacting_ = true;
  stats_.compactions++;

  // Merge ALL current runs (size-tiered full merge), newest-first
  // precedence; tombstones drop out of the merged bottom run.
  auto ctx = std::make_shared<CompactCtx>();
  ctx->inputs = ssts_;
  CompactReadStep(std::move(ctx));
}

void MiniKv::CompactReadStep(std::shared_ptr<CompactCtx> ctx) {
  if (ctx->idx >= ctx->inputs.size()) {
    CompactFinish(std::move(ctx));
    return;
  }
  const SstPtr& sst = ctx->inputs[ctx->idx++];
  auto blob = std::make_shared<std::vector<u8>>(sst->meta.data_len);
  ReadWhole(fs_, sst->meta.fname, blob, 0,
            [this, ctx, blob](Status st) mutable {
              if (!st.ok()) {
                compacting_ = false;
                return;
              }
              std::vector<Record> recs;
              if (ParseBlock(blob->data(), blob->size(), &recs).ok()) {
                // Inputs are visited newest-first; keep the first copy.
                for (auto& r : recs) {
                  ctx->merged.emplace(r.key, std::move(r));
                }
              }
              CompactReadStep(std::move(ctx));
            });
}

void MiniKv::CompactFinish(std::shared_ptr<CompactCtx> ctx) {
  // Drop tombstones (full merge covers the whole keyspace).
  for (auto it = ctx->merged.begin(); it != ctx->merged.end();) {
    if (it->second.tombstone) {
      it = ctx->merged.erase(it);
    } else {
      ++it;
    }
  }
  u64 sst_id = next_file_id_++;
  auto out = std::make_shared<Sst>();
  out->meta.id = sst_id;
  out->meta.fname = SstName(sst_id);
  auto image = std::make_shared<std::vector<u8>>(
      BuildSsTable(ctx->merged, opt_.block_bytes, opt_.bloom_bits_per_key,
                   &out->meta));
  if (!fs_->Create(out->meta.fname).ok()) {
    compacting_ = false;
    return;
  }
  AppendChunked(
      fs_, out->meta.fname, image, 0, [this, out, ctx](Status st) {
        if (!st.ok()) {
          compacting_ = false;
          return;
        }
        fs_->Sync([this, out, ctx](Status st2) {
          if (st2.ok()) {
            // Swap: drop exactly the merged inputs, keep newer runs.
            std::vector<SstPtr> kept;
            for (const SstPtr& s : ssts_) {
              bool is_input = false;
              for (const SstPtr& in : ctx->inputs) {
                if (in == s) is_input = true;
              }
              if (!is_input) kept.push_back(s);
            }
            kept.push_back(out);
            ssts_ = std::move(kept);
            for (const SstPtr& in : ctx->inputs) {
              fs_->Remove(in->meta.fname);
            }
            fs_->Sync([](Status) {});
          }
          compacting_ = false;
          MaybeStartCompaction();
        });
      });
}

// --- Read path -------------------------------------------------------------------

struct GetCtx {
  MiniKv* kv;
  std::string key;
  usize sst_idx = 0;
  std::vector<MiniKv::SstPtr> ssts;  // snapshot
  MiniKv::GetCb done;
};

void MiniKv::Get(const std::string& key, GetCb done) {
  stats_.gets++;
  RunOnCpu(opt_.cpu_per_op_ns, [this, key, done = std::move(done)] {
    // Memtables first.
    auto check_mem = [&](const std::map<std::string, Record>& table,
                         Result<std::string>* out) {
      auto it = table.find(key);
      if (it == table.end()) return false;
      if (it->second.tombstone) {
        *out = NotFound("deleted");
      } else {
        *out = it->second.value;
      }
      return true;
    };
    Result<std::string> hit = NotFound("");
    if (check_mem(memtable_, &hit) ||
        (imm_memtable_ && check_mem(*imm_memtable_, &hit))) {
      stats_.memtable_hits++;
      done(std::move(hit));
      return;
    }
    auto ctx = std::make_shared<GetCtx>();
    ctx->kv = this;
    ctx->key = key;
    ctx->ssts = ssts_;
    ctx->done = std::move(done);
    GetFromSsts(ctx);
  });
}

void MiniKv::GetFromSsts(std::shared_ptr<GetCtx> ctx) {
  while (ctx->sst_idx < ctx->ssts.size()) {
    const SstPtr& sst = ctx->ssts[ctx->sst_idx];
    if (!sst->meta.bloom.MayContain(ctx->key)) {
      stats_.bloom_skips++;
      ctx->sst_idx++;
      continue;
    }
    i64 block = sst->meta.FindBlock(ctx->key);
    if (block < 0) {
      ctx->sst_idx++;
      continue;
    }
    ReadBlock(sst, static_cast<u32>(block),
              [this, ctx](Result<std::shared_ptr<std::vector<u8>>> blk) {
                if (!blk.ok()) {
                  ctx->done(blk.status());
                  return;
                }
                std::string value;
                switch (FindInBlock((*blk)->data(), (*blk)->size(),
                                    ctx->key, &value)) {
                  case BlockFind::kFound:
                    ctx->done(std::move(value));
                    return;
                  case BlockFind::kTombstone:
                    ctx->done(NotFound("deleted"));
                    return;
                  case BlockFind::kCorrupt:
                    ctx->done(DataLoss("corrupt sstable block"));
                    return;
                  case BlockFind::kAbsent:
                    ctx->sst_idx++;
                    GetFromSsts(ctx);
                    return;
                }
              });
    return;  // async continuation takes over
  }
  ctx->done(NotFound("no such key"));
}

void MiniKv::ReadBlock(
    const SstPtr& sst, u32 block_idx,
    std::function<void(Result<std::shared_ptr<std::vector<u8>>>)> done) {
  u64 cache_key = sst->meta.id * 1'000'003 + block_idx;
  if (auto hit = CacheLookup(cache_key, 0)) {
    stats_.block_cache_hits++;
    done(std::move(hit));
    return;
  }
  stats_.block_reads++;
  u64 off = sst->meta.block_offsets[block_idx];
  u64 len = sst->meta.BlockLen(block_idx);
  auto buf = std::make_shared<std::vector<u8>>(len);
  fs_->ReadAt(sst->meta.fname, off, buf->data(), len,
              [this, cache_key, buf, done = std::move(done)](Status st) {
                if (!st.ok()) {
                  done(st);
                  return;
                }
                CacheInsert(cache_key, 0, buf);
                done(buf);
              });
}

std::shared_ptr<std::vector<u8>> MiniKv::CacheLookup(u64 sst_id,
                                                     u32 /*block*/) {
  auto it = cache_.find(sst_id);
  if (it == cache_.end()) return nullptr;
  cache_lru_.erase(it->second.lru_it);
  cache_lru_.push_front(sst_id);
  it->second.lru_it = cache_lru_.begin();
  return it->second.data;
}

void MiniKv::CacheInsert(u64 key, u32 /*block*/,
                         std::shared_ptr<std::vector<u8>> data) {
  if (cache_.count(key)) return;
  cache_bytes_ += data->size();
  while (cache_bytes_ > opt_.block_cache_bytes && !cache_lru_.empty()) {
    u64 victim = cache_lru_.back();
    cache_lru_.pop_back();
    auto vit = cache_.find(victim);
    if (vit != cache_.end()) {
      cache_bytes_ -= vit->second.data->size();
      cache_.erase(vit);
    }
  }
  cache_lru_.push_front(key);
  cache_[key] = CacheEntry{std::move(data), cache_lru_.begin()};
}

// --- Scan ------------------------------------------------------------------------

struct ScanCtx {
  std::string start;
  u32 count = 0;
  /// Per-source gather window, in entries. Starts at `count` and grows
  /// geometrically when a pass under-produces (e.g. a tombstone-heavy
  /// range where most gathered candidates cancel out).
  u32 budget = 0;
  /// Set when any source had more data beyond its window — i.e. an
  /// under-full result might be fixable by a wider pass.
  bool truncated = false;
  std::map<std::string, Record> acc;
  std::vector<MiniKv::SstPtr> ssts;
  usize idx = 0;
  u32 blocks_left = 0;
  u32 block = 0;
  MiniKv::ScanCb done;
};

void MiniKv::GatherScanMemtables(const std::shared_ptr<ScanCtx>& ctx) {
  // Newest copies win the emplace; entries are added memtable -> newer
  // SSTs -> older SSTs (ssts_ is kept newest-first).
  auto add = [&ctx](const Record& r) { ctx->acc.emplace(r.key, r); };
  u32 cap = ctx->budget * 2;
  auto it = memtable_.lower_bound(ctx->start);
  u32 n = 0;
  for (; it != memtable_.end() && n < cap; ++it, ++n) {
    add(it->second);
  }
  if (it != memtable_.end()) ctx->truncated = true;
  if (imm_memtable_) {
    auto it2 = imm_memtable_->lower_bound(ctx->start);
    u32 n2 = 0;
    for (; it2 != imm_memtable_->end() && n2 < cap; ++it2, ++n2) {
      add(it2->second);
    }
    if (it2 != imm_memtable_->end()) ctx->truncated = true;
  }
}

void MiniKv::Scan(const std::string& start, u32 count, ScanCb done) {
  stats_.scans++;
  RunOnCpu(opt_.cpu_per_op_ns * 2, [this, start, count,
                                    done = std::move(done)]() mutable {
    auto ctx = std::make_shared<ScanCtx>();
    ctx->start = start;
    ctx->count = count;
    ctx->budget = std::max<u32>(count, 1);
    ctx->ssts = ssts_;
    ctx->done = std::move(done);
    GatherScanMemtables(ctx);
    ScanStep(std::move(ctx));
  });
}

void MiniKv::ScanStep(std::shared_ptr<ScanCtx> ctx) {
  // Pick the next run and the consecutive blocks covering `count` keys.
  while (ctx->idx < ctx->ssts.size() && ctx->blocks_left == 0) {
    const SstPtr& sst = ctx->ssts[ctx->idx];
    if (sst->meta.num_blocks() == 0) {
      ctx->idx++;
      continue;
    }
    i64 blk = sst->meta.FindBlock(ctx->start);
    if (blk < 0) blk = 0;
    ctx->block = static_cast<u32>(blk);
    // Estimate blocks needed from the average record size.
    u64 avg = sst->meta.num_keys
                  ? std::max<u64>(1, sst->meta.data_len / sst->meta.num_keys)
                  : 64;
    u64 need_bytes = static_cast<u64>(ctx->budget) * avg * 2;
    ctx->blocks_left = static_cast<u32>(
        std::min<u64>(sst->meta.num_blocks() - ctx->block,
                      need_bytes / opt_.block_bytes + 1));
    if (ctx->block + ctx->blocks_left < sst->meta.num_blocks()) {
      ctx->truncated = true;
    }
  }
  if (ctx->idx >= ctx->ssts.size()) {
    ScanResult out;
    auto it = ctx->acc.lower_bound(ctx->start);
    for (; it != ctx->acc.end() && out.size() < ctx->count; ++it) {
      if (it->second.tombstone) continue;
      out.emplace_back(it->first, it->second.value);
    }
    if (out.size() < ctx->count && ctx->truncated) {
      // Under-produced with sources left unread beyond their windows —
      // e.g. the window filled with tombstones or shadowed duplicates.
      // Retry the whole gather with a wider budget (geometric, so total
      // work stays O(final window); the block cache absorbs re-reads).
      ctx->budget *= 4;
      ctx->truncated = false;
      ctx->acc.clear();
      ctx->idx = 0;
      ctx->block = 0;
      ctx->blocks_left = 0;
      GatherScanMemtables(ctx);
      ScanStep(std::move(ctx));
      return;
    }
    ctx->done(std::move(out));
    return;
  }
  const SstPtr& sst = ctx->ssts[ctx->idx];
  u32 blk = ctx->block;
  ReadBlock(sst, blk,
            [this, ctx](Result<std::shared_ptr<std::vector<u8>>> data) {
              if (data.ok()) {
                std::vector<Record> recs;
                if (ParseBlock((*data)->data(), (*data)->size(), &recs)
                        .ok()) {
                  for (auto& r : recs) {
                    ctx->acc.emplace(r.key, std::move(r));
                  }
                }
              }
              ctx->block++;
              if (--ctx->blocks_left == 0) ctx->idx++;
              ScanStep(ctx);
            });
}

}  // namespace nvmetro::kv

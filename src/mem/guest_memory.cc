#include "mem/guest_memory.h"

#include <algorithm>
#include <cstring>

#include "common/strutil.h"

namespace nvmetro::mem {

GuestMemory::GuestMemory(u64 size) {
  size_ = (size + kPageSize - 1) / kPageSize * kPageSize;
  backing_.resize(size_, 0);
  free_runs_.emplace_back(0, size_ / kPageSize);
}

u8* GuestMemory::Translate(u64 gpa, u64 len) {
  if (len > size_ || gpa > size_ - len) return nullptr;
  return backing_.data() + gpa;
}

const u8* GuestMemory::TranslateConst(u64 gpa, u64 len) const {
  if (len > size_ || gpa > size_ - len) return nullptr;
  return backing_.data() + gpa;
}

Result<u64> GuestMemory::AllocPages(u64 npages) {
  if (npages == 0) return InvalidArgument("AllocPages(0)");
  for (usize i = 0; i < free_runs_.size(); i++) {
    auto& [start, count] = free_runs_[i];
    if (count >= npages) {
      u64 gpa = start * kPageSize;
      start += npages;
      count -= npages;
      if (count == 0) free_runs_.erase(free_runs_.begin() + i);
      allocated_pages_ += npages;
      return gpa;
    }
  }
  return ResourceExhausted("guest memory allocator exhausted");
}

void GuestMemory::FreePages(u64 gpa, u64 npages) {
  if (npages == 0) return;
  u64 page = gpa / kPageSize;
  allocated_pages_ -= std::min(allocated_pages_, npages);
  // Insert sorted and coalesce with neighbours.
  auto it = std::lower_bound(
      free_runs_.begin(), free_runs_.end(), page,
      [](const auto& run, u64 p) { return run.first < p; });
  it = free_runs_.insert(it, {page, npages});
  // Coalesce with next.
  if (it + 1 != free_runs_.end() && it->first + it->second == (it + 1)->first) {
    it->second += (it + 1)->second;
    free_runs_.erase(it + 1);
  }
  // Coalesce with previous.
  if (it != free_runs_.begin()) {
    auto prev = it - 1;
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_runs_.erase(it);
    }
  }
}

}  // namespace nvmetro::mem
